package fault

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/simcache"
)

// TestKillDecision: PKill partitions the schedule like the other kinds and
// is pinned by Decide.
func TestKillDecision(t *testing.T) {
	cfg := Config{Seed: 3, PKill: 1}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10; i++ {
		if d := cfg.Decide(i); d.Kind != Kill {
			t.Fatalf("call %d: got %v, want kill", i, d.Kind)
		}
	}
	if Kill.String() != "kill" {
		t.Fatalf("Kill.String() = %q", Kill.String())
	}
	mixed := Config{Seed: 3, PKill: 0.3, PTransient: 0.3}
	if err := mixed.Validate(); err != nil {
		t.Fatal(err)
	}
	seen := map[Kind]int{}
	for i := uint64(0); i < 200; i++ {
		seen[mixed.Decide(i).Kind]++
	}
	if seen[Kill] == 0 || seen[Transient] == 0 || seen[None] == 0 {
		t.Fatalf("kinds never drawn: %v", seen)
	}
	if bad := (Config{PKill: 1.5}); bad.Validate() == nil {
		t.Fatal("PKill out of range must not validate")
	}
}

// TestKillInvokesHandlerAndBlocks: with an OnKill handler wired, a Kill
// decision invokes it and blocks the call until the run context dies, then
// surfaces the cancellation cause — exactly a worker dying mid-run.
func TestKillInvokesHandlerAndBlocks(t *testing.T) {
	inj := New(Config{Seed: 1, PKill: 1})
	killed := errors.New("worker killed")
	ctx, cancel := context.WithCancelCause(context.Background())
	inj.OnKill(func() { cancel(killed) })
	r := inj.Wrap(simcache.Direct{})
	start := time.Now()
	_, err := r.Run(ctx, "test", okEngine, sim.Design{}, sim.Config{})
	if !errors.Is(err, killed) {
		t.Fatalf("got %v, want the cancellation cause", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("kill blocked past the context cancellation")
	}
}

// TestKillWithoutHandlerDegrades: no OnKill handler means the kill cannot
// take the process down, so it degrades to a permanent typed error.
func TestKillWithoutHandlerDegrades(t *testing.T) {
	inj := New(Config{Seed: 1, PKill: 1})
	r := inj.Wrap(simcache.Direct{})
	_, err := r.Run(context.Background(), "test", okEngine, sim.Design{}, sim.Config{})
	var pe *PermanentError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *PermanentError", err)
	}
}
