// Package fault is a deterministic, seeded fault-injection layer for the
// simulation stack. It wraps a simcache.Runner (or a raw engine function)
// and injects transient errors, permanent errors, panics, added latency
// and NaN-poisoned results at configured probabilities — the failure modes
// a stiff solver corner, a hung run or a crashing engine goroutine would
// produce in production, but reproducible: the fault decision for the n-th
// intercepted call is a pure function of (Seed, n), so the same seed
// always yields the same fault schedule regardless of goroutine
// interleaving.
//
// Everything is off by default; cmd/ehdoed and cmd/ehdoe expose the
// configuration as -fault-* flags for chaos runs.
package fault

import (
	"context"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/simcache"
)

// Kind is the class of fault injected into one call.
type Kind int

const (
	// None passes the call through untouched.
	None Kind = iota
	// Transient fails the call with an error marked retryable
	// (Transient() == true).
	Transient
	// Permanent fails the call with a non-retryable error.
	Permanent
	// Panic panics in the calling goroutine, standing in for an engine
	// bug on a pathological parameter corner.
	Panic
	// NaN runs the real simulation, then poisons the result with
	// NaN/Inf response fields.
	NaN
	// Kill takes down the whole worker process mid-call, standing in for a
	// crashed or partitioned fleet member: the injector invokes the
	// registered OnKill handler (which abandons every lease and stops
	// heartbeating) and the intercepted call never completes. Without a
	// handler it degrades to a permanent error.
	Kill
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Transient:
		return "transient"
	case Permanent:
		return "permanent"
	case Panic:
		return "panic"
	case NaN:
		return "nan"
	case Kill:
		return "kill"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Config sets the per-call fault probabilities. The kind probabilities
// (PTransient, PPermanent, PPanic, PNaN) partition a single uniform draw,
// so they must sum to at most 1; latency is drawn independently and
// composes with any kind (a slow failure is a realistic failure).
type Config struct {
	Seed       int64
	PTransient float64
	PPermanent float64
	PPanic     float64
	PNaN       float64
	// PKill is the probability of killing the whole worker mid-call (see
	// Kind Kill and Injector.OnKill).
	PKill float64
	// PLatency is the probability of adding Latency before the call
	// proceeds (or fails).
	PLatency float64
	Latency  time.Duration
}

// Enabled reports whether any fault has a non-zero probability.
func (c Config) Enabled() bool {
	return c.PTransient > 0 || c.PPermanent > 0 || c.PPanic > 0 || c.PNaN > 0 ||
		c.PKill > 0 || c.PLatency > 0
}

// Validate checks the probabilities.
func (c Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"transient", c.PTransient}, {"permanent", c.PPermanent},
		{"panic", c.PPanic}, {"nan", c.PNaN}, {"kill", c.PKill},
		{"latency", c.PLatency},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("fault: probability %s=%g outside [0, 1]", p.name, p.v)
		}
	}
	if sum := c.PTransient + c.PPermanent + c.PPanic + c.PNaN + c.PKill; sum > 1 {
		return fmt.Errorf("fault: kind probabilities sum to %g > 1", sum)
	}
	if c.PLatency > 0 && c.Latency <= 0 {
		return fmt.Errorf("fault: latency probability %g set but latency duration is %s", c.PLatency, c.Latency)
	}
	return nil
}

// Decision is the fault assigned to one intercepted call.
type Decision struct {
	Kind    Kind
	Latency time.Duration // 0 when no latency was drawn
}

// mix64 is a splitmix64-style finalizer: seeds adjacent (seed, call)
// pairs land on uncorrelated PRNG streams.
func mix64(seed int64, call uint64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(call+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Decide returns the fault schedule entry for the call-th intercepted
// call: a pure function of (Seed, call), independent of goroutine
// interleaving — the property that makes chaos runs reproducible and the
// schedule assertable in tests.
func (c Config) Decide(call uint64) Decision {
	rng := rand.New(rand.NewSource(mix64(c.Seed, call)))
	var d Decision
	u := rng.Float64()
	switch {
	case u < c.PTransient:
		d.Kind = Transient
	case u < c.PTransient+c.PPermanent:
		d.Kind = Permanent
	case u < c.PTransient+c.PPermanent+c.PPanic:
		d.Kind = Panic
	case u < c.PTransient+c.PPermanent+c.PPanic+c.PNaN:
		d.Kind = NaN
	case u < c.PTransient+c.PPermanent+c.PPanic+c.PNaN+c.PKill:
		d.Kind = Kill
	}
	if rng.Float64() < c.PLatency {
		// Between 50% and 100% of the configured latency, so delays are
		// varied but still bounded and deterministic per call index.
		d.Latency = time.Duration((0.5 + 0.5*rng.Float64()) * float64(c.Latency))
	}
	return d
}

// TransientError is an injected retryable failure.
type TransientError struct{ Call uint64 }

func (e *TransientError) Error() string {
	return fmt.Sprintf("fault: injected transient error (call %d)", e.Call)
}

// Transient marks the error as retryable for core's retry policy.
func (e *TransientError) Transient() bool { return true }

// PermanentError is an injected non-retryable failure.
type PermanentError struct{ Call uint64 }

func (e *PermanentError) Error() string {
	return fmt.Sprintf("fault: injected permanent error (call %d)", e.Call)
}

// Injector applies a Config's fault schedule to intercepted simulation
// calls. One injector holds one call counter, shared across every Runner
// and Engine it wraps, so the schedule is consumed in call-arrival order.
// Safe for concurrent use.
type Injector struct {
	cfg    Config
	calls  atomic.Uint64
	onKill atomic.Pointer[func()]
}

// New returns an Injector for the config. The config should be validated
// first; New is lenient so tests can construct edge cases directly.
func New(cfg Config) *Injector { return &Injector{cfg: cfg} }

// Config returns the injector's configuration.
func (inj *Injector) Config() Config { return inj.cfg }

// Calls returns how many calls have been intercepted so far.
func (inj *Injector) Calls() uint64 { return inj.calls.Load() }

// OnKill registers the handler a Kill decision invokes — in a worker
// daemon, the function that abandons every lease, stops heartbeating and
// cancels the run context, so the process drops off the fleet exactly as a
// crash would. The handler must (directly or transitively) cancel the
// context of in-flight runs: after calling it the injector blocks the
// intercepted call until its context is cancelled, because a killed worker
// never answers.
func (inj *Injector) OnKill(fn func()) { inj.onKill.Store(&fn) }

// intercept applies the next schedule entry around run. ctx bounds the
// injected latency and carries the trace logger; injected faults are
// logged at warn so chaos runs are auditable.
func (inj *Injector) intercept(ctx context.Context, run func() (*sim.Result, error)) (*sim.Result, error) {
	call := inj.calls.Add(1) - 1
	d := inj.cfg.Decide(call)
	lg := obs.FromContext(ctx)
	if d.Latency > 0 {
		lg.Warn("fault: injected latency", "call", call, "latency_ms", float64(d.Latency.Microseconds())/1e3)
		t := time.NewTimer(d.Latency)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, context.Cause(ctx)
		}
	}
	switch d.Kind {
	case Transient:
		lg.Warn("fault: injected transient error", "call", call)
		return nil, &TransientError{Call: call}
	case Permanent:
		lg.Warn("fault: injected permanent error", "call", call)
		return nil, &PermanentError{Call: call}
	case Panic:
		lg.Warn("fault: injecting panic", "call", call)
		panic(fmt.Sprintf("fault: injected panic (call %d, seed %d)", call, inj.cfg.Seed))
	case Kill:
		if h := inj.onKill.Load(); h != nil {
			lg.Warn("fault: killing worker", "call", call)
			(*h)()
			// The handler cancels the surrounding context; a killed worker
			// never answers, so wait for the cancellation instead of
			// returning a result.
			<-ctx.Done()
			return nil, context.Cause(ctx)
		}
		// No process to kill (injector used outside a worker daemon):
		// degrade to a permanent failure so callers never hang.
		lg.Warn("fault: kill decision without OnKill handler, degrading to permanent error", "call", call)
		return nil, &PermanentError{Call: call}
	}
	res, err := run()
	if err != nil || d.Kind != NaN {
		return res, err
	}
	lg.Warn("fault: poisoning result with NaN/Inf", "call", call)
	// The underlying result may be shared (simcache); poison a copy.
	poisoned := *res
	poisoned.AvgHarvestedPower = math.NaN()
	poisoned.StoredEnergyEnd = math.Inf(1)
	poisoned.UptimeFraction = math.NaN()
	poisoned.NetEnergyMargin = math.NaN()
	return &poisoned, nil
}

// runner is the Runner-level wrapper: faults are injected per request,
// before the cache, so replicated design points still draw from the
// schedule.
type runner struct {
	inj  *Injector
	next simcache.Runner
}

func (r *runner) Run(ctx context.Context, engine string, fn simcache.Engine, d sim.Design, cfg sim.Config) (*sim.Result, error) {
	return r.inj.intercept(ctx, func() (*sim.Result, error) {
		return r.next.Run(ctx, engine, fn, d, cfg)
	})
}

// Wrap returns a simcache.Runner that applies the injector's schedule
// before delegating to next (nil next means simcache.Direct{}).
func (inj *Injector) Wrap(next simcache.Runner) simcache.Runner {
	if next == nil {
		next = simcache.Direct{}
	}
	return &runner{inj: inj, next: next}
}

// Engine wraps a raw engine function: faults are injected beneath the
// cache, which exercises the cache's own containment (single-flight
// cleanup on panic, errors never cached).
func (inj *Injector) Engine(fn simcache.Engine) simcache.Engine {
	return func(d sim.Design, cfg sim.Config) (*sim.Result, error) {
		return inj.intercept(context.Background(), func() (*sim.Result, error) {
			return fn(d, cfg)
		})
	}
}

// FlagConfig registers the -fault-* flag set on fs and returns a function
// that yields the configured Config after parsing. All probabilities
// default to zero: chaos is strictly opt-in.
func FlagConfig(fs *flag.FlagSet) func() Config {
	seed := fs.Int64("fault-seed", 1, "fault-injection schedule seed (same seed = same schedule)")
	pt := fs.Float64("fault-transient", 0, "probability of an injected transient (retryable) simulation error")
	pp := fs.Float64("fault-permanent", 0, "probability of an injected permanent simulation error")
	ppanic := fs.Float64("fault-panic", 0, "probability of an injected simulation panic")
	pnan := fs.Float64("fault-nan", 0, "probability of NaN/Inf-poisoned simulation responses")
	pkill := fs.Float64("fault-kill", 0, "probability of killing the whole worker mid-simulation (worker daemons only)")
	platency := fs.Float64("fault-latency-p", 0, "probability of injected latency before a simulation")
	latency := fs.Duration("fault-latency", 100*time.Millisecond, "upper bound of injected latency per affected simulation")
	return func() Config {
		return Config{
			Seed: *seed, PTransient: *pt, PPermanent: *pp, PPanic: *ppanic,
			PNaN: *pnan, PKill: *pkill, PLatency: *platency, Latency: *latency,
		}
	}
}
