package fault

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/simcache"
)

// okEngine returns a fixed finite result.
func okEngine(d sim.Design, cfg sim.Config) (*sim.Result, error) {
	return &sim.Result{AvgHarvestedPower: 1e-6, StoredEnergyEnd: 0.5, UptimeFraction: 0.9}, nil
}

// schedule runs n calls through a fresh injector over okEngine and
// records each call's observable outcome.
func schedule(t *testing.T, cfg Config, n int) []string {
	t.Helper()
	r := New(cfg).Wrap(simcache.Direct{})
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, outcome(r))
	}
	return out
}

// outcome classifies a single wrapped call.
func outcome(r simcache.Runner) (kind string) {
	defer func() {
		if rec := recover(); rec != nil {
			kind = "panic"
		}
	}()
	res, err := r.Run(context.Background(), "test", okEngine, sim.Design{}, sim.Config{})
	switch {
	case err == nil && math.IsNaN(res.AvgHarvestedPower):
		return "nan"
	case err == nil:
		return "ok"
	}
	var te *TransientError
	if errors.As(err, &te) {
		return "transient"
	}
	var pe *PermanentError
	if errors.As(err, &pe) {
		return "permanent"
	}
	return "err:" + err.Error()
}

// TestScheduleDeterministic is the acceptance check for reproducible
// chaos: the same seed must yield the identical fault schedule, and a
// different seed a different one.
func TestScheduleDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, PTransient: 0.25, PPermanent: 0.1, PPanic: 0.15, PNaN: 0.1}
	const n = 200
	a := schedule(t, cfg, n)
	b := schedule(t, cfg, n)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: seed %d produced %q then %q", i, cfg.Seed, a[i], b[i])
		}
	}
	// Every kind must actually appear at these probabilities over 200 calls.
	seen := map[string]int{}
	for _, k := range a {
		seen[k]++
	}
	for _, want := range []string{"ok", "transient", "permanent", "panic", "nan"} {
		if seen[want] == 0 {
			t.Fatalf("kind %q never drawn in %d calls: %v", want, n, seen)
		}
	}

	other := cfg
	other.Seed = 43
	c := schedule(t, other, n)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == n {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestDecideMatchesIntercept pins the pure schedule function to what the
// injector actually does, so tests can predict a chaos run from Decide.
func TestDecideMatchesIntercept(t *testing.T) {
	cfg := Config{Seed: 7, PTransient: 0.3, PPanic: 0.2, PNaN: 0.2}
	got := schedule(t, cfg, 100)
	for i, g := range got {
		want := "ok"
		switch cfg.Decide(uint64(i)).Kind {
		case Transient:
			want = "transient"
		case Permanent:
			want = "permanent"
		case Panic:
			want = "panic"
		case NaN:
			want = "nan"
		}
		if g != want {
			t.Fatalf("call %d: Decide says %q, injector did %q", i, want, g)
		}
	}
}

func TestErrorsAreTyped(t *testing.T) {
	te := &TransientError{Call: 3}
	if !te.Transient() {
		t.Fatal("TransientError must be transient")
	}
	var tr interface{ Transient() bool }
	if !errors.As(error(te), &tr) || !tr.Transient() {
		t.Fatal("TransientError must expose Transient() through errors.As")
	}
	pe := &PermanentError{Call: 4}
	if errors.As(error(pe), &tr) {
		t.Fatal("PermanentError must not be marked transient")
	}
}

func TestNaNPoisonsACopy(t *testing.T) {
	orig := &sim.Result{AvgHarvestedPower: 2e-6, StoredEnergyEnd: 1, UptimeFraction: 1}
	inj := New(Config{Seed: 1, PNaN: 1})
	res, err := inj.Wrap(simcache.Direct{}).Run(context.Background(), "t",
		func(sim.Design, sim.Config) (*sim.Result, error) { return orig, nil },
		sim.Design{}, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(res.AvgHarvestedPower) || !math.IsInf(res.StoredEnergyEnd, 1) {
		t.Fatalf("result not poisoned: %+v", res)
	}
	if math.IsNaN(orig.AvgHarvestedPower) || math.IsInf(orig.StoredEnergyEnd, 1) {
		t.Fatal("original (possibly cached) result was mutated")
	}
}

func TestLatencyRespectsContext(t *testing.T) {
	inj := New(Config{Seed: 1, PLatency: 1, Latency: time.Hour})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := inj.Wrap(nil).Run(ctx, "t", okEngine, sim.Design{}, sim.Config{})
	if err == nil {
		t.Fatal("cancelled context must abort injected latency")
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("cancellation took %s", d)
	}
}

func TestValidate(t *testing.T) {
	good := Config{Seed: 1, PTransient: 0.5, PPanic: 0.5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Config{
		{PTransient: -0.1},
		{PNaN: 1.5},
		{PTransient: 0.6, PPermanent: 0.6},
		{PLatency: 0.5}, // latency probability without a duration
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("config %+v must be rejected", bad)
		}
	}
	if (Config{}).Enabled() {
		t.Fatal("zero config must be disabled")
	}
	if !(Config{PPanic: 0.1}).Enabled() {
		t.Fatal("non-zero probability must enable")
	}
}
