package harvester

import (
	"fmt"
	"math"
)

// PiezoParams models a piezoelectric vibration harvester — the MEMS-class
// device of the paper's reference [3] (Boussetta et al., IEEE Sensors J.
// 2010) — with the standard two-domain lumped model:
//
//	m·ẍ + c·ẋ + k·x + Θ·v = −m·a(t)      (mechanical)
//	C_p·v̇ = Θ·ẋ − v/R_L                  (electrical, resistive load)
//
// where x is the tip displacement, v the voltage across the piezo
// electrodes, Θ the electromechanical coupling (N/V ≡ A·s/m) and C_p the
// clamped capacitance. It is provided as the alternative transducer
// substrate: the electromagnetic device (Params) drives the full node
// simulation, while this model reproduces the piezo physics the related
// HDL work models, with the same analytic cross-checks.
type PiezoParams struct {
	Mass     float64 // effective mass (kg)
	SpringK  float64 // effective stiffness (N/m)
	DampingC float64 // mechanical damping (N·s/m)
	Theta    float64 // electromechanical coupling Θ (N/V)
	Cp       float64 // clamped capacitance (F)
	MaxDisp  float64 // displacement limit (m); 0 disables the check
}

// DefaultPiezo returns parameters of a MEMS-scale cantilever similar to
// the devices of [3]: ~1.4 kHz resonance, nF-class capacitance, µW output.
func DefaultPiezo() PiezoParams {
	return PiezoParams{
		Mass:     2e-6,  // 2 mg
		SpringK:  155,   // → f0 ≈ 1.4 kHz
		DampingC: 2e-4,  // Q ≈ 88
		Theta:    1e-4,  // N/V
		Cp:       10e-9, // 10 nF
		MaxDisp:  50e-6,
	}
}

// Validate checks physical plausibility.
func (p PiezoParams) Validate() error {
	switch {
	case p.Mass <= 0:
		return fmt.Errorf("harvester: piezo mass %g must be positive", p.Mass)
	case p.SpringK <= 0:
		return fmt.Errorf("harvester: piezo stiffness %g must be positive", p.SpringK)
	case p.DampingC < 0:
		return fmt.Errorf("harvester: piezo damping %g must be non-negative", p.DampingC)
	case p.Theta <= 0:
		return fmt.Errorf("harvester: piezo coupling %g must be positive", p.Theta)
	case p.Cp <= 0:
		return fmt.Errorf("harvester: piezo capacitance %g must be positive", p.Cp)
	case p.MaxDisp < 0:
		return fmt.Errorf("harvester: piezo displacement limit %g must be non-negative", p.MaxDisp)
	}
	return nil
}

// ResonantFreq returns the short-circuit resonance √(k/m)/2π in Hz.
func (p PiezoParams) ResonantFreq() float64 {
	return math.Sqrt(p.SpringK/p.Mass) / (2 * math.Pi)
}

// OpenCircuitFreq returns the open-circuit (stiffened) resonance: the
// piezo coupling adds Θ²/C_p to the stiffness when no charge can flow.
func (p PiezoParams) OpenCircuitFreq() float64 {
	return math.Sqrt((p.SpringK+p.Theta*p.Theta/p.Cp)/p.Mass) / (2 * math.Pi)
}

// CouplingFactor returns the squared electromechanical coupling
// coefficient k² = Θ²/(k·C_p + Θ²), the standard figure of merit.
func (p PiezoParams) CouplingFactor() float64 {
	t2 := p.Theta * p.Theta
	return t2 / (p.SpringK*p.Cp + t2)
}

// Derivatives computes the coupled state derivatives for state (x, ẋ, v)
// under frame acceleration accel with a resistive load rload (Ω);
// rload ≤ 0 means open circuit.
func (p PiezoParams) Derivatives(x, xd, v, accel, rload float64) (dx, dxd, dv float64) {
	dx = xd
	dxd = (-p.DampingC*xd - p.SpringK*x - p.Theta*v - p.Mass*accel) / p.Mass
	dv = p.Theta * xd / p.Cp
	if rload > 0 {
		dv -= v / (rload * p.Cp)
	}
	return dx, dxd, dv
}

// SteadyStatePower returns the analytic average power (W) into a resistive
// load under sinusoidal base acceleration of amplitude accel at frequency
// f, from the exact linear two-port solution.
func (p PiezoParams) SteadyStatePower(accel, f, rload float64) float64 {
	if rload <= 0 {
		return 0
	}
	w := 2 * math.Pi * f
	// Electrical admittance seen by the velocity source: Y = jωC_p + 1/R.
	// Voltage v = Θ·jω·X / (jωC_p + 1/R); substitute into the mechanical
	// equation to get the effective impedance. Solve in complex arithmetic.
	jwCpR := complex(1/rload, w*p.Cp) // 1/R + jωC_p
	// Mechanical: (−mω² + jωc + k)·X + Θ·V = −m·A
	// Electrical: V = Θ·jω·X / (1/R + jωC_p)
	mech := complex(p.SpringK-p.Mass*w*w, p.DampingC*w)
	elec := complex(0, w*p.Theta*p.Theta) / jwCpR // Θ²·jω/(1/R+jωC_p)
	x := complex(-p.Mass*accel, 0) / (mech + elec)
	v := complex(0, w*p.Theta) * x / jwCpR
	vAmp := cmplxAbs(v)
	return vAmp * vAmp / (2 * rload)
}

func cmplxAbs(c complex128) float64 { return math.Hypot(real(c), imag(c)) }

// OptimalLoadAtResonance returns the classical weak-coupling optimum load
// R ≈ 1/(ω₀·C_p) at the short-circuit resonance.
func (p PiezoParams) OptimalLoadAtResonance() float64 {
	w0 := 2 * math.Pi * p.ResonantFreq()
	return 1 / (w0 * p.Cp)
}
