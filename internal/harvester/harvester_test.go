package harvester

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/ode"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadParams(t *testing.T) {
	mut := []func(*Params){
		func(p *Params) { p.Mass = 0 },
		func(p *Params) { p.SpringK = -1 },
		func(p *Params) { p.DampingC = -0.1 },
		func(p *Params) { p.Gamma = -1 },
		func(p *Params) { p.CoilR = 0 },
		func(p *Params) { p.CoilL = -1 },
		func(p *Params) { p.MaxDisp = 0 },
		func(p *Params) { p.StopK = -1 },
		func(p *Params) { p.TuneKMax = -1 },
		func(p *Params) { p.GapMin = 0 },
		func(p *Params) { p.GapMax = 1e-4 }, // below GapMin
		func(p *Params) { p.GapExp = 0 },
	}
	for i, m := range mut {
		p := Default()
		m(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

func TestTuneStiffnessEndpoints(t *testing.T) {
	p := Default()
	if got := p.TuneStiffness(p.GapMax); math.Abs(got) > 1e-9 {
		t.Fatalf("k_t(GapMax) = %v, want 0", got)
	}
	if got := p.TuneStiffness(p.GapMin); math.Abs(got-p.TuneKMax) > 1e-6*p.TuneKMax {
		t.Fatalf("k_t(GapMin) = %v, want %v", got, p.TuneKMax)
	}
	// Clamping outside the travel.
	if p.TuneStiffness(0.5*p.GapMin) != p.TuneStiffness(p.GapMin) {
		t.Fatal("gap below GapMin must clamp")
	}
	if p.TuneStiffness(2*p.GapMax) != 0 {
		t.Fatal("gap above GapMax must clamp to zero stiffness")
	}
}

func TestTuneStiffnessMonotone(t *testing.T) {
	p := Default()
	prev := math.Inf(1)
	for g := p.GapMin; g <= p.GapMax; g += (p.GapMax - p.GapMin) / 50 {
		kt := p.TuneStiffness(g)
		if kt > prev+1e-9 {
			t.Fatalf("k_t not monotone decreasing at gap %v", g)
		}
		prev = kt
	}
}

func TestFreqRange(t *testing.T) {
	p := Default()
	lo, hi := p.FreqRange()
	if math.Abs(lo-45) > 0.5 {
		t.Fatalf("f_lo = %v, want ≈45", lo)
	}
	if math.Abs(hi-90) > 1 {
		t.Fatalf("f_hi = %v, want ≈90", hi)
	}
}

func TestGapForFreqRoundTrip(t *testing.T) {
	p := Default()
	lo, hi := p.FreqRange()
	for f := lo + 1; f < hi; f += 5 {
		gap, ok := p.GapForFreq(f)
		if !ok {
			t.Fatalf("f=%v should be achievable", f)
		}
		if got := p.ResonantFreq(gap); math.Abs(got-f) > 1e-6 {
			t.Fatalf("ResonantFreq(GapForFreq(%v)) = %v", f, got)
		}
	}
	// Outside the band: clamped, not ok.
	if gap, ok := p.GapForFreq(lo - 10); ok || gap != p.GapMax {
		t.Fatalf("below band: gap=%v ok=%v", gap, ok)
	}
	if gap, ok := p.GapForFreq(hi + 10); ok || gap != p.GapMin {
		t.Fatalf("above band: gap=%v ok=%v", gap, ok)
	}
}

func TestGapForFreqPropertyMonotone(t *testing.T) {
	p := Default()
	lo, hi := p.FreqRange()
	f := func(u float64) bool {
		frac := math.Mod(math.Abs(u), 1)
		f1 := lo + frac*(hi-lo)*0.98 + 0.01*(hi-lo)
		gap, _ := p.GapForFreq(f1)
		// Higher target frequency needs a smaller gap.
		gap2, _ := p.GapForFreq(math.Min(f1+1, hi))
		return gap2 <= gap+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStopForce(t *testing.T) {
	p := Default()
	if p.StopForce(0) != 0 || p.StopForce(p.MaxDisp) != 0 {
		t.Fatal("no force inside travel")
	}
	over := p.MaxDisp + 1e-4
	if got := p.StopForce(over); math.Abs(got-p.StopK*1e-4) > 1e-9 {
		t.Fatalf("stop force = %v", got)
	}
	if got := p.StopForce(-over); math.Abs(got+p.StopK*1e-4) > 1e-9 {
		t.Fatalf("stop force (neg) = %v", got)
	}
}

func TestSteadyStatePowerPeaksAtResonance(t *testing.T) {
	p := Default()
	gap := p.GapMax
	f0 := p.ResonantFreq(gap)
	rload := 5000.0
	pRes := p.SteadyStatePower(0.6, f0, rload, gap)
	if pRes <= 0 {
		t.Fatalf("resonant power = %v", pRes)
	}
	for _, off := range []float64{-10, -5, 5, 10} {
		if pOff := p.SteadyStatePower(0.6, f0+off, rload, gap); pOff >= pRes {
			t.Fatalf("power at %+v Hz offset (%v) ≥ resonant (%v)", off, pOff, pRes)
		}
	}
}

func TestSteadyStatePowerMicrowattScale(t *testing.T) {
	// The reference device delivers on the order of 100 µW at 0.6 m/s².
	p := Default()
	gap := p.GapMax
	pw := p.SteadyStatePower(0.6, p.ResonantFreq(gap), p.OptimalLoad()-p.CoilR, gap)
	if pw < 10e-6 || pw > 10e-3 {
		t.Fatalf("resonant power %v W outside the plausible µW–mW band", pw)
	}
}

func TestOptimalLoadMaximizesPower(t *testing.T) {
	p := Default()
	gap := p.GapMax
	f0 := p.ResonantFreq(gap)
	// Sweep loads around the matched value; power must peak near it.
	// Note OptimalLoad returns R_c + Γ²/c; the load connected externally is
	// compared directly on the power curve.
	best, bestR := 0.0, 0.0
	for r := 500.0; r < 1e6; r *= 1.3 {
		if pw := p.SteadyStatePower(0.6, f0, r, gap); pw > best {
			best, bestR = pw, r
		}
	}
	want := p.OptimalLoad()
	if bestR < want/3 || bestR > want*3 {
		t.Fatalf("empirical optimum %v too far from analytic %v", bestR, want)
	}
}

func TestElectricalDampingAndEMF(t *testing.T) {
	p := Default()
	ce := p.ElectricalDamping(1000)
	want := p.Gamma * p.Gamma / (p.CoilR + 1000)
	if math.Abs(ce-want) > 1e-12 {
		t.Fatalf("c_e = %v, want %v", ce, want)
	}
	if p.EMF(0.1) != p.Gamma*0.1 {
		t.Fatal("EMF wrong")
	}
	if got := p.AlgebraicCurrent(0.1, 1000); math.Abs(got-p.Gamma*0.1/(p.CoilR+1000)) > 1e-15 {
		t.Fatalf("algebraic current = %v", got)
	}
}

// Transient integration of the full electromechanical ODE must converge to
// the analytic steady-state displacement amplitude in the linear regime.
func TestTransientMatchesAnalyticAmplitude(t *testing.T) {
	p := Default()
	p.CoilL = 0 // algebraic current path
	gap := p.GapMax
	f0 := p.ResonantFreq(gap)
	rload := 5000.0
	accel := 0.3 // small, keeps displacement well below the end-stop
	w := 2 * math.Pi * f0

	sys := ode.Func{N: 2, F: func(tt float64, y, d []float64) {
		i := p.AlgebraicCurrent(y[1], rload)
		k := p.EffectiveStiffness(gap)
		d[0] = y[1]
		d[1] = (-p.DampingC*y[1] - k*y[0] - p.StopForce(y[0]) - p.Gamma*i - p.Mass*accel*math.Sin(w*tt)) / p.Mass
	}}
	// Integrate long enough to pass the transient (Q/f0 seconds ≈ 2 s),
	// recording the displacement envelope over the last 20 cycles.
	var xmax float64
	tEnd := 6.0
	_, _, err := ode.FixedStep(sys, 0, tEnd, 2e-5, []float64{0, 0}, ode.RK4Step, func(tt float64, y []float64) {
		if tt > tEnd-20/f0 {
			if a := math.Abs(y[0]); a > xmax {
				xmax = a
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := p.SteadyStateDisplacement(accel, f0, rload, gap)
	if math.Abs(xmax-want) > 0.05*want {
		t.Fatalf("transient amplitude %v vs analytic %v", xmax, want)
	}
}

// With the end-stop engaged, displacement must saturate near MaxDisp even
// under excitation that would linearly demand more.
func TestEndStopLimitsDisplacement(t *testing.T) {
	p := Default()
	gap := p.GapMax
	f0 := p.ResonantFreq(gap)
	rload := 5000.0
	accel := 5.0 // strong excitation: linear model would exceed the stop
	if lin := p.SteadyStateDisplacement(accel, f0, rload, gap); lin < p.MaxDisp {
		t.Skipf("excitation too weak to engage end-stop (linear %v)", lin)
	}
	w := 2 * math.Pi * f0
	sys := ode.Func{N: 2, F: func(tt float64, y, d []float64) {
		i := p.AlgebraicCurrent(y[1], rload)
		k := p.EffectiveStiffness(gap)
		d[0] = y[1]
		d[1] = (-p.DampingC*y[1] - k*y[0] - p.StopForce(y[0]) - p.Gamma*i - p.Mass*accel*math.Sin(w*tt)) / p.Mass
	}}
	var xmax float64
	_, _, err := ode.FixedStep(sys, 0, 3, 1e-5, []float64{0, 0}, ode.RK4Step, func(tt float64, y []float64) {
		if a := math.Abs(y[0]); a > xmax {
			xmax = a
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Penetration beyond MaxDisp is limited by the stiff contact spring.
	if xmax > 1.5*p.MaxDisp {
		t.Fatalf("end-stop failed: xmax = %v, limit %v", xmax, p.MaxDisp)
	}
	if xmax < p.MaxDisp {
		t.Fatalf("end-stop never engaged: xmax = %v", xmax)
	}
}

func TestDerivativesWithInductance(t *testing.T) {
	p := Default()
	p.CoilL = 0.05
	s := State{X: 1e-4, V: 0.01, I: 1e-4}
	dx, dv, di := p.Derivatives(s, 0.5, 0.2, p.GapMax)
	if dx != s.V {
		t.Fatal("dx must equal v")
	}
	wantDv := (-p.DampingC*s.V - p.EffectiveStiffness(p.GapMax)*s.X - p.Gamma*s.I - p.Mass*0.5) / p.Mass
	if math.Abs(dv-wantDv) > 1e-12 {
		t.Fatalf("dv = %v, want %v", dv, wantDv)
	}
	wantDi := (p.Gamma*s.V - p.CoilR*s.I - 0.2) / p.CoilL
	if math.Abs(di-wantDi) > 1e-9 {
		t.Fatalf("di = %v, want %v", di, wantDi)
	}
	// L = 0 returns di = 0 (algebraic regime).
	p.CoilL = 0
	if _, _, di := p.Derivatives(s, 0.5, 0.2, p.GapMax); di != 0 {
		t.Fatal("di must be 0 when L = 0")
	}
}

// Property: tuning to the excitation frequency never yields less analytic
// power than staying untuned (at matched load, inside the band).
func TestTuningNeverHurtsAtResonance(t *testing.T) {
	p := Default()
	lo, hi := p.FreqRange()
	rload := 5000.0
	f := func(u float64) bool {
		frac := math.Mod(math.Abs(u), 1)
		fin := lo + frac*(hi-lo)
		gapTuned, _ := p.GapForFreq(fin)
		pTuned := p.SteadyStatePower(0.6, fin, rload, gapTuned)
		pUntuned := p.SteadyStatePower(0.6, fin, rload, p.GapMax)
		return pTuned >= pUntuned-1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSteadyStatePower(b *testing.B) {
	p := Default()
	gap := p.GapMax
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += p.SteadyStatePower(0.6, 50, 5000, gap)
	}
	_ = sink
}

func BenchmarkGapForFreq(b *testing.B) {
	p := Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := p.GapForFreq(60 + float64(i%20)); !ok {
			b.Fatal("frequency should be achievable")
		}
	}
}
