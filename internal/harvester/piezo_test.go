package harvester

import (
	"math"
	"testing"

	"repro/internal/ode"
)

func TestDefaultPiezoValidates(t *testing.T) {
	if err := DefaultPiezo().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPiezoValidateRejects(t *testing.T) {
	mut := []func(*PiezoParams){
		func(p *PiezoParams) { p.Mass = 0 },
		func(p *PiezoParams) { p.SpringK = -1 },
		func(p *PiezoParams) { p.DampingC = -1 },
		func(p *PiezoParams) { p.Theta = 0 },
		func(p *PiezoParams) { p.Cp = 0 },
		func(p *PiezoParams) { p.MaxDisp = -1 },
	}
	for i, m := range mut {
		p := DefaultPiezo()
		m(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

func TestPiezoFrequencies(t *testing.T) {
	p := DefaultPiezo()
	f0 := p.ResonantFreq()
	if f0 < 1000 || f0 > 2000 {
		t.Fatalf("resonance %v Hz outside the MEMS-class band", f0)
	}
	// Open-circuit resonance must be stiffened above short-circuit.
	if p.OpenCircuitFreq() <= f0 {
		t.Fatalf("open-circuit %v must exceed short-circuit %v", p.OpenCircuitFreq(), f0)
	}
	// The frequency shift encodes the coupling factor:
	// (f_oc/f_sc)² = 1/(1−k²).
	ratio2 := (p.OpenCircuitFreq() / f0) * (p.OpenCircuitFreq() / f0)
	k2 := p.CouplingFactor()
	if math.Abs(ratio2-1/(1-k2)) > 1e-9 {
		t.Fatalf("coupling identity violated: ratio² %v vs 1/(1−k²) %v", ratio2, 1/(1-k2))
	}
	if k2 <= 0 || k2 >= 1 {
		t.Fatalf("coupling factor %v outside (0,1)", k2)
	}
}

func TestPiezoSteadyStatePowerPeaksNearResonance(t *testing.T) {
	p := DefaultPiezo()
	r := p.OptimalLoadAtResonance()
	f0 := p.ResonantFreq()
	pRes := p.SteadyStatePower(1.0, f0, r)
	if pRes <= 0 {
		t.Fatalf("power at resonance = %v", pRes)
	}
	for _, off := range []float64{-200, 200} {
		if pOff := p.SteadyStatePower(1.0, f0+off, r); pOff >= pRes {
			t.Fatalf("power at %+v Hz (%v) ≥ resonance (%v)", off, pOff, pRes)
		}
	}
	// Open circuit draws nothing.
	if p.SteadyStatePower(1.0, f0, 0) != 0 {
		t.Fatal("open circuit must yield zero power")
	}
}

func TestPiezoOptimalLoadNearAnalytic(t *testing.T) {
	p := DefaultPiezo()
	f0 := p.ResonantFreq()
	want := p.OptimalLoadAtResonance()
	best, bestR := 0.0, 0.0
	for r := want / 30; r < want*30; r *= 1.25 {
		if pw := p.SteadyStatePower(1.0, f0, r); pw > best {
			best, bestR = pw, r
		}
	}
	if bestR < want/4 || bestR > want*4 {
		t.Fatalf("empirical optimum %v vs analytic %v", bestR, want)
	}
}

func TestPiezoTransientMatchesAnalytic(t *testing.T) {
	p := DefaultPiezo()
	f0 := p.ResonantFreq()
	rload := p.OptimalLoadAtResonance()
	const accel = 0.5
	w := 2 * math.Pi * f0
	sys := ode.Func{N: 3, F: func(tt float64, y, d []float64) {
		d[0], d[1], d[2] = p.Derivatives(y[0], y[1], y[2], accel*math.Sin(w*tt), rload)
	}}
	// Integrate well past the ring-up (Q ≈ 88 cycles) and average v²/R
	// over the last 50 cycles: 0.3 s ≈ 420 cycles ≫ Q.
	const tEnd = 0.3
	var sum float64
	var count int
	_, _, err := ode.FixedStep(sys, 0, tEnd, 2e-7, []float64{0, 0, 0}, ode.RK4Step, func(tt float64, y []float64) {
		if tt > tEnd-50/f0 {
			sum += y[2] * y[2] / rload
			count++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	got := sum / float64(count)
	want := p.SteadyStatePower(accel, f0, rload)
	if math.Abs(got-want) > 0.05*want {
		t.Fatalf("transient power %v vs analytic %v", got, want)
	}
}

func TestPiezoEnergyConservation(t *testing.T) {
	// Free decay with no load: mechanical + capacitor energy must be
	// non-increasing and dissipate only through mechanical damping.
	p := DefaultPiezo()
	energy := func(y []float64) float64 {
		return 0.5*p.Mass*y[1]*y[1] + 0.5*p.SpringK*y[0]*y[0] + 0.5*p.Cp*y[2]*y[2]
	}
	sys := ode.Func{N: 3, F: func(tt float64, y, d []float64) {
		d[0], d[1], d[2] = p.Derivatives(y[0], y[1], y[2], 0, 0)
	}}
	y0 := []float64{10e-6, 0, 0}
	prev := energy(y0)
	e0 := prev
	yEnd, _, err := ode.FixedStep(sys, 0, 0.05, 2e-7, y0, ode.RK4Step, func(tt float64, y []float64) {
		e := energy(y)
		if e > prev*(1+1e-9) {
			t.Fatalf("energy grew at t=%v: %v → %v", tt, prev, e)
		}
		prev = e
	})
	if err != nil {
		t.Fatal(err)
	}
	if eEnd := energy(yEnd); eEnd >= e0 {
		t.Fatalf("no dissipation: %v → %v", e0, eEnd)
	}
}

func TestPiezoMicrowattScale(t *testing.T) {
	// MEMS-class device at 1 g (the standard characterization level of
	// [3]): sub-µW to µW output. The damping-limited ceiling is
	// P_max = (m·a)²/(8c) ≈ 0.3 µW for these parameters.
	p := DefaultPiezo()
	pw := p.SteadyStatePower(9.81, p.ResonantFreq(), p.OptimalLoadAtResonance())
	if pw < 1e-8 || pw > 1e-5 {
		t.Fatalf("power %v W outside the MEMS sub-µW band", pw)
	}
	ceiling := math.Pow(p.Mass*9.81, 2) / (8 * p.DampingC)
	if pw > ceiling {
		t.Fatalf("power %v exceeds the damping-limited ceiling %v", pw, ceiling)
	}
}
