// Package harvester models the tunable electromagnetic vibration
// microgenerator that powers the sensor node: a seismic proof mass on a
// cantilever spring, electromagnetically coupled to a coil, with a
// magnetic-force resonance-tuning mechanism and displacement end-stops.
//
// The mechanical/electrical model follows the companion journal paper [2]
// (Kazmierski et al., IEEE Sensors J. 2012) and the linearized-simulation
// paper [4]:
//
//	m·ẍ + c_p·ẋ + k_eff(d)·x + F_stop(x) + Γ·i = −m·a(t)
//	L·di/dt + R_c·i + v_load = Γ·ẋ
//
// where x is the proof-mass displacement relative to the frame, a(t) the
// frame acceleration, Γ the electromagnetic coupling, and d the gap between
// the two axial tuning magnets. Closing the gap adds magnetic stiffness
//
//	k_t(d) = K_t·((d_min/d)^p − r) / (1 − r),  r = (d_min/d_max)^p
//
// normalized so that k_t(d_max) = 0 and k_t(d_min) = K_t, which raises the
// mechanical resonance from the untuned f_lo up to f_hi — the tunable band
// of the physical Southampton cantilever device (tens of Hz).
//
// The hard displacement end-stop F_stop is the dominant model nonlinearity;
// it is what forces the reference simulator into Newton–Raphson iterations
// and what the explicit linearized state-space engine of [4] handles by
// per-step linearization.
package harvester

import (
	"fmt"
	"math"
)

// Params describes a tunable electromagnetic microgenerator.
type Params struct {
	Mass     float64 // proof mass (kg)
	SpringK  float64 // untuned spring stiffness (N/m)
	DampingC float64 // parasitic (mechanical) damping (N·s/m)
	Gamma    float64 // electromagnetic coupling Γ (V·s/m ≡ N/A)
	CoilR    float64 // coil resistance (Ω)
	CoilL    float64 // coil inductance (H)

	MaxDisp float64 // displacement at which the end-stop engages (m)
	StopK   float64 // end-stop contact stiffness (N/m)

	TuneKMax float64 // added magnetic stiffness at the minimum gap (N/m)
	GapMin   float64 // minimum tuning-magnet gap (m)
	GapMax   float64 // maximum tuning-magnet gap (m)
	GapExp   float64 // magnetic force-law exponent p (≈3 for dipoles)
}

// Default returns parameters approximating the Southampton tunable
// cantilever microgenerator of [2]: ~45 Hz untuned resonance, tunable to
// ~90 Hz, delivering on the order of 100 µW at 0.6 m/s² excitation.
func Default() Params {
	m := 0.020                // 20 g proof mass
	f0 := 45.0                // untuned resonance (Hz)
	k := m * sq(2*math.Pi*f0) // ≈ 1599 N/m
	return Params{
		Mass:     m,
		SpringK:  k,
		DampingC: 0.06, // Q ≈ m·ω0/c ≈ 94
		Gamma:    4.2,
		CoilR:    1200,
		CoilL:    0.05,
		MaxDisp:  1.5e-3,
		StopK:    2e5,
		TuneKMax: 3 * k, // f_hi = 2·f_lo = 90 Hz
		GapMin:   1.2e-3,
		GapMax:   8e-3,
		GapExp:   3,
	}
}

func sq(x float64) float64 { return x * x }

// Validate checks physical plausibility of the parameter set.
func (p Params) Validate() error {
	switch {
	case p.Mass <= 0:
		return fmt.Errorf("harvester: mass %g must be positive", p.Mass)
	case p.SpringK <= 0:
		return fmt.Errorf("harvester: spring stiffness %g must be positive", p.SpringK)
	case p.DampingC < 0:
		return fmt.Errorf("harvester: damping %g must be non-negative", p.DampingC)
	case p.Gamma < 0:
		return fmt.Errorf("harvester: coupling %g must be non-negative", p.Gamma)
	case p.CoilR <= 0:
		return fmt.Errorf("harvester: coil resistance %g must be positive", p.CoilR)
	case p.CoilL < 0:
		return fmt.Errorf("harvester: coil inductance %g must be non-negative", p.CoilL)
	case p.MaxDisp <= 0:
		return fmt.Errorf("harvester: displacement limit %g must be positive", p.MaxDisp)
	case p.StopK < 0:
		return fmt.Errorf("harvester: end-stop stiffness %g must be non-negative", p.StopK)
	case p.TuneKMax < 0:
		return fmt.Errorf("harvester: tuning stiffness %g must be non-negative", p.TuneKMax)
	case p.GapMin <= 0 || p.GapMax <= p.GapMin:
		return fmt.Errorf("harvester: bad gap range [%g, %g]", p.GapMin, p.GapMax)
	case p.GapExp <= 0:
		return fmt.Errorf("harvester: force-law exponent %g must be positive", p.GapExp)
	}
	return nil
}

// TuneStiffness returns the added magnetic stiffness k_t(gap) in N/m. The
// gap is clamped to [GapMin, GapMax].
func (p Params) TuneStiffness(gap float64) float64 {
	if p.TuneKMax == 0 {
		return 0
	}
	gap = p.ClampGap(gap)
	r := math.Pow(p.GapMin/p.GapMax, p.GapExp)
	return p.TuneKMax * (math.Pow(p.GapMin/gap, p.GapExp) - r) / (1 - r)
}

// ClampGap limits a requested gap to the mechanical travel of the actuator.
func (p Params) ClampGap(gap float64) float64 {
	if gap < p.GapMin {
		return p.GapMin
	}
	if gap > p.GapMax {
		return p.GapMax
	}
	return gap
}

// EffectiveStiffness returns k_eff(gap) = SpringK + k_t(gap).
func (p Params) EffectiveStiffness(gap float64) float64 {
	return p.SpringK + p.TuneStiffness(gap)
}

// ResonantFreq returns the (small-signal) resonant frequency in Hz at the
// given tuning gap.
func (p Params) ResonantFreq(gap float64) float64 {
	return math.Sqrt(p.EffectiveStiffness(gap)/p.Mass) / (2 * math.Pi)
}

// FreqRange returns the tunable band [f_lo, f_hi] in Hz.
func (p Params) FreqRange() (lo, hi float64) {
	return p.ResonantFreq(p.GapMax), p.ResonantFreq(p.GapMin)
}

// GapForFreq returns the tuning gap that sets the resonance to f (Hz). The
// result is clamped to the achievable band; ok reports whether f was inside
// the band.
func (p Params) GapForFreq(f float64) (gap float64, ok bool) {
	lo, hi := p.FreqRange()
	if f <= lo {
		return p.GapMax, f >= lo-1e-9
	}
	if f >= hi {
		return p.GapMin, f <= hi+1e-9
	}
	// Bisection on the monotone-decreasing ResonantFreq(gap).
	a, b := p.GapMin, p.GapMax
	for i := 0; i < 100; i++ {
		mid := 0.5 * (a + b)
		if p.ResonantFreq(mid) > f {
			a = mid
		} else {
			b = mid
		}
		if b-a < 1e-12 {
			break
		}
	}
	return 0.5 * (a + b), true
}

// StopForce returns the end-stop contact force for displacement x: zero
// inside ±MaxDisp, a stiff linear spring beyond.
func (p Params) StopForce(x float64) float64 {
	switch {
	case x > p.MaxDisp:
		return p.StopK * (x - p.MaxDisp)
	case x < -p.MaxDisp:
		return p.StopK * (x + p.MaxDisp)
	default:
		return 0
	}
}

// ElectricalDamping returns the equivalent electrical damping coefficient
// Γ²/(R_c + rload) in N·s/m for a resistive load, valid when the coil
// inductance is negligible at the operating frequency.
func (p Params) ElectricalDamping(rload float64) float64 {
	return sq(p.Gamma) / (p.CoilR + rload)
}

// SteadyStatePower returns the analytic average power (W) delivered to a
// resistive load rload under sinusoidal base acceleration of amplitude
// accel (m/s²) at frequency f (Hz), for the linear regime (no end-stop
// contact, coil inductance neglected). It is the closed-form used to verify
// the transient engines and to seed the behavioural fast path.
func (p Params) SteadyStatePower(accel, f, rload, gap float64) float64 {
	w := 2 * math.Pi * f
	k := p.EffectiveStiffness(gap)
	cTot := p.DampingC + p.ElectricalDamping(rload)
	// Relative displacement amplitude X = m·A / |k − mω² + jωc|.
	den := math.Hypot(k-p.Mass*w*w, cTot*w)
	if den == 0 {
		return 0
	}
	x := p.Mass * accel / den
	vAmp := w * x // velocity amplitude
	iAmp := p.Gamma * vAmp / (p.CoilR + rload)
	return 0.5 * sq(iAmp) * rload
}

// SteadyStateDisplacement returns the analytic displacement amplitude (m)
// in the linear regime for the same conditions as SteadyStatePower.
func (p Params) SteadyStateDisplacement(accel, f, rload, gap float64) float64 {
	w := 2 * math.Pi * f
	k := p.EffectiveStiffness(gap)
	cTot := p.DampingC + p.ElectricalDamping(rload)
	den := math.Hypot(k-p.Mass*w*w, cTot*w)
	if den == 0 {
		return math.Inf(1)
	}
	return p.Mass * accel / den
}

// OptimalLoad returns the resistive load that maximizes delivered power at
// resonance: R_L = R_c + Γ²/c_p (impedance matching including the
// mechanical damping reflected into the electrical domain).
func (p Params) OptimalLoad() float64 {
	if p.DampingC == 0 {
		return math.Inf(1)
	}
	return p.CoilR + sq(p.Gamma)/p.DampingC
}

// State is the electromechanical state of the harvester.
type State struct {
	X float64 // proof-mass displacement (m)
	V float64 // proof-mass velocity (m/s)
	I float64 // coil current (A)
}

// Derivatives computes the state derivatives under frame acceleration
// accel and coil terminal voltage vLoad (the voltage the power-conditioning
// stage presents to the coil). gap is the current tuning gap.
func (p Params) Derivatives(s State, accel, vLoad, gap float64) (dx, dv, di float64) {
	k := p.EffectiveStiffness(gap)
	dx = s.V
	dv = (-p.DampingC*s.V - k*s.X - p.StopForce(s.X) - p.Gamma*s.I - p.Mass*accel) / p.Mass
	if p.CoilL > 0 {
		di = (p.Gamma*s.V - p.CoilR*s.I - vLoad) / p.CoilL
	} else {
		di = 0 // caller resolves i algebraically when L = 0
	}
	return dx, dv, di
}

// AlgebraicCurrent returns the coil current for the L=0 case with the coil
// terminated by resistance rload: i = Γ·v / (R_c + R_L).
func (p Params) AlgebraicCurrent(v, rload float64) float64 {
	return p.Gamma * v / (p.CoilR + rload)
}

// EMF returns the open-circuit electromotive force Γ·v for proof-mass
// velocity v.
func (p Params) EMF(v float64) float64 { return p.Gamma * v }
