// Package power models the power-conditioning chain between the harvester
// coil and the sensor-node load: an N-stage diode–capacitor voltage
// multiplier, a supercapacitor energy store with leakage, and a regulator
// with undervoltage lockout.
//
// Two multiplier models are provided, mirroring the paper's two simulation
// speeds:
//
//   - Behavioural (this file): the charge-pump is reduced to an open-circuit
//     voltage V_oc = 2N·(V_in − V_d) and a Dickson-style output resistance
//     R_out = N/(f·C_stage), giving a smooth algebraic charging current.
//     This is what the fast linearized state-space engine uses.
//   - Full circuit (BuildMultiplierCircuit): the exact diode ladder netlist
//     solved by the Newton–Raphson MNA engine in internal/circuit, used as
//     the accuracy reference.
package power

import (
	"fmt"
	"math"

	"repro/internal/circuit"
)

// MultiplierParams describes an N-stage voltage multiplier (Villard
// cascade / Dickson charge pump built from Schottky diodes).
type MultiplierParams struct {
	Stages    int     // number of doubling stages N ≥ 1
	StageCap  float64 // per-stage pump capacitance (F)
	DiodeDrop float64 // effective forward drop per diode (V)
	InputR    float64 // equivalent AC input resistance presented to the coil (Ω)
}

// DefaultMultiplier returns a 5-stage BAT54-based pump matching the
// harvester's µW power scale.
func DefaultMultiplier() MultiplierParams {
	return MultiplierParams{Stages: 5, StageCap: 10e-6, DiodeDrop: 0.22, InputR: 4000}
}

// Validate checks the parameter set.
func (m MultiplierParams) Validate() error {
	switch {
	case m.Stages < 1:
		return fmt.Errorf("power: multiplier needs ≥1 stage, got %d", m.Stages)
	case m.StageCap <= 0:
		return fmt.Errorf("power: stage capacitance %g must be positive", m.StageCap)
	case m.DiodeDrop < 0:
		return fmt.Errorf("power: diode drop %g must be non-negative", m.DiodeDrop)
	case m.InputR <= 0:
		return fmt.Errorf("power: input resistance %g must be positive", m.InputR)
	}
	return nil
}

// OpenCircuitVoltage returns the unloaded DC output for sinusoidal input of
// amplitude vin: V_oc = 2N·(vin − V_d), clamped at zero when the input
// cannot overcome the diode drops.
func (m MultiplierParams) OpenCircuitVoltage(vin float64) float64 {
	v := 2 * float64(m.Stages) * (vin - m.DiodeDrop)
	if v < 0 {
		return 0
	}
	return v
}

// OutputResistance returns the Dickson charge-pump output resistance
// N/(f·C) at pump frequency f (Hz).
func (m MultiplierParams) OutputResistance(f float64) float64 {
	if f <= 0 {
		return math.Inf(1)
	}
	return float64(m.Stages) / (f * m.StageCap)
}

// ChargeCurrent returns the DC current (A) delivered into a store held at
// voltage vstore, for input amplitude vin at frequency f. The diodes block
// reverse flow, so the current is never negative.
func (m MultiplierParams) ChargeCurrent(vin, f, vstore float64) float64 {
	voc := m.OpenCircuitVoltage(vin)
	if voc <= vstore {
		return 0
	}
	return (voc - vstore) / m.OutputResistance(f)
}

// Supercap is a supercapacitor energy store with parallel leakage.
type Supercap struct {
	C     float64 // capacitance (F)
	LeakR float64 // parallel leakage resistance (Ω); 0 disables leakage
	VMax  float64 // overvoltage clamp (V); 0 disables clamping
}

// DefaultSupercap returns a 0.4 F, 5.5 V-rated store with realistic
// leakage (~1 µA at 4 V).
func DefaultSupercap() Supercap { return Supercap{C: 0.4, LeakR: 4e6, VMax: 5.5} }

// Validate checks the parameter set.
func (s Supercap) Validate() error {
	switch {
	case s.C <= 0:
		return fmt.Errorf("power: supercap capacitance %g must be positive", s.C)
	case s.LeakR < 0:
		return fmt.Errorf("power: leakage resistance %g must be non-negative", s.LeakR)
	case s.VMax < 0:
		return fmt.Errorf("power: voltage limit %g must be non-negative", s.VMax)
	}
	return nil
}

// Energy returns the stored energy ½CV² (J) at voltage v.
func (s Supercap) Energy(v float64) float64 { return 0.5 * s.C * v * v }

// Step advances the store voltage over dt given charging current iIn and
// load current iOut (both A), returning the new voltage. Leakage is applied
// implicitly (exact exponential decay) so large dt remains stable.
func (s Supercap) Step(v, dt, iIn, iOut float64) float64 {
	return s.StepWithLeak(v, dt, iIn, iOut, s.LeakFactor(dt))
}

// LeakFactor returns the self-discharge factor e^(−dt/(R·C)) applied over a
// step of dt, or 1 when leakage is disabled. Fixed-step integrators can
// compute it once and use StepWithLeak to avoid an exp per step.
func (s Supercap) LeakFactor(dt float64) float64 {
	if s.LeakR <= 0 {
		return 1
	}
	return math.Exp(-dt / (s.LeakR * s.C))
}

// StepWithLeak is Step with the leak factor supplied by the caller
// (normally a memoized LeakFactor(dt)).
func (s Supercap) StepWithLeak(v, dt, iIn, iOut, leak float64) float64 {
	// Net external current.
	v += (iIn - iOut) * dt / s.C
	if s.LeakR > 0 {
		v *= leak
	}
	if v < 0 {
		v = 0
	}
	if s.VMax > 0 && v > s.VMax {
		v = s.VMax
	}
	return v
}

// Regulator converts supercap voltage to the node supply rail with a fixed
// efficiency and an undervoltage-lockout (UVLO) comparator with hysteresis:
// the output enables when the store rises above VOn and disables when it
// falls below VOff.
type Regulator struct {
	VOut float64 // regulated output voltage (V)
	Eff  float64 // conversion efficiency (0–1]
	VOn  float64 // UVLO enable threshold (V)
	VOff float64 // UVLO disable threshold (V); must be < VOn
}

// DefaultRegulator returns a 1.8 V, 85 %-efficient buck with a 2.8/2.4 V
// UVLO window.
func DefaultRegulator() Regulator { return Regulator{VOut: 1.8, Eff: 0.85, VOn: 2.8, VOff: 2.4} }

// Validate checks the parameter set.
func (r Regulator) Validate() error {
	switch {
	case r.VOut <= 0:
		return fmt.Errorf("power: regulator output %g must be positive", r.VOut)
	case r.Eff <= 0 || r.Eff > 1:
		return fmt.Errorf("power: efficiency %g must be in (0,1]", r.Eff)
	case r.VOn <= r.VOff:
		return fmt.Errorf("power: UVLO window VOn=%g must exceed VOff=%g", r.VOn, r.VOff)
	case r.VOff < 0:
		return fmt.Errorf("power: VOff %g must be non-negative", r.VOff)
	}
	return nil
}

// NextEnabled applies the UVLO comparator: given the previous enable state
// and the current store voltage it returns the new state.
func (r Regulator) NextEnabled(enabled bool, vstore float64) bool {
	if enabled {
		return vstore > r.VOff
	}
	return vstore >= r.VOn
}

// InputCurrent returns the current (A) drawn from the store at voltage
// vstore to supply load power pLoad (W) at the regulated rail. Returns 0
// when the regulator is disabled or the store is empty.
func (r Regulator) InputCurrent(enabled bool, vstore, pLoad float64) float64 {
	if !enabled || vstore <= 0 || pLoad <= 0 {
		return 0
	}
	return pLoad / (r.Eff * vstore)
}

// BuildMultiplierCircuit constructs the full nonlinear netlist of an
// N-stage Villard cascade driven by the harvester coil (modelled as an EMF
// source behind the coil resistance), charging a storage capacitor storeC
// preloaded to storeV0 and bled by loadR. It returns the circuit and the
// node index of the store, ready for circuit.Transient — this is the
// Newton–Raphson reference model for table R-T1.
func BuildMultiplierCircuit(stages int, stageCap float64, d circuit.DiodeParams, coilR float64, emf circuit.Waveform, storeC, storeV0, loadR float64) (*circuit.Circuit, int, error) {
	if stages < 1 {
		return nil, 0, fmt.Errorf("power: need ≥1 stage, got %d", stages)
	}
	c := circuit.New()
	src := c.Node("src")
	in := c.Node("in")
	if err := c.AddVoltageSource("Vemf", src, 0, emf); err != nil {
		return nil, 0, err
	}
	if err := c.AddResistor("Rcoil", src, in, coilR); err != nil {
		return nil, 0, err
	}
	// Cockcroft–Walton (Greinacher cascade): a push column of capacitors
	// chained from the AC input, a DC column chained from ground, and a
	// diode zigzag between them. Each stage lifts the DC rail by
	// ≈2·(V_in − V_d).
	prevPush := in // AC (push) column entry
	prevDC := 0    // DC column entry (ground)
	for s := 0; s < stages; s++ {
		push := c.Node(fmt.Sprintf("p%d", s))
		dc := c.Node(fmt.Sprintf("dc%d", s))
		if err := c.AddCapacitor(fmt.Sprintf("Cp%d", s), prevPush, push, stageCap, 0); err != nil {
			return nil, 0, err
		}
		if err := c.AddDiode(fmt.Sprintf("Da%d", s), prevDC, push, d); err != nil {
			return nil, 0, err
		}
		if err := c.AddDiode(fmt.Sprintf("Db%d", s), push, dc, d); err != nil {
			return nil, 0, err
		}
		if err := c.AddCapacitor(fmt.Sprintf("Cs%d", s), dc, prevDC, stageCap, 0); err != nil {
			return nil, 0, err
		}
		prevPush = push
		prevDC = dc
	}
	if err := c.AddCapacitor("Cstore", prevDC, 0, storeC, storeV0); err != nil {
		return nil, 0, err
	}
	if loadR > 0 {
		if err := c.AddResistor("Rload", prevDC, 0, loadR); err != nil {
			return nil, 0, err
		}
	}
	return c, prevDC, nil
}
