package power

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
)

func TestMultiplierValidate(t *testing.T) {
	if err := DefaultMultiplier().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []MultiplierParams{
		{Stages: 0, StageCap: 1e-6, DiodeDrop: 0.2, InputR: 100},
		{Stages: 3, StageCap: 0, DiodeDrop: 0.2, InputR: 100},
		{Stages: 3, StageCap: 1e-6, DiodeDrop: -0.1, InputR: 100},
		{Stages: 3, StageCap: 1e-6, DiodeDrop: 0.2, InputR: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d not rejected", i)
		}
	}
}

func TestOpenCircuitVoltage(t *testing.T) {
	m := MultiplierParams{Stages: 3, StageCap: 1e-6, DiodeDrop: 0.2, InputR: 100}
	if got := m.OpenCircuitVoltage(1.0); math.Abs(got-4.8) > 1e-12 {
		t.Fatalf("Voc(1V) = %v, want 4.8", got)
	}
	// Below the diode drop the pump cannot start.
	if got := m.OpenCircuitVoltage(0.1); got != 0 {
		t.Fatalf("Voc(0.1V) = %v, want 0", got)
	}
}

func TestOutputResistance(t *testing.T) {
	m := MultiplierParams{Stages: 4, StageCap: 10e-6, DiodeDrop: 0.2, InputR: 100}
	if got := m.OutputResistance(50); math.Abs(got-8000) > 1e-9 {
		t.Fatalf("Rout = %v, want 8000", got)
	}
	if !math.IsInf(m.OutputResistance(0), 1) {
		t.Fatal("Rout at f=0 must be +Inf")
	}
}

func TestChargeCurrentBlocksReverse(t *testing.T) {
	m := DefaultMultiplier()
	// Store above V_oc: diodes block, current is zero, never negative.
	if got := m.ChargeCurrent(0.5, 50, 100); got != 0 {
		t.Fatalf("reverse current = %v", got)
	}
	// Store below V_oc: positive current proportional to headroom.
	i1 := m.ChargeCurrent(1.0, 50, 1.0)
	i2 := m.ChargeCurrent(1.0, 50, 3.0)
	if i1 <= 0 || i2 <= 0 || i2 >= i1 {
		t.Fatalf("headroom scaling broken: i(1V)=%v i(3V)=%v", i1, i2)
	}
}

func TestChargeCurrentNonNegativeProperty(t *testing.T) {
	m := DefaultMultiplier()
	f := func(vin, vstore float64) bool {
		return m.ChargeCurrent(math.Abs(vin), 50, math.Abs(vstore)) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSupercapValidateAndEnergy(t *testing.T) {
	if err := DefaultSupercap().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Supercap{C: 0}).Validate(); err == nil {
		t.Fatal("zero capacitance must be rejected")
	}
	if err := (Supercap{C: 1, LeakR: -1}).Validate(); err == nil {
		t.Fatal("negative leakage must be rejected")
	}
	s := Supercap{C: 0.5}
	if got := s.Energy(4); math.Abs(got-4) > 1e-12 {
		t.Fatalf("E = %v, want 4 J", got)
	}
}

func TestSupercapStepCharging(t *testing.T) {
	s := Supercap{C: 1, LeakR: 0}
	v := s.Step(0, 10, 0.1, 0) // 0.1 A for 10 s into 1 F: +1 V
	if math.Abs(v-1) > 1e-12 {
		t.Fatalf("v = %v, want 1", v)
	}
	v = s.Step(v, 10, 0, 0.05) // discharge 0.05 A for 10 s: −0.5 V
	if math.Abs(v-0.5) > 1e-12 {
		t.Fatalf("v = %v, want 0.5", v)
	}
}

func TestSupercapLeakageExactDecay(t *testing.T) {
	s := Supercap{C: 1, LeakR: 100}
	// τ = 100 s; after 100 s with no external current: v = e^{−1}·v0.
	v := s.Step(1, 100, 0, 0)
	if math.Abs(v-math.Exp(-1)) > 1e-12 {
		t.Fatalf("leak decay v = %v, want e^-1", v)
	}
}

func TestSupercapClampsAndFloors(t *testing.T) {
	s := Supercap{C: 1, VMax: 5}
	if v := s.Step(4.9, 10, 1, 0); v != 5 {
		t.Fatalf("overvoltage clamp: v = %v, want 5", v)
	}
	if v := s.Step(0.1, 10, 0, 1); v != 0 {
		t.Fatalf("floor: v = %v, want 0", v)
	}
}

func TestSupercapStepNeverNegativeProperty(t *testing.T) {
	s := DefaultSupercap()
	f := func(v0, iIn, iOut float64) bool {
		v := s.Step(math.Abs(v0), 1, math.Abs(iIn), math.Abs(iOut))
		return v >= 0 && (s.VMax == 0 || v <= s.VMax)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegulatorValidate(t *testing.T) {
	if err := DefaultRegulator().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Regulator{
		{VOut: 0, Eff: 0.9, VOn: 2, VOff: 1},
		{VOut: 1.8, Eff: 0, VOn: 2, VOff: 1},
		{VOut: 1.8, Eff: 1.5, VOn: 2, VOff: 1},
		{VOut: 1.8, Eff: 0.9, VOn: 1, VOff: 2},
		{VOut: 1.8, Eff: 0.9, VOn: 1, VOff: -0.5},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d not rejected", i)
		}
	}
}

func TestRegulatorUVLOHysteresis(t *testing.T) {
	r := Regulator{VOut: 1.8, Eff: 0.85, VOn: 2.8, VOff: 2.4}
	// Disabled, rising: enables only at VOn.
	if r.NextEnabled(false, 2.5) {
		t.Fatal("must stay off below VOn")
	}
	if !r.NextEnabled(false, 2.8) {
		t.Fatal("must enable at VOn")
	}
	// Enabled, falling: stays on until VOff.
	if !r.NextEnabled(true, 2.5) {
		t.Fatal("must stay on above VOff")
	}
	if r.NextEnabled(true, 2.4) {
		t.Fatal("must drop out at VOff")
	}
}

func TestRegulatorInputCurrent(t *testing.T) {
	r := Regulator{VOut: 1.8, Eff: 0.9, VOn: 2.8, VOff: 2.4}
	// 9 mW load from a 3 V store at 90 %: i = 0.009/(0.9·3) = 3.33 mA.
	got := r.InputCurrent(true, 3, 9e-3)
	if math.Abs(got-9e-3/(0.9*3)) > 1e-15 {
		t.Fatalf("i = %v", got)
	}
	if r.InputCurrent(false, 3, 9e-3) != 0 {
		t.Fatal("disabled regulator must draw nothing")
	}
	if r.InputCurrent(true, 0, 9e-3) != 0 {
		t.Fatal("empty store must draw nothing")
	}
	if r.InputCurrent(true, 3, 0) != 0 {
		t.Fatal("zero load must draw nothing")
	}
}

func TestBuildMultiplierCircuitChargesStore(t *testing.T) {
	// A 3-stage cascade from a 1.5 V EMF behind 1.2 kΩ must pump the store
	// well above the input amplitude. Pump caps are sized (100 nF) so the
	// pump input impedance 1/(2Nf·C) ≈ 33 kΩ dwarfs the coil resistance —
	// undersized pump caps would drop most of the EMF across the coil.
	emf := circuit.Sin(1.5, 50, 0, 0)
	c, storeNode, err := BuildMultiplierCircuit(3, 100e-9, circuit.Schottky(), 1200, emf, 4.7e-6, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Transient(6.0, 5e-5, circuit.TransientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	v := res.VoltageAt(storeNode)
	final := v[len(v)-1]
	if final < 2.5 {
		t.Fatalf("store only reached %v V; multiplier not pumping", final)
	}
	// Monotone non-decreasing store voltage (no load, ideal diodes block).
	for i := 1; i < len(v); i++ {
		if v[i] < v[i-1]-1e-3 {
			t.Fatalf("store voltage dropped at sample %d: %v → %v", i, v[i-1], v[i])
		}
	}
}

func TestBuildMultiplierMoreStagesMoreVoltage(t *testing.T) {
	// Compare asymptotic (lightly loaded, low source impedance) outputs so
	// the stage count — not the charging time constant — dominates.
	run := func(stages int) float64 {
		emf := circuit.Sin(1.5, 50, 0, 0)
		c, storeNode, err := BuildMultiplierCircuit(stages, 1e-6, circuit.Schottky(), 1, emf, 1e-6, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Transient(1.5, 5e-5, circuit.TransientConfig{})
		if err != nil {
			t.Fatal(err)
		}
		v := res.VoltageAt(storeNode)
		return v[len(v)-1]
	}
	v2, v4 := run(2), run(4)
	if v4 <= v2 {
		t.Fatalf("4-stage (%v V) must out-pump 2-stage (%v V)", v4, v2)
	}
}

func TestBuildMultiplierCircuitValidation(t *testing.T) {
	if _, _, err := BuildMultiplierCircuit(0, 1e-6, circuit.Schottky(), 100, circuit.DC(0), 1e-6, 0, 0); err == nil {
		t.Fatal("zero stages must error")
	}
}

func TestBehaviouralVsCircuitShape(t *testing.T) {
	// The behavioural model's open-circuit prediction should be within a
	// factor ~2 of the full MNA cascade (diode drops and incomplete
	// settling account for the gap). This anchors the fast path to the
	// reference, matching ablation A5 in DESIGN.md.
	const stages = 3
	const vin = 1.5
	emf := circuit.Sin(vin, 50, 0, 0)
	c, storeNode, err := BuildMultiplierCircuit(stages, 10e-6, circuit.Schottky(), 1, emf, 10e-6, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Transient(4.0, 5e-5, circuit.TransientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	v := res.VoltageAt(storeNode)
	full := v[len(v)-1]
	m := MultiplierParams{Stages: stages, StageCap: 10e-6, DiodeDrop: 0.22, InputR: 4000}
	behav := m.OpenCircuitVoltage(vin)
	if full < behav/2 || full > behav*2 {
		t.Fatalf("behavioural Voc %v vs circuit %v: more than 2× apart", behav, full)
	}
}
