package circuit

import (
	"fmt"
	"math"

	"repro/internal/la"
)

// OPResult holds a DC operating point: node voltages (index by node id;
// ground is 0) and the branch currents of voltage sources and inductors.
type OPResult struct {
	V           []float64
	BranchI     []float64
	NewtonIters int
}

// OperatingPoint solves the DC operating point of the circuit at time
// t = 0: capacitors are opened, inductors shorted, sources held at their
// t = 0 values, and the nonlinear system solved by the same damped
// Newton–Raphson used in transient analysis. This is the classical .OP
// analysis used to initialize transient runs and to bias-check rectifier
// stacks.
func (c *Circuit) OperatingPoint(cfg TransientConfig) (*OPResult, error) {
	cfg.defaults()
	nn := len(c.nodeNames) - 1
	dim := nn + c.nBranch
	if dim == 0 {
		return &OPResult{}, nil
	}
	x := make([]float64, dim)

	for it := 0; it < cfg.MaxNewton; it++ {
		g := la.NewMatrix(dim, dim)
		rhs := make([]float64, dim)

		stampConductance := func(a, b int, val float64) {
			if a > 0 {
				g.Add(a-1, a-1, val)
			}
			if b > 0 {
				g.Add(b-1, b-1, val)
			}
			if a > 0 && b > 0 {
				g.Add(a-1, b-1, -val)
				g.Add(b-1, a-1, -val)
			}
		}
		stampCurrent := func(a, b int, i float64) {
			if a > 0 {
				rhs[a-1] -= i
			}
			if b > 0 {
				rhs[b-1] += i
			}
		}

		for _, e := range c.elems {
			switch e.kind {
			case kindResistor:
				stampConductance(e.a, e.b, 1/e.value)

			case kindCapacitor:
				// Open at DC; a tiny conductance keeps otherwise floating
				// nodes solvable (SPICE's gmin to ground idiom).
				stampConductance(e.a, e.b, 1e-12)

			case kindInductor:
				// Short at DC: branch equation v_a − v_b = 0.
				bi := nn + e.branch
				if e.a > 0 {
					g.Add(e.a-1, bi, 1)
					g.Add(bi, e.a-1, 1)
				}
				if e.b > 0 {
					g.Add(e.b-1, bi, -1)
					g.Add(bi, e.b-1, -1)
				}

			case kindDiode:
				vd := c.branchVoltage(e, x)
				gd, ieq := diodeCompanion(e.diode, vd)
				stampConductance(e.a, e.b, gd)
				stampCurrent(e.a, e.b, ieq)

			case kindVSource:
				bi := nn + e.branch
				if e.a > 0 {
					g.Add(e.a-1, bi, 1)
					g.Add(bi, e.a-1, 1)
				}
				if e.b > 0 {
					g.Add(e.b-1, bi, -1)
					g.Add(bi, e.b-1, -1)
				}
				rhs[bi] += e.wave(0)

			case kindISource:
				stampCurrent(e.a, e.b, e.wave(0))
			}
		}

		lu, err := la.FactorLU(g)
		if err != nil {
			return nil, fmt.Errorf("circuit: singular DC matrix (floating node?): %w", err)
		}
		sol, err := lu.Solve(rhs)
		if err != nil {
			return nil, err
		}
		var maxDelta float64
		for i := 0; i < dim; i++ {
			d := sol[i] - x[i]
			if i < nn {
				if d > cfg.Damping {
					d = cfg.Damping
				} else if d < -cfg.Damping {
					d = -cfg.Damping
				}
				if a := math.Abs(d); a > maxDelta {
					maxDelta = a
				}
			}
			x[i] += d
		}
		if maxDelta <= cfg.VTol {
			res := &OPResult{V: make([]float64, len(c.nodeNames)), NewtonIters: it + 1}
			for n := 1; n < len(c.nodeNames); n++ {
				res.V[n] = x[n-1]
			}
			res.BranchI = append([]float64(nil), x[nn:]...)
			return res, nil
		}
	}
	return nil, ErrNoConverge
}
