package circuit

import "testing"

// BenchmarkTransientRectifier measures the Newton-Raphson MNA engine on a
// half-wave rectifier: the per-step cost that motivates the fast engine.
func BenchmarkTransientRectifier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := New()
		in, out := c.Node("in"), c.Node("out")
		if err := c.AddVoltageSource("V1", in, 0, Sin(2, 100, 0, 0)); err != nil {
			b.Fatal(err)
		}
		if err := c.AddDiode("D1", in, out, Schottky()); err != nil {
			b.Fatal(err)
		}
		if err := c.AddCapacitor("C1", out, 0, 10e-6, 0); err != nil {
			b.Fatal(err)
		}
		if err := c.AddResistor("RL", out, 0, 1e4); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Transient(0.05, 1e-5, TransientConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}
