// Package circuit implements a small SPICE-style nonlinear circuit
// simulator: modified nodal analysis (MNA) with companion models and a
// damped Newton–Raphson inner loop per transient step.
//
// This is the "traditional analogue simulation approach based on
// Newton–Raphson iterations" that the paper identifies as the main cause of
// long CPU times: every timestep rebuilds and refactors the MNA matrix once
// per Newton iteration until the node voltages converge. It serves as the
// trusted reference for the power-conditioning electronics (the multi-stage
// voltage multiplier with Schottky diodes) against which the fast
// behavioural and linearized state-space engines are validated.
//
// Supported elements: resistors, capacitors, inductors, Shockley diodes,
// independent voltage sources (time-varying), independent current sources
// (time-varying). Node 0 is ground.
package circuit

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/la"
)

// ErrNoConverge is returned when the Newton loop fails to converge.
var ErrNoConverge = errors.New("circuit: Newton iteration did not converge")

// DiodeParams are Shockley-model parameters.
type DiodeParams struct {
	IS float64 // saturation current (A)
	N  float64 // ideality factor
	VT float64 // thermal voltage (V); 0 means 25.85 mV
}

// Schottky returns parameters typical of a small-signal Schottky rectifier
// (BAT54-class), the device used in the harvester's voltage multiplier.
func Schottky() DiodeParams { return DiodeParams{IS: 1e-7, N: 1.05} }

// SiliconSmallSignal returns 1N4148-class parameters.
func SiliconSmallSignal() DiodeParams { return DiodeParams{IS: 4.35e-9, N: 1.84} }

func (d DiodeParams) vt() float64 {
	if d.VT > 0 {
		return d.VT
	}
	return 0.02585
}

// Waveform is a time-dependent scalar (source value as a function of time).
type Waveform func(t float64) float64

// DC returns a constant waveform.
func DC(v float64) Waveform { return func(float64) float64 { return v } }

// Sin returns amplitude·sin(2πf·t + phase) + offset.
func Sin(amplitude, freq, phase, offset float64) Waveform {
	return func(t float64) float64 {
		return offset + amplitude*math.Sin(2*math.Pi*freq*t+phase)
	}
}

type elemKind int

const (
	kindResistor elemKind = iota
	kindCapacitor
	kindInductor
	kindDiode
	kindVSource
	kindISource
)

type element struct {
	kind    elemKind
	name    string
	a, b    int // terminal nodes (current flows a→b through the element)
	value   float64
	ic      float64 // initial condition (V for capacitors, A for inductors)
	wave    Waveform
	diode   DiodeParams
	branch  int // extra MNA variable index for V sources and inductors (-1 otherwise)
	state   float64
	stateOK bool
}

// Circuit is a netlist under construction plus simulation state.
type Circuit struct {
	nodeNames []string
	nodeIndex map[string]int
	elems     []*element
	names     map[string]bool
	nBranch   int
}

// New returns an empty circuit with only the ground node ("0").
func New() *Circuit {
	c := &Circuit{nodeIndex: map[string]int{"0": 0}, nodeNames: []string{"0"}, names: map[string]bool{}}
	return c
}

// Node returns the index for a named node, creating it on first use.
// The name "0" (or "gnd") is ground.
func (c *Circuit) Node(name string) int {
	if name == "gnd" {
		name = "0"
	}
	if i, ok := c.nodeIndex[name]; ok {
		return i
	}
	i := len(c.nodeNames)
	c.nodeIndex[name] = i
	c.nodeNames = append(c.nodeNames, name)
	return i
}

// NumNodes returns the node count including ground.
func (c *Circuit) NumNodes() int { return len(c.nodeNames) }

func (c *Circuit) addElem(e *element) error {
	if c.names[e.name] {
		return fmt.Errorf("circuit: duplicate element name %q", e.name)
	}
	if e.a < 0 || e.a >= len(c.nodeNames) || e.b < 0 || e.b >= len(c.nodeNames) {
		return fmt.Errorf("circuit: element %q references unknown node", e.name)
	}
	if e.a == e.b {
		return fmt.Errorf("circuit: element %q is shorted (both terminals on node %d)", e.name, e.a)
	}
	e.branch = -1
	if e.kind == kindVSource || e.kind == kindInductor {
		e.branch = c.nBranch
		c.nBranch++
	}
	c.names[e.name] = true
	c.elems = append(c.elems, e)
	return nil
}

// AddResistor adds a resistor of r ohms between nodes a and b.
func (c *Circuit) AddResistor(name string, a, b int, r float64) error {
	if r <= 0 {
		return fmt.Errorf("circuit: resistor %q must have positive resistance, got %g", name, r)
	}
	return c.addElem(&element{kind: kindResistor, name: name, a: a, b: b, value: r})
}

// AddCapacitor adds a capacitor of f farads with initial voltage ic.
func (c *Circuit) AddCapacitor(name string, a, b int, f, ic float64) error {
	if f <= 0 {
		return fmt.Errorf("circuit: capacitor %q must have positive capacitance, got %g", name, f)
	}
	return c.addElem(&element{kind: kindCapacitor, name: name, a: a, b: b, value: f, ic: ic})
}

// AddInductor adds an inductor of h henries with initial current ic.
func (c *Circuit) AddInductor(name string, a, b int, h, ic float64) error {
	if h <= 0 {
		return fmt.Errorf("circuit: inductor %q must have positive inductance, got %g", name, h)
	}
	return c.addElem(&element{kind: kindInductor, name: name, a: a, b: b, value: h, ic: ic})
}

// AddDiode adds a diode with anode a and cathode b.
func (c *Circuit) AddDiode(name string, a, b int, p DiodeParams) error {
	if p.IS <= 0 || p.N <= 0 {
		return fmt.Errorf("circuit: diode %q has invalid parameters %+v", name, p)
	}
	return c.addElem(&element{kind: kindDiode, name: name, a: a, b: b, diode: p})
}

// AddVoltageSource adds an independent voltage source v(a)−v(b) = wave(t).
func (c *Circuit) AddVoltageSource(name string, a, b int, wave Waveform) error {
	if wave == nil {
		return fmt.Errorf("circuit: voltage source %q needs a waveform", name)
	}
	return c.addElem(&element{kind: kindVSource, name: name, a: a, b: b, wave: wave})
}

// AddCurrentSource adds an independent current source injecting wave(t)
// amperes from node a into node b.
func (c *Circuit) AddCurrentSource(name string, a, b int, wave Waveform) error {
	if wave == nil {
		return fmt.Errorf("circuit: current source %q needs a waveform", name)
	}
	return c.addElem(&element{kind: kindISource, name: name, a: a, b: b, wave: wave})
}

// TransientConfig controls the transient analysis.
type TransientConfig struct {
	MaxNewton int     // Newton iteration cap per step (default 100)
	VTol      float64 // voltage convergence tolerance (default 1e-6 V)
	Damping   float64 // max Newton voltage update per iteration (default 0.5 V)
}

func (cfg *TransientConfig) defaults() {
	if cfg.MaxNewton <= 0 {
		cfg.MaxNewton = 100
	}
	if cfg.VTol <= 0 {
		cfg.VTol = 1e-6
	}
	if cfg.Damping <= 0 {
		cfg.Damping = 0.5
	}
}

// TransientStats counts simulation work for the speed-comparison tables.
type TransientStats struct {
	Steps       int
	NewtonIters int
	LUFactors   int
}

// Result holds transient waveforms sampled at every accepted step.
type Result struct {
	Times []float64
	// V[node] is the node-voltage waveform; index by Circuit node index.
	V     [][]float64
	Stats TransientStats
}

// VoltageAt returns the waveform of the given node.
func (r *Result) VoltageAt(node int) []float64 { return r.V[node] }

// Transient runs a fixed-step transient analysis from 0 to tEnd with step h
// using backward-Euler companion models and damped Newton–Raphson.
// Capacitor and inductor initial conditions are applied at t = 0.
func (c *Circuit) Transient(tEnd, h float64, cfg TransientConfig) (*Result, error) {
	if tEnd <= 0 || h <= 0 || h > tEnd {
		return nil, fmt.Errorf("circuit: bad transient interval tEnd=%g h=%g", tEnd, h)
	}
	cfg.defaults()
	nn := len(c.nodeNames) - 1 // unknown node voltages (excluding ground)
	dim := nn + c.nBranch

	// Initialize element states (capacitor voltage, inductor current).
	for _, e := range c.elems {
		e.state = e.ic
		e.stateOK = true
	}

	x := make([]float64, dim) // solution: node voltages then branch currents
	res := &Result{}
	nSteps := int(math.Ceil(tEnd / h))
	res.Times = make([]float64, 0, nSteps+1)
	res.V = make([][]float64, len(c.nodeNames))
	for i := range res.V {
		res.V[i] = make([]float64, 0, nSteps+1)
	}
	record := func(t float64) {
		res.Times = append(res.Times, t)
		res.V[0] = append(res.V[0], 0)
		for n := 1; n < len(c.nodeNames); n++ {
			res.V[n] = append(res.V[n], x[n-1])
		}
	}
	record(0)

	for s := 1; s <= nSteps; s++ {
		t := float64(s) * h
		if t > tEnd {
			t = tEnd
		}
		if err := c.solveStep(t, h, x, cfg, &res.Stats); err != nil {
			return res, fmt.Errorf("at t=%g: %w", t, err)
		}
		// Commit companion states.
		for _, e := range c.elems {
			switch e.kind {
			case kindCapacitor:
				e.state = c.branchVoltage(e, x)
			case kindInductor:
				e.state = x[nn+e.branch]
			}
		}
		res.Stats.Steps++
		record(t)
	}
	return res, nil
}

func (c *Circuit) branchVoltage(e *element, x []float64) float64 {
	var va, vb float64
	if e.a > 0 {
		va = x[e.a-1]
	}
	if e.b > 0 {
		vb = x[e.b-1]
	}
	return va - vb
}

// solveStep performs the damped Newton iteration for one backward-Euler
// step ending at time t, updating x in place.
func (c *Circuit) solveStep(t, h float64, x []float64, cfg TransientConfig, st *TransientStats) error {
	nn := len(c.nodeNames) - 1
	dim := nn + c.nBranch
	xNew := make([]float64, dim)
	copy(xNew, x) // previous solution as the Newton seed

	for it := 0; it < cfg.MaxNewton; it++ {
		st.NewtonIters++
		g := la.NewMatrix(dim, dim)
		rhs := make([]float64, dim)

		stampConductance := func(a, b int, val float64) {
			if a > 0 {
				g.Add(a-1, a-1, val)
			}
			if b > 0 {
				g.Add(b-1, b-1, val)
			}
			if a > 0 && b > 0 {
				g.Add(a-1, b-1, -val)
				g.Add(b-1, a-1, -val)
			}
		}
		stampCurrent := func(a, b int, i float64) {
			// Current i flows out of node a into node b.
			if a > 0 {
				rhs[a-1] -= i
			}
			if b > 0 {
				rhs[b-1] += i
			}
		}

		for _, e := range c.elems {
			switch e.kind {
			case kindResistor:
				stampConductance(e.a, e.b, 1/e.value)

			case kindCapacitor:
				// Backward Euler: i = C/h·(v − v_prev).
				geq := e.value / h
				stampConductance(e.a, e.b, geq)
				stampCurrent(e.a, e.b, -geq*e.state)

			case kindInductor:
				// Branch equation: v_a − v_b − (L/h)·i = −(L/h)·i_prev.
				bi := nn + e.branch
				if e.a > 0 {
					g.Add(e.a-1, bi, 1)
					g.Add(bi, e.a-1, 1)
				}
				if e.b > 0 {
					g.Add(e.b-1, bi, -1)
					g.Add(bi, e.b-1, -1)
				}
				g.Add(bi, bi, -e.value/h)
				rhs[bi] += -e.value / h * e.state

			case kindDiode:
				vd := c.branchVoltage(e, xNew)
				gd, ieq := diodeCompanion(e.diode, vd)
				stampConductance(e.a, e.b, gd)
				stampCurrent(e.a, e.b, ieq)

			case kindVSource:
				bi := nn + e.branch
				if e.a > 0 {
					g.Add(e.a-1, bi, 1)
					g.Add(bi, e.a-1, 1)
				}
				if e.b > 0 {
					g.Add(e.b-1, bi, -1)
					g.Add(bi, e.b-1, -1)
				}
				rhs[bi] += e.wave(t)

			case kindISource:
				stampCurrent(e.a, e.b, e.wave(t))
			}
		}

		lu, err := la.FactorLU(g)
		if err != nil {
			return fmt.Errorf("circuit: singular MNA matrix (floating node?): %w", err)
		}
		st.LUFactors++
		sol, err := lu.Solve(rhs)
		if err != nil {
			return err
		}
		// Damped update on node voltages; branch currents take full steps.
		var maxDelta float64
		for i := 0; i < dim; i++ {
			d := sol[i] - xNew[i]
			if i < nn {
				if d > cfg.Damping {
					d = cfg.Damping
				} else if d < -cfg.Damping {
					d = -cfg.Damping
				}
				if a := math.Abs(d); a > maxDelta {
					maxDelta = a
				}
			}
			xNew[i] += d
		}
		if maxDelta <= cfg.VTol {
			copy(x, xNew)
			return nil
		}
	}
	return ErrNoConverge
}

// diodeCompanion returns the linearized conductance and equivalent current
// source for the Shockley diode at operating voltage vd, with exponent
// limiting for robustness.
func diodeCompanion(p DiodeParams, vd float64) (g, ieq float64) {
	nvt := p.N * p.vt()
	// Limit the exponent to avoid overflow far from convergence.
	const expCap = 80
	arg := vd / nvt
	if arg > expCap {
		arg = expCap
	}
	ex := math.Exp(arg)
	id := p.IS * (ex - 1)
	g = p.IS * ex / nvt
	if g < 1e-12 {
		g = 1e-12 // gmin keeps the matrix nonsingular when fully off
	}
	ieq = id - g*vd
	return g, ieq
}
