package circuit

import (
	"math"
	"testing"
)

func TestNodeCreation(t *testing.T) {
	c := New()
	if c.NumNodes() != 1 {
		t.Fatalf("new circuit has %d nodes, want 1 (ground)", c.NumNodes())
	}
	a := c.Node("a")
	if a != 1 {
		t.Fatalf("first node index = %d, want 1", a)
	}
	if c.Node("a") != a {
		t.Fatal("repeated Node must return same index")
	}
	if c.Node("gnd") != 0 || c.Node("0") != 0 {
		t.Fatal("ground aliases broken")
	}
}

func TestElementValidation(t *testing.T) {
	c := New()
	a, b := c.Node("a"), c.Node("b")
	if err := c.AddResistor("R1", a, b, 100); err != nil {
		t.Fatal(err)
	}
	if err := c.AddResistor("R1", a, b, 100); err == nil {
		t.Fatal("duplicate name must error")
	}
	if err := c.AddResistor("R2", a, a, 100); err == nil {
		t.Fatal("shorted element must error")
	}
	if err := c.AddResistor("R3", a, b, -5); err == nil {
		t.Fatal("negative resistance must error")
	}
	if err := c.AddCapacitor("C1", a, b, 0, 0); err == nil {
		t.Fatal("zero capacitance must error")
	}
	if err := c.AddInductor("L1", a, b, -1, 0); err == nil {
		t.Fatal("negative inductance must error")
	}
	if err := c.AddDiode("D1", a, b, DiodeParams{}); err == nil {
		t.Fatal("empty diode params must error")
	}
	if err := c.AddVoltageSource("V1", a, b, nil); err == nil {
		t.Fatal("nil waveform must error")
	}
	if err := c.AddCurrentSource("I1", a, b, nil); err == nil {
		t.Fatal("nil waveform must error")
	}
}

func TestResistorDivider(t *testing.T) {
	// 10 V across R1=1k into R2=2k: midpoint at 6.667 V.
	c := New()
	in, mid := c.Node("in"), c.Node("mid")
	mustOK(t, c.AddVoltageSource("V1", in, 0, DC(10)))
	mustOK(t, c.AddResistor("R1", in, mid, 1000))
	mustOK(t, c.AddResistor("R2", mid, 0, 2000))
	res, err := c.Transient(1e-3, 1e-4, TransientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	v := res.VoltageAt(mid)
	if got := v[len(v)-1]; math.Abs(got-20.0/3) > 1e-6 {
		t.Fatalf("divider voltage = %v, want 6.667", got)
	}
}

func TestRCCharging(t *testing.T) {
	// V=5, R=1k, C=1µF: v_C(t) = 5(1−e^{−t/RC}), τ=1 ms.
	c := New()
	in, out := c.Node("in"), c.Node("out")
	mustOK(t, c.AddVoltageSource("V1", in, 0, DC(5)))
	mustOK(t, c.AddResistor("R1", in, out, 1000))
	mustOK(t, c.AddCapacitor("C1", out, 0, 1e-6, 0))
	res, err := c.Transient(5e-3, 1e-6, TransientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	v := res.VoltageAt(out)
	// Check at t = τ.
	idx := 1000 // 1 ms / 1 µs
	want := 5 * (1 - math.Exp(-1))
	if got := v[idx]; math.Abs(got-want) > 0.01 {
		t.Fatalf("v_C(τ) = %v, want %v", got, want)
	}
	// Fully charged at the end.
	if got := v[len(v)-1]; math.Abs(got-5) > 0.05 {
		t.Fatalf("v_C(5τ) = %v, want ≈5", got)
	}
}

func TestCapacitorInitialCondition(t *testing.T) {
	// Discharge: C=1µF charged to 3 V through R=1k.
	c := New()
	out := c.Node("out")
	mustOK(t, c.AddResistor("R1", out, 0, 1000))
	mustOK(t, c.AddCapacitor("C1", out, 0, 1e-6, 3))
	res, err := c.Transient(3e-3, 1e-6, TransientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	v := res.VoltageAt(out)
	want := 3 * math.Exp(-1)
	if got := v[1000]; math.Abs(got-want) > 0.01 {
		t.Fatalf("discharge v(τ) = %v, want %v", got, want)
	}
}

func TestRLCurrentRise(t *testing.T) {
	// V=1, R=10, L=10mH: i(t) = 0.1(1−e^{−t·R/L}), τ = 1 ms.
	// Probe via the resistor voltage drop: v_out = V − i·R.
	c := New()
	in, out := c.Node("in"), c.Node("out")
	mustOK(t, c.AddVoltageSource("V1", in, 0, DC(1)))
	mustOK(t, c.AddResistor("R1", in, out, 10))
	mustOK(t, c.AddInductor("L1", out, 0, 10e-3, 0))
	res, err := c.Transient(5e-3, 1e-6, TransientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	v := res.VoltageAt(out)
	// At t=τ the inductor voltage is V·e^{−1}.
	want := math.Exp(-1)
	if got := v[1000]; math.Abs(got-want) > 0.01 {
		t.Fatalf("v_L(τ) = %v, want %v", got, want)
	}
}

func TestDiodeHalfWaveRectifier(t *testing.T) {
	// Sine source through diode into R‖C: output stays near the positive
	// peak minus one diode drop.
	c := New()
	in, out := c.Node("in"), c.Node("out")
	mustOK(t, c.AddVoltageSource("V1", in, 0, Sin(5, 50, 0, 0)))
	mustOK(t, c.AddDiode("D1", in, out, SiliconSmallSignal()))
	mustOK(t, c.AddCapacitor("C1", out, 0, 100e-6, 0))
	mustOK(t, c.AddResistor("RL", out, 0, 10e3))
	res, err := c.Transient(0.2, 2e-5, TransientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	v := res.VoltageAt(out)
	final := v[len(v)-1]
	if final < 3.5 || final > 5 {
		t.Fatalf("rectified output = %v, want ≈ 4.2–4.6 (peak − diode drop)", final)
	}
	// Output must never go significantly negative.
	for i, vi := range v {
		if vi < -0.1 {
			t.Fatalf("negative rectified output %v at sample %d", vi, i)
		}
	}
}

func TestDiodeBlocksReverse(t *testing.T) {
	// Negative DC source: diode blocks, output stays at ≈0.
	c := New()
	in, out := c.Node("in"), c.Node("out")
	mustOK(t, c.AddVoltageSource("V1", in, 0, DC(-5)))
	mustOK(t, c.AddDiode("D1", in, out, Schottky()))
	mustOK(t, c.AddResistor("RL", out, 0, 10e3))
	res, err := c.Transient(1e-3, 1e-5, TransientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	v := res.VoltageAt(out)
	if got := math.Abs(v[len(v)-1]); got > 1e-3 {
		t.Fatalf("reverse leakage output = %v, want ≈0", got)
	}
}

func TestVoltageDoubler(t *testing.T) {
	// Classic Villard/Greinacher doubler: 2-stage charge pump from a
	// 2 V-amplitude source should approach ≈2·(2 − V_d) ≈ 3.3 V unloaded.
	c := New()
	in := c.Node("in")
	n1 := c.Node("n1")
	out := c.Node("out")
	mustOK(t, c.AddVoltageSource("V1", in, 0, Sin(2, 100, 0, 0)))
	mustOK(t, c.AddCapacitor("C1", in, n1, 1e-6, 0))
	mustOK(t, c.AddDiode("D1", 0, n1, Schottky()))
	mustOK(t, c.AddDiode("D2", n1, out, Schottky()))
	mustOK(t, c.AddCapacitor("C2", out, 0, 1e-6, 0))
	mustOK(t, c.AddResistor("RL", out, 0, 1e7)) // nearly unloaded
	res, err := c.Transient(0.5, 2e-5, TransientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	v := res.VoltageAt(out)
	final := v[len(v)-1]
	if final < 2.8 || final > 4.0 {
		t.Fatalf("doubler output = %v, want ≈3.3", final)
	}
}

func TestTransientBadArgs(t *testing.T) {
	c := New()
	a := c.Node("a")
	mustOK(t, c.AddResistor("R1", a, 0, 100))
	if _, err := c.Transient(0, 1e-6, TransientConfig{}); err == nil {
		t.Fatal("zero tEnd must error")
	}
	if _, err := c.Transient(1e-3, 0, TransientConfig{}); err == nil {
		t.Fatal("zero h must error")
	}
	if _, err := c.Transient(1e-6, 1e-3, TransientConfig{}); err == nil {
		t.Fatal("h > tEnd must error")
	}
}

func TestFloatingNodeError(t *testing.T) {
	// A capacitor-only node still has a companion conductance, but a node
	// with no elements at all cannot occur (nodes are created by elements).
	// Two capacitors in series create a truly floating middle node only at
	// h→∞; with BE companions it is solvable. Instead, force singularity
	// with a current source into a node with no DC path... which BE
	// companion of a capacitor actually provides. So test the error path
	// via a node created but never connected: MNA row is empty.
	c := New()
	a := c.Node("a")
	_ = c.Node("orphan") // creates an unknown with no stamps
	mustOK(t, c.AddResistor("R1", a, 0, 100))
	if _, err := c.Transient(1e-3, 1e-4, TransientConfig{}); err == nil {
		t.Fatal("orphan node must make the MNA matrix singular")
	}
}

func TestStatsAccumulate(t *testing.T) {
	c := New()
	in, out := c.Node("in"), c.Node("out")
	mustOK(t, c.AddVoltageSource("V1", in, 0, Sin(2, 100, 0, 0)))
	mustOK(t, c.AddDiode("D1", in, out, Schottky()))
	mustOK(t, c.AddResistor("RL", out, 0, 1e4))
	res, err := c.Transient(0.02, 1e-5, TransientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Steps != 2000 {
		t.Fatalf("steps = %d, want 2000", res.Stats.Steps)
	}
	if res.Stats.NewtonIters < res.Stats.Steps {
		t.Fatalf("Newton iterations (%d) must be ≥ steps (%d)", res.Stats.NewtonIters, res.Stats.Steps)
	}
	if res.Stats.LUFactors != res.Stats.NewtonIters {
		t.Fatalf("full Newton refactors every iteration: LU=%d newton=%d", res.Stats.LUFactors, res.Stats.NewtonIters)
	}
}

func TestWaveformHelpers(t *testing.T) {
	if DC(3)(123) != 3 {
		t.Fatal("DC broken")
	}
	w := Sin(2, 50, 0, 1)
	if math.Abs(w(0)-1) > 1e-12 {
		t.Fatal("Sin offset broken")
	}
	if math.Abs(w(1.0/200)-3) > 1e-9 { // quarter period: offset + amplitude
		t.Fatal("Sin peak broken")
	}
}

func TestDiodeCompanionConsistency(t *testing.T) {
	// The companion model must reproduce the Shockley current at the
	// linearization point: i(vd) = g·vd + ieq.
	p := Schottky()
	for _, vd := range []float64{-2, -0.1, 0, 0.1, 0.3, 0.5} {
		g, ieq := diodeCompanion(p, vd)
		want := p.IS * (math.Exp(vd/(p.N*p.vt())) - 1)
		if got := g*vd + ieq; math.Abs(got-want) > 1e-9+1e-6*math.Abs(want) {
			t.Fatalf("companion at vd=%v: %v, want %v", vd, got, want)
		}
	}
}

func mustOK(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
