package circuit

import (
	"math"
	"testing"
)

func TestOperatingPointDivider(t *testing.T) {
	c := New()
	in, mid := c.Node("in"), c.Node("mid")
	mustOK(t, c.AddVoltageSource("V1", in, 0, DC(9)))
	mustOK(t, c.AddResistor("R1", in, mid, 1000))
	mustOK(t, c.AddResistor("R2", mid, 0, 2000))
	op, err := c.OperatingPoint(TransientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := op.V[mid]; math.Abs(got-6) > 1e-6 {
		t.Fatalf("v(mid) = %v, want 6", got)
	}
	// Source branch current: 9 V / 3 kΩ = 3 mA flowing out of the source.
	if got := math.Abs(op.BranchI[0]); math.Abs(got-3e-3) > 1e-6 {
		t.Fatalf("source current = %v, want 3 mA", got)
	}
}

func TestOperatingPointDiodeDrop(t *testing.T) {
	// 5 V through 1 kΩ into a silicon diode: classic load-line problem;
	// the diode settles near 0.6–0.75 V.
	c := New()
	in, d := c.Node("in"), c.Node("d")
	mustOK(t, c.AddVoltageSource("V1", in, 0, DC(5)))
	mustOK(t, c.AddResistor("R1", in, d, 1000))
	mustOK(t, c.AddDiode("D1", d, 0, SiliconSmallSignal()))
	op, err := c.OperatingPoint(TransientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	vd := op.V[d]
	if vd < 0.5 || vd > 0.85 {
		t.Fatalf("diode drop = %v, want ≈0.6–0.75", vd)
	}
	// KCL sanity: resistor current equals diode current.
	ir := (5 - vd) / 1000
	p := SiliconSmallSignal()
	id := p.IS * (math.Exp(vd/(p.N*p.vt())) - 1)
	if math.Abs(ir-id) > 1e-5 {
		t.Fatalf("KCL violated: iR=%v iD=%v", ir, id)
	}
}

func TestOperatingPointInductorShort(t *testing.T) {
	// At DC an inductor is a short: the output node sits at the source
	// voltage minus I·R with I set by the load.
	c := New()
	in, mid := c.Node("in"), c.Node("mid")
	mustOK(t, c.AddVoltageSource("V1", in, 0, DC(2)))
	mustOK(t, c.AddInductor("L1", in, mid, 1e-3, 0))
	mustOK(t, c.AddResistor("R1", mid, 0, 100))
	op, err := c.OperatingPoint(TransientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := op.V[mid]; math.Abs(got-2) > 1e-6 {
		t.Fatalf("v(mid) = %v, want 2 (inductor shorted)", got)
	}
}

func TestOperatingPointCapacitorOpen(t *testing.T) {
	// Series capacitor blocks DC: output pulled to ground by the load.
	c := New()
	in, outN := c.Node("in"), c.Node("out")
	mustOK(t, c.AddVoltageSource("V1", in, 0, DC(3)))
	mustOK(t, c.AddCapacitor("C1", in, outN, 1e-6, 0))
	mustOK(t, c.AddResistor("R1", outN, 0, 1e4))
	op, err := c.OperatingPoint(TransientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := math.Abs(op.V[outN]); got > 1e-3 {
		t.Fatalf("v(out) = %v, want ≈0 (capacitor open at DC)", got)
	}
}

func TestOperatingPointEmptyCircuit(t *testing.T) {
	c := New()
	op, err := c.OperatingPoint(TransientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(op.BranchI) != 0 {
		t.Fatal("empty circuit has no branches")
	}
}

func TestOperatingPointOrphanNode(t *testing.T) {
	c := New()
	a := c.Node("a")
	_ = c.Node("orphan")
	mustOK(t, c.AddResistor("R1", a, 0, 100))
	if _, err := c.OperatingPoint(TransientConfig{}); err == nil {
		t.Fatal("orphan node must make the DC matrix singular")
	}
}
