package circuit

import (
	"fmt"
	"math"
	"math/cmplx"
)

// ACResult is the small-signal response at one analysis frequency.
type ACResult struct {
	Freq    float64      // Hz
	V       []complex128 // node phasors (index by node id; ground is 0)
	BranchI []complex128 // branch-current phasors (V sources and inductors)
}

// Mag returns |V(node)|.
func (r *ACResult) Mag(node int) float64 { return cmplx.Abs(r.V[node]) }

// PhaseDeg returns the phase of V(node) in degrees.
func (r *ACResult) PhaseDeg(node int) float64 {
	return cmplx.Phase(r.V[node]) * 180 / math.Pi
}

// ACAnalysis performs classical small-signal AC analysis: the circuit is
// linearized at its DC operating point (diodes become their incremental
// conductances), the named voltage source is replaced by a unit (1 V) AC
// stimulus, all other independent sources are zeroed, and the complex MNA
// system is solved at each frequency.
func (c *Circuit) ACAnalysis(acSource string, freqs []float64, cfg TransientConfig) ([]ACResult, error) {
	if len(freqs) == 0 {
		return nil, fmt.Errorf("circuit: no analysis frequencies")
	}
	var src *element
	for _, e := range c.elems {
		if e.name == acSource {
			if e.kind != kindVSource {
				return nil, fmt.Errorf("circuit: AC source %q is not a voltage source", acSource)
			}
			src = e
		}
	}
	if src == nil {
		return nil, fmt.Errorf("circuit: no voltage source named %q", acSource)
	}
	op, err := c.OperatingPoint(cfg)
	if err != nil {
		return nil, fmt.Errorf("circuit: AC analysis needs a DC operating point: %w", err)
	}

	nn := len(c.nodeNames) - 1
	dim := nn + c.nBranch
	out := make([]ACResult, 0, len(freqs))
	for _, f := range freqs {
		if f <= 0 {
			return nil, fmt.Errorf("circuit: non-positive analysis frequency %g", f)
		}
		w := 2 * math.Pi * f
		g := make([][]complex128, dim)
		for i := range g {
			g[i] = make([]complex128, dim)
		}
		rhs := make([]complex128, dim)

		stampY := func(a, b int, y complex128) {
			if a > 0 {
				g[a-1][a-1] += y
			}
			if b > 0 {
				g[b-1][b-1] += y
			}
			if a > 0 && b > 0 {
				g[a-1][b-1] -= y
				g[b-1][a-1] -= y
			}
		}

		for _, e := range c.elems {
			switch e.kind {
			case kindResistor:
				stampY(e.a, e.b, complex(1/e.value, 0))

			case kindCapacitor:
				stampY(e.a, e.b, complex(0, w*e.value))

			case kindInductor:
				bi := nn + e.branch
				if e.a > 0 {
					g[e.a-1][bi] += 1
					g[bi][e.a-1] += 1
				}
				if e.b > 0 {
					g[e.b-1][bi] -= 1
					g[bi][e.b-1] -= 1
				}
				g[bi][bi] -= complex(0, w*e.value)

			case kindDiode:
				var va, vb float64
				if e.a > 0 {
					va = op.V[e.a]
				}
				if e.b > 0 {
					vb = op.V[e.b]
				}
				gd, _ := diodeCompanion(e.diode, va-vb)
				stampY(e.a, e.b, complex(gd, 0))

			case kindVSource:
				bi := nn + e.branch
				if e.a > 0 {
					g[e.a-1][bi] += 1
					g[bi][e.a-1] += 1
				}
				if e.b > 0 {
					g[e.b-1][bi] -= 1
					g[bi][e.b-1] -= 1
				}
				if e == src {
					rhs[bi] = 1 // unit AC stimulus
				}

			case kindISource:
				// Independent current sources are zeroed (open) in AC.
			}
		}

		sol, err := solveComplex(g, rhs)
		if err != nil {
			return nil, fmt.Errorf("circuit: AC solve at %g Hz: %w", f, err)
		}
		res := ACResult{Freq: f, V: make([]complex128, len(c.nodeNames))}
		for n := 1; n < len(c.nodeNames); n++ {
			res.V[n] = sol[n-1]
		}
		res.BranchI = append(res.BranchI, sol[nn:]...)
		out = append(out, res)
	}
	return out, nil
}

// solveComplex performs in-place Gaussian elimination with partial
// pivoting on a dense complex system.
func solveComplex(a [][]complex128, b []complex128) ([]complex128, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if cmplx.Abs(a[r][col]) > cmplx.Abs(a[piv][col]) {
				piv = r
			}
		}
		if cmplx.Abs(a[piv][col]) == 0 {
			return nil, ErrNoConverge
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				a[r][j] -= f * a[col][j]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]complex128, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= a[i][j] * x[j]
		}
		x[i] = s / a[i][i]
	}
	return x, nil
}
