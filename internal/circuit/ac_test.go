package circuit

import (
	"math"
	"testing"
)

func TestACLowPassCorner(t *testing.T) {
	// RC low-pass: R=1k, C=159.15nF → f_c = 1/(2πRC) ≈ 1 kHz.
	c := New()
	in, out := c.Node("in"), c.Node("out")
	mustOK(t, c.AddVoltageSource("V1", in, 0, DC(0)))
	mustOK(t, c.AddResistor("R1", in, out, 1000))
	mustOK(t, c.AddCapacitor("C1", out, 0, 159.15e-9, 0))
	res, err := c.ACAnalysis("V1", []float64{10, 1000, 100000}, TransientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Passband ≈ 1, corner ≈ 1/√2, far above ≈ 0.
	if g := res[0].Mag(out); math.Abs(g-1) > 0.01 {
		t.Fatalf("passband gain %v", g)
	}
	if g := res[1].Mag(out); math.Abs(g-1/math.Sqrt2) > 0.01 {
		t.Fatalf("corner gain %v, want 0.707", g)
	}
	if g := res[2].Mag(out); g > 0.02 {
		t.Fatalf("stopband gain %v", g)
	}
	// Phase at the corner is −45°.
	if ph := res[1].PhaseDeg(out); math.Abs(ph+45) > 1 {
		t.Fatalf("corner phase %v, want −45°", ph)
	}
}

func TestACSeriesRLCResonance(t *testing.T) {
	// Series RLC driven across the resistor: current peaks at
	// f0 = 1/(2π√(LC)); the resistor voltage equals the source there.
	const (
		rr = 50.0
		ll = 10e-3
		cc = 1e-6
	)
	f0 := 1 / (2 * math.Pi * math.Sqrt(ll*cc))
	c := New()
	in := c.Node("in")
	n1 := c.Node("n1")
	vr := c.Node("vr")
	mustOK(t, c.AddVoltageSource("V1", in, 0, DC(0)))
	mustOK(t, c.AddInductor("L1", in, n1, ll, 0))
	mustOK(t, c.AddCapacitor("C1", n1, vr, cc, 0))
	mustOK(t, c.AddResistor("R1", vr, 0, rr))
	freqs := []float64{f0 / 3, f0, f0 * 3}
	res, err := c.ACAnalysis("V1", freqs, TransientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if g := res[1].Mag(vr); math.Abs(g-1) > 0.01 {
		t.Fatalf("resonant transfer %v, want 1 (L and C cancel)", g)
	}
	if res[0].Mag(vr) > 0.6 || res[2].Mag(vr) > 0.6 {
		t.Fatalf("off-resonance transfer not suppressed: %v / %v", res[0].Mag(vr), res[2].Mag(vr))
	}
}

func TestACDiodeLinearization(t *testing.T) {
	// A diode biased on through R from a DC source forms a small-signal
	// divider R vs r_d = nVt/I. The AC transfer to the diode node must
	// match r_d/(R+r_d).
	c := New()
	in, d := c.Node("in"), c.Node("d")
	mustOK(t, c.AddVoltageSource("V1", in, 0, DC(5)))
	mustOK(t, c.AddResistor("R1", in, d, 1000))
	mustOK(t, c.AddDiode("D1", d, 0, SiliconSmallSignal()))
	op, err := c.OperatingPoint(TransientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p := SiliconSmallSignal()
	gd, _ := diodeCompanion(p, op.V[d])
	rd := 1 / gd
	want := rd / (1000 + rd)
	res, err := c.ACAnalysis("V1", []float64{100}, TransientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res[0].Mag(d); math.Abs(got-want) > 0.02*want {
		t.Fatalf("diode-node AC transfer %v, want %v", got, want)
	}
}

func TestACValidation(t *testing.T) {
	c := New()
	in := c.Node("in")
	mustOK(t, c.AddVoltageSource("V1", in, 0, DC(1)))
	mustOK(t, c.AddResistor("R1", in, 0, 100))
	if _, err := c.ACAnalysis("V1", nil, TransientConfig{}); err == nil {
		t.Fatal("empty frequency list must be rejected")
	}
	if _, err := c.ACAnalysis("nope", []float64{100}, TransientConfig{}); err == nil {
		t.Fatal("unknown source must be rejected")
	}
	if _, err := c.ACAnalysis("R1", []float64{100}, TransientConfig{}); err == nil {
		t.Fatal("non-source element must be rejected")
	}
	if _, err := c.ACAnalysis("V1", []float64{-5}, TransientConfig{}); err == nil {
		t.Fatal("negative frequency must be rejected")
	}
}

func TestACSourceCurrentGivesImpedance(t *testing.T) {
	// Input impedance seen by the source: Z = 1/|I_branch| for the unit
	// stimulus. Pure R load: Z = R at any frequency.
	c := New()
	in := c.Node("in")
	mustOK(t, c.AddVoltageSource("V1", in, 0, DC(0)))
	mustOK(t, c.AddResistor("R1", in, 0, 470))
	res, err := c.ACAnalysis("V1", []float64{123}, TransientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	z := 1 / cmplxAbs128(res[0].BranchI[0])
	if math.Abs(z-470) > 0.5 {
		t.Fatalf("input impedance %v, want 470", z)
	}
}

func cmplxAbs128(c complex128) float64 {
	return math.Hypot(real(c), imag(c))
}
