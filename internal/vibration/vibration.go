// Package vibration models the ambient kinetic excitation that drives the
// tunable harvester. The paper's evaluation environments (machine-room,
// structural and body-worn vibration) are proprietary measured traces; per
// the substitution rule they are replaced here by synthetic sources with the
// same amplitude (~0.1–1 m/s²) and frequency (tens of Hz) envelopes:
//
//   - Sine: single dominant tone, the canonical resonant-harvesting case.
//   - SteppedSine: a tone whose frequency jumps at scheduled times — the
//     stimulus used to exercise the tuning controller's tracking loop.
//   - DriftingSine: slow linear frequency drift (thermal drift of rotating
//     machinery).
//   - MultiTone: a dominant tone plus weaker harmonics/siblings.
//   - NoisySine: dominant tone with band-limited acceleration noise.
//   - RandomWalkSine: frequency performs a bounded random walk, emulating
//     the wander seen in measured traces.
//
// All sources expose instantaneous acceleration a(t) in m/s² and, where
// meaningful, the current dominant frequency (ground truth for evaluating
// the tuner's frequency estimator).
package vibration

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Source provides the base acceleration applied to the harvester frame.
type Source interface {
	// Accel returns the instantaneous acceleration in m/s² at time t (s).
	Accel(t float64) float64
	// DominantFreq returns the dominant excitation frequency in Hz at time
	// t — the quantity a perfectly informed tuner would track.
	DominantFreq(t float64) float64
}

// Sine is a constant-frequency, constant-amplitude tone.
type Sine struct {
	Amplitude float64 // m/s²
	Freq      float64 // Hz
	Phase     float64 // rad
}

// Accel returns A·sin(2πft + φ).
func (s Sine) Accel(t float64) float64 {
	return s.Amplitude * math.Sin(2*math.Pi*s.Freq*t+s.Phase)
}

// DominantFreq returns the tone frequency.
func (s Sine) DominantFreq(t float64) float64 { return s.Freq }

// FreqStep is one segment of a SteppedSine schedule.
type FreqStep struct {
	At   float64 // time (s) the segment begins
	Freq float64 // Hz
}

// SteppedSine is a tone whose frequency switches at scheduled instants.
// Phase is kept continuous across switches so the acceleration waveform has
// no jump discontinuities.
type SteppedSine struct {
	Amplitude float64
	Steps     []FreqStep // must be sorted by At; first entry should be at 0
}

// NewSteppedSine builds a stepped source, sorting and validating the
// schedule.
func NewSteppedSine(amplitude float64, steps []FreqStep) (*SteppedSine, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("vibration: empty step schedule")
	}
	s := make([]FreqStep, len(steps))
	copy(s, steps)
	sort.Slice(s, func(i, j int) bool { return s[i].At < s[j].At })
	if s[0].At > 0 {
		s[0].At = 0 // extend the first segment back to t=0
	}
	for _, st := range s {
		if st.Freq <= 0 {
			return nil, fmt.Errorf("vibration: non-positive frequency %g", st.Freq)
		}
	}
	return &SteppedSine{Amplitude: amplitude, Steps: s}, nil
}

// phaseAt integrates 2πf over [0, t] across the schedule segments.
func (s *SteppedSine) phaseAt(t float64) float64 {
	var phase float64
	for i, st := range s.Steps {
		end := t
		if i+1 < len(s.Steps) && s.Steps[i+1].At < t {
			end = s.Steps[i+1].At
		}
		if end <= st.At {
			break
		}
		phase += 2 * math.Pi * st.Freq * (end - st.At)
		if end == t {
			break
		}
	}
	return phase
}

// Accel returns the phase-continuous stepped tone.
func (s *SteppedSine) Accel(t float64) float64 {
	return s.Amplitude * math.Sin(s.phaseAt(t))
}

// DominantFreq returns the frequency of the active segment.
func (s *SteppedSine) DominantFreq(t float64) float64 {
	f := s.Steps[0].Freq
	for _, st := range s.Steps {
		if st.At <= t {
			f = st.Freq
		} else {
			break
		}
	}
	return f
}

// DriftingSine sweeps frequency linearly from StartFreq at rate Rate
// (Hz/s), clamped to [MinFreq, MaxFreq] when those bounds are set.
type DriftingSine struct {
	Amplitude float64
	StartFreq float64
	Rate      float64 // Hz per second
	MinFreq   float64 // optional clamp (0 = none)
	MaxFreq   float64 // optional clamp (0 = none)
}

// DominantFreq returns the instantaneous swept frequency.
func (s DriftingSine) DominantFreq(t float64) float64 {
	f := s.StartFreq + s.Rate*t
	if s.MinFreq > 0 && f < s.MinFreq {
		f = s.MinFreq
	}
	if s.MaxFreq > 0 && f > s.MaxFreq {
		f = s.MaxFreq
	}
	return f
}

// Accel returns the chirp with exact integrated phase on the unclamped
// region and clamped-frequency phase beyond it.
func (s DriftingSine) Accel(t float64) float64 {
	// Integrated phase of f(t) = f0 + r·t (ignoring clamps, which only
	// matter for very long horizons; the clamp error is a bounded phase
	// offset that does not affect the energy statistics).
	phase := 2 * math.Pi * (s.StartFreq*t + 0.5*s.Rate*t*t)
	return s.Amplitude * math.Sin(phase)
}

// MultiTone sums a dominant tone with weaker siblings.
type MultiTone struct {
	Tones []Sine // Tones[argmax amplitude] is the dominant component
}

// Accel returns the superposition of all tones.
func (m MultiTone) Accel(t float64) float64 {
	var a float64
	for _, tone := range m.Tones {
		a += tone.Accel(t)
	}
	return a
}

// DominantFreq returns the frequency of the strongest tone.
func (m MultiTone) DominantFreq(t float64) float64 {
	if len(m.Tones) == 0 {
		return 0
	}
	best := 0
	for i, tone := range m.Tones {
		if math.Abs(tone.Amplitude) > math.Abs(m.Tones[best].Amplitude) {
			best = i
		}
	}
	return m.Tones[best].Freq
}

// NoisySine is a dominant tone plus band-limited (first-order filtered)
// Gaussian acceleration noise. The noise is generated on a fixed lattice so
// Accel is deterministic for a given seed and reproducible across calls.
type NoisySine struct {
	tone     Sine
	noiseAmp float64
	dt       float64
	samples  []float64
}

// NewNoisySine builds a noisy tone. noiseAmp is the RMS of the additive
// noise (m/s²), horizon the duration to pre-generate, dt the noise lattice
// spacing (s), and seed the RNG seed.
func NewNoisySine(tone Sine, noiseAmp, horizon, dt float64, seed int64) (*NoisySine, error) {
	if dt <= 0 || horizon <= 0 {
		return nil, fmt.Errorf("vibration: bad lattice horizon=%g dt=%g", horizon, dt)
	}
	n := int(horizon/dt) + 2
	rng := rand.New(rand.NewSource(seed))
	samples := make([]float64, n)
	// First-order low-pass filtered white noise (AR(1)).
	const alpha = 0.9
	var prev float64
	for i := range samples {
		prev = alpha*prev + (1-alpha)*rng.NormFloat64()
		samples[i] = prev
	}
	// Normalize to the requested RMS.
	var ss float64
	for _, v := range samples {
		ss += v * v
	}
	rms := math.Sqrt(ss / float64(n))
	if rms > 0 {
		for i := range samples {
			samples[i] *= noiseAmp / rms
		}
	}
	return &NoisySine{tone: tone, noiseAmp: noiseAmp, dt: dt, samples: samples}, nil
}

// Accel returns tone + interpolated lattice noise. Beyond the pre-generated
// horizon the noise wraps around, keeping the source defined for any t.
func (s *NoisySine) Accel(t float64) float64 {
	idx := t / s.dt
	i := int(idx)
	frac := idx - float64(i)
	n := len(s.samples)
	a := s.samples[((i%n)+n)%n]
	b := s.samples[(((i+1)%n)+n)%n]
	return s.tone.Accel(t) + a + frac*(b-a)
}

// DominantFreq returns the underlying tone frequency.
func (s *NoisySine) DominantFreq(t float64) float64 { return s.tone.Freq }

// RandomWalkSine is a tone whose frequency performs a bounded random walk
// on a fixed lattice: f_{k+1} = clamp(f_k + σ·N(0,1), min, max). Phase is
// continuous. It emulates the slow wander of real machine vibration.
type RandomWalkSine struct {
	Amplitude float64
	dt        float64
	freqs     []float64 // frequency per lattice cell
	phases    []float64 // accumulated phase at each lattice point
}

// NewRandomWalkSine pre-generates a frequency walk over the horizon.
func NewRandomWalkSine(amplitude, f0, sigma, fmin, fmax, horizon, dt float64, seed int64) (*RandomWalkSine, error) {
	if dt <= 0 || horizon <= 0 {
		return nil, fmt.Errorf("vibration: bad lattice horizon=%g dt=%g", horizon, dt)
	}
	if fmin <= 0 || fmax < fmin || f0 < fmin || f0 > fmax {
		return nil, fmt.Errorf("vibration: bad frequency bounds f0=%g [%g,%g]", f0, fmin, fmax)
	}
	n := int(horizon/dt) + 2
	rng := rand.New(rand.NewSource(seed))
	freqs := make([]float64, n)
	phases := make([]float64, n+1)
	f := f0
	for i := 0; i < n; i++ {
		freqs[i] = f
		phases[i+1] = phases[i] + 2*math.Pi*f*dt
		f += sigma * rng.NormFloat64()
		if f < fmin {
			f = fmin
		}
		if f > fmax {
			f = fmax
		}
	}
	return &RandomWalkSine{Amplitude: amplitude, dt: dt, freqs: freqs, phases: phases}, nil
}

func (s *RandomWalkSine) cell(t float64) int {
	i := int(t / s.dt)
	if i < 0 {
		i = 0
	}
	if i >= len(s.freqs) {
		i = len(s.freqs) - 1
	}
	return i
}

// Accel returns the phase-continuous wandering tone.
func (s *RandomWalkSine) Accel(t float64) float64 {
	i := s.cell(t)
	phase := s.phases[i] + 2*math.Pi*s.freqs[i]*(t-float64(i)*s.dt)
	return s.Amplitude * math.Sin(phase)
}

// DominantFreq returns the walk frequency at time t.
func (s *RandomWalkSine) DominantFreq(t float64) float64 { return s.freqs[s.cell(t)] }
