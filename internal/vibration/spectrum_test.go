package vibration

import (
	"math"
	"testing"
)

func TestSpectrumPureTone(t *testing.T) {
	src := Sine{Amplitude: 0.8, Freq: 52}
	spec, err := Spectrum(src, 0, 2, 1000, 30, 90, 121)
	if err != nil {
		t.Fatal(err)
	}
	line, ok := DominantLine(spec)
	if !ok {
		t.Fatal("no dominant line")
	}
	if math.Abs(line.Freq-52) > 0.5 {
		t.Fatalf("dominant at %v Hz, want 52", line.Freq)
	}
	if math.Abs(line.Amp-0.8) > 0.08 {
		t.Fatalf("amplitude %v, want ≈0.8", line.Amp)
	}
	// Far-away bins are near zero.
	for _, b := range spec {
		if math.Abs(b.Freq-52) > 5 && b.Amp > 0.1 {
			t.Fatalf("leakage %v at %v Hz", b.Amp, b.Freq)
		}
	}
}

func TestSpectrumMultiTonePicksStrongest(t *testing.T) {
	src := MultiTone{Tones: []Sine{
		{Amplitude: 0.3, Freq: 45},
		{Amplitude: 0.9, Freq: 62},
		{Amplitude: 0.2, Freq: 78},
	}}
	spec, err := Spectrum(src, 0, 2, 1000, 30, 90, 181)
	if err != nil {
		t.Fatal(err)
	}
	line, _ := DominantLine(spec)
	if math.Abs(line.Freq-62) > 0.5 {
		t.Fatalf("dominant at %v, want 62", line.Freq)
	}
	// And the estimate agrees with the source's own DominantFreq.
	if math.Abs(line.Freq-src.DominantFreq(0)) > 0.5 {
		t.Fatal("spectrum disagrees with source metadata")
	}
}

func TestSpectrumValidation(t *testing.T) {
	src := Sine{Amplitude: 1, Freq: 50}
	cases := []struct {
		dur, fs, fmin, fmax float64
		bins                int
	}{
		{0, 1000, 30, 90, 10},     // zero duration
		{1, 0, 30, 90, 10},        // zero fs
		{1, 1000, 0, 90, 10},      // fmin 0
		{1, 1000, 90, 30, 10},     // inverted band
		{1, 1000, 30, 90, 1},      // one bin
		{1, 1000, 30, 600, 10},    // above Nyquist
		{0.001, 1000, 30, 90, 10}, // too few samples
	}
	for i, c := range cases {
		if _, err := Spectrum(src, 0, c.dur, c.fs, c.fmin, c.fmax, c.bins); err == nil {
			t.Errorf("case %d not rejected", i)
		}
	}
	if _, err := Spectrum(nil, 0, 1, 1000, 30, 90, 10); err == nil {
		t.Error("nil source not rejected")
	}
	if _, ok := DominantLine(nil); ok {
		t.Error("empty spectrum must report !ok")
	}
}

func TestSpectrumOfRandomWalkStaysInBounds(t *testing.T) {
	src, err := NewRandomWalkSine(0.7, 60, 0.3, 50, 70, 10, 0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Spectrum(src, 0, 4, 1000, 30, 90, 121)
	if err != nil {
		t.Fatal(err)
	}
	line, _ := DominantLine(spec)
	if line.Freq < 48 || line.Freq > 72 {
		t.Fatalf("dominant %v Hz escaped the walk bounds", line.Freq)
	}
}
