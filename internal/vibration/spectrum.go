package vibration

import (
	"fmt"
	"math"
)

// SpectrumBin is one line of an amplitude spectrum estimate.
type SpectrumBin struct {
	Freq float64 // Hz
	Amp  float64 // amplitude (same units as the source acceleration)
}

// Spectrum estimates the amplitude spectrum of a source over [t0, t0+dur]
// by single-bin DFTs (Goertzel-style correlation) at bins evenly spaced
// frequencies in [fmin, fmax], sampling the source at fs Hz with a Hann
// window. It is the analysis tool used to verify that synthetic sources
// have the spectral content their constructors promise, and to find the
// dominant excitation line the tuner should chase.
func Spectrum(src Source, t0, dur, fs, fmin, fmax float64, bins int) ([]SpectrumBin, error) {
	switch {
	case src == nil:
		return nil, fmt.Errorf("vibration: nil source")
	case dur <= 0 || fs <= 0:
		return nil, fmt.Errorf("vibration: bad duration %g / sample rate %g", dur, fs)
	case fmin <= 0 || fmax <= fmin:
		return nil, fmt.Errorf("vibration: bad band [%g, %g]", fmin, fmax)
	case bins < 2:
		return nil, fmt.Errorf("vibration: need ≥2 bins, got %d", bins)
	case fmax >= fs/2:
		return nil, fmt.Errorf("vibration: band edge %g at or above Nyquist %g", fmax, fs/2)
	}
	n := int(dur * fs)
	if n < 16 {
		return nil, fmt.Errorf("vibration: window too short (%d samples)", n)
	}
	// Sample once with a Hann window.
	samples := make([]float64, n)
	var windowGain float64
	for i := 0; i < n; i++ {
		w := 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
		samples[i] = w * src.Accel(t0+float64(i)/fs)
		windowGain += w
	}
	out := make([]SpectrumBin, bins)
	for b := 0; b < bins; b++ {
		f := fmin + (fmax-fmin)*float64(b)/float64(bins-1)
		var re, im float64
		wStep := 2 * math.Pi * f / fs
		for i, x := range samples {
			ph := wStep * float64(i)
			re += x * math.Cos(ph)
			im -= x * math.Sin(ph)
		}
		// Single-sided amplitude, compensated for the window's coherent
		// gain: |X|·2/Σw.
		amp := 2 * math.Hypot(re, im) / windowGain
		out[b] = SpectrumBin{Freq: f, Amp: amp}
	}
	return out, nil
}

// DominantLine returns the bin with the largest amplitude.
func DominantLine(spec []SpectrumBin) (SpectrumBin, bool) {
	if len(spec) == 0 {
		return SpectrumBin{}, false
	}
	best := spec[0]
	for _, b := range spec[1:] {
		if b.Amp > best.Amp {
			best = b
		}
	}
	return best, true
}
