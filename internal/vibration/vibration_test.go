package vibration

import (
	"math"
	"testing"
)

func TestSineBasics(t *testing.T) {
	s := Sine{Amplitude: 2, Freq: 10}
	if s.Accel(0) != 0 {
		t.Fatalf("a(0) = %v, want 0", s.Accel(0))
	}
	// Peak at quarter period.
	if got := s.Accel(1.0 / 40); math.Abs(got-2) > 1e-12 {
		t.Fatalf("a(T/4) = %v, want 2", got)
	}
	if s.DominantFreq(123) != 10 {
		t.Fatal("dominant frequency wrong")
	}
}

func TestSinePeriodicity(t *testing.T) {
	s := Sine{Amplitude: 1, Freq: 47.5, Phase: 0.3}
	period := 1 / s.Freq
	for _, tt := range []float64{0.01, 0.5, 2.34} {
		if d := math.Abs(s.Accel(tt) - s.Accel(tt+period)); d > 1e-9 {
			t.Fatalf("not periodic at t=%v: diff %v", tt, d)
		}
	}
}

func TestSteppedSineSchedule(t *testing.T) {
	s, err := NewSteppedSine(1, []FreqStep{{At: 0, Freq: 50}, {At: 10, Freq: 60}, {At: 20, Freq: 45}})
	if err != nil {
		t.Fatal(err)
	}
	if f := s.DominantFreq(5); f != 50 {
		t.Fatalf("f(5) = %v, want 50", f)
	}
	if f := s.DominantFreq(15); f != 60 {
		t.Fatalf("f(15) = %v, want 60", f)
	}
	if f := s.DominantFreq(25); f != 45 {
		t.Fatalf("f(25) = %v, want 45", f)
	}
}

func TestSteppedSinePhaseContinuity(t *testing.T) {
	s, err := NewSteppedSine(1, []FreqStep{{At: 0, Freq: 50}, {At: 1.234, Freq: 80}})
	if err != nil {
		t.Fatal(err)
	}
	// The waveform must be continuous across the switch.
	eps := 1e-7
	before := s.Accel(1.234 - eps)
	after := s.Accel(1.234 + eps)
	if math.Abs(before-after) > 1e-3 {
		t.Fatalf("discontinuity at switch: %v vs %v", before, after)
	}
}

func TestSteppedSineUnsortedInputSorted(t *testing.T) {
	s, err := NewSteppedSine(1, []FreqStep{{At: 10, Freq: 60}, {At: 0, Freq: 50}})
	if err != nil {
		t.Fatal(err)
	}
	if f := s.DominantFreq(1); f != 50 {
		t.Fatalf("schedule not sorted: f(1) = %v", f)
	}
}

func TestSteppedSineValidation(t *testing.T) {
	if _, err := NewSteppedSine(1, nil); err == nil {
		t.Fatal("empty schedule must error")
	}
	if _, err := NewSteppedSine(1, []FreqStep{{At: 0, Freq: -5}}); err == nil {
		t.Fatal("negative frequency must error")
	}
}

func TestDriftingSine(t *testing.T) {
	d := DriftingSine{Amplitude: 1, StartFreq: 50, Rate: 2}
	if f := d.DominantFreq(0); f != 50 {
		t.Fatalf("f(0) = %v", f)
	}
	if f := d.DominantFreq(5); f != 60 {
		t.Fatalf("f(5) = %v, want 60", f)
	}
	// With clamps.
	d2 := DriftingSine{Amplitude: 1, StartFreq: 50, Rate: 10, MaxFreq: 70}
	if f := d2.DominantFreq(100); f != 70 {
		t.Fatalf("clamped f = %v, want 70", f)
	}
	d3 := DriftingSine{Amplitude: 1, StartFreq: 50, Rate: -10, MinFreq: 40}
	if f := d3.DominantFreq(100); f != 40 {
		t.Fatalf("clamped f = %v, want 40", f)
	}
	if d.Accel(0) != 0 {
		t.Fatal("chirp must start at 0 phase")
	}
}

func TestMultiToneDominant(t *testing.T) {
	m := MultiTone{Tones: []Sine{
		{Amplitude: 0.2, Freq: 100},
		{Amplitude: 0.8, Freq: 52},
		{Amplitude: 0.1, Freq: 25},
	}}
	if f := m.DominantFreq(0); f != 52 {
		t.Fatalf("dominant = %v, want 52", f)
	}
	// Superposition at t=0 is 0 (all sines, zero phase).
	if a := m.Accel(0); a != 0 {
		t.Fatalf("a(0) = %v", a)
	}
	var empty MultiTone
	if empty.DominantFreq(0) != 0 {
		t.Fatal("empty multitone dominant must be 0")
	}
}

func TestNoisySineRMSAndDeterminism(t *testing.T) {
	tone := Sine{Amplitude: 0.5, Freq: 50}
	n1, err := NewNoisySine(tone, 0.1, 10, 1e-3, 42)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := NewNoisySine(tone, 0.1, 10, 1e-3, 42)
	if err != nil {
		t.Fatal(err)
	}
	// Determinism.
	for _, tt := range []float64{0.1, 1.5, 9.99} {
		if n1.Accel(tt) != n2.Accel(tt) {
			t.Fatal("same seed must give identical noise")
		}
	}
	// Noise RMS ≈ requested: average squared residual (signal − tone).
	var ss float64
	const samples = 10000
	for i := 0; i < samples; i++ {
		tt := float64(i) * 1e-3
		r := n1.Accel(tt) - tone.Accel(tt)
		ss += r * r
	}
	rms := math.Sqrt(ss / samples)
	if rms < 0.05 || rms > 0.2 {
		t.Fatalf("noise RMS = %v, want ≈0.1", rms)
	}
	if n1.DominantFreq(0) != 50 {
		t.Fatal("dominant frequency must be the tone's")
	}
}

func TestNoisySineValidation(t *testing.T) {
	if _, err := NewNoisySine(Sine{}, 0.1, 0, 1e-3, 1); err == nil {
		t.Fatal("zero horizon must error")
	}
	if _, err := NewNoisySine(Sine{}, 0.1, 1, 0, 1); err == nil {
		t.Fatal("zero dt must error")
	}
}

func TestRandomWalkSineBounds(t *testing.T) {
	w, err := NewRandomWalkSine(0.7, 60, 0.5, 50, 70, 100, 0.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0.0; tt < 100; tt += 0.5 {
		f := w.DominantFreq(tt)
		if f < 50 || f > 70 {
			t.Fatalf("walk escaped bounds: f(%v) = %v", tt, f)
		}
	}
}

func TestRandomWalkSinePhaseContinuity(t *testing.T) {
	w, err := NewRandomWalkSine(1, 60, 1.0, 50, 70, 10, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Sample across many lattice boundaries; consecutive accelerations at
	// small spacing must not jump.
	prev := w.Accel(0)
	const dt = 1e-4
	for tt := dt; tt < 5; tt += dt {
		cur := w.Accel(tt)
		if math.Abs(cur-prev) > 2*math.Pi*80*dt*1.5 { // max slope bound ≈ A·2πf·dt
			t.Fatalf("phase jump at t=%v: %v → %v", tt, prev, cur)
		}
		prev = cur
	}
}

func TestRandomWalkSineValidation(t *testing.T) {
	if _, err := NewRandomWalkSine(1, 60, 1, 70, 50, 10, 0.1, 1); err == nil {
		t.Fatal("fmax < fmin must error")
	}
	if _, err := NewRandomWalkSine(1, 40, 1, 50, 70, 10, 0.1, 1); err == nil {
		t.Fatal("f0 outside bounds must error")
	}
	if _, err := NewRandomWalkSine(1, 60, 1, 50, 70, -1, 0.1, 1); err == nil {
		t.Fatal("negative horizon must error")
	}
}

func TestRandomWalkDeterminism(t *testing.T) {
	a, _ := NewRandomWalkSine(1, 60, 0.5, 50, 70, 10, 0.1, 99)
	b, _ := NewRandomWalkSine(1, 60, 0.5, 50, 70, 10, 0.1, 99)
	for tt := 0.0; tt < 10; tt += 0.7 {
		if a.Accel(tt) != b.Accel(tt) {
			t.Fatal("same seed must reproduce the walk")
		}
	}
}

// All sources must satisfy the Source interface.
var (
	_ Source = Sine{}
	_ Source = (*SteppedSine)(nil)
	_ Source = DriftingSine{}
	_ Source = MultiTone{}
	_ Source = (*NoisySine)(nil)
	_ Source = (*RandomWalkSine)(nil)
)

func BenchmarkRandomWalkAccel(b *testing.B) {
	src, err := NewRandomWalkSine(0.7, 60, 0.2, 50, 70, 100, 0.1, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += src.Accel(float64(i) * 1e-3)
	}
	_ = sink
}
