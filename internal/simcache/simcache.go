// Package simcache memoizes whole-node transient simulations. Simulations
// are the expensive resource of the DoE flow — replicated center points,
// optimizer revisits and repeated validate requests all re-run identical
// transients — so results are cached content-addressed by a deep
// fingerprint of (engine name, sim.Design, sim.Config). The cache has a
// bounded in-memory LRU tier, an optional JSON disk tier that survives
// daemon restarts, an optional Remote tier (the fleet's sharded peer
// cache, see internal/cluster), and single-flight deduplication so
// concurrent identical requests execute the simulation once and share the
// result.
package simcache

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Engine is the simulation entry-point signature shared by sim.RunFast and
// sim.RunReference.
type Engine func(sim.Design, sim.Config) (*sim.Result, error)

// Runner executes a simulation request, possibly answering from a cache.
// ctx carries cancellation intent plus the observability trace (see
// internal/obs): cache decisions are logged through obs.FromContext under
// the caller's trace ID. engine names the engine so different engines
// never alias; fn performs the actual run on a miss. Callers must treat
// the returned Result as shared and immutable.
type Runner interface {
	Run(ctx context.Context, engine string, fn Engine, d sim.Design, cfg sim.Config) (*sim.Result, error)
}

// Direct is the no-op Runner: every request runs the simulation.
type Direct struct{}

func (Direct) Run(_ context.Context, _ string, fn Engine, d sim.Design, cfg sim.Config) (*sim.Result, error) {
	return fn(d, cfg)
}

// Remote is an optional fleet tier consulted between the disk tier and the
// engine: internal/cluster implements it with the sharded peer-cache
// protocol. Fetch asks the key's owner for a cached result; a false answer
// (not found, owner down, timeout — the implementation decides and counts)
// falls through to local simulation, so the remote tier can only save
// work, never fail a run. Store replicates a freshly simulated result to
// the key's owner; it is called synchronously after the engine succeeds
// and before the result is returned, so by the time a caller observes the
// result the owner can serve it to the rest of the fleet.
type Remote interface {
	Fetch(ctx context.Context, key, engine string) (*sim.Result, bool)
	Store(ctx context.Context, key, engine string, res *sim.Result)
}

// Stats is a snapshot of cache counters.
type Stats struct {
	Hits        uint64 // answered from the in-memory tier
	Misses      uint64 // executed the simulation
	DedupHits   uint64 // waited on an identical in-flight run
	Evictions   uint64 // LRU entries dropped past capacity
	DiskHits    uint64 // answered from the disk tier
	DiskWrites  uint64 // entries persisted to the disk tier
	DiskCorrupt uint64 // corrupt disk entries quarantined (*.bad)
	Bypass      uint64 // unhashable requests run directly
	RemoteHits  uint64 // answered by the remote (peer) tier
	Entries     int    // current in-memory entries
}

// Options configures a Cache.
type Options struct {
	// Capacity bounds the in-memory tier; <=0 means 512 entries.
	Capacity int
	// Dir, when non-empty, enables the disk tier: one JSON file per entry
	// under this directory, loadable across restarts. The directory is
	// created on first write.
	Dir string
}

type entry struct {
	key string
	res *sim.Result
}

type call struct {
	done chan struct{}
	res  *sim.Result
	err  error
}

// Cache is a content-addressed simulation cache with single-flight
// deduplication. Safe for concurrent use.
type Cache struct {
	capacity int
	dir      string

	mu     sync.Mutex
	lru    *list.List // front = most recent; values are *entry
	items  map[string]*list.Element
	flight map[string]*call
	stats  Stats
	rem    Remote
}

// New returns a Cache with the given options.
func New(opts Options) *Cache {
	cap := opts.Capacity
	if cap <= 0 {
		cap = 512
	}
	return &Cache{
		capacity: cap,
		dir:      opts.Dir,
		lru:      list.New(),
		items:    make(map[string]*list.Element),
		flight:   make(map[string]*call),
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Entries = c.lru.Len()
	return st
}

// SetRemote attaches (or with nil detaches) the fleet tier. Typically set
// once at worker start before traffic, but safe to swap concurrently.
func (c *Cache) SetRemote(r Remote) {
	c.mu.Lock()
	c.rem = r
	c.mu.Unlock()
}

func (c *Cache) remote() Remote {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rem
}

// Lookup answers a key from the memory or disk tier without running
// anything — the read side of the peer-cache protocol. It does not count
// as a Hit (the caller accounts peer-served lookups separately).
func (c *Cache) Lookup(ctx context.Context, key, engine string) (*sim.Result, bool) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.lru.MoveToFront(el)
		res := el.Value.(*entry).res
		c.mu.Unlock()
		return res, true
	}
	c.mu.Unlock()
	res, ok := c.loadDisk(ctx, key, engine)
	if ok {
		c.mu.Lock()
		c.insert(key, res)
		c.mu.Unlock()
	}
	return res, ok
}

// Insert stores an externally produced result (a peer replication push)
// into the memory and disk tiers.
func (c *Cache) Insert(key, engine string, res *sim.Result) {
	c.mu.Lock()
	c.insert(key, res)
	c.mu.Unlock()
	c.storeDisk(key, engine, res)
}

// keyScratch is the pooled working set of one Run call's key computation:
// private copies of the design and config (so the reflective walk hashes
// through pointers into pool-owned memory rather than forcing the caller's
// arguments to escape) plus the reusable hex-key buffer.
type keyScratch struct {
	d   sim.Design
	cfg sim.Config
	key []byte
}

var keyScratchPool = sync.Pool{New: func() any {
	return &keyScratch{key: make([]byte, 0, 2*32)}
}}

// release clears the design/config copies — they carry pointers (vibration
// lattices, tuner config) the pool must not pin — and returns ks.
func (ks *keyScratch) release() {
	ks.d = sim.Design{}
	ks.cfg = sim.Config{}
	keyScratchPool.Put(ks)
}

// Run implements Runner. Resolution order: in-memory hit → join an
// identical in-flight run → disk hit → execute. Errors are never cached.
// Cache decisions are logged at debug level through the context's logger
// (obs.FromContext), so one trace ID correlates a request with every
// simulation it hit, missed or coalesced.
//
// The cache-hit path computes the key without allocating: the fingerprint
// runs through a pooled hasher into a pooled buffer, and the map lookups
// index with string(raw), which Go evaluates without materializing the
// string. The key is only committed to a string when this call becomes the
// leader for a miss.
func (c *Cache) Run(ctx context.Context, engine string, fn Engine, d sim.Design, cfg sim.Config) (*sim.Result, error) {
	lg := obs.FromContext(ctx)
	ks := keyScratchPool.Get().(*keyScratch)
	defer ks.release()
	ks.d, ks.cfg = d, cfg
	raw, err := appendKey(ks.key[:0], engine, &ks.d, &ks.cfg)
	if err != nil {
		c.mu.Lock()
		c.stats.Bypass++
		c.mu.Unlock()
		lg.Debug("simcache bypass", "engine", engine, "reason", err.Error())
		return fn(d, cfg)
	}
	ks.key = raw[:0] // keep any growth for the next pooled use

	for {
		c.mu.Lock()
		if el, ok := c.items[string(raw)]; ok {
			c.lru.MoveToFront(el)
			c.stats.Hits++
			en := el.Value.(*entry)
			c.mu.Unlock()
			lg.Debug("simcache hit", "key", short(en.key))
			return en.res, nil
		}
		if fl, ok := c.flight[string(raw)]; ok {
			c.stats.DedupHits++
			c.mu.Unlock()
			lg.Debug("simcache coalesced", "key", short(string(raw)))
			<-fl.done
			if fl.err == nil {
				return fl.res, nil
			}
			// The leader failed; retry as a fresh request rather than
			// propagating someone else's (possibly transient) error.
			lg.Debug("simcache leader failed, retrying")
			continue
		}
		key := string(raw)
		fl := &call{done: make(chan struct{})}
		c.flight[key] = fl
		c.mu.Unlock()

		// A panicking engine must not strand the flight entry: waiters
		// would block on fl.done forever. The deferred cleanup fails the
		// flight and lets the panic keep unwinding — no recover here, so
		// core's run guard sees the original panic value and stack.
		settled := false
		defer func() {
			if settled {
				return
			}
			fl.res, fl.err = nil, errLeaderPanicked
			c.mu.Lock()
			delete(c.flight, key)
			c.mu.Unlock()
			close(fl.done)
		}()

		fl.res, fl.err = c.fill(ctx, key, engine, fn, d, cfg)
		settled = true

		c.mu.Lock()
		delete(c.flight, key)
		if fl.err == nil {
			c.insert(key, fl.res)
		}
		c.mu.Unlock()
		close(fl.done)
		return fl.res, fl.err
	}
}

// errLeaderPanicked is what waiters coalesced onto a panicking leader
// observe; they treat it like any leader failure and retry fresh.
var errLeaderPanicked = errors.New("simcache: in-flight leader panicked")

// short truncates a fingerprint for log lines: enough to correlate, not
// enough to drown the output.
func short(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}

// fill resolves a miss: disk tier first, then the remote (peer) tier, then
// the engine. Called without the lock held; the single-flight entry
// guarantees exclusivity per key. A result simulated here is replicated to
// the remote tier synchronously, before the caller observes it — the
// ordering that makes a fleet-wide repeat of this point a peer hit rather
// than a re-simulation.
func (c *Cache) fill(ctx context.Context, key, engine string, fn Engine, d sim.Design, cfg sim.Config) (*sim.Result, error) {
	lg := obs.FromContext(ctx)
	if res, ok := c.loadDisk(ctx, key, engine); ok {
		c.mu.Lock()
		c.stats.DiskHits++
		c.mu.Unlock()
		lg.Debug("simcache disk hit", "key", short(key))
		return res, nil
	}
	rem := c.remote()
	if rem != nil {
		if res, ok := rem.Fetch(ctx, key, engine); ok {
			c.mu.Lock()
			c.stats.RemoteHits++
			c.mu.Unlock()
			lg.Debug("simcache remote hit", "key", short(key))
			c.storeDisk(key, engine, res)
			return res, nil
		}
	}
	start := time.Now()
	res, err := fn(d, cfg)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
	lg.Debug("simcache miss", "key", short(key), "engine", engine,
		"sim_ms", float64(time.Since(start).Microseconds())/1e3)
	c.storeDisk(key, engine, res)
	if rem != nil {
		rem.Store(ctx, key, engine, res)
	}
	return res, nil
}

// insert adds a result to the LRU tier, evicting past capacity. Caller
// holds c.mu.
func (c *Cache) insert(key string, res *sim.Result) {
	if el, ok := c.items[key]; ok {
		c.lru.MoveToFront(el)
		el.Value.(*entry).res = res
		return
	}
	c.items[key] = c.lru.PushFront(&entry{key: key, res: res})
	for c.lru.Len() > c.capacity {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.items, oldest.Value.(*entry).key)
		c.stats.Evictions++
	}
}

// diskEntry is the on-disk JSON shape. The engine name is stored redundantly
// (it is already part of the key) so cache files are self-describing.
type diskEntry struct {
	Engine string      `json:"engine"`
	Result *sim.Result `json:"result"`
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

func (c *Cache) loadDisk(ctx context.Context, key, engine string) (*sim.Result, bool) {
	if c.dir == "" {
		return nil, false
	}
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var de diskEntry
	if err := json.Unmarshal(b, &de); err != nil || de.Result == nil {
		// Corrupt or truncated entry (torn write, disk fault): quarantine
		// it so the next request doesn't re-read the junk, and count it —
		// the run itself proceeds as a plain miss.
		c.quarantine(ctx, key, err)
		return nil, false
	}
	if de.Engine != engine {
		// Well-formed entry for a different engine: a key collision, not
		// corruption. Leave it alone and treat as a miss.
		return nil, false
	}
	return de.Result, true
}

// quarantine renames a corrupt disk entry to *.bad so it stops shadowing
// the key, logs the event at warn, and counts it in Stats.DiskCorrupt.
func (c *Cache) quarantine(ctx context.Context, key string, cause error) {
	p := c.path(key)
	reason := "nil result"
	if cause != nil {
		reason = cause.Error()
	}
	if err := os.Rename(p, p+".bad"); err != nil {
		// Removal beats leaving the corrupt file to fail every lookup.
		os.Remove(p)
	}
	c.mu.Lock()
	c.stats.DiskCorrupt++
	c.mu.Unlock()
	obs.FromContext(ctx).Warn("simcache disk entry corrupt, quarantined",
		"key", short(key), "path", p+".bad", "reason", reason)
}

// storeDisk persists best-effort: a result that cannot be marshalled (or a
// full disk) costs a future re-simulation, not a failed request.
func (c *Cache) storeDisk(key, engine string, res *sim.Result) {
	if c.dir == "" {
		return
	}
	b, err := json.Marshal(diskEntry{Engine: engine, Result: res})
	if err != nil {
		return
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return
	}
	// Write to a private temp file and rename so concurrent processes
	// sharing a cache dir never observe a torn entry.
	tmp, err := os.CreateTemp(c.dir, key+".tmp*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return
	}
	c.mu.Lock()
	c.stats.DiskWrites++
	c.mu.Unlock()
}

// RegisterMetrics publishes the cache counters into an obs.Registry under
// the given metric-name prefix (e.g. "ehdoed_simcache"): callback readers
// over the cache's own stats, so there is exactly one source of truth and
// /metrics is rendered solely by the registry.
func (c *Cache) RegisterMetrics(reg *obs.Registry, prefix string) {
	counter := func(name, help string, get func(Stats) uint64) {
		reg.CounterFunc(prefix+"_"+name+"_total", help, func() float64 {
			return float64(get(c.Stats()))
		})
	}
	counter("hits", "Simulations answered from the in-memory tier.", func(s Stats) uint64 { return s.Hits })
	counter("misses", "Simulations executed on a cache miss.", func(s Stats) uint64 { return s.Misses })
	counter("dedup", "Requests that joined an identical in-flight run.", func(s Stats) uint64 { return s.DedupHits })
	counter("evictions", "LRU entries dropped past capacity.", func(s Stats) uint64 { return s.Evictions })
	counter("disk_hits", "Simulations answered from the disk tier.", func(s Stats) uint64 { return s.DiskHits })
	counter("disk_writes", "Entries persisted to the disk tier.", func(s Stats) uint64 { return s.DiskWrites })
	counter("disk_corrupt", "Corrupt disk entries quarantined.", func(s Stats) uint64 { return s.DiskCorrupt })
	counter("bypass", "Unhashable requests run directly.", func(s Stats) uint64 { return s.Bypass })
	counter("remote_hits", "Simulations answered by the remote (peer) tier.", func(s Stats) uint64 { return s.RemoteHits })
	reg.GaugeFunc(prefix+"_entries", "Current in-memory cache entries.", func() float64 {
		return float64(c.Stats().Entries)
	})
}
