package simcache

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/tuner"
	"repro/internal/vibration"
)

// ctx is the background context every direct Run call in this file uses;
// trace propagation has its own tests in internal/obs and internal/serve.
var ctx = context.Background()

func testDesign(vth float64) sim.Design {
	d := sim.DefaultDesign()
	d.Policy = node.ThresholdPolicy{VThreshold: vth}
	return d
}

func testConfig(horizon float64) sim.Config {
	return sim.Config{Horizon: horizon, Source: vibration.Sine{Amplitude: 0.6, Freq: 52}}
}

// fakeEngine counts executions and returns a distinct result per call so
// aliasing bugs (two keys sharing one result) are visible.
func fakeEngine(calls *atomic.Int64) Engine {
	return func(d sim.Design, cfg sim.Config) (*sim.Result, error) {
		n := calls.Add(1)
		return &sim.Result{HarvestedEnergy: float64(n)}, nil
	}
}

func TestFingerprintStableAndSensitive(t *testing.T) {
	d, cfg := testDesign(3.0), testConfig(10)
	k1, err := Fingerprint("fast", d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := Fingerprint("fast", testDesign(3.0), testConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("identical inputs must share a fingerprint")
	}
	// Any field change — including inside an interface — must change the key.
	variants := []struct {
		name string
		key  func() (string, error)
	}{
		{"engine", func() (string, error) { return Fingerprint("reference", d, cfg) }},
		{"policy field", func() (string, error) { return Fingerprint("fast", testDesign(3.1), cfg) }},
		{"horizon", func() (string, error) { return Fingerprint("fast", d, testConfig(20)) }},
		{"source concrete type", func() (string, error) {
			c := cfg
			ns, err := vibration.NewNoisySine(vibration.Sine{Amplitude: 0.6, Freq: 52}, 0.05, 10, 1e-3, 1)
			if err != nil {
				return "", err
			}
			c.Source = ns
			return Fingerprint("fast", d, c)
		}},
		{"policy concrete type", func() (string, error) {
			dd := d
			dd.Policy = node.AlwaysTransmit{}
			return Fingerprint("fast", dd, cfg)
		}},
		{"tuner nil vs set", func() (string, error) {
			dd := testDesign(3.0)
			tc := tuner.DefaultConfig()
			dd.Tuner = &tc
			return Fingerprint("fast", dd, cfg)
		}},
	}
	for _, v := range variants {
		k, err := v.key()
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if k == k1 {
			t.Fatalf("%s: change did not alter the fingerprint", v.name)
		}
	}
	// NoisySine carries unexported state (its pre-generated sample lattice);
	// sources differing only there must still separate.
	c1, c2 := cfg, cfg
	n1, err := vibration.NewNoisySine(vibration.Sine{Amplitude: 0.6, Freq: 52}, 0.05, 10, 1e-3, 1)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := vibration.NewNoisySine(vibration.Sine{Amplitude: 0.6, Freq: 52}, 0.05, 10, 1e-3, 2)
	if err != nil {
		t.Fatal(err)
	}
	c1.Source, c2.Source = n1, n2
	ka, _ := Fingerprint("fast", d, c1)
	kb, _ := Fingerprint("fast", d, c2)
	if ka == kb {
		t.Fatal("unexported source state must participate in the fingerprint")
	}
}

func TestFingerprintRejectsUnhashableKinds(t *testing.T) {
	if _, err := Fingerprint(func() {}); err == nil {
		t.Fatal("func values must be rejected")
	}
	if _, err := Fingerprint(struct{ C chan int }{make(chan int)}); err == nil {
		t.Fatal("chan values must be rejected")
	}
}

func TestCacheHitMissCounting(t *testing.T) {
	var calls atomic.Int64
	c := New(Options{Capacity: 8})
	fn := fakeEngine(&calls)
	d, cfg := testDesign(3.0), testConfig(10)

	r1, err := c.Run(ctx, "fast", fn, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Run(ctx, "fast", fn, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("hit must return the cached result pointer")
	}
	if calls.Load() != 1 {
		t.Fatalf("engine ran %d times, want 1", calls.Load())
	}
	// A different point and a different engine are both fresh.
	if _, err := c.Run(ctx, "fast", fn, testDesign(3.2), cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(ctx, "reference", fn, d, cfg); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 3 || st.Entries != 3 {
		t.Fatalf("stats %+v, want 1 hit / 3 misses / 3 entries", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	var calls atomic.Int64
	c := New(Options{Capacity: 2})
	fn := fakeEngine(&calls)
	cfg := testConfig(10)
	a, b, d3 := testDesign(3.0), testDesign(3.1), testDesign(3.2)

	c.Run(ctx, "fast", fn, a, cfg)
	c.Run(ctx, "fast", fn, b, cfg)
	c.Run(ctx, "fast", fn, a, cfg)  // refresh a: b is now the LRU victim
	c.Run(ctx, "fast", fn, d3, cfg) // evicts b
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats %+v, want 1 eviction / 2 entries", st)
	}
	before := calls.Load()
	c.Run(ctx, "fast", fn, a, cfg) // still resident
	if calls.Load() != before {
		t.Fatal("refreshed entry was evicted")
	}
	c.Run(ctx, "fast", fn, b, cfg) // evicted → re-runs
	if calls.Load() != before+1 {
		t.Fatal("evicted entry answered from cache")
	}
}

func TestCacheBypassOnUnhashableInput(t *testing.T) {
	var calls atomic.Int64
	c := New(Options{})
	fn := fakeEngine(&calls)
	d := testDesign(3.0)
	d.Policy = funcPolicy{decide: func(float64) bool { return true }}
	cfg := testConfig(10)
	for i := 0; i < 2; i++ {
		if _, err := c.Run(ctx, "fast", fn, d, cfg); err != nil {
			t.Fatal(err)
		}
	}
	if calls.Load() != 2 {
		t.Fatalf("engine ran %d times, want 2 (bypass must never cache)", calls.Load())
	}
	if st := c.Stats(); st.Bypass != 2 || st.Entries != 0 {
		t.Fatalf("stats %+v, want 2 bypasses / 0 entries", st)
	}
}

// funcPolicy embeds a func field, making designs that carry it unhashable.
type funcPolicy struct{ decide func(float64) bool }

func (funcPolicy) Name() string                       { return "func" }
func (p funcPolicy) ShouldTransmit(v float64) bool    { return p.decide(v) }
func (funcPolicy) NextPeriod(_, base float64) float64 { return base }

// TestSingleFlightDedup launches many identical concurrent requests while
// the leader is held inside the engine: exactly one execution, everyone
// shares its result, and the waiters count as dedup hits. Run with -race.
func TestSingleFlightDedup(t *testing.T) {
	const waiters = 7
	started := make(chan struct{})
	release := make(chan struct{})
	var calls atomic.Int64
	blocking := func(d sim.Design, cfg sim.Config) (*sim.Result, error) {
		calls.Add(1)
		close(started)
		<-release
		return &sim.Result{HarvestedEnergy: 42}, nil
	}
	c := New(Options{})
	d, cfg := testDesign(3.0), testConfig(10)

	results := make(chan *sim.Result, waiters+1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r, err := c.Run(ctx, "fast", blocking, d, cfg)
		if err != nil {
			t.Error(err)
		}
		results <- r
	}()
	<-started
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := c.Run(ctx, "fast", blocking, d, cfg)
			if err != nil {
				t.Error(err)
			}
			results <- r
		}()
	}
	// The waiters must all register against the in-flight call before the
	// leader finishes; poll the counter rather than sleeping blind.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().DedupHits < waiters {
		if time.Now().After(deadline) {
			t.Fatalf("only %d dedup hits registered", c.Stats().DedupHits)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	close(results)

	if calls.Load() != 1 {
		t.Fatalf("engine ran %d times, want 1", calls.Load())
	}
	var first *sim.Result
	for r := range results {
		if first == nil {
			first = r
		} else if r != first {
			t.Fatal("waiters must share the leader's result pointer")
		}
	}
	if st := c.Stats(); st.DedupHits != waiters || st.Misses != 1 {
		t.Fatalf("stats %+v, want %d dedup hits / 1 miss", st, waiters)
	}
}

func TestSingleFlightLeaderErrorNotCached(t *testing.T) {
	var calls atomic.Int64
	failing := func(d sim.Design, cfg sim.Config) (*sim.Result, error) {
		if calls.Add(1) == 1 {
			return nil, fmt.Errorf("transient failure")
		}
		return &sim.Result{}, nil
	}
	c := New(Options{})
	d, cfg := testDesign(3.0), testConfig(10)
	if _, err := c.Run(ctx, "fast", failing, d, cfg); err == nil {
		t.Fatal("leader error must propagate")
	}
	if _, err := c.Run(ctx, "fast", failing, d, cfg); err != nil {
		t.Fatalf("second attempt must retry, got %v", err)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("stats %+v, want exactly the successful entry", st)
	}
}

// TestDiskTierRoundTrip runs a REAL short simulation whose node never
// transmits (vth far above reach), exercising the NaN FirstTxTime path,
// then reloads it from disk in a fresh cache and demands byte-identical
// JSON (modulo the wall-clock Elapsed field).
func TestDiskTierRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := testDesign(30) // threshold unreachable → no packets → FirstTxTime NaN
	cfg := testConfig(2)

	c1 := New(Options{Capacity: 4, Dir: dir})
	r1, err := c1.Run(ctx, "fast", sim.RunFast, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Node.Packets != 0 || !math.IsNaN(r1.Node.FirstTxTime) {
		t.Fatalf("fixture must not transmit: %d packets, first tx %v", r1.Node.Packets, r1.Node.FirstTxTime)
	}
	if st := c1.Stats(); st.DiskWrites != 1 {
		t.Fatalf("stats %+v, want 1 disk write", st)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(files) != 1 {
		t.Fatalf("cache dir holds %d entries, want 1", len(files))
	}

	// A fresh cache (simulated restart) must answer from disk, not re-run.
	c2 := New(Options{Capacity: 4, Dir: dir})
	r2, err := c2.Run(ctx, "fast", func(sim.Design, sim.Config) (*sim.Result, error) {
		t.Fatal("disk hit must not re-run the simulation")
		return nil, nil
	}, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st := c2.Stats(); st.DiskHits != 1 || st.Misses != 0 {
		t.Fatalf("stats %+v, want 1 disk hit / 0 misses", st)
	}
	if got, want := canonicalJSON(t, r2), canonicalJSON(t, r1); got != want {
		t.Fatalf("disk round-trip altered the result:\n got %s\nwant %s", got, want)
	}

	// A corrupt entry degrades to a re-run, never an error.
	if err := os.WriteFile(files[0], []byte("{garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	c3 := New(Options{Capacity: 4, Dir: dir})
	if _, err := c3.Run(ctx, "fast", sim.RunFast, d, cfg); err != nil {
		t.Fatal(err)
	}
	if st := c3.Stats(); st.Misses != 1 || st.DiskHits != 0 {
		t.Fatalf("stats %+v, want corrupt entry to count as a miss", st)
	}
}

// canonicalJSON renders a result for comparison with the wall-clock field
// zeroed — Elapsed differs run to run by construction.
func canonicalJSON(t *testing.T, r *sim.Result) string {
	t.Helper()
	cp := *r
	cp.Elapsed = 0
	b, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestRegisterMetrics renders the cache counters through an obs.Registry —
// the only /metrics path since the ad-hoc renderer was deleted.
func TestRegisterMetrics(t *testing.T) {
	var calls atomic.Int64
	c := New(Options{Capacity: 4})
	reg := obs.NewRegistry()
	c.RegisterMetrics(reg, "test_simcache")

	fn := fakeEngine(&calls)
	d, cfg := testDesign(3.0), testConfig(10)
	c.Run(ctx, "fast", fn, d, cfg)
	c.Run(ctx, "fast", fn, d, cfg)

	out := string(reg.Render())
	for _, want := range []string{
		"test_simcache_hits_total 1",
		"test_simcache_misses_total 1",
		"test_simcache_entries 1",
		"# TYPE test_simcache_hits_total counter",
		"# TYPE test_simcache_entries gauge",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("registry render missing %q:\n%s", want, out)
		}
	}
}

// TestRunLogsUnderTrace pins the trace-correlation contract: a context
// annotated by obs carries its trace ID into the cache's debug lines.
func TestRunLogsUnderTrace(t *testing.T) {
	var calls atomic.Int64
	var buf bytes.Buffer
	lg, err := obs.NewLogger(&buf, "json", "debug")
	if err != nil {
		t.Fatal(err)
	}
	tctx, id := obs.Annotate(context.Background(), lg, "req-", "")

	c := New(Options{Capacity: 4})
	fn := fakeEngine(&calls)
	d, cfg := testDesign(3.0), testConfig(10)
	c.Run(tctx, "fast", fn, d, cfg) // miss
	c.Run(tctx, "fast", fn, d, cfg) // hit

	var miss, hit bool
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON log line %q", line)
		}
		if rec["trace"] != id {
			t.Fatalf("log line missing trace %q: %s", id, line)
		}
		switch rec["msg"] {
		case "simcache miss":
			miss = true
		case "simcache hit":
			hit = true
		}
	}
	if !miss || !hit {
		t.Fatalf("want both miss and hit lines, got:\n%s", buf.String())
	}
}
