package simcache

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// TestDiskCorruptEntryQuarantined: a truncated/corrupt JSON entry must be
// renamed to *.bad, counted, and the request must proceed as a miss.
func TestDiskCorruptEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	d, cfg := testDesign(3.0), testConfig(5)
	key, err := Fingerprint("fast", d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, key+".json"), []byte(`{"engine":"fast","resu`), 0o644); err != nil {
		t.Fatal(err)
	}

	c := New(Options{Dir: dir})
	var calls atomic.Int64
	res, err := c.Run(ctx, "fast", fakeEngine(&calls), d, cfg)
	if err != nil {
		t.Fatalf("corrupt disk entry must not fail the run: %v", err)
	}
	if res == nil || calls.Load() != 1 {
		t.Fatalf("corrupt entry must fall through to the engine (calls=%d)", calls.Load())
	}
	if _, err := os.Stat(filepath.Join(dir, key+".json.bad")); err != nil {
		t.Fatalf("corrupt entry must be quarantined as *.bad: %v", err)
	}
	if st := c.Stats(); st.DiskCorrupt != 1 {
		t.Fatalf("want DiskCorrupt=1, got %d", st.DiskCorrupt)
	}
	// The fresh result overwrote the entry; a second cold cache reads it.
	c2 := New(Options{Dir: dir})
	var calls2 atomic.Int64
	if _, err := c2.Run(ctx, "fast", fakeEngine(&calls2), d, cfg); err != nil {
		t.Fatal(err)
	}
	if calls2.Load() != 0 {
		t.Fatal("repaired entry must serve from disk")
	}
}

// TestDiskCorruptMetricExposed checks the disk_corrupt counter renders on
// the registry alongside the other cache counters.
func TestDiskCorruptMetricExposed(t *testing.T) {
	dir := t.TempDir()
	d, cfg := testDesign(3.1), testConfig(5)
	key, err := Fingerprint("fast", d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, key+".json"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := New(Options{Dir: dir})
	reg := obs.NewRegistry()
	c.RegisterMetrics(reg, "simcache")
	var calls atomic.Int64
	if _, err := c.Run(ctx, "fast", fakeEngine(&calls), d, cfg); err != nil {
		t.Fatal(err)
	}
	if out := string(reg.Render()); !strings.Contains(out, "simcache_disk_corrupt_total 1") {
		t.Fatalf("metrics must expose the corrupt counter:\n%s", out)
	}
}

// TestEngineMismatchNotQuarantined: a well-formed entry for a different
// engine is a key collision, not corruption — it must stay on disk.
func TestEngineMismatchNotQuarantined(t *testing.T) {
	dir := t.TempDir()
	d, cfg := testDesign(3.2), testConfig(5)
	key, err := Fingerprint("fast", d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key+".json")
	if err := os.WriteFile(path, []byte(`{"engine":"other","result":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	c := New(Options{Dir: dir})
	var calls atomic.Int64
	if _, err := c.Run(ctx, "fast", fakeEngine(&calls), d, cfg); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.DiskCorrupt != 0 {
		t.Fatalf("engine mismatch must not count as corruption, got %d", st.DiskCorrupt)
	}
}

// TestSingleFlightLeaderPanicReleasesWaiters: a panicking leader must not
// strand coalesced waiters on the flight channel; they retry fresh and
// succeed, while the panic keeps unwinding to the leader's caller.
func TestSingleFlightLeaderPanicReleasesWaiters(t *testing.T) {
	c := New(Options{})
	d, cfg := testDesign(3.0), testConfig(5)

	entered := make(chan struct{})
	release := make(chan struct{})
	var calls atomic.Int64
	engine := func(sim.Design, sim.Config) (*sim.Result, error) {
		if calls.Add(1) == 1 {
			close(entered)
			<-release
			panic("engine exploded")
		}
		return &sim.Result{HarvestedEnergy: 1}, nil
	}

	leaderPanic := make(chan any, 1)
	go func() {
		defer func() { leaderPanic <- recover() }()
		c.Run(ctx, "fast", engine, d, cfg)
	}()
	<-entered

	waiterDone := make(chan error, 1)
	go func() {
		_, err := c.Run(ctx, "fast", engine, d, cfg)
		waiterDone <- err
	}()
	// Let the waiter coalesce onto the in-flight entry, then blow it up.
	time.Sleep(20 * time.Millisecond)
	close(release)

	if rec := <-leaderPanic; rec == nil || !strings.Contains(fmt.Sprint(rec), "engine exploded") {
		t.Fatalf("panic must keep unwinding to the leader's caller, got %v", rec)
	}
	select {
	case err := <-waiterDone:
		if err != nil {
			t.Fatalf("waiter must retry fresh after the leader's panic: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter hung on the panicked leader's flight entry")
	}
	if calls.Load() != 2 {
		t.Fatalf("want the waiter's fresh run (2 engine calls), got %d", calls.Load())
	}
}
