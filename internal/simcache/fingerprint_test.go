package simcache

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/tuner"
)

// TestAppendKeyMatchesFingerprint pins the contract that makes the pooled
// key path safe: appendKey over pointers produces byte-for-byte the same
// hex digest as the public Fingerprint over values, so both address the
// same cache entries (including the disk tier).
func TestAppendKeyMatchesFingerprint(t *testing.T) {
	d, cfg := testDesign(3.0), testConfig(10)
	tc := tuner.DefaultConfig()
	dTuned := testDesign(3.2)
	dTuned.Tuner = &tc

	cases := []struct {
		name   string
		engine string
		d      sim.Design
		cfg    sim.Config
	}{
		{"plain", "fast", d, cfg},
		{"tuned", "fast", dTuned, cfg},
		{"reference engine", "reference", d, testConfig(20)},
	}
	for _, c := range cases {
		want, err := Fingerprint(c.engine, c.d, c.cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		got, err := appendKey(nil, c.engine, &c.d, &c.cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if string(got) != want {
			t.Fatalf("%s: appendKey %s != Fingerprint %s", c.name, got, want)
		}
	}
}

// TestFingerprintPointerTransparent: a non-nil pointer hashes as its
// pointee, so values and pointers to equal values share a digest. A nil
// pointer still hashes distinctly (it carries the pointer type tag).
func TestFingerprintPointerTransparent(t *testing.T) {
	d := testDesign(3.0)
	kv, err := Fingerprint(d)
	if err != nil {
		t.Fatal(err)
	}
	kp, err := Fingerprint(&d)
	if err != nil {
		t.Fatal(err)
	}
	if kv != kp {
		t.Fatal("pointer and value of the same design must share a fingerprint")
	}

	tc := tuner.DefaultConfig()
	dTuned := d
	dTuned.Tuner = &tc
	kt, err := Fingerprint(dTuned)
	if err != nil {
		t.Fatal(err)
	}
	if kt == kv {
		t.Fatal("nil and set tuner pointers must not alias")
	}
}

// TestAppendKeyZeroAllocs pins the cache-hit fingerprint cost at zero
// allocations per request once the pool and per-type caches are warm.
func TestAppendKeyZeroAllocs(t *testing.T) {
	d, cfg := testDesign(3.0), testConfig(10)
	buf := make([]byte, 0, 64)
	var err error
	// Warm up: pool entry, struct field-name caches, scratch growth.
	if buf, err = appendKey(buf[:0], "fast", &d, &cfg); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		buf, err = appendKey(buf[:0], "fast", &d, &cfg)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("appendKey allocates %.2f objects/op, want 0", allocs)
	}
}

// TestCacheHitRunPathUsesPooledKey exercises Run twice with equal inputs
// and confirms the second resolves as a hit — i.e. the pooled appendKey
// digest addresses the entry the leader stored under a materialized key.
func TestCacheHitRunPathUsesPooledKey(t *testing.T) {
	c := New(Options{Capacity: 4})
	d, cfg := testDesign(3.0), testConfig(10)
	fn := func(sd sim.Design, sc sim.Config) (*sim.Result, error) {
		return &sim.Result{HarvestedEnergy: 1}, nil
	}
	if _, err := c.Run(ctx, "fast", fn, d, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(ctx, "fast", fn, d, cfg); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("want 1 hit / 1 miss, got %+v", st)
	}
}

func BenchmarkFingerprint(b *testing.B) {
	d, cfg := testDesign(3.0), testConfig(10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Fingerprint("fast", d, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendKey(b *testing.B) {
	d, cfg := testDesign(3.0), testConfig(10)
	buf := make([]byte, 0, 64)
	var err error
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, err = appendKey(buf[:0], "fast", &d, &cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
}
