package simcache_test

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/opt"
	"repro/internal/rsm"
	"repro/internal/simcache"
)

// buildSurfaces fits one small surface set over the standard problem at a
// short horizon — the model behind the repeated-validation workload.
func buildSurfaces(b *testing.B, p *core.Problem) *core.Surfaces {
	b.Helper()
	design, err := core.NamedDesign("ccf", len(p.Factors), 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	ds, err := p.RunDesignParallel(design, 0)
	if err != nil {
		b.Fatal(err)
	}
	s, err := p.BuildSurfaces(ds, rsm.FullQuadratic(len(p.Factors)))
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkSimCacheRepeatedValidate times the repeated-point workload from
// the acceptance criteria: the same seeded validation run over and over,
// once against the raw simulator and once through the cache. The cached
// run must reproduce the direct report byte for byte, and a paired
// wall-clock measurement must show at least the promised 5× improvement.
func BenchmarkSimCacheRepeatedValidate(b *testing.B) {
	const n, seed = 4, 42
	p := core.StandardProblem(0.6, 1)
	p.Runner = simcache.Direct{}
	s := buildSurfaces(b, p)

	ref, err := s.Validate(n, seed)
	if err != nil {
		b.Fatal(err)
	}
	want, _ := json.Marshal(ref.Rows)

	b.Run("direct", func(b *testing.B) {
		p.Runner = simcache.Direct{}
		for i := 0; i < b.N; i++ {
			if _, err := s.Validate(n, seed); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		cache := simcache.New(simcache.Options{})
		p.Runner = cache
		rep, err := s.Validate(n, seed) // warm the cache, check the answer
		if err != nil {
			b.Fatal(err)
		}
		if got, _ := json.Marshal(rep.Rows); !bytes.Equal(got, want) {
			b.Fatalf("cached report differs from direct:\n%s\n%s", got, want)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Validate(n, seed); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if st := cache.Stats(); st.Hits == 0 {
			b.Fatal("cached run never hit the cache")
		}
	})

	// Paired wall-clock check: one more direct pass against one more warm
	// cached pass on the same machine, same moment.
	p.Runner = simcache.Direct{}
	t0 := time.Now()
	if _, err := s.Validate(n, seed); err != nil {
		b.Fatal(err)
	}
	direct := time.Since(t0)
	cache := simcache.New(simcache.Options{})
	p.Runner = cache
	if _, err := s.Validate(n, seed); err != nil { // warm
		b.Fatal(err)
	}
	t1 := time.Now()
	rep, err := s.Validate(n, seed)
	if err != nil {
		b.Fatal(err)
	}
	cached := time.Since(t1)
	if got, _ := json.Marshal(rep.Rows); !bytes.Equal(got, want) {
		b.Fatalf("cached report differs from direct:\n%s\n%s", got, want)
	}
	ratio := float64(direct) / float64(cached)
	b.ReportMetric(ratio, "speedup_x")
	if ratio < 5 {
		b.Errorf("cache speedup %.1f× on the repeated-point workload, want ≥ 5× (direct %v, cached %v)", ratio, direct, cached)
	}
}

// BenchmarkSimCacheOptimizerBaseline times a classical-baseline run — a
// genetic algorithm calling the simulator directly — with the objective
// snapped to a coarse lattice so revisited designs become cache hits. The
// cached optimizer must land on exactly the same optimum.
func BenchmarkSimCacheOptimizerBaseline(b *testing.B) {
	p := core.StandardProblem(0.6, 1)
	bounds := opt.NewBounds(len(p.Factors))
	var objErr error
	objective := func(x []float64) float64 {
		resp, err := p.ResponsesAt(x)
		if err != nil {
			objErr = err
			return 0
		}
		return -resp[core.RespPackets]
	}
	quant, err := opt.Quantized(objective, bounds, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B) float64 {
		r, err := opt.GeneticAlgorithm(quant, bounds, opt.GAConfig{Pop: 10, Gens: 4, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		if objErr != nil {
			b.Fatal(objErr)
		}
		return r.F
	}

	var fDirect, fCached float64
	b.Run("direct", func(b *testing.B) {
		p.Runner = simcache.Direct{}
		for i := 0; i < b.N; i++ {
			fDirect = run(b)
		}
	})
	b.Run("cached", func(b *testing.B) {
		cache := simcache.New(simcache.Options{Capacity: 4096})
		p.Runner = cache
		fCached = run(b) // warm: the seeded GA revisits exactly these points
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fCached = run(b)
		}
		b.StopTimer()
		if st := cache.Stats(); st.Hits == 0 {
			b.Fatal("optimizer reruns never hit the cache")
		}
	})
	if fDirect != fCached {
		b.Fatalf("optimizer diverged under caching: %v vs %v", fDirect, fCached)
	}
}
