package simcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"
	"reflect"
	"sort"
	"sync"

	"repro/internal/sim"
)

// maxHashDepth bounds the reflection walk. Every design/config in this
// codebase is a few levels deep; a value that nests past this is almost
// certainly cyclic and must not hang the hasher.
const maxHashDepth = 64

// hasher bundles a SHA-256 digest with the scratch buffers the walk needs,
// so a pooled hasher fingerprints a request without allocating: integers go
// through a fixed 8-byte buffer, strings through a reusable copy buffer
// (hash.Hash wants []byte), and the final sum lands in a fixed array.
type hasher struct {
	digest  hash.Hash
	buf8    [8]byte
	sum     [sha256.Size]byte
	scratch []byte
}

var hasherPool = sync.Pool{New: func() any {
	return &hasher{digest: sha256.New(), scratch: make([]byte, 0, 64)}
}}

func (h *hasher) reset() { h.digest.Reset() }

func (h *hasher) writeUint64(x uint64) {
	binary.LittleEndian.PutUint64(h.buf8[:], x)
	h.digest.Write(h.buf8[:])
}

// writeString writes a length-prefixed string so adjacent fields cannot run
// together into an ambiguous byte stream.
func (h *hasher) writeString(s string) {
	h.writeUint64(uint64(len(s)))
	h.scratch = append(h.scratch[:0], s...)
	h.digest.Write(h.scratch)
}

// fieldNames caches struct field names per type: reflect's Field(i) builds
// a fresh StructField (and its Index slice) on every call, which would be
// the only steady-state allocation left in the walk.
var fieldNames sync.Map // reflect.Type → []string

func namesOf(t reflect.Type) []string {
	if v, ok := fieldNames.Load(t); ok {
		return v.([]string)
	}
	names := make([]string, t.NumField())
	for i := range names {
		names[i] = t.Field(i).Name
	}
	v, _ := fieldNames.LoadOrStore(t, names)
	return v.([]string)
}

// Fingerprint returns a stable hex digest of the values' deep contents —
// the cache key of a simulation request. The walk covers unexported fields
// (vibration sources keep their pre-generated lattices private), tags
// every interface value with its concrete type (two policies with equal
// fields but different types must never alias), dereferences pointers so
// independently built but structurally identical inputs share a digest —
// a non-nil pointer hashes exactly as its pointee, so passing a value or a
// pointer to it yields the same key — and encodes floats bit-exactly.
// Kinds that cannot be introspected deterministically — funcs, channels,
// unsafe pointers — yield an error; callers treat that as "uncacheable"
// and run the simulation directly.
func Fingerprint(vals ...any) (string, error) {
	h := hasherPool.Get().(*hasher)
	h.reset()
	for _, v := range vals {
		if err := h.value(reflect.ValueOf(v), 0); err != nil {
			hasherPool.Put(h)
			return "", err
		}
	}
	key := hex.EncodeToString(h.digest.Sum(h.sum[:0]))
	hasherPool.Put(h)
	return key, nil
}

// appendKey is the allocation-free fingerprint of a simulation request: it
// appends the hex digest of (engine, *d, *cfg) to dst and returns it. The
// byte stream is identical to Fingerprint(engine, d, cfg) — the string is
// hand-encoded exactly as the reflective walk would, and non-nil pointers
// hash as their pointee — so both paths address the same cache entries.
func appendKey(dst []byte, engine string, d *sim.Design, cfg *sim.Config) ([]byte, error) {
	h := hasherPool.Get().(*hasher)
	h.reset()
	h.writeString("string")
	h.writeString(engine)
	if err := h.value(reflect.ValueOf(d), 0); err != nil {
		hasherPool.Put(h)
		return dst, err
	}
	if err := h.value(reflect.ValueOf(cfg), 0); err != nil {
		hasherPool.Put(h)
		return dst, err
	}
	dst = appendHex(dst, h.digest.Sum(h.sum[:0]))
	hasherPool.Put(h)
	return dst, nil
}

const hexDigits = "0123456789abcdef"

// appendHex is hex.Encode into an appended buffer; the stdlib grew an
// AppendEncode only recently, and a hand-rolled loop keeps the fast path
// independent of the toolchain version.
func appendHex(dst, src []byte) []byte {
	for _, b := range src {
		dst = append(dst, hexDigits[b>>4], hexDigits[b&0xf])
	}
	return dst
}

func (h *hasher) value(v reflect.Value, depth int) error {
	if depth > maxHashDepth {
		return fmt.Errorf("simcache: value nests deeper than %d levels (cyclic?)", maxHashDepth)
	}
	if !v.IsValid() {
		h.writeString("<nil>")
		return nil
	}
	t := v.Type()
	// A non-nil pointer is hashed purely as its pointee — no type tag — so
	// Fingerprint(v) and Fingerprint(&v) share a digest and the pooled key
	// path can hash through pointers into its scratch copies.
	if v.Kind() == reflect.Pointer {
		if v.IsNil() {
			h.writeString(t.String())
			h.writeString("<nil>")
			return nil
		}
		return h.value(v.Elem(), depth+1)
	}
	h.writeString(t.String())
	switch v.Kind() {
	case reflect.Bool:
		if v.Bool() {
			h.writeUint64(1)
		} else {
			h.writeUint64(0)
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		h.writeUint64(uint64(v.Int()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		h.writeUint64(v.Uint())
	case reflect.Float32, reflect.Float64:
		h.writeUint64(math.Float64bits(v.Float()))
	case reflect.Complex64, reflect.Complex128:
		c := v.Complex()
		h.writeUint64(math.Float64bits(real(c)))
		h.writeUint64(math.Float64bits(imag(c)))
	case reflect.String:
		h.writeString(v.String())
	case reflect.Interface:
		if v.IsNil() {
			h.writeString("<nil>")
			return nil
		}
		return h.value(v.Elem(), depth+1)
	case reflect.Slice, reflect.Array:
		if v.Kind() == reflect.Slice && v.IsNil() {
			h.writeString("<nil>")
			return nil
		}
		n := v.Len()
		h.writeUint64(uint64(n))
		for i := 0; i < n; i++ {
			if err := h.value(v.Index(i), depth+1); err != nil {
				return err
			}
		}
	case reflect.Struct:
		names := namesOf(t)
		for i, name := range names {
			h.writeString(name)
			if err := h.value(v.Field(i), depth+1); err != nil {
				return err
			}
		}
	case reflect.Map:
		if v.IsNil() {
			h.writeString("<nil>")
			return nil
		}
		// Iteration order is random: hash each entry on its own and fold
		// the sorted digests in, so equal maps hash equal. This path
		// allocates; no simulation request carries a map today.
		digests := make([]string, 0, v.Len())
		iter := v.MapRange()
		for iter.Next() {
			sub := hasherPool.Get().(*hasher)
			sub.reset()
			if err := sub.value(iter.Key(), depth+1); err != nil {
				hasherPool.Put(sub)
				return err
			}
			if err := sub.value(iter.Value(), depth+1); err != nil {
				hasherPool.Put(sub)
				return err
			}
			digests = append(digests, string(sub.digest.Sum(sub.sum[:0])))
			hasherPool.Put(sub)
		}
		sort.Strings(digests)
		for _, d := range digests {
			h.scratch = append(h.scratch[:0], d...)
			h.digest.Write(h.scratch)
		}
	default: // Func, Chan, UnsafePointer
		return fmt.Errorf("simcache: cannot fingerprint a %s", v.Kind())
	}
	return nil
}
