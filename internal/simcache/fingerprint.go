package simcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"
	"reflect"
	"sort"
)

// maxHashDepth bounds the reflection walk. Every design/config in this
// codebase is a few levels deep; a value that nests past this is almost
// certainly cyclic and must not hang the hasher.
const maxHashDepth = 64

// Fingerprint returns a stable hex digest of the values' deep contents —
// the cache key of a simulation request. The walk covers unexported fields
// (vibration sources keep their pre-generated lattices private), tags
// every interface value with its concrete type (two policies with equal
// fields but different types must never alias), dereferences pointers so
// independently built but structurally identical inputs share a digest,
// and encodes floats bit-exactly. Kinds that cannot be introspected
// deterministically — funcs, channels, unsafe pointers — yield an error;
// callers treat that as "uncacheable" and run the simulation directly.
func Fingerprint(vals ...any) (string, error) {
	h := sha256.New()
	for _, v := range vals {
		if err := hashValue(h, reflect.ValueOf(v), 0); err != nil {
			return "", err
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

func hashValue(h hash.Hash, v reflect.Value, depth int) error {
	if depth > maxHashDepth {
		return fmt.Errorf("simcache: value nests deeper than %d levels (cyclic?)", maxHashDepth)
	}
	if !v.IsValid() {
		writeString(h, "<nil>")
		return nil
	}
	t := v.Type()
	writeString(h, t.String())
	switch v.Kind() {
	case reflect.Bool:
		if v.Bool() {
			writeUint64(h, 1)
		} else {
			writeUint64(h, 0)
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		writeUint64(h, uint64(v.Int()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		writeUint64(h, v.Uint())
	case reflect.Float32, reflect.Float64:
		writeUint64(h, math.Float64bits(v.Float()))
	case reflect.Complex64, reflect.Complex128:
		c := v.Complex()
		writeUint64(h, math.Float64bits(real(c)))
		writeUint64(h, math.Float64bits(imag(c)))
	case reflect.String:
		writeString(h, v.String())
	case reflect.Pointer, reflect.Interface:
		if v.IsNil() {
			writeString(h, "<nil>")
			return nil
		}
		return hashValue(h, v.Elem(), depth+1)
	case reflect.Slice, reflect.Array:
		if v.Kind() == reflect.Slice && v.IsNil() {
			writeString(h, "<nil>")
			return nil
		}
		n := v.Len()
		writeUint64(h, uint64(n))
		for i := 0; i < n; i++ {
			if err := hashValue(h, v.Index(i), depth+1); err != nil {
				return err
			}
		}
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			writeString(h, t.Field(i).Name)
			if err := hashValue(h, v.Field(i), depth+1); err != nil {
				return err
			}
		}
	case reflect.Map:
		if v.IsNil() {
			writeString(h, "<nil>")
			return nil
		}
		// Iteration order is random: hash each entry on its own and fold
		// the sorted digests in, so equal maps hash equal.
		digests := make([]string, 0, v.Len())
		iter := v.MapRange()
		for iter.Next() {
			sub := sha256.New()
			if err := hashValue(sub, iter.Key(), depth+1); err != nil {
				return err
			}
			if err := hashValue(sub, iter.Value(), depth+1); err != nil {
				return err
			}
			digests = append(digests, string(sub.Sum(nil)))
		}
		sort.Strings(digests)
		for _, d := range digests {
			h.Write([]byte(d))
		}
	default: // Func, Chan, UnsafePointer
		return fmt.Errorf("simcache: cannot fingerprint a %s", v.Kind())
	}
	return nil
}

// writeString writes a length-prefixed string so adjacent fields cannot
// run together into an ambiguous byte stream.
func writeString(h hash.Hash, s string) {
	writeUint64(h, uint64(len(s)))
	h.Write([]byte(s))
}

func writeUint64(h hash.Hash, x uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], x)
	h.Write(b[:])
}
