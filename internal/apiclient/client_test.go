package apiclient

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestCallRoundTrip: a typed POST marshals the request, decodes the 2xx
// body, and stamps Content-Type and one X-Request-ID.
func TestCallRoundTrip(t *testing.T) {
	type echo struct {
		Name string `json:"name"`
	}
	var gotCT, gotID string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotCT = r.Header.Get("Content-Type")
		gotID = r.Header.Get("X-Request-ID")
		w.Write([]byte(`{"name":"pong"}`))
	}))
	defer ts.Close()

	var out echo
	if err := New(ts.URL, Options{}).Post(context.Background(), "/echo", echo{Name: "ping"}, &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != "pong" {
		t.Fatalf("decoded %+v", out)
	}
	if gotCT != "application/json" {
		t.Fatalf("Content-Type %q", gotCT)
	}
	if !strings.HasPrefix(gotID, "cli-") {
		t.Fatalf("minted request ID %q, want cli- prefix", gotID)
	}
}

// TestRequestIDFromContext: a call made under an ambient trace reuses that
// ID on the wire instead of minting one, so server logs correlate.
func TestRequestIDFromContext(t *testing.T) {
	var gotID string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotID = r.Header.Get("X-Request-ID")
	}))
	defer ts.Close()

	ctx := obs.WithTraceID(context.Background(), "req-fixed")
	if err := New(ts.URL, Options{}).Get(ctx, "/", nil); err != nil {
		t.Fatal(err)
	}
	if gotID != "req-fixed" {
		t.Fatalf("request ID %q, want the ambient trace ID", gotID)
	}
}

// TestErrorEnvelopeDecoded: any non-2xx answer surfaces as *Error carrying
// the status, the machine-readable code, and the echoed request ID.
func TestErrorEnvelopeDecoded(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Request-ID", r.Header.Get("X-Request-ID"))
		w.WriteHeader(http.StatusConflict)
		w.Write([]byte(`{"error":"fleet is empty","code":"no_workers"}`))
	}))
	defer ts.Close()

	err := New(ts.URL, Options{}).Post(context.Background(), "/build", struct{}{}, nil)
	var ae *Error
	if !errors.As(err, &ae) {
		t.Fatalf("err %T %v, want *Error", err, err)
	}
	if ae.Status != http.StatusConflict || ae.Code != "no_workers" || ae.Message != "fleet is empty" {
		t.Fatalf("decoded envelope %+v", ae)
	}
	if ae.RequestID == "" {
		t.Fatal("echoed request ID lost")
	}
	if ErrorCode(err) != "no_workers" {
		t.Fatalf("ErrorCode %q", ErrorCode(err))
	}
	if ErrorCode(nil) != "" || ErrorCode(errors.New("x")) != "" {
		t.Fatal("ErrorCode must be empty for nil / foreign errors")
	}
}

// TestNonEnvelopeErrorBody: a non-JSON error body still produces *Error,
// with the raw text as the message.
func TestNonEnvelopeErrorBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "gateway exploded", http.StatusBadGateway)
	}))
	defer ts.Close()

	err := New(ts.URL, Options{}).Get(context.Background(), "/", nil)
	var ae *Error
	if !errors.As(err, &ae) || ae.Status != http.StatusBadGateway || ae.Message != "gateway exploded" {
		t.Fatalf("err %v", err)
	}
}

// TestTransportFailureRetried: a connection the server resets before
// answering is retried with backoff; the eventual HTTP response wins. An
// HTTP error response, by contrast, is authoritative — never retried.
func TestTransportFailureRetried(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// Kill the connection before any response bytes.
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("recorder not hijackable")
			}
			conn, _, _ := hj.Hijack()
			conn.Close()
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	c := New(ts.URL, Options{MaxAttempts: 3, BaseDelay: time.Millisecond})
	if err := c.Get(context.Background(), "/", nil); err != nil {
		t.Fatalf("retry after transport failure: %v", err)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("%d calls, want 2", n)
	}

	calls.Store(0)
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer bad.Close()
	if err := New(bad.URL, Options{MaxAttempts: 3, BaseDelay: time.Millisecond}).Get(context.Background(), "/", nil); ErrorCode(err) == "" {
		var ae *Error
		if !errors.As(err, &ae) {
			t.Fatalf("5xx surfaced as %v", err)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("HTTP error retried: %d calls, want 1", n)
	}
}

// TestRetriesExhausted: when every attempt dies on the wire the call fails
// with the attempt count and the last transport error.
func TestRetriesExhausted(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, _, _ := w.(http.Hijacker).Hijack()
		conn.Close()
	}))
	defer ts.Close()

	err := New(ts.URL, Options{MaxAttempts: 2, BaseDelay: time.Millisecond}).Get(context.Background(), "/", nil)
	if err == nil || !strings.Contains(err.Error(), "after 2 attempts") {
		t.Fatalf("exhausted retries: %v", err)
	}
}

// TestAbsoluteURLPassthrough: a caller holding a full URL can use any
// client regardless of its base.
func TestAbsoluteURLPassthrough(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	if err := New("http://unreachable.invalid", Options{}).Get(context.Background(), ts.URL+"/x", nil); err != nil {
		t.Fatalf("absolute URL must bypass the base: %v", err)
	}
}

// TestRetryAfterHonored: a 429 carrying Retry-After is retried after the
// advised delay — which overrides the client's own doubling schedule. The
// base delay here is a minute; only the server's "0 seconds" advice lets
// the test finish fast.
func TestRetryAfterHonored(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"overloaded","code":"overloaded"}`))
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	c := New(ts.URL, Options{MaxAttempts: 3, BaseDelay: time.Minute})
	start := time.Now()
	if err := c.Get(context.Background(), "/", nil); err != nil {
		t.Fatalf("advised retry should recover: %v", err)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("%d calls, want 2", n)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("advised 0s retry took %s; the doubling schedule leaked through", d)
	}
}

// TestRetryAfterExhausted: when every attempt is shed, the final 429 is
// returned as the authoritative answer (typed *Error), not wrapped as a
// transport failure.
func TestRetryAfterExhausted(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"still overloaded","code":"overloaded"}`))
	}))
	defer ts.Close()

	err := New(ts.URL, Options{MaxAttempts: 3, BaseDelay: time.Millisecond}).Get(context.Background(), "/", nil)
	var ae *Error
	if !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests || ae.Code != "overloaded" {
		t.Fatalf("exhausted advised retries: %v", err)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("%d calls, want all 3 attempts", n)
	}
}

// TestServiceUnavailableWithoutHeaderIsFinal: a bare 503 (a draining
// server) is an authoritative answer — exactly one call, no retry.
func TestServiceUnavailableWithoutHeaderIsFinal(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"draining","code":"shutting_down"}`))
	}))
	defer ts.Close()

	err := New(ts.URL, Options{MaxAttempts: 3, BaseDelay: time.Millisecond}).Get(context.Background(), "/", nil)
	var ae *Error
	if !errors.As(err, &ae) || ae.Code != "shutting_down" {
		t.Fatalf("bare 503: %v", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("bare 503 retried: %d calls, want 1", n)
	}
}

// TestRetryAfterCapped: a pathological Retry-After (an hour) is clamped to
// the configured cap, so the call still completes promptly.
func TestRetryAfterCapped(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "3600")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"queue full","code":"queue_full"}`))
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	c := New(ts.URL, Options{MaxAttempts: 2, BaseDelay: time.Millisecond, RetryAfterCap: 10 * time.Millisecond})
	start := time.Now()
	if err := c.Get(context.Background(), "/", nil); err != nil {
		t.Fatalf("capped advised retry: %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("hour-long Retry-After not capped: waited %s", d)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("%d calls, want 2", n)
	}
}

// TestParseRetryAfter covers both header encodings and the garbage cases.
func TestParseRetryAfter(t *testing.T) {
	if d, ok := parseRetryAfter("7"); !ok || d != 7*time.Second {
		t.Fatalf("delta-seconds: %s %v", d, ok)
	}
	if _, ok := parseRetryAfter("-3"); ok {
		t.Fatal("negative delta accepted")
	}
	if _, ok := parseRetryAfter(""); ok {
		t.Fatal("empty header accepted")
	}
	if _, ok := parseRetryAfter("soon"); ok {
		t.Fatal("garbage accepted")
	}
	future := time.Now().Add(90 * time.Second).UTC().Format(http.TimeFormat)
	if d, ok := parseRetryAfter(future); !ok || d < 80*time.Second || d > 91*time.Second {
		t.Fatalf("HTTP-date: %s %v", d, ok)
	}
	past := time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat)
	if d, ok := parseRetryAfter(past); !ok || d != 0 {
		t.Fatalf("past HTTP-date should clamp to 0: %s %v", d, ok)
	}
}

// TestContextCancelStopsBackoff: cancellation during the retry sleep
// returns promptly with the context's cause, not after the full backoff.
func TestContextCancelStopsBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, _, _ := w.(http.Hijacker).Hijack()
		conn.Close()
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	c := New(ts.URL, Options{MaxAttempts: 3, BaseDelay: time.Minute})
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	start := time.Now()
	err := c.Get(ctx, "/", nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation waited out the backoff")
	}
}
