// Package apiclient is the one HTTP client for the repo's JSON APIs: the
// ehdoed v1 surface, the cluster work protocol it mounts, and the worker
// peer-cache protocol. Every production binary that issues an API request
// goes through this client, so the wire behaviour — typed request/response
// encoding, uniform error-envelope decoding, bounded retry with backoff on
// transport failures, and X-Request-ID propagation — is defined exactly
// once.
//
// Retries are transport-level only, with one deliberate exception: a
// connection that failed before the server produced a response is retried
// with doubling backoff, and a 429 or 503 that carries a Retry-After
// header — the server explicitly saying "come back in N seconds" — is
// retried after the advised delay (capped, lightly jittered). Any other
// HTTP response, success or error, is authoritative and returned as-is;
// in particular a 503 without the header (a draining server) is final.
// The protocols this client serves are safe under that rule (registration
// and results uploads are idempotent-ish by design; see internal/cluster).
package apiclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// Error is a decoded API error envelope ({"error": ..., "code": ...}): any
// non-2xx response surfaces as one of these, with the HTTP status, the
// machine-readable code, and the request ID the server echoed (or assigned).
// Responses whose body is not a well-formed envelope still produce an
// Error, with the raw body (truncated) as the message.
type Error struct {
	Status    int
	Code      string
	Message   string
	RequestID string
}

func (e *Error) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("api: %d %s: %s", e.Status, e.Code, e.Message)
	}
	return fmt.Sprintf("api: %d: %s", e.Status, e.Message)
}

// ErrorCode extracts the machine-readable code from an error returned by
// this package, or "" when err is nil or not an API error.
func ErrorCode(err error) string {
	var ae *Error
	if errors.As(err, &ae) {
		return ae.Code
	}
	return ""
}

// Options tunes a Client. The zero value gets the defaults documented on
// each field.
type Options struct {
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client
	// MaxAttempts bounds one call's attempts, including the first
	// (default 3). Only transport failures are retried; an HTTP response
	// of any status ends the attempt loop.
	MaxAttempts int
	// BaseDelay is the first retry backoff; it doubles per attempt
	// (default 50ms).
	BaseDelay time.Duration
	// MaxBody caps the decoded response body (default 64 MiB — lease
	// responses and model documents are large).
	MaxBody int64
	// RetryAfterCap bounds how long a server-advised Retry-After delay may
	// hold an attempt loop (default 30s); a pathological or hostile header
	// must not park the client for an hour.
	RetryAfterCap time.Duration
}

// Client issues typed JSON calls against one base URL. Safe for concurrent
// use.
type Client struct {
	base          string
	hc            *http.Client
	maxAttempts   int
	baseDelay     time.Duration
	maxBody       int64
	retryAfterCap time.Duration
}

// New builds a client for the given base URL (e.g. "http://host:8080").
func New(base string, opts Options) *Client {
	hc := opts.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	attempts := opts.MaxAttempts
	if attempts <= 0 {
		attempts = 3
	}
	delay := opts.BaseDelay
	if delay <= 0 {
		delay = 50 * time.Millisecond
	}
	maxBody := opts.MaxBody
	if maxBody <= 0 {
		maxBody = 64 << 20
	}
	raCap := opts.RetryAfterCap
	if raCap <= 0 {
		raCap = 30 * time.Second
	}
	return &Client{
		base:          strings.TrimRight(base, "/"),
		hc:            hc,
		maxAttempts:   attempts,
		baseDelay:     delay,
		maxBody:       maxBody,
		retryAfterCap: raCap,
	}
}

// Result is the raw outcome of one request — the escape hatch tests use to
// assert on wire-level details (status, headers, exact body bytes).
type Result struct {
	Status int
	Header http.Header
	Body   []byte
}

// url joins the base with a path. Absolute http(s) URLs pass through
// untouched, so callers holding a full peer/server URL can use one client
// helper for everything.
func (c *Client) url(path string) string {
	if strings.HasPrefix(path, "http://") || strings.HasPrefix(path, "https://") {
		return path
	}
	return c.base + path
}

// Do issues one call (with the transport retry loop) and returns the raw
// result without interpreting the status. in == nil sends no body.
func (c *Client) Do(ctx context.Context, method, path string, in any) (*Result, error) {
	var payload []byte
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return nil, fmt.Errorf("api: encoding %s %s request: %w", method, path, err)
		}
		payload = b
	}
	// One request ID per call: adopt the context's trace so server logs
	// correlate with the caller's, or mint a fresh client-side ID.
	reqID := obs.TraceID(ctx)
	if reqID == "" {
		reqID = obs.NewID("cli-")
	}

	delay := c.baseDelay
	var advised time.Duration // server-advised Retry-After for the next attempt
	advisedSet := false
	var lastErr error
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		if attempt > 0 {
			wait := delay
			delay *= 2
			if advisedSet {
				// The server said when to come back; that beats our blind
				// doubling schedule (even "0 seconds" does). Jitter ≤10% so
				// a herd of clients shed together does not return in
				// lockstep.
				wait = advised + jitter(advised/10)
				advisedSet = false
			}
			t := time.NewTimer(wait)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, context.Cause(ctx)
			}
		}
		var body io.Reader
		if payload != nil {
			body = bytes.NewReader(payload)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.url(path), body)
		if err != nil {
			return nil, err
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		req.Header.Set("X-Request-ID", reqID)
		res, err := c.hc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return nil, context.Cause(ctx)
			}
			lastErr = err
			continue // transport failure: the server saw nothing definitive
		}
		out, err := io.ReadAll(io.LimitReader(res.Body, c.maxBody))
		res.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		result := &Result{Status: res.StatusCode, Header: res.Header, Body: out}
		if attempt < c.maxAttempts-1 {
			if d, ok := c.serverAdvisedRetry(result); ok {
				advised, advisedSet = d, true
				continue
			}
		}
		return result, nil
	}
	return nil, fmt.Errorf("api: %s %s failed after %d attempts: %w", method, path, c.maxAttempts, lastErr)
}

// Call issues a typed request: in (nil = no body) is marshalled, any
// non-2xx answer is decoded into *Error, and a 2xx body is decoded into
// out (out == nil discards it).
func (c *Client) Call(ctx context.Context, method, path string, in, out any) error {
	res, err := c.Do(ctx, method, path, in)
	if err != nil {
		return err
	}
	if res.Status < 200 || res.Status > 299 {
		return decodeError(res)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(res.Body, out); err != nil {
		return fmt.Errorf("api: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// Get issues a typed GET.
func (c *Client) Get(ctx context.Context, path string, out any) error {
	return c.Call(ctx, http.MethodGet, path, nil, out)
}

// Post issues a typed POST.
func (c *Client) Post(ctx context.Context, path string, in, out any) error {
	return c.Call(ctx, http.MethodPost, path, in, out)
}

// serverAdvisedRetry reports whether the response is an explicit
// back-pressure signal worth waiting out: a 429 or 503 carrying a
// Retry-After header. The header gate matters — a 503 without it (a
// draining server) is a final answer, and retrying it would just prolong
// shutdowns.
func (c *Client) serverAdvisedRetry(res *Result) (time.Duration, bool) {
	if res.Status != http.StatusTooManyRequests && res.Status != http.StatusServiceUnavailable {
		return 0, false
	}
	d, ok := parseRetryAfter(res.Header.Get("Retry-After"))
	if !ok {
		return 0, false
	}
	if d > c.retryAfterCap {
		d = c.retryAfterCap
	}
	return d, true
}

// parseRetryAfter decodes a Retry-After header value: delta-seconds or an
// HTTP-date (RFC 9110 §10.2.3). Negative or unparseable values are
// ignored.
func parseRetryAfter(v string) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if at, err := http.ParseTime(v); err == nil {
		d := time.Until(at)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}

// jitter draws a uniform duration in [0, max).
func jitter(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	return time.Duration(rand.Int63n(int64(max)))
}

// decodeError turns a non-2xx result into *Error, tolerating bodies that
// are not the uniform envelope.
func decodeError(res *Result) error {
	e := &Error{Status: res.Status, RequestID: res.Header.Get("X-Request-ID")}
	var envelope struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if err := json.Unmarshal(res.Body, &envelope); err == nil && envelope.Error != "" {
		e.Message, e.Code = envelope.Error, envelope.Code
		return e
	}
	msg := strings.TrimSpace(string(res.Body))
	if len(msg) > 512 {
		msg = msg[:512]
	}
	e.Message = msg
	return e
}
