// Package apiclient is the one HTTP client for the repo's JSON APIs: the
// ehdoed v1 surface, the cluster work protocol it mounts, and the worker
// peer-cache protocol. Every production binary that issues an API request
// goes through this client, so the wire behaviour — typed request/response
// encoding, uniform error-envelope decoding, bounded retry with backoff on
// transport failures, and X-Request-ID propagation — is defined exactly
// once.
//
// Retries are transport-level only: a connection that failed before the
// server produced a response is retried with doubling backoff; any HTTP
// response, success or error, is authoritative and returned as-is. The
// protocols this client serves are safe under that rule (registration and
// results uploads are idempotent-ish by design; see internal/cluster).
package apiclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
)

// Error is a decoded API error envelope ({"error": ..., "code": ...}): any
// non-2xx response surfaces as one of these, with the HTTP status, the
// machine-readable code, and the request ID the server echoed (or assigned).
// Responses whose body is not a well-formed envelope still produce an
// Error, with the raw body (truncated) as the message.
type Error struct {
	Status    int
	Code      string
	Message   string
	RequestID string
}

func (e *Error) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("api: %d %s: %s", e.Status, e.Code, e.Message)
	}
	return fmt.Sprintf("api: %d: %s", e.Status, e.Message)
}

// ErrorCode extracts the machine-readable code from an error returned by
// this package, or "" when err is nil or not an API error.
func ErrorCode(err error) string {
	var ae *Error
	if errors.As(err, &ae) {
		return ae.Code
	}
	return ""
}

// Options tunes a Client. The zero value gets the defaults documented on
// each field.
type Options struct {
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client
	// MaxAttempts bounds one call's attempts, including the first
	// (default 3). Only transport failures are retried; an HTTP response
	// of any status ends the attempt loop.
	MaxAttempts int
	// BaseDelay is the first retry backoff; it doubles per attempt
	// (default 50ms).
	BaseDelay time.Duration
	// MaxBody caps the decoded response body (default 64 MiB — lease
	// responses and model documents are large).
	MaxBody int64
}

// Client issues typed JSON calls against one base URL. Safe for concurrent
// use.
type Client struct {
	base        string
	hc          *http.Client
	maxAttempts int
	baseDelay   time.Duration
	maxBody     int64
}

// New builds a client for the given base URL (e.g. "http://host:8080").
func New(base string, opts Options) *Client {
	hc := opts.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	attempts := opts.MaxAttempts
	if attempts <= 0 {
		attempts = 3
	}
	delay := opts.BaseDelay
	if delay <= 0 {
		delay = 50 * time.Millisecond
	}
	maxBody := opts.MaxBody
	if maxBody <= 0 {
		maxBody = 64 << 20
	}
	return &Client{
		base:        strings.TrimRight(base, "/"),
		hc:          hc,
		maxAttempts: attempts,
		baseDelay:   delay,
		maxBody:     maxBody,
	}
}

// Result is the raw outcome of one request — the escape hatch tests use to
// assert on wire-level details (status, headers, exact body bytes).
type Result struct {
	Status int
	Header http.Header
	Body   []byte
}

// url joins the base with a path. Absolute http(s) URLs pass through
// untouched, so callers holding a full peer/server URL can use one client
// helper for everything.
func (c *Client) url(path string) string {
	if strings.HasPrefix(path, "http://") || strings.HasPrefix(path, "https://") {
		return path
	}
	return c.base + path
}

// Do issues one call (with the transport retry loop) and returns the raw
// result without interpreting the status. in == nil sends no body.
func (c *Client) Do(ctx context.Context, method, path string, in any) (*Result, error) {
	var payload []byte
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return nil, fmt.Errorf("api: encoding %s %s request: %w", method, path, err)
		}
		payload = b
	}
	// One request ID per call: adopt the context's trace so server logs
	// correlate with the caller's, or mint a fresh client-side ID.
	reqID := obs.TraceID(ctx)
	if reqID == "" {
		reqID = obs.NewID("cli-")
	}

	delay := c.baseDelay
	var lastErr error
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		if attempt > 0 {
			t := time.NewTimer(delay)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, context.Cause(ctx)
			}
			delay *= 2
		}
		var body io.Reader
		if payload != nil {
			body = bytes.NewReader(payload)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.url(path), body)
		if err != nil {
			return nil, err
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		req.Header.Set("X-Request-ID", reqID)
		res, err := c.hc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return nil, context.Cause(ctx)
			}
			lastErr = err
			continue // transport failure: the server saw nothing definitive
		}
		out, err := io.ReadAll(io.LimitReader(res.Body, c.maxBody))
		res.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		return &Result{Status: res.StatusCode, Header: res.Header, Body: out}, nil
	}
	return nil, fmt.Errorf("api: %s %s failed after %d attempts: %w", method, path, c.maxAttempts, lastErr)
}

// Call issues a typed request: in (nil = no body) is marshalled, any
// non-2xx answer is decoded into *Error, and a 2xx body is decoded into
// out (out == nil discards it).
func (c *Client) Call(ctx context.Context, method, path string, in, out any) error {
	res, err := c.Do(ctx, method, path, in)
	if err != nil {
		return err
	}
	if res.Status < 200 || res.Status > 299 {
		return decodeError(res)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(res.Body, out); err != nil {
		return fmt.Errorf("api: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// Get issues a typed GET.
func (c *Client) Get(ctx context.Context, path string, out any) error {
	return c.Call(ctx, http.MethodGet, path, nil, out)
}

// Post issues a typed POST.
func (c *Client) Post(ctx context.Context, path string, in, out any) error {
	return c.Call(ctx, http.MethodPost, path, in, out)
}

// decodeError turns a non-2xx result into *Error, tolerating bodies that
// are not the uniform envelope.
func decodeError(res *Result) error {
	e := &Error{Status: res.Status, RequestID: res.Header.Get("X-Request-ID")}
	var envelope struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if err := json.Unmarshal(res.Body, &envelope); err == nil && envelope.Error != "" {
		e.Message, e.Code = envelope.Error, envelope.Code
		return e
	}
	msg := strings.TrimSpace(string(res.Body))
	if len(msg) > 512 {
		msg = msg[:512]
	}
	e.Message = msg
	return e
}
