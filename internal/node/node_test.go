package node

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func testConfig() Config {
	c := Default()
	c.Period = 1 // fast cycles for tests
	c.BootTime = 10e-3
	return c
}

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mut := []func(*Config){
		func(c *Config) { c.Period = 0 },
		func(c *Config) { c.MeasureTime = 0 },
		func(c *Config) { c.TxTime = -1 },
		func(c *Config) { c.BootTime = -1 },
		func(c *Config) { c.SleepI = -1 },
		func(c *Config) { c.VRail = 0 },
		func(c *Config) { c.MaxBuffer = -1 },
		func(c *Config) { c.Period = c.MeasureTime + c.TxTime }, // no sleep room
	}
	for i, m := range mut {
		c := Default()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}, AlwaysTransmit{}); err == nil {
		t.Fatal("invalid config must be rejected")
	}
	if _, err := New(Default(), nil); err == nil {
		t.Fatal("nil policy must be rejected")
	}
}

func TestCyclePowerBudget(t *testing.T) {
	c := Default()
	got := c.CyclePowerBudget()
	eM := (c.McuI + c.SensorI) * c.VRail * c.MeasureTime
	eT := (c.McuI + c.TxI) * c.VRail * c.TxTime
	eS := c.SleepI * c.VRail * (c.Period - c.MeasureTime - c.TxTime)
	want := (eM + eT + eS) / c.Period
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("budget = %v, want %v", got, want)
	}
	// Order of magnitude: tens of µW for the default node.
	if got < 1e-6 || got > 1e-3 {
		t.Fatalf("budget %v W implausible", got)
	}
	if c.SleepPower() != c.SleepI*c.VRail {
		t.Fatal("SleepPower wrong")
	}
}

// run steps the node with constant power state and store voltage.
func run(t *testing.T, n *Node, seconds, dt float64, powered bool, vstore float64) {
	t.Helper()
	steps := int(seconds / dt)
	for i := 0; i < steps; i++ {
		n.Step(dt, powered, vstore)
	}
}

func TestDutyCycleProducesPackets(t *testing.T) {
	n, err := New(testConfig(), AlwaysTransmit{})
	if err != nil {
		t.Fatal(err)
	}
	run(t, n, 10.5, 1e-3, true, 3.5)
	c := n.Counters()
	// Period 1 s over ~10 s: expect ≈10 measurement cycles.
	if c.Measurements < 8 || c.Measurements > 11 {
		t.Fatalf("measurements = %d, want ≈10", c.Measurements)
	}
	if c.Packets != c.Measurements {
		t.Fatalf("always-transmit must send every measurement: %d vs %d", c.Packets, c.Measurements)
	}
	if c.SkippedTx != 0 {
		t.Fatalf("always-transmit skipped %d", c.SkippedTx)
	}
	if math.IsNaN(c.FirstTxTime) || c.FirstTxTime > 2 {
		t.Fatalf("first packet at %v, want ≈1 s", c.FirstTxTime)
	}
}

func TestUnpoweredNodeDoesNothing(t *testing.T) {
	n, err := New(testConfig(), AlwaysTransmit{})
	if err != nil {
		t.Fatal(err)
	}
	run(t, n, 5, 1e-3, false, 0)
	c := n.Counters()
	if c.Measurements != 0 || c.Packets != 0 {
		t.Fatal("unpowered node must not work")
	}
	if c.UpTime != 0 {
		t.Fatalf("uptime = %v, want 0", c.UpTime)
	}
	if math.Abs(c.DownTime-5) > 1e-9 {
		t.Fatalf("downtime = %v, want 5", c.DownTime)
	}
	if c.RailEnergy != 0 {
		t.Fatal("no energy drawn when off")
	}
}

func TestBrownoutLosesBufferAndCounts(t *testing.T) {
	cfg := testConfig()
	n, err := New(cfg, ThresholdPolicy{VThreshold: 10}) // never transmits: buffer grows
	if err != nil {
		t.Fatal(err)
	}
	run(t, n, 3.5, 1e-3, true, 3) // a few measurements buffered
	if n.Buffered() == 0 {
		t.Fatal("expected buffered measurements")
	}
	n.Step(1e-3, false, 0) // power drops
	c := n.Counters()
	if c.Brownouts != 1 {
		t.Fatalf("brownouts = %d, want 1", c.Brownouts)
	}
	if n.Buffered() != 0 {
		t.Fatal("brownout must clear the volatile buffer")
	}
	// Power returns: node must cold-boot and resume.
	run(t, n, 2.5, 1e-3, true, 3)
	if n.Counters().Measurements <= c.Measurements {
		t.Fatal("node did not resume after brownout")
	}
}

func TestThresholdPolicyBuffersThenBursts(t *testing.T) {
	cfg := testConfig()
	n, err := New(cfg, ThresholdPolicy{VThreshold: 3.0})
	if err != nil {
		t.Fatal(err)
	}
	// Below threshold: only buffering.
	run(t, n, 4.5, 1e-3, true, 2.0)
	c := n.Counters()
	if c.Packets != 0 {
		t.Fatalf("below threshold must not transmit, got %d packets", c.Packets)
	}
	if c.SkippedTx == 0 {
		t.Fatal("expected skipped transmissions")
	}
	buffered := n.Buffered()
	if buffered == 0 {
		t.Fatal("expected buffered measurements")
	}
	// Above threshold: the whole buffer goes out in a burst.
	run(t, n, 1.5, 1e-3, true, 3.5)
	c = n.Counters()
	if c.Packets < buffered {
		t.Fatalf("burst must flush the buffer: %d packets, %d buffered", c.Packets, buffered)
	}
	if n.Buffered() != 0 {
		t.Fatal("buffer must be empty after the burst")
	}
}

func TestBufferOverflowDropsMeasurements(t *testing.T) {
	cfg := testConfig()
	cfg.MaxBuffer = 2
	n, err := New(cfg, ThresholdPolicy{VThreshold: 10})
	if err != nil {
		t.Fatal(err)
	}
	run(t, n, 8.5, 1e-3, true, 2.0)
	c := n.Counters()
	if c.DroppedMeas == 0 {
		t.Fatal("expected dropped measurements with a tiny buffer")
	}
	if n.Buffered() > cfg.MaxBuffer {
		t.Fatalf("buffer %d exceeds cap %d", n.Buffered(), cfg.MaxBuffer)
	}
}

func TestAdaptivePolicyStretchesPeriod(t *testing.T) {
	p := AdaptivePolicy{VEmpty: 2.5, VFull: 4.0, MaxScale: 6}
	if got := p.NextPeriod(4.0, 10); got != 10 {
		t.Fatalf("full store period = %v, want 10", got)
	}
	if got := p.NextPeriod(2.5, 10); math.Abs(got-60) > 1e-9 {
		t.Fatalf("empty store period = %v, want 60", got)
	}
	mid := p.NextPeriod(3.25, 10)
	if mid <= 10 || mid >= 60 {
		t.Fatalf("mid store period = %v, want between", mid)
	}
	// Clamped outside the window.
	if got := p.NextPeriod(5.0, 10); got != 10 {
		t.Fatalf("above-full period = %v, want 10", got)
	}
	if got := p.NextPeriod(1.0, 10); math.Abs(got-60) > 1e-9 {
		t.Fatalf("below-empty period = %v, want 60", got)
	}
	// Degenerate config returns base.
	if got := (AdaptivePolicy{VEmpty: 3, VFull: 3, MaxScale: 6}).NextPeriod(2, 10); got != 10 {
		t.Fatalf("degenerate adaptive = %v", got)
	}
	if !p.ShouldTransmit(3.0) || p.ShouldTransmit(2.0) {
		t.Fatal("adaptive transmit gate wrong")
	}
}

func TestAdaptiveNodeFewerPacketsWhenLow(t *testing.T) {
	mk := func(v float64) int {
		cfg := testConfig()
		n, err := New(cfg, AdaptivePolicy{VEmpty: 2.5, VFull: 4.0, MaxScale: 8})
		if err != nil {
			t.Fatal(err)
		}
		run(t, n, 30, 1e-3, true, v)
		return n.Counters().Packets
	}
	high, low := mk(4.0), mk(2.6)
	if low >= high {
		t.Fatalf("low-energy node (%d packets) must throttle below high-energy (%d)", low, high)
	}
}

func TestRailEnergyAccounting(t *testing.T) {
	cfg := testConfig()
	n, err := New(cfg, AlwaysTransmit{})
	if err != nil {
		t.Fatal(err)
	}
	run(t, n, 10, 1e-3, true, 3.5)
	c := n.Counters()
	// Energy must be positive and of the order CyclePowerBudget × 10 s.
	want := cfg.CyclePowerBudget() * 10
	if c.RailEnergy < want/3 || c.RailEnergy > want*3 {
		t.Fatalf("rail energy = %v J, want ≈%v J", c.RailEnergy, want)
	}
}

func TestStepReturnsAverageCurrent(t *testing.T) {
	cfg := testConfig()
	n, err := New(cfg, AlwaysTransmit{})
	if err != nil {
		t.Fatal(err)
	}
	// During deep sleep the step current equals the sleep current.
	n.Step(1e-3, true, 3.5) // boot begins
	run(t, n, cfg.BootTime+0.1, 1e-3, true, 3.5)
	i := n.Step(1e-3, true, 3.5)
	if math.Abs(i-cfg.SleepI) > cfg.SleepI*0.5 {
		t.Fatalf("sleep current = %v, want ≈%v", i, cfg.SleepI)
	}
	if got := n.Step(0, true, 3.5); got != 0 {
		t.Fatalf("zero-dt step must return 0, got %v", got)
	}
}

func TestUptimeDowntimeSum(t *testing.T) {
	cfg := testConfig()
	n, err := New(cfg, AlwaysTransmit{})
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 6.0
	steps := int(horizon / 1e-3)
	for i := 0; i < steps; i++ {
		powered := i < steps/2
		n.Step(1e-3, powered, 3.5)
	}
	c := n.Counters()
	if math.Abs(c.UpTime+c.DownTime-horizon) > 1e-6 {
		t.Fatalf("uptime %v + downtime %v != %v", c.UpTime, c.DownTime, horizon)
	}
}

func TestPolicyNames(t *testing.T) {
	if (AlwaysTransmit{}).Name() == "" {
		t.Fatal("empty name")
	}
	if (ThresholdPolicy{VThreshold: 3}).Name() == "" {
		t.Fatal("empty name")
	}
	if (AdaptivePolicy{}).Name() == "" {
		t.Fatal("empty name")
	}
}

func BenchmarkNodeStep(b *testing.B) {
	n, err := New(Default(), ThresholdPolicy{VThreshold: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step(1e-3, true, 3.5)
	}
}

func TestCountersJSONRoundTrip(t *testing.T) {
	// The NaN "no packet yet" sentinel must survive JSON — the simulation
	// cache persists Counters inside sim.Result disk entries.
	c := Counters{Measurements: 3, Packets: 0, UpTime: 12.5, FirstTxTime: math.NaN()}
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"FirstTxTime":null`) {
		t.Fatalf("NaN sentinel not encoded as null: %s", b)
	}
	var back Counters
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(back.FirstTxTime) {
		t.Fatalf("sentinel lost: %v", back.FirstTxTime)
	}
	back.FirstTxTime, c.FirstTxTime = 0, 0
	if back != c {
		t.Fatalf("round trip altered counters: %+v vs %+v", back, c)
	}

	// A finite first-tx time round-trips as a plain number, and a document
	// omitting the field restores the sentinel.
	c.FirstTxTime = 4.25
	b, _ = json.Marshal(c)
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.FirstTxTime != 4.25 {
		t.Fatalf("finite value lost: %v", back.FirstTxTime)
	}
	if err := json.Unmarshal([]byte(`{"Packets":1}`), &back); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(back.FirstTxTime) {
		t.Fatal("missing field must restore the NaN sentinel")
	}
}
