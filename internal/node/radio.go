package node

import "math/rand"

// LinkConfig models the radio channel: a packet is lost with probability
// LossProb; after each transmission the node listens AckTime for the
// acknowledgement (at RxI) and retries up to MaxRetries times. The zero
// value is the ideal lossless link (no ACK listening, no retries), which
// keeps the energy model identical to the basic duty-cycle firmware.
type LinkConfig struct {
	LossProb   float64 // per-attempt packet loss probability (0–1)
	MaxRetries int     // additional attempts after the first
	AckTime    float64 // ACK listen window per attempt (s); 0 disables
	RxI        float64 // radio receive/listen current (A)
	Seed       int64   // channel randomness seed
}

// Validate checks the link parameters.
func (l LinkConfig) Validate() error {
	switch {
	case l.LossProb < 0 || l.LossProb >= 1:
		return errLink("loss probability must be in [0, 1)", l.LossProb)
	case l.MaxRetries < 0:
		return errLink("retries must be non-negative", float64(l.MaxRetries))
	case l.AckTime < 0:
		return errLink("ACK window must be non-negative", l.AckTime)
	case l.RxI < 0:
		return errLink("receive current must be non-negative", l.RxI)
	}
	return nil
}

func errLink(msg string, v float64) error {
	return &linkError{msg: msg, v: v}
}

type linkError struct {
	msg string
	v   float64
}

func (e *linkError) Error() string {
	return "node: link " + e.msg
}

// burstSeg is one constant-current segment of a transmit burst.
type burstSeg struct {
	dur     float64
	current float64
}

// buildBurst simulates the channel outcomes for nPackets queued packets
// and returns the resulting activity segments plus delivery counts.
func buildBurst(cfg Config, link LinkConfig, rng *rand.Rand, nPackets int) (segs []burstSeg, delivered, lost, retries int) {
	for p := 0; p < nPackets; p++ {
		attempts := 1 + link.MaxRetries
		done := false
		for a := 0; a < attempts && !done; a++ {
			segs = append(segs, burstSeg{dur: cfg.TxTime, current: cfg.McuI + cfg.TxI})
			if link.AckTime > 0 {
				segs = append(segs, burstSeg{dur: link.AckTime, current: cfg.McuI + link.RxI})
			}
			if a > 0 {
				retries++
			}
			if link.LossProb <= 0 || rng.Float64() >= link.LossProb {
				delivered++
				done = true
			}
		}
		if !done {
			lost++
		}
	}
	return segs, delivered, lost, retries
}
