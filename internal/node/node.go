// Package node models the wireless sensor node that the harvester powers:
// a duty-cycled microcontroller with a sensing task, a packet radio, and an
// energy-manager policy that decides when to spend stored energy.
//
// The node is a three-phase state machine (sleep → measure → transmit →
// sleep) driven in fixed time slices by the system simulator. Power is
// accounted as current drawn from the regulated rail; when the regulator's
// undervoltage lockout drops the rail the node browns out, loses volatile
// state, and cold-boots once power returns — the behaviour that makes the
// choice of duty cycle, storage size and transmit threshold a genuine
// multi-parameter design problem (the design space the DoE flow explores).
package node

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
)

// Config sets the node hardware and firmware timing/power parameters.
// Currents are drawn from the regulated rail at VRail volts.
type Config struct {
	Period      float64 // base measurement period (s)
	MeasureTime float64 // sensing + ADC + processing duration (s)
	TxTime      float64 // radio transmit duration per packet (s)
	BootTime    float64 // cold-boot duration after a brownout (s)

	SleepI    float64 // sleep current (A)
	McuI      float64 // MCU active current (A)
	SensorI   float64 // sensor supply current during measurement (A)
	TxI       float64 // radio transmit current (A)
	VRail     float64 // regulated rail voltage (V)
	MaxBuffer int     // measurements bufferable while transmission is deferred
}

// Default returns a configuration typical of a low-power 802.15.4-class
// node (sleep ≈ 2 µA, MCU ≈ 3 mA, TX ≈ 17 mA at a 1.8 V rail).
func Default() Config {
	return Config{
		Period:      10,
		MeasureTime: 10e-3,
		TxTime:      5e-3,
		BootTime:    50e-3,
		SleepI:      2e-6,
		McuI:        3e-3,
		SensorI:     1e-3,
		TxI:         17e-3,
		VRail:       1.8,
		MaxBuffer:   16,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Period <= 0:
		return fmt.Errorf("node: period %g must be positive", c.Period)
	case c.MeasureTime <= 0:
		return fmt.Errorf("node: measure time %g must be positive", c.MeasureTime)
	case c.TxTime <= 0:
		return fmt.Errorf("node: tx time %g must be positive", c.TxTime)
	case c.BootTime < 0:
		return fmt.Errorf("node: boot time %g must be non-negative", c.BootTime)
	case c.SleepI < 0 || c.McuI < 0 || c.SensorI < 0 || c.TxI < 0:
		return fmt.Errorf("node: currents must be non-negative")
	case c.VRail <= 0:
		return fmt.Errorf("node: rail voltage %g must be positive", c.VRail)
	case c.MaxBuffer < 0:
		return fmt.Errorf("node: buffer size %d must be non-negative", c.MaxBuffer)
	case c.MeasureTime+c.TxTime >= c.Period:
		return fmt.Errorf("node: active time %g must fit inside the period %g",
			c.MeasureTime+c.TxTime, c.Period)
	}
	return nil
}

// SleepPower returns the rail power (W) drawn while sleeping.
func (c Config) SleepPower() float64 { return c.SleepI * c.VRail }

// CyclePowerBudget returns the average rail power (W) of one
// measure+transmit duty cycle at the base period — the first-order energy
// budget used for sanity checks and the behavioural fast path.
func (c Config) CyclePowerBudget() float64 {
	eMeasure := (c.McuI + c.SensorI) * c.VRail * c.MeasureTime
	eTx := (c.McuI + c.TxI) * c.VRail * c.TxTime
	eSleep := c.SleepI * c.VRail * (c.Period - c.MeasureTime - c.TxTime)
	return (eMeasure + eTx + eSleep) / c.Period
}

// Policy is the energy-manager decision logic consulted at each wake-up.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// ShouldTransmit reports whether the node should spend transmit energy
	// now, given the store voltage.
	ShouldTransmit(vstore float64) bool
	// NextPeriod returns the sleep period to schedule after this cycle,
	// given the store voltage and the configured base period.
	NextPeriod(vstore, base float64) float64
}

// AlwaysTransmit sends every measurement immediately regardless of the
// energy state — the naive baseline.
type AlwaysTransmit struct{}

// Name implements Policy.
func (AlwaysTransmit) Name() string { return "always" }

// ShouldTransmit implements Policy: always true.
func (AlwaysTransmit) ShouldTransmit(float64) bool { return true }

// NextPeriod implements Policy: the base period.
func (AlwaysTransmit) NextPeriod(_, base float64) float64 { return base }

// ThresholdPolicy transmits only while the store voltage is at or above
// VThreshold, buffering measurements otherwise.
type ThresholdPolicy struct {
	VThreshold float64
}

// Name implements Policy.
func (p ThresholdPolicy) Name() string { return fmt.Sprintf("threshold(%.2fV)", p.VThreshold) }

// ShouldTransmit implements Policy.
func (p ThresholdPolicy) ShouldTransmit(v float64) bool { return v >= p.VThreshold }

// NextPeriod implements Policy: the base period.
func (p ThresholdPolicy) NextPeriod(_, base float64) float64 { return base }

// AdaptivePolicy scales the duty-cycle period with the energy state: at or
// above VFull it runs at the base period; approaching VEmpty it stretches
// the period up to MaxScale×. It transmits whenever the store is above
// VEmpty.
type AdaptivePolicy struct {
	VEmpty   float64 // store voltage treated as exhausted
	VFull    float64 // store voltage treated as full
	MaxScale float64 // period multiplier at VEmpty (≥1)
}

// Name implements Policy.
func (p AdaptivePolicy) Name() string { return "adaptive" }

// ShouldTransmit implements Policy.
func (p AdaptivePolicy) ShouldTransmit(v float64) bool { return v > p.VEmpty }

// NextPeriod implements Policy: linear interpolation of the period scale
// between VFull (1×) and VEmpty (MaxScale×).
func (p AdaptivePolicy) NextPeriod(v, base float64) float64 {
	if p.VFull <= p.VEmpty || p.MaxScale <= 1 {
		return base
	}
	frac := (p.VFull - v) / (p.VFull - p.VEmpty)
	frac = math.Max(0, math.Min(1, frac))
	return base * (1 + frac*(p.MaxScale-1))
}

// phase is the node's current activity.
type phase int

const (
	phaseOff phase = iota
	phaseBoot
	phaseSleep
	phaseMeasure
	phaseTransmit
)

// Counters aggregates observable node outcomes over a simulation run —
// these are the performance indicators (responses) the RSMs are fitted to.
type Counters struct {
	Measurements int     // sensing tasks completed
	Packets      int     // packets DELIVERED (acknowledged when the link is lossy)
	LostPackets  int     // packets abandoned after exhausting retries
	Retransmits  int     // retry attempts beyond each packet's first
	SkippedTx    int     // wake-ups where the policy deferred transmission
	DroppedMeas  int     // measurements lost to a full buffer or brownout
	Brownouts    int     // power losses while the node was on
	UpTime       float64 // seconds powered
	DownTime     float64 // seconds unpowered
	RailEnergy   float64 // energy drawn from the rail (J)
	FirstTxTime  float64 // time of first packet (s); NaN if none
}

// countersJSON shadows FirstTxTime with a pointer so the "no packet yet"
// NaN sentinel — which encoding/json rejects — round-trips as null.
type countersJSON struct {
	countersAlias
	FirstTxTime *float64 `json:"FirstTxTime"`
}

type countersAlias Counters

// MarshalJSON encodes FirstTxTime's NaN sentinel as null.
func (c Counters) MarshalJSON() ([]byte, error) {
	cj := countersJSON{countersAlias: countersAlias(c)}
	if !math.IsNaN(c.FirstTxTime) {
		v := c.FirstTxTime
		cj.FirstTxTime = &v
	}
	return json.Marshal(cj)
}

// UnmarshalJSON restores the NaN sentinel from null (or a missing field).
func (c *Counters) UnmarshalJSON(b []byte) error {
	var cj countersJSON
	if err := json.Unmarshal(b, &cj); err != nil {
		return err
	}
	*c = Counters(cj.countersAlias)
	if cj.FirstTxTime != nil {
		c.FirstTxTime = *cj.FirstTxTime
	} else {
		c.FirstTxTime = math.NaN()
	}
	return nil
}

// Node is the sensor-node state machine.
type Node struct {
	cfg    Config
	policy Policy
	link   LinkConfig
	rng    *rand.Rand

	state     phase
	phaseLeft float64 // time remaining in the current phase (s)
	buffered  int     // measurements waiting for transmission
	now       float64

	// Transmit-burst state: remaining constant-current segments and the
	// channel outcome to commit when the burst completes.
	burst       []burstSeg
	pendDeliver int
	pendLost    int
	pendRetries int

	c Counters
}

// New builds a node with the given configuration and policy over an ideal
// (lossless, zero-ACK) radio link.
func New(cfg Config, policy Policy) (*Node, error) {
	return NewWithLink(cfg, policy, LinkConfig{})
}

// NewWithLink builds a node whose radio behaves per link: lossy channel,
// ACK listen windows and bounded retransmission. Packets that exhaust
// their retries are abandoned (counted in Counters.LostPackets), not
// re-buffered.
func NewWithLink(cfg Config, policy Policy, link LinkConfig) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := link.Validate(); err != nil {
		return nil, err
	}
	if policy == nil {
		return nil, fmt.Errorf("node: nil policy")
	}
	n := &Node{
		cfg:    cfg,
		policy: policy,
		link:   link,
		rng:    rand.New(rand.NewSource(link.Seed)),
		state:  phaseOff,
	}
	n.c.FirstTxTime = math.NaN()
	return n, nil
}

// Counters returns a copy of the accumulated counters.
func (n *Node) Counters() Counters { return n.c }

// Buffered returns the number of measurements awaiting transmission.
func (n *Node) Buffered() int { return n.buffered }

// railCurrent returns the rail current of the active phase.
func (n *Node) railCurrent() float64 {
	switch n.state {
	case phaseOff:
		return 0
	case phaseBoot:
		return n.cfg.McuI
	case phaseSleep:
		return n.cfg.SleepI
	case phaseMeasure:
		return n.cfg.McuI + n.cfg.SensorI
	case phaseTransmit:
		if len(n.burst) > 0 {
			return n.burst[0].current
		}
		return n.cfg.McuI + n.cfg.TxI
	}
	return 0
}

// Step advances the node by dt seconds. powered reports whether the
// regulated rail is up, vstore is the store voltage the policy consults.
// It returns the average rail current (A) drawn over the slice.
func (n *Node) Step(dt float64, powered bool, vstore float64) float64 {
	if dt <= 0 {
		return 0
	}
	var charge float64 // ampere-seconds drawn this slice
	remaining := dt
	for remaining > 1e-15 {
		if !powered {
			if n.state != phaseOff {
				// Brownout: lose volatile state, including any burst in
				// flight.
				n.c.Brownouts++
				n.buffered = 0
				n.burst = nil
				n.pendDeliver, n.pendLost, n.pendRetries = 0, 0, 0
				n.state = phaseOff
			}
			n.c.DownTime += remaining
			n.now += remaining
			remaining = 0
			break
		}
		if n.state == phaseOff {
			// Power restored: cold boot.
			n.state = phaseBoot
			n.phaseLeft = n.cfg.BootTime
			if n.phaseLeft == 0 {
				n.enterSleep(vstore)
			}
		}
		seg := math.Min(remaining, n.phaseLeft)
		if seg <= 0 {
			seg = remaining
		}
		charge += n.railCurrent() * seg
		n.c.UpTime += seg
		n.now += seg
		n.phaseLeft -= seg
		remaining -= seg
		if n.phaseLeft <= 1e-15 {
			n.advancePhase(vstore)
		}
	}
	n.c.RailEnergy += charge * n.cfg.VRail
	return charge / dt
}

// enterSleep schedules the next wake according to the policy.
func (n *Node) enterSleep(vstore float64) {
	n.state = phaseSleep
	period := n.policy.NextPeriod(vstore, n.cfg.Period)
	sleep := period - n.cfg.MeasureTime - n.cfg.TxTime
	if sleep < 1e-3 {
		sleep = 1e-3
	}
	n.phaseLeft = sleep
}

// advancePhase moves to the next phase when the current one completes.
func (n *Node) advancePhase(vstore float64) {
	switch n.state {
	case phaseBoot:
		n.enterSleep(vstore)

	case phaseSleep:
		n.state = phaseMeasure
		n.phaseLeft = n.cfg.MeasureTime

	case phaseMeasure:
		n.c.Measurements++
		if n.buffered < n.cfg.MaxBuffer {
			n.buffered++
		} else {
			n.c.DroppedMeas++
		}
		if n.policy.ShouldTransmit(vstore) && n.buffered > 0 {
			n.burst, n.pendDeliver, n.pendLost, n.pendRetries =
				buildBurst(n.cfg, n.link, n.rng, n.buffered)
			n.state = phaseTransmit
			n.phaseLeft = n.burst[0].dur
		} else {
			n.c.SkippedTx++
			n.enterSleep(vstore)
		}

	case phaseTransmit:
		// One burst segment finished; move to the next or commit.
		n.burst = n.burst[1:]
		if len(n.burst) > 0 {
			n.phaseLeft = n.burst[0].dur
			return
		}
		n.c.Packets += n.pendDeliver
		n.c.LostPackets += n.pendLost
		n.c.Retransmits += n.pendRetries
		if n.pendDeliver > 0 && math.IsNaN(n.c.FirstTxTime) {
			n.c.FirstTxTime = n.now
		}
		n.buffered = 0
		n.pendDeliver, n.pendLost, n.pendRetries = 0, 0, 0
		n.enterSleep(vstore)
	}
}
