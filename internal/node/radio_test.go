package node

import (
	"math"
	"math/rand"
	"testing"
)

func TestLinkValidate(t *testing.T) {
	if err := (LinkConfig{}).Validate(); err != nil {
		t.Fatal("zero link must be valid (ideal channel)")
	}
	bad := []LinkConfig{
		{LossProb: -0.1},
		{LossProb: 1.0},
		{MaxRetries: -1},
		{AckTime: -1},
		{RxI: -1},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("case %d not rejected", i)
		}
	}
}

func TestNewWithLinkValidation(t *testing.T) {
	if _, err := NewWithLink(Default(), AlwaysTransmit{}, LinkConfig{LossProb: 2}); err == nil {
		t.Fatal("invalid link must be rejected")
	}
}

func TestBuildBurstIdealLink(t *testing.T) {
	cfg := Default()
	rng := rand.New(rand.NewSource(1))
	segs, delivered, lost, retries := buildBurst(cfg, LinkConfig{}, rng, 3)
	if delivered != 3 || lost != 0 || retries != 0 {
		t.Fatalf("ideal link outcome: %d/%d/%d", delivered, lost, retries)
	}
	if len(segs) != 3 {
		t.Fatalf("segments = %d, want 3 (one TX each)", len(segs))
	}
	for _, s := range segs {
		if s.dur != cfg.TxTime || s.current != cfg.McuI+cfg.TxI {
			t.Fatalf("bad segment %+v", s)
		}
	}
}

func TestBuildBurstWithAckWindows(t *testing.T) {
	cfg := Default()
	link := LinkConfig{AckTime: 2e-3, RxI: 12e-3}
	rng := rand.New(rand.NewSource(1))
	segs, delivered, _, _ := buildBurst(cfg, link, rng, 2)
	if delivered != 2 {
		t.Fatalf("delivered = %d", delivered)
	}
	if len(segs) != 4 { // TX, ACK, TX, ACK
		t.Fatalf("segments = %d, want 4", len(segs))
	}
	if segs[1].current != cfg.McuI+link.RxI || segs[1].dur != link.AckTime {
		t.Fatalf("ACK segment wrong: %+v", segs[1])
	}
}

func TestBuildBurstLossyStatistics(t *testing.T) {
	cfg := Default()
	link := LinkConfig{LossProb: 0.5, MaxRetries: 0}
	rng := rand.New(rand.NewSource(7))
	const n = 10000
	_, delivered, lost, _ := buildBurst(cfg, link, rng, n)
	if delivered+lost != n {
		t.Fatalf("accounting broken: %d + %d != %d", delivered, lost, n)
	}
	frac := float64(delivered) / n
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("delivery fraction %v, want ≈0.5", frac)
	}
}

func TestBuildBurstRetriesRecoverPackets(t *testing.T) {
	cfg := Default()
	rng := rand.New(rand.NewSource(9))
	const n = 5000
	// Without retries at 30 % loss: ≈70 % delivered.
	_, d0, _, _ := buildBurst(cfg, LinkConfig{LossProb: 0.3}, rng, n)
	// With 3 retries: ≈1−0.3⁴ ≈ 99.2 % delivered.
	_, d3, _, r3 := buildBurst(cfg, LinkConfig{LossProb: 0.3, MaxRetries: 3}, rng, n)
	if float64(d3)/n < 0.97 {
		t.Fatalf("retries delivered only %v", float64(d3)/n)
	}
	if d3 <= d0 {
		t.Fatalf("retries must improve delivery: %d vs %d", d3, d0)
	}
	if r3 == 0 {
		t.Fatal("retries not counted")
	}
}

func TestNodeWithLossyLinkEndToEnd(t *testing.T) {
	cfg := testConfig()
	link := LinkConfig{LossProb: 0.4, MaxRetries: 2, AckTime: 2e-3, RxI: 12e-3, Seed: 3}
	n, err := NewWithLink(cfg, AlwaysTransmit{}, link)
	if err != nil {
		t.Fatal(err)
	}
	run(t, n, 30, 1e-3, true, 3.5)
	c := n.Counters()
	if c.Packets == 0 {
		t.Fatal("no packets delivered")
	}
	if c.Retransmits == 0 {
		t.Fatal("40% loss must trigger retransmissions")
	}
	if c.Packets+c.LostPackets != c.Measurements-n.Buffered() {
		t.Fatalf("packet accounting: delivered %d + lost %d != attempted %d",
			c.Packets, c.LostPackets, c.Measurements-n.Buffered())
	}
	// The lossy link must cost more rail energy than the ideal one for
	// the same workload (retries + ACK listening).
	ideal, err := New(cfg, AlwaysTransmit{})
	if err != nil {
		t.Fatal(err)
	}
	run(t, ideal, 30, 1e-3, true, 3.5)
	if c.RailEnergy <= ideal.Counters().RailEnergy {
		t.Fatalf("lossy link energy %v not above ideal %v", c.RailEnergy, ideal.Counters().RailEnergy)
	}
}

func TestLossyLinkDeterministicBySeed(t *testing.T) {
	cfg := testConfig()
	link := LinkConfig{LossProb: 0.3, MaxRetries: 1, Seed: 11}
	mk := func() Counters {
		n, err := NewWithLink(cfg, AlwaysTransmit{}, link)
		if err != nil {
			t.Fatal(err)
		}
		run(t, n, 20, 1e-3, true, 3.5)
		return n.Counters()
	}
	a, b := mk(), mk()
	if a.Packets != b.Packets || a.Retransmits != b.Retransmits || a.LostPackets != b.LostPackets {
		t.Fatal("same seed must reproduce channel outcomes")
	}
}

func TestBrownoutMidBurstClearsIt(t *testing.T) {
	cfg := testConfig()
	cfg.TxTime = 50e-3 // long enough to interrupt mid-burst
	n, err := NewWithLink(cfg, AlwaysTransmit{}, LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Run until the node is inside a transmit burst: step to just past the
	// first measurement.
	run(t, n, 1.0+cfg.BootTime+0.02, 1e-3, true, 3.5)
	// Power fails regardless of exact phase; the node must recover and the
	// accounting stay consistent.
	n.Step(1e-3, false, 0)
	run(t, n, 3, 1e-3, true, 3.5)
	c := n.Counters()
	if c.Brownouts != 1 {
		t.Fatalf("brownouts = %d", c.Brownouts)
	}
	if c.Packets < 0 || math.IsNaN(c.FirstTxTime) && c.Packets > 0 {
		t.Fatal("inconsistent counters after mid-burst brownout")
	}
}
