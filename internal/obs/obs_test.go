package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn, "ERROR": slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("bogus level must be rejected")
	}
}

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hello", "k", 42)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json handler produced non-JSON: %s", buf.Bytes())
	}
	if rec["msg"] != "hello" || rec["k"] != float64(42) {
		t.Fatalf("record %v", rec)
	}

	buf.Reset()
	lg, err = NewLogger(&buf, "text", "warn")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("dropped")
	lg.Warn("kept")
	out := buf.String()
	if strings.Contains(out, "dropped") || !strings.Contains(out, "kept") {
		t.Fatalf("level filtering broken: %s", out)
	}

	if _, err := NewLogger(&buf, "yaml", "info"); err == nil {
		t.Fatal("bogus format must be rejected")
	}
	if _, err := NewLogger(&buf, "text", "loud"); err == nil {
		t.Fatal("bogus level must be rejected")
	}
}

func TestNopLogger(t *testing.T) {
	l := Nop()
	if l.Enabled(context.Background(), slog.LevelError) {
		t.Fatal("nop logger must be disabled at every level")
	}
	l.Error("goes nowhere") // must not panic
}

func TestNewIDPrefixAndUniqueness(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewID("req-")
		if !strings.HasPrefix(id, "req-") || len(id) != len("req-")+12 {
			t.Fatalf("malformed id %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if TraceID(ctx) != "" {
		t.Fatal("empty context must have no trace ID")
	}
	if FromContext(ctx) != Nop() {
		t.Fatal("empty context must yield the nop logger")
	}

	var buf bytes.Buffer
	lg, _ := NewLogger(&buf, "json", "debug")
	ctx, id := Annotate(ctx, lg, "req-", "")
	if id == "" || TraceID(ctx) != id {
		t.Fatalf("Annotate lost the trace ID: %q vs %q", id, TraceID(ctx))
	}
	FromContext(ctx).Info("ping")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["trace"] != id {
		t.Fatalf("context logger not bound to trace ID: %v", rec)
	}

	// An explicit ID is adopted, not replaced.
	ctx2, id2 := Annotate(context.Background(), lg, "req-", "req-abc")
	if id2 != "req-abc" || TraceID(ctx2) != "req-abc" {
		t.Fatalf("explicit ID not adopted: %q", id2)
	}
}
