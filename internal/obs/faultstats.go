package obs

import "context"

// FaultStats aggregates fault-recovery events occurring beneath a
// context: design-run retries after transient failures and simulation
// panics recovered into errors. It is the seam through which deep layers
// (internal/core) surface fault-tolerance activity to whoever owns the
// metrics registry — the owner registers callback readers over the
// counters, deep layers increment them via FaultStatsFrom without knowing
// about HTTP or registries, and the counts survive even when the run that
// caused them ultimately fails.
type FaultStats struct {
	Retries Counter // run attempts retried after a transient fault
	Panics  Counter // panics recovered into errors
}

// faultKey is distinct from the trace/logger keys in obs.go.
type faultStatsKey struct{}

// WithFaultStats stores the stats sink in the context.
func WithFaultStats(ctx context.Context, s *FaultStats) context.Context {
	return context.WithValue(ctx, faultStatsKey{}, s)
}

// FaultStatsFrom returns the context's stats sink, or nil when none was
// installed (callers must nil-check; most contexts carry none).
func FaultStatsFrom(ctx context.Context) *FaultStats {
	s, _ := ctx.Value(faultStatsKey{}).(*FaultStats)
	return s
}
