package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterAndVecRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("app_ticks_total", "Ticks.")
	c.Inc()
	c.Add(2)
	v := r.CounterVec("app_requests_total", "Requests by endpoint.", "endpoint")
	v.With("predict").Add(5)
	v.With("build").Inc()

	out := string(r.Render())
	for _, want := range []string{
		"# HELP app_ticks_total Ticks.\n# TYPE app_ticks_total counter\napp_ticks_total 3\n",
		`app_requests_total{endpoint="build"} 1`,
		`app_requests_total{endpoint="predict"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Same label value returns the same counter.
	if v.With("predict") != v.With("predict") {
		t.Fatal("With must be stable per label value")
	}
}

func TestGaugeAndFuncs(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("app_temp", "Temperature.")
	g.Set(3.5)
	g.Add(-1)
	r.GaugeFunc("app_uptime_seconds", "Uptime.", func() float64 { return 12.5 })
	r.CounterFunc("app_hits_total", "Hits.", func() float64 { return 9 })

	out := string(r.Render())
	for _, want := range []string{
		"app_temp 2.5\n",
		"app_uptime_seconds 12.5\n",
		"# TYPE app_hits_total counter\napp_hits_total 9\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramRender(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramVec("app_latency_seconds", "Latency.", "endpoint", []float64{0.1, 1})
	h.With("predict").Observe(0.05)
	h.With("predict").Observe(0.5)
	h.With("predict").Observe(5)

	out := string(r.Render())
	for _, want := range []string{
		`app_latency_seconds_bucket{endpoint="predict",le="0.1"} 1`,
		`app_latency_seconds_bucket{endpoint="predict",le="1"} 2`,
		`app_latency_seconds_bucket{endpoint="predict",le="+Inf"} 3`,
		`app_latency_seconds_sum{endpoint="predict"} 5.55`,
		`app_latency_seconds_count{endpoint="predict"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}

	plain := r.Histogram("app_size_bytes", "Sizes.", []float64{10})
	plain.Observe(3)
	if got := plain.Sum(); got != 3 {
		t.Fatalf("Sum() %g, want 3", got)
	}
	if got := h.With("predict").Sum(); got != 5.55 {
		t.Fatalf("vec Sum() %g, want 5.55", got)
	}
	out = string(r.Render())
	for _, want := range []string{
		`app_size_bytes_bucket{le="10"} 1`,
		`app_size_bytes_bucket{le="+Inf"} 1`,
		"app_size_bytes_sum 3\n",
		"app_size_bytes_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFamiliesSortedAndDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz_total", "Last.")
	r.Counter("aaa_total", "First.")
	out := string(r.Render())
	if strings.Index(out, "aaa_total") > strings.Index(out, "zzz_total") {
		t.Fatalf("families not sorted:\n%s", out)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	r.Counter("aaa_total", "Again.")
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	v := r.CounterVec("v_total", "v", "k")
	h := r.HistogramVec("h_seconds", "h", "k", []float64{1})
	g := r.Gauge("g", "g")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				c.Inc()
				v.With("a").Inc()
				h.With("a").Observe(0.5)
				g.Add(1)
				_ = r.Render()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 1600 || v.With("a").Value() != 1600 || h.With("a").Count() != 1600 {
		t.Fatalf("lost updates: c=%d v=%d h=%d", c.Value(), v.With("a").Value(), h.With("a").Count())
	}
	if g.Value() != 1600 {
		t.Fatalf("gauge CAS lost updates: %v", g.Value())
	}
}

func TestGaugeVecRender(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("app_inflight", "Inflight work by worker.", "worker")
	v.With("w-1").Set(3)
	v.With("w-2").Set(1)
	v.With("w-1").Add(-1)

	out := string(r.Render())
	for _, want := range []string{
		"# TYPE app_inflight gauge",
		`app_inflight{worker="w-1"} 2`,
		`app_inflight{worker="w-2"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if v.With("w-1") != v.With("w-1") {
		t.Fatal("With must be stable per label value")
	}
}
