// Package obs is the unified observability layer of the serving stack:
// structured logging (log/slog with configurable level and text/JSON
// format), request/job/run trace-ID generation and propagation through
// context.Context, a single process metrics registry rendered in
// Prometheus text exposition format, and net/http/pprof wiring.
//
// The conventions are deliberately small:
//
//   - A trace ID is minted (or adopted from X-Request-ID) at the HTTP
//     boundary, stored in the request context, and inherited by the build
//     job and every simulation run the request causes. One grep over the
//     logs for that ID yields the complete end-to-end account of the
//     request — access line, job state transitions, per-run simulation
//     timing and cache hits.
//   - Loggers travel in the context too, already bound to the trace ID
//     (logger.With("trace", id)), so deep layers (core, simcache) never
//     need to know where the ID came from: obs.FromContext(ctx) is either
//     the bound logger or a no-op.
//   - Metrics live in one Registry per process/server. Packages register
//     their counters (or callback readers over pre-existing counters) at
//     wiring time; /metrics renders the registry and nothing else.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps a flag string to a slog level. Accepted values:
// debug, info, warn, error (case-insensitive).
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// NewLogger builds a logger writing to w in the given format ("text" or
// "json") at the given level string.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want text|json)", format)
}

// nopHandler drops everything; Enabled is false at every level so
// disabled call sites pay only the interface dispatch.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (h nopHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h nopHandler) WithGroup(string) slog.Handler           { return h }

var nop = slog.New(nopHandler{})

// Nop returns the shared no-op logger: every level disabled.
func Nop() *slog.Logger { return nop }

// NewID mints a short random identifier with the given prefix, e.g.
// NewID("req-") → "req-9f2c01ab34de". IDs are 48 random bits — plenty for
// correlating log lines, not a security boundary.
func NewID(prefix string) string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; an ID of
		// zeros still produces valid (if colliding) log correlation.
		return prefix + "000000000000"
	}
	return prefix + hex.EncodeToString(b[:])
}

type ctxKey int

const (
	traceKey ctxKey = iota
	loggerKey
)

// WithTraceID stores a trace ID in the context.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey, id)
}

// TraceID returns the context's trace ID, or "" when none was set.
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(traceKey).(string)
	return id
}

// WithLogger stores a logger in the context. By convention the logger is
// already bound to the trace ID (l.With("trace", id)) so downstream
// layers emit correlated lines without knowing about IDs at all.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, loggerKey, l)
}

// FromContext returns the context's logger, or the no-op logger when none
// was set — library code can always log through it unconditionally.
func FromContext(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(loggerKey).(*slog.Logger); ok && l != nil {
		return l
	}
	return nop
}

// Annotate binds a trace ID and its logger into the context in one step:
// the returned context carries both, with the logger pre-bound to the ID.
// An empty id mints a fresh one with the given prefix.
func Annotate(ctx context.Context, l *slog.Logger, prefix, id string) (context.Context, string) {
	if id == "" {
		id = NewID(prefix)
	}
	if l == nil {
		l = nop
	} else {
		l = l.With("trace", id)
	}
	return WithLogger(WithTraceID(ctx, id), l), id
}
