package obs

import (
	"net/http"
	"net/http/pprof"
)

// PprofHandler returns the net/http/pprof handlers rooted at
// /debug/pprof/, without touching http.DefaultServeMux. Mount it behind
// an explicit flag — profiles expose internals and cost CPU while
// running.
func PprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// MountPprof attaches the pprof handlers to an existing mux under
// /debug/pprof/.
func MountPprof(mux *http.ServeMux) {
	mux.Handle("/debug/pprof/", PprofHandler())
}
