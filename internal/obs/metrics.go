package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is the single process-wide (or per-server) metrics collector.
// Packages register counters, gauges and histograms — or callback readers
// over counters they already maintain — and Render produces the complete
// Prometheus text exposition. All registered instruments are safe for
// concurrent use.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// family is one named metric: its metadata plus either static samples
// (per label value) or a callback.
type family struct {
	name, help, typ string
	labelKey        string // "" for unlabeled families

	mu      sync.Mutex
	samples map[string]sampler // label value ("" when unlabeled) → instrument
	order   []string           // insertion order, sorted at render
	fn      func() float64     // callback families (gauge/counter funcs)
}

// sampler renders one instrument's sample lines.
type sampler interface {
	render(b *strings.Builder, name, labels string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

func (r *Registry) register(name, help, typ, labelKey string, fn func() float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.fams[name]; ok {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	f := &family{name: name, help: help, typ: typ, labelKey: labelKey,
		samples: make(map[string]sampler), fn: fn}
	r.fams[name] = f
	return f
}

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) render(b *strings.Builder, name, labels string) {
	fmt.Fprintf(b, "%s%s %d\n", name, labels, c.v.Load())
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, "counter", "", nil)
	c := &Counter{}
	f.add("", c)
	return c
}

// CounterFunc registers a callback counter: the value is read at render
// time. Use it to expose counters a package already maintains internally
// (e.g. simcache hit/miss stats) without double counting.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, "counter", "", fn)
}

// CounterVec is a counter family keyed by one label.
type CounterVec struct{ f *family }

// With returns (creating on first use) the counter for a label value.
func (v *CounterVec) With(value string) *Counter {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if s, ok := v.f.samples[value]; ok {
		return s.(*Counter)
	}
	c := &Counter{}
	v.f.addLocked(value, c)
	return c
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help, labelKey string) *CounterVec {
	return &CounterVec{f: r.register(name, help, "counter", labelKey, nil)}
}

// Gauge is a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) render(b *strings.Builder, name, labels string) {
	fmt.Fprintf(b, "%s%s %g\n", name, labels, g.Value())
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, "gauge", "", nil)
	g := &Gauge{}
	f.add("", g)
	return g
}

// GaugeVec is a gauge family keyed by one label (e.g. per-worker inflight
// leases).
type GaugeVec struct{ f *family }

// With returns (creating on first use) the gauge for a label value.
func (v *GaugeVec) With(value string) *Gauge {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if s, ok := v.f.samples[value]; ok {
		return s.(*Gauge)
	}
	g := &Gauge{}
	v.f.addLocked(value, g)
	return g
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help, labelKey string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, "gauge", labelKey, nil)}
}

// GaugeFunc registers a callback gauge, read at render time (uptime,
// cache entry counts, queue depths).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", "", fn)
}

// Histogram is a cumulative histogram with fixed upper bounds. An
// implicit +Inf bucket follows the configured ones.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64
	buckets []uint64 // len(bounds)+1, last is +Inf
	sum     float64
	count   uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	for i, ub := range h.bounds {
		if v <= ub {
			h.buckets[i]++
		}
	}
	h.buckets[len(h.bounds)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observed values — with Count, enough to read
// a mean out of a running histogram in tests and ops tooling.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

func (h *Histogram) render(b *strings.Builder, name, labels string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	// _bucket carries the le label after any family label, inside the
	// same braces.
	open := "{"
	if labels != "" {
		open = labels[:len(labels)-1] + ","
	}
	for i, ub := range h.bounds {
		fmt.Fprintf(b, "%s_bucket%sle=%q} %d\n", name, open, fmt.Sprintf("%g", ub), h.buckets[i])
	}
	fmt.Fprintf(b, "%s_bucket%sle=\"+Inf\"} %d\n", name, open, h.buckets[len(h.bounds)])
	fmt.Fprintf(b, "%s_sum%s %g\n", name, labels, h.sum)
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, h.count)
}

func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, buckets: make([]uint64, len(bs)+1)}
}

// Histogram registers and returns an unlabeled histogram.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.register(name, help, "histogram", "", nil)
	h := newHistogram(bounds)
	f.add("", h)
	return h
}

// HistogramVec is a histogram family keyed by one label.
type HistogramVec struct {
	f      *family
	bounds []float64
}

// With returns (creating on first use) the histogram for a label value.
func (v *HistogramVec) With(value string) *Histogram {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if s, ok := v.f.samples[value]; ok {
		return s.(*Histogram)
	}
	h := newHistogram(v.bounds)
	v.f.addLocked(value, h)
	return h
}

// HistogramVec registers a labeled histogram family with shared bounds.
func (r *Registry) HistogramVec(name, help, labelKey string, bounds []float64) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, "histogram", labelKey, nil), bounds: bounds}
}

func (f *family) add(label string, s sampler) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.addLocked(label, s)
}

func (f *family) addLocked(label string, s sampler) {
	f.samples[label] = s
	f.order = append(f.order, label)
}

// Render produces the registry's full Prometheus text exposition:
// families sorted by name, samples sorted by label value.
func (r *Registry) Render() []byte {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		if f.fn != nil {
			v := f.fn()
			if f.typ == "counter" {
				fmt.Fprintf(&b, "%s %d\n", f.name, uint64(v))
			} else {
				fmt.Fprintf(&b, "%s %g\n", f.name, v)
			}
			continue
		}
		f.mu.Lock()
		labels := make([]string, len(f.order))
		copy(labels, f.order)
		sort.Strings(labels)
		for _, lv := range labels {
			s := f.samples[lv]
			tag := ""
			if f.labelKey != "" {
				tag = fmt.Sprintf("{%s=%q}", f.labelKey, lv)
			}
			s.render(&b, f.name, tag)
		}
		f.mu.Unlock()
	}
	return []byte(b.String())
}
