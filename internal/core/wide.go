package core

import (
	"repro/internal/doe"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/vibration"
)

// WideProblem returns the six-factor variant of the standard design
// problem: the four StandardProblem factors plus excitation amplitude and
// initial store voltage as design factors. This is the scenario-grid
// workload the adaptive-vs-fixed benchmark measures savings on — at k=6
// the fixed CCF reference costs 2⁶+12+3 = 79 runs while the 28-term
// quadratic needs barely half that, so a sequential build has real room to
// stop early. Responses are restricted to the smooth indicators (power,
// energies, final voltage): the stepped counters (packets, uptime,
// first-tx) are staircase functions a polynomial cannot follow at short
// horizons and would only measure noise.
func WideProblem(horizon float64) *Problem {
	base := sim.DefaultDesign()
	f0 := base.Harv.ResonantFreq(base.Harv.GapMax)
	return &Problem{
		Factors: []doe.Factor{
			{Name: "period", Min: 2, Max: 20, Unit: "s"},
			{Name: "supercap", Min: 0.01, Max: 0.1, Unit: "F"},
			{Name: "vth", Min: 2.6, Max: 3.6, Unit: "V"},
			{Name: "freq_off", Min: -0.5, Max: 0.5, Unit: "Hz"},
			// Excitation amplitude spans the T1/T6 experiment levels
			// (0.6 and 1.0 m/s²) with margin on both sides.
			{Name: "amp", Min: 0.4, Max: 1.2, Unit: "m/s²"},
			// Initial store charge state, from just above the node's
			// brown-out region to just above the threshold range.
			{Name: "v0", Min: 3.0, Max: 3.6, Unit: "V"},
		},
		Responses: []ResponseID{
			RespHarvestedPower, RespStoredEnergy, RespFinalStoreV, RespNetMargin,
		},
		Horizon: horizon,
		Build: func(nat []float64) (Scenario, error) {
			d := sim.DefaultDesign()
			d.Node.Period = nat[0]
			d.Store.C = nat[1]
			d.Policy = node.ThresholdPolicy{VThreshold: nat[2]}
			d.InitialStoreV = nat[5]
			src := vibration.Sine{Amplitude: nat[4], Freq: f0 + nat[3]}
			return Scenario{Design: d, Source: src}, nil
		},
	}
}
