package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/doe"
	"repro/internal/sim"
	"repro/internal/simcache"
)

// passRunner executes the engine directly with no cache capabilities, so
// the batch prepass can neither peel nor publish through it.
type passRunner struct{}

func (passRunner) Run(ctx context.Context, engine string, fn simcache.Engine, d sim.Design, cfg sim.Config) (*sim.Result, error) {
	return fn(d, cfg)
}

// batchProblem is quickProblem wired for the batch engine with its own
// private cache, so tests see exactly the peel/publish traffic they cause.
func batchProblem() *Problem {
	p := quickProblem()
	p.EngineName = EngineBatch
	p.Runner = simcache.New(simcache.Options{})
	return p
}

func TestEngineBatchMatchesFastBitwise(t *testing.T) {
	d, err := doe.CentralComposite(3, doe.CCF, 1)
	if err != nil {
		t.Fatal(err)
	}

	fast := quickProblem()
	fast.Runner = simcache.New(simcache.Options{})
	want, err := fast.RunDesignContext(context.Background(), d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if want.Batch != nil {
		t.Fatalf("fast engine must not carry batch stats, got %+v", want.Batch)
	}

	bp := batchProblem()
	got, err := bp.RunDesignContext(context.Background(), d, 2)
	if err != nil {
		t.Fatal(err)
	}
	for id, col := range want.Y {
		bcol := got.Y[id]
		if len(bcol) != len(col) {
			t.Fatalf("response %q: %d rows vs %d", id, len(bcol), len(col))
		}
		for i := range col {
			if math.Float64bits(col[i]) != math.Float64bits(bcol[i]) {
				t.Fatalf("response %q run %d: batch %v != fast %v", id, i, bcol[i], col[i])
			}
		}
	}

	bs := got.Batch
	if bs == nil {
		t.Fatal("batch engine must report batch stats")
	}
	if bs.Points != d.N() {
		t.Fatalf("Points = %d, want %d", bs.Points, d.N())
	}
	if bs.Peeled != 0 {
		t.Fatalf("fresh cache must peel nothing, got %d", bs.Peeled)
	}
	if bs.Lanes == 0 || bs.Chunks == 0 {
		t.Fatalf("prepass must simulate lanes, got %+v", bs)
	}
}

func TestBatchAllLanesCachedShortCircuits(t *testing.T) {
	d, err := doe.CentralComposite(3, doe.CCF, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := batchProblem()

	first, err := p.RunDesignContext(context.Background(), d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if first.Batch.Lanes == 0 {
		t.Fatalf("first build must batch lanes, got %+v", first.Batch)
	}
	unique := first.Batch.Lanes + first.Batch.Peeled

	second, err := p.RunDesignContext(context.Background(), d, 2)
	if err != nil {
		t.Fatal(err)
	}
	bs := second.Batch
	if bs == nil {
		t.Fatal("second build must still report batch stats")
	}
	if bs.Peeled != unique {
		t.Fatalf("second build must peel every unique point: Peeled = %d, want %d", bs.Peeled, unique)
	}
	if bs.Chunks != 0 || bs.Lanes != 0 {
		t.Fatalf("all-cached batch must short-circuit without chunks, got %+v", bs)
	}
	for id, col := range first.Y {
		for i := range col {
			if math.Float64bits(col[i]) != math.Float64bits(second.Y[id][i]) {
				t.Fatalf("response %q run %d: cached %v != batched %v", id, i, second.Y[id][i], col[i])
			}
		}
	}
}

func TestPrewarmBatchCustomEngineBypasses(t *testing.T) {
	p := batchProblem()
	p.Engine = sim.RunReference
	pts := [][]float64{{0, 0, 0}, {1, -1, 0.5}}
	runp, stats := p.PrewarmBatch(context.Background(), pts, 2)
	if runp != p {
		t.Fatal("custom engine must return the problem unchanged")
	}
	if stats.Points != len(pts) || stats.Lanes != 0 || stats.Chunks != 0 || stats.Peeled != 0 {
		t.Fatalf("custom engine must skip the prepass, got %+v", stats)
	}
}

func TestPrewarmBatchOpaqueRunner(t *testing.T) {
	d, err := doe.TwoLevelFactorial(3)
	if err != nil {
		t.Fatal(err)
	}
	p := batchProblem()
	p.Runner = passRunner{}

	ds, err := p.RunDesignContext(context.Background(), d, 2)
	if err != nil {
		t.Fatal(err)
	}
	bs := ds.Batch
	if bs == nil || bs.Peeled != 0 {
		t.Fatalf("opaque runner cannot peel, got %+v", bs)
	}
	if bs.Lanes == 0 {
		t.Fatalf("prepass must still batch through an opaque runner, got %+v", bs)
	}

	fast := quickProblem()
	fast.Runner = passRunner{}
	want, err := fast.RunDesignContext(context.Background(), d, 2)
	if err != nil {
		t.Fatal(err)
	}
	for id, col := range want.Y {
		for i := range col {
			if math.Float64bits(col[i]) != math.Float64bits(ds.Y[id][i]) {
				t.Fatalf("response %q run %d: batch %v != fast %v", id, i, ds.Y[id][i], col[i])
			}
		}
	}
}
