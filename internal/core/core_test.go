package core

import (
	"math"
	"testing"

	"repro/internal/doe"
	"repro/internal/rsm"
	"repro/internal/sim"
	"repro/internal/vibration"
)

// quickProblem returns a small, fast problem for tests: short horizon,
// 3 factors.
func quickProblem() *Problem {
	p := StandardProblem(0.6, 20)
	// Trim to 3 factors (drop the frequency offset) to keep CCDs small.
	p.Factors = p.Factors[:3]
	build := p.Build
	p.Build = func(nat []float64) (Scenario, error) {
		return build(append(append([]float64(nil), nat...), 0))
	}
	return p
}

func TestProblemValidate(t *testing.T) {
	p := StandardProblem(0.6, 30)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *p
	bad.Factors = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("no factors must be rejected")
	}
	bad = *p
	bad.Responses = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("no responses must be rejected")
	}
	bad = *p
	bad.Build = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("no Build must be rejected")
	}
	bad = *p
	bad.Horizon = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero horizon must be rejected")
	}
}

func TestExtractAllResponses(t *testing.T) {
	d := sim.DefaultDesign()
	src := vibration.Sine{Amplitude: 0.6, Freq: d.Harv.ResonantFreq(d.Harv.GapMax)}
	r, err := sim.RunFast(d, sim.Config{Horizon: 15, Source: src})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range AllResponses() {
		v, err := Extract(id, r, 15)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if math.IsNaN(v) {
			t.Fatalf("%s extracted NaN", id)
		}
	}
	if _, err := Extract(ResponseID("nope"), r, 15); err == nil {
		t.Fatal("unknown response must error")
	}
}

func TestExtractCensorsFirstTx(t *testing.T) {
	d := sim.DefaultDesign()
	d.InitialStoreV = 0 // node never powers: no packets
	src := vibration.Sine{Amplitude: 0.05, Freq: 20}
	r, err := sim.RunFast(d, sim.Config{Horizon: 10, Source: src})
	if err != nil {
		t.Fatal(err)
	}
	v, err := Extract(RespFirstTx, r, 10)
	if err != nil {
		t.Fatal(err)
	}
	if v != 10 {
		t.Fatalf("censored first-tx = %v, want horizon 10", v)
	}
}

func TestRunDesignAndSurfaces(t *testing.T) {
	p := quickProblem()
	design, err := doe.CentralComposite(3, doe.CCF, 2)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := p.RunDesign(design)
	if err != nil {
		t.Fatal(err)
	}
	if ds.SimTime <= 0 {
		t.Fatal("simulation time not recorded")
	}
	for _, id := range p.Responses {
		if len(ds.Y[id]) != design.N() {
			t.Fatalf("%s has %d values, want %d", id, len(ds.Y[id]), design.N())
		}
	}
	s, err := p.BuildSurfaces(ds, rsm.FullQuadratic(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Fits) != len(p.Responses) {
		t.Fatal("missing fits")
	}
	// The harvested-power surface must be usable: R² meaningfully high
	// (power varies smoothly with these factors).
	fit := s.Fits[RespHarvestedPower]
	if fit.R2 < 0.5 {
		t.Fatalf("harvested-power R² = %v, surface useless", fit.R2)
	}
	// Prediction runs and returns finite values.
	v, err := s.Predict(RespStoredEnergy, []float64{0.2, -0.3, 0.1})
	if err != nil || math.IsNaN(v) {
		t.Fatalf("predict: %v %v", v, err)
	}
	if _, err := s.Predict(ResponseID("nope"), []float64{0, 0, 0}); err == nil {
		t.Fatal("unknown response must error")
	}
	ev, err := s.Evaluator(RespPackets)
	if err != nil {
		t.Fatal(err)
	}
	if got := ev([]float64{0, 0, 0}); math.IsNaN(got) {
		t.Fatal("evaluator returned NaN")
	}
}

func TestRunDesignValidation(t *testing.T) {
	p := quickProblem()
	if _, err := p.RunDesign(&doe.Design{}); err == nil {
		t.Fatal("empty design must error")
	}
	d4, _ := doe.TwoLevelFactorial(4)
	if _, err := p.RunDesign(d4); err == nil {
		t.Fatal("factor-count mismatch must error")
	}
}

func TestBuildSurfacesValidation(t *testing.T) {
	p := quickProblem()
	design, _ := doe.CentralComposite(3, doe.CCF, 2)
	ds, err := p.RunDesign(design)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.BuildSurfaces(ds, rsm.FullQuadratic(4)); err == nil {
		t.Fatal("model factor mismatch must error")
	}
	delete(ds.Y, RespPackets)
	if _, err := p.BuildSurfaces(ds, rsm.FullQuadratic(3)); err == nil {
		t.Fatal("missing response data must error")
	}
}

func TestValidationReportAccuracy(t *testing.T) {
	p := quickProblem()
	design, err := doe.CentralComposite(3, doe.CCF, 3)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := p.RunDesign(design)
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.BuildSurfaces(ds, rsm.FullQuadratic(3))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Validate(8, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != len(p.Responses) {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// The headline claim: RSM evaluation is dramatically cheaper than
	// simulation for the same points. The race detector skews these
	// microsecond-scale intervals by an order of magnitude, so the ratio
	// is only asserted in normal builds.
	if !raceEnabled && rep.RSMTime*100 > rep.SimTime {
		t.Fatalf("RSM time %v not ≪ sim time %v", rep.RSMTime, rep.SimTime)
	}
	// The smoothest response (stored energy ≈ ½CV², near-linear in the
	// supercap factor) must be predicted within a modest fraction of its
	// range when interpolating inside the fitted cube. Harvested power is
	// asserted at bench horizons (R-T3), where its factor structure is
	// pronounced; at this short test horizon its range is a few µW and a
	// range-relative bound would be noise-dominated.
	for _, row := range rep.Rows {
		if row.Response == RespStoredEnergy && row.MeanRelErr > 0.15 {
			t.Fatalf("stored-energy mean relative error %v too large", row.MeanRelErr)
		}
	}
	if _, err := s.Validate(0, 1); err == nil {
		t.Fatal("n=0 must error")
	}
}

func TestOptimizeConfirmsWithSimulation(t *testing.T) {
	p := quickProblem()
	design, err := doe.CentralComposite(3, doe.CCF, 3)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := p.RunDesign(design)
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.BuildSurfaces(ds, rsm.FullQuadratic(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Optimize(RespStoredEnergy, true, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Coded) != 3 || len(res.Natural) != 3 {
		t.Fatal("optimum dimensions wrong")
	}
	for _, v := range res.Coded {
		if v < -1-1e-9 || v > 1+1e-9 {
			t.Fatalf("optimum %v escapes the coded cube", res.Coded)
		}
	}
	if res.Evals == 0 {
		t.Fatal("no evaluations counted")
	}
	// The surface optimum must be at least as good as the design centre
	// when simulated.
	centre, err := p.ResponsesAt([]float64{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Confirmed < centre[RespStoredEnergy]*0.8 {
		t.Fatalf("confirmed optimum %v worse than centre %v", res.Confirmed, centre[RespStoredEnergy])
	}
	if _, err := s.Optimize(ResponseID("nope"), true, 1, 1); err == nil {
		t.Fatal("unknown response must error")
	}
}

func TestSimulateCodedMatchesResponsesAt(t *testing.T) {
	p := quickProblem()
	x := []float64{0.5, -0.5, 0}
	r, err := p.SimulateCoded(x)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := p.ResponsesAt(x)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Extract(RespPackets, r, p.Horizon)
	if err != nil {
		t.Fatal(err)
	}
	if resp[RespPackets] != want {
		t.Fatalf("ResponsesAt inconsistent with SimulateCoded: %v vs %v", resp[RespPackets], want)
	}
}

func TestStandardProblemFactorsDriveTheSystem(t *testing.T) {
	p := StandardProblem(0.6, 20)
	// Longer period (factor 0 high) must produce fewer packets.
	fast, err := p.ResponsesAt([]float64{-1, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := p.ResponsesAt([]float64{1, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if slow[RespPackets] >= fast[RespPackets] {
		t.Fatalf("period factor inert: %v vs %v packets", slow[RespPackets], fast[RespPackets])
	}
	// Frequency offset (factor 3) away from resonance must cut harvest.
	onRes, err := p.ResponsesAt([]float64{0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	offRes, err := p.ResponsesAt([]float64{0, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if offRes[RespHarvestedPower] >= onRes[RespHarvestedPower] {
		t.Fatalf("frequency factor inert: %v vs %v µW", offRes[RespHarvestedPower], onRes[RespHarvestedPower])
	}
}
