package core

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/doe"
	"repro/internal/opt"
	"repro/internal/rsm"
	"repro/internal/sim"
)

func TestRunDesignParallelMatchesSerial(t *testing.T) {
	p := quickProblem()
	design, err := doe.CentralComposite(3, doe.CCF, 2)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := p.RunDesign(design)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := p.RunDesignParallel(design, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range p.Responses {
		a, b := serial.Y[id], parallel.Y[id]
		if len(a) != len(b) {
			t.Fatalf("%s: lengths differ", id)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s run %d: serial %v vs parallel %v", id, i, a[i], b[i])
			}
		}
	}
}

func TestRunDesignParallelValidation(t *testing.T) {
	p := quickProblem()
	if _, err := p.RunDesignParallel(&doe.Design{}, 2); err == nil {
		t.Fatal("empty design must be rejected")
	}
	d4, _ := doe.TwoLevelFactorial(4)
	if _, err := p.RunDesignParallel(d4, 2); err == nil {
		t.Fatal("factor mismatch must be rejected")
	}
	// Default worker count works.
	small, _ := doe.TwoLevelFactorial(3)
	if _, err := p.RunDesignParallel(small, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunDesignParallelPropagatesErrors(t *testing.T) {
	p := quickProblem()
	fail := *p
	fail.Build = func(nat []float64) (Scenario, error) {
		if nat[0] > 10 {
			return Scenario{}, fmt.Errorf("synthetic failure")
		}
		return p.Build(nat)
	}
	design, _ := doe.TwoLevelFactorial(3)
	if _, err := fail.RunDesignParallel(design, 3); err == nil {
		t.Fatal("worker error must propagate")
	}
}

func TestRunDesignContextPreCancelled(t *testing.T) {
	p := quickProblem()
	design, _ := doe.TwoLevelFactorial(3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.RunDesignContext(ctx, design, 2); err == nil {
		t.Fatal("cancelled context must abort the run")
	}
}

func TestRunDesignContextAbortsEarlyOnError(t *testing.T) {
	// With one worker the handout is strictly sequential, so a failure at
	// run 2 must stop the design after exactly 3 simulations — the old
	// runner executed all of them before reporting the error.
	p := quickProblem()
	var sims atomic.Int64
	fail := *p
	build := p.Build
	fail.Build = func(nat []float64) (Scenario, error) {
		if sims.Add(1) == 3 {
			return Scenario{}, fmt.Errorf("synthetic failure")
		}
		return build(nat)
	}
	design, _ := doe.TwoLevelFactorial(3) // 8 runs
	_, err := fail.RunDesignContext(context.Background(), design, 1)
	if err == nil {
		t.Fatal("worker error must propagate")
	}
	if got := sims.Load(); got != 3 {
		t.Fatalf("ran %d simulations after the failure, want 3", got)
	}
}

func TestRunDesignContextCancelMidRun(t *testing.T) {
	// Cancel while the first simulation is in flight: the single worker
	// must abandon the remaining runs.
	p := quickProblem()
	ctx, cancel := context.WithCancel(context.Background())
	var sims atomic.Int64
	blocked := *p
	build := p.Build
	blocked.Build = func(nat []float64) (Scenario, error) {
		sims.Add(1)
		cancel()
		<-ctx.Done()
		return build(nat)
	}
	design, _ := doe.TwoLevelFactorial(3)
	_, err := blocked.RunDesignContext(ctx, design, 1)
	if err == nil {
		t.Fatal("mid-run cancellation must abort the design")
	}
	// The in-flight run completes (the simulator is not preemptible) but
	// nothing new starts. AfterFunc delivery is asynchronous, so allow the
	// worker to have started at most one more run before observing it.
	if got := sims.Load(); got > 2 {
		t.Fatalf("started %d simulations after cancellation, want ≤ 2", got)
	}
	if ds, err := p.RunDesignContext(context.Background(), design, 2); err != nil {
		t.Fatal(err)
	} else if ds.SimWork <= 0 || ds.Speedup() <= 0 {
		t.Fatalf("work accounting missing: work %v speedup %v", ds.SimWork, ds.Speedup())
	}
}

func TestSubregion(t *testing.T) {
	p := StandardProblem(0.6, 20)
	sub, err := p.Subregion([]float64{0, 0, 0, 0}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range sub.Factors {
		orig := p.Factors[i]
		wantWidth := 0.5 * (orig.Max - orig.Min)
		if math.Abs((f.Max-f.Min)-wantWidth) > 1e-9 {
			t.Fatalf("factor %s width %v, want %v", f.Name, f.Max-f.Min, wantWidth)
		}
		mid := (f.Min + f.Max) / 2
		if math.Abs(mid-(orig.Min+orig.Max)/2) > 1e-9 {
			t.Fatalf("factor %s not centred", f.Name)
		}
	}
	// Centre near the edge clamps but keeps the width.
	sub2, err := p.Subregion([]float64{1, 1, 1, 1}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range sub2.Factors {
		orig := p.Factors[i]
		if f.Max > orig.Max+1e-12 || f.Min < orig.Min-1e-12 {
			t.Fatalf("factor %s escaped the original range", f.Name)
		}
		if math.Abs((f.Max-f.Min)-0.5*(orig.Max-orig.Min)) > 1e-9 {
			t.Fatalf("factor %s width collapsed at the edge", f.Name)
		}
	}
	if _, err := p.Subregion([]float64{0}, 0.5); err == nil {
		t.Fatal("dimension mismatch must be rejected")
	}
	if _, err := p.Subregion([]float64{0, 0, 0, 0}, 0); err == nil {
		t.Fatal("zero scale must be rejected")
	}
	if _, err := p.Subregion([]float64{0, 0, 0, 0}, 1.5); err == nil {
		t.Fatal("scale > 1 must be rejected")
	}
}

func TestSubregionRefinementImprovesSpikyResponse(t *testing.T) {
	// The sequential-RSM claim: re-fitting over a smaller region improves
	// prediction of the resonance-shaped harvested-power response.
	if testing.Short() {
		t.Skip("refinement runs two designed experiments")
	}
	full := StandardProblem(0.6, 15)
	sub, err := full.Subregion(make([]float64, 4), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	probe := func(p *Problem) float64 {
		design, err := doe.CentralComposite(4, doe.CCF, 2)
		if err != nil {
			t.Fatal(err)
		}
		ds, err := p.RunDesignParallel(design, 0)
		if err != nil {
			t.Fatal(err)
		}
		s, err := p.BuildSurfaces(ds, rsm.FullQuadratic(4))
		if err != nil {
			t.Fatal(err)
		}
		// Validation points drawn inside the SUB region for both, so the
		// comparison is apples to apples: encode sub-region natural points
		// into each problem's own coded units.
		var sumErr float64
		const n = 5
		for i := 0; i < n; i++ {
			natural := make([]float64, 4)
			for j, f := range sub.Factors {
				frac := float64(i+1) / float64(n+2)
				natural[j] = f.Min + frac*(f.Max-f.Min)
			}
			coded := make([]float64, 4)
			for j, f := range p.Factors {
				coded[j] = f.Encode(natural[j])
			}
			resp, err := p.ResponsesAt(coded)
			if err != nil {
				t.Fatal(err)
			}
			pred := s.Fits[RespHarvestedPower].Predict(coded)
			sumErr += math.Abs(pred - resp[RespHarvestedPower])
		}
		return sumErr / n
	}
	errFull := probe(full)
	errSub := probe(sub)
	if errSub > errFull {
		t.Fatalf("refinement did not help: sub-region err %v vs full %v", errSub, errFull)
	}
}

func TestOptimizeDesirability(t *testing.T) {
	p := quickProblem()
	design, err := doe.CentralComposite(3, doe.CCF, 2)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := p.RunDesignParallel(design, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.BuildSurfaces(ds, rsm.FullQuadratic(3))
	if err != nil {
		t.Fatal(err)
	}
	goals := []DesirabilityGoal{
		{Response: RespPackets, Shape: opt.Larger{Lo: 0, Hi: 10}},
		{Response: RespNetMargin, Shape: opt.Larger{Lo: -5, Hi: 1}, Weight: 2},
	}
	res, err := s.OptimizeDesirability(goals, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score <= 0 || res.Score > 1 {
		t.Fatalf("composite score %v outside (0,1]", res.Score)
	}
	if res.Confirmed < 0 || res.Confirmed > 1 {
		t.Fatalf("confirmed score %v outside [0,1]", res.Confirmed)
	}
	if len(res.Predicted) != 2 || len(res.Simulated) != 2 {
		t.Fatal("per-response maps incomplete")
	}
	if res.Evals == 0 {
		t.Fatal("evaluations not counted")
	}
	// Errors.
	if _, err := s.OptimizeDesirability(nil, 1, 1); err == nil {
		t.Fatal("no goals must be rejected")
	}
	bad := []DesirabilityGoal{{Response: ResponseID("nope"), Shape: opt.Larger{Lo: 0, Hi: 1}}}
	if _, err := s.OptimizeDesirability(bad, 1, 1); err == nil {
		t.Fatal("unknown response must be rejected")
	}
}

// quickProblem wiring sanity for the reference engine override: the core
// flow must run with RunReference as well (a short horizon keeps it fast).
func TestProblemWithReferenceEngine(t *testing.T) {
	p := quickProblem()
	p.Horizon = 2
	p.Engine = sim.RunReference
	resp, err := p.ResponsesAt([]float64{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := resp[RespStoredEnergy]; !ok {
		t.Fatal("reference-engine response missing")
	}
}
