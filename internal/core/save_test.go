package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/doe"
	"repro/internal/rsm"
)

func buildTestSurfaces(t *testing.T) (*Problem, *Surfaces) {
	t.Helper()
	p := quickProblem()
	design, err := doe.CentralComposite(3, doe.CCF, 2)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := p.RunDesign(design)
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.BuildSurfaces(ds, rsm.FullQuadratic(3))
	if err != nil {
		t.Fatal(err)
	}
	return p, s
}

func TestSaveRoundTrip(t *testing.T) {
	_, s := buildTestSurfaces(t)
	saved := s.Save("CCF", 17)
	data, err := saved.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "stored_energy_J") {
		t.Fatal("JSON missing response id")
	}
	back, err := DecodeSurfaces(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.DesignName != "CCF" || back.Runs != 17 {
		t.Fatalf("provenance lost: %+v", back)
	}
	// Predictions must match the live fit exactly.
	pt := []float64{0.3, -0.4, 0.7}
	for id, fit := range s.Fits {
		want := fit.Predict(pt)
		got, err := back.Predict(id, pt)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
			t.Fatalf("%s: saved %v vs live %v", id, got, want)
		}
	}
}

func TestSavedPredictNatural(t *testing.T) {
	_, s := buildTestSurfaces(t)
	saved := s.Save("CCF", 17)
	// Natural at factor centres must equal coded origin.
	nat := make([]float64, len(saved.Factors))
	for i, f := range saved.Factors {
		nat[i] = (f.Min + f.Max) / 2
	}
	a, err := saved.PredictNatural(RespStoredEnergy, nat)
	if err != nil {
		t.Fatal(err)
	}
	b, err := saved.Predict(RespStoredEnergy, make([]float64, len(saved.Factors)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("natural/coded mismatch: %v vs %v", a, b)
	}
}

func TestSavedValidation(t *testing.T) {
	if _, err := DecodeSurfaces([]byte("{")); err == nil {
		t.Fatal("bad JSON must error")
	}
	if _, err := DecodeSurfaces([]byte(`{"factors":[],"terms":[[0]],"coef":{"x":[1]}}`)); err == nil {
		t.Fatal("no factors must error")
	}
	if _, err := DecodeSurfaces([]byte(`{"factors":[{"Name":"a","Min":0,"Max":1}],"terms":[[0,0]],"coef":{"x":[1]}}`)); err == nil {
		t.Fatal("term width mismatch must error")
	}
	if _, err := DecodeSurfaces([]byte(`{"factors":[{"Name":"a","Min":0,"Max":1}],"terms":[[0]],"coef":{"x":[1,2]}}`)); err == nil {
		t.Fatal("coefficient count mismatch must error")
	}
	if _, err := DecodeSurfaces([]byte(`{"factors":[{"Name":"a","Min":0,"Max":1}],"terms":[[0]],"coef":{}}`)); err == nil {
		t.Fatal("no coefficients must error")
	}
}

func TestSavedErrors(t *testing.T) {
	_, s := buildTestSurfaces(t)
	saved := s.Save("CCF", 17)
	if _, err := saved.Predict(ResponseID("nope"), []float64{0, 0, 0}); err == nil {
		t.Fatal("unknown response must error")
	}
	if _, err := saved.Predict(RespPackets, []float64{0}); err == nil {
		t.Fatal("dimension mismatch must error")
	}
	if _, err := saved.PredictNatural(RespPackets, []float64{0}); err == nil {
		t.Fatal("dimension mismatch must error")
	}
}

func TestSavedResponsesSorted(t *testing.T) {
	_, s := buildTestSurfaces(t)
	saved := s.Save("CCF", 17)
	ids := saved.Responses()
	if len(ids) != len(s.Fits) {
		t.Fatalf("responses = %d", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] < ids[i-1] {
			t.Fatal("responses not sorted")
		}
	}
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	_, s := buildTestSurfaces(t)
	saved := s.Save("CCF", 17)
	points := [][]float64{
		{0, 0, 0},
		{0.5, -0.5, 0.25},
		{1, 1, -1},
		{-0.3, 0.8, 0.1},
	}
	for _, id := range saved.Responses() {
		batch, err := saved.PredictBatch(id, points)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) != len(points) {
			t.Fatalf("%s: %d values for %d points", id, len(batch), len(points))
		}
		for i, x := range points {
			want, err := saved.Predict(id, x)
			if err != nil {
				t.Fatal(err)
			}
			if batch[i] != want {
				t.Fatalf("%s point %d: batch %v vs single %v", id, i, batch[i], want)
			}
		}
	}
	// Errors: unknown response, ragged point.
	if _, err := saved.PredictBatch(ResponseID("nope"), points); err == nil {
		t.Fatal("unknown response must error")
	}
	if _, err := saved.PredictBatch(RespPackets, [][]float64{{0, 0}}); err == nil {
		t.Fatal("dimension mismatch must error")
	}
}

func TestPredictorSharedScratch(t *testing.T) {
	_, s := buildTestSurfaces(t)
	saved := s.Save("CCF", 17)
	pred, err := saved.Predictor(RespStoredEnergy)
	if err != nil {
		t.Fatal(err)
	}
	// Repeated calls with different points must not bleed state.
	a1 := pred([]float64{0.1, 0.2, 0.3})
	pred([]float64{-1, 1, -1})
	a2 := pred([]float64{0.1, 0.2, 0.3})
	if a1 != a2 {
		t.Fatalf("predictor not pure: %v vs %v", a1, a2)
	}
	want, err := saved.Predict(RespStoredEnergy, []float64{0.1, 0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if a1 != want {
		t.Fatalf("predictor %v vs Predict %v", a1, want)
	}
	if _, err := saved.Predictor(ResponseID("nope")); err == nil {
		t.Fatal("unknown response must error")
	}
}

func TestEncodePoint(t *testing.T) {
	_, s := buildTestSurfaces(t)
	saved := s.Save("CCF", 17)
	nat := make([]float64, len(saved.Factors))
	for i, f := range saved.Factors {
		nat[i] = f.Min // natural minimum is coded −1
	}
	coded, err := saved.EncodePoint(nat)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range coded {
		if math.Abs(c+1) > 1e-12 {
			t.Fatalf("coordinate %d: %v, want -1", i, c)
		}
	}
	if _, err := saved.EncodePoint([]float64{0}); err == nil {
		t.Fatal("dimension mismatch must error")
	}
}

func TestSaveWithDataRefit(t *testing.T) {
	p := quickProblem()
	design, err := doe.CentralComposite(3, doe.CCF, 2)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := p.RunDesign(design)
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.BuildSurfaces(ds, rsm.FullQuadratic(3))
	if err != nil {
		t.Fatal(err)
	}
	saved := s.SaveWithData(ds)
	if !saved.HasData() {
		t.Fatal("data not embedded")
	}
	data, err := saved.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSurfaces(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.HasData() {
		t.Fatal("data lost in round trip")
	}
	fit, err := back.Refit(RespStoredEnergy)
	if err != nil {
		t.Fatal(err)
	}
	// Refit coefficients must match the originals.
	orig := s.Fits[RespStoredEnergy].Coef
	for i := range orig {
		if math.Abs(fit.Coef[i]-orig[i]) > 1e-9*(1+math.Abs(orig[i])) {
			t.Fatalf("coefficient %d drifted: %v vs %v", i, fit.Coef[i], orig[i])
		}
	}
	// Refit errors.
	if _, err := back.Refit(ResponseID("nope")); err == nil {
		t.Fatal("unknown response must error")
	}
	plain := s.Save("CCF", design.N())
	if plain.HasData() {
		t.Fatal("plain save must not embed data")
	}
	if _, err := plain.Refit(RespStoredEnergy); err == nil {
		t.Fatal("refit without data must error")
	}
}
