package core

import (
	"encoding/json"
	"fmt"

	"repro/internal/doe"
	"repro/internal/rsm"
)

// SavedSurfaces is the serializable form of a fitted surface set: enough
// to reload the captured design space and keep exploring it without
// re-running a single simulation. It records the factor ranges (so coded
// and natural units stay interpretable), the polynomial basis, and the
// coefficients and headline diagnostics per response.
type SavedSurfaces struct {
	// Paper identity, for provenance in saved files.
	Toolkit string `json:"toolkit"`

	Factors []doe.Factor `json:"factors"`
	// Terms is the shared polynomial basis: one exponent vector per term.
	Terms [][]int `json:"terms"`
	// Coef holds the fitted coefficients per response, aligned with Terms.
	Coef map[ResponseID][]float64 `json:"coef"`
	// R2 and RMSE are the headline diagnostics captured at fit time.
	R2   map[ResponseID]float64 `json:"r2"`
	RMSE map[ResponseID]float64 `json:"rmse"`
	// PRESS and R2Pred are the leave-one-out cross-validation diagnostics
	// (prediction sum of squares and its scale-free form 1 − PRESS/TotalSS),
	// captured at fit time. Absent from files written by older releases.
	PRESS  map[ResponseID]float64 `json:"press,omitempty"`
	R2Pred map[ResponseID]float64 `json:"r2_pred,omitempty"`

	// Provenance of the build.
	DesignName string  `json:"design"`
	Runs       int     `json:"runs"`
	Horizon    float64 `json:"horizon_s"`

	// The raw designed experiment (coded runs and simulated responses),
	// kept so diagnostics — ANOVA, lack of fit, residual checks — can be
	// recomputed offline without re-running a single simulation.
	DesignRuns [][]float64              `json:"design_runs,omitempty"`
	DataY      map[ResponseID][]float64 `json:"data_y,omitempty"`
}

// Save converts fitted surfaces into their serializable form. To embed
// the raw experiment for offline diagnostics, use SaveWithData.
func (s *Surfaces) Save(designName string, runs int) *SavedSurfaces {
	out := &SavedSurfaces{
		Toolkit:    "ehdoe (DoE-based sensor-node design flow, DATE 2013 reproduction)",
		Factors:    append([]doe.Factor(nil), s.Problem.Factors...),
		Coef:       make(map[ResponseID][]float64, len(s.Fits)),
		R2:         make(map[ResponseID]float64, len(s.Fits)),
		RMSE:       make(map[ResponseID]float64, len(s.Fits)),
		PRESS:      make(map[ResponseID]float64, len(s.Fits)),
		R2Pred:     make(map[ResponseID]float64, len(s.Fits)),
		DesignName: designName,
		Runs:       runs,
		Horizon:    s.Problem.Horizon,
	}
	for _, t := range s.Model.Terms {
		out.Terms = append(out.Terms, append([]int(nil), t.Powers...))
	}
	for id, fit := range s.Fits {
		out.Coef[id] = append([]float64(nil), fit.Coef...)
		out.R2[id] = fit.R2
		out.RMSE[id] = fit.RMSE
		out.PRESS[id] = fit.PRESS
		out.R2Pred[id] = fit.R2Pred
	}
	return out
}

// SaveWithData is Save plus the raw designed experiment, enabling offline
// ANOVA and lack-of-fit via Refit.
func (s *Surfaces) SaveWithData(ds *Dataset) *SavedSurfaces {
	out := s.Save(ds.Design.Name, ds.Design.N())
	out.DesignRuns = make([][]float64, ds.Design.N())
	for i, r := range ds.Design.Runs {
		out.DesignRuns[i] = append([]float64(nil), r...)
	}
	out.DataY = make(map[ResponseID][]float64, len(ds.Y))
	for id, y := range ds.Y {
		out.DataY[id] = append([]float64(nil), y...)
	}
	return out
}

// HasData reports whether the file embeds the raw experiment.
func (ss *SavedSurfaces) HasData() bool {
	return len(ss.DesignRuns) > 0 && len(ss.DataY) > 0
}

// Refit rebuilds the live rsm.Fit of one response from the embedded data
// (for diagnostics that need more than coefficients: ANOVA, lack of fit,
// studentized residuals).
func (ss *SavedSurfaces) Refit(id ResponseID) (*rsm.Fit, error) {
	if !ss.HasData() {
		return nil, fmt.Errorf("core: saved surfaces carry no raw data (rebuild with SaveWithData)")
	}
	y, ok := ss.DataY[id]
	if !ok {
		return nil, fmt.Errorf("core: no data for response %q", id)
	}
	return rsm.FitModel(ss.Model(), ss.DesignRuns, y)
}

// MarshalJSON is provided by the standard library via struct tags; Encode
// renders the saved surfaces as indented JSON.
func (ss *SavedSurfaces) Encode() ([]byte, error) {
	return json.MarshalIndent(ss, "", "  ")
}

// DecodeSurfaces parses a saved-surfaces JSON document.
func DecodeSurfaces(data []byte) (*SavedSurfaces, error) {
	var ss SavedSurfaces
	if err := json.Unmarshal(data, &ss); err != nil {
		return nil, fmt.Errorf("core: decoding saved surfaces: %w", err)
	}
	if err := ss.validate(); err != nil {
		return nil, err
	}
	return &ss, nil
}

func (ss *SavedSurfaces) validate() error {
	if len(ss.Factors) == 0 {
		return fmt.Errorf("core: saved surfaces have no factors")
	}
	for _, f := range ss.Factors {
		if err := f.Validate(); err != nil {
			return err
		}
	}
	if len(ss.Terms) == 0 {
		return fmt.Errorf("core: saved surfaces have no model terms")
	}
	k := len(ss.Factors)
	for i, t := range ss.Terms {
		if len(t) != k {
			return fmt.Errorf("core: term %d has %d powers, want %d", i, len(t), k)
		}
	}
	if len(ss.Coef) == 0 {
		return fmt.Errorf("core: saved surfaces have no coefficients")
	}
	for id, c := range ss.Coef {
		if len(c) != len(ss.Terms) {
			return fmt.Errorf("core: response %q has %d coefficients for %d terms", id, len(c), len(ss.Terms))
		}
	}
	return nil
}

// Model reconstructs the rsm.Model of the saved basis.
func (ss *SavedSurfaces) Model() rsm.Model {
	m := rsm.Model{K: len(ss.Factors)}
	for _, powers := range ss.Terms {
		m.Terms = append(m.Terms, rsm.Term{Powers: append([]int(nil), powers...)})
	}
	return m
}

// Responses lists the response ids present in the file, sorted by name.
func (ss *SavedSurfaces) Responses() []ResponseID {
	out := make([]ResponseID, 0, len(ss.Coef))
	for id := range ss.Coef {
		out = append(out, id)
	}
	sortResponseIDs(out)
	return out
}

func sortResponseIDs(ids []ResponseID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// Predict evaluates a saved surface at a coded point.
func (ss *SavedSurfaces) Predict(id ResponseID, coded []float64) (float64, error) {
	coef, ok := ss.Coef[id]
	if !ok {
		return 0, fmt.Errorf("core: saved surfaces lack response %q", id)
	}
	if len(coded) != len(ss.Factors) {
		return 0, fmt.Errorf("core: point has %d coordinates, model wants %d", len(coded), len(ss.Factors))
	}
	m := ss.Model()
	row := m.Row(coded)
	var v float64
	for i, c := range coef {
		v += c * row[i]
	}
	return v, nil
}

// PredictNatural evaluates a saved surface at a point in natural units.
func (ss *SavedSurfaces) PredictNatural(id ResponseID, natural []float64) (float64, error) {
	coded, err := ss.EncodePoint(natural)
	if err != nil {
		return 0, err
	}
	return ss.Predict(id, coded)
}

// EncodePoint converts a point from natural units to coded units using the
// saved factor ranges.
func (ss *SavedSurfaces) EncodePoint(natural []float64) ([]float64, error) {
	if len(natural) != len(ss.Factors) {
		return nil, fmt.Errorf("core: point has %d coordinates, model wants %d", len(natural), len(ss.Factors))
	}
	coded := make([]float64, len(natural))
	for i, f := range ss.Factors {
		coded[i] = f.Encode(natural[i])
	}
	return coded, nil
}

// Predictor returns an evaluator of one response with the polynomial basis
// built once and a shared scratch row, so evaluating N points costs no
// per-point allocation — the serving hot path. The returned function is NOT
// safe for concurrent use (it owns the scratch); create one per goroutine.
func (ss *SavedSurfaces) Predictor(id ResponseID) (func(coded []float64) float64, error) {
	coef, ok := ss.Coef[id]
	if !ok {
		return nil, fmt.Errorf("core: saved surfaces lack response %q", id)
	}
	m := ss.Model()
	scratch := make([]float64, len(m.Terms))
	return func(coded []float64) float64 {
		row := m.RowInto(coded, scratch)
		var v float64
		for i, c := range coef {
			v += c * row[i]
		}
		return v
	}, nil
}

// PredictBatch evaluates one response at every point (coded units) with a
// single basis construction and zero per-point allocation beyond the output
// slice.
func (ss *SavedSurfaces) PredictBatch(id ResponseID, points [][]float64) ([]float64, error) {
	pred, err := ss.Predictor(id)
	if err != nil {
		return nil, err
	}
	k := len(ss.Factors)
	out := make([]float64, len(points))
	for i, x := range points {
		if len(x) != k {
			return nil, fmt.Errorf("core: point %d has %d coordinates, model wants %d", i, len(x), k)
		}
		out[i] = pred(x)
	}
	return out, nil
}
