// Package core implements the paper's contribution: the DoE-based design
// flow for energy management in sensor nodes powered by tunable energy
// harvesters.
//
// The flow is:
//
//  1. Define a Problem: design factors (natural ranges), the mapping from
//     factor values to a complete sim.Design + excitation scenario, and the
//     performance indicators (responses) of interest.
//  2. Pick a DoE plan (internal/doe) and run the full-system simulator at
//     its design points (RunDesign) — the "moderate number of simulations".
//  3. Fit one response surface per indicator (BuildSurfaces).
//  4. Explore trade-offs and optimize on the surfaces practically
//     instantly; confirm the chosen design with a single simulation
//     (Surfaces.Optimize, Surfaces.Validate).
package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/doe"
	"repro/internal/explore"
	"repro/internal/node"
	"repro/internal/opt"
	"repro/internal/rsm"
	"repro/internal/sim"
	"repro/internal/simcache"
	"repro/internal/vibration"
)

// ResponseID names a performance indicator extracted from a simulation.
type ResponseID string

// The performance indicators the toolkit models.
const (
	RespHarvestedPower ResponseID = "avg_harvested_power_uW" // µW
	RespStoredEnergy   ResponseID = "stored_energy_J"        // J at horizon
	RespFinalStoreV    ResponseID = "final_store_V"          // V
	RespPackets        ResponseID = "packets"                // count
	RespUptime         ResponseID = "uptime_frac"            // 0–1
	RespFirstTx        ResponseID = "time_to_first_tx_s"     // s
	RespNetMargin      ResponseID = "net_energy_margin_mJ"   // mJ
	RespTuneEnergy     ResponseID = "tune_energy_mJ"         // mJ
)

// AllResponses lists every supported indicator.
func AllResponses() []ResponseID {
	return []ResponseID{
		RespHarvestedPower, RespStoredEnergy, RespFinalStoreV, RespPackets,
		RespUptime, RespFirstTx, RespNetMargin, RespTuneEnergy,
	}
}

// Extract reads the indicator from a simulation result.
func Extract(id ResponseID, r *sim.Result, horizon float64) (float64, error) {
	switch id {
	case RespHarvestedPower:
		return r.AvgHarvestedPower * 1e6, nil
	case RespStoredEnergy:
		return r.StoredEnergyEnd, nil
	case RespFinalStoreV:
		return r.FinalStoreV, nil
	case RespPackets:
		return float64(r.Node.Packets), nil
	case RespUptime:
		return r.UptimeFraction, nil
	case RespFirstTx:
		if math.IsNaN(r.Node.FirstTxTime) {
			return horizon, nil // censored at the horizon: never transmitted
		}
		return r.Node.FirstTxTime, nil
	case RespNetMargin:
		return r.NetEnergyMargin * 1e3, nil
	case RespTuneEnergy:
		return r.TuneEnergy * 1e3, nil
	}
	return 0, fmt.Errorf("core: unknown response %q", id)
}

// Scenario is a fully instantiated design point: the system design plus
// the excitation it will face.
type Scenario struct {
	Design sim.Design
	Source vibration.Source
}

// Problem defines the design space the flow explores.
type Problem struct {
	Factors   []doe.Factor
	Responses []ResponseID
	// Build maps natural factor values to a concrete scenario.
	Build func(natural []float64) (Scenario, error)
	// Horizon and step sizes of each simulation run.
	Horizon float64
	DtSlow  float64
	// Engine runs one simulation; defaults to sim.RunFast.
	Engine func(sim.Design, sim.Config) (*sim.Result, error)
	// EngineName identifies Engine for content-addressed caching. It is
	// implied for the default engine (EngineFast); a custom Engine with no
	// name bypasses the cache, since a closure cannot be fingerprinted.
	EngineName string
	// Runner executes simulations, by default through the process-wide
	// simulation cache (DefaultRunner). Set simcache.Direct{} to force
	// every run, or a dedicated *simcache.Cache for isolated caching.
	Runner simcache.Runner
	// Retry is the per-run retry policy of design runs: transient
	// failures (injected faults, recovered panics, per-run timeouts)
	// back off and retry. Zero value = one attempt.
	Retry RetryPolicy
	// RunTimeout, when positive, is the per-run deadline: a simulation
	// exceeding it is abandoned with a retryable *RunTimeoutError
	// instead of pinning its worker forever.
	RunTimeout time.Duration
}

// Engine names understood by the standard problems.
const (
	EngineFast      = "fast"      // sim.RunFast (linearized state-space)
	EngineReference = "reference" // sim.RunReference (Newton–Raphson)
)

// DefaultRunner is the simulation runner used by Problems that don't set
// their own: a shared in-memory cache. Replace with simcache.Direct{} to
// disable caching process-wide.
var DefaultRunner simcache.Runner = simcache.New(simcache.Options{})

// Validate checks the problem definition.
func (p *Problem) Validate() error {
	if len(p.Factors) == 0 {
		return fmt.Errorf("core: problem needs ≥1 factor")
	}
	for _, f := range p.Factors {
		if err := f.Validate(); err != nil {
			return err
		}
	}
	if len(p.Responses) == 0 {
		return fmt.Errorf("core: problem needs ≥1 response")
	}
	if p.Build == nil {
		return fmt.Errorf("core: problem needs a Build function")
	}
	if p.Horizon <= 0 {
		return fmt.Errorf("core: horizon %g must be positive", p.Horizon)
	}
	return nil
}

func (p *Problem) engine() func(sim.Design, sim.Config) (*sim.Result, error) {
	if p.Engine != nil {
		return p.Engine
	}
	return sim.RunFast
}

// engineName returns the cache identity of the problem's engine; empty
// means "unnameable" (a custom Engine without an EngineName) and disables
// caching for this problem.
func (p *Problem) engineName() string {
	if p.EngineName != "" {
		return p.EngineName
	}
	if p.Engine == nil {
		return EngineFast
	}
	return ""
}

// runSim executes one simulation through the problem's Runner (the shared
// cache by default). ctx carries cancellation and the observability trace
// (internal/obs) down into the runner. Results may be served from the
// cache and must be treated as immutable by callers.
func (p *Problem) runSim(ctx context.Context, d sim.Design, cfg sim.Config) (*sim.Result, error) {
	name := cacheEngineName(p.engineName())
	if name == "" {
		return p.engine()(d, cfg)
	}
	r := p.Runner
	if r == nil {
		r = DefaultRunner
	}
	return r.Run(ctx, name, p.engine(), d, cfg)
}

// SimulateCoded runs one simulation at a coded design point and returns
// the raw result.
func (p *Problem) SimulateCoded(coded []float64) (*sim.Result, error) {
	return p.SimulateCodedContext(context.Background(), coded)
}

// SimulateCodedContext is SimulateCoded with an explicit context: the
// runner sees the caller's cancellation and trace.
func (p *Problem) SimulateCodedContext(ctx context.Context, coded []float64) (*sim.Result, error) {
	natural, err := doe.DecodeRun(p.Factors, coded)
	if err != nil {
		return nil, err
	}
	sc, err := p.Build(natural)
	if err != nil {
		return nil, err
	}
	cfg := sim.Config{Horizon: p.Horizon, DtSlow: p.DtSlow, Source: sc.Source}
	return p.runSim(ctx, sc.Design, cfg)
}

// ResponsesAt runs one simulation at a coded point and extracts every
// problem response.
func (p *Problem) ResponsesAt(coded []float64) (map[ResponseID]float64, error) {
	return p.ResponsesAtContext(context.Background(), coded)
}

// ResponsesAtContext is ResponsesAt with an explicit context, threading
// cancellation and the observability trace through to the simulation
// runner. Extracted responses are checked for numeric validity: a NaN or
// ±Inf value (a stiff solver corner, an injected fault) is rejected with
// a typed *NumericError before it can poison an RSM fit.
func (p *Problem) ResponsesAtContext(ctx context.Context, coded []float64) (map[ResponseID]float64, error) {
	r, err := p.SimulateCodedContext(ctx, coded)
	if err != nil {
		return nil, err
	}
	out := make(map[ResponseID]float64, len(p.Responses))
	for _, id := range p.Responses {
		v, err := Extract(id, r, p.Horizon)
		if err != nil {
			return nil, err
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, &NumericError{Response: id, Value: v}
		}
		out[id] = v
	}
	return out, nil
}

// Dataset holds the simulated responses at every design point.
type Dataset struct {
	Design  *doe.Design
	Y       map[ResponseID][]float64
	SimTime time.Duration // simulator wall-clock time (start to finish)
	// SimWork is the sum of the individual run durations. With a serial
	// runner it equals SimTime; with a worker pool the ratio
	// SimWork/SimTime is the achieved parallel speedup.
	SimWork time.Duration
	// Retries and PanicsRecovered count the fault-recovery events the
	// runs needed (see Problem.Retry): retried attempts after transient
	// failures, and engine panics recovered into errors.
	Retries         int
	PanicsRecovered int
	// Batch carries the batch scheduler's statistics when the run used
	// EngineBatch; nil otherwise.
	Batch *BatchStats
}

// Speedup returns the achieved parallel speedup SimWork/SimTime
// (1 for a serial run; 0 when timings were not recorded).
func (ds *Dataset) Speedup() float64 {
	if ds.SimTime <= 0 || ds.SimWork <= 0 {
		return 0
	}
	return float64(ds.SimWork) / float64(ds.SimTime)
}

// RunDesign simulates every run of the design — the expensive, up-front
// phase of the flow.
func (p *Problem) RunDesign(d *doe.Design) (*Dataset, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if d.N() == 0 {
		return nil, fmt.Errorf("core: empty design")
	}
	if d.K() != len(p.Factors) {
		return nil, fmt.Errorf("core: design has %d factors, problem has %d", d.K(), len(p.Factors))
	}
	ds := &Dataset{Design: d, Y: make(map[ResponseID][]float64, len(p.Responses))}
	for _, id := range p.Responses {
		ds.Y[id] = make([]float64, 0, d.N())
	}
	start := time.Now()
	for i, run := range d.Runs {
		runStart := time.Now()
		resp, st, err := p.runWithRetry(context.Background(), i, run)
		ds.SimWork += time.Since(runStart)
		ds.Retries += st.retries
		ds.PanicsRecovered += st.panics
		if err != nil {
			ds.SimTime = time.Since(start)
			ds.Y = nil
			// ds still carries the timing and fault-recovery stats of the
			// aborted design run, so callers can surface them.
			return ds, wrapRunErr(i, st, err)
		}
		for _, id := range p.Responses {
			ds.Y[id] = append(ds.Y[id], resp[id])
		}
	}
	ds.SimTime = time.Since(start)
	return ds, nil
}

// Surfaces is the set of fitted response surfaces — the captured design
// space.
type Surfaces struct {
	Problem *Problem
	Model   rsm.Model
	Fits    map[ResponseID]*rsm.Fit
	FitTime time.Duration
}

// BuildSurfaces fits the model to every response in the dataset.
func (p *Problem) BuildSurfaces(ds *Dataset, model rsm.Model) (*Surfaces, error) {
	if model.K != len(p.Factors) {
		return nil, fmt.Errorf("core: model has %d factors, problem has %d", model.K, len(p.Factors))
	}
	s := &Surfaces{Problem: p, Model: model, Fits: make(map[ResponseID]*rsm.Fit, len(p.Responses))}
	start := time.Now()
	for _, id := range p.Responses {
		y, ok := ds.Y[id]
		if !ok {
			return nil, fmt.Errorf("core: dataset lacks response %q", id)
		}
		fit, err := rsm.FitModel(model, ds.Design.Runs, y)
		if err != nil {
			return nil, fmt.Errorf("core: fitting %q: %w", id, err)
		}
		s.Fits[id] = fit
	}
	s.FitTime = time.Since(start)
	return s, nil
}

// Predict evaluates the fitted surface of a response at a coded point.
func (s *Surfaces) Predict(id ResponseID, coded []float64) (float64, error) {
	fit, ok := s.Fits[id]
	if !ok {
		return 0, fmt.Errorf("core: no surface for %q", id)
	}
	return fit.Predict(coded), nil
}

// Evaluator adapts a surface to the exploration toolkit.
func (s *Surfaces) Evaluator(id ResponseID) (explore.Evaluator, error) {
	fit, ok := s.Fits[id]
	if !ok {
		return nil, fmt.Errorf("core: no surface for %q", id)
	}
	return fit.Predict, nil
}

// OptimizeResult is a surface optimum confirmed by one simulation.
type OptimizeResult struct {
	Coded     []float64
	Natural   []float64
	Predicted float64 // surface prediction at the optimum
	Confirmed float64 // simulated value at the optimum (the one-run check)
	RelError  float64 // |pred − conf| / max(|conf|, tiny)
	Evals     int     // surface evaluations spent by the optimizer
}

// Optimize maximizes (or minimizes) a response on its surface with
// multi-start Nelder–Mead, then confirms the winner with a single
// simulation — the flow's final verification step.
func (s *Surfaces) Optimize(id ResponseID, maximize bool, starts int, seed int64) (*OptimizeResult, error) {
	fit, ok := s.Fits[id]
	if !ok {
		return nil, fmt.Errorf("core: no surface for %q", id)
	}
	if starts < 1 {
		starts = 1
	}
	obj := opt.Objective(fit.Predict)
	if maximize {
		obj = opt.Maximize(obj)
	}
	b := opt.NewBounds(len(s.Problem.Factors))
	rng := rand.New(rand.NewSource(seed))
	var best *opt.Result
	evals := 0
	for i := 0; i < starts; i++ {
		x0 := b.Random(rng)
		r, err := opt.NelderMead(obj, b, x0, opt.NelderMeadConfig{MaxIters: 400})
		if err != nil {
			return nil, err
		}
		evals += r.Evals
		if best == nil || r.F < best.F {
			best = r
		}
	}
	pred := fit.Predict(best.X)
	resp, err := s.Problem.ResponsesAt(best.X)
	if err != nil {
		return nil, err
	}
	conf := resp[id]
	natural, err := doe.DecodeRun(s.Problem.Factors, best.X)
	if err != nil {
		return nil, err
	}
	denom := math.Max(math.Abs(conf), 1e-12)
	return &OptimizeResult{
		Coded:     best.X,
		Natural:   natural,
		Predicted: pred,
		Confirmed: conf,
		RelError:  math.Abs(pred-conf) / denom,
		Evals:     evals,
	}, nil
}

// ValidationRow summarizes RSM accuracy for one response.
type ValidationRow struct {
	Response   ResponseID
	MeanAbsErr float64 // mean |pred − sim|
	MaxAbsErr  float64
	MeanRelErr float64 // relative to the simulated range
	R2         float64 // of the fit itself
}

// ValidationReport compares surface predictions against fresh simulations
// at random coded points.
type ValidationReport struct {
	Rows    []ValidationRow
	N       int
	SimTime time.Duration // total simulation time for the check runs
	RSMTime time.Duration // total surface-evaluation time for the same points
}

// Validate draws n uniform random coded points, simulates each, and
// compares every response surface's prediction against the simulation —
// reproduction table R-T3's generator.
func (s *Surfaces) Validate(n int, seed int64) (*ValidationReport, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: need ≥1 validation point, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	k := len(s.Problem.Factors)
	points := make([][]float64, n)
	for i := range points {
		x := make([]float64, k)
		for j := range x {
			x[j] = rng.Float64()*2 - 1
		}
		points[i] = x
	}
	simVals := make(map[ResponseID][]float64, len(s.Problem.Responses))
	startSim := time.Now()
	for _, x := range points {
		resp, err := s.Problem.ResponsesAt(x)
		if err != nil {
			return nil, err
		}
		for _, id := range s.Problem.Responses {
			simVals[id] = append(simVals[id], resp[id])
		}
	}
	simTime := time.Since(startSim)

	rep := &ValidationReport{N: n, SimTime: simTime}
	startRSM := time.Now()
	for _, id := range s.Problem.Responses {
		fit := s.Fits[id]
		sims := simVals[id]
		mn, mx := sims[0], sims[0]
		var sumAbs, maxAbs float64
		for i, x := range points {
			pred := fit.Predict(x)
			e := math.Abs(pred - sims[i])
			sumAbs += e
			if e > maxAbs {
				maxAbs = e
			}
			if sims[i] < mn {
				mn = sims[i]
			}
			if sims[i] > mx {
				mx = sims[i]
			}
		}
		rng := mx - mn
		if rng <= 0 {
			rng = math.Max(math.Abs(mx), 1e-12)
		}
		rep.Rows = append(rep.Rows, ValidationRow{
			Response:   id,
			MeanAbsErr: sumAbs / float64(n),
			MaxAbsErr:  maxAbs,
			MeanRelErr: sumAbs / float64(n) / rng,
			R2:         fit.R2,
		})
	}
	rep.RSMTime = time.Since(startRSM)
	return rep, nil
}

// StandardProblem returns the four-factor design problem used throughout
// the examples, benchmarks and reproduction experiments: measurement
// period, supercapacitor size, transmit-threshold voltage and excitation
// frequency offset, with the responses of DESIGN.md §4. excite sets the
// nominal excitation amplitude (m/s²); horizon the per-run simulated
// duration (s).
func StandardProblem(excite, horizon float64) *Problem {
	base := sim.DefaultDesign()
	f0 := base.Harv.ResonantFreq(base.Harv.GapMax)
	return &Problem{
		Factors: []doe.Factor{
			{Name: "period", Min: 2, Max: 20, Unit: "s"},
			// 10–100 mF: sized so the charge/discharge time constant is
			// commensurate with the simulated horizon — a 1 F store barely
			// moves in minutes, hiding every threshold effect.
			{Name: "supercap", Min: 0.01, Max: 0.1, Unit: "F"},
			{Name: "vth", Min: 2.6, Max: 3.6, Unit: "V"},
			// Residual mistuning after the tuner locks: bounded by its
			// ±0.5 Hz deadband, which is also the loaded half-power
			// bandwidth (f0/Q ≈ 45/90 Hz). Larger mistuning collapses the
			// resonance response to a spike no polynomial can follow —
			// chasing the dominant frequency is the tuner's job, not a
			// static design factor.
			{Name: "freq_off", Min: -0.5, Max: 0.5, Unit: "Hz"},
		},
		Responses: []ResponseID{
			RespHarvestedPower, RespStoredEnergy, RespPackets,
			RespUptime, RespNetMargin, RespFirstTx,
		},
		Horizon: horizon,
		Build: func(nat []float64) (Scenario, error) {
			d := sim.DefaultDesign()
			// Start the store below the pump's open-circuit equilibrium
			// (≈3.9 V at nominal excitation) and inside the threshold range so
			// most designs transmit from the start while the harvest/consume
			// balance — and hence every response — depends on the factors.
			d.InitialStoreV = 3.3
			d.Node.Period = nat[0]
			d.Store.C = nat[1]
			d.Policy = node.ThresholdPolicy{VThreshold: nat[2]}
			src := vibration.Sine{Amplitude: excite, Freq: f0 + nat[3]}
			return Scenario{Design: d, Source: src}, nil
		},
	}
}
