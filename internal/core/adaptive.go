package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/doe"
	"repro/internal/obs"
	"repro/internal/rsm"
)

// Build strategies accepted by BuildDataset-style entry points. "fixed"
// simulates a whole named design up front (the original flow, bit-identical
// to previous releases); "adaptive" grows the design sequentially, adding
// D-optimal points only while they still improve the surfaces.
const (
	StrategyFixed    = "fixed"
	StrategyAdaptive = "adaptive"
)

// FixedEquivalentPoints returns the run count of the fixed-strategy
// reference design — the "ccf" default of 2^k corners, 2k axial points and
// 3 centre runs — that an adaptive build's savings are measured against.
func FixedEquivalentPoints(k int) int { return 1<<uint(k) + 2*k + 3 }

// adaptiveMaxPasses caps the Fedorov exchange passes of the per-round
// D-optimal selections. The full 20-pass default squeezes the last fraction
// of a percent of det(XᵀX) out of a one-shot design, but here each round
// only steers where the *next* simulations land, and the k=6 five-level
// lattice has 15625 candidates — a handful of passes captures virtually all
// of the gain at a tenth of the selection cost.
const adaptiveMaxPasses = 4

// AdaptiveConfig tunes the sequential build loop. The zero value picks
// defaults suitable for the full-quadratic models the toolkit fits.
type AdaptiveConfig struct {
	// Model defaults to rsm.FullQuadratic(k).
	Model rsm.Model
	// CandidateLevels is the per-factor resolution of the quantized
	// candidate lattice (default 5 → levels −1, −0.5, 0, 0.5, 1 — the
	// opt.Quantized step-0.25 grid, so optimizer revisits hit the simcache).
	CandidateLevels int
	// InitialPoints is the size of the round-0 D-optimal design
	// (default p+2). CenterReplicates centre copies are appended on top
	// (default 2) so the lack-of-fit decomposition has pure-error DoF.
	InitialPoints    int
	CenterReplicates int
	// BatchPoints is the number of D-optimal augmentation points added per
	// round (default k).
	BatchPoints int
	// MinPoints and MaxPoints bound the total budget. The loop never stops
	// below MinPoints (default: the initial design plus one augmentation
	// round) and always stops at MaxPoints (default: the fixed-strategy
	// reference count, so an adaptive build never costs more than fixed).
	MinPoints int
	MaxPoints int
	// Alpha is the lack-of-fit significance level (default 0.05): the
	// F-test must fail to reject adequacy, when it is defined.
	Alpha float64
	// LackFraction accepts adequacy when LackSS ≤ LackFraction·TotalSS.
	// This is the deterministic-simulator escape hatch: bit-identical
	// replicates make pure error exactly zero, so the F-test degenerates to
	// "any lack is infinitely significant" and a relative lack bound has to
	// stand in (default 0.02 — the unexplained systematic fraction).
	LackFraction float64
	// LackTol additionally accepts adequacy when the lack fraction improved
	// by less than this between rounds — the surface is as adequate as the
	// polynomial basis will get (default 0.005).
	LackTol float64
	// AdjR2Tol and PRESSTol are the improvement thresholds of the stopping
	// rule: stop once a round improves the worst-case adjusted R² by less
	// than AdjR2Tol (default 0.02) and the worst-case PRESS-based R²-pred by
	// less than PRESSTol (default 0.1). R²-pred (= 1 − PRESS/TotalSS) is the
	// scale-free form of PRESS: raw PRESS grows with every appended point
	// simply because TotalSS does, so a threshold on it would chase its own
	// tail and never fire.
	AdjR2Tol float64
	PRESSTol float64
	// Seed feeds the initial D-optimal selection.
	Seed int64
	// Workers is the per-round simulation parallelism (≤0 = GOMAXPROCS).
	Workers int
	// RunDesign, when set, executes one round's design instead of the local
	// RunDesignContext pool — the seam the cluster coordinator plugs into.
	// Either way each round inherits the full PR 4/8 machinery: retries,
	// deadlines, batch prepass, cache, cancellation.
	RunDesign func(ctx context.Context, d *doe.Design) (*Dataset, error)
}

func (c *AdaptiveConfig) setDefaults(k int, model rsm.Model) {
	p := model.P()
	if c.CandidateLevels < 2 {
		c.CandidateLevels = 5
	}
	if c.InitialPoints <= 0 {
		c.InitialPoints = p + 2
	}
	if c.InitialPoints < p {
		c.InitialPoints = p
	}
	if c.CenterReplicates < 0 {
		c.CenterReplicates = 0
	} else if c.CenterReplicates == 0 {
		c.CenterReplicates = 2
	}
	if c.BatchPoints <= 0 {
		c.BatchPoints = k
	}
	if c.MinPoints <= 0 {
		c.MinPoints = c.InitialPoints + c.CenterReplicates + c.BatchPoints
	}
	if c.MaxPoints <= 0 {
		c.MaxPoints = FixedEquivalentPoints(k)
	}
	if c.MaxPoints < c.MinPoints {
		c.MaxPoints = c.MinPoints
	}
	if c.Alpha <= 0 || c.Alpha >= 1 {
		c.Alpha = 0.05
	}
	if c.LackFraction <= 0 {
		c.LackFraction = 0.02
	}
	if c.LackTol <= 0 {
		c.LackTol = 0.005
	}
	if c.AdjR2Tol <= 0 {
		c.AdjR2Tol = 0.02
	}
	if c.PRESSTol <= 0 {
		c.PRESSTol = 0.1
	}
}

// AdaptiveRound is one round's worth of per-round statistics, echoed into
// JobView so API clients can watch a build converge.
type AdaptiveRound struct {
	Round  int `json:"round"`
	Added  int `json:"added"`  // points simulated this round
	Points int `json:"points"` // cumulative points
	// Worst-case fit quality across the problem's responses.
	MinR2     float64 `json:"min_r2"`
	MinAdjR2  float64 `json:"min_adj_r2"`
	MinR2Pred float64 `json:"min_r2_pred"`
	// WorstLackP is the smallest lack-of-fit p-value across responses, or
	// −1 when the F-test is undefined (no replication yet). WorstLackFrac
	// is the largest LackSS/TotalSS fraction.
	WorstLackP    float64 `json:"worst_lof_p"`
	WorstLackFrac float64 `json:"worst_lack_frac"`
}

// Adaptive stop reasons.
const (
	StopConverged = "converged"  // stopping rule satisfied
	StopMaxPoints = "max_points" // point budget exhausted first
)

// AdaptiveStats summarizes an adaptive build for JobView, metrics and the
// benchmark harness.
type AdaptiveStats struct {
	Rounds          []AdaptiveRound `json:"rounds"`
	PointsSimulated int             `json:"points_simulated"`
	FixedPoints     int             `json:"fixed_points"`   // fixed-strategy reference cost
	PointsSkipped   int             `json:"points_skipped"` // max(0, FixedPoints − PointsSimulated)
	StopReason      string          `json:"stop_reason"`
}

// AdaptiveResult is the outcome of an adaptive build: the cumulative
// dataset, the final surfaces (batch-refit, bit-identical to fitting the
// same dataset with BuildSurfaces) and the per-round statistics.
type AdaptiveResult struct {
	Dataset  *Dataset
	Surfaces *Surfaces
	Stats    *AdaptiveStats
}

// roundQuality is the per-round convergence state across all responses.
type roundQuality struct {
	minR2, minAdjR2, minR2Pred float64
	worstLackP                 float64 // −1 when undefined
	worstLackFrac              float64
	lofOK                      bool // every response passes a lack-of-fit gate
}

// RunAdaptive grows a design sequentially: simulate a small D-optimal
// seed, refit incrementally, and keep adding the D-optimally most
// informative lattice points until the stopping rule — lack of fit
// acceptable AND adjusted-R²/PRESS improvement below threshold — fires, or
// the point budget runs out. Every round's simulations go through the same
// pool as a fixed build (retries, deadlines, batch prepass, cluster
// leases, simcache all apply unchanged).
//
// On a round failure the partial cumulative Dataset (Y-less, carrying
// timing and fault-recovery stats) is returned alongside the error, like
// RunDesignContext does.
func (p *Problem) RunAdaptive(ctx context.Context, cfg AdaptiveConfig) (*AdaptiveResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	k := len(p.Factors)
	if k < 2 {
		return nil, fmt.Errorf("core: adaptive builds need ≥2 factors, got %d", k)
	}
	model := cfg.Model
	if model.K == 0 {
		model = rsm.FullQuadratic(k)
	}
	if model.K != k {
		return nil, fmt.Errorf("core: model has %d factors, problem has %d", model.K, k)
	}
	cfg.setDefaults(k, model)
	lg := obs.FromContext(ctx)

	candidates, err := doe.CandidateLattice(k, cfg.CandidateLevels)
	if err != nil {
		return nil, err
	}
	if cfg.InitialPoints > candidates.N() {
		return nil, fmt.Errorf("core: initial design (%d points) exceeds the %d-point candidate lattice; raise CandidateLevels", cfg.InitialPoints, candidates.N())
	}
	initial, err := doe.DOptimal(candidates, cfg.InitialPoints, model.Row, cfg.Seed, adaptiveMaxPasses)
	if err != nil {
		return nil, err
	}
	if cfg.CenterReplicates > 0 {
		centre := &doe.Design{Name: "centre", Runs: make([][]float64, cfg.CenterReplicates)}
		for i := range centre.Runs {
			centre.Runs[i] = make([]float64, k)
		}
		if initial, err = initial.Append(centre); err != nil {
			return nil, err
		}
	}

	runRound := cfg.RunDesign
	if runRound == nil {
		runRound = func(ctx context.Context, d *doe.Design) (*Dataset, error) {
			return p.RunDesignContext(ctx, d, cfg.Workers)
		}
	}

	fitters := make(map[ResponseID]*rsm.Fitter, len(p.Responses))
	for _, id := range p.Responses {
		f, err := rsm.NewFitter(model)
		if err != nil {
			return nil, err
		}
		fitters[id] = f
	}

	cum := &Dataset{
		Design: &doe.Design{Name: fmt.Sprintf("adaptive(k=%d)", k)},
		Y:      make(map[ResponseID][]float64, len(p.Responses)),
	}
	stats := &AdaptiveStats{FixedPoints: FixedEquivalentPoints(k)}
	start := time.Now()

	// absorb merges one round's dataset into the cumulative one and feeds
	// the incremental fitters.
	absorb := func(ds *Dataset) error {
		cum.SimWork += ds.SimWork
		cum.Retries += ds.Retries
		cum.PanicsRecovered += ds.PanicsRecovered
		if ds.Batch != nil {
			if cum.Batch == nil {
				cum.Batch = &BatchStats{}
			}
			cum.Batch.Points += ds.Batch.Points
			cum.Batch.Peeled += ds.Batch.Peeled
			cum.Batch.Lanes += ds.Batch.Lanes
			cum.Batch.Chunks += ds.Batch.Chunks
			cum.Batch.Rebuilds += ds.Batch.Rebuilds
			cum.Batch.AmortizedRebuilds += ds.Batch.AmortizedRebuilds
		}
		if ds.Y == nil {
			return nil
		}
		cum.Design.Runs = append(cum.Design.Runs, ds.Design.Runs...)
		for _, id := range p.Responses {
			cum.Y[id] = append(cum.Y[id], ds.Y[id]...)
			for i, run := range ds.Design.Runs {
				if err := fitters[id].Append(run, ds.Y[id][i]); err != nil {
					return err
				}
			}
		}
		return nil
	}

	fail := func(err error) (*AdaptiveResult, error) {
		cum.SimTime = time.Since(start)
		// Even a failed build reports the points its completed rounds cost.
		stats.PointsSimulated = cum.Design.N()
		cum.Y = nil
		return &AdaptiveResult{Dataset: cum, Stats: stats}, err
	}

	// quality evaluates the current incremental fits against the stopping
	// gates.
	quality := func(cfgAlpha float64) (*roundQuality, error) {
		q := &roundQuality{
			minR2: math.Inf(1), minAdjR2: math.Inf(1), minR2Pred: math.Inf(1),
			worstLackP: math.Inf(1), lofOK: true,
		}
		anyLackP := false
		for _, id := range p.Responses {
			f := fitters[id]
			snap, err := f.Snapshot()
			if err != nil {
				return nil, fmt.Errorf("core: refitting %q: %w", id, err)
			}
			// Near-constant response: the simulator answered (almost)
			// the same value everywhere, so TotalSS is rounding dust and
			// every R²/lack ratio is numerical noise, not information.
			// Any surface explains a constant — treat it as trivially
			// adequate instead of letting noise block convergence.
			var sumYY float64
			for _, y := range f.Ys() {
				sumYY += y * y
			}
			if snap.TotalSS <= 1e-12*math.Max(sumYY, 1e-300) {
				continue
			}
			q.minR2 = math.Min(q.minR2, snap.R2)
			q.minAdjR2 = math.Min(q.minAdjR2, snap.AdjR2)
			q.minR2Pred = math.Min(q.minR2Pred, snap.R2Pred)
			lackFrac := 0.0
			lofPass := false
			lof, lerr := snap.LackOfFitTest(f.Runs(), f.Ys())
			if lerr == nil {
				if snap.TotalSS > 0 {
					lackFrac = lof.LackSS / snap.TotalSS
				}
				if !math.IsNaN(lof.P) {
					anyLackP = true
					q.worstLackP = math.Min(q.worstLackP, lof.P)
					lofPass = lof.P >= cfgAlpha
				}
			} else if snap.TotalSS > 0 {
				// No replication (or DoF exhausted): the F-test is
				// undefined; judge adequacy on the residual fraction alone.
				lackFrac = snap.ResidualSS / snap.TotalSS
			}
			q.worstLackFrac = math.Max(q.worstLackFrac, lackFrac)
			if !lofPass && lackFrac > cfg.LackFraction {
				q.lofOK = false
			}
		}
		if !anyLackP {
			q.worstLackP = -1
		}
		if math.IsInf(q.minR2, 1) {
			// Every response was near-constant: nothing left to learn.
			q.minR2, q.minAdjR2, q.minR2Pred = 1, 1, 1
		}
		return q, nil
	}

	record := func(round, added int, q *roundQuality) {
		stats.Rounds = append(stats.Rounds, AdaptiveRound{
			Round: round, Added: added, Points: cum.Design.N(),
			MinR2: q.minR2, MinAdjR2: q.minAdjR2, MinR2Pred: q.minR2Pred,
			WorstLackP: q.worstLackP, WorstLackFrac: q.worstLackFrac,
		})
	}

	// Round 0: the seed design.
	initial.Name = "adaptive-r0"
	lg.Info("adaptive build started", "k", k, "initial", initial.N(),
		"batch", cfg.BatchPoints, "min", cfg.MinPoints, "max", cfg.MaxPoints)
	ds, err := runRound(ctx, initial)
	if ds != nil {
		if aerr := absorb(ds); err == nil && aerr != nil {
			err = aerr
		}
	}
	if err != nil {
		return fail(err)
	}
	prev, err := quality(cfg.Alpha)
	if err != nil {
		return fail(err)
	}
	record(0, initial.N(), prev)

	for round := 1; ; round++ {
		if cum.Design.N() >= cfg.MaxPoints {
			stats.StopReason = StopMaxPoints
			break
		}
		add := cfg.BatchPoints
		if cum.Design.N()+add > cfg.MaxPoints {
			add = cfg.MaxPoints - cum.Design.N()
		}
		augmented, err := doe.AugmentDOptimal(cum.Design, candidates, add, model.Row, adaptiveMaxPasses)
		if err != nil {
			return fail(err)
		}
		roundDesign := &doe.Design{
			Name: fmt.Sprintf("adaptive-r%d", round),
			Runs: augmented.Runs[cum.Design.N():],
		}
		ds, err := runRound(ctx, roundDesign)
		if ds != nil {
			if aerr := absorb(ds); err == nil && aerr != nil {
				err = aerr
			}
		}
		if err != nil {
			return fail(err)
		}
		cur, err := quality(cfg.Alpha)
		if err != nil {
			return fail(err)
		}
		record(round, roundDesign.N(), cur)
		lg.Debug("adaptive round", "round", round, "points", cum.Design.N(),
			"min_r2", cur.minR2, "worst_lack_frac", cur.worstLackFrac)

		// Budget exhaustion takes precedence over the converged label: a
		// build that used its whole budget reports max_points even when the
		// last round also happened to satisfy the stopping rule.
		if cum.Design.N() >= cfg.MaxPoints {
			stats.StopReason = StopMaxPoints
			break
		}
		if cum.Design.N() >= cfg.MinPoints && converged(prev, cur, &cfg) {
			stats.StopReason = StopConverged
			break
		}
		prev = cur
	}

	cum.SimTime = time.Since(start)
	stats.PointsSimulated = cum.Design.N()
	if skipped := stats.FixedPoints - stats.PointsSimulated; skipped > 0 {
		stats.PointsSkipped = skipped
	}
	surfaces, err := p.BuildSurfaces(cum, model)
	if err != nil {
		return fail(err)
	}
	lg.Info("adaptive build finished", "points", stats.PointsSimulated,
		"fixed_points", stats.FixedPoints, "rounds", len(stats.Rounds),
		"stop", stats.StopReason)
	return &AdaptiveResult{Dataset: cum, Surfaces: surfaces, Stats: stats}, nil
}

// converged applies the stopping rule: every response's lack of fit is
// acceptable (F-test not significant, relative lack below LackFraction, or
// lack no longer improving by LackTol) AND the round's improvement in both
// worst-case adjusted R² and worst-case PRESS-based R²-pred is below
// threshold.
func converged(prev, cur *roundQuality, cfg *AdaptiveConfig) bool {
	lofOK := cur.lofOK || (prev.worstLackFrac-cur.worstLackFrac) < cfg.LackTol
	if !lofOK {
		return false
	}
	if cur.minAdjR2-prev.minAdjR2 >= cfg.AdjR2Tol {
		return false
	}
	if cur.minR2Pred-prev.minR2Pred >= cfg.PRESSTol {
		return false
	}
	return true
}
