package core

import (
	"fmt"
	"strings"

	"repro/internal/doe"
	"repro/internal/rsm"
)

// DesignNames lists the experiment plans NamedDesign accepts.
func DesignNames() []string { return []string{"ccf", "cci", "bbd", "lhs", "dopt"} }

// NamedDesign constructs one of the toolkit's standard experiment plans by
// name for k factors: the face-centred and inscribed central composites
// ("ccf", "cci"), Box–Behnken ("bbd"), maximin Latin hypercube ("lhs") and
// D-optimal over a 3-level grid ("dopt"). runs sets the budget of the
// randomized designs (lhs, dopt); runs ≤ 0 defaults to the CCF-equivalent
// count, so every plan is comparable at the same cost. The fixed designs
// use 3 centre runs, matching the build commands and experiments.
func NamedDesign(name string, k, runs int, seed int64) (*doe.Design, error) {
	ccf, err := doe.CentralComposite(k, doe.CCF, 3)
	if err != nil {
		return nil, err
	}
	if runs <= 0 {
		runs = ccf.N()
	}
	switch strings.ToLower(name) {
	case "ccf":
		return ccf, nil
	case "cci":
		return doe.CentralComposite(k, doe.CCI, 3)
	case "bbd":
		return doe.BoxBehnken(k, 3)
	case "lhs":
		return doe.LatinHypercube(k, runs, seed, 500)
	case "dopt":
		grid, err := doe.FullFactorial(k, 3)
		if err != nil {
			return nil, err
		}
		return doe.DOptimal(grid, runs, rsm.FullQuadratic(k).Row, seed, 0)
	}
	return nil, fmt.Errorf("core: unknown design %q (want one of %s)", name, strings.Join(DesignNames(), ", "))
}
