package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/doe"
	"repro/internal/obs"
	"repro/internal/opt"
)

// RunDesignParallel simulates the design's runs across a worker pool —
// DoE runs are embarrassingly parallel, so the "moderate number of
// simulations" amortizes across cores. workers ≤ 0 uses GOMAXPROCS.
func (p *Problem) RunDesignParallel(d *doe.Design, workers int) (*Dataset, error) {
	return p.RunDesignContext(context.Background(), d, workers)
}

// RunDesignContext is RunDesignParallel with cancellation: when ctx is
// cancelled — or as soon as any run fails — the remaining simulations are
// abandoned instead of running to completion. This is what a long-lived
// server's job runner needs: early abort on error and cancel-on-shutdown.
// Workers never start a run after the abort signal; runs already in flight
// finish (the simulator itself is not preemptible) and are discarded.
func (p *Problem) RunDesignContext(ctx context.Context, d *doe.Design, workers int) (*Dataset, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if d.N() == 0 {
		return nil, fmt.Errorf("core: empty design")
	}
	if d.K() != len(p.Factors) {
		return nil, fmt.Errorf("core: design has %d factors, problem has %d", d.K(), len(p.Factors))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > d.N() {
		workers = d.N()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: design run aborted: %w", err)
	}
	lg := obs.FromContext(ctx)
	lg.Info("design run started", "design", d.Name, "runs", d.N(), "workers", workers)
	start := time.Now()
	// Batch scheduler: under EngineBatch, a lockstep prepass simulates the
	// design's unique uncached points K lanes at a time (bit-identical to
	// the fast engine — see sim.RunBatch) and the per-point loop below then
	// drains from the warmed results. Points the prepass could not settle
	// fall through to the runner with unchanged retry/timeout/cancellation
	// semantics, so the batch engine only changes where the work happens.
	runp := p
	var batch *BatchStats
	if p.engineName() == EngineBatch {
		runp, batch = p.PrewarmBatch(ctx, d.Runs, workers)
	}
	// next hands out run indices; abort stops the handout early. Results
	// land in a pre-sized slice (one slot per run, no index collisions),
	// so the only shared state needing a lock is the error and the
	// work-time counter.
	var (
		next    atomic.Int64
		work    atomic.Int64 // summed run durations, ns
		retries atomic.Int64 // attempts retried after transient faults
		panics  atomic.Int64 // panics recovered into errors
		abort   = make(chan struct{})
		once    sync.Once
		mu      sync.Mutex
		first   error
	)
	fail := func(err error) {
		mu.Lock()
		if first == nil {
			first = err
		}
		mu.Unlock()
		once.Do(func() { close(abort) })
	}
	stop := context.AfterFunc(ctx, func() {
		fail(fmt.Errorf("core: design run aborted: %w", context.Cause(ctx)))
	})
	defer stop()

	rows := make([]map[ResponseID]float64, d.N())
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-abort:
					return
				default:
				}
				// The abort channel closes asynchronously (AfterFunc); check
				// the context directly too, so cancellation stops the handout
				// even when runs are answered instantly from the sim cache.
				if ctx.Err() != nil {
					fail(fmt.Errorf("core: design run aborted: %w", context.Cause(ctx)))
					return
				}
				i := int(next.Add(1)) - 1
				if i >= d.N() {
					return
				}
				runStart := time.Now()
				resp, st, err := runp.runWithRetry(ctx, i, d.Runs[i])
				runDur := time.Since(runStart)
				work.Add(int64(runDur))
				retries.Add(int64(st.retries))
				panics.Add(int64(st.panics))
				if err != nil {
					lg.Warn("sim run failed", "run", i, "attempts", st.attempts, "err", err.Error())
					fail(wrapRunErr(i, st, err))
					return
				}
				lg.Debug("sim run", "run", i, "sim_ms", float64(runDur.Microseconds())/1e3)
				rows[i] = resp
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	err := first
	mu.Unlock()
	if err != nil {
		lg.Warn("design run aborted", "design", d.Name, "err", err.Error())
		// Return a Y-less Dataset carrying the timing and fault-recovery
		// stats of the aborted run, so callers (e.g. the job manager) can
		// still surface retry/panic counts for failed builds.
		return &Dataset{
			Design:          d,
			SimTime:         time.Since(start),
			SimWork:         time.Duration(work.Load()),
			Retries:         int(retries.Load()),
			PanicsRecovered: int(panics.Load()),
			Batch:           batch,
		}, err
	}
	ds := &Dataset{Design: d, Y: make(map[ResponseID][]float64, len(p.Responses))}
	for _, id := range p.Responses {
		col := make([]float64, d.N())
		for i, row := range rows {
			col[i] = row[id]
		}
		ds.Y[id] = col
	}
	ds.SimTime = time.Since(start)
	ds.SimWork = time.Duration(work.Load())
	ds.Retries = int(retries.Load())
	ds.PanicsRecovered = int(panics.Load())
	ds.Batch = batch
	lg.Info("design run finished", "design", d.Name, "runs", d.N(),
		"sim_ms", float64(ds.SimTime.Microseconds())/1e3,
		"work_ms", float64(ds.SimWork.Microseconds())/1e3,
		"speedup", ds.Speedup())
	return ds, nil
}

// Subregion returns a refined copy of the problem whose factor ranges are
// shrunk to a fraction (scale) of the original, centred on the coded point
// centre and clamped to the original ranges — the sequential-RSM move
// applied after a lack-of-fit alarm or around a promising optimum.
func (p *Problem) Subregion(centre []float64, scale float64) (*Problem, error) {
	if len(centre) != len(p.Factors) {
		return nil, fmt.Errorf("core: centre has %d coordinates, problem has %d factors", len(centre), len(p.Factors))
	}
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("core: subregion scale %g must be in (0, 1]", scale)
	}
	sub := *p
	sub.Factors = make([]doe.Factor, len(p.Factors))
	for i, f := range p.Factors {
		mid := f.Decode(centre[i])
		half := scale * (f.Max - f.Min) / 2
		lo, hi := mid-half, mid+half
		// Clamp to the original region, preserving the width when possible.
		if lo < f.Min {
			lo, hi = f.Min, math.Min(f.Min+2*half, f.Max)
		}
		if hi > f.Max {
			hi, lo = f.Max, math.Max(f.Max-2*half, f.Min)
		}
		sub.Factors[i] = doe.Factor{Name: f.Name, Min: lo, Max: hi, Unit: f.Unit}
	}
	return &sub, nil
}

// DesirabilityGoal pairs a response with its desirability shape and an
// optional weight (≤ 0 means 1).
type DesirabilityGoal struct {
	Response ResponseID
	Shape    opt.Desirability
	Weight   float64
}

// DesirabilityResult is a multi-response compromise design found on the
// surfaces and confirmed by one simulation.
type DesirabilityResult struct {
	Coded     []float64
	Natural   []float64
	Score     float64                // composite desirability predicted on the surfaces
	Confirmed float64                // composite desirability of the simulated responses
	Predicted map[ResponseID]float64 // per-response surface predictions
	Simulated map[ResponseID]float64 // per-response simulated values
	Evals     int
}

// OptimizeDesirability finds the design maximizing the Derringer–Suich
// composite desirability of several responses on the fitted surfaces
// (multi-start Nelder–Mead), then confirms it with one simulation.
func (s *Surfaces) OptimizeDesirability(goals []DesirabilityGoal, starts int, seed int64) (*DesirabilityResult, error) {
	if len(goals) == 0 {
		return nil, fmt.Errorf("core: need ≥1 desirability goal")
	}
	evals := make([]opt.Objective, len(goals))
	shapes := make([]opt.Desirability, len(goals))
	weights := make([]float64, len(goals))
	for i, g := range goals {
		fit, ok := s.Fits[g.Response]
		if !ok {
			return nil, fmt.Errorf("core: no surface for %q", g.Response)
		}
		evals[i] = fit.Predict
		shapes[i] = g.Shape
		weights[i] = g.Weight
	}
	comp, err := opt.NewComposite(evals, shapes, weights)
	if err != nil {
		return nil, err
	}
	if starts < 1 {
		starts = 1
	}
	b := opt.NewBounds(len(s.Problem.Factors))
	rng := rand.New(rand.NewSource(seed))
	var best *opt.Result
	totalEvals := 0
	for i := 0; i < starts; i++ {
		r, err := opt.NelderMead(comp.Objective(), b, b.Random(rng), opt.NelderMeadConfig{MaxIters: 400})
		if err != nil {
			return nil, err
		}
		totalEvals += r.Evals
		if best == nil || r.F < best.F {
			best = r
		}
	}

	natural, err := doe.DecodeRun(s.Problem.Factors, best.X)
	if err != nil {
		return nil, err
	}
	res := &DesirabilityResult{
		Coded:     best.X,
		Natural:   natural,
		Score:     comp.Score(best.X),
		Predicted: make(map[ResponseID]float64, len(goals)),
		Simulated: make(map[ResponseID]float64, len(goals)),
		Evals:     totalEvals,
	}
	sim, err := s.Problem.ResponsesAt(best.X)
	if err != nil {
		return nil, err
	}
	// Confirmed composite: the same shapes applied to simulated values.
	simEvals := make([]opt.Objective, len(goals))
	for i, g := range goals {
		res.Predicted[g.Response] = s.Fits[g.Response].Predict(best.X)
		res.Simulated[g.Response] = sim[g.Response]
		v := sim[g.Response]
		simEvals[i] = func(x []float64) float64 { return v }
	}
	simComp, err := opt.NewComposite(simEvals, shapes, weights)
	if err != nil {
		return nil, err
	}
	res.Confirmed = simComp.Score(best.X)
	return res, nil
}
