package core

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/doe"
	"repro/internal/rsm"
	"repro/internal/sim"
	"repro/internal/simcache"
)

// slowProblem returns a quick problem driven by an artificially slow named
// engine backed by its own fresh cache, so tests control hit/miss behaviour
// without interference from the shared DefaultRunner.
func slowProblem(delay time.Duration) (*Problem, *simcache.Cache) {
	p := quickProblem()
	p.Engine = func(d sim.Design, cfg sim.Config) (*sim.Result, error) {
		time.Sleep(delay)
		return sim.RunFast(d, cfg)
	}
	p.EngineName = "test-slow"
	c := simcache.New(simcache.Options{Capacity: 64})
	p.Runner = c
	return p, c
}

func TestDefaultRunnerIsSharedCache(t *testing.T) {
	if _, ok := DefaultRunner.(*simcache.Cache); !ok {
		t.Fatalf("DefaultRunner is %T, want *simcache.Cache", DefaultRunner)
	}
}

// TestSimWorkAccountingUnderCacheHits is the guard the ISSUE asks for:
// cache hits must not inflate the reported parallel speedup. SimWork sums
// wall time per run, so a fully-cached design's SimWork collapses along
// with SimTime, and Speedup stays bounded by the worker count instead of
// reporting a fantasy figure.
func TestSimWorkAccountingUnderCacheHits(t *testing.T) {
	const workers = 2
	p, c := slowProblem(20 * time.Millisecond)
	// Replicated center points plus corners — replicates dedup within the
	// first pass, and the second pass is answered entirely from cache.
	design := &doe.Design{Name: "manual", Runs: [][]float64{
		{0, 0, 0}, {0, 0, 0}, {0, 0, 0},
		{1, 1, 1}, {-1, -1, -1},
	}}

	ds1, err := p.RunDesignContext(context.Background(), design, workers)
	if err != nil {
		t.Fatal(err)
	}
	if ds1.SimWork <= 0 || ds1.SimTime <= 0 {
		t.Fatalf("first pass lost its accounting: work %v time %v", ds1.SimWork, ds1.SimTime)
	}
	st := c.Stats()
	if st.Misses != 3 {
		t.Fatalf("first pass executed %d distinct points, want 3", st.Misses)
	}
	if st.Hits+st.DedupHits != 2 {
		t.Fatalf("replicates not shared: %d hits + %d dedup, want 2 total", st.Hits, st.DedupHits)
	}

	ds2, err := p.RunDesignContext(context.Background(), design, workers)
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats().Misses != 3 {
		t.Fatal("second pass must not execute any simulation")
	}
	// All five runs were instant hits: their summed wall time must be far
	// below one real simulation, and the ratio SimWork/SimTime must not be
	// inflated past what the pool can physically achieve.
	if ds2.SimWork >= 20*time.Millisecond {
		t.Fatalf("cached pass reports %v of sim work, want ≪ one run (20ms)", ds2.SimWork)
	}
	if sp := ds2.Speedup(); sp > workers+1 {
		t.Fatalf("cache hits inflated the parallel speedup to %.1f× with %d workers", sp, workers)
	}
	// Identical numbers out of the cache.
	for _, id := range p.Responses {
		for i := range ds1.Y[id] {
			if ds1.Y[id][i] != ds2.Y[id][i] {
				t.Fatalf("%s run %d: %v vs %v", id, i, ds1.Y[id][i], ds2.Y[id][i])
			}
		}
	}
}

// TestValidateTwiceIsCachedAndIdentical covers the repeated-point workload
// of the acceptance criteria at unit-test scale: a second Validate with the
// same seed re-simulates nothing and reproduces the report byte for byte.
func TestValidateTwiceIsCachedAndIdentical(t *testing.T) {
	p, c := slowProblem(0)
	design, err := doe.CentralComposite(3, doe.CCF, 2)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := p.RunDesignParallel(design, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.BuildSurfaces(ds, rsm.FullQuadratic(3))
	if err != nil {
		t.Fatal(err)
	}
	misses := c.Stats().Misses
	rep1, err := s.Validate(6, 99)
	if err != nil {
		t.Fatal(err)
	}
	missesAfter := c.Stats().Misses
	if missesAfter <= misses {
		t.Fatal("first validation must simulate fresh points")
	}
	rep2, err := s.Validate(6, 99)
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats().Misses != missesAfter {
		t.Fatal("repeat validation must be answered entirely from cache")
	}
	b1, _ := json.Marshal(rep1.Rows)
	b2, _ := json.Marshal(rep2.Rows)
	if string(b1) != string(b2) {
		t.Fatalf("cached validation differs:\n%s\n%s", b1, b2)
	}
}

// TestCustomEngineWithoutNameBypassesCache pins the bypass rule: a closure
// engine with no EngineName cannot be content-addressed, so every call must
// reach it (the serve tests' blocking problems depend on this).
func TestCustomEngineWithoutNameBypassesCache(t *testing.T) {
	p := quickProblem()
	calls := 0
	p.Engine = func(d sim.Design, cfg sim.Config) (*sim.Result, error) {
		calls++
		return sim.RunFast(d, cfg)
	}
	c := simcache.New(simcache.Options{})
	p.Runner = c
	for i := 0; i < 2; i++ {
		if _, err := p.ResponsesAt([]float64{0, 0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 2 {
		t.Fatalf("unnamed custom engine ran %d times, want 2 (no caching)", calls)
	}
	if st := c.Stats(); st.Hits+st.Misses+st.Bypass != 0 {
		t.Fatalf("unnamed engine must not touch the cache at all: %+v", st)
	}
}
