package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/doe"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/simcache"
)

// transientErr is a retryable failure for tests (structural marker, like
// the ones internal/fault injects).
type transientErr struct{}

func (transientErr) Error() string   { return "synthetic transient failure" }
func (transientErr) Transient() bool { return true }

// scriptedRunner fails (or panics, or blocks) for the first failFirst
// calls, then returns a canned finite result without simulating.
type scriptedRunner struct {
	calls     atomic.Int64
	failFirst int64
	err       error
	panics    bool
	block     chan struct{} // when non-nil, failing calls block here instead
	result    sim.Result
}

func (r *scriptedRunner) Run(ctx context.Context, engine string, fn simcache.Engine, d sim.Design, cfg sim.Config) (*sim.Result, error) {
	if r.calls.Add(1) <= r.failFirst {
		switch {
		case r.block != nil:
			<-r.block
		case r.panics:
			panic("scripted engine panic")
		default:
			return nil, r.err
		}
	}
	res := r.result
	return &res, nil
}

func scriptedProblem(r *scriptedRunner) *Problem {
	p := quickProblem()
	p.Runner = r
	p.Retry.BaseDelay = time.Millisecond
	p.Retry.MaxDelay = 2 * time.Millisecond
	return p
}

func TestRetryTransientSucceeds(t *testing.T) {
	r := &scriptedRunner{failFirst: 2, err: transientErr{}}
	p := scriptedProblem(r)
	p.Retry.MaxAttempts = 3
	design, _ := doe.TwoLevelFactorial(3)

	for _, mode := range []string{"serial", "parallel"} {
		r.calls.Store(0)
		var ds *Dataset
		var err error
		if mode == "serial" {
			ds, err = p.RunDesign(design)
		} else {
			ds, err = p.RunDesignContext(context.Background(), design, 2)
		}
		if err != nil {
			t.Fatalf("%s: build must survive transient faults via retries: %v", mode, err)
		}
		if ds.Retries != 2 {
			t.Fatalf("%s: want 2 retries recorded, got %d", mode, ds.Retries)
		}
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	r := &scriptedRunner{failFirst: 1 << 30, err: transientErr{}}
	p := scriptedProblem(r)
	p.Retry.MaxAttempts = 2
	design, _ := doe.TwoLevelFactorial(3)

	ds, err := p.RunDesign(design)
	if err == nil {
		t.Fatal("exhausted retries must fail the run")
	}
	if !strings.Contains(err.Error(), "after 2 attempts") {
		t.Fatalf("error must report the attempt count: %v", err)
	}
	if ds == nil || ds.Retries != 1 {
		t.Fatalf("failed dataset must still carry retry stats: %+v", ds)
	}
}

func TestPermanentErrorNotRetried(t *testing.T) {
	r := &scriptedRunner{failFirst: 1 << 30, err: fmt.Errorf("permanent engine failure")}
	p := scriptedProblem(r)
	p.Retry.MaxAttempts = 5
	design, _ := doe.TwoLevelFactorial(3)

	if _, err := p.RunDesign(design); err == nil {
		t.Fatal("permanent failure must fail the run")
	}
	if n := r.calls.Load(); n != 1 {
		t.Fatalf("permanent failure must not be retried: %d calls", n)
	}
}

func TestPanicRecoveredIntoError(t *testing.T) {
	r := &scriptedRunner{failFirst: 1 << 30, panics: true}
	p := scriptedProblem(r)
	design, _ := doe.TwoLevelFactorial(3)

	ds, err := p.RunDesignContext(context.Background(), design, 2)
	if err == nil {
		t.Fatal("a permanently panicking engine must fail the build, not crash the test binary")
	}
	var perr *RunPanicError
	if !errors.As(err, &perr) {
		t.Fatalf("want *RunPanicError in the chain, got %v", err)
	}
	if perr.Run < 0 || perr.Run >= design.N() {
		t.Fatalf("panic error must carry its design-point index, got %d", perr.Run)
	}
	if !strings.Contains(err.Error(), "panicked") || !strings.Contains(err.Error(), "scripted engine panic") {
		t.Fatalf("error must surface the panic message: %v", err)
	}
	if len(perr.Stack) == 0 {
		t.Fatal("panic error must capture the stack")
	}
	if ds == nil || ds.PanicsRecovered == 0 {
		t.Fatalf("failed dataset must count recovered panics: %+v", ds)
	}
	if !IsTransient(perr) {
		t.Fatal("recovered panics must be retryable")
	}
}

func TestPanicRetriedThenSucceeds(t *testing.T) {
	r := &scriptedRunner{failFirst: 1, panics: true}
	p := scriptedProblem(r)
	p.Retry.MaxAttempts = 2
	design, _ := doe.TwoLevelFactorial(3)

	ds, err := p.RunDesign(design)
	if err != nil {
		t.Fatalf("one panic within the retry budget must not fail the build: %v", err)
	}
	if ds.PanicsRecovered != 1 || ds.Retries != 1 {
		t.Fatalf("want 1 panic + 1 retry recorded, got %d/%d", ds.PanicsRecovered, ds.Retries)
	}
}

func TestRunTimeoutAbandonsHungRun(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	r := &scriptedRunner{failFirst: 1 << 30, block: block}
	p := scriptedProblem(r)
	p.RunTimeout = 20 * time.Millisecond
	design, _ := doe.TwoLevelFactorial(3)

	start := time.Now()
	_, err := p.RunDesignContext(context.Background(), design, 1)
	if err == nil {
		t.Fatal("hung run must time out")
	}
	var terr *RunTimeoutError
	if !errors.As(err, &terr) {
		t.Fatalf("want *RunTimeoutError, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("timeout must unwrap to context.DeadlineExceeded")
	}
	if !IsTransient(terr) {
		t.Fatal("per-run timeouts must be retryable")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("worker stayed pinned for %s", d)
	}
}

func TestNaNResponseRejectedNotRetried(t *testing.T) {
	r := &scriptedRunner{result: sim.Result{AvgHarvestedPower: math.NaN()}}
	p := scriptedProblem(r)
	p.Retry.MaxAttempts = 5
	design, _ := doe.TwoLevelFactorial(3)

	_, err := p.RunDesign(design)
	if err == nil {
		t.Fatal("NaN responses must be rejected before fitting")
	}
	var nerr *NumericError
	if !errors.As(err, &nerr) {
		t.Fatalf("want *NumericError, got %v", err)
	}
	if IsTransient(err) {
		t.Fatal("numeric invalidity must not be retryable")
	}
	if n := r.calls.Load(); n != 1 {
		t.Fatalf("NaN must not be retried: %d calls", n)
	}
}

func TestRetryCountsReachFaultStats(t *testing.T) {
	r := &scriptedRunner{failFirst: 1, err: transientErr{}}
	p := scriptedProblem(r)
	p.Retry.MaxAttempts = 2
	design, _ := doe.TwoLevelFactorial(3)

	fs := &obs.FaultStats{}
	ctx := obs.WithFaultStats(context.Background(), fs)
	if _, err := p.RunDesignContext(ctx, design, 2); err != nil {
		t.Fatal(err)
	}
	if fs.Retries.Value() != 1 {
		t.Fatalf("context fault stats must see the retry, got %d", fs.Retries.Value())
	}
}

// deadlineAwareRunner models a cancellation-aware runner (the cache's
// single-flight wait, the cluster peer client): failing calls block until
// the attempt context is done and surface its cause as a wrapped error —
// exactly the shape that races runAttempt's own deadline branch.
type deadlineAwareRunner struct {
	calls     atomic.Int64
	failFirst int64
	result    sim.Result
}

func (r *deadlineAwareRunner) Run(ctx context.Context, engine string, fn simcache.Engine, d sim.Design, cfg sim.Config) (*sim.Result, error) {
	if r.calls.Add(1) <= r.failFirst {
		// Sleep up to just before the deadline, then spin on ctx.Err so the
		// wrapped error reaches runAttempt's result channel at the same
		// instant its own tctx.Done fires — maximizing the select race this
		// test pins down (a parked receive would always lose the race and
		// never exercise the channel branch).
		if dl, ok := ctx.Deadline(); ok {
			if d := time.Until(dl) - 2*time.Millisecond; d > 0 {
				time.Sleep(d)
			}
		}
		for ctx.Err() == nil {
		}
		return nil, fmt.Errorf("waiting on peer result: %w", context.Cause(ctx))
	}
	res := r.result
	return &res, nil
}

// TestDeadlineRaceNormalizedToTimeout pins the unified deadline semantics
// of the local and cluster pools: when a cancellation-aware runner returns
// the per-attempt deadline as its own wrapped error, the outcome must be
// the same retryable *RunTimeoutError the abandonment branch produces —
// regardless of which side of runAttempt's select wins — so a design
// point that would succeed on retry succeeds through both entry paths.
// Before the normalization this failed permanently on roughly half the
// iterations (whenever the runner's error won the select race).
func TestDeadlineRaceNormalizedToTimeout(t *testing.T) {
	design, _ := doe.TwoLevelFactorial(3)
	for iter := 0; iter < 10; iter++ {
		for _, entry := range []string{"local-pool", "cluster-entry"} {
			r := &deadlineAwareRunner{failFirst: 1}
			p := quickProblem()
			p.Runner = r
			p.Retry.BaseDelay = time.Millisecond
			p.Retry.MaxDelay = 2 * time.Millisecond
			p.Retry.MaxAttempts = 2
			p.RunTimeout = 10 * time.Millisecond

			var (
				retries int
				err     error
			)
			if entry == "local-pool" {
				r.failFirst = int64(1) // first call times out, retry succeeds
				var ds *Dataset
				ds, err = p.RunDesignContext(context.Background(), design, 1)
				if ds != nil {
					retries = ds.Retries
				}
				// Only the first design point's first attempt fails; the
				// remaining points are answered directly.
			} else {
				var st RunStats
				_, st, err = p.RunPoint(context.Background(), 0, design.Runs[0])
				retries = st.Retries
			}
			if err != nil {
				t.Fatalf("iter %d %s: deadline-raced run must be retried, got %v", iter, entry, err)
			}
			if retries != 1 {
				t.Fatalf("iter %d %s: want exactly 1 retry, got %d", iter, entry, retries)
			}
		}
	}
}

// TestBackoffNotChargedToRunDeadline pins the other half of the unified
// semantics: the backoff sleep between attempts runs on the parent
// context, so a backoff longer than the per-run deadline must not expire
// the retry — in either entry path.
func TestBackoffNotChargedToRunDeadline(t *testing.T) {
	design, _ := doe.TwoLevelFactorial(3)
	for _, entry := range []string{"local-pool", "cluster-entry"} {
		r := &scriptedRunner{failFirst: 1, err: transientErr{}}
		p := scriptedProblem(r)
		p.Retry.MaxAttempts = 2
		p.Retry.BaseDelay = 120 * time.Millisecond // > RunTimeout, incl. jitter
		p.Retry.MaxDelay = 150 * time.Millisecond
		p.RunTimeout = 40 * time.Millisecond

		var err error
		if entry == "local-pool" {
			_, err = p.RunDesignContext(context.Background(), design, 1)
		} else {
			_, _, err = p.RunPoint(context.Background(), 0, design.Runs[0])
		}
		if err != nil {
			t.Fatalf("%s: backoff sleep must not consume the per-run deadline: %v", entry, err)
		}
	}
}

// TestNormalizeDeadlineErr deterministically pins each arm of the
// normalization that TestDeadlineRaceNormalizedToTimeout exercises
// through real scheduling: only a genuinely deadline-caused, still-untyped
// error under a live parent context becomes a *RunTimeoutError.
func TestNormalizeDeadlineErr(t *testing.T) {
	p := quickProblem()
	p.RunTimeout = 30 * time.Millisecond
	parent := context.Background()
	expired, cancel := context.WithTimeout(parent, -time.Second)
	defer cancel()
	live, cancelLive := context.WithTimeout(parent, time.Hour)
	defer cancelLive()
	aborted, abort := context.WithCancel(parent)
	abort()

	wrapped := fmt.Errorf("waiting on peer result: %w", context.DeadlineExceeded)
	if err := p.normalizeDeadlineErr(parent, expired, 3, wrapped); err != nil {
		var terr *RunTimeoutError
		if !errors.As(err, &terr) || terr.Run != 3 || terr.Timeout != p.RunTimeout {
			t.Fatalf("deadline-caused error must normalize to *RunTimeoutError, got %v", err)
		}
		if !IsTransient(err) {
			t.Fatal("normalized timeout must stay retryable")
		}
	} else {
		t.Fatal("want an error back")
	}

	// Attempt deadline not expired: the error is the runner's own business.
	if err := p.normalizeDeadlineErr(parent, live, 3, wrapped); err != wrapped {
		t.Fatalf("live attempt context must pass the error through, got %v", err)
	}
	// Parent aborted: an abort stays an abort (never converted to a retry).
	if err := p.normalizeDeadlineErr(aborted, expired, 3, wrapped); err != wrapped {
		t.Fatalf("parent abort must pass through, got %v", err)
	}
	// Already typed: idempotent.
	typed := &RunTimeoutError{Run: 3, Timeout: p.RunTimeout}
	if err := p.normalizeDeadlineErr(parent, expired, 3, typed); err != typed {
		t.Fatalf("typed timeout must pass through unchanged, got %v", err)
	}
	// Unrelated errors pass through.
	plain := fmt.Errorf("engine exploded")
	if err := p.normalizeDeadlineErr(parent, expired, 3, plain); err != plain {
		t.Fatalf("non-deadline error must pass through, got %v", err)
	}
	if err := p.normalizeDeadlineErr(parent, expired, 3, nil); err != nil {
		t.Fatalf("nil must pass through, got %v", err)
	}
}
