package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/doe"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/simcache"
)

// transientErr is a retryable failure for tests (structural marker, like
// the ones internal/fault injects).
type transientErr struct{}

func (transientErr) Error() string   { return "synthetic transient failure" }
func (transientErr) Transient() bool { return true }

// scriptedRunner fails (or panics, or blocks) for the first failFirst
// calls, then returns a canned finite result without simulating.
type scriptedRunner struct {
	calls     atomic.Int64
	failFirst int64
	err       error
	panics    bool
	block     chan struct{} // when non-nil, failing calls block here instead
	result    sim.Result
}

func (r *scriptedRunner) Run(ctx context.Context, engine string, fn simcache.Engine, d sim.Design, cfg sim.Config) (*sim.Result, error) {
	if r.calls.Add(1) <= r.failFirst {
		switch {
		case r.block != nil:
			<-r.block
		case r.panics:
			panic("scripted engine panic")
		default:
			return nil, r.err
		}
	}
	res := r.result
	return &res, nil
}

func scriptedProblem(r *scriptedRunner) *Problem {
	p := quickProblem()
	p.Runner = r
	p.Retry.BaseDelay = time.Millisecond
	p.Retry.MaxDelay = 2 * time.Millisecond
	return p
}

func TestRetryTransientSucceeds(t *testing.T) {
	r := &scriptedRunner{failFirst: 2, err: transientErr{}}
	p := scriptedProblem(r)
	p.Retry.MaxAttempts = 3
	design, _ := doe.TwoLevelFactorial(3)

	for _, mode := range []string{"serial", "parallel"} {
		r.calls.Store(0)
		var ds *Dataset
		var err error
		if mode == "serial" {
			ds, err = p.RunDesign(design)
		} else {
			ds, err = p.RunDesignContext(context.Background(), design, 2)
		}
		if err != nil {
			t.Fatalf("%s: build must survive transient faults via retries: %v", mode, err)
		}
		if ds.Retries != 2 {
			t.Fatalf("%s: want 2 retries recorded, got %d", mode, ds.Retries)
		}
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	r := &scriptedRunner{failFirst: 1 << 30, err: transientErr{}}
	p := scriptedProblem(r)
	p.Retry.MaxAttempts = 2
	design, _ := doe.TwoLevelFactorial(3)

	ds, err := p.RunDesign(design)
	if err == nil {
		t.Fatal("exhausted retries must fail the run")
	}
	if !strings.Contains(err.Error(), "after 2 attempts") {
		t.Fatalf("error must report the attempt count: %v", err)
	}
	if ds == nil || ds.Retries != 1 {
		t.Fatalf("failed dataset must still carry retry stats: %+v", ds)
	}
}

func TestPermanentErrorNotRetried(t *testing.T) {
	r := &scriptedRunner{failFirst: 1 << 30, err: fmt.Errorf("permanent engine failure")}
	p := scriptedProblem(r)
	p.Retry.MaxAttempts = 5
	design, _ := doe.TwoLevelFactorial(3)

	if _, err := p.RunDesign(design); err == nil {
		t.Fatal("permanent failure must fail the run")
	}
	if n := r.calls.Load(); n != 1 {
		t.Fatalf("permanent failure must not be retried: %d calls", n)
	}
}

func TestPanicRecoveredIntoError(t *testing.T) {
	r := &scriptedRunner{failFirst: 1 << 30, panics: true}
	p := scriptedProblem(r)
	design, _ := doe.TwoLevelFactorial(3)

	ds, err := p.RunDesignContext(context.Background(), design, 2)
	if err == nil {
		t.Fatal("a permanently panicking engine must fail the build, not crash the test binary")
	}
	var perr *RunPanicError
	if !errors.As(err, &perr) {
		t.Fatalf("want *RunPanicError in the chain, got %v", err)
	}
	if perr.Run < 0 || perr.Run >= design.N() {
		t.Fatalf("panic error must carry its design-point index, got %d", perr.Run)
	}
	if !strings.Contains(err.Error(), "panicked") || !strings.Contains(err.Error(), "scripted engine panic") {
		t.Fatalf("error must surface the panic message: %v", err)
	}
	if len(perr.Stack) == 0 {
		t.Fatal("panic error must capture the stack")
	}
	if ds == nil || ds.PanicsRecovered == 0 {
		t.Fatalf("failed dataset must count recovered panics: %+v", ds)
	}
	if !IsTransient(perr) {
		t.Fatal("recovered panics must be retryable")
	}
}

func TestPanicRetriedThenSucceeds(t *testing.T) {
	r := &scriptedRunner{failFirst: 1, panics: true}
	p := scriptedProblem(r)
	p.Retry.MaxAttempts = 2
	design, _ := doe.TwoLevelFactorial(3)

	ds, err := p.RunDesign(design)
	if err != nil {
		t.Fatalf("one panic within the retry budget must not fail the build: %v", err)
	}
	if ds.PanicsRecovered != 1 || ds.Retries != 1 {
		t.Fatalf("want 1 panic + 1 retry recorded, got %d/%d", ds.PanicsRecovered, ds.Retries)
	}
}

func TestRunTimeoutAbandonsHungRun(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	r := &scriptedRunner{failFirst: 1 << 30, block: block}
	p := scriptedProblem(r)
	p.RunTimeout = 20 * time.Millisecond
	design, _ := doe.TwoLevelFactorial(3)

	start := time.Now()
	_, err := p.RunDesignContext(context.Background(), design, 1)
	if err == nil {
		t.Fatal("hung run must time out")
	}
	var terr *RunTimeoutError
	if !errors.As(err, &terr) {
		t.Fatalf("want *RunTimeoutError, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("timeout must unwrap to context.DeadlineExceeded")
	}
	if !IsTransient(terr) {
		t.Fatal("per-run timeouts must be retryable")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("worker stayed pinned for %s", d)
	}
}

func TestNaNResponseRejectedNotRetried(t *testing.T) {
	r := &scriptedRunner{result: sim.Result{AvgHarvestedPower: math.NaN()}}
	p := scriptedProblem(r)
	p.Retry.MaxAttempts = 5
	design, _ := doe.TwoLevelFactorial(3)

	_, err := p.RunDesign(design)
	if err == nil {
		t.Fatal("NaN responses must be rejected before fitting")
	}
	var nerr *NumericError
	if !errors.As(err, &nerr) {
		t.Fatalf("want *NumericError, got %v", err)
	}
	if IsTransient(err) {
		t.Fatal("numeric invalidity must not be retryable")
	}
	if n := r.calls.Load(); n != 1 {
		t.Fatalf("NaN must not be retried: %d calls", n)
	}
}

func TestRetryCountsReachFaultStats(t *testing.T) {
	r := &scriptedRunner{failFirst: 1, err: transientErr{}}
	p := scriptedProblem(r)
	p.Retry.MaxAttempts = 2
	design, _ := doe.TwoLevelFactorial(3)

	fs := &obs.FaultStats{}
	ctx := obs.WithFaultStats(context.Background(), fs)
	if _, err := p.RunDesignContext(ctx, design, 2); err != nil {
		t.Fatal(err)
	}
	if fs.Retries.Value() != 1 {
		t.Fatalf("context fault stats must see the retry, got %d", fs.Retries.Value())
	}
}
