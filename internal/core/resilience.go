package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"time"

	"repro/internal/obs"
)

// RunPanicError is a panic recovered from a simulation run: the engine (or
// anything beneath it) panicked and the design-run worker converted the
// panic into an error instead of letting it kill the process. It is
// retryable — a panic on a pathological corner may not recur — but when
// the retry budget is exhausted it surfaces with the design-point index
// and the original panic value.
type RunPanicError struct {
	Run   int    // design-point index
	Value any    // the recovered panic value
	Stack []byte // stack captured at the recovery point
}

func (e *RunPanicError) Error() string {
	return fmt.Sprintf("core: run %d panicked: %v", e.Run, e.Value)
}

// Transient marks recovered panics as retryable.
func (e *RunPanicError) Transient() bool { return true }

// RunTimeoutError reports a run that exceeded the problem's per-run
// deadline (Problem.RunTimeout). The hung simulation is abandoned — the
// engine itself is not preemptible — and the run is retryable.
type RunTimeoutError struct {
	Run     int
	Timeout time.Duration
}

func (e *RunTimeoutError) Error() string {
	return fmt.Sprintf("core: run %d exceeded the per-run deadline %s", e.Run, e.Timeout)
}

// Transient marks per-run timeouts as retryable.
func (e *RunTimeoutError) Transient() bool { return true }

// Unwrap lets errors.Is(err, context.DeadlineExceeded) see the timeout.
func (e *RunTimeoutError) Unwrap() error { return context.DeadlineExceeded }

// NumericError rejects a simulation whose extracted response is NaN or
// ±Inf — a stiff-solver corner or an injected fault — before the value can
// poison an RSM fit. It is not retryable: a numerically invalid result at
// a design point is assumed to recur.
type NumericError struct {
	Response ResponseID
	Value    float64
}

func (e *NumericError) Error() string {
	return fmt.Sprintf("core: response %q is not finite (%v)", e.Response, e.Value)
}

// IsTransient reports whether err is marked retryable: any error in the
// chain implementing Transient() bool decides. Injected faults
// (internal/fault), recovered panics and per-run timeouts qualify;
// validation and numeric-validity errors do not.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// RetryPolicy is the per-run retry budget of a design run: transient
// failures are retried with exponential backoff plus jitter, aborting
// early when the run's context is cancelled. The zero value means one
// attempt (no retries).
type RetryPolicy struct {
	// MaxAttempts bounds the total attempts per run; <=0 means 1.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 50 ms);
	// it doubles per attempt up to MaxDelay (default 2 s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Jitter is the relative jitter fraction applied to each delay
	// (0 means the default 0.2: ±20%).
	Jitter float64
	// Seed makes the jitter sequence reproducible per run index.
	Seed int64
}

func (rp RetryPolicy) withDefaults() RetryPolicy {
	if rp.MaxAttempts <= 0 {
		rp.MaxAttempts = 1
	}
	if rp.BaseDelay <= 0 {
		rp.BaseDelay = 50 * time.Millisecond
	}
	if rp.MaxDelay <= 0 {
		rp.MaxDelay = 2 * time.Second
	}
	if rp.Jitter <= 0 {
		rp.Jitter = 0.2
	}
	return rp
}

// delay computes the backoff before retry number retry (1-based),
// exponential with jitter. Policy must have defaults applied.
func (rp RetryPolicy) delay(retry int, rng *rand.Rand) time.Duration {
	d := rp.BaseDelay
	for i := 1; i < retry && d < rp.MaxDelay; i++ {
		d *= 2
	}
	if d > rp.MaxDelay {
		d = rp.MaxDelay
	}
	// Jitter in [1-j, 1+j] spreads synchronized retries apart.
	f := 1 + rp.Jitter*(2*rng.Float64()-1)
	return time.Duration(float64(d) * f)
}

// sleepCtx waits d or until ctx is cancelled; reports whether the full
// delay elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// guardedResponses is one simulation attempt with panic containment: a
// panic anywhere beneath (engine, cache, fault injector) is recovered
// into a *RunPanicError carrying the design-point index, with the stack
// logged under the run's trace ID.
func (p *Problem) guardedResponses(ctx context.Context, i int, coded []float64) (resp map[ResponseID]float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			perr := &RunPanicError{Run: i, Value: r, Stack: debug.Stack()}
			obs.FromContext(ctx).Error("sim run panicked",
				"run", i, "panic", fmt.Sprint(r), "stack", string(perr.Stack))
			err = perr
		}
	}()
	return p.ResponsesAtContext(ctx, coded)
}

// runAttempt is guardedResponses under the problem's per-run deadline.
// The simulator is not preemptible, so on deadline the attempt goroutine
// is abandoned (it finishes in the background and is discarded) and the
// worker moves on instead of being pinned by a hung run.
//
// Deadline semantics — identical for the local pool (RunDesignContext)
// and the cluster pool (workers entering through RunPoint), which share
// this code path: each attempt gets a fresh RunTimeout budget, and the
// backoff sleeps between attempts (runWithRetry) run on the parent
// context, so they are charged against neither pool's per-run deadline.
// A deadline expiry always surfaces as a retryable *RunTimeoutError, no
// matter which side of the race below observes it first.
func (p *Problem) runAttempt(ctx context.Context, i int, coded []float64) (map[ResponseID]float64, error) {
	if p.RunTimeout <= 0 {
		return p.guardedResponses(ctx, i, coded)
	}
	tctx, cancel := context.WithTimeout(ctx, p.RunTimeout)
	defer cancel()
	type outcome struct {
		resp map[ResponseID]float64
		err  error
	}
	ch := make(chan outcome, 1)
	go func() {
		r, err := p.guardedResponses(tctx, i, coded)
		ch <- outcome{r, err}
	}()
	select {
	case o := <-ch:
		if err := p.normalizeDeadlineErr(ctx, tctx, i, o.err); err != o.err {
			return nil, err
		}
		return o.resp, o.err
	case <-tctx.Done():
		if ctx.Err() != nil {
			return nil, fmt.Errorf("core: run %d aborted: %w", i, context.Cause(ctx))
		}
		obs.FromContext(ctx).Warn("sim run abandoned past deadline",
			"run", i, "deadline_ms", float64(p.RunTimeout.Microseconds())/1e3)
		return nil, &RunTimeoutError{Run: i, Timeout: p.RunTimeout}
	}
}

// normalizeDeadlineErr unifies the two ways a per-attempt deadline can
// surface. A cancellation-aware runner (the cache's single-flight wait,
// the cluster peer client) may notice tctx's expiry itself and return an
// error wrapping context.DeadlineExceeded through the result channel,
// racing runAttempt's own tctx.Done branch; which side wins is scheduler
// luck, so both must yield the same semantics — the retryable
// *RunTimeoutError. An error is normalized only when it is actually
// deadline-caused (wraps DeadlineExceeded while tctx is expired), the
// parent context is still live (a parent abort stays an abort), and it is
// not already typed. Everything else passes through unchanged.
func (p *Problem) normalizeDeadlineErr(ctx, tctx context.Context, i int, err error) error {
	if err == nil || !errors.Is(err, context.DeadlineExceeded) ||
		tctx.Err() == nil || ctx.Err() != nil {
		return err
	}
	var terr *RunTimeoutError
	if errors.As(err, &terr) {
		return err
	}
	obs.FromContext(ctx).Warn("sim run abandoned past deadline",
		"run", i, "deadline_ms", float64(p.RunTimeout.Microseconds())/1e3)
	return &RunTimeoutError{Run: i, Timeout: p.RunTimeout}
}

// runFaultStats counts the attempts and recovery events of one run.
type runFaultStats struct {
	attempts int
	retries  int
	panics   int
}

// wrapRunErr annotates a failed run's error with its index and, when the
// retry policy was exercised, the attempt count.
func wrapRunErr(i int, st runFaultStats, err error) error {
	if st.attempts > 1 {
		return fmt.Errorf("core: run %d failed after %d attempts: %w", i, st.attempts, err)
	}
	return fmt.Errorf("core: run %d failed: %w", i, err)
}

// runWithRetry executes one design run under the problem's retry policy:
// transient failures (injected faults, recovered panics, per-run
// timeouts) back off exponentially with jitter and retry until the
// attempt budget or the context runs out. Recovery events are counted in
// the returned stats and in the context's obs.FaultStats (when present),
// so daemons can expose them as metrics even for runs that ultimately
// fail.
func (p *Problem) runWithRetry(ctx context.Context, i int, coded []float64) (map[ResponseID]float64, runFaultStats, error) {
	pol := p.Retry.withDefaults()
	fs := obs.FaultStatsFrom(ctx)
	var st runFaultStats
	var rng *rand.Rand // lazily built: most runs never retry
	for attempt := 1; ; attempt++ {
		st.attempts = attempt
		resp, err := p.runAttempt(ctx, i, coded)
		if err == nil {
			return resp, st, nil
		}
		var perr *RunPanicError
		if errors.As(err, &perr) {
			st.panics++
			if fs != nil {
				fs.Panics.Inc()
			}
		}
		if ctx.Err() != nil || attempt >= pol.MaxAttempts || !IsTransient(err) {
			return nil, st, err
		}
		st.retries++
		if fs != nil {
			fs.Retries.Inc()
		}
		if rng == nil {
			rng = rand.New(rand.NewSource(mixSeed(pol.Seed, i)))
		}
		d := pol.delay(attempt, rng)
		obs.FromContext(ctx).Warn("sim run retrying",
			"run", i, "attempt", attempt, "max_attempts", pol.MaxAttempts,
			"backoff_ms", float64(d.Microseconds())/1e3, "err", err.Error())
		if !sleepCtx(ctx, d) {
			return nil, st, fmt.Errorf("core: run %d aborted: %w", i, context.Cause(ctx))
		}
	}
}

// RunStats summarizes the fault-recovery work one design-point run needed
// under the problem's retry policy.
type RunStats struct {
	// Attempts is the total simulation attempts made (>= 1).
	Attempts int
	// Retries counts attempts retried after transient failures.
	Retries int
	// Panics counts engine panics recovered into errors.
	Panics int
}

// RunPoint executes the single design point at index i (coded units) under
// the problem's retry policy and per-run deadline — the same semantics one
// run of RunDesignContext gets, exposed for callers that shard a design
// across processes (internal/cluster workers run leased points through
// it). The index seeds the retry jitter stream and labels errors, so a
// remote run of point i is bit-identical to the local one.
func (p *Problem) RunPoint(ctx context.Context, i int, coded []float64) (map[ResponseID]float64, RunStats, error) {
	if err := p.Validate(); err != nil {
		return nil, RunStats{}, err
	}
	resp, st, err := p.runWithRetry(ctx, i, coded)
	stats := RunStats{Attempts: st.attempts, Retries: st.retries, Panics: st.panics}
	if err != nil {
		return nil, stats, wrapRunErr(i, st, err)
	}
	return resp, stats, nil
}

// mixSeed decorrelates per-run jitter streams (splitmix64 finalizer).
func mixSeed(seed int64, run int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(run+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}
