//go:build race

package core

// raceEnabled reports whether the race detector is compiled in; timing
// assertions are skipped under it (instrumentation skews small intervals
// by an order of magnitude).
const raceEnabled = true
