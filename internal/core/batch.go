package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/doe"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/simcache"
)

// EngineBatch selects the lockstep K-point engine (sim.RunBatch) for
// design runs. Batch results are bit-identical per lane to EngineFast, so
// they share the fast engine's cache identity — see cacheEngineName.
const EngineBatch = "batch"

// cacheEngineName maps an engine selection to its content-address. The
// batch engine is an execution strategy, not a different simulator: its
// lanes are bit-identical to sim.RunFast, so its results are cached under
// the fast engine's name and the two populations of cache entries alias
// deliberately.
func cacheEngineName(name string) string {
	if name == EngineBatch {
		return EngineFast
	}
	return name
}

// BatchStats summarizes what the batch scheduler did for one design run.
type BatchStats struct {
	Points            int `json:"points"`            // design points considered
	Peeled            int `json:"cache_peeled"`      // answered by the cache before lanes launched
	Lanes             int `json:"lanes"`             // points simulated inside batches
	Chunks            int `json:"chunks"`            // sim.RunBatch invocations
	Rebuilds          int `json:"rebuilds"`          // ZOH bakes actually performed
	AmortizedRebuilds int `json:"rebuild_amortized"` // lane rebuilds answered by a shared bake
}

// maxBatchLanes caps one chunk's width. Wider batches amortize more but
// lose cancellation granularity (a chunk is abandoned whole on timeout)
// and overflow the benefit of the shared memo; 16 matches the kernel's
// sweet spot on current hardware.
const maxBatchLanes = 16

// cacheLookup and cacheInsert are the optional capabilities of a Runner
// the prepass uses to peel already-cached points out of a batch and to
// publish freshly batched results. *simcache.Cache implements both; a
// fault-injecting or otherwise opaque Runner implements neither, in which
// case the prepass neither peels nor publishes and every point flows
// through the runner as usual.
type cacheLookup interface {
	Lookup(ctx context.Context, key, engine string) (*sim.Result, bool)
}
type cacheInsert interface {
	Insert(key, engine string, res *sim.Result)
}

// prepassRunner serves results warmed by a batch prepass and delegates
// everything else — cache misses, retries of points whose lane failed —
// to the underlying runner unchanged, so the PR 4 retry/timeout/abort
// semantics of the per-point path apply verbatim.
type prepassRunner struct {
	under simcache.Runner

	mu      sync.Mutex
	results map[string]*sim.Result
}

func (r *prepassRunner) Run(ctx context.Context, engine string, fn simcache.Engine, d sim.Design, cfg sim.Config) (*sim.Result, error) {
	if key, err := simcache.Fingerprint(engine, d, cfg); err == nil {
		r.mu.Lock()
		res := r.results[key]
		r.mu.Unlock()
		if res != nil {
			return res, nil
		}
	}
	return r.under.Run(ctx, engine, fn, d, cfg)
}

// batchPoint is one design point resolved to its concrete simulation
// request plus its cache key.
type batchPoint struct {
	key string
	d   sim.Design
	cfg sim.Config
}

// PrewarmBatch runs the batch prepass for a set of coded design points:
// it resolves each point to its concrete (design, config) request, peels
// the ones the cache already holds, partitions the rest into K-lane
// chunks grouped by identical config (lanes must share the time base and
// excitation), and steps each chunk through sim.RunBatchStats. The
// returned Problem copy answers those points from the warmed results;
// every point the prepass could not handle — build errors, lane errors,
// unfingerprintable requests, a custom Engine — falls through to the
// underlying runner with full per-point retry/timeout semantics.
//
// The prepass is strictly best-effort: it can only pre-pay work the
// per-point path would do anyway, never fail a run on its own.
func (p *Problem) PrewarmBatch(ctx context.Context, points [][]float64, workers int) (*Problem, *BatchStats) {
	stats := &BatchStats{Points: len(points)}
	if p.Engine != nil {
		// A custom engine is not sim.RunFast; batching would change results.
		return p, stats
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	lg := obs.FromContext(ctx)
	runner := p.Runner
	if runner == nil {
		runner = DefaultRunner
	}
	warmed := &prepassRunner{under: runner, results: make(map[string]*sim.Result)}

	// Resolve points, dedup by cache key, and peel what the cache holds.
	lookup, _ := runner.(cacheLookup)
	insert, _ := runner.(cacheInsert)
	seen := make(map[string]bool, len(points))
	byCfg := make(map[string][]batchPoint)
	for _, coded := range points {
		natural, err := doe.DecodeRun(p.Factors, coded)
		if err != nil {
			continue
		}
		sc, err := p.Build(natural)
		if err != nil {
			continue
		}
		cfg := sim.Config{Horizon: p.Horizon, DtSlow: p.DtSlow, Source: sc.Source}
		key, err := simcache.Fingerprint(EngineFast, sc.Design, cfg)
		if err != nil {
			continue // uncacheable request: leave it to the direct path
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		if lookup != nil {
			if res, ok := lookup.Lookup(ctx, key, EngineFast); ok {
				warmed.results[key] = res
				stats.Peeled++
				continue
			}
		}
		cfgKey, err := simcache.Fingerprint(cfg)
		if err != nil {
			continue
		}
		byCfg[cfgKey] = append(byCfg[cfgKey], batchPoint{key: key, d: sc.Design, cfg: cfg})
	}

	// Deterministic chunking: sorted config groups, stable point order
	// within each, chunk width balancing lane occupancy against workers.
	cfgKeys := make([]string, 0, len(byCfg))
	total := 0
	for k, pts := range byCfg {
		cfgKeys = append(cfgKeys, k)
		total += len(pts)
	}
	sort.Strings(cfgKeys)
	if total == 0 {
		pp := *p
		pp.Runner = warmed
		return &pp, stats
	}
	width := (total + workers - 1) / workers
	if width < 1 {
		width = 1
	}
	if width > maxBatchLanes {
		width = maxBatchLanes
	}
	type chunk struct {
		pts []batchPoint
		cfg sim.Config
	}
	var chunks []chunk
	for _, ck := range cfgKeys {
		pts := byCfg[ck]
		for len(pts) > 0 {
			n := width
			if n > len(pts) {
				n = len(pts)
			}
			chunks = append(chunks, chunk{pts: pts[:n], cfg: pts[0].cfg})
			pts = pts[n:]
		}
	}
	stats.Chunks = len(chunks)

	// Run chunks across the worker pool. Each chunk is guarded the way the
	// per-point path guards a run: panics are contained (the points simply
	// fall through to the sequential path, whose own guard converts a
	// repeat panic into a typed error), and when the problem carries a
	// per-run deadline the chunk gets lanes×RunTimeout before it is
	// abandoned — mirroring runAttempt, the goroutine of an abandoned
	// chunk is left to finish in the background and its results discarded.
	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		next     int
		parallel = workers
	)
	if parallel > len(chunks) {
		parallel = len(chunks)
	}
	runChunk := func(c chunk) (results []*sim.Result, bs sim.BatchStats, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("core: batch chunk panicked: %v", r)
			}
		}()
		designs := make([]sim.Design, len(c.pts))
		for i, pt := range c.pts {
			designs[i] = pt.d
		}
		results, bs, _ = sim.RunBatchStats(designs, c.cfg)
		return results, bs, nil
	}
	execChunk := func(c chunk) {
		type out struct {
			results []*sim.Result
			bs      sim.BatchStats
			err     error
		}
		ch := make(chan out, 1)
		go func() {
			results, bs, err := runChunk(c)
			ch <- out{results, bs, err}
		}()
		var deadline <-chan time.Time
		if p.RunTimeout > 0 {
			tm := time.NewTimer(time.Duration(len(c.pts)) * p.RunTimeout)
			defer tm.Stop()
			deadline = tm.C
		}
		select {
		case o := <-ch:
			if o.err != nil {
				lg.Warn("batch chunk failed", "lanes", len(c.pts), "err", o.err.Error())
				return
			}
			mu.Lock()
			stats.Lanes += len(c.pts)
			stats.Rebuilds += o.bs.Rebuilds
			stats.AmortizedRebuilds += o.bs.AmortizedRebuilds
			for i, res := range o.results {
				if res == nil {
					continue // lane error: the point retries sequentially
				}
				warmed.results[c.pts[i].key] = res
			}
			mu.Unlock()
			if insert != nil {
				for i, res := range o.results {
					if res != nil {
						insert.Insert(c.pts[i].key, EngineFast, res)
					}
				}
			}
		case <-deadline:
			lg.Warn("batch chunk abandoned past deadline", "lanes", len(c.pts))
		case <-ctx.Done():
		}
	}
	wg.Add(parallel)
	for w := 0; w < parallel; w++ {
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(chunks) {
					return
				}
				execChunk(chunks[i])
			}
		}()
	}
	wg.Wait()

	lg.Debug("batch prepass finished", "points", stats.Points, "peeled", stats.Peeled,
		"lanes", stats.Lanes, "chunks", stats.Chunks,
		"rebuilds", stats.Rebuilds, "amortized", stats.AmortizedRebuilds)
	pp := *p
	pp.Runner = warmed
	return &pp, stats
}
