package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/doe"
	"repro/internal/rsm"
	"repro/internal/sim"
	"repro/internal/simcache"
)

// seamProblem is a problem whose rounds are answered analytically through
// the RunDesign seam, so the adaptive loop's control flow is tested without
// any simulator in the way (exactly how the cluster coordinator plugs in).
func seamProblem(k int) *Problem {
	factors := make([]doe.Factor, k)
	for i := range factors {
		factors[i] = doe.Factor{Name: fmt.Sprintf("f%d", i), Min: -1, Max: 1}
	}
	return &Problem{
		Factors:   factors,
		Responses: []ResponseID{RespHarvestedPower, RespNetMargin},
		Horizon:   1,
		Build: func(nat []float64) (Scenario, error) {
			return Scenario{}, fmt.Errorf("seam tests must not reach the simulator")
		},
	}
}

// analyticSeam answers each round from the given truth functions and counts
// rounds and points.
func analyticSeam(p *Problem, truth map[ResponseID]func([]float64) float64, rounds *[]string, points *int) func(context.Context, *doe.Design) (*Dataset, error) {
	return func(_ context.Context, d *doe.Design) (*Dataset, error) {
		if rounds != nil {
			*rounds = append(*rounds, d.Name)
		}
		if points != nil {
			*points += d.N()
		}
		ds := &Dataset{Design: d, Y: make(map[ResponseID][]float64, len(truth)), SimWork: time.Duration(d.N())}
		for _, id := range p.Responses {
			col := make([]float64, d.N())
			for i, run := range d.Runs {
				col[i] = truth[id](run)
			}
			ds.Y[id] = col
		}
		return ds, nil
	}
}

// quadTruth is exactly representable by the full-quadratic model, so lack of
// fit vanishes once the design identifies it and the loop must stop early.
func quadTruth(x []float64) float64 {
	s := 1.0
	for j, v := range x {
		s += float64(j+1)*0.5*v - 0.3*v*v
		if j > 0 {
			s += 0.2 * v * x[j-1]
		}
	}
	return s
}

// spikyTruth is far outside the quadratic basis: lack of fit never clears.
func spikyTruth(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += math.Sin(9 * v)
	}
	return s
}

func TestAdaptiveConvergesOnQuadraticTruth(t *testing.T) {
	p := seamProblem(3)
	truth := map[ResponseID]func([]float64) float64{
		RespHarvestedPower: quadTruth,
		RespNetMargin:      func(x []float64) float64 { return 2 - quadTruth(x) },
	}
	var rounds []string
	var points int
	res, err := p.RunAdaptive(context.Background(), AdaptiveConfig{
		InitialPoints: 12, CenterReplicates: 2, BatchPoints: 3, MaxPoints: 60, Seed: 7,
		RunDesign: analyticSeam(p, truth, &rounds, &points),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.StopReason != StopConverged {
		t.Fatalf("quadratic truth must converge, got %q after %d points", res.Stats.StopReason, res.Stats.PointsSimulated)
	}
	if n := res.Stats.PointsSimulated; n > 26 {
		t.Fatalf("an exactly-quadratic truth must stop near the minimum budget, used %d points", n)
	}
	if res.Stats.PointsSimulated != points {
		t.Fatalf("stats claim %d points, seam saw %d", res.Stats.PointsSimulated, points)
	}
	if res.Stats.PointsSimulated != res.Dataset.Design.N() {
		t.Fatalf("dataset has %d runs, stats claim %d", res.Dataset.Design.N(), res.Stats.PointsSimulated)
	}
	// Round names and per-round stats must line up for JobView consumers.
	for i, name := range rounds {
		if want := fmt.Sprintf("adaptive-r%d", i); name != want {
			t.Fatalf("round %d design named %q, want %q", i, name, want)
		}
	}
	if len(res.Stats.Rounds) != len(rounds) {
		t.Fatalf("%d round stats for %d executed rounds", len(res.Stats.Rounds), len(rounds))
	}
	sum := 0
	for i, r := range res.Stats.Rounds {
		if r.Round != i {
			t.Fatalf("round index %d at position %d", r.Round, i)
		}
		sum += r.Added
		if r.Points != sum {
			t.Fatalf("round %d cumulative points %d, want %d", i, r.Points, sum)
		}
	}
	if sum != res.Stats.PointsSimulated {
		t.Fatalf("round Added sums to %d, stats claim %d", sum, res.Stats.PointsSimulated)
	}
	// The fit must reproduce the analytic truth (it is inside the basis).
	for _, x := range [][]float64{{0.3, -0.7, 0.1}, {-1, 1, -1}, {0.25, 0.25, -0.5}} {
		got, err := res.Surfaces.Predict(RespHarvestedPower, x)
		if err != nil {
			t.Fatal(err)
		}
		if want := quadTruth(x); math.Abs(got-want) > 1e-6 {
			t.Fatalf("surface predicts %v at %v, truth is %v", got, x, want)
		}
	}
	// Savings bookkeeping against the fixed reference.
	if res.Stats.FixedPoints != FixedEquivalentPoints(3) {
		t.Fatalf("fixed reference %d, want %d", res.Stats.FixedPoints, FixedEquivalentPoints(3))
	}
	if res.Stats.PointsSkipped != res.Stats.FixedPoints-res.Stats.PointsSimulated {
		t.Fatalf("skipped %d, want %d", res.Stats.PointsSkipped, res.Stats.FixedPoints-res.Stats.PointsSimulated)
	}
}

func TestAdaptiveStopsAtMaxPoints(t *testing.T) {
	p := seamProblem(3)
	truth := map[ResponseID]func([]float64) float64{
		RespHarvestedPower: spikyTruth,
		RespNetMargin:      func(x []float64) float64 { return spikyTruth(x) + x[0] },
	}
	res, err := p.RunAdaptive(context.Background(), AdaptiveConfig{
		InitialPoints: 12, CenterReplicates: 2, BatchPoints: 6, MinPoints: 23, MaxPoints: 23, Seed: 7,
		RunDesign: analyticSeam(p, truth, nil, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.StopReason != StopMaxPoints {
		t.Fatalf("spiky truth must exhaust the budget, got %q", res.Stats.StopReason)
	}
	// The final round is clipped so the budget is hit exactly, never passed.
	if res.Stats.PointsSimulated != 23 {
		t.Fatalf("budget of 23 must be hit exactly, simulated %d", res.Stats.PointsSimulated)
	}
	// The k=3 fixed reference (17 runs) is below this budget, so the
	// skipped count clamps at zero rather than going negative.
	if res.Stats.PointsSkipped != 0 {
		t.Fatalf("skipped must clamp at 0 when adaptive costs more, got %d", res.Stats.PointsSkipped)
	}
}

func TestAdaptiveDeterministicAndOnLattice(t *testing.T) {
	truth := map[ResponseID]func([]float64) float64{
		RespHarvestedPower: spikyTruth,
		RespNetMargin:      quadTruth,
	}
	run := func(seed int64) *AdaptiveResult {
		p := seamProblem(3)
		res, err := p.RunAdaptive(context.Background(), AdaptiveConfig{
			InitialPoints: 12, CenterReplicates: 2, BatchPoints: 3, MaxPoints: 30, Seed: seed,
			RunDesign: analyticSeam(p, truth, nil, nil),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(3), run(3)
	if a.Stats.PointsSimulated != b.Stats.PointsSimulated {
		t.Fatalf("same seed, different budgets: %d vs %d", a.Stats.PointsSimulated, b.Stats.PointsSimulated)
	}
	for i, run := range a.Dataset.Design.Runs {
		for j, v := range run {
			if math.Float64bits(v) != math.Float64bits(b.Dataset.Design.Runs[i][j]) {
				t.Fatalf("run %d differs between identical seeds", i)
			}
		}
	}
	for j := range a.Surfaces.Fits[RespNetMargin].Coef {
		if math.Float64bits(a.Surfaces.Fits[RespNetMargin].Coef[j]) != math.Float64bits(b.Surfaces.Fits[RespNetMargin].Coef[j]) {
			t.Fatal("coefficients differ between identical seeds")
		}
	}
	// Every selected point sits on the quantized candidate lattice, so
	// optimizer revisits and reruns hit the simcache.
	for i, run := range a.Dataset.Design.Runs {
		for _, v := range run {
			if q := math.Round((v+1)/0.5) * 0.5; math.Abs(v-(q-1)) > 1e-12 {
				t.Fatalf("run %d coordinate %v is off the default 5-level lattice", i, v)
			}
		}
	}
}

func TestAdaptivePartialDatasetOnRoundFailure(t *testing.T) {
	p := seamProblem(3)
	truth := map[ResponseID]func([]float64) float64{
		RespHarvestedPower: spikyTruth,
		RespNetMargin:      quadTruth,
	}
	inner := analyticSeam(p, truth, nil, nil)
	calls := 0
	res, err := p.RunAdaptive(context.Background(), AdaptiveConfig{
		InitialPoints: 12, CenterReplicates: 2, BatchPoints: 3, MinPoints: 30, MaxPoints: 40, Seed: 7,
		RunDesign: func(ctx context.Context, d *doe.Design) (*Dataset, error) {
			calls++
			if calls == 3 {
				// A mid-round failure still hands back whatever stats the
				// round produced, like RunDesignContext does.
				return &Dataset{Design: &doe.Design{}, SimWork: time.Millisecond, Retries: 2}, errors.New("round blew up")
			}
			return inner(ctx, d)
		},
	})
	if err == nil || !strings.Contains(err.Error(), "round blew up") {
		t.Fatalf("round failure must surface, got %v", err)
	}
	if res == nil || res.Dataset == nil {
		t.Fatal("failed build must still return the partial dataset")
	}
	if res.Dataset.Y != nil {
		t.Fatal("partial dataset must be Y-less, like a failed fixed build")
	}
	if res.Dataset.Retries != 2 {
		t.Fatalf("failed round's fault stats must be merged, got %d retries", res.Dataset.Retries)
	}
	if res.Surfaces != nil {
		t.Fatal("no surfaces on failure")
	}
	if len(res.Stats.Rounds) != 2 {
		t.Fatalf("the two completed rounds must keep their stats, got %d", len(res.Stats.Rounds))
	}
}

func TestAdaptiveContextCancelMidBuild(t *testing.T) {
	p := seamProblem(3)
	truth := map[ResponseID]func([]float64) float64{
		RespHarvestedPower: spikyTruth,
		RespNetMargin:      quadTruth,
	}
	inner := analyticSeam(p, truth, nil, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	calls := 0
	_, err := p.RunAdaptive(ctx, AdaptiveConfig{
		InitialPoints: 12, CenterReplicates: 2, BatchPoints: 3, MaxPoints: 40, Seed: 7,
		RunDesign: func(ctx context.Context, d *doe.Design) (*Dataset, error) {
			calls++
			if calls == 2 {
				cancel()
				return nil, ctx.Err()
			}
			return inner(ctx, d)
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancellation must propagate, got %v", err)
	}
}

func TestAdaptiveValidation(t *testing.T) {
	// Single-factor problems have no useful D-optimal augmentation.
	p1 := seamProblem(1)
	if _, err := p1.RunAdaptive(context.Background(), AdaptiveConfig{}); err == nil {
		t.Fatal("k=1 must be rejected")
	}
	// Model width must match the problem.
	p := seamProblem(3)
	if _, err := p.RunAdaptive(context.Background(), AdaptiveConfig{Model: rsm.FullQuadratic(2)}); err == nil {
		t.Fatal("model/problem factor mismatch must be rejected")
	}
	// The candidate lattice must be able to seat the initial design.
	if _, err := p.RunAdaptive(context.Background(), AdaptiveConfig{CandidateLevels: 2, InitialPoints: 20}); err == nil || !strings.Contains(err.Error(), "candidate lattice") {
		t.Fatalf("oversized initial design must name the lattice, got %v", err)
	}
}

// flakySimRunner delegates to a real runner but fails transiently every
// few calls — faults landing mid-round, which the per-round pool must
// absorb through its retry budget.
type flakySimRunner struct {
	inner simcache.Runner
	calls atomic.Int64
	every int64
	fails atomic.Int64
}

func (r *flakySimRunner) Run(ctx context.Context, engine string, fn simcache.Engine, d sim.Design, cfg sim.Config) (*sim.Result, error) {
	if r.calls.Add(1)%r.every == 0 {
		r.fails.Add(1)
		return nil, transientErr{}
	}
	return r.inner.Run(ctx, engine, fn, d, cfg)
}

// TestAdaptiveChaosFaultsMidRound is the end-to-end resilience gate for the
// sequential strategy: a real four-factor problem, real simulations, and a
// runner that keeps failing transiently mid-round. The build must converge
// through the ordinary retry machinery with the faults visible in the
// dataset's stats.
func TestAdaptiveChaosFaultsMidRound(t *testing.T) {
	p := StandardProblem(1.0, 0.5)
	flaky := &flakySimRunner{inner: simcache.New(simcache.Options{}), every: 7}
	p.Runner = flaky
	p.Retry.MaxAttempts = 4
	p.Retry.BaseDelay = time.Millisecond
	p.Retry.MaxDelay = 2 * time.Millisecond

	res, err := p.RunAdaptive(context.Background(), AdaptiveConfig{Seed: 4, Workers: 4})
	if err != nil {
		t.Fatalf("adaptive build must ride out transient mid-round faults: %v", err)
	}
	if flaky.fails.Load() == 0 {
		t.Fatal("test impotent: no faults were injected")
	}
	if res.Dataset.Retries == 0 {
		t.Fatal("retries must be visible in the cumulative dataset")
	}
	if res.Stats.StopReason != StopConverged && res.Stats.StopReason != StopMaxPoints {
		t.Fatalf("unexpected stop reason %q", res.Stats.StopReason)
	}
	if res.Stats.PointsSimulated > FixedEquivalentPoints(4) {
		t.Fatalf("adaptive build must never cost more than the fixed reference: %d > %d",
			res.Stats.PointsSimulated, FixedEquivalentPoints(4))
	}
	if res.Surfaces == nil {
		t.Fatal("converged build must carry surfaces")
	}
	for _, id := range p.Responses {
		if len(res.Dataset.Y[id]) != res.Stats.PointsSimulated {
			t.Fatalf("response %q has %d values for %d points", id, len(res.Dataset.Y[id]), res.Stats.PointsSimulated)
		}
	}
}
