package explore

import (
	"math"
	"testing"
)

func quadEval(x []float64) float64 { return 5 - x[0]*x[0] - 2*x[1]*x[1] + x[0] }

func TestSweep1D(t *testing.T) {
	pts, err := Sweep1D(quadEval, []float64{0, 0}, 0, 11, func(c float64) float64 { return 10 + 5*c })
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 11 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Coded != -1 || pts[10].Coded != 1 {
		t.Fatal("sweep endpoints wrong")
	}
	if pts[0].Natural != 5 || pts[10].Natural != 15 {
		t.Fatalf("natural units wrong: %v %v", pts[0].Natural, pts[10].Natural)
	}
	// Maximum of 5 − c² + c is at c = 0.5.
	best := pts[0]
	for _, p := range pts {
		if p.Y > best.Y {
			best = p
		}
	}
	if math.Abs(best.Coded-0.6) > 0.21 {
		t.Fatalf("sweep max at %v, want ≈0.5", best.Coded)
	}
}

func TestSweep1DValidation(t *testing.T) {
	if _, err := Sweep1D(quadEval, []float64{0, 0}, 5, 10, nil); err == nil {
		t.Fatal("bad factor index must error")
	}
	if _, err := Sweep1D(quadEval, []float64{0, 0}, 0, 1, nil); err == nil {
		t.Fatal("n=1 must error")
	}
}

func TestSweepDoesNotMutateBase(t *testing.T) {
	base := []float64{0.5, 0.5}
	if _, err := Sweep1D(quadEval, base, 0, 5, nil); err != nil {
		t.Fatal(err)
	}
	if base[0] != 0.5 {
		t.Fatal("base mutated")
	}
}

func TestSurface2D(t *testing.T) {
	g, err := Surface2D(quadEval, []float64{0, 0}, 0, 1, 21)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Z) != 21 || len(g.Z[0]) != 21 {
		t.Fatal("grid dims wrong")
	}
	mn, mx := g.MinMax()
	if mn >= mx {
		t.Fatalf("MinMax broken: %v %v", mn, mx)
	}
	// Analytic max of 5 − x² + x − 2y² on the grid: x=0.5, y=0 → 5.25.
	if math.Abs(mx-5.25) > 0.05 {
		t.Fatalf("grid max = %v, want ≈5.25", mx)
	}
	// Grid values consistent with direct evaluation.
	if got := g.Z[0][0]; got != quadEval([]float64{-1, -1}) {
		t.Fatalf("corner value %v", got)
	}
}

func TestSurface2DValidation(t *testing.T) {
	if _, err := Surface2D(quadEval, []float64{0, 0}, 0, 0, 5); err == nil {
		t.Fatal("identical factors must error")
	}
	if _, err := Surface2D(quadEval, []float64{0, 0}, 0, 3, 5); err == nil {
		t.Fatal("bad factor index must error")
	}
	if _, err := Surface2D(quadEval, []float64{0, 0}, 0, 1, 1); err == nil {
		t.Fatal("n=1 must error")
	}
}

func TestEvaluateAll(t *testing.T) {
	pts := [][]float64{{0, 0}, {1, 1}}
	objs := []Evaluator{
		func(x []float64) float64 { return x[0] + x[1] },
		func(x []float64) float64 { return x[0] - x[1] },
	}
	cands := EvaluateAll(pts, objs)
	if len(cands) != 2 {
		t.Fatal("candidate count wrong")
	}
	if cands[1].Objectives[0] != 2 || cands[1].Objectives[1] != 0 {
		t.Fatalf("objectives = %v", cands[1].Objectives)
	}
	// Points are copied.
	cands[0].X[0] = 99
	if pts[0][0] == 99 {
		t.Fatal("EvaluateAll must copy points")
	}
}

func TestParetoFront(t *testing.T) {
	cands := []Candidate{
		{X: []float64{0}, Objectives: []float64{1, 5}}, // on front
		{X: []float64{1}, Objectives: []float64{3, 3}}, // on front
		{X: []float64{2}, Objectives: []float64{5, 1}}, // on front
		{X: []float64{3}, Objectives: []float64{2, 2}}, // dominated by (3,3)
		{X: []float64{4}, Objectives: []float64{1, 4}}, // dominated by (1,5)
	}
	front := ParetoFront(cands)
	if len(front) != 3 {
		t.Fatalf("front size = %d, want 3", len(front))
	}
	for _, c := range front {
		if c.X[0] == 3 || c.X[0] == 4 {
			t.Fatalf("dominated point %v on front", c.X)
		}
	}
}

func TestParetoFrontTies(t *testing.T) {
	// Equal candidates do not dominate each other: both stay.
	cands := []Candidate{
		{X: []float64{0}, Objectives: []float64{1, 1}},
		{X: []float64{1}, Objectives: []float64{1, 1}},
	}
	if got := len(ParetoFront(cands)); got != 2 {
		t.Fatalf("tied candidates on front = %d, want 2", got)
	}
}

func TestParetoEmptyAndSingle(t *testing.T) {
	if ParetoFront(nil) != nil {
		t.Fatal("empty input must give empty front")
	}
	one := []Candidate{{X: []float64{0}, Objectives: []float64{1}}}
	if len(ParetoFront(one)) != 1 {
		t.Fatal("single candidate is trivially on the front")
	}
}

func TestConstraintsAndFilter(t *testing.T) {
	cands := []Candidate{
		{X: []float64{0}, Objectives: []float64{1, 10}},
		{X: []float64{1}, Objectives: []float64{5, 20}},
		{X: []float64{2}, Objectives: []float64{9, 30}},
	}
	got := Filter(cands, AtLeast(0, 4), AtMost(1, 25))
	if len(got) != 1 || got[0].X[0] != 1 {
		t.Fatalf("filtered = %v", got)
	}
	// Out-of-range objective index fails closed.
	if len(Filter(cands, AtLeast(7, 0))) != 0 {
		t.Fatal("bad index must reject")
	}
}

func TestBestBy(t *testing.T) {
	cands := []Candidate{
		{X: []float64{0}, Objectives: []float64{1}},
		{X: []float64{1}, Objectives: []float64{3}},
		{X: []float64{2}, Objectives: []float64{2}},
	}
	best, ok := BestBy(cands, 0)
	if !ok || best.X[0] != 1 {
		t.Fatalf("best = %v ok=%v", best, ok)
	}
	if _, ok := BestBy(nil, 0); ok {
		t.Fatal("empty set must report !ok")
	}
}
