// Package explore is the designer-facing exploration toolkit the paper
// promises: once the response surfaces are fitted, it answers "what happens
// if I change this parameter" questions practically instantly — 1-D sweeps,
// 2-D contour grids, constrained filtering, and multi-objective Pareto
// fronts over any set of fitted surfaces.
//
// Everything here operates on plain evaluator functions, so the same code
// explores a fitted RSM (fast) or the full simulator (slow) — the CPU-time
// contrast is reproduction table R-T4.
package explore

import (
	"fmt"
	"math"
)

// Evaluator computes one response at a coded design point.
type Evaluator func(x []float64) float64

// SweepPoint is one sample of a 1-D sweep.
type SweepPoint struct {
	Coded   float64 // swept factor's coded level
	Natural float64 // same in natural units (if a factor range was given)
	Y       float64 // response
}

// Sweep1D sweeps factor j of the k-dimensional design space from −1 to +1
// in n points, holding the remaining coordinates at base. If decode is
// non-nil it converts the coded level to natural units for reporting.
func Sweep1D(eval Evaluator, base []float64, j, n int, decode func(float64) float64) ([]SweepPoint, error) {
	if j < 0 || j >= len(base) {
		return nil, fmt.Errorf("explore: factor %d outside 0..%d", j, len(base)-1)
	}
	if n < 2 {
		return nil, fmt.Errorf("explore: need ≥2 sweep points, got %d", n)
	}
	pts := make([]SweepPoint, n)
	x := append([]float64(nil), base...)
	for i := 0; i < n; i++ {
		c := -1 + 2*float64(i)/float64(n-1)
		x[j] = c
		p := SweepPoint{Coded: c, Y: eval(x)}
		if decode != nil {
			p.Natural = decode(c)
		}
		pts[i] = p
	}
	return pts, nil
}

// Grid2D is a response sampled on a 2-D slice of the design space.
type Grid2D struct {
	XLevels []float64   // coded levels of the first swept factor
	YLevels []float64   // coded levels of the second swept factor
	Z       [][]float64 // Z[i][j] = response at (XLevels[i], YLevels[j])
}

// Surface2D samples the response on an n×n grid over factors jx and jy,
// holding the rest at base — the data behind the paper's response-surface
// contour figures.
func Surface2D(eval Evaluator, base []float64, jx, jy, n int) (*Grid2D, error) {
	if jx == jy {
		return nil, fmt.Errorf("explore: need two distinct factors, got %d twice", jx)
	}
	for _, j := range []int{jx, jy} {
		if j < 0 || j >= len(base) {
			return nil, fmt.Errorf("explore: factor %d outside 0..%d", j, len(base)-1)
		}
	}
	if n < 2 {
		return nil, fmt.Errorf("explore: need ≥2 grid points, got %d", n)
	}
	g := &Grid2D{
		XLevels: make([]float64, n),
		YLevels: make([]float64, n),
		Z:       make([][]float64, n),
	}
	for i := 0; i < n; i++ {
		g.XLevels[i] = -1 + 2*float64(i)/float64(n-1)
		g.YLevels[i] = g.XLevels[i]
	}
	x := append([]float64(nil), base...)
	for i := 0; i < n; i++ {
		g.Z[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			x[jx] = g.XLevels[i]
			x[jy] = g.YLevels[j]
			g.Z[i][j] = eval(x)
		}
	}
	return g, nil
}

// MinMax returns the smallest and largest response on the grid.
func (g *Grid2D) MinMax() (mn, mx float64) {
	mn, mx = math.Inf(1), math.Inf(-1)
	for _, row := range g.Z {
		for _, v := range row {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
	}
	return mn, mx
}

// Candidate is a design point with its evaluated objectives.
type Candidate struct {
	X          []float64 // coded design point
	Objectives []float64 // one value per objective
}

// EvaluateAll evaluates every objective at every point.
func EvaluateAll(points [][]float64, objectives []Evaluator) []Candidate {
	out := make([]Candidate, len(points))
	for i, x := range points {
		obj := make([]float64, len(objectives))
		for j, f := range objectives {
			obj[j] = f(x)
		}
		out[i] = Candidate{X: append([]float64(nil), x...), Objectives: obj}
	}
	return out
}

// dominates reports whether a dominates b for maximization of every
// objective: no worse everywhere and strictly better somewhere.
func dominates(a, b Candidate) bool {
	strictly := false
	for i := range a.Objectives {
		if a.Objectives[i] < b.Objectives[i] {
			return false
		}
		if a.Objectives[i] > b.Objectives[i] {
			strictly = true
		}
	}
	return strictly
}

// ParetoFront returns the non-dominated subset of candidates, treating
// every objective as maximized (negate a minimized objective first). The
// result preserves input order.
func ParetoFront(cands []Candidate) []Candidate {
	var front []Candidate
	for i, c := range cands {
		dominated := false
		for j, other := range cands {
			if i == j {
				continue
			}
			if dominates(other, c) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, c)
		}
	}
	return front
}

// Constraint is a feasibility predicate over a design point and its
// objective values.
type Constraint func(c Candidate) bool

// AtLeast returns a constraint requiring objective i ≥ v.
func AtLeast(i int, v float64) Constraint {
	return func(c Candidate) bool { return i < len(c.Objectives) && c.Objectives[i] >= v }
}

// AtMost returns a constraint requiring objective i ≤ v.
func AtMost(i int, v float64) Constraint {
	return func(c Candidate) bool { return i < len(c.Objectives) && c.Objectives[i] <= v }
}

// Filter returns the candidates satisfying every constraint.
func Filter(cands []Candidate, constraints ...Constraint) []Candidate {
	var out []Candidate
	for _, c := range cands {
		ok := true
		for _, ct := range constraints {
			if !ct(c) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, c)
		}
	}
	return out
}

// BestBy returns the candidate maximizing objective i, or false when the
// set is empty.
func BestBy(cands []Candidate, i int) (Candidate, bool) {
	if len(cands) == 0 {
		return Candidate{}, false
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if i < len(c.Objectives) && c.Objectives[i] > best.Objectives[i] {
			best = c
		}
	}
	return best, true
}
