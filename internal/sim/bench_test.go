package sim

import (
	"testing"

	"repro/internal/tuner"
	"repro/internal/vibration"
)

func benchSource(d Design) vibration.Source {
	return vibration.Sine{Amplitude: 0.6, Freq: d.Harv.ResonantFreq(d.Harv.GapMax)}
}

// BenchmarkRunFast measures one second of simulated time on the fast
// linearized state-space engine (the unit of cost for every DoE run).
func BenchmarkRunFast(b *testing.B) {
	d := DefaultDesign()
	cfg := Config{Horizon: 1, Source: benchSource(d)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunFast(d, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunReference measures the same second on the Newton-Raphson
// reference engine — the denominator of the paper's speedup claim.
func BenchmarkRunReference(b *testing.B) {
	d := DefaultDesign()
	cfg := Config{Horizon: 1, Source: benchSource(d)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunReference(d, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunFastTuned adds the tuning controller (estimator + actuator +
// occasional state-space rebuilds).
func BenchmarkRunFastTuned(b *testing.B) {
	d := DefaultDesign()
	tc := tuner.DefaultConfig()
	tc.Interval = 0.2
	d.Tuner = &tc
	cfg := Config{Horizon: 1, Source: benchSource(d)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunFast(d, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
