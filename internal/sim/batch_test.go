package sim

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/node"
	"repro/internal/tuner"
	"repro/internal/vibration"
)

// slowSideVariants derives K designs from base that differ only on the
// slow side (reporting period, store threshold, initial charge), so every
// lane lands in one model group and the batch's rebuild amortization is
// exercised while each lane still traces a distinct trajectory.
func slowSideVariants(base Design, k int) []Design {
	designs := make([]Design, k)
	for i := range designs {
		d := base
		d.Node.Period = base.Node.Period + 0.5*float64(i)
		d.Policy = node.ThresholdPolicy{VThreshold: 3.0 + 0.05*float64(i%3)}
		if base.InitialStoreV > 0.2 {
			d.InitialStoreV = base.InitialStoreV - 0.05*float64(i%2)
		}
		designs[i] = d
	}
	return designs
}

// compareLane checks a batch lane against its solo RunFast twin, including
// the rebuild counters compareResults leaves out: a batch lane must report
// the counters of a lane-private memo even though the work was amortized.
func compareLane(t *testing.T, name string, want, got *Result) {
	t.Helper()
	compareResults(t, name, want, got)
	if want.Rebuilds != got.Rebuilds || want.RebuildHits != got.RebuildHits {
		t.Errorf("%s: rebuild counters diverged: solo %d/%d vs batch %d/%d",
			name, want.Rebuilds, want.RebuildHits, got.Rebuilds, got.RebuildHits)
	}
}

// TestRunBatchMatchesRunFastBitwise is the batch engine's half of the
// equivalence suite: across the T1/T6 grids and the tuning transients,
// every lane of a 4-wide batch must be bit-identical to running that
// design alone through RunFast.
func TestRunBatchMatchesRunFastBitwise(t *testing.T) {
	for _, tc := range equivalenceGrid(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			designs := slowSideVariants(tc.d, 4)
			got, stats, err := RunBatchStats(designs, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Lanes != len(designs) || stats.Groups != 1 {
				t.Fatalf("stats = %+v, want %d lanes in 1 group", stats, len(designs))
			}
			for i, d := range designs {
				want, err := RunFast(d, tc.cfg)
				if err != nil {
					t.Fatal(err)
				}
				compareLane(t, fmt.Sprintf("%s/lane%d", tc.name, i), want, got[i])
			}
		})
	}
}

// TestRunBatchAmortizesRebuilds pins the batch engine's reason to exist:
// tuned lanes sharing a model group must perform fewer actual ZOH bakes
// than the sum of their as-if-alone rebuild counts, with the difference
// accounted as amortized rebuilds.
func TestRunBatchAmortizesRebuilds(t *testing.T) {
	base := DefaultDesign()
	base.InitialStoreV = 3.5
	tc := tuner.DefaultConfig()
	tc.Interval = 1
	tc.EstimatorWin = 0.5
	tc.ActuatorSpeed = 2e-3
	base.Tuner = &tc
	stepped, err := vibration.NewSteppedSine(0.6, []vibration.FreqStep{
		{At: 0, Freq: 70}, {At: 8, Freq: 50}, {At: 16, Freq: 70},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Horizon: 24, Source: stepped}

	designs := slowSideVariants(base, 6)
	results, stats, err := RunBatchStats(designs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	alone := 0
	for _, r := range results {
		alone += r.Rebuilds
	}
	if alone == 0 {
		t.Fatal("tuning transient produced no rebuilds; workload is not exercising the memo")
	}
	if stats.Rebuilds >= alone {
		t.Fatalf("batch performed %d bakes, no amortization vs %d as-if-alone rebuilds", stats.Rebuilds, alone)
	}
	if stats.AmortizedRebuilds == 0 {
		t.Fatalf("stats = %+v: amortized rebuilds not accounted", stats)
	}
}

// TestRunBatchMixedGroups checks that lanes with different harvesters are
// partitioned into separate model groups and still come out bit-identical.
func TestRunBatchMixedGroups(t *testing.T) {
	a := DefaultDesign()
	b := DefaultDesign()
	b.Harv.Mass *= 1.1 // different fast dynamics → own group
	src := vibration.Sine{Amplitude: 0.6, Freq: a.Harv.ResonantFreq(a.Harv.GapMax)}
	cfg := Config{Horizon: 2, Source: src}

	designs := []Design{a, b, a, b}
	got, stats, err := RunBatchStats(designs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Groups != 2 || stats.Lanes != 4 {
		t.Fatalf("stats = %+v, want 4 lanes in 2 groups", stats)
	}
	for i, d := range designs {
		want, err := RunFast(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		compareLane(t, fmt.Sprintf("lane%d", i), want, got[i])
	}
}

// TestRunBatchFirstLaneErrors: an invalid design in lane 0 must drop out
// at setup without disturbing the remaining lanes.
func TestRunBatchFirstLaneErrors(t *testing.T) {
	d := DefaultDesign()
	src := vibration.Sine{Amplitude: 0.6, Freq: d.Harv.ResonantFreq(d.Harv.GapMax)}
	cfg := Config{Horizon: 1, Source: src}

	bad := d
	bad.Policy = nil // fails Validate
	designs := []Design{bad, d, d}
	got, stats, err := RunBatchStats(designs, cfg)
	if err == nil {
		t.Fatal("want a lane error for the invalid design")
	}
	var le *LaneError
	if !errors.As(err, &le) || le.Lane != 0 {
		t.Fatalf("err = %v, want *LaneError for lane 0", err)
	}
	if got[0] != nil {
		t.Fatal("failed lane must have a nil result")
	}
	if stats.Lanes != 2 {
		t.Fatalf("stats = %+v, want 2 surviving lanes", stats)
	}
	want, err := RunFast(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{1, 2} {
		compareLane(t, fmt.Sprintf("lane%d", i), want, got[i])
	}
}

// TestRunBatchMidRunDropout forces lanes to drop mid-run (via the test
// hook) at different steps — including the last lane dropping on the very
// last step — and checks the survivors stay bit-identical to solo runs.
func TestRunBatchMidRunDropout(t *testing.T) {
	base := DefaultDesign()
	src := vibration.Sine{Amplitude: 0.6, Freq: base.Harv.ResonantFreq(base.Harv.GapMax)}
	cfg := Config{Horizon: 1, Source: src, RecordWaveforms: true, Decimate: 50}
	designs := slowSideVariants(base, 5)
	nSteps := int(math.Ceil(cfg.Horizon / 1e-3))

	hookErr := errors.New("injected lane failure")
	batchStepHook = func(step int, ln *batchLane) error {
		switch {
		case ln.index == 2 && step == nSteps/3:
			return hookErr // middle lane drops a third of the way in
		case ln.index == 4 && step == nSteps-1:
			return hookErr // last lane drops on the final step
		}
		return nil
	}
	defer func() { batchStepHook = nil }()

	got, stats, err := RunBatchStats(designs, cfg)
	if err == nil {
		t.Fatal("want lane errors from the injected failures")
	}
	if stats.Lanes != 5 {
		t.Fatalf("stats = %+v, want 5 lanes entering the loop", stats)
	}
	dropped := map[int]bool{2: true, 4: true}
	for i := range designs {
		if dropped[i] {
			if got[i] != nil {
				t.Errorf("lane %d: dropped lane must have a nil result", i)
			}
			continue
		}
		want, err := RunFast(designs[i], cfg)
		if err != nil {
			t.Fatal(err)
		}
		compareLane(t, fmt.Sprintf("lane%d", i), want, got[i])
	}
	var joined interface{ Unwrap() []error }
	if !errors.As(err, &joined) || len(joined.Unwrap()) != 2 {
		t.Fatalf("err = %v, want exactly 2 joined lane errors", err)
	}
	for _, e := range joined.Unwrap() {
		var le *LaneError
		if !errors.As(e, &le) || !dropped[le.Lane] || !errors.Is(e, hookErr) {
			t.Fatalf("unexpected lane error %v", e)
		}
	}
}

// TestRunBatchEmptyAndSingle covers the degenerate batch widths: zero
// designs short-circuit, and K=1 is exactly RunFast.
func TestRunBatchEmptyAndSingle(t *testing.T) {
	d := DefaultDesign()
	src := vibration.Sine{Amplitude: 0.6, Freq: d.Harv.ResonantFreq(d.Harv.GapMax)}
	cfg := Config{Horizon: 1, Source: src}

	got, err := RunBatch(nil, cfg)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty batch: results %v err %v, want empty and nil", got, err)
	}

	got, err = RunBatch([]Design{d}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunFast(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	compareLane(t, "single", want, got[0])
}

// FuzzBatchLaneEquivalence compares RunBatch at K=1 against RunFast
// byte-for-byte over fuzzed slow-side and excitation parameters.
func FuzzBatchLaneEquivalence(f *testing.F) {
	f.Add(1.0, 5.0, 3.0, 47.0, false)
	f.Add(2.0, 2.0, 3.2, 45.0, true)
	f.Add(0.5, 15.0, 2.8, 52.0, true)
	f.Fuzz(func(t *testing.T, horizon, period, vth, freq float64, tuned bool) {
		if !(horizon > 0.01 && horizon < 3) || !(period > 0.1 && period < 30) ||
			!(vth > 1 && vth < 5) || !(freq > 20 && freq < 80) {
			t.Skip()
		}
		d := DefaultDesign()
		d.Node.Period = period
		d.Policy = node.ThresholdPolicy{VThreshold: vth}
		d.InitialStoreV = 3.4
		if tuned {
			tc := tuner.DefaultConfig()
			tc.Interval = 0.5
			tc.EstimatorWin = 0.25
			d.Tuner = &tc
		}
		cfg := Config{Horizon: horizon, Source: vibration.Sine{Amplitude: 0.6, Freq: freq},
			RecordWaveforms: true, Decimate: 25}

		want, errFast := RunFast(d, cfg)
		got, errBatch := RunBatch([]Design{d}, cfg)
		if (errFast == nil) != (errBatch == nil) {
			t.Fatalf("error disagreement: RunFast %v vs RunBatch %v", errFast, errBatch)
		}
		if errFast != nil {
			return
		}
		compareLane(t, "fuzz", want, got[0])
	})
}
