package sim

import (
	"math"
	"testing"

	"repro/internal/node"
	"repro/internal/stats"
	"repro/internal/tuner"
	"repro/internal/vibration"
)

func resonantSource(d Design) vibration.Source {
	return vibration.Sine{Amplitude: 0.6, Freq: d.Harv.ResonantFreq(d.Harv.GapMax)}
}

func TestDefaultDesignValidates(t *testing.T) {
	if err := DefaultDesign().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBrokenDesigns(t *testing.T) {
	d := DefaultDesign()
	d.Policy = nil
	if err := d.Validate(); err == nil {
		t.Fatal("nil policy must be rejected")
	}
	d = DefaultDesign()
	d.InitialStoreV = -1
	if err := d.Validate(); err == nil {
		t.Fatal("negative store voltage must be rejected")
	}
	d = DefaultDesign()
	d.Harv.Mass = 0
	if err := d.Validate(); err == nil {
		t.Fatal("bad harvester must be rejected")
	}
	bad := tuner.DefaultConfig()
	bad.Interval = 0
	d = DefaultDesign()
	d.Tuner = &bad
	if err := d.Validate(); err == nil {
		t.Fatal("bad tuner config must be rejected")
	}
}

func TestConfigValidation(t *testing.T) {
	d := DefaultDesign()
	if _, err := RunFast(d, Config{Horizon: 0, Source: resonantSource(d)}); err == nil {
		t.Fatal("zero horizon must error")
	}
	if _, err := RunFast(d, Config{Horizon: 1}); err == nil {
		t.Fatal("missing source must error")
	}
}

func TestFastRunHarvestsAtResonance(t *testing.T) {
	d := DefaultDesign()
	res, err := RunFast(d, Config{Horizon: 30, Source: resonantSource(d)})
	if err != nil {
		t.Fatal(err)
	}
	if res.HarvestedEnergy <= 0 {
		t.Fatal("no energy harvested at resonance")
	}
	// µW-scale average power expected.
	if res.AvgHarvestedPower < 1e-6 || res.AvgHarvestedPower > 5e-3 {
		t.Fatalf("harvested power %v W implausible", res.AvgHarvestedPower)
	}
	if res.FinalStoreV <= 0 || res.FinalStoreV > d.Store.VMax {
		t.Fatalf("final store voltage %v outside physical range", res.FinalStoreV)
	}
	if res.Steps == 0 {
		t.Fatal("no steps counted")
	}
	if res.Elapsed <= 0 {
		t.Fatal("elapsed time not recorded")
	}
}

func TestOffResonanceHarvestsLess(t *testing.T) {
	d := DefaultDesign()
	f0 := d.Harv.ResonantFreq(d.Harv.GapMax)
	on, err := RunFast(d, Config{Horizon: 20, Source: vibration.Sine{Amplitude: 0.6, Freq: f0}})
	if err != nil {
		t.Fatal(err)
	}
	off, err := RunFast(d, Config{Horizon: 20, Source: vibration.Sine{Amplitude: 0.6, Freq: f0 + 15}})
	if err != nil {
		t.Fatal(err)
	}
	if off.HarvestedEnergy >= on.HarvestedEnergy {
		t.Fatalf("off-resonance harvest %v ≥ on-resonance %v", off.HarvestedEnergy, on.HarvestedEnergy)
	}
}

func TestNodeRunsAndTransmits(t *testing.T) {
	d := DefaultDesign()
	d.Node.Period = 5
	res, err := RunFast(d, Config{Horizon: 60, Source: resonantSource(d)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Node.Measurements == 0 {
		t.Fatal("node never measured despite a charged store")
	}
	if res.Node.Packets == 0 {
		t.Fatal("node never transmitted despite store above threshold")
	}
	if res.UptimeFraction <= 0.5 {
		t.Fatalf("uptime fraction %v, want mostly up", res.UptimeFraction)
	}
}

func TestEnergyConservationInvariant(t *testing.T) {
	// Store energy change must equal harvested − consumed − leakage. With
	// leakage disabled the balance is exact to integration tolerance.
	d := DefaultDesign()
	d.Store.LeakR = 0
	res, err := RunFast(d, Config{Horizon: 30, Source: resonantSource(d)})
	if err != nil {
		t.Fatal(err)
	}
	e0 := d.Store.Energy(d.InitialStoreV)
	gained := res.StoredEnergyEnd - e0
	balance := res.HarvestedEnergy - res.ConsumedEnergy
	if math.Abs(gained-balance) > 0.02*(math.Abs(balance)+1e-9)+1e-4 {
		t.Fatalf("energy balance violated: ΔE=%v vs harvested−consumed=%v", gained, balance)
	}
}

func TestDepletedStoreShutsNodeDown(t *testing.T) {
	d := DefaultDesign()
	d.InitialStoreV = 0 // empty store
	// Off-resonance weak excitation: nearly no harvest.
	src := vibration.Sine{Amplitude: 0.05, Freq: 20}
	res, err := RunFast(d, Config{Horizon: 30, Source: src})
	if err != nil {
		t.Fatal(err)
	}
	if res.Node.Packets != 0 {
		t.Fatalf("node transmitted %d packets with no energy", res.Node.Packets)
	}
	if res.UptimeFraction > 0.01 {
		t.Fatalf("uptime fraction %v, want ≈0", res.UptimeFraction)
	}
}

func TestReferenceMatchesFastOnStoreVoltage(t *testing.T) {
	// R-T1 accuracy half: both engines must agree on the slow (store)
	// dynamics to within a few percent.
	d := DefaultDesign()
	cfg := Config{Horizon: 5, Source: resonantSource(d), RecordWaveforms: true, Decimate: 100}
	fast, err := RunFast(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := RunReference(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fast.StoreV) != len(ref.StoreV) {
		t.Fatalf("waveform lengths differ: %d vs %d", len(fast.StoreV), len(ref.StoreV))
	}
	rmse := stats.RMSE(fast.StoreV, ref.StoreV)
	scale := stats.RMS(ref.StoreV)
	if rmse > 0.05*scale {
		t.Fatalf("store-voltage RMSE %v vs scale %v: engines disagree", rmse, scale)
	}
	// Harvested energy within 10 %.
	if ref.HarvestedEnergy == 0 {
		t.Fatal("reference harvested nothing")
	}
	relErr := math.Abs(fast.HarvestedEnergy-ref.HarvestedEnergy) / ref.HarvestedEnergy
	if relErr > 0.10 {
		t.Fatalf("harvested-energy mismatch %v%%", 100*relErr)
	}
}

func TestReferenceCountsNewtonWork(t *testing.T) {
	d := DefaultDesign()
	res, err := RunReference(d, Config{Horizon: 0.5, Source: resonantSource(d)})
	if err != nil {
		t.Fatal(err)
	}
	if res.NewtonIters == 0 || res.FuncEvals == 0 {
		t.Fatalf("reference engine must count Newton work: %+v", res)
	}
	if res.NewtonIters < res.Steps {
		t.Fatalf("Newton iterations (%d) must be ≥ sub-steps (%d)", res.NewtonIters, res.Steps)
	}
}

func TestFastIsFasterThanReference(t *testing.T) {
	d := DefaultDesign()
	cfg := Config{Horizon: 2, Source: resonantSource(d)}
	fast, err := RunFast(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := RunReference(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Elapsed >= ref.Elapsed {
		t.Fatalf("fast engine (%v) not faster than reference (%v)", fast.Elapsed, ref.Elapsed)
	}
	// The paper's claim is ~two orders of magnitude; assert at least one
	// order here to keep the test robust on loaded machines.
	if ratio := float64(ref.Elapsed) / float64(fast.Elapsed); ratio < 10 {
		t.Fatalf("speedup only %.1f×, want ≥10×", ratio)
	}
}

func TestTunerImprovesOffBandHarvest(t *testing.T) {
	// Excitation at 70 Hz, untuned resonance 45 Hz: with the tuner the
	// harvester re-tunes and collects substantially more energy.
	d := DefaultDesign()
	src := vibration.Sine{Amplitude: 0.6, Freq: 70}
	cfg := Config{Horizon: 120, Source: src}

	untuned, err := RunFast(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tc := tuner.DefaultConfig()
	tc.Interval = 5
	tc.EstimatorWin = 1
	tc.ActuatorSpeed = 0.5e-3
	d.Tuner = &tc
	tuned, err := RunFast(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tuned.HarvestedEnergy <= untuned.HarvestedEnergy {
		t.Fatalf("tuned harvest %v ≤ untuned %v", tuned.HarvestedEnergy, untuned.HarvestedEnergy)
	}
	if math.Abs(tuned.FinalResFreq-70) > 2 {
		t.Fatalf("final resonance %v Hz, want ≈70", tuned.FinalResFreq)
	}
	if tuned.TuneEnergy <= 0 || tuned.TuneMoves == 0 {
		t.Fatal("tuning work not accounted")
	}
}

func TestWaveformRecordingDecimation(t *testing.T) {
	d := DefaultDesign()
	cfg := Config{Horizon: 1, Source: resonantSource(d), RecordWaveforms: true, Decimate: 50}
	res, err := RunFast(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantLen := res.Steps / 50
	if len(res.T) < wantLen || len(res.T) > wantLen+1 {
		t.Fatalf("decimated length %d, want ≈%d", len(res.T), wantLen)
	}
	for _, s := range [][]float64{res.StoreV, res.Disp, res.EMF, res.ResFreq} {
		if len(s) != len(res.T) {
			t.Fatal("waveform lengths inconsistent")
		}
	}
	// Without recording, no waveforms are kept.
	res2, err := RunFast(d, Config{Horizon: 1, Source: resonantSource(d)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.T) != 0 {
		t.Fatal("waveforms recorded without being requested")
	}
}

func TestAdaptivePolicyExtendsLifetime(t *testing.T) {
	// Weak harvest + aggressive duty cycle: the adaptive policy should end
	// with a higher store voltage than always-transmit.
	base := DefaultDesign()
	base.Node.Period = 1.5
	base.InitialStoreV = 3.0
	src := vibration.Sine{Amplitude: 0.2, Freq: 60} // off-resonance, weak
	cfg := Config{Horizon: 120, Source: src}

	always := base
	always.Policy = node.AlwaysTransmit{}
	rA, err := RunFast(always, cfg)
	if err != nil {
		t.Fatal(err)
	}
	adaptive := base
	adaptive.Policy = node.AdaptivePolicy{VEmpty: 2.5, VFull: 3.2, MaxScale: 10}
	rB, err := RunFast(adaptive, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rB.FinalStoreV <= rA.FinalStoreV {
		t.Fatalf("adaptive final V %v ≤ always %v", rB.FinalStoreV, rA.FinalStoreV)
	}
}

func TestLossyLinkReducesDeliveredPackets(t *testing.T) {
	base := DefaultDesign()
	base.Node.Period = 3
	src := resonantSource(base)
	cfg := Config{Horizon: 60, Source: src}

	ideal, err := RunFast(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lossy := base
	lossy.Link = node.LinkConfig{LossProb: 0.5, MaxRetries: 0, Seed: 5}
	lr, err := RunFast(lossy, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lr.Node.Packets >= ideal.Node.Packets {
		t.Fatalf("lossy link delivered %d ≥ ideal %d", lr.Node.Packets, ideal.Node.Packets)
	}
	if lr.Node.LostPackets == 0 {
		t.Fatal("losses not counted")
	}
	// Invalid link rejected by design validation.
	bad := base
	bad.Link = node.LinkConfig{LossProb: 1.5}
	if _, err := RunFast(bad, cfg); err == nil {
		t.Fatal("invalid link must fail validation")
	}
}

func TestEnergyLedgerWithLeakage(t *testing.T) {
	// Full ledger: ΔE_store = harvested − consumed − leaked, with leakage
	// enabled. The leak integral is first-order accurate, so allow a few
	// percent.
	d := DefaultDesign()
	d.Store.LeakR = 2e4 // aggressive leak so the term is visible
	res, err := RunFast(d, Config{Horizon: 30, Source: resonantSource(d)})
	if err != nil {
		t.Fatal(err)
	}
	if res.LeakEnergy <= 0 {
		t.Fatal("leakage not accounted")
	}
	e0 := d.Store.Energy(d.InitialStoreV)
	gained := res.StoredEnergyEnd - e0
	balance := res.HarvestedEnergy - res.ConsumedEnergy - res.LeakEnergy
	if math.Abs(gained-balance) > 0.05*(math.Abs(gained)+math.Abs(balance)+1e-9) {
		t.Fatalf("ledger violated: ΔE=%v vs balance=%v (leak %v)", gained, balance, res.LeakEnergy)
	}
	// Node share is part of the consumed total.
	if res.NodeEnergy < 0 || res.NodeEnergy > res.ConsumedEnergy+1e-12 {
		t.Fatalf("node share %v outside consumed %v", res.NodeEnergy, res.ConsumedEnergy)
	}
}
