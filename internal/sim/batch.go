package sim

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/harvester"
	"repro/internal/la"
)

// BatchStats summarizes the amortization a batch achieved: how many lanes
// ran, how many distinct (harvester, rin, dt) model groups they shared, how
// many ZOH bakes were actually performed, and how many per-lane rebuild
// requests were answered by a bake another lane had already paid for.
type BatchStats struct {
	Lanes             int // lanes that entered the lockstep loop
	Groups            int // distinct model groups across those lanes
	Rebuilds          int // ZOH discretizations actually performed
	AmortizedRebuilds int // lane rebuilds answered by another lane's bake
}

// LaneError reports a failure of one batch lane. The surrounding batch
// keeps stepping its remaining lanes; callers route the failed design point
// through the sequential path (which reproduces the same error with full
// retry semantics).
type LaneError struct {
	Lane int // index into the designs slice passed to RunBatch
	Err  error
}

func (e *LaneError) Error() string { return fmt.Sprintf("sim: batch lane %d: %v", e.Lane, e.Err) }
func (e *LaneError) Unwrap() error { return e.Err }

// batchLane is one design point's private state inside the lockstep loop:
// its per-lane model half (baked matrices + as-if-alone counters), slow
// side, recorder, and the memoized tuner drift check — exactly the loop
// state RunFast keeps in locals.
type batchLane struct {
	index   int // position in the original designs slice
	model   fastModel
	slow    *slowSide
	rec     recorder
	res     *Result
	gamma   float64
	tunerOn bool

	lastGap  float64
	lastFres float64
}

// groupKey identifies lanes whose fast-dynamics matrices are
// interchangeable: identical harvester parameters, multiplier input
// resistance, and step size. harvester.Params is an all-float64 struct, so
// the key is comparable and exact.
type groupKey struct {
	h   harvester.Params
	rin float64
	dt  float64
}

// batchStepHook, when non-nil, is called for every active lane at every
// slow step; a non-nil return drops that lane. It exists solely so tests
// can force mid-run lane dropout — production never sets it.
var batchStepHook func(step int, ln *batchLane) error

// RunBatch simulates K design points in lockstep over a shared time base
// with the fast engine. Each lane's floating-point stream is exactly the
// one RunFast would execute for that design alone, so results[i] is
// bit-identical to RunFast(designs[i], cfg) — the win is architectural:
// lanes with identical (harvester, rin, dt) share one model group, so
// tuner-driven ZOH rebuilds and the gap memo are paid once per group
// instead of once per point, and the per-step excitation samples are
// evaluated once for the whole batch.
//
// results has len(designs). A lane that fails — invalid design, setup
// error, or mid-run rebuild failure — drops out without disturbing the
// remaining lanes: its slot is nil and the returned error (an errors.Join
// of *LaneError values) identifies it by index.
func RunBatch(designs []Design, cfg Config) ([]*Result, error) {
	results, _, err := RunBatchStats(designs, cfg)
	return results, err
}

// RunBatchStats is RunBatch plus the batch's amortization statistics.
func RunBatchStats(designs []Design, cfg Config) ([]*Result, BatchStats, error) {
	var stats BatchStats
	if err := cfg.defaults(); err != nil {
		return nil, stats, err
	}
	start := time.Now()
	results := make([]*Result, len(designs))
	var laneErrs []error
	fail := func(i int, err error) {
		results[i] = nil
		laneErrs = append(laneErrs, &LaneError{Lane: i, Err: err})
	}

	// Lane setup: validate, build slow sides, and attach each lane to its
	// model group. Setup failures drop the lane before the loop starts.
	groups := make(map[groupKey]*modelGroup)
	active := make([]*batchLane, 0, len(designs))
	for i, d := range designs {
		if err := d.Validate(); err != nil {
			fail(i, err)
			continue
		}
		slow, err := newSlowSide(d)
		if err != nil {
			fail(i, err)
			continue
		}
		key := groupKey{h: d.Harv, rin: d.Mult.InputR, dt: cfg.DtSlow}
		g := groups[key]
		if g == nil {
			g = newModelGroup(d.Harv, d.Mult.InputR, cfg.DtSlow)
			groups[key] = g
		}
		res := &Result{}
		ln := &batchLane{
			index:   i,
			model:   fastModel{g: g, shadow: &gapKeys{}},
			slow:    slow,
			rec:     recorder{cfg: cfg, d: d, res: res},
			res:     res,
			gamma:   d.Harv.Gamma,
			tunerOn: slow.ctrl != nil,
		}
		if err := ln.model.rebuild(slow.gap); err != nil {
			fail(i, err)
			continue
		}
		ln.lastGap, ln.lastFres = slow.gap, ln.model.fres
		results[i] = res
		active = append(active, ln)
	}
	stats.Lanes = len(active)
	stats.Groups = len(groups)

	nSteps := int(math.Ceil(cfg.Horizon / cfg.DtSlow))
	// SoA state: y0/y1/y2[j] are lane j's [x, v, i], kept in slices parallel
	// to active so the fast-dynamics kernel streams over contiguous lanes.
	y0 := make([]float64, len(active))
	y1 := make([]float64, len(active))
	y2 := make([]float64, len(active))
	for _, ln := range active {
		ln.rec.init(nSteps)
	}

	// drop removes lane j by swap-remove from active and every SoA slice.
	// Lane order is free to change: lanes never read each other's state, and
	// the shared group memo's entries are deterministic regardless of which
	// lane bakes them, so compaction cannot disturb any surviving lane's
	// floating-point stream.
	drop := func(j int, err error) {
		ln := active[j]
		fail(ln.index, err)
		last := len(active) - 1
		active[j], y0[j], y1[j], y2[j] = active[last], y0[last], y1[last], y2[last]
		active = active[:last]
		y0, y1, y2 = y0[:last], y1[:last], y2[:last]
	}

	for k := 0; k < nSteps && len(active) > 0; k++ {
		t := float64(k) * cfg.DtSlow
		// Midpoint sampling of the excitation halves the ZOH phase error;
		// the shared time base means one sample serves every lane.
		accel := cfg.Source.Accel(t + cfg.DtSlow/2)
		excf := cfg.Source.DominantFreq(t)

		// Fast dynamics: advance maximal runs of adjacent lanes that share
		// (group, gap bits, end-stop region) with one kernel call. Equal gap
		// bits in the same group means the baked matrices are bit-identical
		// copies of the same memo entry, so the first lane's arrays serve
		// the whole run.
		for j := 0; j < len(active); {
			ln := active[j]
			gapBits := math.Float64bits(ln.model.gap)
			r := regionOf(y0[j], ln.model.g.h.MaxDisp)
			run := j + 1
			for run < len(active) {
				nx := active[run]
				if nx.model.g != ln.model.g ||
					math.Float64bits(nx.model.gap) != gapBits ||
					regionOf(y0[run], ln.model.g.h.MaxDisp) != r {
					break
				}
				run++
			}
			la.StepLanes3(&ln.model.ad[r], &ln.model.bd[r], accel, y0, y1, y2, j, run)
			j = run
		}

		// Slow side, per lane — the exact RunFast tail of the step. A
		// rebuild failure drops the lane in place; the swap-remove pulls an
		// unprocessed lane into slot j, so no j++ on the drop path.
		for j := 0; j < len(active); {
			ln := active[j]
			if batchStepHook != nil {
				if err := batchStepHook(k, ln); err != nil {
					drop(j, err)
					continue
				}
			}
			emf := ln.gamma * y1[j]
			gap := ln.slow.step(cfg.DtSlow, emf, excf)
			if ln.tunerOn {
				if gap != ln.lastGap {
					ln.lastGap, ln.lastFres = gap, ln.model.g.h.ResonantFreq(gap)
				}
				if math.Abs(ln.lastFres-ln.model.fres) > rebuildTolHz {
					if err := ln.model.rebuild(gap); err != nil {
						drop(j, err)
						continue
					}
				}
			}
			ln.rec.record(t+cfg.DtSlow, ln.slow.vs, y0[j], emf, gap)
			j++
		}
	}

	elapsed := time.Since(start)
	for _, ln := range active {
		ln.res.Steps = nSteps
		ln.res.Rebuilds = ln.model.rebuilds
		ln.res.RebuildHits = ln.model.memoHits
		ln.slow.finish(ln.res, cfg.Horizon)
		ln.res.Elapsed = elapsed
	}
	for _, g := range groups {
		stats.Rebuilds += g.bakes
		stats.AmortizedRebuilds += g.amortized
	}
	return results, stats, errors.Join(laneErrs...)
}
