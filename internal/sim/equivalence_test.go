package sim

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/la"
	"repro/internal/node"
	"repro/internal/tuner"
	"repro/internal/vibration"
)

// This file proves the hot-path overhaul did not change a single bit of
// any response: runFastSeed below is a faithful replica of the
// pre-optimization RunFast — la.Matrix-backed update matrices read through
// bounds-checked At, a fresh ZOH discretization on every drift past
// tolerance (no memo), per-step math.Exp for the envelope and leak decays,
// append-grown waveform traces, and a per-step ResonantFreq drift check.
// The optimized engine must reproduce it bit-identically (with a 1e-12
// relative fallback for cross-architecture FMA differences).

// seedFastModel is the pre-optimization fastModel: per-region *la.Matrix
// pairs, rebuilt from scratch on every call.
type seedFastModel struct {
	d   Design
	rin float64
	dt  float64
	gap float64
	ad  [3]*la.Matrix
	bd  [3]*la.Matrix
}

func newSeedFastModel(d Design, dt float64) *seedFastModel {
	return &seedFastModel{d: d, rin: d.Mult.InputR, dt: dt}
}

func (m *seedFastModel) rebuild(gap float64) error {
	m.gap = gap
	h := m.d.Harv
	k := h.EffectiveStiffness(gap)
	l := h.CoilL
	if l <= 0 {
		l = 1e-3
	}
	rTot := h.CoilR + m.rin
	build := func(kEff, fOff float64) (*la.Matrix, *la.Matrix, error) {
		a := la.NewMatrixFrom(3, 3, []float64{
			0, 1, 0,
			-kEff / h.Mass, -h.DampingC / h.Mass, -h.Gamma / h.Mass,
			0, h.Gamma / l, -rTot / l,
		})
		b := la.NewMatrixFrom(3, 2, []float64{
			0, 0,
			-1, fOff / h.Mass,
			0, 0,
		})
		return la.DiscretizeZOH(a, b, m.dt)
	}
	var err error
	if m.ad[regionFree], m.bd[regionFree], err = build(k, 0); err != nil {
		return err
	}
	if m.ad[regionUpper], m.bd[regionUpper], err = build(k+h.StopK, h.StopK*h.MaxDisp); err != nil {
		return err
	}
	if m.ad[regionLower], m.bd[regionLower], err = build(k+h.StopK, -h.StopK*h.MaxDisp); err != nil {
		return err
	}
	return nil
}

func (m *seedFastModel) step(y []float64, accel float64) {
	r := regionOf(y[0], m.d.Harv.MaxDisp)
	ad, bd := m.ad[r], m.bd[r]
	var out [3]float64
	for i := 0; i < 3; i++ {
		out[i] = ad.At(i, 0)*y[0] + ad.At(i, 1)*y[1] + ad.At(i, 2)*y[2] +
			bd.At(i, 0)*accel + bd.At(i, 1)
	}
	y[0], y[1], y[2] = out[0], out[1], out[2]
}

// seedSlowSide replicates the pre-optimization slow side: the decay
// factors are recomputed with math.Exp on every step.
type seedSlowSide struct {
	d      Design
	nd     *node.Node
	ctrl   *tuner.Controller
	gap    float64
	vs     float64
	regOn  bool
	env    float64
	envTau float64

	harvested float64
	consumed  float64
	nodeDrawn float64
	leaked    float64
}

func newSeedSlowSide(d Design) (*seedSlowSide, error) {
	nd, err := node.NewWithLink(d.Node, d.Policy, d.Link)
	if err != nil {
		return nil, err
	}
	gap := d.InitialGap
	if gap == 0 {
		gap = d.Harv.GapMax
	}
	gap = d.Harv.ClampGap(gap)
	s := &seedSlowSide{d: d, nd: nd, gap: gap, vs: d.InitialStoreV, envTau: 0.05}
	if d.Tuner != nil {
		ctrl, err := tuner.New(*d.Tuner, d.Harv, gap)
		if err != nil {
			return nil, err
		}
		s.ctrl = ctrl
	}
	return s, nil
}

func (s *seedSlowSide) step(dt, emf, excFreq float64) float64 {
	decay := math.Exp(-dt / s.envTau)
	s.env *= decay
	if a := math.Abs(emf); a > s.env {
		s.env = a
	}
	vin := s.env * s.d.Mult.InputR / (s.d.Harv.CoilR + s.d.Mult.InputR)
	ichg := s.d.Mult.ChargeCurrent(vin, excFreq, s.vs)
	s.harvested += ichg * s.vs * dt
	var iTune float64
	if s.ctrl != nil {
		p := s.ctrl.Step(dt, emf, s.vs)
		if p > 0 && s.vs > 0 {
			iTune = p / s.vs
		}
		s.gap = s.ctrl.Gap()
	}
	s.regOn = s.d.Reg.NextEnabled(s.regOn, s.vs)
	iRail := s.nd.Step(dt, s.regOn, s.vs)
	pLoad := iRail * s.d.Node.VRail
	iReg := s.d.Reg.InputCurrent(s.regOn, s.vs, pLoad)
	s.consumed += (iReg + iTune) * s.vs * dt
	s.nodeDrawn += iReg * s.vs * dt
	if s.d.Store.LeakR > 0 {
		s.leaked += s.vs * s.vs / s.d.Store.LeakR * dt
	}
	s.vs = s.d.Store.Step(s.vs, dt, ichg, iReg+iTune)
	return s.gap
}

// runFastSeed is the pre-optimization RunFast, responses only (no Elapsed
// or rebuild accounting).
func runFastSeed(d Design, cfg Config) (*Result, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	slow, err := newSeedSlowSide(d)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	rec := &recorder{cfg: cfg, d: d, res: res}

	model := newSeedFastModel(d, cfg.DtSlow)
	if err := model.rebuild(slow.gap); err != nil {
		return nil, err
	}
	const rebuildTolHz = 0.05

	y := []float64{0, 0, 0}
	nSteps := int(math.Ceil(cfg.Horizon / cfg.DtSlow))
	for k := 0; k < nSteps; k++ {
		t := float64(k) * cfg.DtSlow
		accel := cfg.Source.Accel(t + cfg.DtSlow/2)
		model.step(y, accel)
		res.Steps++

		emf := d.Harv.EMF(y[1])
		gap := slow.step(cfg.DtSlow, emf, cfg.Source.DominantFreq(t))
		if math.Abs(d.Harv.ResonantFreq(gap)-d.Harv.ResonantFreq(model.gap)) > rebuildTolHz {
			if err := model.rebuild(gap); err != nil {
				return nil, err
			}
		}
		rec.record(t+cfg.DtSlow, slow.vs, y[0], emf, gap)
	}

	res.HarvestedEnergy = slow.harvested
	res.AvgHarvestedPower = slow.harvested / cfg.Horizon
	res.ConsumedEnergy = slow.consumed
	res.NodeEnergy = slow.nodeDrawn
	res.LeakEnergy = slow.leaked
	res.NetEnergyMargin = slow.harvested - slow.consumed
	res.FinalStoreV = slow.vs
	res.StoredEnergyEnd = slow.d.Store.Energy(slow.vs)
	res.Node = slow.nd.Counters()
	res.UptimeFraction = res.Node.UpTime / cfg.Horizon
	if slow.ctrl != nil {
		res.TuneEnergy = slow.ctrl.Energy()
		res.TuneMoves = slow.ctrl.Moves()
		res.TuneInBandFrac = slow.ctrl.InBandFraction()
	}
	res.FinalResFreq = slow.d.Harv.ResonantFreq(slow.gap)
	return res, nil
}

// sameFloat reports bit-identity, with a 1e-12 relative tolerance fallback
// so an architecture that fuses multiply-adds differently between the two
// code shapes cannot fail the suite.
func sameFloat(a, b float64) bool {
	if math.Float64bits(a) == math.Float64bits(b) {
		return true
	}
	return math.Abs(a-b) <= 1e-12*math.Max(math.Abs(a), math.Abs(b))
}

func compareResults(t *testing.T, name string, want, got *Result) {
	t.Helper()
	scalars := []struct {
		field     string
		want, got float64
	}{
		{"HarvestedEnergy", want.HarvestedEnergy, got.HarvestedEnergy},
		{"AvgHarvestedPower", want.AvgHarvestedPower, got.AvgHarvestedPower},
		{"ConsumedEnergy", want.ConsumedEnergy, got.ConsumedEnergy},
		{"NodeEnergy", want.NodeEnergy, got.NodeEnergy},
		{"LeakEnergy", want.LeakEnergy, got.LeakEnergy},
		{"NetEnergyMargin", want.NetEnergyMargin, got.NetEnergyMargin},
		{"StoredEnergyEnd", want.StoredEnergyEnd, got.StoredEnergyEnd},
		{"FinalStoreV", want.FinalStoreV, got.FinalStoreV},
		{"UptimeFraction", want.UptimeFraction, got.UptimeFraction},
		{"TuneEnergy", want.TuneEnergy, got.TuneEnergy},
		{"TuneInBandFrac", want.TuneInBandFrac, got.TuneInBandFrac},
		{"FinalResFreq", want.FinalResFreq, got.FinalResFreq},
		{"Node.UpTime", want.Node.UpTime, got.Node.UpTime},
	}
	for _, s := range scalars {
		if !sameFloat(s.want, s.got) {
			t.Errorf("%s: %s diverged: seed %v (%#x) vs optimized %v (%#x)",
				name, s.field, s.want, math.Float64bits(s.want), s.got, math.Float64bits(s.got))
		}
	}
	ints := []struct {
		field     string
		want, got int
	}{
		{"Steps", want.Steps, got.Steps},
		{"TuneMoves", want.TuneMoves, got.TuneMoves},
		{"Node.Measurements", want.Node.Measurements, got.Node.Measurements},
		{"Node.Packets", want.Node.Packets, got.Node.Packets},
		{"Node.LostPackets", want.Node.LostPackets, got.Node.LostPackets},
	}
	for _, s := range ints {
		if s.want != s.got {
			t.Errorf("%s: %s diverged: seed %d vs optimized %d", name, s.field, s.want, s.got)
		}
	}
	waves := []struct {
		field     string
		want, got []float64
	}{
		{"T", want.T, got.T},
		{"StoreV", want.StoreV, got.StoreV},
		{"Disp", want.Disp, got.Disp},
		{"EMF", want.EMF, got.EMF},
		{"ResFreq", want.ResFreq, got.ResFreq},
	}
	for _, w := range waves {
		if len(w.want) != len(w.got) {
			t.Errorf("%s: %s length diverged: %d vs %d", name, w.field, len(w.want), len(w.got))
			continue
		}
		for i := range w.want {
			if !sameFloat(w.want[i], w.got[i]) {
				t.Errorf("%s: %s[%d] diverged: %v vs %v", name, w.field, i, w.want[i], w.got[i])
				break
			}
		}
	}
}

// equivalenceCase is one design point of the golden grid.
type equivalenceCase struct {
	name string
	d    Design
	cfg  Config
}

// equivalenceGrid covers the R-T1 grid (default design over the speedup
// horizons and step sizes) and the R-T6 scenario grid (environmental,
// structural tuned, healthcare), plus a deliberately aggressive tuning
// transient that forces heavy rebuild traffic through the gap memo.
func equivalenceGrid(t *testing.T) []equivalenceCase {
	t.Helper()
	var cases []equivalenceCase

	// R-T1: default design, resonant excitation, quick-config horizons.
	d := DefaultDesign()
	src := vibration.Sine{Amplitude: 0.6, Freq: d.Harv.ResonantFreq(d.Harv.GapMax)}
	for _, h := range []float64{1, 2} {
		cases = append(cases, equivalenceCase{
			name: fmt.Sprintf("t1/h=%g", h),
			d:    d,
			cfg:  Config{Horizon: h, Source: src, RecordWaveforms: true, Decimate: 100},
		})
	}
	// A1-style step sizes exercise the recorder prealloc at non-default
	// decimations.
	for _, dt := range []float64{0.5e-3, 2e-3} {
		cases = append(cases, equivalenceCase{
			name: fmt.Sprintf("t1/dt=%g", dt),
			d:    d,
			cfg:  Config{Horizon: 1, DtSlow: dt, Source: src, RecordWaveforms: true, Decimate: 10},
		})
	}

	// R-T6 environmental: steady 45 Hz, slow reporting.
	env := DefaultDesign()
	env.Node.Period = 15
	env.InitialStoreV = 3.3
	cases = append(cases, equivalenceCase{
		name: "t6/environmental",
		d:    env,
		cfg:  Config{Horizon: 10, Source: vibration.Sine{Amplitude: 0.5, Freq: 45}},
	})

	// R-T6 structural: wandering excitation with the tuning controller.
	rw, err := vibration.NewRandomWalkSine(0.7, 60, 0.2, 55, 65, 12, 0.5, 41)
	if err != nil {
		t.Fatal(err)
	}
	structural := DefaultDesign()
	structural.Node.Period = 5
	structural.InitialStoreV = 3.3
	tc := tuner.DefaultConfig()
	tc.Interval = 2
	tc.EstimatorWin = 1
	structural.Tuner = &tc
	cases = append(cases, equivalenceCase{
		name: "t6/structural-tuned",
		d:    structural,
		cfg:  Config{Horizon: 12, Source: rw, RecordWaveforms: true, Decimate: 200},
	})

	// R-T6 healthcare: noisy tone, fast reporting.
	ns, err := vibration.NewNoisySine(vibration.Sine{Amplitude: 0.8, Freq: 46}, 0.1, 10, 1e-3, 42)
	if err != nil {
		t.Fatal(err)
	}
	health := DefaultDesign()
	health.Node.Period = 2
	health.InitialStoreV = 3.3
	cases = append(cases, equivalenceCase{
		name: "t6/healthcare",
		d:    health,
		cfg:  Config{Horizon: 10, Source: ns},
	})

	// Aggressive tuning transient: a stepped excitation far off resonance
	// with a fast, frequently-deciding tuner drives many rebuilds, so the
	// memo and the drift-check memoization both carry real traffic.
	stepped, err := vibration.NewSteppedSine(0.6, []vibration.FreqStep{
		{At: 0, Freq: 70}, {At: 8, Freq: 50}, {At: 16, Freq: 70},
	})
	if err != nil {
		t.Fatal(err)
	}
	sweep := DefaultDesign()
	sweep.InitialStoreV = 3.5
	stc := tuner.DefaultConfig()
	stc.Interval = 1
	stc.EstimatorWin = 0.5
	stc.ActuatorSpeed = 2e-3
	sweep.Tuner = &stc
	cases = append(cases, equivalenceCase{
		name: "tuning-transient",
		d:    sweep,
		cfg:  Config{Horizon: 24, Source: stepped},
	})

	// Hunting steady state: a tone half-way between two zero-crossing
	// quanta (45.25 Hz seen through a 2 s window alternates between 90 and
	// 91 crossings) makes the controller ping-pong between two exact target
	// gaps forever. The actuator retraces the same deterministic gap path
	// each excursion, so nearly every rebuild request repeats an earlier
	// gap bit-for-bit — the traffic the memo exists for.
	hunt := DefaultDesign()
	hunt.InitialStoreV = 3.5
	htc := tuner.DefaultConfig()
	htc.Interval = 2
	htc.EstimatorWin = 2
	htc.DeadbandHz = 0.1
	hunt.Tuner = &htc
	cases = append(cases, equivalenceCase{
		name: "tuning-hunt",
		d:    hunt,
		cfg:  Config{Horizon: 60, Source: vibration.Sine{Amplitude: 0.6, Freq: 45.25}},
	})

	return cases
}

func TestRunFastMatchesSeedEngineBitwise(t *testing.T) {
	for _, tc := range equivalenceGrid(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			want, err := runFastSeed(tc.d, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := RunFast(tc.d, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			compareResults(t, tc.name, want, got)
		})
	}
}

// TestGapMemoCarriesRebuildTraffic pins the memo's reason to exist: the
// hunting steady state must answer the majority of its rebuild requests
// from the memo — while (above) staying bit-identical to the memo-free
// seed engine.
func TestGapMemoCarriesRebuildTraffic(t *testing.T) {
	var tc *equivalenceCase
	for _, c := range equivalenceGrid(t) {
		if c.name == "tuning-hunt" {
			c := c
			tc = &c
			break
		}
	}
	if tc == nil {
		t.Fatal("tuning-hunt case missing from the equivalence grid")
	}
	res, err := RunFast(tc.d, tc.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rebuilds < 3 {
		t.Fatalf("hunting scenario performed only %d rebuilds; too tame to test the memo", res.Rebuilds)
	}
	if res.RebuildHits <= res.Rebuilds {
		t.Fatalf("gap memo hits (%d) should dominate misses (%d) while the tuner ping-pongs between two exact targets",
			res.RebuildHits, res.Rebuilds)
	}
	t.Logf("rebuild misses=%d memo hits=%d", res.Rebuilds, res.RebuildHits)
}

// TestFastModelStepZeroAllocs pins the hot loop's allocation budget at
// exactly zero allocations per step.
func TestFastModelStepZeroAllocs(t *testing.T) {
	d := DefaultDesign()
	m := newFastModel(d.Harv, d.Mult.InputR, 1e-3)
	if err := m.rebuild(d.Harv.GapMax); err != nil {
		t.Fatal(err)
	}
	var y [3]float64
	allocs := testing.AllocsPerRun(1000, func() {
		m.step(&y, 0.6)
	})
	if allocs != 0 {
		t.Fatalf("fastModel.step allocates %.1f objects/op, want 0", allocs)
	}
}

// TestRunFastSteadyStateAllocs bounds the whole-run allocation count: all
// remaining allocations are per-run setup (node, workspace, result), so a
// run must stay under a small constant regardless of horizon.
func TestRunFastSteadyStateAllocs(t *testing.T) {
	d := DefaultDesign()
	src := vibration.Sine{Amplitude: 0.6, Freq: d.Harv.ResonantFreq(d.Harv.GapMax)}
	for _, h := range []float64{1, 4} {
		cfg := Config{Horizon: h, Source: src}
		allocs := testing.AllocsPerRun(5, func() {
			if _, err := RunFast(d, cfg); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 64 {
			t.Fatalf("RunFast at horizon %gs allocates %.0f objects/run, want setup-only (≤64)", h, allocs)
		}
	}
}
