// Package sim couples every substrate into the complete
// harvester-powered-sensor-node transient simulator: vibration source →
// tunable electromagnetic harvester → voltage multiplier → supercapacitor →
// regulator → duty-cycled node, with the tuning controller closing the loop
// from the coil EMF back to the magnet gap.
//
// Two engines integrate the fast electromechanical dynamics:
//
//   - RunReference — the "traditional analogue simulation" path: implicit
//     trapezoidal integration with a damped Newton–Raphson solve (and a
//     finite-difference Jacobian) at every sub-step. Accurate, and slow in
//     exactly the way the paper says HDL/SPICE simulation is slow.
//   - RunFast — the explicit linearized state-space technique of companion
//     paper [4]: the piecewise-linear system (free / end-stop contact
//     regions) is discretized exactly per region with a zero-order-hold
//     matrix exponential, so each step is one small mat-vec. This is the
//     engine that makes building response surfaces affordable.
//
// Both engines share the identical slow side (multiplier, store, regulator,
// node, tuner), so their outputs differ only by integration error — the
// basis of reproduction experiment R-T1.
package sim

import (
	"fmt"
	"math"
	"time"

	"repro/internal/harvester"
	"repro/internal/la"
	"repro/internal/node"
	"repro/internal/ode"
	"repro/internal/power"
	"repro/internal/tuner"
	"repro/internal/vibration"
)

// Design is one point of the design space: the complete parameterization of
// the harvester-powered node. The DoE factors of DESIGN.md map onto fields
// of this struct.
type Design struct {
	Harv   harvester.Params
	Mult   power.MultiplierParams
	Store  power.Supercap
	Reg    power.Regulator
	Node   node.Config
	Policy node.Policy
	Link   node.LinkConfig // radio channel; zero value = ideal lossless link
	Tuner  *tuner.Config   // nil disables resonance tuning

	InitialGap    float64 // starting magnet gap (0 → GapMax, i.e. untuned)
	InitialStoreV float64 // supercap voltage at t = 0
}

// DefaultDesign returns the reference design: default harvester, 5-stage
// pump, 0.4 F store pre-charged to 3 V, threshold energy manager.
func DefaultDesign() Design {
	return Design{
		Harv:          harvester.Default(),
		Mult:          power.DefaultMultiplier(),
		Store:         power.DefaultSupercap(),
		Reg:           power.DefaultRegulator(),
		Node:          node.Default(),
		Policy:        node.ThresholdPolicy{VThreshold: 3.0},
		Tuner:         nil,
		InitialGap:    0,
		InitialStoreV: 3.0,
	}
}

// Validate checks the whole design.
func (d Design) Validate() error {
	if err := d.Harv.Validate(); err != nil {
		return err
	}
	if err := d.Mult.Validate(); err != nil {
		return err
	}
	if err := d.Store.Validate(); err != nil {
		return err
	}
	if err := d.Reg.Validate(); err != nil {
		return err
	}
	if err := d.Node.Validate(); err != nil {
		return err
	}
	if d.Policy == nil {
		return fmt.Errorf("sim: design needs an energy-manager policy")
	}
	if err := d.Link.Validate(); err != nil {
		return err
	}
	if d.Tuner != nil {
		if err := d.Tuner.Validate(); err != nil {
			return err
		}
	}
	if d.InitialStoreV < 0 {
		return fmt.Errorf("sim: initial store voltage %g must be non-negative", d.InitialStoreV)
	}
	return nil
}

// Config controls a simulation run.
type Config struct {
	Horizon float64          // simulated duration (s)
	DtSlow  float64          // slow-side step = fast-engine step (default 1 ms)
	DtRef   float64          // reference-engine sub-step (default 50 µs)
	Source  vibration.Source // excitation; required

	RecordWaveforms bool // keep decimated waveforms for figures
	Decimate        int  // record every k-th slow step (default 10)
}

func (c *Config) defaults() error {
	if c.Horizon <= 0 {
		return fmt.Errorf("sim: horizon %g must be positive", c.Horizon)
	}
	if c.Source == nil {
		return fmt.Errorf("sim: a vibration source is required")
	}
	if c.DtSlow <= 0 {
		c.DtSlow = 1e-3
	}
	if c.DtRef <= 0 {
		c.DtRef = 5e-5
	}
	if c.Decimate <= 0 {
		c.Decimate = 10
	}
	return nil
}

// Result carries the performance indicators (the DoE responses) plus work
// metrics and optional waveforms.
type Result struct {
	// Energy-side responses.
	HarvestedEnergy   float64 // energy delivered into the store (J)
	AvgHarvestedPower float64 // HarvestedEnergy / Horizon (W)
	ConsumedEnergy    float64 // energy drawn from the store by node + tuner (J)
	NodeEnergy        float64 // share drawn through the regulator for the node (J)
	LeakEnergy        float64 // energy lost to supercap self-discharge (J)
	NetEnergyMargin   float64 // harvested − consumed (J)
	StoredEnergyEnd   float64 // ½CV² at the horizon (J)
	FinalStoreV       float64 // store voltage at the horizon (V)

	// Node-side responses.
	Node           node.Counters
	UptimeFraction float64 // powered time / horizon

	// Tuner-side responses.
	TuneEnergy     float64 // actuator energy (J)
	TuneMoves      int
	TuneInBandFrac float64
	FinalResFreq   float64 // harvester resonance at the horizon (Hz)

	// Work metrics for the speed tables.
	Steps       int           // fast-dynamics integration steps
	NewtonIters int           // Newton iterations (reference engine only)
	FuncEvals   int           // RHS evaluations (reference engine only)
	Rebuilds    int           // ZOH rediscretizations performed (fast engine only)
	RebuildHits int           // rebuilds answered by the gap memo (fast engine only)
	Elapsed     time.Duration // wall-clock time of the run

	// Optional decimated waveforms (RecordWaveforms).
	T       []float64 // sample times (s)
	StoreV  []float64 // store voltage (V)
	Disp    []float64 // proof-mass displacement (m)
	EMF     []float64 // coil EMF (V)
	ResFreq []float64 // harvester resonance (Hz)
}

// slowSide is the part of the system identical across both engines: the
// envelope detector, multiplier, store, regulator, node and tuner.
type slowSide struct {
	d      Design
	nd     *node.Node
	ctrl   *tuner.Controller
	gap    float64
	vs     float64
	regOn  bool
	env    float64 // EMF amplitude envelope (V)
	envTau float64

	// Both engines call step with a fixed dt, so the two exponential decay
	// factors (envelope release, supercap leak) are constants of the run.
	// They are memoized on the dt they were computed for — recomputing on a
	// dt change keeps the values bit-identical to evaluating exp per step.
	decayDt   float64
	envDecay  float64
	leakDecay float64

	harvested float64
	consumed  float64
	nodeDrawn float64
	leaked    float64
}

func newSlowSide(d Design) (*slowSide, error) {
	nd, err := node.NewWithLink(d.Node, d.Policy, d.Link)
	if err != nil {
		return nil, err
	}
	gap := d.InitialGap
	if gap == 0 {
		gap = d.Harv.GapMax
	}
	gap = d.Harv.ClampGap(gap)
	s := &slowSide{
		d:      d,
		nd:     nd,
		gap:    gap,
		vs:     d.InitialStoreV,
		envTau: 0.05, // a few vibration cycles
	}
	if d.Tuner != nil {
		ctrl, err := tuner.New(*d.Tuner, d.Harv, gap)
		if err != nil {
			return nil, err
		}
		s.ctrl = ctrl
	}
	return s, nil
}

// step advances the slow side by dt given the coil EMF sample and the
// current excitation frequency (the charge pump's operating frequency). It
// returns the magnet gap for the next fast-dynamics step.
func (s *slowSide) step(dt, emf, excFreq float64) float64 {
	if dt != s.decayDt {
		s.decayDt = dt
		s.envDecay = math.Exp(-dt / s.envTau)
		s.leakDecay = s.d.Store.LeakFactor(dt)
	}
	// EMF envelope (peak detector with exponential release).
	s.env *= s.envDecay
	if a := math.Abs(emf); a > s.env {
		s.env = a
	}

	// Multiplier: EMF behind the coil resistance drives the pump input.
	vin := s.env * s.d.Mult.InputR / (s.d.Harv.CoilR + s.d.Mult.InputR)
	ichg := s.d.Mult.ChargeCurrent(vin, excFreq, s.vs)
	s.harvested += ichg * s.vs * dt

	// Tuner draws actuator power straight from the store.
	var iTune float64
	if s.ctrl != nil {
		p := s.ctrl.Step(dt, emf, s.vs)
		if p > 0 && s.vs > 0 {
			iTune = p / s.vs
		}
		s.gap = s.ctrl.Gap()
	}

	// Regulator UVLO and node activity.
	s.regOn = s.d.Reg.NextEnabled(s.regOn, s.vs)
	iRail := s.nd.Step(dt, s.regOn, s.vs)
	pLoad := iRail * s.d.Node.VRail
	iReg := s.d.Reg.InputCurrent(s.regOn, s.vs, pLoad)

	s.consumed += (iReg + iTune) * s.vs * dt
	s.nodeDrawn += iReg * s.vs * dt
	if s.d.Store.LeakR > 0 {
		s.leaked += s.vs * s.vs / s.d.Store.LeakR * dt
	}
	s.vs = s.d.Store.StepWithLeak(s.vs, dt, ichg, iReg+iTune, s.leakDecay)
	return s.gap
}

// finish assembles the shared responses into res.
func (s *slowSide) finish(res *Result, horizon float64) {
	res.HarvestedEnergy = s.harvested
	res.AvgHarvestedPower = s.harvested / horizon
	res.ConsumedEnergy = s.consumed
	res.NodeEnergy = s.nodeDrawn
	res.LeakEnergy = s.leaked
	res.NetEnergyMargin = s.harvested - s.consumed
	res.FinalStoreV = s.vs
	res.StoredEnergyEnd = s.d.Store.Energy(s.vs)
	res.Node = s.nd.Counters()
	res.UptimeFraction = res.Node.UpTime / horizon
	if s.ctrl != nil {
		res.TuneEnergy = s.ctrl.Energy()
		res.TuneMoves = s.ctrl.Moves()
		res.TuneInBandFrac = s.ctrl.InBandFraction()
	}
	res.FinalResFreq = s.d.Harv.ResonantFreq(s.gap)
}

// recorder captures decimated waveforms.
type recorder struct {
	cfg   Config
	d     Design
	count int
	res   *Result
}

// init preallocates the waveform traces to their exact final length,
// ceil(nSteps/Decimate), so the hot loop never grows them by append.
func (r *recorder) init(nSteps int) {
	if !r.cfg.RecordWaveforms || nSteps <= 0 {
		return
	}
	n := (nSteps + r.cfg.Decimate - 1) / r.cfg.Decimate
	r.res.T = make([]float64, 0, n)
	r.res.StoreV = make([]float64, 0, n)
	r.res.Disp = make([]float64, 0, n)
	r.res.EMF = make([]float64, 0, n)
	r.res.ResFreq = make([]float64, 0, n)
}

func (r *recorder) record(t, vs, x, emf, gap float64) {
	if !r.cfg.RecordWaveforms {
		return
	}
	if r.count%r.cfg.Decimate == 0 {
		r.res.T = append(r.res.T, t)
		r.res.StoreV = append(r.res.StoreV, vs)
		r.res.Disp = append(r.res.Disp, x)
		r.res.EMF = append(r.res.EMF, emf)
		r.res.ResFreq = append(r.res.ResFreq, r.d.Harv.ResonantFreq(gap))
	}
	r.count++
}

// region identifies the piecewise-linear regime of the end-stop.
type region int

const (
	regionFree region = iota
	regionUpper
	regionLower
)

func regionOf(x, limit float64) region {
	switch {
	case x > limit:
		return regionUpper
	case x < -limit:
		return regionLower
	default:
		return regionFree
	}
}

// gapMemoCap bounds the per-run rebuild memo. A tuning transient revisits
// the gaps of its previous excursions — the actuator retraces exact
// deterministic paths between estimator-quantized targets — so the memo
// must hold a full excursion's rebuild set to avoid sequential-scan
// thrashing; 32 entries is ~4 KB.
const gapMemoCap = 32

// gapEntry is one memoized rebuild: the baked region matrices for an exact
// gap value.
type gapEntry struct {
	bits uint64 // math.Float64bits of the gap
	tick uint64 // last-use stamp for LRU eviction
	ad   [3][9]float64
	bd   [3][6]float64
}

// gapMemo is a tiny LRU of rebuild results keyed by the gap's exact bit
// pattern. Exact-bit keying is the only quantization that keeps replay
// bit-identical to rebuilding from scratch; it still hits because the
// tuner's target gaps come from a discrete set (the frequency estimate is
// quantized by integer zero-crossing counts, and GapForFreq is
// deterministic), so settled and revisited gaps repeat exactly.
type gapMemo struct {
	entries [gapMemoCap]gapEntry
	n       int
	tick    uint64
}

func (g *gapMemo) lookup(bits uint64) *gapEntry {
	for i := 0; i < g.n; i++ {
		if g.entries[i].bits == bits {
			g.tick++
			g.entries[i].tick = g.tick
			return &g.entries[i]
		}
	}
	return nil
}

// slot returns the entry to fill for bits: a fresh slot while capacity
// lasts, then the least-recently-used one.
func (g *gapMemo) slot(bits uint64) *gapEntry {
	var e *gapEntry
	if g.n < gapMemoCap {
		e = &g.entries[g.n]
		g.n++
	} else {
		e = &g.entries[0]
		for i := 1; i < g.n; i++ {
			if g.entries[i].tick < e.tick {
				e = &g.entries[i]
			}
		}
	}
	g.tick++
	*e = gapEntry{bits: bits, tick: g.tick}
	return e
}

// rebuildTolHz is the resonance granularity below which a gap change does
// not justify a matrix rebuild (Hz). RunFast and RunBatch share it so their
// rebuild decisions are identical step for step.
const rebuildTolHz = 0.05

// modelGroup is the shared half of the fast engine's model: everything
// that depends only on (harvester, multiplier input R, dt) — the gap memo,
// the discretization workspace and its scratch matrices, plus the actual
// work counters. RunFast owns exactly one; RunBatch shares one across all
// lanes with identical parameters, so a rebuild performed by any lane
// answers every other lane's request for the same gap from the memo.
type modelGroup struct {
	h   harvester.Params
	rin float64
	dt  float64

	memo gapMemo
	ws   *la.ZOHWorkspace
	a    *la.Matrix // 3×3 continuous-time scratch
	b    *la.Matrix // 3×2 continuous-time scratch

	bakes     int // ZOH discretizations actually performed
	amortized int // lane rebuilds answered by another lane's bake (batch only)
}

func newModelGroup(h harvester.Params, rin, dt float64) *modelGroup {
	return &modelGroup{
		h:   h,
		rin: rin,
		dt:  dt,
		ws:  la.NewZOHWorkspace(3, 2),
		a:   la.NewMatrix(3, 3),
		b:   la.NewMatrix(3, 2),
	}
}

// bake discretizes the three piecewise-linear regions for gap and stores
// the result in the memo under bits, returning the filled entry. The float
// operations are exactly those of the pre-split fastModel.rebuild, so the
// baked matrices are bit-identical no matter which lane triggers the bake.
func (g *modelGroup) bake(bits uint64, gap float64) (*gapEntry, error) {
	k := g.h.EffectiveStiffness(gap)
	l := g.h.CoilL
	if l <= 0 {
		l = 1e-3 // tiny-but-finite inductance keeps the 3-state form uniform
	}
	rTot := g.h.CoilR + g.rin
	var fad [3][9]float64
	var fbd [3][6]float64
	build := func(r region, kEff, fOff float64) error {
		av := g.a.Data()
		av[0], av[1], av[2] = 0, 1, 0
		av[3], av[4], av[5] = -kEff/g.h.Mass, -g.h.DampingC/g.h.Mass, -g.h.Gamma/g.h.Mass
		av[6], av[7], av[8] = 0, g.h.Gamma/l, -rTot/l
		bv := g.b.Data()
		bv[0], bv[1] = 0, 0
		bv[2], bv[3] = -1, fOff/g.h.Mass
		bv[4], bv[5] = 0, 0
		ad, bd, err := g.ws.Discretize(g.a, g.b, g.dt)
		if err != nil {
			return err
		}
		copy(fad[r][:], ad.Data())
		copy(fbd[r][:], bd.Data())
		return nil
	}
	if err := build(regionFree, k, 0); err != nil {
		return nil, err
	}
	// In contact: stop spring adds stiffness and a constant restoring
	// offset ±StopK·MaxDisp.
	if err := build(regionUpper, k+g.h.StopK, g.h.StopK*g.h.MaxDisp); err != nil {
		return nil, err
	}
	if err := build(regionLower, k+g.h.StopK, -g.h.StopK*g.h.MaxDisp); err != nil {
		return nil, err
	}
	g.bakes++
	e := g.memo.slot(bits)
	e.ad, e.bd = fad, fbd
	return e, nil
}

// gapKeys replays the gapMemo LRU policy over one lane's own request
// stream without storing any matrices. RunBatch lanes use it to keep their
// per-lane Rebuilds/RebuildHits counters exactly what a solo RunFast of
// the same design would report, even though the actual matrix work is
// amortized through the shared group memo.
type gapKeys struct {
	bits [gapMemoCap]uint64
	tick [gapMemoCap]uint64
	n    int
	t    uint64
}

// request records one rebuild request and reports whether a lane-private
// memo would have missed it.
func (g *gapKeys) request(b uint64) bool {
	for i := 0; i < g.n; i++ {
		if g.bits[i] == b {
			g.t++
			g.tick[i] = g.t
			return false
		}
	}
	idx := 0
	if g.n < gapMemoCap {
		idx = g.n
		g.n++
	} else {
		for i := 1; i < gapMemoCap; i++ {
			if g.tick[i] < g.tick[idx] {
				idx = i
			}
		}
	}
	g.t++
	g.bits[idx] = b
	g.tick[idx] = g.t
	return true
}

// fastModel is the per-lane half of the fast engine's model: the lane's
// current gap and its baked per-region update matrices, flat row-major so
// step is straight-line float math — no method calls, no bounds checks, no
// allocations. State y = [x, v, i]; input u = [accel, 1] (the constant
// channel carries the end-stop offset force). Rebuild work lives in the
// (possibly shared) modelGroup.
type fastModel struct {
	g    *modelGroup
	gap  float64
	fres float64 // g.h.ResonantFreq(gap), cached for the drift check
	ad   [3][9]float64
	bd   [3][6]float64

	// shadow, when non-nil (batch lanes), keeps the as-if-alone counters
	// honest against the shared memo; nil (RunFast) mirrors the group memo
	// outcome directly.
	shadow *gapKeys

	rebuilds int // rebuilds a lane-private memo would have missed
	memoHits int // rebuilds a lane-private memo would have answered
}

func newFastModel(h harvester.Params, rin, dt float64) *fastModel {
	return &fastModel{g: newModelGroup(h, rin, dt)}
}

func (m *fastModel) rebuild(gap float64) error {
	m.gap = gap
	m.fres = m.g.h.ResonantFreq(gap)
	bits := math.Float64bits(gap)
	if m.shadow == nil {
		// Single lane: the group memo is the lane's own memo.
		if e := m.g.memo.lookup(bits); e != nil {
			m.ad, m.bd = e.ad, e.bd
			m.memoHits++
			return nil
		}
		e, err := m.g.bake(bits, gap)
		if err != nil {
			return err
		}
		m.ad, m.bd = e.ad, e.bd
		m.rebuilds++
		return nil
	}
	// Batch lane: count as-if-alone via the shadow LRU, then satisfy the
	// request from the shared memo (possibly baked by another lane).
	aloneMiss := m.shadow.request(bits)
	e := m.g.memo.lookup(bits)
	if e == nil {
		var err error
		if e, err = m.g.bake(bits, gap); err != nil {
			return err
		}
	} else if aloneMiss {
		m.g.amortized++ // another lane's bake answered this lane's rebuild
	}
	m.ad, m.bd = e.ad, e.bd
	if aloneMiss {
		m.rebuilds++
	} else {
		m.memoHits++
	}
	return nil
}

// step performs one explicit linearized update: y ← Ad·y + Bd·u. The body
// is straight-line float math over the baked arrays: zero method calls,
// zero bounds checks, zero allocations.
func (m *fastModel) step(y *[3]float64, accel float64) {
	ad, bd := &m.ad[regionFree], &m.bd[regionFree]
	if x := y[0]; x > m.g.h.MaxDisp {
		ad, bd = &m.ad[regionUpper], &m.bd[regionUpper]
	} else if x < -m.g.h.MaxDisp {
		ad, bd = &m.ad[regionLower], &m.bd[regionLower]
	}
	y0, y1, y2 := y[0], y[1], y[2]
	o0 := ad[0]*y0 + ad[1]*y1 + ad[2]*y2 + bd[0]*accel + bd[1]
	o1 := ad[3]*y0 + ad[4]*y1 + ad[5]*y2 + bd[2]*accel + bd[3]
	o2 := ad[6]*y0 + ad[7]*y1 + ad[8]*y2 + bd[4]*accel + bd[5]
	y[0], y[1], y[2] = o0, o1, o2
}

// RunFast simulates the design with the explicit linearized state-space
// engine.
func RunFast(d Design, cfg Config) (*Result, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	start := time.Now()
	slow, err := newSlowSide(d)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	rec := &recorder{cfg: cfg, d: d, res: res}

	model := newFastModel(d.Harv, d.Mult.InputR, cfg.DtSlow)
	if err := model.rebuild(slow.gap); err != nil {
		return nil, err
	}

	var y [3]float64 // x, v, i
	nSteps := int(math.Ceil(cfg.Horizon / cfg.DtSlow))
	rec.init(nSteps)
	// The gap only moves while the tuner's actuator does, so the drift
	// check memoizes the resonance of the last gap it saw (and model.fres
	// caches the resonance at the matrices' own gap). Without a tuner the
	// gap is constant and the check is skipped outright — either way the
	// comparison sees exactly the values the unmemoized form would.
	tunerOn := slow.ctrl != nil
	gamma := d.Harv.Gamma // EMF(v) = Gamma·v, inlined for the hot loop
	lastGap, lastFres := slow.gap, model.fres
	for k := 0; k < nSteps; k++ {
		t := float64(k) * cfg.DtSlow
		// Midpoint sampling of the excitation halves the ZOH phase error.
		accel := cfg.Source.Accel(t + cfg.DtSlow/2)
		model.step(&y, accel)

		emf := gamma * y[1]
		gap := slow.step(cfg.DtSlow, emf, cfg.Source.DominantFreq(t))
		if tunerOn {
			if gap != lastGap {
				lastGap, lastFres = gap, d.Harv.ResonantFreq(gap)
			}
			if math.Abs(lastFres-model.fres) > rebuildTolHz {
				if err := model.rebuild(gap); err != nil {
					return nil, err
				}
			}
		}
		rec.record(t+cfg.DtSlow, slow.vs, y[0], emf, gap)
	}
	res.Steps = nSteps
	res.Rebuilds = model.rebuilds
	res.RebuildHits = model.memoHits
	slow.finish(res, cfg.Horizon)
	res.Elapsed = time.Since(start)
	return res, nil
}

// RunReference simulates the design with the implicit trapezoidal
// Newton–Raphson engine, sub-stepping each slow interval at cfg.DtRef.
func RunReference(d Design, cfg Config) (*Result, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	start := time.Now()
	slow, err := newSlowSide(d)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	rec := &recorder{cfg: cfg, d: d, res: res}

	l := d.Harv.CoilL
	if l <= 0 {
		l = 1e-3
	}
	rTot := d.Harv.CoilR + d.Mult.InputR
	gap := slow.gap
	var tBase float64
	sys := ode.Func{N: 3, F: func(tt float64, y, dy []float64) {
		a := cfg.Source.Accel(tBase + tt)
		k := d.Harv.EffectiveStiffness(gap)
		dy[0] = y[1]
		dy[1] = (-k*y[0] - d.Harv.DampingC*y[1] - d.Harv.StopForce(y[0]) -
			d.Harv.Gamma*y[2] - d.Harv.Mass*a) / d.Harv.Mass
		dy[2] = (d.Harv.Gamma*y[1] - rTot*y[2]) / l
	}}

	y := []float64{0, 0, 0}
	icfg := ode.ImplicitConfig{}
	nSteps := int(math.Ceil(cfg.Horizon / cfg.DtSlow))
	rec.init(nSteps)
	for k := 0; k < nSteps; k++ {
		t := float64(k) * cfg.DtSlow
		tBase = t
		yEnd, st, err := ode.ImplicitTrapezoidal(sys, 0, cfg.DtSlow, cfg.DtRef, y, icfg, nil)
		if err != nil {
			return nil, fmt.Errorf("sim: reference engine failed at t=%g: %w", t, err)
		}
		copy(y, yEnd)
		res.Steps += st.Steps
		res.NewtonIters += st.NewtonIters
		res.FuncEvals += st.FuncEvals

		emf := d.Harv.EMF(y[1])
		gap = slow.step(cfg.DtSlow, emf, cfg.Source.DominantFreq(t))
		rec.record(t+cfg.DtSlow, slow.vs, y[0], emf, gap)
	}
	slow.finish(res, cfg.Horizon)
	res.Elapsed = time.Since(start)
	return res, nil
}
