// Package load is the overload-resilience toolkit behind the ehdoed
// daemon: per-endpoint admission control (a concurrency semaphore with a
// bounded, deadline-aware wait queue), a bounded response memo for the
// lock-free read path, and an open-loop load generator that measures how
// a server behaves under sustained traffic.
//
// The design goal is predictable degradation: past capacity, requests are
// shed immediately with a machine-readable reason and a retry hint,
// instead of queueing without bound until every caller times out. The
// same shaping argument appears in energy-harvesting networking — a node
// with a finite buffer must gate admission against what it can actually
// serve (Sharma et al., arXiv 0809.3908) and a self-sufficient system is
// designed to degrade gracefully rather than collapse (Bui & Rossi,
// arXiv 1310.7717).
package load

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// Gauge is the minimal instrument the limiter publishes live state
// through; *obs.Gauge satisfies it.
type Gauge interface{ Add(delta float64) }

// Shed reasons carried by ShedError.Reason.
const (
	// ReasonQueueFull: every concurrency slot is busy and the wait queue
	// is at capacity.
	ReasonQueueFull = "queue_full"
	// ReasonDeadline: the request's own deadline would expire before a
	// slot could possibly be granted, so it was rejected without waiting
	// (or its context ended while it queued).
	ReasonDeadline = "deadline"
	// ReasonWaitTimeout: the request queued for the limiter's full
	// MaxWait without a slot freeing up.
	ReasonWaitTimeout = "wait_timeout"
)

// ShedError reports an admission rejection: why the request was shed and
// how long the caller should back off before retrying.
type ShedError struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("load: shed (%s), retry after %s", e.Reason, e.RetryAfter)
}

// LimiterConfig bounds one endpoint's concurrent work.
type LimiterConfig struct {
	// MaxConcurrent is the number of requests served at once (min 1).
	MaxConcurrent int
	// MaxQueue bounds the requests allowed to wait for a slot; 0 sheds
	// immediately whenever every slot is busy.
	MaxQueue int
	// MaxWait bounds how long a queued request may wait before it is
	// shed (default 500ms). A request whose own deadline is sooner waits
	// only until that deadline.
	MaxWait time.Duration
	// RetryAfter is the advisory backoff attached to shed errors
	// (default 1s).
	RetryAfter time.Duration
	// InflightGauge and QueueGauge, when set, track the live admitted and
	// queued counts (e.g. obs gauges rendered on /metrics).
	InflightGauge Gauge
	QueueGauge    Gauge
}

// Limiter is a concurrency semaphore with a bounded, deadline-aware wait
// queue. Safe for concurrent use.
type Limiter struct {
	slots      chan struct{}
	maxQueue   int64
	maxWait    time.Duration
	retryAfter time.Duration
	inflight   atomic.Int64
	queued     atomic.Int64
	ig, qg     Gauge
}

// NewLimiter builds a limiter from cfg, applying the documented defaults.
func NewLimiter(cfg LimiterConfig) *Limiter {
	if cfg.MaxConcurrent < 1 {
		cfg.MaxConcurrent = 1
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = 500 * time.Millisecond
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	return &Limiter{
		slots:      make(chan struct{}, cfg.MaxConcurrent),
		maxQueue:   int64(cfg.MaxQueue),
		maxWait:    cfg.MaxWait,
		retryAfter: cfg.RetryAfter,
		ig:         cfg.InflightGauge,
		qg:         cfg.QueueGauge,
	}
}

// Inflight reports the number of currently admitted requests.
func (l *Limiter) Inflight() int { return int(l.inflight.Load()) }

// QueueDepth reports the number of requests waiting for a slot.
func (l *Limiter) QueueDepth() int { return int(l.queued.Load()) }

// shed builds the typed rejection.
func (l *Limiter) shed(reason string) error {
	return &ShedError{Reason: reason, RetryAfter: l.retryAfter}
}

func (l *Limiter) admit() func() {
	l.inflight.Add(1)
	if l.ig != nil {
		l.ig.Add(1)
	}
	var released atomic.Bool
	return func() {
		if !released.CompareAndSwap(false, true) {
			return
		}
		<-l.slots
		l.inflight.Add(-1)
		if l.ig != nil {
			l.ig.Add(-1)
		}
	}
}

// Acquire admits the caller, queues it (bounded, deadline-aware), or
// sheds it with a *ShedError. On success the returned release function
// frees the slot (idempotent; call it exactly when the work is done).
// waited is the time spent in the queue — reported for shed requests too,
// so wait-time metrics capture the cost of rejected work.
func (l *Limiter) Acquire(ctx context.Context) (release func(), waited time.Duration, err error) {
	// Fast path: a slot is free right now.
	select {
	case l.slots <- struct{}{}:
		return l.admit(), 0, nil
	default:
	}
	// Saturated: try to join the bounded wait queue.
	if l.maxQueue == 0 {
		return nil, 0, l.shed(ReasonQueueFull)
	}
	for {
		n := l.queued.Load()
		if n >= l.maxQueue {
			return nil, 0, l.shed(ReasonQueueFull)
		}
		if l.queued.CompareAndSwap(n, n+1) {
			break
		}
	}
	if l.qg != nil {
		l.qg.Add(1)
	}
	defer func() {
		l.queued.Add(-1)
		if l.qg != nil {
			l.qg.Add(-1)
		}
	}()
	// Deadline-aware shedding: never wait past the request's own
	// deadline, and reject immediately when that deadline cannot be met
	// at all — the client would only time out holding a queue slot.
	budget := l.maxWait
	deadlineClipped := false
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem < budget {
			budget = rem
			deadlineClipped = true
		}
	}
	if budget <= 0 {
		return nil, 0, l.shed(ReasonDeadline)
	}
	start := time.Now()
	timer := time.NewTimer(budget)
	defer timer.Stop()
	select {
	case l.slots <- struct{}{}:
		return l.admit(), time.Since(start), nil
	case <-ctx.Done():
		return nil, time.Since(start), l.shed(ReasonDeadline)
	case <-timer.C:
		reason := ReasonWaitTimeout
		if deadlineClipped {
			reason = ReasonDeadline
		}
		return nil, time.Since(start), l.shed(reason)
	}
}
