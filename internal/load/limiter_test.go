package load

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLimiterAdmitsUpToCapacity: MaxConcurrent requests are admitted
// immediately, the next MaxQueue wait, and the one past both is shed with
// queue_full before any timer fires.
func TestLimiterAdmitsUpToCapacity(t *testing.T) {
	l := NewLimiter(LimiterConfig{MaxConcurrent: 2, MaxQueue: 1, MaxWait: 50 * time.Millisecond})
	ctx := context.Background()

	r1, w1, err := l.Acquire(ctx)
	if err != nil || w1 != 0 {
		t.Fatalf("first acquire: waited %s, err %v", w1, err)
	}
	r2, _, err := l.Acquire(ctx)
	if err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	if got := l.Inflight(); got != 2 {
		t.Fatalf("inflight %d, want 2", got)
	}

	// Third queues; fill the queue from a goroutine, then the fourth must
	// shed immediately with queue_full.
	queued := make(chan error, 1)
	go func() {
		rel, _, err := l.Acquire(ctx)
		if err == nil {
			rel()
		}
		queued <- err
	}()
	waitFor(t, func() bool { return l.QueueDepth() == 1 })
	start := time.Now()
	_, _, err = l.Acquire(ctx)
	var sh *ShedError
	if !errors.As(err, &sh) || sh.Reason != ReasonQueueFull {
		t.Fatalf("overflow acquire: %v, want queue_full shed", err)
	}
	if d := time.Since(start); d > 40*time.Millisecond {
		t.Fatalf("queue_full shed took %s, want immediate", d)
	}
	if sh.RetryAfter <= 0 {
		t.Fatalf("shed retry-after %s, want positive", sh.RetryAfter)
	}

	// Releasing a slot admits the queued waiter.
	r1()
	if err := <-queued; err != nil {
		t.Fatalf("queued acquire after release: %v", err)
	}
	r2()
	waitFor(t, func() bool { return l.Inflight() == 0 && l.QueueDepth() == 0 })
}

// TestLimiterWaitTimeout: a queued request is shed with wait_timeout once
// MaxWait elapses with no slot freed, and the recorded wait is ~MaxWait.
func TestLimiterWaitTimeout(t *testing.T) {
	l := NewLimiter(LimiterConfig{MaxConcurrent: 1, MaxQueue: 4, MaxWait: 30 * time.Millisecond})
	rel, _, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()

	_, waited, err := l.Acquire(context.Background())
	var sh *ShedError
	if !errors.As(err, &sh) || sh.Reason != ReasonWaitTimeout {
		t.Fatalf("acquire on saturated limiter: %v, want wait_timeout shed", err)
	}
	if waited < 25*time.Millisecond {
		t.Fatalf("shed after %s, want ~30ms queue wait", waited)
	}
}

// TestLimiterDeadlineAware: a request whose context deadline is already
// unmeetable is rejected immediately, and one whose deadline is shorter
// than MaxWait is shed at the deadline with reason deadline.
func TestLimiterDeadlineAware(t *testing.T) {
	l := NewLimiter(LimiterConfig{MaxConcurrent: 1, MaxQueue: 4, MaxWait: time.Second})
	rel, _, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()

	// Expired deadline: immediate rejection, no queue wait.
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	start := time.Now()
	_, _, err = l.Acquire(expired)
	var sh *ShedError
	if !errors.As(err, &sh) || sh.Reason != ReasonDeadline {
		t.Fatalf("expired-deadline acquire: %v, want deadline shed", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("expired-deadline shed took %s, want immediate", d)
	}

	// Deadline shorter than MaxWait: shed at ~the deadline, not MaxWait.
	short, cancel2 := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel2()
	start = time.Now()
	_, _, err = l.Acquire(short)
	if !errors.As(err, &sh) || sh.Reason != ReasonDeadline {
		t.Fatalf("short-deadline acquire: %v, want deadline shed", err)
	}
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("short-deadline shed took %s, want ~25ms", d)
	}
}

// TestLimiterReleaseIdempotent: double release must not free two slots.
func TestLimiterReleaseIdempotent(t *testing.T) {
	l := NewLimiter(LimiterConfig{MaxConcurrent: 1, MaxQueue: 0})
	rel, _, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel()
	rel()
	if got := l.Inflight(); got != 0 {
		t.Fatalf("inflight after double release %d, want 0", got)
	}
	// The slot is usable again, exactly once.
	rel2, _, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("reacquire after double release: %v", err)
	}
	if _, _, err := l.Acquire(context.Background()); err == nil {
		t.Fatal("second concurrent acquire succeeded on a 1-slot limiter")
	}
	rel2()
}

// TestLimiterGauges: the optional gauges track admitted and queued counts
// and return to zero once the storm passes.
func TestLimiterGauges(t *testing.T) {
	var ig, qg testGauge
	l := NewLimiter(LimiterConfig{
		MaxConcurrent: 2, MaxQueue: 8, MaxWait: time.Second,
		InflightGauge: &ig, QueueGauge: &qg,
	})
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, _, err := l.Acquire(context.Background())
			if err != nil {
				return
			}
			time.Sleep(time.Millisecond)
			rel()
		}()
	}
	wg.Wait()
	if v := ig.value(); v != 0 {
		t.Fatalf("inflight gauge settled at %g, want 0", v)
	}
	if v := qg.value(); v != 0 {
		t.Fatalf("queue gauge settled at %g, want 0", v)
	}
}

// TestLimiterConcurrentNeverExceedsCap hammers the limiter and asserts
// the concurrent admitted count never exceeds MaxConcurrent.
func TestLimiterConcurrentNeverExceedsCap(t *testing.T) {
	const cap = 3
	l := NewLimiter(LimiterConfig{MaxConcurrent: cap, MaxQueue: 64, MaxWait: time.Second})
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, _, err := l.Acquire(context.Background())
			if err != nil {
				return
			}
			defer rel()
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(100 * time.Microsecond)
			cur.Add(-1)
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > cap {
		t.Fatalf("peak concurrency %d exceeded cap %d", p, cap)
	}
}

type testGauge struct {
	mu sync.Mutex
	v  float64
}

func (g *testGauge) Add(delta float64) {
	g.mu.Lock()
	g.v += delta
	g.mu.Unlock()
}

func (g *testGauge) value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}
