package load

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestMemoLRU: capacity is enforced by least-recently-used eviction, and
// Get refreshes recency.
func TestMemoLRU(t *testing.T) {
	m := NewMemo(2)
	m.Put("a", []byte("A"))
	m.Put("b", []byte("B"))
	if _, ok := m.Get("a"); !ok { // refresh a: b is now the LRU entry
		t.Fatal("a missing")
	}
	m.Put("c", []byte("C"))
	if _, ok := m.Get("b"); ok {
		t.Fatal("b survived eviction past capacity")
	}
	if v, ok := m.Get("a"); !ok || !bytes.Equal(v, []byte("A")) {
		t.Fatalf("a after eviction: %q %v", v, ok)
	}
	if v, ok := m.Get("c"); !ok || !bytes.Equal(v, []byte("C")) {
		t.Fatalf("c after eviction: %q %v", v, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("len %d, want 2", m.Len())
	}
}

// TestMemoCounters: hits and misses are counted exactly.
func TestMemoCounters(t *testing.T) {
	m := NewMemo(4)
	m.Put("k", []byte("v"))
	m.Get("k")
	m.Get("k")
	m.Get("absent")
	if h, ms := m.Hits(), m.Misses(); h != 2 || ms != 1 {
		t.Fatalf("hits %d misses %d, want 2 and 1", h, ms)
	}
}

// TestMemoOverwrite: a Put on an existing key replaces the value without
// growing the memo.
func TestMemoOverwrite(t *testing.T) {
	m := NewMemo(4)
	m.Put("k", []byte("old"))
	m.Put("k", []byte("new"))
	if v, _ := m.Get("k"); !bytes.Equal(v, []byte("new")) {
		t.Fatalf("got %q, want new", v)
	}
	if m.Len() != 1 {
		t.Fatalf("len %d, want 1", m.Len())
	}
}

// TestMemoConcurrent exercises the memo under the race detector.
func TestMemoConcurrent(t *testing.T) {
	m := NewMemo(16)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				key := fmt.Sprintf("k%d", (i+j)%32)
				m.Put(key, []byte(key))
				m.Get(key)
			}
		}(i)
	}
	wg.Wait()
	if m.Len() > 16 {
		t.Fatalf("len %d exceeded capacity 16", m.Len())
	}
}
