package load

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Target is one request kind in the generated mix. Do issues the request
// and reports the HTTP status it got (0 with err != nil for transport
// failures). The generator classifies 2xx as served, 429/503 as shed, and
// everything else as failed.
type Target struct {
	Name   string
	Weight float64
	Do     func(ctx context.Context) (status int, err error)
}

// GenConfig configures one open-loop run: arrivals fire on the schedule
// regardless of completions — exactly how independent clients behave — so
// an overloaded server sees the offered rate, not a closed feedback loop
// that politely slows down with it.
type GenConfig struct {
	// QPS is the offered arrival rate (required, > 0).
	QPS float64
	// Duration bounds the arrival window (required, > 0); in-flight
	// requests are drained before Run returns.
	Duration time.Duration
	// Targets is the weighted request mix (required, non-empty).
	Targets []Target
	// Seed makes the arrival process and mix choices reproducible.
	Seed int64
	// Uniform spaces arrivals evenly instead of the default Poisson
	// (exponential inter-arrival) process.
	Uniform bool
	// Timeout bounds each request (default 5s).
	Timeout time.Duration
}

// Quantiles summarizes a latency population in milliseconds.
type Quantiles struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// HistBucket is one cumulative latency-histogram bucket; the trailing
// +Inf bucket carries LeMs = -1 (JSON has no infinity).
type HistBucket struct {
	LeMs  float64 `json:"le_ms"`
	Count int     `json:"count"`
}

// histBounds are the latency histogram upper bounds in milliseconds; an
// implicit +Inf bucket (LeMs = -1 on the wire) follows.
var histBounds = []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500}

// GenReport is the outcome of one run. Latency quantiles cover served
// (admitted, 2xx) requests only: shed requests are designed to be cheap
// and would drag the percentiles of the work that actually completed.
type GenReport struct {
	Offered    int     `json:"offered"`
	Served     int     `json:"served"`
	Shed       int     `json:"shed"`
	Failed     int     `json:"failed"`
	DurationS  float64 `json:"duration_s"`
	OfferedQPS float64 `json:"offered_qps"`
	// GoodputQPS is served requests per second of the arrival window.
	GoodputQPS float64 `json:"goodput_qps"`
	// ShedRate is shed / offered (0 when nothing was offered).
	ShedRate float64 `json:"shed_rate"`
	// Latency summarizes served-request latency; ShedLatency the time
	// wasted on shed ones (it should be near zero — shedding that queues
	// first defeats the point).
	Latency     Quantiles    `json:"latency_ms"`
	ShedLatency Quantiles    `json:"shed_latency_ms"`
	Hist        []HistBucket `json:"hist,omitempty"`
	ByTarget    map[string]int `json:"by_target,omitempty"`
}

// Run drives one open-loop load run and aggregates the outcome. The
// context cancels the run early; requests already in flight are drained.
func Run(ctx context.Context, cfg GenConfig) (*GenReport, error) {
	if cfg.QPS <= 0 {
		return nil, fmt.Errorf("load: qps %g must be positive", cfg.QPS)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("load: duration %s must be positive", cfg.Duration)
	}
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("load: no targets")
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	var totalWeight float64
	for i, t := range cfg.Targets {
		if t.Weight < 0 || t.Do == nil {
			return nil, fmt.Errorf("load: target %d (%s) needs a non-negative weight and a Do", i, t.Name)
		}
		totalWeight += t.Weight
	}
	if totalWeight <= 0 {
		return nil, fmt.Errorf("load: target weights sum to zero")
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	var (
		mu       sync.Mutex
		servedMs []float64
		shedMs   []float64
		byTarget = make(map[string]int)
		served   int
		shed     int
		failed   int
	)
	var wg sync.WaitGroup
	start := time.Now()
	end := start.Add(cfg.Duration)
	next := start
	offered := 0
	for {
		// The schedule is drawn sequentially from one seeded source, so a
		// given (seed, qps, duration) always offers the same arrivals.
		step := 1 / cfg.QPS
		if !cfg.Uniform {
			step = rng.ExpFloat64() / cfg.QPS
		}
		next = next.Add(time.Duration(step * float64(time.Second)))
		if next.After(end) {
			break
		}
		if !sleepUntil(ctx, next) {
			break
		}
		tg := pick(cfg.Targets, totalWeight, rng.Float64())
		offered++
		wg.Add(1)
		go func(tg Target) {
			defer wg.Done()
			rctx, cancel := context.WithTimeout(ctx, timeout)
			defer cancel()
			t0 := time.Now()
			status, err := tg.Do(rctx)
			ms := float64(time.Since(t0).Microseconds()) / 1e3
			mu.Lock()
			defer mu.Unlock()
			byTarget[tg.Name]++
			switch {
			case err == nil && status >= 200 && status <= 299:
				served++
				servedMs = append(servedMs, ms)
			case err == nil && (status == 429 || status == 503):
				shed++
				shedMs = append(shedMs, ms)
			default:
				failed++
			}
		}(tg)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &GenReport{
		Offered:     offered,
		Served:      served,
		Shed:        shed,
		Failed:      failed,
		DurationS:   elapsed.Seconds(),
		Latency:     quantiles(servedMs),
		ShedLatency: quantiles(shedMs),
		Hist:        histogram(servedMs),
		ByTarget:    byTarget,
	}
	if elapsed > 0 {
		rep.OfferedQPS = float64(offered) / elapsed.Seconds()
		rep.GoodputQPS = float64(served) / elapsed.Seconds()
	}
	if offered > 0 {
		rep.ShedRate = float64(shed) / float64(offered)
	}
	return rep, nil
}

// sleepUntil waits for the wall clock to reach t; false means the context
// ended first.
func sleepUntil(ctx context.Context, t time.Time) bool {
	d := time.Until(t)
	if d <= 0 {
		// Open loop: a late scheduler fires the arrival immediately, it
		// never skips it.
		return ctx.Err() == nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// pick selects a target by cumulative weight from one uniform draw.
func pick(targets []Target, total, u float64) Target {
	x := u * total
	for _, t := range targets {
		x -= t.Weight
		if x < 0 {
			return t
		}
	}
	return targets[len(targets)-1]
}

// quantiles summarizes a sample; the zero value covers an empty one.
func quantiles(ms []float64) Quantiles {
	if len(ms) == 0 {
		return Quantiles{}
	}
	s := append([]float64(nil), ms...)
	sort.Float64s(s)
	at := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(s)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(s) {
			i = len(s) - 1
		}
		return s[i]
	}
	return Quantiles{P50: at(0.50), P90: at(0.90), P99: at(0.99), Max: s[len(s)-1]}
}

// histogram renders the cumulative latency histogram; the trailing +Inf
// bucket carries LeMs = -1 so the JSON stays finite.
func histogram(ms []float64) []HistBucket {
	out := make([]HistBucket, 0, len(histBounds)+1)
	for _, ub := range histBounds {
		n := 0
		for _, v := range ms {
			if v <= ub {
				n++
			}
		}
		out = append(out, HistBucket{LeMs: ub, Count: n})
	}
	out = append(out, HistBucket{LeMs: -1, Count: len(ms)})
	return out
}
