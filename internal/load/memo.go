package load

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Memo is a bounded LRU memo for rendered responses: the serving hot path
// stores the exact bytes it wrote under a key that includes the model's
// ETag, so a repeat of an identical request is answered in O(1) with a
// byte-identical body, and a registry hot-swap invalidates every entry of
// the old model atomically — the new ETag simply never matches the old
// keys, which age out of the LRU. Safe for concurrent use.
type Memo struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // front = most recently used
	idx    map[string]*list.Element
	hits   atomic.Uint64
	misses atomic.Uint64
}

type memoEntry struct {
	key string
	val []byte
}

// NewMemo returns a memo bounded to capacity entries (default 256).
func NewMemo(capacity int) *Memo {
	if capacity <= 0 {
		capacity = 256
	}
	return &Memo{cap: capacity, ll: list.New(), idx: make(map[string]*list.Element)}
}

// Get fetches the memoized bytes for key, refreshing its recency. The
// returned slice must not be mutated.
func (m *Memo) Get(key string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.idx[key]
	if !ok {
		m.misses.Add(1)
		return nil, false
	}
	m.ll.MoveToFront(el)
	m.hits.Add(1)
	return el.Value.(*memoEntry).val, true
}

// Put stores val under key, evicting the least recently used entry past
// capacity. The memo keeps the slice as-is; callers must not mutate it.
func (m *Memo) Put(key string, val []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.idx[key]; ok {
		el.Value.(*memoEntry).val = val
		m.ll.MoveToFront(el)
		return
	}
	m.idx[key] = m.ll.PushFront(&memoEntry{key: key, val: val})
	for m.ll.Len() > m.cap {
		last := m.ll.Back()
		m.ll.Remove(last)
		delete(m.idx, last.Value.(*memoEntry).key)
	}
}

// Len reports the number of memoized entries.
func (m *Memo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ll.Len()
}

// Hits reports the lifetime hit count.
func (m *Memo) Hits() uint64 { return m.hits.Load() }

// Misses reports the lifetime miss count.
func (m *Memo) Misses() uint64 { return m.misses.Load() }
