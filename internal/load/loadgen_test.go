package load

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunClassifiesOutcomes: 2xx is served, 429/503 is shed, transport
// errors and other statuses are failed; rates and quantiles follow.
func TestRunClassifiesOutcomes(t *testing.T) {
	var n atomic.Int64
	rep, err := Run(context.Background(), GenConfig{
		QPS:      400,
		Duration: 250 * time.Millisecond,
		Uniform:  true,
		Seed:     1,
		Targets: []Target{{
			Name: "mixed", Weight: 1,
			Do: func(ctx context.Context) (int, error) {
				switch n.Add(1) % 4 {
				case 0:
					return 429, nil
				case 1:
					return 0, errors.New("conn refused")
				default:
					return 200, nil
				}
			},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offered == 0 || rep.Offered != rep.Served+rep.Shed+rep.Failed {
		t.Fatalf("offered %d != served %d + shed %d + failed %d",
			rep.Offered, rep.Served, rep.Shed, rep.Failed)
	}
	if rep.Served == 0 || rep.Shed == 0 || rep.Failed == 0 {
		t.Fatalf("want every class populated: %+v", rep)
	}
	if rep.ShedRate <= 0 || rep.ShedRate >= 1 {
		t.Fatalf("shed rate %g out of (0,1)", rep.ShedRate)
	}
	if rep.GoodputQPS <= 0 || rep.GoodputQPS > rep.OfferedQPS+1e-9 {
		t.Fatalf("goodput %g vs offered %g", rep.GoodputQPS, rep.OfferedQPS)
	}
	if rep.Latency.P99 < rep.Latency.P50 || rep.Latency.Max < rep.Latency.P99 {
		t.Fatalf("quantiles out of order: %+v", rep.Latency)
	}
	if len(rep.Hist) != len(histBounds)+1 {
		t.Fatalf("hist has %d buckets, want %d", len(rep.Hist), len(histBounds)+1)
	}
	if last := rep.Hist[len(rep.Hist)-1]; last.Count != rep.Served {
		t.Fatalf("+Inf bucket %d, want served count %d", last.Count, rep.Served)
	}
}

// TestRunOpenLoop: arrivals follow the offered schedule even when the
// server is slow — the generator must not close the loop on completions.
func TestRunOpenLoop(t *testing.T) {
	var inflightPeak, inflight atomic.Int64
	rep, err := Run(context.Background(), GenConfig{
		QPS:      200,
		Duration: 300 * time.Millisecond,
		Uniform:  true,
		Targets: []Target{{
			Name: "slow", Weight: 1,
			Do: func(ctx context.Context) (int, error) {
				n := inflight.Add(1)
				defer inflight.Add(-1)
				for {
					p := inflightPeak.Load()
					if n <= p || inflightPeak.CompareAndSwap(p, n) {
						break
					}
				}
				time.Sleep(50 * time.Millisecond) // far slower than the 5ms arrival spacing
				return 200, nil
			},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Closed-loop behaviour would cap inflight at 1; open loop stacks
	// arrivals while the slow requests run.
	if p := inflightPeak.Load(); p < 3 {
		t.Fatalf("inflight peak %d; open-loop arrivals should overlap a slow server", p)
	}
	if rep.Served != rep.Offered {
		t.Fatalf("slow-but-healthy server: served %d of %d", rep.Served, rep.Offered)
	}
}

// TestRunDeterministicArrivals: the same seed offers the same number of
// Poisson arrivals.
func TestRunDeterministicArrivals(t *testing.T) {
	cfg := GenConfig{
		QPS:      500,
		Duration: 200 * time.Millisecond,
		Seed:     42,
		Targets: []Target{{Name: "ok", Weight: 1, Do: func(ctx context.Context) (int, error) { return 200, nil }}},
	}
	a, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Offered != b.Offered {
		t.Fatalf("same seed offered %d then %d arrivals", a.Offered, b.Offered)
	}
}

// TestRunValidation: nonsense configs are rejected up front.
func TestRunValidation(t *testing.T) {
	ok := Target{Name: "ok", Weight: 1, Do: func(ctx context.Context) (int, error) { return 200, nil }}
	cases := []GenConfig{
		{QPS: 0, Duration: time.Second, Targets: []Target{ok}},
		{QPS: 10, Duration: 0, Targets: []Target{ok}},
		{QPS: 10, Duration: time.Second},
		{QPS: 10, Duration: time.Second, Targets: []Target{{Name: "w0", Weight: 0, Do: ok.Do}}},
		{QPS: 10, Duration: time.Second, Targets: []Target{{Name: "noDo", Weight: 1}}},
	}
	for i, cfg := range cases {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}
