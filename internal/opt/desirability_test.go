package opt

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLargerDesirability(t *testing.T) {
	d := Larger{Lo: 10, Hi: 20}
	if d.Value(5) != 0 || d.Value(10) != 0 {
		t.Fatal("below Lo must be 0")
	}
	if d.Value(25) != 1 || d.Value(20) != 1 {
		t.Fatal("above Hi must be 1")
	}
	if got := d.Value(15); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("midpoint = %v", got)
	}
	// Exponent shapes the ramp.
	d2 := Larger{Lo: 10, Hi: 20, S: 2}
	if got := d2.Value(15); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("weighted midpoint = %v", got)
	}
}

func TestSmallerDesirability(t *testing.T) {
	d := Smaller{Lo: 1, Hi: 5}
	if d.Value(0.5) != 1 || d.Value(1) != 1 {
		t.Fatal("below Lo must be 1")
	}
	if d.Value(5) != 0 || d.Value(9) != 0 {
		t.Fatal("above Hi must be 0")
	}
	if got := d.Value(3); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("midpoint = %v", got)
	}
}

func TestTargetDesirability(t *testing.T) {
	d := Target{Lo: 0, T: 5, Hi: 20}
	if d.Value(5) != 1 {
		t.Fatal("target must be 1")
	}
	if d.Value(-1) != 0 || d.Value(0) != 0 || d.Value(20) != 0 || d.Value(30) != 0 {
		t.Fatal("outside window must be 0")
	}
	if got := d.Value(2.5); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("left ramp = %v", got)
	}
	if got := d.Value(12.5); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("right ramp = %v", got)
	}
}

func TestDesirabilityRangeProperty(t *testing.T) {
	shapes := []Desirability{
		Larger{Lo: -1, Hi: 1, S: 2},
		Smaller{Lo: -1, Hi: 1, S: 0.5},
		Target{Lo: -1, T: 0, Hi: 1, SLo: 2, SHi: 0.5},
	}
	f := func(y float64) bool {
		for _, s := range shapes {
			v := s.Value(y)
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompositeValidation(t *testing.T) {
	ev := Objective(func(x []float64) float64 { return x[0] })
	if _, err := NewComposite(nil, nil, nil); err == nil {
		t.Fatal("empty composite must be rejected")
	}
	if _, err := NewComposite([]Objective{ev}, []Desirability{Larger{0, 1, 0}, Smaller{0, 1, 0}}, nil); err == nil {
		t.Fatal("length mismatch must be rejected")
	}
	if _, err := NewComposite([]Objective{ev}, []Desirability{Larger{0, 1, 0}}, []float64{1, 2}); err == nil {
		t.Fatal("weight mismatch must be rejected")
	}
}

func TestCompositeGeometricMean(t *testing.T) {
	// Two constant responses with desirabilities 0.25 and 1: D = 0.5.
	evs := []Objective{
		func(x []float64) float64 { return 0.25 }, // identity ramp below
		func(x []float64) float64 { return 5 },
	}
	shapes := []Desirability{
		Larger{Lo: 0, Hi: 1}, // d = 0.25
		Larger{Lo: 0, Hi: 1}, // d = 1
	}
	c, err := NewComposite(evs, shapes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Score([]float64{0}); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("D = %v, want 0.5", got)
	}
	bd := c.Breakdown([]float64{0})
	if bd[0] != 0.25 || bd[1] != 1 {
		t.Fatalf("breakdown = %v", bd)
	}
}

func TestCompositeVeto(t *testing.T) {
	evs := []Objective{
		func(x []float64) float64 { return 100 },
		func(x []float64) float64 { return -100 }, // totally undesirable
	}
	shapes := []Desirability{Larger{Lo: 0, Hi: 1}, Larger{Lo: 0, Hi: 1}}
	c, err := NewComposite(evs, shapes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Score([]float64{0}) != 0 {
		t.Fatal("zero desirability must veto the design")
	}
}

func TestCompositeWeights(t *testing.T) {
	evs := []Objective{
		func(x []float64) float64 { return 0.25 },
		func(x []float64) float64 { return 1 },
	}
	shapes := []Desirability{Larger{Lo: 0, Hi: 1}, Larger{Lo: 0, Hi: 1}}
	// Heavy weight on the second (perfect) response pulls D up.
	c, err := NewComposite(evs, shapes, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(0.25, 0.25) // (0.25^1·1^3)^(1/4)
	if got := c.Score([]float64{0}); math.Abs(got-want) > 1e-12 {
		t.Fatalf("weighted D = %v, want %v", got, want)
	}
}

func TestCompositeOptimization(t *testing.T) {
	// Response 1 peaks at x=0.3 (maximize), response 2 grows with |x|
	// (keep small): the compromise sits between 0 and 0.3.
	evs := []Objective{
		func(x []float64) float64 { return 1 - (x[0]-0.3)*(x[0]-0.3) },
		func(x []float64) float64 { return math.Abs(x[0]) },
	}
	shapes := []Desirability{
		Larger{Lo: 0, Hi: 1},
		Smaller{Lo: 0, Hi: 1},
	}
	// With equal weights the gradient balance puts the optimum at x = 0;
	// weighting the peaked response 3:1 moves the compromise inside
	// (0, 0.3) — analytic balance point ≈ 0.13.
	c, err := NewComposite(evs, shapes, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := NelderMead(c.Objective(), NewBounds(1), []float64{0.8}, NelderMeadConfig{MaxIters: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.X[0] <= 0.05 || res.X[0] >= 0.3 {
		t.Fatalf("compromise at %v, want inside (0.05, 0.3)", res.X[0])
	}
	if -res.F <= 0.5 {
		t.Fatalf("composite desirability %v too low", -res.F)
	}
}
