// Package opt provides the optimizers used on both sides of the paper's
// comparison:
//
//   - On the response surface (cheap evaluations): exhaustive grid search
//     and bounded Nelder–Mead — "practically instant" once the RSM exists.
//   - On the full simulator (expensive evaluations): simulated annealing
//     and a genetic algorithm — the "classical multi-variable optimization
//     methods … difficult to use, due to long CPU times" that the DoE flow
//     displaces. Their evaluation counters are the currency of table R-T5.
//
// All optimizers MINIMIZE; negate the objective to maximize. Searches are
// box-bounded in coded units (or any consistent units the caller chooses).
package opt

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Objective is a function to minimize. Implementations are free to close
// over expensive machinery (the full simulator) or a fitted surface.
type Objective func(x []float64) float64

// Result reports an optimization outcome.
type Result struct {
	X     []float64 // best point found
	F     float64   // objective there
	Evals int       // objective evaluations spent
	Iters int       // iterations / generations
}

// Bounds is a per-dimension box constraint.
type Bounds struct {
	Lo, Hi []float64
}

// NewBounds builds symmetric coded bounds (−1…+1) for k dimensions.
func NewBounds(k int) Bounds {
	lo := make([]float64, k)
	hi := make([]float64, k)
	for i := range lo {
		lo[i], hi[i] = -1, 1
	}
	return Bounds{Lo: lo, Hi: hi}
}

// Validate checks the box.
func (b Bounds) Validate() error {
	if len(b.Lo) == 0 || len(b.Lo) != len(b.Hi) {
		return fmt.Errorf("opt: bad bounds dimensions %d/%d", len(b.Lo), len(b.Hi))
	}
	for i := range b.Lo {
		if !(b.Hi[i] > b.Lo[i]) {
			return fmt.Errorf("opt: empty bound %d: [%g, %g]", i, b.Lo[i], b.Hi[i])
		}
	}
	return nil
}

// K returns the dimensionality.
func (b Bounds) K() int { return len(b.Lo) }

// Clamp projects x into the box in place.
func (b Bounds) Clamp(x []float64) {
	for i := range x {
		if x[i] < b.Lo[i] {
			x[i] = b.Lo[i]
		}
		if x[i] > b.Hi[i] {
			x[i] = b.Hi[i]
		}
	}
}

// Random returns a uniform random point inside the box.
func (b Bounds) Random(rng *rand.Rand) []float64 {
	x := make([]float64, b.K())
	for i := range x {
		x[i] = b.Lo[i] + rng.Float64()*(b.Hi[i]-b.Lo[i])
	}
	return x
}

// Quantized wraps an objective so every evaluation snaps its point to a
// lattice with `step` fraction-of-range resolution per dimension (e.g.
// 0.05 → 21 levels across each range). Stochastic searchers like SA and GA
// then revisit exact points instead of infinitesimally-near neighbours; a
// memoizing simulation layer (internal/simcache) then answers the revisits
// for free, at the cost of bounded quantization error in the optimum.
func Quantized(f Objective, b Bounds, step float64) (Objective, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if !(step > 0 && step <= 1) {
		return nil, fmt.Errorf("opt: quantization step %g must be in (0, 1]", step)
	}
	return func(x []float64) float64 {
		q := make([]float64, len(x))
		for i := range x {
			w := (b.Hi[i] - b.Lo[i]) * step
			q[i] = b.Lo[i] + math.Round((x[i]-b.Lo[i])/w)*w
		}
		b.Clamp(q)
		return f(q)
	}, nil
}

// counter wraps an objective with an evaluation counter.
type counter struct {
	f Objective
	n int
}

func (c *counter) eval(x []float64) float64 {
	c.n++
	return c.f(x)
}

// GridSearch evaluates the objective on a regular grid with pointsPerDim
// levels per dimension and returns the best point. Total cost is
// pointsPerDim^k evaluations — the brute-force sweep that is only viable
// on a fitted surface.
func GridSearch(f Objective, b Bounds, pointsPerDim int) (*Result, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if pointsPerDim < 2 {
		return nil, fmt.Errorf("opt: need ≥2 points per dimension, got %d", pointsPerDim)
	}
	k := b.K()
	total := 1
	for i := 0; i < k; i++ {
		total *= pointsPerDim
		if total > 50_000_000 {
			return nil, fmt.Errorf("opt: grid %d^%d too large", pointsPerDim, k)
		}
	}
	c := &counter{f: f}
	best := Result{F: math.Inf(1)}
	x := make([]float64, k)
	for idx := 0; idx < total; idx++ {
		rem := idx
		for j := 0; j < k; j++ {
			level := rem % pointsPerDim
			rem /= pointsPerDim
			x[j] = b.Lo[j] + float64(level)/float64(pointsPerDim-1)*(b.Hi[j]-b.Lo[j])
		}
		if v := c.eval(x); v < best.F {
			best.F = v
			best.X = append([]float64(nil), x...)
		}
	}
	best.Evals = c.n
	best.Iters = total
	return &best, nil
}

// NelderMeadConfig tunes the simplex search.
type NelderMeadConfig struct {
	MaxIters  int     // iteration cap (default 500)
	Tol       float64 // simplex spread termination tolerance (default 1e-9)
	InitScale float64 // initial simplex edge as a fraction of the box (default 0.1)
}

func (c *NelderMeadConfig) defaults() {
	if c.MaxIters <= 0 {
		c.MaxIters = 500
	}
	if c.Tol <= 0 {
		c.Tol = 1e-9
	}
	if c.InitScale <= 0 {
		c.InitScale = 0.1
	}
}

// NelderMead minimizes f with the downhill-simplex method, clamped to the
// box, starting from x0.
func NelderMead(f Objective, b Bounds, x0 []float64, cfg NelderMeadConfig) (*Result, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	k := b.K()
	if len(x0) != k {
		return nil, fmt.Errorf("opt: start point has %d dims, want %d", len(x0), k)
	}
	cfg.defaults()
	c := &counter{f: f}

	// Initial simplex: x0 plus k offset vertices.
	pts := make([][]float64, k+1)
	vals := make([]float64, k+1)
	pts[0] = append([]float64(nil), x0...)
	b.Clamp(pts[0])
	for i := 1; i <= k; i++ {
		p := append([]float64(nil), pts[0]...)
		step := cfg.InitScale * (b.Hi[i-1] - b.Lo[i-1])
		if p[i-1]+step > b.Hi[i-1] {
			step = -step
		}
		p[i-1] += step
		pts[i] = p
	}
	for i := range pts {
		vals[i] = c.eval(pts[i])
	}

	order := func() {
		idx := make([]int, k+1)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, bb int) bool { return vals[idx[a]] < vals[idx[bb]] })
		np := make([][]float64, k+1)
		nv := make([]float64, k+1)
		for i, id := range idx {
			np[i], nv[i] = pts[id], vals[id]
		}
		copy(pts, np)
		copy(vals, nv)
	}

	var iters int
	for iters = 0; iters < cfg.MaxIters; iters++ {
		order()
		// Termination: simplex collapsed in objective spread.
		if math.Abs(vals[k]-vals[0]) <= cfg.Tol*(1+math.Abs(vals[0])) {
			break
		}
		// Centroid of all but the worst.
		cen := make([]float64, k)
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				cen[j] += pts[i][j]
			}
		}
		for j := range cen {
			cen[j] /= float64(k)
		}
		moved := func(coef float64) ([]float64, float64) {
			p := make([]float64, k)
			for j := range p {
				p[j] = cen[j] + coef*(cen[j]-pts[k][j])
			}
			b.Clamp(p)
			return p, c.eval(p)
		}
		refl, fr := moved(1)
		switch {
		case fr < vals[0]:
			// Try expansion.
			exp, fe := moved(2)
			if fe < fr {
				pts[k], vals[k] = exp, fe
			} else {
				pts[k], vals[k] = refl, fr
			}
		case fr < vals[k-1]:
			pts[k], vals[k] = refl, fr
		default:
			// Contraction.
			con, fc := moved(-0.5)
			if fc < vals[k] {
				pts[k], vals[k] = con, fc
			} else {
				// Shrink toward the best vertex.
				for i := 1; i <= k; i++ {
					for j := 0; j < k; j++ {
						pts[i][j] = pts[0][j] + 0.5*(pts[i][j]-pts[0][j])
					}
					vals[i] = c.eval(pts[i])
				}
			}
		}
	}
	order()
	return &Result{X: append([]float64(nil), pts[0]...), F: vals[0], Evals: c.n, Iters: iters}, nil
}

// AnnealConfig tunes simulated annealing.
type AnnealConfig struct {
	Iters    int     // total iterations (default 2000)
	T0       float64 // initial temperature (default 1, in objective units)
	Cooling  float64 // geometric cooling rate per iteration (default 0.995)
	StepFrac float64 // proposal step as a fraction of each box width (default 0.1)
	Seed     int64
}

func (c *AnnealConfig) defaults() {
	if c.Iters <= 0 {
		c.Iters = 2000
	}
	if c.T0 <= 0 {
		c.T0 = 1
	}
	if c.Cooling <= 0 || c.Cooling >= 1 {
		c.Cooling = 0.995
	}
	if c.StepFrac <= 0 {
		c.StepFrac = 0.1
	}
}

// SimulatedAnnealing minimizes f with Metropolis acceptance and geometric
// cooling — one of the paper's "classical heuristic" baselines that needs
// thousands of expensive simulations.
func SimulatedAnnealing(f Objective, b Bounds, cfg AnnealConfig) (*Result, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &counter{f: f}

	cur := b.Random(rng)
	fCur := c.eval(cur)
	best := append([]float64(nil), cur...)
	fBest := fCur
	temp := cfg.T0
	for it := 0; it < cfg.Iters; it++ {
		prop := append([]float64(nil), cur...)
		j := rng.Intn(b.K())
		prop[j] += rng.NormFloat64() * cfg.StepFrac * (b.Hi[j] - b.Lo[j])
		b.Clamp(prop)
		fProp := c.eval(prop)
		if fProp < fCur || rng.Float64() < math.Exp(-(fProp-fCur)/math.Max(temp, 1e-300)) {
			cur, fCur = prop, fProp
			if fCur < fBest {
				fBest = fCur
				copy(best, cur)
			}
		}
		temp *= cfg.Cooling
	}
	return &Result{X: best, F: fBest, Evals: c.n, Iters: cfg.Iters}, nil
}

// GAConfig tunes the genetic algorithm.
type GAConfig struct {
	Pop       int     // population size (default 30)
	Gens      int     // generations (default 50)
	CrossProb float64 // crossover probability (default 0.9)
	MutProb   float64 // per-gene mutation probability (default 0.15)
	MutSigma  float64 // mutation std as a fraction of box width (default 0.1)
	Elites    int     // individuals copied unchanged (default 2)
	TournSize int     // tournament size (default 3)
	Seed      int64
}

func (c *GAConfig) defaults() {
	if c.Pop <= 0 {
		c.Pop = 30
	}
	if c.Gens <= 0 {
		c.Gens = 50
	}
	if c.CrossProb <= 0 {
		c.CrossProb = 0.9
	}
	if c.MutProb <= 0 {
		c.MutProb = 0.15
	}
	if c.MutSigma <= 0 {
		c.MutSigma = 0.1
	}
	if c.Elites < 0 {
		c.Elites = 0
	}
	if c.Elites >= c.Pop {
		c.Elites = c.Pop / 2
	}
	if c.TournSize <= 0 {
		c.TournSize = 3
	}
}

// GeneticAlgorithm minimizes f with a real-coded GA (tournament selection,
// blend crossover, Gaussian mutation, elitism) — the second classical
// baseline.
func GeneticAlgorithm(f Objective, b Bounds, cfg GAConfig) (*Result, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &counter{f: f}
	k := b.K()

	pop := make([][]float64, cfg.Pop)
	fit := make([]float64, cfg.Pop)
	for i := range pop {
		pop[i] = b.Random(rng)
		fit[i] = c.eval(pop[i])
	}
	tournament := func() int {
		best := rng.Intn(cfg.Pop)
		for i := 1; i < cfg.TournSize; i++ {
			if cand := rng.Intn(cfg.Pop); fit[cand] < fit[best] {
				best = cand
			}
		}
		return best
	}
	for gen := 0; gen < cfg.Gens; gen++ {
		// Rank for elitism.
		idx := make([]int, cfg.Pop)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, bb int) bool { return fit[idx[a]] < fit[idx[bb]] })
		next := make([][]float64, 0, cfg.Pop)
		nextFit := make([]float64, 0, cfg.Pop)
		for e := 0; e < cfg.Elites; e++ {
			next = append(next, append([]float64(nil), pop[idx[e]]...))
			nextFit = append(nextFit, fit[idx[e]])
		}
		for len(next) < cfg.Pop {
			p1, p2 := pop[tournament()], pop[tournament()]
			child := make([]float64, k)
			if rng.Float64() < cfg.CrossProb {
				// Blend (BLX-style) crossover.
				for j := 0; j < k; j++ {
					w := rng.Float64()
					child[j] = w*p1[j] + (1-w)*p2[j]
				}
			} else {
				copy(child, p1)
			}
			for j := 0; j < k; j++ {
				if rng.Float64() < cfg.MutProb {
					child[j] += rng.NormFloat64() * cfg.MutSigma * (b.Hi[j] - b.Lo[j])
				}
			}
			b.Clamp(child)
			next = append(next, child)
			nextFit = append(nextFit, c.eval(child))
		}
		pop, fit = next, nextFit
	}
	best := 0
	for i := range fit {
		if fit[i] < fit[best] {
			best = i
		}
	}
	return &Result{X: append([]float64(nil), pop[best]...), F: fit[best], Evals: c.n, Iters: cfg.Gens}, nil
}

// Maximize adapts a maximization objective to the minimizing optimizers.
func Maximize(f Objective) Objective {
	return func(x []float64) float64 { return -f(x) }
}
