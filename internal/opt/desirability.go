package opt

import (
	"fmt"
	"math"
)

// Desirability maps a response value onto [0, 1] — the Derringer–Suich
// approach to multi-response optimization used throughout RSM practice:
// each indicator gets its own desirability shape, and the design score is
// their geometric mean, so any completely unacceptable response (d = 0)
// vetoes the whole design.
type Desirability interface {
	// Value returns the desirability of response value y in [0, 1].
	Value(y float64) float64
}

// Larger is a larger-is-better desirability: 0 at or below Lo, 1 at or
// above Hi, with a power ramp (weight s) between.
type Larger struct {
	Lo, Hi float64
	S      float64 // ramp exponent; 0 means 1 (linear)
}

// Value implements Desirability.
func (l Larger) Value(y float64) float64 {
	return ramp((y-l.Lo)/(l.Hi-l.Lo), l.S)
}

// Smaller is a smaller-is-better desirability: 1 at or below Lo, 0 at or
// above Hi.
type Smaller struct {
	Lo, Hi float64
	S      float64
}

// Value implements Desirability.
func (s Smaller) Value(y float64) float64 {
	return ramp((s.Hi-y)/(s.Hi-s.Lo), s.S)
}

// Target is a target-is-best desirability: 1 at T, ramping to 0 at Lo and
// Hi on either side.
type Target struct {
	Lo, T, Hi float64
	SLo, SHi  float64
}

// Value implements Desirability.
func (t Target) Value(y float64) float64 {
	switch {
	case y <= t.Lo || y >= t.Hi:
		return 0
	case y <= t.T:
		return ramp((y-t.Lo)/(t.T-t.Lo), t.SLo)
	default:
		return ramp((t.Hi-y)/(t.Hi-t.T), t.SHi)
	}
}

// ramp clamps x to [0,1] and raises it to the exponent s (1 if s ≤ 0).
func ramp(x, s float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	if s <= 0 || s == 1 {
		return x
	}
	return math.Pow(x, s)
}

// CompositeDesirability combines named response evaluators with their
// desirability shapes into a single objective: the geometric mean
// D = (Π dᵢ^wᵢ)^{1/Σwᵢ}. Weights ≤ 0 default to 1.
type CompositeDesirability struct {
	evals   []Objective
	shapes  []Desirability
	weights []float64
}

// NewComposite builds a composite from parallel slices (one evaluator and
// one shape per response). weights may be nil for equal weighting.
func NewComposite(evals []Objective, shapes []Desirability, weights []float64) (*CompositeDesirability, error) {
	if len(evals) == 0 || len(evals) != len(shapes) {
		return nil, fmt.Errorf("opt: need matching evaluators and shapes, got %d/%d", len(evals), len(shapes))
	}
	if weights != nil && len(weights) != len(evals) {
		return nil, fmt.Errorf("opt: %d weights for %d responses", len(weights), len(evals))
	}
	w := make([]float64, len(evals))
	for i := range w {
		w[i] = 1
		if weights != nil && weights[i] > 0 {
			w[i] = weights[i]
		}
	}
	return &CompositeDesirability{evals: evals, shapes: shapes, weights: w}, nil
}

// Score returns the overall desirability D(x) in [0, 1].
func (c *CompositeDesirability) Score(x []float64) float64 {
	var logSum, wSum float64
	for i, ev := range c.evals {
		d := c.shapes[i].Value(ev(x))
		if d <= 0 {
			return 0
		}
		logSum += c.weights[i] * math.Log(d)
		wSum += c.weights[i]
	}
	return math.Exp(logSum / wSum)
}

// Objective returns a minimizing objective (−D) for the optimizers.
func (c *CompositeDesirability) Objective() Objective {
	return func(x []float64) float64 { return -c.Score(x) }
}

// Breakdown returns the individual desirabilities at x (diagnostics for
// reports).
func (c *CompositeDesirability) Breakdown(x []float64) []float64 {
	out := make([]float64, len(c.evals))
	for i, ev := range c.evals {
		out[i] = c.shapes[i].Value(ev(x))
	}
	return out
}
