package opt

import (
	"math"
	"testing"
)

// sphere has its minimum 0 at the given centre.
func sphere(center []float64) Objective {
	return func(x []float64) float64 {
		var s float64
		for i := range x {
			d := x[i] - center[i]
			s += d * d
		}
		return s
	}
}

// rosenbrock is the classic banana valley, minimum 0 at (1, 1).
func rosenbrock(x []float64) float64 {
	a := 1 - x[0]
	b := x[1] - x[0]*x[0]
	return a*a + 100*b*b
}

// rastrigin is multimodal with the global minimum 0 at the origin.
func rastrigin(x []float64) float64 {
	s := 10.0 * float64(len(x))
	for _, v := range x {
		s += v*v - 10*math.Cos(2*math.Pi*v)
	}
	return s
}

func TestBounds(t *testing.T) {
	b := NewBounds(3)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.K() != 3 {
		t.Fatalf("K = %d", b.K())
	}
	x := []float64{-5, 0.5, 5}
	b.Clamp(x)
	if x[0] != -1 || x[1] != 0.5 || x[2] != 1 {
		t.Fatalf("clamped = %v", x)
	}
	if err := (Bounds{Lo: []float64{0}, Hi: []float64{0}}).Validate(); err == nil {
		t.Fatal("empty box must be rejected")
	}
	if err := (Bounds{Lo: []float64{0}, Hi: []float64{1, 2}}).Validate(); err == nil {
		t.Fatal("dim mismatch must be rejected")
	}
}

func TestGridSearchFindsMinimum(t *testing.T) {
	res, err := GridSearch(sphere([]float64{0.5, -0.5}), NewBounds(2), 21)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals != 441 {
		t.Fatalf("evals = %d, want 441", res.Evals)
	}
	if math.Abs(res.X[0]-0.5) > 0.051 || math.Abs(res.X[1]+0.5) > 0.051 {
		t.Fatalf("grid optimum %v, want ≈(0.5, −0.5)", res.X)
	}
}

func TestGridSearchValidation(t *testing.T) {
	if _, err := GridSearch(rosenbrock, NewBounds(2), 1); err == nil {
		t.Fatal("1 point per dim must error")
	}
	if _, err := GridSearch(rosenbrock, NewBounds(12), 100); err == nil {
		t.Fatal("oversized grid must error")
	}
	if _, err := GridSearch(rosenbrock, Bounds{}, 5); err == nil {
		t.Fatal("empty bounds must error")
	}
}

func TestNelderMeadSphere(t *testing.T) {
	res, err := NelderMead(sphere([]float64{0.3, -0.2}), NewBounds(2), []float64{0, 0}, NelderMeadConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.F > 1e-8 {
		t.Fatalf("f = %v, want ≈0", res.F)
	}
	if math.Abs(res.X[0]-0.3) > 1e-4 || math.Abs(res.X[1]+0.2) > 1e-4 {
		t.Fatalf("x = %v", res.X)
	}
	if res.Evals == 0 || res.Iters == 0 {
		t.Fatal("work counters missing")
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	b := Bounds{Lo: []float64{-2, -2}, Hi: []float64{2, 2}}
	res, err := NelderMead(rosenbrock, b, []float64{-1.2, 1}, NelderMeadConfig{MaxIters: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if res.F > 1e-6 {
		t.Fatalf("rosenbrock f = %v at %v", res.F, res.X)
	}
}

func TestNelderMeadRespectsBounds(t *testing.T) {
	// Unconstrained minimum at (2,2) — outside the unit box; search must
	// end on the boundary.
	res, err := NelderMead(sphere([]float64{2, 2}), NewBounds(2), []float64{0, 0}, NelderMeadConfig{MaxIters: 2000})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.X {
		if v < -1-1e-12 || v > 1+1e-12 {
			t.Fatalf("escaped the box: %v", res.X)
		}
	}
	if math.Abs(res.X[0]-1) > 1e-3 || math.Abs(res.X[1]-1) > 1e-3 {
		t.Fatalf("boundary optimum %v, want (1,1)", res.X)
	}
}

func TestNelderMeadValidation(t *testing.T) {
	if _, err := NelderMead(rosenbrock, NewBounds(2), []float64{0}, NelderMeadConfig{}); err == nil {
		t.Fatal("start-point dim mismatch must error")
	}
	if _, err := NelderMead(rosenbrock, Bounds{}, nil, NelderMeadConfig{}); err == nil {
		t.Fatal("empty bounds must error")
	}
}

func TestSimulatedAnnealingSphere(t *testing.T) {
	res, err := SimulatedAnnealing(sphere([]float64{0.4, 0.4}), NewBounds(2), AnnealConfig{Iters: 5000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.F > 1e-2 {
		t.Fatalf("SA f = %v", res.F)
	}
	if res.Evals != 5001 {
		t.Fatalf("SA evals = %d, want 5001", res.Evals)
	}
}

func TestSimulatedAnnealingEscapesLocalMinima(t *testing.T) {
	// Rastrigin in 2D: SA should land well below the worst local minima
	// (~20+) even if it misses the exact global optimum.
	res, err := SimulatedAnnealing(rastrigin, Bounds{Lo: []float64{-5, -5}, Hi: []float64{5, 5}},
		AnnealConfig{Iters: 20000, T0: 5, Cooling: 0.9995, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.F > 2.5 {
		t.Fatalf("SA stuck at f = %v", res.F)
	}
}

func TestSimulatedAnnealingDeterministic(t *testing.T) {
	cfg := AnnealConfig{Iters: 500, Seed: 7}
	a, _ := SimulatedAnnealing(rosenbrock, NewBounds(2), cfg)
	b, _ := SimulatedAnnealing(rosenbrock, NewBounds(2), cfg)
	if a.F != b.F || a.X[0] != b.X[0] {
		t.Fatal("same seed must reproduce the run")
	}
}

func TestGeneticAlgorithmSphere(t *testing.T) {
	res, err := GeneticAlgorithm(sphere([]float64{-0.3, 0.6}), NewBounds(2), GAConfig{Pop: 40, Gens: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.F > 1e-3 {
		t.Fatalf("GA f = %v at %v", res.F, res.X)
	}
	// Evaluation budget accounting: initial pop + offspring per generation.
	if res.Evals < 40 {
		t.Fatalf("GA evals = %d", res.Evals)
	}
}

func TestGeneticAlgorithmMultimodal(t *testing.T) {
	res, err := GeneticAlgorithm(rastrigin, Bounds{Lo: []float64{-5, -5}, Hi: []float64{5, 5}},
		GAConfig{Pop: 60, Gens: 120, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.F > 2.5 {
		t.Fatalf("GA stuck at f = %v (x=%v)", res.F, res.X)
	}
}

func TestGeneticAlgorithmElitismMonotone(t *testing.T) {
	// With elitism the best objective must never get worse: run twice with
	// different budgets and compare.
	short, err := GeneticAlgorithm(rosenbrock, NewBounds(2), GAConfig{Pop: 30, Gens: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	long, err := GeneticAlgorithm(rosenbrock, NewBounds(2), GAConfig{Pop: 30, Gens: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if long.F > short.F+1e-12 {
		t.Fatalf("more generations must not hurt: %v vs %v", long.F, short.F)
	}
}

func TestGADeterministic(t *testing.T) {
	cfg := GAConfig{Pop: 20, Gens: 20, Seed: 13}
	a, _ := GeneticAlgorithm(rosenbrock, NewBounds(2), cfg)
	b, _ := GeneticAlgorithm(rosenbrock, NewBounds(2), cfg)
	if a.F != b.F {
		t.Fatal("same seed must reproduce the run")
	}
}

func TestMaximize(t *testing.T) {
	// Maximize −sphere = minimize sphere.
	obj := Maximize(func(x []float64) float64 { return -sphere([]float64{0, 0})(x) })
	res, err := NelderMead(obj, NewBounds(2), []float64{0.5, 0.5}, NelderMeadConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]) > 1e-4 || math.Abs(res.X[1]) > 1e-4 {
		t.Fatalf("maximized at %v, want origin", res.X)
	}
}

func TestQuantized(t *testing.T) {
	b := NewBounds(2)
	var got [][]float64
	f := func(x []float64) float64 {
		got = append(got, append([]float64(nil), x...))
		return x[0] + x[1]
	}
	q, err := Quantized(f, b, 0.25) // lattice −1, −0.5, 0, 0.5, 1
	if err != nil {
		t.Fatal(err)
	}
	q([]float64{0.24, -0.26})
	q([]float64{0.26, 0.9})
	q([]float64{5, -5}) // clamped to the box
	want := [][]float64{{0, -0.5}, {0.5, 1}, {1, -1}}
	for i, w := range want {
		for j := range w {
			if got[i][j] != w[j] {
				t.Fatalf("call %d: snapped to %v, want %v", i, got[i], w)
			}
		}
	}
	// Nearby proposals collapse onto the same lattice point — the property
	// that makes simulator memoization effective under SA/GA.
	if q([]float64{0.01, 0.02}) != q([]float64{-0.02, -0.01}) {
		t.Fatal("neighbours must share a lattice point")
	}
	// Errors.
	if _, err := Quantized(f, Bounds{}, 0.1); err == nil {
		t.Fatal("bad bounds must be rejected")
	}
	if _, err := Quantized(f, b, 0); err == nil {
		t.Fatal("zero step must be rejected")
	}
	if _, err := Quantized(f, b, 1.5); err == nil {
		t.Fatal("step > 1 must be rejected")
	}
}
