package opt

import "testing"

func BenchmarkNelderMeadRosenbrock(b *testing.B) {
	bounds := Bounds{Lo: []float64{-2, -2}, Hi: []float64{2, 2}}
	for i := 0; i < b.N; i++ {
		if _, err := NelderMead(rosenbrock, bounds, []float64{-1.2, 1}, NelderMeadConfig{MaxIters: 500}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatedAnnealing(b *testing.B) {
	bounds := NewBounds(4)
	obj := sphere([]float64{0.2, -0.3, 0.1, 0.4})
	for i := 0; i < b.N; i++ {
		if _, err := SimulatedAnnealing(obj, bounds, AnnealConfig{Iters: 1000, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGeneticAlgorithm(b *testing.B) {
	bounds := NewBounds(4)
	obj := sphere([]float64{0.2, -0.3, 0.1, 0.4})
	for i := 0; i < b.N; i++ {
		if _, err := GeneticAlgorithm(obj, bounds, GAConfig{Pop: 20, Gens: 20, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
