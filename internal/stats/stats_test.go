package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLogGammaKnown(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{1, 0},
		{2, 0},
		{3, math.Log(2)},
		{4, math.Log(6)},
		{0.5, math.Log(math.Sqrt(math.Pi))},
		{10, math.Log(362880)},
	}
	for _, c := range cases {
		if got := LogGamma(c.x); !close(got, c.want, 1e-10) {
			t.Errorf("LogGamma(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if !math.IsNaN(LogGamma(-1)) {
		t.Error("LogGamma(-1) should be NaN")
	}
}

func TestLogGammaRecurrence(t *testing.T) {
	// Γ(x+1) = x·Γ(x) ⇒ lnΓ(x+1) = ln x + lnΓ(x).
	f := func(u float64) bool {
		x := 0.1 + math.Mod(math.Abs(u), 20)
		return close(LogGamma(x+1), math.Log(x)+LogGamma(x), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegIncBetaEdges(t *testing.T) {
	if RegIncBeta(2, 3, 0) != 0 {
		t.Error("I_0 must be 0")
	}
	if RegIncBeta(2, 3, 1) != 1 {
		t.Error("I_1 must be 1")
	}
	// I_x(1,1) = x (uniform distribution).
	for _, x := range []float64{0.1, 0.25, 0.5, 0.9} {
		if got := RegIncBeta(1, 1, x); !close(got, x, 1e-10) {
			t.Errorf("I_%v(1,1) = %v, want %v", x, got, x)
		}
	}
	// Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a).
	if got := RegIncBeta(2.5, 4, 0.3) + RegIncBeta(4, 2.5, 0.7); !close(got, 1, 1e-10) {
		t.Errorf("symmetry violated: sum = %v", got)
	}
}

func TestNormalCDFKnown(t *testing.T) {
	if got := NormalCDF(0, 0, 1); !close(got, 0.5, 1e-12) {
		t.Errorf("Φ(0) = %v", got)
	}
	if got := NormalCDF(1.959963984540054, 0, 1); !close(got, 0.975, 1e-9) {
		t.Errorf("Φ(1.96) = %v, want 0.975", got)
	}
	if got := NormalCDF(5, 3, 2); !close(got, NormalCDF(1, 0, 1), 1e-12) {
		t.Error("location/scale handling broken")
	}
}

func TestNormalPDFIntegratesToCDF(t *testing.T) {
	// Trapezoid integral of the pdf matches the CDF difference.
	const a, b = -2.0, 1.5
	n := 20000
	h := (b - a) / float64(n)
	var sum float64
	for i := 0; i <= n; i++ {
		w := 1.0
		if i == 0 || i == n {
			w = 0.5
		}
		sum += w * NormalPDF(a+float64(i)*h, 0, 1)
	}
	sum *= h
	want := NormalCDF(b, 0, 1) - NormalCDF(a, 0, 1)
	if !close(sum, want, 1e-8) {
		t.Errorf("integral = %v, want %v", sum, want)
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.025, 0.2, 0.5, 0.8, 0.975, 0.99, 0.999} {
		x := NormalQuantile(p)
		if got := NormalCDF(x, 0, 1); !close(got, p, 1e-10) {
			t.Errorf("Φ(Φ⁻¹(%v)) = %v", p, got)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("quantile at 0/1 must be ∓Inf")
	}
}

func TestTCDFKnown(t *testing.T) {
	// t with 1 df is Cauchy: CDF(1) = 3/4.
	if got := TCDF(1, 1); !close(got, 0.75, 1e-9) {
		t.Errorf("TCDF(1,1) = %v, want 0.75", got)
	}
	if got := TCDF(0, 7); !close(got, 0.5, 1e-12) {
		t.Errorf("TCDF(0,7) = %v, want 0.5", got)
	}
	// Symmetry.
	if got := TCDF(-2, 5) + TCDF(2, 5); !close(got, 1, 1e-10) {
		t.Errorf("t symmetry violated: %v", got)
	}
	// Large df approaches normal.
	if got := TCDF(1.96, 1e6); !close(got, NormalCDF(1.96, 0, 1), 1e-5) {
		t.Errorf("TCDF large-df = %v, want ≈ Φ(1.96)", got)
	}
}

func TestTQuantileKnown(t *testing.T) {
	// Classical table value: t_{0.975, 10} = 2.228.
	if got := TQuantile(0.975, 10); !close(got, 2.228, 5e-4) {
		t.Errorf("t(0.975,10) = %v, want 2.228", got)
	}
	if got := TQuantile(0.5, 3); !close(got, 0, 1e-9) {
		t.Errorf("median of t must be 0, got %v", got)
	}
	for _, p := range []float64{0.05, 0.3, 0.9, 0.99} {
		x := TQuantile(p, 8)
		if got := TCDF(x, 8); !close(got, p, 1e-8) {
			t.Errorf("round trip failed at p=%v: %v", p, got)
		}
	}
}

func TestFCDFKnown(t *testing.T) {
	if got := FCDF(0, 3, 5); got != 0 {
		t.Errorf("FCDF(0) = %v", got)
	}
	// F(1,d2) = T² relation: P(F ≤ f) = P(|T| ≤ √f) = 2·TCDF(√f,d2) − 1.
	f, d2 := 4.0, 9.0
	want := 2*TCDF(math.Sqrt(f), d2) - 1
	if got := FCDF(f, 1, d2); !close(got, want, 1e-9) {
		t.Errorf("FCDF(4,1,9) = %v, want %v", got, want)
	}
}

func TestFQuantileKnown(t *testing.T) {
	// Classical table value: F_{0.95}(3, 10) = 3.708.
	if got := FQuantile(0.95, 3, 10); !close(got, 3.708, 5e-3) {
		t.Errorf("F(0.95;3,10) = %v, want 3.708", got)
	}
	for _, p := range []float64{0.1, 0.5, 0.9, 0.99} {
		x := FQuantile(p, 4, 12)
		if got := FCDF(x, 4, 12); !close(got, p, 1e-8) {
			t.Errorf("round trip failed at p=%v: %v", p, got)
		}
	}
}

func TestFPValue(t *testing.T) {
	if got := FPValue(0, 2, 3); got != 1 {
		t.Errorf("p-value at F=0 must be 1, got %v", got)
	}
	p := FPValue(3.708, 3, 10)
	if !close(p, 0.05, 2e-3) {
		t.Errorf("p-value = %v, want ≈0.05", p)
	}
}

func TestMeanVarStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !close(got, 5, 1e-12) {
		t.Errorf("mean = %v", got)
	}
	if got := Variance(xs); !close(got, 32.0/7.0, 1e-12) {
		t.Errorf("variance = %v, want %v", got, 32.0/7.0)
	}
	if got := StdDev(xs); !close(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("stddev = %v", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance([]float64{1})) {
		t.Error("degenerate inputs must give NaN")
	}
}

func TestMinMaxQuantileMedian(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	mn, mx := MinMax(xs)
	if mn != 1 || mx != 9 {
		t.Errorf("MinMax = %v,%v", mn, mx)
	}
	if got := Median([]float64{1, 2, 3, 4}); !close(got, 2.5, 1e-12) {
		t.Errorf("median = %v", got)
	}
	if got := Quantile([]float64{10, 20, 30}, 0); got != 10 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile([]float64{10, 20, 30}, 1); got != 30 {
		t.Errorf("q1 = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile must be NaN")
	}
}

func TestRMSAndErrors(t *testing.T) {
	if got := RMS([]float64{3, 4}); !close(got, math.Sqrt(12.5), 1e-12) {
		t.Errorf("RMS = %v", got)
	}
	a := []float64{1, 2, 3}
	b := []float64{1, 2, 5}
	if got := RMSE(a, b); !close(got, 2/math.Sqrt(3), 1e-12) {
		t.Errorf("RMSE = %v", got)
	}
	if got := MaxAbsErr(a, b); got != 2 {
		t.Errorf("MaxAbsErr = %v", got)
	}
	if !math.IsNaN(RMSE(a, []float64{1})) {
		t.Error("length mismatch must give NaN")
	}
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 4, 6, 8}
	if got := Pearson(a, b); !close(got, 1, 1e-12) {
		t.Errorf("perfect correlation = %v", got)
	}
	c := []float64{8, 6, 4, 2}
	if got := Pearson(a, c); !close(got, -1, 1e-12) {
		t.Errorf("perfect anticorrelation = %v", got)
	}
	if !math.IsNaN(Pearson(a, []float64{1, 1, 1, 1})) {
		t.Error("constant series must give NaN")
	}
}

func TestQuantileAgainstSamples(t *testing.T) {
	// Empirical quantiles of many normal samples should approach the
	// analytic normal quantile.
	rng := rand.New(rand.NewSource(42))
	n := 200000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	for _, p := range []float64{0.1, 0.5, 0.9} {
		got := Quantile(xs, p)
		want := NormalQuantile(p)
		if !close(got, want, 2e-2) {
			t.Errorf("empirical q(%v) = %v, want %v", p, got, want)
		}
	}
}
