package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (NaN for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (denominator n−1).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the smallest and largest values in xs.
func MinMax(xs []float64) (mn, mx float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	mn, mx = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < mn {
			mn = x
		}
		if x > mx {
			mx = x
		}
	}
	return mn, mx
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (type-7, the R default).
func Quantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	s := make([]float64, n)
	copy(s, xs)
	sort.Float64s(s)
	if n == 1 {
		return s[0]
	}
	h := q * float64(n-1)
	lo := int(math.Floor(h))
	hi := int(math.Ceil(h))
	if lo == hi {
		return s[lo]
	}
	return s[lo] + (h-float64(lo))*(s[hi]-s[lo])
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// RMS returns the root-mean-square of xs.
func RMS(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x * x
	}
	return math.Sqrt(s / float64(len(xs)))
}

// RMSE returns the root-mean-square error between two equal-length series.
func RMSE(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return math.NaN()
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a)))
}

// MaxAbsErr returns the largest absolute difference between two series.
func MaxAbsErr(a, b []float64) float64 {
	if len(a) != len(b) {
		return math.NaN()
	}
	var mx float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > mx {
			mx = d
		}
	}
	return mx
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// series (NaN if either series is constant).
func Pearson(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return math.NaN()
	}
	ma, mb := Mean(a), Mean(b)
	var sab, saa, sbb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		sab += da * db
		saa += da * da
		sbb += db * db
	}
	if saa == 0 || sbb == 0 {
		return math.NaN()
	}
	return sab / math.Sqrt(saa*sbb)
}
