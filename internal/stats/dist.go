// Package stats implements the probability distributions and descriptive
// statistics the RSM machinery needs: normal, Student-t and F distributions
// (densities, CDFs and quantiles) for ANOVA significance tests and
// confidence/prediction intervals, plus summary helpers.
//
// The special functions (log-gamma, regularized incomplete beta) are
// implemented from the classical Lanczos and continued-fraction expansions;
// accuracy is ~1e-10 over the parameter ranges exercised by designed
// experiments (degrees of freedom up to a few thousand).
package stats

import (
	"errors"
	"math"
)

// ErrDomain is returned for parameters outside a distribution's domain.
var ErrDomain = errors.New("stats: parameter outside domain")

// LogGamma returns ln Γ(x) for x > 0 (Lanczos approximation, g=7, n=9).
func LogGamma(x float64) float64 {
	if x <= 0 {
		return math.NaN()
	}
	// Coefficients for the Lanczos approximation.
	coef := [...]float64{
		0.99999999999980993,
		676.5203681218851,
		-1259.1392167224028,
		771.32342877765313,
		-176.61502916214059,
		12.507343278686905,
		-0.13857109526572012,
		9.9843695780195716e-6,
		1.5056327351493116e-7,
	}
	if x < 0.5 {
		// Reflection formula.
		return math.Log(math.Pi/math.Sin(math.Pi*x)) - LogGamma(1-x)
	}
	x--
	a := coef[0]
	t := x + 7.5
	for i := 1; i < len(coef); i++ {
		a += coef[i] / (x + float64(i))
	}
	return 0.5*math.Log(2*math.Pi) + (x+0.5)*math.Log(t) - t + math.Log(a)
}

// RegIncBeta returns the regularized incomplete beta function I_x(a, b)
// for 0 ≤ x ≤ 1, a, b > 0, using the Lentz continued fraction.
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	case a <= 0 || b <= 0:
		return math.NaN()
	}
	lbeta := LogGamma(a) + LogGamma(b) - LogGamma(a+b)
	front := math.Exp(a*math.Log(x)+b*math.Log(1-x)-lbeta) / a
	// Use the symmetry relation for faster convergence.
	if x > (a+1)/(a+b+2) {
		return 1 - RegIncBeta(b, a, 1-x)
	}
	// Modified Lentz algorithm for the continued fraction.
	const tiny = 1e-30
	f, c, d := 1.0, 1.0, 0.0
	for i := 0; i <= 300; i++ {
		m := i / 2
		var numerator float64
		switch {
		case i == 0:
			numerator = 1
		case i%2 == 0:
			numerator = float64(m) * (b - float64(m)) * x / ((a + 2*float64(m) - 1) * (a + 2*float64(m)))
		default:
			numerator = -(a + float64(m)) * (a + b + float64(m)) * x / ((a + 2*float64(m)) * (a + 2*float64(m) + 1))
		}
		d = 1 + numerator*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		d = 1 / d
		c = 1 + numerator/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		cd := c * d
		f *= cd
		if math.Abs(1-cd) < 1e-12 {
			return front * (f - 1)
		}
	}
	return front * (f - 1) // best effort after max iterations
}

// --- Normal distribution ---

// NormalPDF returns the density of N(mu, sigma²) at x.
func NormalPDF(x, mu, sigma float64) float64 {
	z := (x - mu) / sigma
	return math.Exp(-0.5*z*z) / (sigma * math.Sqrt(2*math.Pi))
}

// NormalCDF returns P(X ≤ x) for X ~ N(mu, sigma²).
func NormalCDF(x, mu, sigma float64) float64 {
	return 0.5 * math.Erfc(-(x-mu)/(sigma*math.Sqrt2))
}

// NormalQuantile returns the p-quantile of N(0,1) via the Acklam
// rational approximation refined by one Halley step.
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Acklam's approximation.
	a := [...]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [...]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [...]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [...]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= phigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(x, 0, 1) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x
}

// --- Student t distribution ---

// TCDF returns P(T ≤ t) for T ~ Student-t with df degrees of freedom.
func TCDF(t, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	x := df / (df + t*t)
	p := 0.5 * RegIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// TQuantile returns the p-quantile of the Student-t distribution with df
// degrees of freedom, found by bisection on the CDF.
func TQuantile(p, df float64) float64 {
	if df <= 0 || p <= 0 || p >= 1 {
		return math.NaN()
	}
	if p == 0.5 {
		return 0 // exact by symmetry; bisection would leave rounding residue
	}
	return invertCDF(func(x float64) float64 { return TCDF(x, df) }, p, -1e8, 1e8)
}

// --- F distribution ---

// FCDF returns P(X ≤ f) for X ~ F(d1, d2).
func FCDF(f, d1, d2 float64) float64 {
	if d1 <= 0 || d2 <= 0 {
		return math.NaN()
	}
	if f <= 0 {
		return 0
	}
	x := d1 * f / (d1*f + d2)
	return RegIncBeta(d1/2, d2/2, x)
}

// FQuantile returns the p-quantile of the F(d1, d2) distribution.
func FQuantile(p, d1, d2 float64) float64 {
	if d1 <= 0 || d2 <= 0 || p < 0 || p >= 1 {
		return math.NaN()
	}
	if p == 0 {
		return 0
	}
	return invertCDF(func(x float64) float64 { return FCDF(x, d1, d2) }, p, 0, 1e9)
}

// FPValue returns P(X > f): the right-tail p-value of an observed F
// statistic, as used in ANOVA tables.
func FPValue(f, d1, d2 float64) float64 {
	if f <= 0 {
		return 1
	}
	return 1 - FCDF(f, d1, d2)
}

// invertCDF finds x with cdf(x) = p by bisection over [lo, hi]. The cdf
// must be monotone nondecreasing.
func invertCDF(cdf func(float64) float64, p, lo, hi float64) float64 {
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if cdf(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo <= 1e-12*(1+math.Abs(lo)) {
			break
		}
	}
	return 0.5 * (lo + hi)
}
