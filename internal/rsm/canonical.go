package rsm

import (
	"fmt"
	"math"

	"repro/internal/la"
)

// StationaryKind classifies the stationary point of a quadratic surface.
type StationaryKind int

const (
	// Maximum: all eigenvalues of B are negative.
	Maximum StationaryKind = iota
	// Minimum: all eigenvalues of B are positive.
	Minimum
	// Saddle: mixed signs.
	Saddle
)

// String names the stationary kind.
func (k StationaryKind) String() string {
	switch k {
	case Maximum:
		return "maximum"
	case Minimum:
		return "minimum"
	case Saddle:
		return "saddle"
	}
	return "unknown"
}

// Canonical is the canonical analysis of a fitted full-quadratic surface
// ŷ = b₀ + bᵀx + xᵀBx: the stationary point x_s = −½B⁻¹b, its predicted
// response, the eigenvalues of B (surface curvatures along the principal
// axes) and the resulting classification.
type Canonical struct {
	Stationary []float64 // coded coordinates of the stationary point
	Value      float64   // predicted response there
	Eigen      []float64 // eigenvalues of B, ascending
	Axes       *la.Matrix
	Kind       StationaryKind
	InRegion   bool // stationary point inside the coded cube −1…+1
}

// Canonical performs canonical analysis. The fitted model must contain the
// intercept, all linear terms and all pure-quadratic terms (interaction
// terms optional); otherwise an error is returned.
func (f *Fit) Canonical() (*Canonical, error) {
	k := f.Model.K
	b := make([]float64, k)  // linear coefficients
	bm := la.NewMatrix(k, k) // quadratic coefficient matrix B
	seenLin := make([]bool, k)
	seenSq := make([]bool, k)
	for i, t := range f.Model.Terms {
		switch t.Degree() {
		case 0:
			// intercept
		case 1:
			for j, p := range t.Powers {
				if p == 1 {
					b[j] = f.Coef[i]
					seenLin[j] = true
				}
			}
		case 2:
			// Either a pure square or a two-factor interaction.
			first, second := -1, -1
			for j, p := range t.Powers {
				switch p {
				case 2:
					first, second = j, j
				case 1:
					if first < 0 {
						first = j
					} else {
						second = j
					}
				}
			}
			if first == second {
				bm.Set(first, first, f.Coef[i])
				seenSq[first] = true
			} else {
				bm.Set(first, second, f.Coef[i]/2)
				bm.Set(second, first, f.Coef[i]/2)
			}
		default:
			return nil, fmt.Errorf("rsm: canonical analysis needs a quadratic model; found degree-%d term", t.Degree())
		}
	}
	for j := 0; j < k; j++ {
		if !seenLin[j] || !seenSq[j] {
			return nil, fmt.Errorf("rsm: canonical analysis needs linear and squared terms for every factor (factor %d missing)", j)
		}
	}
	// Stationary point: ∇ŷ = b + 2Bx = 0 → x_s = −½·B⁻¹b.
	half := make([]float64, k)
	for i := range half {
		half[i] = -0.5 * b[i]
	}
	xs, err := la.Solve(bm, half)
	if err != nil {
		return nil, fmt.Errorf("rsm: quadratic part singular (ridge system): %w", err)
	}
	vals, vecs, err := la.EigenSym(bm, 0)
	if err != nil {
		return nil, err
	}
	kind := Saddle
	switch {
	case vals[len(vals)-1] < 0:
		kind = Maximum
	case vals[0] > 0:
		kind = Minimum
	}
	in := true
	for _, v := range xs {
		if v < -1 || v > 1 {
			in = false
			break
		}
	}
	return &Canonical{
		Stationary: xs,
		Value:      f.Predict(xs),
		Eigen:      vals,
		Axes:       vecs,
		Kind:       kind,
		InRegion:   in,
	}, nil
}

// SteepestAscentPath returns nSteps points along the steepest-ascent
// direction of the fitted surface from the origin (design centre), with
// the given coded step length — the classical RSM "path of steepest
// ascent" used to walk toward better operating regions.
func (f *Fit) SteepestAscentPath(step float64, nSteps int) ([][]float64, error) {
	if step <= 0 || nSteps < 1 {
		return nil, fmt.Errorf("rsm: bad path parameters step=%g n=%d", step, nSteps)
	}
	k := f.Model.K
	grad := make([]float64, k)
	for i, t := range f.Model.Terms {
		if t.Degree() != 1 {
			continue
		}
		for j, p := range t.Powers {
			if p == 1 {
				grad[j] = f.Coef[i]
			}
		}
	}
	norm := 0.0
	for _, g := range grad {
		norm += g * g
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		return nil, fmt.Errorf("rsm: zero gradient at the design centre")
	}
	path := make([][]float64, nSteps)
	for s := 1; s <= nSteps; s++ {
		pt := make([]float64, k)
		for j := range pt {
			pt[j] = float64(s) * step * grad[j] / norm
		}
		path[s-1] = pt
	}
	return path, nil
}
