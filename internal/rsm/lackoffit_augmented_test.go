package rsm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/doe"
)

// augmentedDesign builds the non-orthogonal layout the sequential strategy
// produces: a face-centred CCD base, D-optimally augmented off-grid points,
// and replicate groups of *unequal* sizes (3×, 2×, plus the base's centre
// runs). Returns the runs and the expected pure-error DoF Σ(nᵢ−1).
func augmentedDesign(t *testing.T) ([][]float64, int) {
	t.Helper()
	base, err := doe.CentralComposite(2, doe.CCF, 3) // centre ×3
	if err != nil {
		t.Fatal(err)
	}
	cands, err := doe.CandidateLattice(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	aug, err := doe.AugmentDOptimal(base, cands, 4, func(x []float64) []float64 {
		return FullQuadratic(2).Row(x)
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	runs := aug.Runs
	// Unequal replicate groups at non-axial, non-centre settings.
	for i := 0; i < 3; i++ {
		runs = append(runs, []float64{0.5, -0.5})
	}
	for i := 0; i < 2; i++ {
		runs = append(runs, []float64{-1, 0.5})
	}
	// centre ×3 → 2 DoF; (0.5,−0.5) ×3 → 2; (−1,0.5) ×2 → 1.
	return runs, 2 + 2 + 1
}

func TestLackOfFitAugmentedUnequalReplicatesClean(t *testing.T) {
	runs, wantPureDoF := augmentedDesign(t)
	truth := func(x []float64) float64 {
		return 2 - x[0] + 0.5*x[1] + x[0]*x[0] - 0.7*x[0]*x[1]
	}
	rng := rand.New(rand.NewSource(21))
	y := make([]float64, len(runs))
	for i, r := range runs {
		y[i] = truth(r) + 0.05*rng.NormFloat64()
	}
	fit, err := FitModel(FullQuadratic(2), runs, y)
	if err != nil {
		t.Fatal(err)
	}
	lof, err := fit.LackOfFitTest(runs, y)
	if err != nil {
		t.Fatal(err)
	}
	if lof.PureErrorDoF != wantPureDoF {
		t.Fatalf("pure-error DoF = %d, want %d", lof.PureErrorDoF, wantPureDoF)
	}
	if lof.Replicates != 3 {
		t.Fatalf("replicate groups = %d, want 3", lof.Replicates)
	}
	// distinct = n − (replicated copies beyond the first per group).
	distinct := len(runs) - wantPureDoF
	if lof.LackDoF != distinct-fit.Model.P() {
		t.Fatalf("lack DoF = %d, want %d", lof.LackDoF, distinct-fit.Model.P())
	}
	if math.Abs(lof.PureErrorSS+lof.LackSS-fit.ResidualSS) > 1e-9*(1+fit.ResidualSS) {
		t.Fatal("SS decomposition broken on non-orthogonal design")
	}
	if lof.Significant(0.01) {
		t.Fatalf("false alarm on quadratic truth: F=%v p=%v", lof.F, lof.P)
	}
}

func TestLackOfFitAugmentedUnequalReplicatesDetectsCurvature(t *testing.T) {
	runs, _ := augmentedDesign(t)
	truth := func(x []float64) float64 {
		return 1 + x[0] + x[1] + 6*x[0]*x[0]*x[1]*x[1]
	}
	rng := rand.New(rand.NewSource(22))
	y := make([]float64, len(runs))
	for i, r := range runs {
		y[i] = truth(r) + 0.02*rng.NormFloat64()
	}
	fit, err := FitModel(FullQuadratic(2), runs, y)
	if err != nil {
		t.Fatal(err)
	}
	lof, err := fit.LackOfFitTest(runs, y)
	if err != nil {
		t.Fatal(err)
	}
	if !lof.Significant(0.01) {
		t.Fatalf("quartic interaction not detected on augmented design: F=%v p=%v", lof.F, lof.P)
	}
}

func TestLackOfFitAugmentedDeterministicReplicates(t *testing.T) {
	// Deterministic responses: unequal replicate groups are bit-identical,
	// so pure error is exactly zero and the degenerate F=∞ path must hold
	// on the non-orthogonal layout too.
	runs, _ := augmentedDesign(t)
	y := make([]float64, len(runs))
	for i, r := range runs {
		y[i] = 1 + r[0] + 4*r[0]*r[0]*r[1]*r[1]
	}
	fit, err := FitModel(FullQuadratic(2), runs, y)
	if err != nil {
		t.Fatal(err)
	}
	lof, err := fit.LackOfFitTest(runs, y)
	if err != nil {
		t.Fatal(err)
	}
	if lof.PureErrorSS != 0 {
		t.Fatalf("deterministic replicates must have zero pure error, got %v", lof.PureErrorSS)
	}
	if !math.IsInf(lof.F, 1) || lof.P != 0 {
		t.Fatalf("degenerate path broken on augmented design: %+v", lof)
	}
}
