// Package rsm implements the response surface methodology at the heart of
// the paper's design flow: polynomial models over coded factors, fitted by
// QR least squares to the simulated responses at the DoE design points,
// with the standard diagnostics (ANOVA, R², adjusted R², PRESS/R²-pred,
// coefficient t-tests), backward-elimination model reduction, and canonical
// analysis of fitted quadratics.
//
// Once fitted, evaluating a surface costs a handful of multiplications —
// this is what makes design-space exploration "practically instant"
// compared with re-running the transient simulator.
package rsm

import (
	"fmt"
	"sort"
	"strings"
)

// Term is one monomial of a polynomial model: Powers[j] is the exponent of
// factor j. The all-zero term is the intercept.
type Term struct {
	Powers []int
}

// Degree returns the total degree of the term.
func (t Term) Degree() int {
	d := 0
	for _, p := range t.Powers {
		d += p
	}
	return d
}

// Eval returns the monomial value at the coded point x.
func (t Term) Eval(x []float64) float64 {
	v := 1.0
	for j, p := range t.Powers {
		for i := 0; i < p; i++ {
			v *= x[j]
		}
	}
	return v
}

// Label renders the term using the given factor names ("1" for the
// intercept, "x1·x2", "x1²", …).
func (t Term) Label(names []string) string {
	var parts []string
	for j, p := range t.Powers {
		name := fmt.Sprintf("x%d", j+1)
		if j < len(names) && names[j] != "" {
			name = names[j]
		}
		switch p {
		case 0:
		case 1:
			parts = append(parts, name)
		case 2:
			parts = append(parts, name+"²")
		default:
			parts = append(parts, fmt.Sprintf("%s^%d", name, p))
		}
	}
	if len(parts) == 0 {
		return "1"
	}
	return strings.Join(parts, "·")
}

// equal reports whether two terms have identical powers.
func (t Term) equal(other Term) bool {
	if len(t.Powers) != len(other.Powers) {
		return false
	}
	for i := range t.Powers {
		if t.Powers[i] != other.Powers[i] {
			return false
		}
	}
	return true
}

// Model is a polynomial model over k coded factors.
type Model struct {
	K     int
	Terms []Term
}

// P returns the number of model terms (the regression dimension).
func (m Model) P() int { return len(m.Terms) }

// Validate checks internal consistency.
func (m Model) Validate() error {
	if m.K < 1 {
		return fmt.Errorf("rsm: model needs ≥1 factor, got %d", m.K)
	}
	if len(m.Terms) == 0 {
		return fmt.Errorf("rsm: model has no terms")
	}
	for i, t := range m.Terms {
		if len(t.Powers) != m.K {
			return fmt.Errorf("rsm: term %d has %d powers, want %d", i, len(t.Powers), m.K)
		}
		for j, p := range t.Powers {
			if p < 0 {
				return fmt.Errorf("rsm: term %d has negative power for factor %d", i, j)
			}
		}
		for j := 0; j < i; j++ {
			if t.equal(m.Terms[j]) {
				return fmt.Errorf("rsm: duplicate term %d and %d", j, i)
			}
		}
	}
	return nil
}

// Row expands the coded point x into the model-matrix row.
func (m Model) Row(x []float64) []float64 {
	return m.RowInto(x, make([]float64, len(m.Terms)))
}

// RowInto expands the coded point x into dst, reusing its backing array
// when it is large enough — the allocation-free path for batch prediction
// hot loops. It returns the (possibly re-sliced) destination.
func (m Model) RowInto(x, dst []float64) []float64 {
	if cap(dst) < len(m.Terms) {
		dst = make([]float64, len(m.Terms))
	}
	dst = dst[:len(m.Terms)]
	for i, t := range m.Terms {
		dst[i] = t.Eval(x)
	}
	return dst
}

// intercept returns the all-zero term for k factors.
func intercept(k int) Term { return Term{Powers: make([]int, k)} }

// unit returns the term x_j.
func unit(k, j int) Term {
	t := Term{Powers: make([]int, k)}
	t.Powers[j] = 1
	return t
}

// Linear returns the first-order model 1 + Σ x_j.
func Linear(k int) Model {
	m := Model{K: k, Terms: []Term{intercept(k)}}
	for j := 0; j < k; j++ {
		m.Terms = append(m.Terms, unit(k, j))
	}
	return m
}

// LinearWithInteractions returns 1 + Σ x_j + Σ x_i·x_j (i<j).
func LinearWithInteractions(k int) Model {
	m := Linear(k)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			t := Term{Powers: make([]int, k)}
			t.Powers[i], t.Powers[j] = 1, 1
			m.Terms = append(m.Terms, t)
		}
	}
	return m
}

// FullQuadratic returns the second-order model
// 1 + Σ x_j + Σ x_j² + Σ x_i·x_j — the standard RSM basis.
func FullQuadratic(k int) Model {
	m := LinearWithInteractions(k)
	for j := 0; j < k; j++ {
		t := Term{Powers: make([]int, k)}
		t.Powers[j] = 2
		m.Terms = append(m.Terms, t)
	}
	// Canonical ordering: intercept, linear, interactions, squares is fine,
	// but sort by (degree, powers) for stable reporting.
	sort.SliceStable(m.Terms, func(a, b int) bool {
		da, db := m.Terms[a].Degree(), m.Terms[b].Degree()
		if da != db {
			return da < db
		}
		return false
	})
	return m
}

// Drop returns a copy of the model without term index i.
func (m Model) Drop(i int) Model {
	terms := make([]Term, 0, len(m.Terms)-1)
	for j, t := range m.Terms {
		if j != i {
			terms = append(terms, t)
		}
	}
	return Model{K: m.K, Terms: terms}
}
