package rsm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/doe"
)

// wavyQuad is a quadratic plus a small smooth perturbation, so incremental
// fits have genuinely nonzero residuals, PRESS and lack of fit.
func wavyQuad(x []float64) float64 {
	s := 2.0
	for j, v := range x {
		s += float64(j+1)*0.7*v - 0.4*v*v
		if j > 0 {
			s += 0.3 * v * x[j-1]
		}
	}
	return s + 0.05*math.Sin(7*s)
}

// equivalenceGrid returns the (design, model) pairs the incremental fitter
// must match the batch fitter on.
func equivalenceGrid(t *testing.T) []struct {
	name string
	m    Model
	runs [][]float64
} {
	t.Helper()
	ccf2, err := doe.CentralComposite(2, doe.CCF, 3)
	if err != nil {
		t.Fatal(err)
	}
	bbd3, err := doe.BoxBehnken(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	ccc4, err := doe.CentralComposite(4, doe.CCC, 4)
	if err != nil {
		t.Fatal(err)
	}
	lhs3, err := doe.LatinHypercube(3, 25, 11, 200)
	if err != nil {
		t.Fatal(err)
	}
	return []struct {
		name string
		m    Model
		runs [][]float64
	}{
		{"ccf2-quad", FullQuadratic(2), ccf2.Runs},
		{"bbd3-quad", FullQuadratic(3), bbd3.Runs},
		{"ccc4-quad", FullQuadratic(4), ccc4.Runs},
		{"lhs3-linint", LinearWithInteractions(3), lhs3.Runs},
	}
}

// TestFitterMatchesBatchAcrossGrid pins the tentpole equivalence bound:
// after every append beyond identifiability, the incremental coefficients
// and diagnostics agree with a from-scratch batch fit to ≤1e-9 (relative).
func TestFitterMatchesBatchAcrossGrid(t *testing.T) {
	const tol = 1e-9
	for _, tc := range equivalenceGrid(t) {
		t.Run(tc.name, func(t *testing.T) {
			f, err := NewFitter(tc.m)
			if err != nil {
				t.Fatal(err)
			}
			p := tc.m.P()
			compared := 0
			for n, r := range tc.runs {
				if err := f.Append(r, wavyQuad(r)); err != nil {
					t.Fatal(err)
				}
				if n+1 < p {
					if _, err := f.Coef(); err == nil {
						t.Fatal("Coef must error before identifiability")
					}
					continue
				}
				batch, err := FitModel(tc.m, f.Runs(), f.Ys())
				if err != nil {
					// A rank-deficient prefix (e.g. a CCD's corners alias
					// the pure quadratics until the axials arrive) has no
					// batch fit to compare against.
					continue
				}
				snap, err := f.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				// Only well-posed prefixes are part of the equivalence
				// grid: at a (near-)saturated point the ridge-stabilized
				// incremental solve and the bare QR legitimately diverge.
				maxLev := 0.0
				for _, h := range batch.Leverage {
					maxLev = math.Max(maxLev, h)
				}
				if maxLev > 1-1e-6 {
					continue
				}
				for j := range batch.Coef {
					if d := math.Abs(snap.Coef[j] - batch.Coef[j]); d > tol*math.Max(1, math.Abs(batch.Coef[j])) {
						t.Fatalf("n=%d coef %d: incremental %v vs batch %v (Δ=%g)", n+1, j, snap.Coef[j], batch.Coef[j], d)
					}
				}
				compared++
				for _, pair := range [][2]float64{
					{snap.R2, batch.R2},
					{snap.AdjR2, batch.AdjR2},
					{snap.ResidualSS, batch.ResidualSS},
					{snap.TotalSS, batch.TotalSS},
					{snap.PRESS, batch.PRESS},
					{snap.R2Pred, batch.R2Pred},
				} {
					if d := math.Abs(pair[0] - pair[1]); d > 1e-7*math.Max(1, math.Abs(pair[1])) {
						t.Fatalf("n=%d diagnostic mismatch: %v vs %v", n+1, pair[0], pair[1])
					}
				}
			}
			if compared < 3 {
				t.Fatalf("equivalence grid too thin: only %d well-posed prefixes compared", compared)
			}
		})
	}
}

// TestFitterFinalizeBitIdentical pins the stronger guarantee the fixed-vs-
// adaptive regression relies on: Finalize routes through the batch FitModel,
// so its coefficients are bit-for-bit the batch fit's.
func TestFitterFinalizeBitIdentical(t *testing.T) {
	for _, tc := range equivalenceGrid(t) {
		t.Run(tc.name, func(t *testing.T) {
			f, err := NewFitter(tc.m)
			if err != nil {
				t.Fatal(err)
			}
			ys := make([]float64, len(tc.runs))
			for i, r := range tc.runs {
				ys[i] = wavyQuad(r)
				if err := f.Append(r, ys[i]); err != nil {
					t.Fatal(err)
				}
			}
			fin, err := f.Finalize()
			if err != nil {
				t.Fatal(err)
			}
			batch, err := FitModel(tc.m, tc.runs, ys)
			if err != nil {
				t.Fatal(err)
			}
			for j := range batch.Coef {
				if math.Float64bits(fin.Coef[j]) != math.Float64bits(batch.Coef[j]) {
					t.Fatalf("coef %d not bit-identical: %x vs %x", j, math.Float64bits(fin.Coef[j]), math.Float64bits(batch.Coef[j]))
				}
			}
			for _, pair := range [][2]float64{
				{fin.R2, batch.R2}, {fin.AdjR2, batch.AdjR2}, {fin.PRESS, batch.PRESS},
				{fin.RMSE, batch.RMSE}, {fin.ResidualSS, batch.ResidualSS},
			} {
				if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
					t.Fatalf("diagnostic not bit-identical: %v vs %v", pair[0], pair[1])
				}
			}
		})
	}
}

// The snapshot must feed the lack-of-fit machinery exactly like a batch fit.
func TestFitterSnapshotLackOfFit(t *testing.T) {
	d, err := doe.CentralComposite(2, doe.CCF, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	f, err := NewFitter(FullQuadratic(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range d.Runs {
		y := 1 + r[0] + 5*r[0]*r[0]*r[1]*r[1] + 0.01*rng.NormFloat64()
		if err := f.Append(r, y); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := f.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	lofInc, err := snap.LackOfFitTest(f.Runs(), f.Ys())
	if err != nil {
		t.Fatal(err)
	}
	batch, err := FitModel(FullQuadratic(2), f.Runs(), f.Ys())
	if err != nil {
		t.Fatal(err)
	}
	lofBatch, err := batch.LackOfFitTest(f.Runs(), f.Ys())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lofInc.F-lofBatch.F) > 1e-6*math.Max(1, lofBatch.F) {
		t.Fatalf("lack-of-fit F differs: %v vs %v", lofInc.F, lofBatch.F)
	}
	if !lofInc.Significant(0.01) {
		t.Fatal("strong curvature must be flagged by the incremental fit too")
	}
}

func TestFitterValidation(t *testing.T) {
	if _, err := NewFitter(Model{K: 0}); err == nil {
		t.Fatal("bad model must be rejected")
	}
	f, err := NewFitter(Linear(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Append([]float64{1}, 0); err == nil {
		t.Fatal("wrong run width must be rejected")
	}
	if err := f.Append([]float64{0, 0}, math.NaN()); err == nil {
		t.Fatal("NaN response must be rejected")
	}
	if err := f.AppendRows([][]float64{{0, 0}}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch must be rejected")
	}
	if _, err := f.Snapshot(); err == nil {
		t.Fatal("snapshot before identifiability must error")
	}
	if err := f.AppendRows([][]float64{{0, 0}, {1, 0}, {0, 1}}, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Coef(); err != nil {
		t.Fatal(err)
	}
	if f.Model().K != 2 || f.N() != 3 {
		t.Fatal("accessors wrong")
	}
}

// TestPRESSMatchesLiteralLeaveOneOut verifies the hat-matrix PRESS shortcut
// against n literal refits: PRESS = Σ (y_i − ŷ_{(−i)}(x_i))².
func TestPRESSMatchesLiteralLeaveOneOut(t *testing.T) {
	d, err := doe.CentralComposite(2, doe.CCF, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	y := make([]float64, d.N())
	for i, r := range d.Runs {
		y[i] = wavyQuad(r) + 0.05*rng.NormFloat64()
	}
	fit, err := FitModel(FullQuadratic(2), d.Runs, y)
	if err != nil {
		t.Fatal(err)
	}
	var press float64
	for i := range d.Runs {
		runs := make([][]float64, 0, d.N()-1)
		ys := make([]float64, 0, d.N()-1)
		for j := range d.Runs {
			if j == i {
				continue
			}
			runs = append(runs, d.Runs[j])
			ys = append(ys, y[j])
		}
		loo, err := FitModel(FullQuadratic(2), runs, ys)
		if err != nil {
			t.Fatal(err)
		}
		e := y[i] - loo.Predict(d.Runs[i])
		press += e * e
	}
	if math.Abs(fit.PRESS-press) > 1e-8*math.Max(1, press) {
		t.Fatalf("PRESS %v differs from literal leave-one-out %v", fit.PRESS, press)
	}
	if math.Abs(fit.R2Pred-(1-press/fit.TotalSS)) > 1e-8 {
		t.Fatalf("R²-pred %v inconsistent with PRESS", fit.R2Pred)
	}
}
