package rsm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/doe"
)

func TestTermBasics(t *testing.T) {
	tm := Term{Powers: []int{2, 1, 0}}
	if tm.Degree() != 3 {
		t.Fatalf("degree = %d", tm.Degree())
	}
	if got := tm.Eval([]float64{2, 3, 5}); got != 12 {
		t.Fatalf("eval = %v, want 12", got)
	}
	if got := (Term{Powers: []int{0, 0}}).Label(nil); got != "1" {
		t.Fatalf("intercept label = %q", got)
	}
	if got := (Term{Powers: []int{1, 2}}).Label([]string{"a", "b"}); got != "a·b²" {
		t.Fatalf("label = %q", got)
	}
	if got := (Term{Powers: []int{3}}).Label(nil); got != "x1^3" {
		t.Fatalf("cubic label = %q", got)
	}
}

func TestModelConstructors(t *testing.T) {
	if got := Linear(3).P(); got != 4 {
		t.Fatalf("linear terms = %d, want 4", got)
	}
	if got := LinearWithInteractions(3).P(); got != 7 {
		t.Fatalf("interaction terms = %d, want 7", got)
	}
	// Full quadratic in k: 1 + k + k + k(k−1)/2.
	for k := 2; k <= 6; k++ {
		want := 1 + 2*k + k*(k-1)/2
		if got := FullQuadratic(k).P(); got != want {
			t.Fatalf("quadratic k=%d terms = %d, want %d", k, got, want)
		}
	}
	for _, m := range []Model{Linear(2), LinearWithInteractions(4), FullQuadratic(3)} {
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestModelValidateCatchesErrors(t *testing.T) {
	if err := (Model{K: 0}).Validate(); err == nil {
		t.Fatal("k=0 must be rejected")
	}
	if err := (Model{K: 2, Terms: []Term{}}).Validate(); err == nil {
		t.Fatal("empty model must be rejected")
	}
	if err := (Model{K: 2, Terms: []Term{{Powers: []int{1}}}}).Validate(); err == nil {
		t.Fatal("wrong power length must be rejected")
	}
	bad := Model{K: 1, Terms: []Term{{Powers: []int{1}}, {Powers: []int{1}}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("duplicate terms must be rejected")
	}
	if err := (Model{K: 1, Terms: []Term{{Powers: []int{-1}}}}).Validate(); err == nil {
		t.Fatal("negative power must be rejected")
	}
}

func TestModelDrop(t *testing.T) {
	m := Linear(2) // 1, x1, x2
	d := m.Drop(1)
	if d.P() != 2 {
		t.Fatalf("dropped model has %d terms", d.P())
	}
	if m.P() != 3 {
		t.Fatal("Drop must not mutate the original")
	}
}

// trueQuad is a known quadratic used as ground truth in fit tests:
// y = 3 + 2x1 − x2 + 0.5x1² + 1.5x2² − 0.8x1x2.
func trueQuad(x []float64) float64 {
	return 3 + 2*x[0] - x[1] + 0.5*x[0]*x[0] + 1.5*x[1]*x[1] - 0.8*x[0]*x[1]
}

func ccdRuns(t *testing.T, k int) [][]float64 {
	t.Helper()
	d, err := doe.CentralComposite(k, doe.CCC, 3)
	if err != nil {
		t.Fatal(err)
	}
	return d.Runs
}

func TestFitRecoversExactQuadratic(t *testing.T) {
	runs := ccdRuns(t, 2)
	y := make([]float64, len(runs))
	for i, r := range runs {
		y[i] = trueQuad(r)
	}
	fit, err := FitModel(FullQuadratic(2), runs, y)
	if err != nil {
		t.Fatal(err)
	}
	if fit.R2 < 1-1e-12 {
		t.Fatalf("R² = %v, want 1 for an exact quadratic", fit.R2)
	}
	// Spot-check prediction at a point not in the design.
	x := []float64{0.3, -0.7}
	if got := fit.Predict(x); math.Abs(got-trueQuad(x)) > 1e-9 {
		t.Fatalf("prediction %v, want %v", got, trueQuad(x))
	}
}

func TestFitWithNoiseDiagnostics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	runs := ccdRuns(t, 2)
	y := make([]float64, len(runs))
	for i, r := range runs {
		y[i] = trueQuad(r) + 0.05*rng.NormFloat64()
	}
	fit, err := FitModel(FullQuadratic(2), runs, y)
	if err != nil {
		t.Fatal(err)
	}
	if fit.R2 < 0.99 {
		t.Fatalf("R² = %v with tiny noise", fit.R2)
	}
	if fit.AdjR2 > fit.R2 {
		t.Fatal("adjusted R² must not exceed R²")
	}
	if fit.RMSE <= 0 || fit.RMSE > 0.2 {
		t.Fatalf("RMSE = %v, want ≈0.05", fit.RMSE)
	}
	if fit.PRESS <= fit.ResidualSS {
		t.Fatal("PRESS must exceed the residual SS")
	}
	if fit.R2Pred >= fit.R2 {
		t.Fatal("R²-pred must be below R²")
	}
	// Leverages are in (0, 1] and sum to p.
	var hsum float64
	for _, h := range fit.Leverage {
		if h <= 0 || h > 1+1e-9 {
			t.Fatalf("leverage %v outside (0,1]", h)
		}
		hsum += h
	}
	if math.Abs(hsum-float64(fit.Model.P())) > 1e-6 {
		t.Fatalf("Σh = %v, want p = %d", hsum, fit.Model.P())
	}
}

func TestFitValidation(t *testing.T) {
	runs := [][]float64{{0, 0}, {1, 1}}
	if _, err := FitModel(FullQuadratic(2), runs, []float64{1, 2}); err == nil {
		t.Fatal("underdetermined fit must error")
	}
	if _, err := FitModel(Linear(2), runs, []float64{1}); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := FitModel(Linear(2), [][]float64{{0}, {1}, {0.5}}, []float64{1, 2, 3}); err == nil {
		t.Fatal("wrong run width must error")
	}
	// Aliased design: duplicate runs cannot identify a quadratic.
	dup := [][]float64{{0, 0}, {0, 0}, {0, 0}, {0, 0}, {0, 0}, {0, 0}}
	if _, err := FitModel(FullQuadratic(2), dup, []float64{1, 1, 1, 1, 1, 1}); err == nil {
		t.Fatal("aliased design must error")
	}
}

func TestSignificanceDetectsRealAndNullTerms(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// y depends on x1 only; x2 is inert.
	d, err := doe.FullFactorial(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, d.N())
	for i, r := range d.Runs {
		y[i] = 1 + 5*r[0] + 0.01*rng.NormFloat64()
	}
	fit, err := FitModel(Linear(2), d.Runs, y)
	if err != nil {
		t.Fatal(err)
	}
	ps := fit.PValues()
	// Term order: 1, x1, x2.
	if ps[1] > 1e-6 {
		t.Fatalf("real effect p = %v, want ≈0", ps[1])
	}
	if ps[2] < 0.01 {
		t.Fatalf("null effect p = %v, want large", ps[2])
	}
}

func TestANOVATable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	runs := ccdRuns(t, 2)
	y := make([]float64, len(runs))
	for i, r := range runs {
		y[i] = trueQuad(r) + 0.1*rng.NormFloat64()
	}
	fit, err := FitModel(FullQuadratic(2), runs, y)
	if err != nil {
		t.Fatal(err)
	}
	rows := fit.ANOVA()
	if len(rows) != 3 {
		t.Fatalf("ANOVA rows = %d", len(rows))
	}
	reg, res, tot := rows[0], rows[1], rows[2]
	if math.Abs(reg.SS+res.SS-tot.SS) > 1e-9*tot.SS {
		t.Fatal("SS decomposition broken")
	}
	if reg.DoF+res.DoF != tot.DoF {
		t.Fatal("DoF decomposition broken")
	}
	if reg.F <= 0 || reg.P > 0.001 {
		t.Fatalf("strong regression must be significant: F=%v p=%v", reg.F, reg.P)
	}
	term := fit.TermANOVA()
	if len(term) != fit.Model.P()-1 {
		t.Fatalf("term rows = %d, want %d", len(term), fit.Model.P()-1)
	}
}

func TestStepwiseRemovesInertTerms(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d, err := doe.CentralComposite(3, doe.CCC, 4)
	if err != nil {
		t.Fatal(err)
	}
	// True model uses x1, x3 and x1² only.
	y := make([]float64, d.N())
	for i, r := range d.Runs {
		y[i] = 2 + 3*r[0] - 2*r[2] + 1.5*r[0]*r[0] + 0.02*rng.NormFloat64()
	}
	fit, err := Stepwise(FullQuadratic(3), d.Runs, y, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Model.P() >= FullQuadratic(3).P() {
		t.Fatal("stepwise removed nothing")
	}
	// The retained model must keep predicting well.
	x := []float64{0.5, -0.5, 0.2}
	want := 2 + 3*x[0] - 2*x[2] + 1.5*x[0]*x[0]
	if got := fit.Predict(x); math.Abs(got-want) > 0.1 {
		t.Fatalf("reduced model predicts %v, want %v", got, want)
	}
	if _, err := Stepwise(FullQuadratic(2), d.Runs, y, 1.5); err == nil {
		t.Fatal("bad alpha must error")
	}
}

func TestPredictCI(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	runs := ccdRuns(t, 2)
	y := make([]float64, len(runs))
	for i, r := range runs {
		y[i] = trueQuad(r) + 0.1*rng.NormFloat64()
	}
	fit, err := FitModel(FullQuadratic(2), runs, y)
	if err != nil {
		t.Fatal(err)
	}
	pred, lo, hi := fit.PredictCI([]float64{0.2, 0.2}, 0.95)
	if !(lo < pred && pred < hi) {
		t.Fatalf("CI ordering broken: %v %v %v", lo, pred, hi)
	}
	// Wider interval at the design edge than at the centre.
	_, lo0, hi0 := fit.PredictCI([]float64{0, 0}, 0.95)
	_, loE, hiE := fit.PredictCI([]float64{1.4, 1.4}, 0.95)
	if (hiE - loE) <= (hi0 - lo0) {
		t.Fatal("extrapolation must widen the interval")
	}
}

func TestCanonicalAnalysisKnownSurface(t *testing.T) {
	// ŷ = 10 − (x1−0.2)² − 2(x2+0.3)² has a maximum at (0.2, −0.3).
	truth := func(x []float64) float64 {
		return 10 - (x[0]-0.2)*(x[0]-0.2) - 2*(x[1]+0.3)*(x[1]+0.3)
	}
	runs := ccdRuns(t, 2)
	y := make([]float64, len(runs))
	for i, r := range runs {
		y[i] = truth(r)
	}
	fit, err := FitModel(FullQuadratic(2), runs, y)
	if err != nil {
		t.Fatal(err)
	}
	can, err := fit.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if can.Kind != Maximum {
		t.Fatalf("kind = %v, want maximum", can.Kind)
	}
	if math.Abs(can.Stationary[0]-0.2) > 1e-6 || math.Abs(can.Stationary[1]+0.3) > 1e-6 {
		t.Fatalf("stationary point = %v, want (0.2, −0.3)", can.Stationary)
	}
	if math.Abs(can.Value-10) > 1e-6 {
		t.Fatalf("stationary value = %v, want 10", can.Value)
	}
	if !can.InRegion {
		t.Fatal("stationary point is inside the cube")
	}
	if can.Eigen[0] > can.Eigen[1] {
		t.Fatal("eigenvalues must be ascending")
	}
	if can.Kind.String() != "maximum" {
		t.Fatal("kind string wrong")
	}
}

func TestCanonicalSaddleAndMinimum(t *testing.T) {
	runs := ccdRuns(t, 2)
	fitFor := func(truth func([]float64) float64) *Fit {
		y := make([]float64, len(runs))
		for i, r := range runs {
			y[i] = truth(r)
		}
		fit, err := FitModel(FullQuadratic(2), runs, y)
		if err != nil {
			t.Fatal(err)
		}
		return fit
	}
	saddle, err := fitFor(func(x []float64) float64 { return x[0]*x[0] - x[1]*x[1] + 0.1*x[0] }).Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if saddle.Kind != Saddle {
		t.Fatalf("kind = %v, want saddle", saddle.Kind)
	}
	minim, err := fitFor(func(x []float64) float64 { return (x[0]+3)*(x[0]+3) + x[1]*x[1] }).Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if minim.Kind != Minimum {
		t.Fatalf("kind = %v, want minimum", minim.Kind)
	}
	if minim.InRegion {
		t.Fatal("stationary point (−3, 0) is outside the cube")
	}
}

func TestCanonicalRequiresQuadratic(t *testing.T) {
	d, _ := doe.FullFactorial(2, 3)
	y := make([]float64, d.N())
	for i, r := range d.Runs {
		y[i] = 1 + r[0]
	}
	fit, err := FitModel(Linear(2), d.Runs, y)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fit.Canonical(); err == nil {
		t.Fatal("canonical analysis of a linear model must error")
	}
}

func TestSteepestAscentPath(t *testing.T) {
	d, _ := doe.FullFactorial(2, 3)
	y := make([]float64, d.N())
	for i, r := range d.Runs {
		y[i] = 1 + 3*r[0] + 4*r[1]
	}
	fit, err := FitModel(Linear(2), d.Runs, y)
	if err != nil {
		t.Fatal(err)
	}
	path, err := fit.SteepestAscentPath(0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 4 {
		t.Fatalf("path length %d", len(path))
	}
	// Direction must be (3,4)/5.
	if math.Abs(path[0][0]-0.3) > 1e-9 || math.Abs(path[0][1]-0.4) > 1e-9 {
		t.Fatalf("first step = %v, want (0.3, 0.4)", path[0])
	}
	// Response must increase along the path.
	prev := fit.Predict([]float64{0, 0})
	for _, pt := range path {
		cur := fit.Predict(pt)
		if cur <= prev {
			t.Fatal("response must rise along steepest ascent")
		}
		prev = cur
	}
	if _, err := fit.SteepestAscentPath(0, 3); err == nil {
		t.Fatal("zero step must error")
	}
}

// Property: fitting a surface to data generated by any quadratic with
// bounded coefficients recovers predictions to near machine precision on a
// CCD (which identifies all quadratic terms).
func TestFitRecoveryProperty(t *testing.T) {
	runs := ccdRuns(t, 2)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := make([]float64, 6)
		for i := range c {
			c[i] = rng.NormFloat64() * 3
		}
		truth := func(x []float64) float64 {
			return c[0] + c[1]*x[0] + c[2]*x[1] + c[3]*x[0]*x[0] + c[4]*x[1]*x[1] + c[5]*x[0]*x[1]
		}
		y := make([]float64, len(runs))
		for i, r := range runs {
			y[i] = truth(r)
		}
		fit, err := FitModel(FullQuadratic(2), runs, y)
		if err != nil {
			return false
		}
		probe := []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		return math.Abs(fit.Predict(probe)-truth(probe)) < 1e-8
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
