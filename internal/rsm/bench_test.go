package rsm

import (
	"math/rand"
	"testing"

	"repro/internal/doe"
)

func benchData(b *testing.B, k int) ([][]float64, []float64) {
	b.Helper()
	d, err := doe.CentralComposite(k, doe.CCF, 3)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	y := make([]float64, d.N())
	for i, r := range d.Runs {
		v := 1.0
		for j, x := range r {
			v += float64(j+1)*x + 0.3*x*x
		}
		y[i] = v + 0.01*rng.NormFloat64()
	}
	return d.Runs, y
}

// BenchmarkFitQuadratic4 is the cost of fitting one response surface — the
// "fitting" half of the RSM build phase.
func BenchmarkFitQuadratic4(b *testing.B) {
	runs, y := benchData(b, 4)
	m := FullQuadratic(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitModel(m, runs, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredict4 is the cost of one surface evaluation — the unit of
// "practically instant" exploration.
func BenchmarkPredict4(b *testing.B) {
	runs, y := benchData(b, 4)
	fit, err := FitModel(FullQuadratic(4), runs, y)
	if err != nil {
		b.Fatal(err)
	}
	x := []float64{0.3, -0.2, 0.8, -0.5}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += fit.Predict(x)
	}
	_ = sink
}

func BenchmarkCanonical4(b *testing.B) {
	runs, y := benchData(b, 4)
	fit, err := FitModel(FullQuadratic(4), runs, y)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fit.Canonical(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStepwise4(b *testing.B) {
	runs, y := benchData(b, 4)
	m := FullQuadratic(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Stepwise(m, runs, y, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}
