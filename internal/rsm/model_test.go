package rsm

import "testing"

func TestRowIntoMatchesRow(t *testing.T) {
	m := FullQuadratic(4)
	x := []float64{0.3, -0.7, 1, -0.25}
	want := m.Row(x)

	// Undersized destination: RowInto must allocate.
	got := m.RowInto(x, nil)
	if len(got) != len(want) {
		t.Fatalf("len %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("term %d: %v vs %v", i, got[i], want[i])
		}
	}

	// Right-sized destination: RowInto must reuse it.
	scratch := make([]float64, m.P())
	got = m.RowInto(x, scratch)
	if &got[0] != &scratch[0] {
		t.Fatal("RowInto reallocated a sufficient scratch buffer")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reused term %d: %v vs %v", i, got[i], want[i])
		}
	}

	// Oversized destination: result is re-sliced to P().
	big := make([]float64, m.P()+10)
	got = m.RowInto(x, big)
	if len(got) != m.P() || &got[0] != &big[0] {
		t.Fatal("RowInto mishandled an oversized buffer")
	}
}

// BenchmarkRow4 measures the allocating row expansion.
func BenchmarkRow4(b *testing.B) {
	m := FullQuadratic(4)
	x := []float64{0.3, -0.2, 0.8, -0.5}
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += m.Row(x)[0]
	}
	_ = sink
}

// BenchmarkRowInto4 measures the allocation-free batch-predict path.
func BenchmarkRowInto4(b *testing.B) {
	m := FullQuadratic(4)
	x := []float64{0.3, -0.2, 0.8, -0.5}
	scratch := make([]float64, m.P())
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += m.RowInto(x, scratch)[0]
	}
	_ = sink
}
