package rsm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/doe"
)

// noisyResponse evaluates truth(x) + noise with a fixed rng.
func simulate(t *testing.T, runs [][]float64, truth func([]float64) float64, noise float64, seed int64) []float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	y := make([]float64, len(runs))
	for i, r := range runs {
		y[i] = truth(r) + noise*rng.NormFloat64()
	}
	return y
}

func TestLackOfFitDetectsCubicTruth(t *testing.T) {
	// Truth has a strong x0²·x1² component a quadratic cannot capture.
	// (Note a pure cubic would alias with the linear term on a 3-level
	// design: any univariate function is exactly quadratic on 3 points.)
	truth := func(x []float64) float64 {
		return 1 + x[0] + x[1] + 5*x[0]*x[0]*x[1]*x[1]
	}
	d, err := doe.CentralComposite(2, doe.CCF, 5)
	if err != nil {
		t.Fatal(err)
	}
	y := simulate(t, d.Runs, truth, 0.01, 1)
	fit, err := FitModel(FullQuadratic(2), d.Runs, y)
	if err != nil {
		t.Fatal(err)
	}
	lof, err := fit.LackOfFitTest(d.Runs, y)
	if err != nil {
		t.Fatal(err)
	}
	if !lof.Significant(0.01) {
		t.Fatalf("cubic truth not detected: F=%v p=%v", lof.F, lof.P)
	}
	if lof.Replicates == 0 || lof.PureErrorDoF != 4 {
		t.Fatalf("replication accounting wrong: %+v", lof)
	}
}

func TestLackOfFitCleanForQuadraticTruth(t *testing.T) {
	truth := func(x []float64) float64 {
		return 2 - x[0] + 0.5*x[1] + x[0]*x[0] - 0.3*x[0]*x[1]
	}
	d, err := doe.CentralComposite(2, doe.CCF, 5)
	if err != nil {
		t.Fatal(err)
	}
	y := simulate(t, d.Runs, truth, 0.05, 2)
	fit, err := FitModel(FullQuadratic(2), d.Runs, y)
	if err != nil {
		t.Fatal(err)
	}
	lof, err := fit.LackOfFitTest(d.Runs, y)
	if err != nil {
		t.Fatal(err)
	}
	if lof.Significant(0.01) {
		t.Fatalf("false lack-of-fit alarm: F=%v p=%v", lof.F, lof.P)
	}
	// SS decomposition: pure + lack = residual (within rounding).
	if math.Abs(lof.PureErrorSS+lof.LackSS-fit.ResidualSS) > 1e-9*(1+fit.ResidualSS) {
		t.Fatal("SS decomposition broken")
	}
}

func TestLackOfFitNeedsReplication(t *testing.T) {
	d, err := doe.LatinHypercube(2, 12, 3, 0) // no repeated points
	if err != nil {
		t.Fatal(err)
	}
	y := simulate(t, d.Runs, func(x []float64) float64 { return x[0] }, 0.01, 3)
	fit, err := FitModel(Linear(2), d.Runs, y)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fit.LackOfFitTest(d.Runs, y); err == nil {
		t.Fatal("unreplicated design must be rejected")
	}
}

func TestLackOfFitDeterministicReplicates(t *testing.T) {
	// A deterministic simulator gives identical replicates: pure error 0.
	truth := func(x []float64) float64 { return 1 + x[0] + 4*x[0]*x[0]*x[1]*x[1] }
	d, err := doe.CentralComposite(2, doe.CCF, 3)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, d.N())
	for i, r := range d.Runs {
		y[i] = truth(r)
	}
	fit, err := FitModel(FullQuadratic(2), d.Runs, y)
	if err != nil {
		t.Fatal(err)
	}
	lof, err := fit.LackOfFitTest(d.Runs, y)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(lof.F, 1) || lof.P != 0 {
		t.Fatalf("deterministic cubic must give F=+Inf: %+v", lof)
	}
	// And a perfectly quadratic deterministic truth gives F=0, p=1.
	for i, r := range d.Runs {
		y[i] = 1 + r[0] + r[1]*r[1]
	}
	fit2, err := FitModel(FullQuadratic(2), d.Runs, y)
	if err != nil {
		t.Fatal(err)
	}
	lof2, err := fit2.LackOfFitTest(d.Runs, y)
	if err != nil {
		t.Fatal(err)
	}
	if lof2.F != 0 || lof2.P != 1 {
		t.Fatalf("exact quadratic must give F=0: %+v", lof2)
	}
}

func TestLackOfFitValidation(t *testing.T) {
	d, _ := doe.CentralComposite(2, doe.CCF, 3)
	y := simulate(t, d.Runs, func(x []float64) float64 { return x[0] }, 0.01, 5)
	fit, err := FitModel(FullQuadratic(2), d.Runs, y)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fit.LackOfFitTest(d.Runs[:3], y[:3]); err == nil {
		t.Fatal("length mismatch must be rejected")
	}
}
