package rsm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/doe"
)

func TestBoxCoxKnownValues(t *testing.T) {
	// λ=1 is (y−1); λ=0 is ln y; λ=2 is (y²−1)/2.
	if got, err := BoxCox(5, 1); err != nil || got != 4 {
		t.Fatalf("BoxCox(5,1) = %v, %v", got, err)
	}
	if got, err := BoxCox(math.E, 0); err != nil || math.Abs(got-1) > 1e-12 {
		t.Fatalf("BoxCox(e,0) = %v, %v", got, err)
	}
	if got, err := BoxCox(3, 2); err != nil || got != 4 {
		t.Fatalf("BoxCox(3,2) = %v, %v", got, err)
	}
	if _, err := BoxCox(-1, 1); err == nil {
		t.Fatal("negative y must be rejected")
	}
	if _, err := BoxCox(0, 0); err == nil {
		t.Fatal("zero y must be rejected")
	}
}

func TestBoxCoxRoundTripProperty(t *testing.T) {
	f := func(yRaw, lamRaw float64) bool {
		y := 0.01 + math.Mod(math.Abs(yRaw), 100)
		lam := math.Mod(lamRaw, 2)
		z, err := BoxCox(y, lam)
		if err != nil {
			return false
		}
		back := BoxCoxInverse(z, lam)
		return math.Abs(back-y) < 1e-8*(1+y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoxCoxInverseClamps(t *testing.T) {
	// Outside the image of the transform (λz+1 ≤ 0) the inverse clamps.
	if got := BoxCoxInverse(-5, 1); got != 0 {
		t.Fatalf("clamp = %v", got)
	}
}

func TestBoxCoxProfileFindsLogScale(t *testing.T) {
	// Truth is exactly quadratic in ln y: the profile must prefer λ ≈ 0
	// over λ = 1.
	d, err := doe.CentralComposite(2, doe.CCF, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	y := make([]float64, d.N())
	for i, r := range d.Runs {
		lnY := 1 + 2*r[0] - r[1] + 0.5*r[0]*r[0] + 0.05*rng.NormFloat64()
		y[i] = math.Exp(lnY)
	}
	lam, fit, profile, err := BoxCoxProfile(FullQuadratic(2), d.Runs, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lam) > 0.5 {
		t.Fatalf("selected λ = %v, want ≈0 (log scale)", lam)
	}
	if fit.R2 < 0.99 {
		t.Fatalf("transformed fit R² = %v", fit.R2)
	}
	if len(profile) == 0 {
		t.Fatal("profile missing")
	}
}

func TestBoxCoxProfileIdentityWhenLinearScaleTrue(t *testing.T) {
	d, err := doe.CentralComposite(2, doe.CCF, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	y := make([]float64, d.N())
	for i, r := range d.Runs {
		y[i] = 50 + 5*r[0] - 3*r[1] + r[0]*r[0] + 0.05*rng.NormFloat64()
	}
	lam, _, _, err := BoxCoxProfile(FullQuadratic(2), d.Runs, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	// On a well-scaled positive response with linear-scale truth the
	// likelihood is flat; accept anything within |λ| ≤ 2 but check the
	// fit at the selected λ predicts as well as λ=1.
	if lam < -2 || lam > 2 {
		t.Fatalf("λ = %v outside the grid", lam)
	}
}

func TestBoxCoxProfileValidation(t *testing.T) {
	d, _ := doe.CentralComposite(2, doe.CCF, 3)
	y := make([]float64, d.N())
	for i := range y {
		y[i] = -1 // invalid
	}
	if _, _, _, err := BoxCoxProfile(FullQuadratic(2), d.Runs, y, nil); err == nil {
		t.Fatal("negative responses must be rejected")
	}
}

func TestStandardizedResidualsAndCooks(t *testing.T) {
	d, err := doe.CentralComposite(2, doe.CCF, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	y := make([]float64, d.N())
	for i, r := range d.Runs {
		y[i] = 1 + r[0] + r[1] + 0.1*rng.NormFloat64()
	}
	// Corrupt one run hard (a "diverged simulation").
	y[3] += 25
	fit, err := FitModel(FullQuadratic(2), d.Runs, y)
	if err != nil {
		t.Fatal(err)
	}
	out := fit.OutlierRuns(3)
	found := false
	for _, i := range out {
		if i == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("corrupted run not flagged: outliers = %v, residuals = %v", out, fit.StandardizedResiduals())
	}
	cooks := fit.CooksDistances()
	// The corrupted run must be among the most influential.
	maxI := 0
	for i, c := range cooks {
		if c > cooks[maxI] {
			maxI = i
		}
	}
	if maxI != 3 {
		t.Fatalf("Cook's distance max at run %d, want 3 (values %v)", maxI, cooks)
	}
}

func TestResidualNormalityCheck(t *testing.T) {
	d, err := doe.CentralComposite(2, doe.CCF, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	y := make([]float64, d.N())
	for i, r := range d.Runs {
		y[i] = 1 + r[0] - r[1] + 0.2*rng.NormFloat64()
	}
	fit, err := FitModel(FullQuadratic(2), d.Runs, y)
	if err != nil {
		t.Fatal(err)
	}
	if qq := fit.ResidualNormalityCheck(); qq < 0.85 {
		t.Fatalf("Q-Q correlation %v too low for gaussian errors", qq)
	}
}
