package rsm

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// LackOfFit is the classical RSM lack-of-fit decomposition: when the
// design contains replicated runs (e.g. a CCD's centre points), the
// residual sum of squares splits into pure experimental error (variation
// among replicates) and lack of fit (systematic deviation of the model
// from the true response). A significant F ratio says the polynomial is
// too simple for the region — the trigger for model upgrades or region
// refinement in sequential RSM practice.
type LackOfFit struct {
	PureErrorSS  float64
	PureErrorDoF int
	LackSS       float64
	LackDoF      int
	F            float64 // (LackSS/LackDoF) / (PureErrorSS/PureErrorDoF)
	P            float64 // right-tail p-value
	Replicates   int     // number of replicate groups with ≥2 runs
}

// Significant reports whether lack of fit is detected at level alpha.
func (l *LackOfFit) Significant(alpha float64) bool {
	return !math.IsNaN(l.P) && l.P < alpha
}

// LackOfFitTest computes the decomposition for the fit, given the design
// runs and responses it was fitted to. Runs are grouped by exact factor
// coordinates; an error is returned when no group has replication or when
// the degrees of freedom are exhausted.
func (f *Fit) LackOfFitTest(runs [][]float64, y []float64) (*LackOfFit, error) {
	if len(runs) != f.N || len(y) != f.N {
		return nil, fmt.Errorf("rsm: lack-of-fit needs the %d fitted runs, got %d/%d", f.N, len(runs), len(y))
	}
	// Group replicate runs by coordinates.
	type group struct {
		ys []float64
	}
	groups := map[string]*group{}
	keyOf := func(r []float64) string {
		// Exact-coordinate key; designed experiments repeat points exactly.
		b := make([]byte, 0, len(r)*9)
		for _, v := range r {
			bits := math.Float64bits(v)
			for s := 0; s < 8; s++ {
				b = append(b, byte(bits>>(8*s)))
			}
			b = append(b, ',')
		}
		return string(b)
	}
	for i, r := range runs {
		k := keyOf(r)
		g, ok := groups[k]
		if !ok {
			g = &group{}
			groups[k] = g
		}
		g.ys = append(g.ys, y[i])
	}

	lof := &LackOfFit{}
	distinct := 0
	for _, g := range groups {
		distinct++
		if len(g.ys) < 2 {
			continue
		}
		lof.Replicates++
		m := stats.Mean(g.ys)
		for _, v := range g.ys {
			d := v - m
			lof.PureErrorSS += d * d
		}
		lof.PureErrorDoF += len(g.ys) - 1
	}
	if lof.Replicates == 0 {
		return nil, fmt.Errorf("rsm: no replicated runs — lack-of-fit needs replication (add centre points)")
	}
	lof.LackSS = f.ResidualSS - lof.PureErrorSS
	if lof.LackSS < 0 {
		lof.LackSS = 0 // numerical guard
	}
	lof.LackDoF = distinct - f.Model.P()
	if lof.LackDoF <= 0 {
		return nil, fmt.Errorf("rsm: %d distinct points cannot test lack of fit of a %d-term model", distinct, f.Model.P())
	}
	if lof.PureErrorDoF == 0 {
		return nil, fmt.Errorf("rsm: zero pure-error degrees of freedom")
	}
	pureMS := lof.PureErrorSS / float64(lof.PureErrorDoF)
	lackMS := lof.LackSS / float64(lof.LackDoF)
	if pureMS <= 0 {
		// Replicates identical (deterministic simulator): any lack SS
		// beyond rounding noise is infinitely significant.
		if lof.LackSS > 1e-12*(1+f.TotalSS) {
			lof.F = math.Inf(1)
			lof.P = 0
		} else {
			lof.F = 0
			lof.P = 1
		}
		return lof, nil
	}
	lof.F = lackMS / pureMS
	lof.P = stats.FPValue(lof.F, float64(lof.LackDoF), float64(lof.PureErrorDoF))
	return lof, nil
}
