package rsm

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// BoxCox applies the Box–Cox power transform with parameter lambda:
//
//	y(λ) = (y^λ − 1)/λ   (λ ≠ 0)
//	y(0) = ln y
//
// Responses spanning decades (harvested power near vs off resonance) fit
// polynomials far better on a transformed scale; this is the standard RSM
// variance-stabilization tool.
func BoxCox(y, lambda float64) (float64, error) {
	if y <= 0 {
		return 0, fmt.Errorf("rsm: Box–Cox needs positive responses, got %g", y)
	}
	if lambda == 0 {
		return math.Log(y), nil
	}
	return (math.Pow(y, lambda) - 1) / lambda, nil
}

// BoxCoxInverse undoes the transform.
func BoxCoxInverse(z, lambda float64) float64 {
	if lambda == 0 {
		return math.Exp(z)
	}
	v := lambda*z + 1
	if v <= 0 {
		return 0 // outside the transform's image: clamp to the boundary
	}
	return math.Pow(v, 1/lambda)
}

// BoxCoxProfile selects the Box–Cox λ maximizing the profile
// log-likelihood of the model over a λ grid — the textbook procedure: for
// each candidate λ, transform the responses, fit the model, and score
//
//	L(λ) = −n/2·ln(SSE(λ)/n) + (λ−1)·Σ ln y
//
// It returns the best λ, its fit, and the profile (for diagnostics).
func BoxCoxProfile(m Model, runs [][]float64, y []float64, lambdas []float64) (bestLambda float64, bestFit *Fit, profile []float64, err error) {
	if len(lambdas) == 0 {
		lambdas = []float64{-2, -1.5, -1, -0.5, 0, 0.5, 1, 1.5, 2}
	}
	var sumLog float64
	for _, v := range y {
		if v <= 0 {
			return 0, nil, nil, fmt.Errorf("rsm: Box–Cox needs positive responses, got %g", v)
		}
		sumLog += math.Log(v)
	}
	n := float64(len(y))
	best := math.Inf(-1)
	profile = make([]float64, len(lambdas))
	z := make([]float64, len(y))
	for li, lam := range lambdas {
		for i, v := range y {
			zi, err := BoxCox(v, lam)
			if err != nil {
				return 0, nil, nil, err
			}
			z[i] = zi
		}
		fit, ferr := FitModel(m, runs, z)
		if ferr != nil {
			profile[li] = math.Inf(-1)
			continue
		}
		sse := fit.ResidualSS
		if sse <= 0 {
			sse = 1e-300 // exact fit: likelihood unbounded, still comparable
		}
		ll := -n/2*math.Log(sse/n) + (lam-1)*sumLog
		profile[li] = ll
		if ll > best {
			best = ll
			bestLambda = lam
			bestFit = fit
		}
	}
	if bestFit == nil {
		return 0, nil, nil, fmt.Errorf("rsm: no Box–Cox candidate produced a valid fit")
	}
	return bestLambda, bestFit, profile, nil
}

// StandardizedResiduals returns the internally studentized residuals
// e_i / (σ·√(1−h_i)) — the scale on which |r| > 3 flags outlying runs
// (a botched simulation, a diverged transient).
func (f *Fit) StandardizedResiduals() []float64 {
	out := make([]float64, len(f.Residuals))
	sigma := math.Sqrt(f.Sigma2)
	for i, e := range f.Residuals {
		den := sigma * math.Sqrt(math.Max(1-f.Leverage[i], 1e-12))
		if den == 0 {
			out[i] = 0
			continue
		}
		out[i] = e / den
	}
	return out
}

// CooksDistances returns Cook's distance of every run: the influence of
// deleting that run on the fitted coefficients,
// D_i = r_i²·h_i / (p·(1−h_i)). Runs with D ≫ 4/n dominate the surface
// and deserve a re-simulation check.
func (f *Fit) CooksDistances() []float64 {
	r := f.StandardizedResiduals()
	p := float64(f.Model.P())
	out := make([]float64, len(r))
	for i := range r {
		h := f.Leverage[i]
		out[i] = r[i] * r[i] * h / (p * math.Max(1-h, 1e-12))
	}
	return out
}

// StudentizedResiduals returns the externally studentized (deleted)
// residuals: each residual is scaled by the error estimate from a fit
// WITHOUT that run, via the standard leave-one-out identity
//
//	s²_(i) = ((n−p)·σ² − e_i²/(1−h_i)) / (n−p−1)
//
// Unlike the internal version, a gross outlier cannot mask itself by
// inflating the pooled σ.
func (f *Fit) StudentizedResiduals() []float64 {
	n, p := f.N, f.Model.P()
	out := make([]float64, len(f.Residuals))
	dof := float64(n - p)
	if dof <= 1 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	for i, e := range f.Residuals {
		h := math.Min(f.Leverage[i], 1-1e-12)
		s2del := (dof*f.Sigma2 - e*e/(1-h)) / (dof - 1)
		if s2del <= 0 {
			// The deleted fit is exact: this run alone carries all error.
			out[i] = math.Copysign(math.Inf(1), e)
			continue
		}
		out[i] = e / math.Sqrt(s2del*(1-h))
	}
	return out
}

// OutlierRuns returns the indices of runs whose externally studentized
// residual exceeds the threshold (3 is conventional).
func (f *Fit) OutlierRuns(threshold float64) []int {
	if threshold <= 0 {
		threshold = 3
	}
	var out []int
	for i, r := range f.StudentizedResiduals() {
		if math.Abs(r) > threshold {
			out = append(out, i)
		}
	}
	return out
}

// ResidualNormalityCheck returns the Pearson correlation between the
// sorted standardized residuals and their normal quantiles (a Q–Q plot
// correlation): values near 1 support the normal-error assumption behind
// the t/F inference.
func (f *Fit) ResidualNormalityCheck() float64 {
	r := f.StandardizedResiduals()
	n := len(r)
	if n < 3 {
		return math.NaN()
	}
	sorted := append([]float64(nil), r...)
	sortFloats(sorted)
	q := make([]float64, n)
	for i := range q {
		q[i] = stats.NormalQuantile((float64(i) + 0.5) / float64(n))
	}
	return stats.Pearson(sorted, q)
}

func sortFloats(x []float64) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}
