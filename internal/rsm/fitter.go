package rsm

import (
	"fmt"
	"math"
)

// fitterRidge is the diagonal loading on the incrementally maintained
// normal equations. It exists only so the Cholesky factor is positive
// definite from the first appended row; with coded-unit model rows (entries
// O(1)) and any identifiable design it perturbs coefficients by ~1e-12
// relative — far inside the 1e-9 equivalence bound the adaptive loop
// requires, and irrelevant to Finalize, which refits from scratch.
const fitterRidge = 1e-12

// Fitter is an incrementally updatable least-squares fit: the sequential
// (adaptive-build) counterpart of FitModel. It maintains the Cholesky
// factorization L·Lᵀ = XᵀX + ridge·I and the vector Xᵀy under appended
// rows, so after each new simulated point the coefficients are one rank-one
// Cholesky update plus two triangular solves — O(p²) instead of the
// O(n·p²) batch refactorization.
//
// Snapshot returns the current incremental fit with the diagnostics the
// adaptive stopping rule consumes (R², adjusted R², PRESS, lack-of-fit
// inputs). Finalize hands the accumulated rows to FitModel, so the final
// model of an adaptive build is bit-identical to a batch fit of the same
// data — the equivalence the fixed-strategy regression tests pin down.
type Fitter struct {
	model Model
	p     int

	l   [][]float64 // lower-triangular Cholesky factor of XᵀX + ridge·I
	xty []float64

	rows [][]float64 // expanded model rows, retained for diagnostics
	runs [][]float64 // coded runs, retained for Finalize and lack-of-fit
	ys   []float64
}

// NewFitter returns an empty incremental fitter for the model.
func NewFitter(m Model) (*Fitter, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	p := m.P()
	f := &Fitter{model: m, p: p, xty: make([]float64, p)}
	f.l = make([][]float64, p)
	for i := range f.l {
		f.l[i] = make([]float64, i+1)
		f.l[i][i] = math.Sqrt(fitterRidge)
	}
	return f, nil
}

// Model returns the model being fitted.
func (f *Fitter) Model() Model { return f.model }

// N returns the number of appended observations.
func (f *Fitter) N() int { return len(f.ys) }

// Runs returns the appended coded runs (shared backing array; do not
// mutate).
func (f *Fitter) Runs() [][]float64 { return f.runs }

// Ys returns the appended responses (shared backing array; do not mutate).
func (f *Fitter) Ys() []float64 { return f.ys }

// Append adds one observation: a coded run and its response. Cost is O(p²).
func (f *Fitter) Append(run []float64, y float64) error {
	if len(run) != f.model.K {
		return fmt.Errorf("rsm: run has %d factors, model wants %d", len(run), f.model.K)
	}
	if math.IsNaN(y) || math.IsInf(y, 0) {
		return fmt.Errorf("rsm: non-finite response %v", y)
	}
	row := f.model.Row(run)
	// Rank-one Cholesky update: L·Lᵀ ← L·Lᵀ + row·rowᵀ. The classical
	// Givens-style sweep mutates its work vector, so operate on a copy.
	w := append([]float64(nil), row...)
	for j := 0; j < f.p; j++ {
		ljj := f.l[j][j]
		r := math.Hypot(ljj, w[j])
		c, s := r/ljj, w[j]/ljj
		f.l[j][j] = r
		for i := j + 1; i < f.p; i++ {
			f.l[i][j] = (f.l[i][j] + s*w[i]) / c
			w[i] = c*w[i] - s*f.l[i][j]
		}
	}
	for j := 0; j < f.p; j++ {
		f.xty[j] += row[j] * y
	}
	f.rows = append(f.rows, row)
	f.runs = append(f.runs, append([]float64(nil), run...))
	f.ys = append(f.ys, y)
	return nil
}

// AppendRows appends a batch of observations.
func (f *Fitter) AppendRows(runs [][]float64, ys []float64) error {
	if len(runs) != len(ys) {
		return fmt.Errorf("rsm: %d runs but %d responses", len(runs), len(ys))
	}
	for i := range runs {
		if err := f.Append(runs[i], ys[i]); err != nil {
			return err
		}
	}
	return nil
}

// Coef solves the current normal equations from the updated Cholesky factor
// in O(p²). An error is returned while the design cannot identify the model
// (n < p).
func (f *Fitter) Coef() ([]float64, error) {
	if f.N() < f.p {
		return nil, fmt.Errorf("rsm: %d runs cannot identify %d coefficients", f.N(), f.p)
	}
	// Forward substitution: L·z = Xᵀy.
	z := make([]float64, f.p)
	for i := 0; i < f.p; i++ {
		s := f.xty[i]
		for j := 0; j < i; j++ {
			s -= f.l[i][j] * z[j]
		}
		z[i] = s / f.l[i][i]
	}
	// Back substitution: Lᵀ·β = z.
	beta := make([]float64, f.p)
	for i := f.p - 1; i >= 0; i-- {
		s := z[i]
		for j := i + 1; j < f.p; j++ {
			s -= f.l[j][i] * beta[j]
		}
		beta[i] = s / f.l[i][i]
	}
	return beta, nil
}

// leverage returns xᵀ(XᵀX)⁻¹x = ‖L⁻¹x‖² via one forward substitution.
func (f *Fitter) leverage(row []float64) float64 {
	z := make([]float64, f.p)
	var h float64
	for i := 0; i < f.p; i++ {
		s := row[i]
		for j := 0; j < i; j++ {
			s -= f.l[i][j] * z[j]
		}
		z[i] = s / f.l[i][i]
		h += z[i] * z[i]
	}
	return h
}

// Snapshot returns the incremental fit as a *Fit carrying the diagnostics
// the sequential stopping rule needs: coefficients, residuals, R²,
// adjusted R², RMSE, leverage, PRESS and R²-pred, plus the sums of squares
// LackOfFitTest consumes. The inference-only fields (CoefSE, confidence
// intervals) are left zero — use Finalize or FitModel when those matter.
// Cost is O(n·p²) dominated by the per-row leverage solves; the coefficient
// refit itself is O(p²).
func (f *Fitter) Snapshot() (*Fit, error) {
	coef, err := f.Coef()
	if err != nil {
		return nil, err
	}
	n := f.N()
	out := &Fit{Model: f.model, Coef: coef, N: n}
	var mean float64
	for _, y := range f.ys {
		mean += y
	}
	mean /= float64(n)
	out.Residuals = make([]float64, n)
	for i, row := range f.rows {
		e := f.ys[i] - dot(row, coef)
		out.Residuals[i] = e
		out.ResidualSS += e * e
		d := f.ys[i] - mean
		out.TotalSS += d * d
	}
	out.RegressionSS = out.TotalSS - out.ResidualSS
	if out.TotalSS > 0 {
		out.R2 = 1 - out.ResidualSS/out.TotalSS
	} else {
		out.R2 = 1
	}
	dofResid := n - f.p
	if dofResid > 0 {
		out.Sigma2 = out.ResidualSS / float64(dofResid)
		out.RMSE = math.Sqrt(out.Sigma2)
		if out.TotalSS > 0 {
			out.AdjR2 = 1 - (out.ResidualSS/float64(dofResid))/(out.TotalSS/float64(n-1))
		} else {
			out.AdjR2 = 1
		}
	} else {
		out.AdjR2 = out.R2
	}
	out.Leverage = make([]float64, n)
	for i, row := range f.rows {
		h := f.leverage(row)
		out.Leverage[i] = h
		denom := 1 - h
		if denom < 1e-12 {
			denom = 1e-12
		}
		r := out.Residuals[i] / denom
		out.PRESS += r * r
	}
	if out.TotalSS > 0 {
		out.R2Pred = 1 - out.PRESS/out.TotalSS
	} else {
		out.R2Pred = 1
	}
	return out, nil
}

// Finalize refits the accumulated data with the batch FitModel path and
// returns that fit. Because it hands FitModel the very rows and responses
// that were appended, the result is bit-identical to a from-scratch batch
// fit of the same data — the adaptive build's final model carries no trace
// of the incremental updates.
func (f *Fitter) Finalize() (*Fit, error) {
	return FitModel(f.model, f.runs, f.ys)
}
