package rsm

import (
	"fmt"
	"math"

	"repro/internal/la"
	"repro/internal/stats"
)

// Fit is a least-squares-fitted response surface with its diagnostics.
type Fit struct {
	Model Model
	Coef  []float64 // one coefficient per model term
	N     int       // number of runs fitted

	// Sums of squares.
	TotalSS      float64 // Σ(y−ȳ)²
	ResidualSS   float64 // Σe²
	RegressionSS float64 // TotalSS − ResidualSS

	// Quality metrics.
	R2     float64 // coefficient of determination
	AdjR2  float64 // adjusted for model size
	RMSE   float64 // √(ResidualSS/(n−p))
	PRESS  float64 // prediction SS (leave-one-out)
	R2Pred float64 // 1 − PRESS/TotalSS

	// Inference.
	Sigma2 float64   // residual mean square
	CoefSE []float64 // standard error per coefficient

	Residuals []float64
	Leverage  []float64 // hat-matrix diagonal

	xtxInv *la.Matrix
}

// FitModel fits the model to the coded design runs and observed responses
// y by Householder QR least squares.
func FitModel(m Model, runs [][]float64, y []float64) (*Fit, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n, p := len(runs), m.P()
	if n != len(y) {
		return nil, fmt.Errorf("rsm: %d runs but %d responses", n, len(y))
	}
	if n < p {
		return nil, fmt.Errorf("rsm: %d runs cannot identify %d coefficients", n, p)
	}
	x := la.NewMatrix(n, p)
	for i, r := range runs {
		if len(r) != m.K {
			return nil, fmt.Errorf("rsm: run %d has %d factors, model wants %d", i, len(r), m.K)
		}
		x.SetRow(i, m.Row(r))
	}
	qr, err := la.FactorQR(x)
	if err != nil {
		return nil, err
	}
	coef, err := qr.SolveLS(y)
	if err != nil {
		return nil, fmt.Errorf("rsm: design cannot identify the model (aliased or deficient): %w", err)
	}
	xtxInv, err := qr.XtXInverse()
	if err != nil {
		return nil, err
	}

	f := &Fit{Model: m, Coef: coef, N: n, xtxInv: xtxInv}
	// Residuals and sums of squares.
	f.Residuals = make([]float64, n)
	mean := stats.Mean(y)
	for i := range y {
		pred := dot(x.Row(i), coef)
		e := y[i] - pred
		f.Residuals[i] = e
		f.ResidualSS += e * e
		d := y[i] - mean
		f.TotalSS += d * d
	}
	f.RegressionSS = f.TotalSS - f.ResidualSS
	if f.TotalSS > 0 {
		f.R2 = 1 - f.ResidualSS/f.TotalSS
	} else {
		f.R2 = 1 // constant response fitted exactly
	}
	dofResid := n - p
	if dofResid > 0 {
		f.Sigma2 = f.ResidualSS / float64(dofResid)
		f.RMSE = math.Sqrt(f.Sigma2)
		if f.TotalSS > 0 {
			f.AdjR2 = 1 - (f.ResidualSS/float64(dofResid))/(f.TotalSS/float64(n-1))
		} else {
			f.AdjR2 = 1
		}
	} else {
		f.AdjR2 = f.R2
	}
	// Leverage and PRESS.
	f.Leverage = make([]float64, n)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		h := quadFormMat(f.xtxInv, row)
		f.Leverage[i] = h
		denom := 1 - h
		if denom < 1e-12 {
			denom = 1e-12 // saturated point: its PRESS contribution explodes, cap it
		}
		r := f.Residuals[i] / denom
		f.PRESS += r * r
	}
	if f.TotalSS > 0 {
		f.R2Pred = 1 - f.PRESS/f.TotalSS
	} else {
		f.R2Pred = 1
	}
	// Coefficient standard errors.
	f.CoefSE = make([]float64, p)
	for j := 0; j < p; j++ {
		f.CoefSE[j] = math.Sqrt(f.Sigma2 * f.xtxInv.At(j, j))
	}
	return f, nil
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func quadFormMat(m *la.Matrix, x []float64) float64 {
	var s float64
	for i := range x {
		if x[i] == 0 {
			continue
		}
		var t float64
		for j := range x {
			t += m.At(i, j) * x[j]
		}
		s += x[i] * t
	}
	return s
}

// Predict evaluates the fitted surface at the coded point x.
func (f *Fit) Predict(x []float64) float64 {
	return dot(f.Model.Row(x), f.Coef)
}

// PredictBatch evaluates the surface at many points.
func (f *Fit) PredictBatch(xs [][]float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = f.Predict(x)
	}
	return out
}

// PredictCI returns the prediction and its confidence interval for the
// mean response at x at the given confidence level (e.g. 0.95).
func (f *Fit) PredictCI(x []float64, level float64) (pred, lo, hi float64) {
	pred = f.Predict(x)
	dof := float64(f.N - f.Model.P())
	if dof <= 0 || level <= 0 || level >= 1 {
		return pred, math.NaN(), math.NaN()
	}
	row := f.Model.Row(x)
	se := math.Sqrt(f.Sigma2 * quadFormMat(f.xtxInv, row))
	t := stats.TQuantile(0.5+level/2, dof)
	return pred, pred - t*se, pred + t*se
}

// TStats returns the t statistic of each coefficient.
func (f *Fit) TStats() []float64 {
	out := make([]float64, len(f.Coef))
	for i, c := range f.Coef {
		if f.CoefSE[i] == 0 {
			out[i] = math.Inf(1)
			continue
		}
		out[i] = c / f.CoefSE[i]
	}
	return out
}

// PValues returns the two-sided p-value of each coefficient.
func (f *Fit) PValues() []float64 {
	dof := float64(f.N - f.Model.P())
	ts := f.TStats()
	out := make([]float64, len(ts))
	for i, t := range ts {
		if dof <= 0 {
			out[i] = math.NaN()
			continue
		}
		out[i] = 2 * (1 - stats.TCDF(math.Abs(t), dof))
	}
	return out
}

// ANOVARow is one line of the regression ANOVA table.
type ANOVARow struct {
	Source string
	DoF    int
	SS     float64
	MS     float64
	F      float64
	P      float64
}

// ANOVA returns the overall regression ANOVA table (regression, residual,
// total).
func (f *Fit) ANOVA() []ANOVARow {
	p := f.Model.P()
	dofReg := p - 1
	dofRes := f.N - p
	rows := make([]ANOVARow, 0, 3)
	reg := ANOVARow{Source: "regression", DoF: dofReg, SS: f.RegressionSS}
	res := ANOVARow{Source: "residual", DoF: dofRes, SS: f.ResidualSS}
	if dofReg > 0 {
		reg.MS = f.RegressionSS / float64(dofReg)
	}
	if dofRes > 0 {
		res.MS = f.ResidualSS / float64(dofRes)
		if res.MS > 0 && dofReg > 0 {
			reg.F = reg.MS / res.MS
			reg.P = stats.FPValue(reg.F, float64(dofReg), float64(dofRes))
		}
	}
	rows = append(rows, reg, res,
		ANOVARow{Source: "total", DoF: f.N - 1, SS: f.TotalSS})
	return rows
}

// TermANOVA returns a per-term breakdown: each non-intercept term's
// single-degree-of-freedom F test (squared t test) and p-value, sorted as
// in the model.
func (f *Fit) TermANOVA() []ANOVARow {
	ts := f.TStats()
	ps := f.PValues()
	dofRes := f.N - f.Model.P()
	rows := make([]ANOVARow, 0, len(f.Coef))
	for i, t := range f.Model.Terms {
		if t.Degree() == 0 {
			continue
		}
		fstat := ts[i] * ts[i]
		rows = append(rows, ANOVARow{
			Source: t.Label(nil),
			DoF:    1,
			SS:     fstat * f.Sigma2, // single-dof SS = F·MSE
			MS:     fstat * f.Sigma2,
			F:      fstat,
			P:      ps[i],
		})
	}
	_ = dofRes
	return rows
}

// Stepwise performs backward elimination starting from model m: repeatedly
// drop the least significant term (largest p-value above alphaOut), refit,
// and stop when every remaining term is significant or only the intercept
// remains. It returns the reduced fit.
func Stepwise(m Model, runs [][]float64, y []float64, alphaOut float64) (*Fit, error) {
	if alphaOut <= 0 || alphaOut >= 1 {
		return nil, fmt.Errorf("rsm: alphaOut %g must be in (0,1)", alphaOut)
	}
	cur := m
	for {
		fit, err := FitModel(cur, runs, y)
		if err != nil {
			return nil, err
		}
		ps := fit.PValues()
		worst, worstP := -1, alphaOut
		for i, t := range cur.Terms {
			if t.Degree() == 0 {
				continue // never drop the intercept
			}
			if math.IsNaN(ps[i]) {
				continue
			}
			if ps[i] > worstP {
				worst, worstP = i, ps[i]
			}
		}
		if worst < 0 || cur.P() <= 1 {
			return fit, nil
		}
		cur = cur.Drop(worst)
	}
}
