package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/apiclient"
	"repro/internal/core"
	"repro/internal/sim"
)

// slowProblem is a problem factory whose simulator takes a fixed wall-time
// per run — enough to saturate a tightly-limited validate endpoint without
// timing games elsewhere.
func slowProblem(delay time.Duration) ProblemFactory {
	return func(amp, horizon float64) *core.Problem {
		p := core.StandardProblem(amp, horizon)
		p.Engine = func(d sim.Design, cfg sim.Config) (*sim.Result, error) {
			time.Sleep(delay)
			r := &sim.Result{
				AvgHarvestedPower: d.Node.Period * 1e-6,
				StoredEnergyEnd:   d.Store.C,
				FinalStoreV:       3,
				UptimeFraction:    d.Store.C * 5,
				NetEnergyMargin:   1e-3 * d.Node.Period,
			}
			r.Node.Packets = int(d.Node.Period)
			r.Node.FirstTxTime = d.Node.Period / 2
			return r, nil
		}
		return p
	}
}

// oneShot never retries: the open-loop storm below must see every 429 as
// the server sent it, not paper over sheds with client-side retries.
func oneShot() *apiclient.Client {
	return apiclient.New("", apiclient.Options{MaxAttempts: 1})
}

// midpoint is a valid natural-units point for the model: every factor at
// its range midpoint.
func midpoint(ss *core.SavedSurfaces) []float64 {
	p := make([]float64, len(ss.Factors))
	for i, f := range ss.Factors {
		p[i] = (f.Min + f.Max) / 2
	}
	return p
}

// TestOverloadChaosE2E is the overload drill: a request storm at 10× the
// validate endpoint's capacity must leave the admitted requests fast, shed
// the rest with typed 429s carrying Retry-After, keep every counter
// consistent, return the limiter and goroutine count to baseline, and
// still drain gracefully afterwards.
func TestOverloadChaosE2E(t *testing.T) {
	fixture(t) // build the shared surfaces before the goroutine baseline
	before := runtime.NumGoroutine()

	srv, ts := newTestServer(t, Config{
		Problem: slowProblem(2 * time.Millisecond),
		Load: LoadConfig{
			Validate: EndpointLimit{MaxConcurrent: 2, MaxQueue: 2, MaxWait: 100 * time.Millisecond},
		},
	})
	srv.Registry().Set("m", fixture(t))

	const capacity = 4 // 2 serving + 2 queued
	const storm = 10 * capacity
	client := oneShot()

	type outcome struct {
		status     int
		code       string
		retryAfter string
		latency    time.Duration
	}
	outcomes := make([]outcome, storm)
	var wg sync.WaitGroup
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := time.Now()
			res, err := client.Do(context.Background(), http.MethodPost, ts.URL+"/v1/validate",
				ValidateRequest{Model: "m", N: 3, Seed: int64(i)})
			if err != nil {
				t.Errorf("request %d transport failure: %v", i, err)
				return
			}
			var env errorBody
			json.Unmarshal(res.Body, &env)
			outcomes[i] = outcome{
				status:     res.Status,
				code:       env.Code,
				retryAfter: res.Header.Get("Retry-After"),
				latency:    time.Since(start),
			}
		}(i)
	}
	wg.Wait()

	var served, shed int
	var servedLat []time.Duration
	for i, o := range outcomes {
		switch o.status {
		case http.StatusOK:
			served++
			servedLat = append(servedLat, o.latency)
		case http.StatusTooManyRequests:
			shed++
			if o.code != codeOverloaded {
				t.Fatalf("request %d shed with code %q, want %q", i, o.code, codeOverloaded)
			}
			secs, err := strconv.Atoi(o.retryAfter)
			if err != nil || secs < 1 {
				t.Fatalf("request %d shed without a usable Retry-After: %q", i, o.retryAfter)
			}
		default:
			t.Fatalf("request %d: unexpected status %d (code %q)", i, o.status, o.code)
		}
	}
	if served == 0 || shed == 0 {
		t.Fatalf("storm must both serve and shed: served %d, shed %d of %d", served, shed, storm)
	}

	// Admitted requests stay fast: bounded queue wait plus bounded service
	// time, nowhere near the storm's aggregate demand.
	sort.Slice(servedLat, func(i, j int) bool { return servedLat[i] < servedLat[j] })
	p99 := servedLat[(len(servedLat)*99)/100]
	if p99 > 2*time.Second {
		t.Fatalf("admitted p99 %s; admission control failed to bound latency", p99)
	}

	// The instruments agree with the observed outcomes exactly.
	if got := srv.admitted.With("validate").Value(); got != uint64(served) {
		t.Fatalf("admitted counter %d, want %d", got, served)
	}
	if got := srv.shed.With("validate").Value(); got != uint64(shed) {
		t.Fatalf("shed counter %d, want %d", got, shed)
	}
	hist := srv.admissionWait.With("validate")
	if hist.Count() != storm {
		t.Fatalf("queued-wait histogram saw %d requests, want %d", hist.Count(), storm)
	}
	if hist.Sum() < 0 {
		t.Fatalf("queued-wait histogram sum %g negative", hist.Sum())
	}

	// The limiter settles back to idle.
	lim := srv.limits["validate"]
	settle := time.Now().Add(5 * time.Second)
	for lim.Inflight() != 0 || lim.QueueDepth() != 0 {
		if time.Now().After(settle) {
			t.Fatalf("limiter never settled: inflight %d queued %d", lim.Inflight(), lim.QueueDepth())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Graceful drain still completes promptly after the storm.
	start := time.Now()
	srv.Shutdown(5 * time.Second)
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("post-storm drain took %s", d)
	}

	// And the goroutine count returns to baseline.
	ts.CloseClientConnections()
	ts.Close()
	leakDeadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d before, %d after storm\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBuildQueueRaceExactCapacity races a burst of build submissions
// against a nearly-full queue: with one build running and QueueCap slots,
// exactly QueueCap of the burst may be accepted — never more, never fewer
// — and every rejection is a typed queue_full with Retry-After.
func TestBuildQueueRaceExactCapacity(t *testing.T) {
	release := make(chan struct{})
	quit := make(chan struct{})
	defer close(quit)
	const queueCap = 4

	srv, ts := newTestServer(t, Config{Problem: blockingProblem(release, quit), QueueCap: queueCap})
	first, err := srv.Jobs().Submit(context.Background(), BuildRequest{Model: "warm", Horizon: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, srv.Jobs(), first.ID, JobRunning) // queue is empty, worker busy

	const burst = 16
	client := oneShot()
	statuses := make([]int, burst)
	codes := make([]string, burst)
	retryAfters := make([]string, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := client.Do(context.Background(), http.MethodPost, ts.URL+"/v1/build",
				BuildRequest{Model: "race", Horizon: 1})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			statuses[i] = res.Status
			var env errorBody
			json.Unmarshal(res.Body, &env)
			codes[i] = env.Code
			retryAfters[i] = res.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()

	accepted, rejected := 0, 0
	for i := range statuses {
		switch statuses[i] {
		case http.StatusAccepted:
			accepted++
		case http.StatusServiceUnavailable:
			rejected++
			if codes[i] != codeQueueFull {
				t.Fatalf("submit %d rejected with code %q, want %q", i, codes[i], codeQueueFull)
			}
			if retryAfters[i] == "" {
				t.Fatalf("submit %d: queue_full response lost its Retry-After header", i)
			}
		default:
			t.Fatalf("submit %d: unexpected status %d", i, statuses[i])
		}
	}
	if accepted != queueCap || rejected != burst-queueCap {
		t.Fatalf("race admitted %d and rejected %d, want exactly %d and %d",
			accepted, rejected, queueCap, burst-queueCap)
	}
	if got := srv.Jobs().QueueDepth(); got != queueCap {
		t.Fatalf("queue depth %d after burst, want %d", got, queueCap)
	}

	// Releasing the engine lets everything finish; nothing is stuck.
	close(release)
	deadline := time.Now().Add(10 * time.Second)
	for srv.Jobs().QueueDepth() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never drained: depth %d", srv.Jobs().QueueDepth())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestPredictMemoHitByteIdentical: an identical predict against an
// unchanged model is answered from the memo — counter-verified — and the
// replayed bytes are identical to the computed response.
func TestPredictMemoHitByteIdentical(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	srv.Registry().Set("memo", fixture(t))

	req := PredictRequest{Model: "memo", Point: midpoint(fixture(t))}
	resp1, body1 := postJSON(t, ts.URL+"/v1/predict", req)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first predict: %d %s", resp1.StatusCode, body1)
	}
	if resp1.Header.Get("X-Memo") == "hit" {
		t.Fatal("first predict cannot be a memo hit")
	}
	if h, m := srv.memoHits.With("predict").Value(), srv.memoMisses.With("predict").Value(); h != 0 || m != 1 {
		t.Fatalf("after first predict: hits %d misses %d, want 0 and 1", h, m)
	}

	resp2, body2 := postJSON(t, ts.URL+"/v1/predict", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second predict: %d %s", resp2.StatusCode, body2)
	}
	if resp2.Header.Get("X-Memo") != "hit" {
		t.Fatal("identical predict against unchanged model must hit the memo")
	}
	if string(body1) != string(body2) {
		t.Fatalf("memo replay not byte-identical:\nfirst  %s\nsecond %s", body1, body2)
	}
	if h := srv.memoHits.With("predict").Value(); h != 1 {
		t.Fatalf("memo hits %d, want 1", h)
	}

	// Sweeps memoize the same way.
	ss, _ := srv.Registry().Get("memo")
	sreq := SweepRequest{Model: "memo", Response: string(ss.Responses()[0]), Factor: ss.Factors[0].Name}
	sresp1, sbody1 := postJSON(t, ts.URL+"/v1/sweep", sreq)
	if sresp1.StatusCode != http.StatusOK {
		t.Fatalf("first sweep: %d %s", sresp1.StatusCode, sbody1)
	}
	sresp2, sbody2 := postJSON(t, ts.URL+"/v1/sweep", sreq)
	if sresp2.Header.Get("X-Memo") != "hit" || string(sbody1) != string(sbody2) {
		t.Fatalf("sweep memo: hit=%q identical=%v", sresp2.Header.Get("X-Memo"), string(sbody1) == string(sbody2))
	}
}

// TestMemoInvalidatedOnHotSwap is the staleness regression: hot-swapping a
// model must atomically invalidate its memoized responses. A predict after
// the swap must reflect the new surfaces, never the old model's cache.
func TestMemoInvalidatedOnHotSwap(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	srv.Registry().Set("swap", fixture(t))

	req := PredictRequest{Model: "swap", Point: midpoint(fixture(t))}
	resp1, body1 := postJSON(t, ts.URL+"/v1/predict", req)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("pre-swap predict: %d %s", resp1.StatusCode, body1)
	}
	// Warm the memo so the swap has something to invalidate.
	if resp2, _ := postJSON(t, ts.URL+"/v1/predict", req); resp2.Header.Get("X-Memo") != "hit" {
		t.Fatal("memo never warmed before the swap")
	}

	// Build a genuinely different model: same shape, every coefficient
	// doubled, uploaded over the same name via the public PUT.
	encoded, err := fixture(t).Encode()
	if err != nil {
		t.Fatal(err)
	}
	altered, err := core.DecodeSurfaces(encoded)
	if err != nil {
		t.Fatal(err)
	}
	for id := range altered.Coef {
		for i := range altered.Coef[id] {
			altered.Coef[id][i] *= 2
		}
	}
	doc, err := altered.Encode()
	if err != nil {
		t.Fatal(err)
	}
	res, err := testAPI.Do(context.Background(), http.MethodPut, ts.URL+"/v1/models/swap", json.RawMessage(doc))
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusOK {
		t.Fatalf("hot-swap PUT: %d %s", res.Status, res.Body)
	}

	resp3, body3 := postJSON(t, ts.URL+"/v1/predict", req)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("post-swap predict: %d %s", resp3.StatusCode, body3)
	}
	if resp3.Header.Get("X-Memo") == "hit" {
		t.Fatal("post-swap predict served a stale memoized response")
	}
	if string(body3) == string(body1) {
		t.Fatal("post-swap predict returned the old model's values")
	}
}

// TestHealthzReportsQueueDepth: /healthz carries live queue pressure.
func TestHealthzReportsQueueDepth(t *testing.T) {
	release := make(chan struct{})
	quit := make(chan struct{})
	defer close(quit)

	srv, ts := newTestServer(t, Config{Problem: blockingProblem(release, quit), QueueCap: 2})
	first, err := srv.Jobs().Submit(context.Background(), BuildRequest{Model: "h", Horizon: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, srv.Jobs(), first.ID, JobRunning)
	for i := 0; i < 2; i++ {
		if _, err := srv.Jobs().Submit(context.Background(), BuildRequest{Model: "h", Horizon: 1}); err != nil {
			t.Fatal(err)
		}
	}

	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}
	var health HealthResponse
	unmarshal(t, body, &health)
	if health.QueueDepth != 2 || health.QueueCap != 2 {
		t.Fatalf("healthz queue %d/%d, want 2/2", health.QueueDepth, health.QueueCap)
	}
	close(release)
}

// TestAdmissionDisabled: Load.Disable turns the limiters off — no 429s no
// matter the concurrency — while the memo keeps working.
func TestAdmissionDisabled(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		Load: LoadConfig{
			Disable:  true,
			Validate: EndpointLimit{MaxConcurrent: 1, MaxQueue: 0, MaxWait: time.Millisecond},
		},
	})
	srv.Registry().Set("m", fixture(t))
	if len(srv.limits) != 0 {
		t.Fatalf("disabled admission still built %d limiters", len(srv.limits))
	}

	client := oneShot()
	var wg sync.WaitGroup
	errs := make([]int, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := client.Do(context.Background(), http.MethodPost, ts.URL+"/v1/validate",
				ValidateRequest{Model: "m", N: 1, Seed: int64(i)})
			if err != nil {
				t.Errorf("validate %d: %v", i, err)
				return
			}
			errs[i] = res.Status
		}(i)
	}
	wg.Wait()
	for i, status := range errs {
		if status != http.StatusOK {
			t.Fatalf("validate %d: status %d with admission disabled", i, status)
		}
	}
}
