package serve

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

func benchPoints(n int) [][]float64 {
	rng := rand.New(rand.NewSource(7))
	pts := make([][]float64, n)
	for i := range pts {
		x := make([]float64, 4)
		for j := range x {
			x[j] = rng.Float64()*2 - 1
		}
		pts[i] = x
	}
	return pts
}

// BenchmarkPredictBatch is the serving hot path: one basis construction
// and one scratch row amortized over the whole batch.
func BenchmarkPredictBatch(b *testing.B) {
	ss := fixture(b)
	pts := benchPoints(256)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ss.PredictBatch(core.RespPackets, pts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictLoop is the naive per-point path PredictBatch replaces:
// SavedSurfaces.Predict rebuilds the polynomial basis and allocates a
// fresh row on every call.
func BenchmarkPredictLoop(b *testing.B) {
	ss := fixture(b)
	pts := benchPoints(256)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, x := range pts {
			if _, err := ss.Predict(core.RespPackets, x); err != nil {
				b.Fatal(err)
			}
		}
	}
}
