package serve

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/opt"
	"repro/internal/sim"
)

func (s *Server) handleModelsList(w http.ResponseWriter, r *http.Request) {
	out := ModelsResponse{Models: []ModelSummary{}}
	for _, name := range s.registry.Names() {
		if ss, ok := s.registry.Get(name); ok {
			out.Models = append(out.Models, summarize(name, ss))
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleModelGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	ss, ok := s.model(w, name)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, detail(name, ss))
}

// handleModelPut uploads a saved-surfaces document and atomically swaps it
// into the registry — hot-reload of a model without restarting the daemon.
func (s *Server) handleModelPut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if name == "" {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, "missing model name")
		return
	}
	body, err := readAll(w, r, s.maxBody)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, "reading body: %v", err)
		return
	}
	ss, err := core.DecodeSurfaces(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, "%v", err)
		return
	}
	_, existed := s.registry.Get(name)
	s.registry.Set(name, ss)
	status := http.StatusCreated
	if existed {
		status = http.StatusOK
	}
	writeJSON(w, status, detail(name, ss))
}

func (s *Server) handleModelDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.registry.Delete(name) {
		writeError(w, http.StatusNotFound, codeNotFound, "unknown model %q", name)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handlePredict is the serving hot path: batch evaluation of any subset of
// responses at any number of points, natural or coded units. One basis
// construction and one scratch row per response cover the whole batch
// (core.SavedSurfaces.PredictBatch). Responses are memoized per
// (model-version, body) fingerprint: predictions are pure functions of the
// surfaces, so an identical question to an unchanged model replays the
// stored bytes, and a hot-swap invalidates by changing the ETag.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req PredictRequest
	body, ok := s.decodeBody(w, r, &req)
	if !ok {
		return
	}
	ss, etag, ok := s.taggedModel(w, req.Model)
	if !ok {
		return
	}
	key := memoKey("predict", etag, body)
	if s.memoServe(w, "predict", key) {
		return
	}
	cw := newCaptureWriter(w)
	s.predictCore(cw, req, ss)
	s.memoStore(key, cw)
}

func (s *Server) predictCore(w http.ResponseWriter, req PredictRequest, ss *core.SavedSurfaces) {
	points := req.Points
	if req.Point != nil {
		points = append([][]float64{req.Point}, points...)
	}
	if len(points) == 0 {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, "need a point or points")
		return
	}
	units, natural, ok := parseUnits(w, req.Units)
	if !ok {
		return
	}
	coded := points
	if natural {
		coded = make([][]float64, len(points))
		for i, p := range points {
			c, err := ss.EncodePoint(p)
			if err != nil {
				writeError(w, http.StatusBadRequest, codeInvalidRequest, "point %d: %v", i, err)
				return
			}
			coded[i] = c
		}
	} else {
		k := len(ss.Factors)
		for i, p := range coded {
			if len(p) != k {
				writeError(w, http.StatusBadRequest, codeInvalidRequest, "point %d has %d coordinates, model wants %d", i, len(p), k)
				return
			}
		}
	}
	ids, ok := resolveResponses(w, ss, req.Responses)
	if !ok {
		return
	}
	resp := PredictResponse{Model: req.Model, Units: units, Results: make([]PointPrediction, len(points))}
	for i := range resp.Results {
		resp.Results[i] = PointPrediction{Point: points[i], Values: make(map[string]float64, len(ids))}
	}
	for _, id := range ids {
		vals, err := ss.PredictBatch(id, coded)
		if err != nil {
			writeError(w, http.StatusInternalServerError, codeInternal, "%v", err)
			return
		}
		for i, v := range vals {
			resp.Results[i].Values[string(id)] = v
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSweep samples one response curve; like predict it is pure in the
// surfaces, so responses are memoized under the model's ETag.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	body, ok := s.decodeBody(w, r, &req)
	if !ok {
		return
	}
	ss, etag, ok := s.taggedModel(w, req.Model)
	if !ok {
		return
	}
	key := memoKey("sweep", etag, body)
	if s.memoServe(w, "sweep", key) {
		return
	}
	cw := newCaptureWriter(w)
	s.sweepCore(cw, req, ss)
	s.memoStore(key, cw)
}

func (s *Server) sweepCore(w http.ResponseWriter, req SweepRequest, ss *core.SavedSurfaces) {
	id := core.ResponseID(req.Response)
	if _, ok := ss.Coef[id]; !ok {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, "model has no response %q", req.Response)
		return
	}
	fi := factorIndex(ss, req.Factor)
	if fi < 0 {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, "unknown factor %q", req.Factor)
		return
	}
	n := req.Points
	if n == 0 {
		n = 21
	}
	if n < 2 || n > 100_000 {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, "points %d outside 2..100000", n)
		return
	}
	base, err := basePoint(ss, req.At)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, "%v", err)
		return
	}
	pred, err := ss.Predictor(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, codeInternal, "%v", err)
		return
	}
	f := ss.Factors[fi]
	resp := SweepResponse{
		Model: req.Model, Response: req.Response, Factor: f.Name, Unit: f.Unit,
		X: make([]float64, n), Y: make([]float64, n),
	}
	coded := make([]float64, len(base))
	for j, v := range base {
		coded[j] = ss.Factors[j].Encode(v)
	}
	for i := 0; i < n; i++ {
		x := f.Min + float64(i)/float64(n-1)*(f.Max-f.Min)
		coded[fi] = f.Encode(x)
		resp.X[i] = x
		resp.Y[i] = pred(coded)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleOptimize runs multi-start Nelder–Mead on the fitted surface — the
// paper's "practically instant" optimization, exposed as an RPC.
func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	var req OptimizeRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	ss, ok := s.model(w, req.Model)
	if !ok {
		return
	}
	id := core.ResponseID(req.Response)
	pred, err := ss.Predictor(id)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, "model has no response %q", req.Response)
		return
	}
	starts := req.Starts
	if starts <= 0 {
		starts = 6
	}
	if starts > 1000 {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, "starts %d outside 1..1000", req.Starts)
		return
	}
	obj := opt.Objective(pred)
	if !req.Minimize {
		obj = opt.Maximize(obj)
	}
	bounds := opt.NewBounds(len(ss.Factors))
	rng := rand.New(rand.NewSource(req.Seed))
	var best *opt.Result
	evals := 0
	for i := 0; i < starts; i++ {
		res, err := opt.NelderMead(obj, bounds, bounds.Random(rng), opt.NelderMeadConfig{MaxIters: 400})
		if err != nil {
			writeError(w, http.StatusInternalServerError, codeInternal, "%v", err)
			return
		}
		evals += res.Evals
		if best == nil || res.F < best.F {
			best = res
		}
	}
	natural := make([]float64, len(best.X))
	for i, f := range ss.Factors {
		natural[i] = f.Decode(best.X[i])
	}
	writeJSON(w, http.StatusOK, OptimizeResponse{
		Model: req.Model, Response: req.Response, Minimize: req.Minimize,
		Natural: natural, Coded: best.X, Predicted: pred(best.X), Evals: evals,
	})
}

// handleValidate runs confirming simulations — the flow's "one check run"
// step, batched. It is the only synchronous endpoint that touches the
// simulator, so n is kept small and the client's disconnect aborts it.
func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request) {
	var req ValidateRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	ss, ok := s.model(w, req.Model)
	if !ok {
		return
	}
	n := req.N
	if n == 0 {
		n = 10
	}
	if n < 1 || n > 1000 {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, "n %d outside 1..1000", req.N)
		return
	}
	// Explicit problem spec (excite/horizon_s); Excite wins over the
	// legacy amp, omitted fields keep the implicit defaults.
	if req.Excite < 0 || req.Horizon < 0 {
		writeError(w, http.StatusBadRequest, codeInvalidRequest,
			"excite %g and horizon_s %g must be non-negative", req.Excite, req.Horizon)
		return
	}
	amp := req.Excite
	if amp == 0 {
		amp = req.Amp
		if amp > 0 && !s.deprecateAmp(w, r, "validate") {
			return
		}
	}
	if amp <= 0 {
		amp = 0.6
	}
	horizon := req.Horizon
	if horizon == 0 {
		horizon = ss.Horizon
	}
	engine, err := normalizeEngine(req.Engine)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadField, "%v", err)
		return
	}
	p := s.problem(amp, horizon)
	switch engine {
	case EngineBatch:
		p.EngineName = core.EngineBatch
	case EngineReference:
		p.Engine = sim.RunReference
		p.EngineName = core.EngineReference
	}
	if len(p.Factors) != len(ss.Factors) {
		writeError(w, http.StatusConflict, codeConflict,
			"model has %d factors but the server problem has %d — validate applies only to models of the served problem",
			len(ss.Factors), len(p.Factors))
		return
	}
	// Validate only responses both the model and the simulator produce.
	var ids []core.ResponseID
	for _, id := range ss.Responses() {
		for _, pid := range p.Responses {
			if id == pid {
				ids = append(ids, id)
				break
			}
		}
	}
	if len(ids) == 0 {
		writeError(w, http.StatusConflict, codeConflict, "model and server problem share no responses")
		return
	}
	rng := rand.New(rand.NewSource(req.Seed))
	points := make([][]float64, n)
	for i := range points {
		x := make([]float64, len(ss.Factors))
		for j := range x {
			x[j] = rng.Float64()*2 - 1
		}
		points[i] = x
	}
	// The batch engine pre-simulates the fresh points in lockstep lanes;
	// the per-point loop below then drains from the warmed results, with
	// unchanged semantics for any point the prepass could not settle.
	if engine == EngineBatch {
		p, _ = p.PrewarmBatch(r.Context(), points, 0)
	}
	sums := make(map[core.ResponseID]float64, len(ids))
	maxs := make(map[core.ResponseID]float64, len(ids))
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := r.Context().Err(); err != nil {
			writeError(w, statusClientClosedRequest, codeClientClosed, "validation aborted: %v", err)
			return
		}
		x := points[i]
		sim, err := p.ResponsesAtContext(r.Context(), x)
		if err != nil {
			var nerr *core.NumericError
			if errors.As(err, &nerr) {
				writeError(w, http.StatusInternalServerError, codeNumericInvalid, "simulation %d failed: %v", i, err)
				return
			}
			writeError(w, http.StatusInternalServerError, codeInternal, "simulation %d failed: %v", i, err)
			return
		}
		for _, id := range ids {
			pred, err := ss.Predict(id, x)
			if err != nil {
				writeError(w, http.StatusInternalServerError, codeInternal, "%v", err)
				return
			}
			e := math.Abs(pred - sim[id])
			sums[id] += e
			if e > maxs[id] {
				maxs[id] = e
			}
		}
	}
	resp := ValidateResponse{Model: req.Model, N: n, Engine: engine, SimMillis: float64(time.Since(start).Microseconds()) / 1e3}
	for _, id := range ids {
		resp.Rows = append(resp.Rows, ValidateRow{
			Response:   string(id),
			MeanAbsErr: sums[id] / float64(n),
			MaxAbsErr:  maxs[id],
			PRESS:      ss.PRESS[id],
			R2Pred:     ss.R2Pred[id],
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// statusClientClosedRequest is nginx's 499: the client went away mid-work.
const statusClientClosedRequest = 499

func (s *Server) handleBuild(w http.ResponseWriter, r *http.Request) {
	var req BuildRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if req.Amp > 0 && req.Excite == 0 && !s.deprecateAmp(w, r, "build") {
		return
	}
	job, err := s.jobs.Submit(r.Context(), req)
	if err != nil {
		switch {
		case errors.Is(err, errBadEngine), errors.Is(err, errBadStrategy):
			writeError(w, http.StatusBadRequest, codeBadField, "%v", err)
		case errors.Is(err, ErrQueueFull):
			// A full queue is back-pressure, not a permanent failure: tell
			// the client when to come back, same contract as a 429 shed.
			w.Header().Set("Retry-After", retryAfterSeconds(s.loadCfg.RetryAfter))
			writeError(w, http.StatusServiceUnavailable, codeQueueFull, "%v", err)
		case errors.Is(err, ErrShuttingDown):
			writeError(w, http.StatusServiceUnavailable, codeShuttingDown, "%v", err)
		case errors.Is(err, cluster.ErrNoWorkers):
			// The fleet exists but nobody has joined it; retrying after
			// workers register will succeed, so this is state, not shape.
			writeError(w, http.StatusConflict, codeConflict, "%v", err)
		default:
			writeError(w, http.StatusBadRequest, codeInvalidRequest, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, BuildAccepted{Job: job})
}

// handleJobsList pages through job history: ?state= filters by lifecycle
// state, ?after=<id> resumes past a cursor, ?limit= bounds the page.
func (s *Server) handleJobsList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	state := JobState(q.Get("state"))
	switch state {
	case "", JobQueued, JobRunning, JobDone, JobFailed, JobCanceled:
	default:
		writeError(w, http.StatusBadRequest, codeInvalidRequest,
			"unknown state %q (want queued|running|done|failed|canceled)", string(state))
		return
	}
	limit := 0
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, codeInvalidRequest, "limit %q must be a positive integer", raw)
			return
		}
		limit = n
	}
	after := q.Get("after")
	if after != "" {
		if _, ok := s.jobs.Get(after); !ok {
			writeError(w, http.StatusBadRequest, codeInvalidRequest, "unknown after cursor %q", after)
			return
		}
	}
	jobs, more := s.jobs.ListPage(state, after, limit)
	resp := JobsResponse{Jobs: jobs}
	if more && len(jobs) > 0 {
		resp.NextAfter = jobs[len(jobs)-1].ID
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.jobs.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, codeNotFound, "unknown job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// parseUnits maps the request's units field to (canonical name, natural?).
func parseUnits(w http.ResponseWriter, units string) (string, bool, bool) {
	switch units {
	case "", "natural":
		return "natural", true, true
	case "coded":
		return "coded", false, true
	}
	writeError(w, http.StatusBadRequest, codeInvalidRequest, "units %q must be \"natural\" or \"coded\"", units)
	return "", false, false
}

// resolveResponses validates the requested response names (empty = all).
func resolveResponses(w http.ResponseWriter, ss *core.SavedSurfaces, names []string) ([]core.ResponseID, bool) {
	if len(names) == 0 {
		return ss.Responses(), true
	}
	ids := make([]core.ResponseID, len(names))
	for i, name := range names {
		id := core.ResponseID(name)
		if _, ok := ss.Coef[id]; !ok {
			writeError(w, http.StatusBadRequest, codeInvalidRequest, "model has no response %q", name)
			return nil, false
		}
		ids[i] = id
	}
	return ids, true
}

func factorIndex(ss *core.SavedSurfaces, name string) int {
	for i, f := range ss.Factors {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// basePoint builds a natural-units point from the "at" map, defaulting
// every unset factor to its range midpoint.
func basePoint(ss *core.SavedSurfaces, at map[string]float64) ([]float64, error) {
	nat := make([]float64, len(ss.Factors))
	for i, f := range ss.Factors {
		nat[i] = (f.Min + f.Max) / 2
	}
	for name, v := range at {
		i := factorIndex(ss, name)
		if i < 0 {
			return nil, fmt.Errorf("unknown factor %q", name)
		}
		nat[i] = v
	}
	return nat, nil
}
