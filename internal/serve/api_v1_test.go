package serve

import (
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// submitBuild posts one build request and returns the accepted job view.
func submitBuild(t *testing.T, url, model string) JobView {
	t.Helper()
	resp, body := postJSON(t, url+"/v1/build", BuildRequest{Model: model, Design: "ccf", Horizon: 1})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("build %s: %d %s", model, resp.StatusCode, body)
	}
	var accepted struct {
		Job JobView `json:"job"`
	}
	unmarshal(t, body, &accepted)
	return accepted.Job
}

// TestJobsPagination drives GET /v1/jobs with state filters and the
// limit/after cursor: pages must tile the full list in submission order,
// next_after must appear exactly when more results remain, and an empty
// page must serialize as an empty array, never null.
func TestJobsPagination(t *testing.T) {
	release := make(chan struct{})
	quit := make(chan struct{})
	close(release) // every build runs to completion immediately
	srv, ts := newTestServer(t, Config{Problem: blockingProblem(release, quit), QueueCap: 8})
	t.Cleanup(func() { close(quit) })

	var ids []string
	for i := 0; i < 5; i++ {
		j := submitBuild(t, ts.URL, "pg-"+strconv.Itoa(i))
		waitState(t, srv.Jobs(), j.ID, JobDone)
		ids = append(ids, j.ID)
	}

	var jr JobsResponse

	// Unfiltered: all five in submission order, no cursor.
	_, body := get(t, ts.URL+"/v1/jobs")
	unmarshal(t, body, &jr)
	if len(jr.Jobs) != 5 || jr.NextAfter != "" {
		t.Fatalf("full list: %s", body)
	}
	for i, j := range jr.Jobs {
		if j.ID != ids[i] {
			t.Fatalf("order broken at %d: got %s, want %s", i, j.ID, ids[i])
		}
	}

	// Cursor walk with limit=2: pages 2+2+1, next_after on all but the last.
	var walked []string
	after := ""
	for page := 0; ; page++ {
		url := ts.URL + "/v1/jobs?limit=2"
		if after != "" {
			url += "&after=" + after
		}
		_, body := get(t, url)
		jr = JobsResponse{} // absent next_after must not inherit the previous page's
		unmarshal(t, body, &jr)
		for _, j := range jr.Jobs {
			walked = append(walked, j.ID)
		}
		if jr.NextAfter == "" {
			if len(jr.Jobs) != 1 || page != 2 {
				t.Fatalf("page %d: %s", page, body)
			}
			break
		}
		if len(jr.Jobs) != 2 || jr.NextAfter != jr.Jobs[1].ID {
			t.Fatalf("page %d cursor: %s", page, body)
		}
		after = jr.NextAfter
	}
	if len(walked) != len(ids) {
		t.Fatalf("cursor walk visited %d jobs, want %d", len(walked), len(ids))
	}
	for i := range ids {
		if walked[i] != ids[i] {
			t.Fatalf("cursor walk out of order at %d", i)
		}
	}

	// State filter: everything is done, nothing is failed — and the empty
	// result must still be a JSON array.
	_, body = get(t, ts.URL+"/v1/jobs?state=done")
	unmarshal(t, body, &jr)
	if len(jr.Jobs) != 5 {
		t.Fatalf("state=done: %s", body)
	}
	_, body = get(t, ts.URL+"/v1/jobs?state=failed")
	if !strings.Contains(strings.ReplaceAll(string(body), " ", ""), `"jobs":[]`) {
		t.Fatalf("empty page must serialize as an array: %s", body)
	}

	// Filter composes with the cursor: done jobs strictly after the second.
	_, body = get(t, ts.URL+"/v1/jobs?state=done&after="+ids[1])
	unmarshal(t, body, &jr)
	if len(jr.Jobs) != 3 || jr.Jobs[0].ID != ids[2] {
		t.Fatalf("state+after: %s", body)
	}
}

// TestValidateExplicitSpec covers the explicit problem spec on
// /v1/validate: excite and horizon_s select the simulation, the legacy
// amp field still works, and omitting both keeps the model's own horizon.
func TestValidateExplicitSpec(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	srv.Registry().Set("m", fixture(t))

	// Explicit spec: the model was built at amp 0.6, horizon 2 — ask for
	// the same excitation over a shorter horizon.
	resp, body := postJSON(t, ts.URL+"/v1/validate", ValidateRequest{
		Model: "m", N: 2, Seed: 7, Excite: 0.6, Horizon: 1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explicit validate: %d %s", resp.StatusCode, body)
	}
	var vr ValidateResponse
	unmarshal(t, body, &vr)
	if vr.N != 2 || len(vr.Rows) == 0 {
		t.Fatalf("explicit validate report: %s", body)
	}

	// Legacy amp spelling still accepted.
	resp, body = postJSON(t, ts.URL+"/v1/validate", ValidateRequest{
		Model: "m", N: 2, Seed: 7, Amp: 0.6,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy validate: %d %s", resp.StatusCode, body)
	}

	// excite wins when both are present — a bogus amp must not break it.
	resp, body = postJSON(t, ts.URL+"/v1/validate", ValidateRequest{
		Model: "m", N: 2, Seed: 7, Amp: 0.1, Excite: 0.6, Horizon: 1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("excite-over-amp validate: %d %s", resp.StatusCode, body)
	}
}

// TestMetricsReportCacheHits is the acceptance check for the simulation
// cache over HTTP: a repeated validation workload must show up as nonzero
// ehdoed_simcache_hits_total in GET /metrics.
func TestMetricsReportCacheHits(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	srv.Registry().Set("m", fixture(t))

	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/validate", ValidateRequest{
			Model: "m", N: 2, Seed: 11, Horizon: 1,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("validate %d: %d %s", i, resp.StatusCode, body)
		}
	}

	_, body := get(t, ts.URL+"/metrics")
	metric := func(name string) float64 {
		t.Helper()
		for _, line := range strings.Split(string(body), "\n") {
			if v, ok := strings.CutPrefix(line, name+" "); ok {
				f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
				if err != nil {
					t.Fatalf("metric %s: %v", name, err)
				}
				return f
			}
		}
		t.Fatalf("metric %s missing:\n%s", name, body)
		return 0
	}
	if hits := metric("ehdoed_simcache_hits_total"); hits < 2 {
		t.Fatalf("repeat validation produced %v cache hits, want ≥ 2", hits)
	}
	if misses := metric("ehdoed_simcache_misses_total"); misses < 2 {
		t.Fatalf("first validation produced %v misses, want ≥ 2", misses)
	}
}

// TestQueueFullEnvelope checks the 503 envelope when the build queue is
// saturated: machine-readable code queue_full over HTTP.
func TestQueueFullEnvelope(t *testing.T) {
	release := make(chan struct{})
	quit := make(chan struct{})
	srv, ts := newTestServer(t, Config{Problem: blockingProblem(release, quit), QueueCap: 1})
	t.Cleanup(func() { close(release) }) // let the stalled builds drain before Shutdown

	j := submitBuild(t, ts.URL, "qf-0") // occupies the runner
	waitState(t, srv.Jobs(), j.ID, JobRunning)
	submitBuild(t, ts.URL, "qf-1") // fills the queue

	resp, body := postJSON(t, ts.URL+"/v1/build", BuildRequest{Model: "qf-2", Design: "ccf", Horizon: 1})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated build: %d %s", resp.StatusCode, body)
	}
	var eb errorBody
	unmarshal(t, body, &eb)
	if eb.Code != codeQueueFull || eb.Error == "" {
		t.Fatalf("queue-full envelope: %s", body)
	}
}
