package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// lockedBuffer is a goroutine-safe log sink: the handler goroutine and the
// build worker both write to it.
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) Lines() []map[string]any {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []map[string]any
	for _, line := range strings.Split(l.b.String(), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err == nil {
			out = append(out, m)
		}
	}
	return out
}

// msgsWithTrace returns the distinct msg values of every log line carrying
// the given trace ID.
func msgsWithTrace(lines []map[string]any, trace string) map[string]bool {
	got := map[string]bool{}
	for _, m := range lines {
		if m["trace"] == trace {
			got[m["msg"].(string)] = true
		}
	}
	return got
}

// TestTraceThreadsBuildEndToEnd is the tentpole acceptance test: one
// client-chosen request ID must appear in (1) the HTTP access-log line,
// (2) the build job's transition lines and (3) the simulation-run and
// cache lines of the same /v1/build call.
func TestTraceThreadsBuildEndToEnd(t *testing.T) {
	var buf lockedBuffer
	logger, err := obs.NewLogger(&buf, "json", "debug")
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	quit := make(chan struct{})
	defer close(quit)
	close(release) // engine answers instantly

	// Name the test engine so its runs are cacheable: the same trace must
	// also cover the simcache decision lines.
	problem := func(amp, horizon float64) *core.Problem {
		p := blockingProblem(release, quit)(amp, horizon)
		p.EngineName = "e2e-blocking"
		return p
	}
	srv, ts := newTestServer(t, Config{
		Problem: problem,
		Logger:  logger,
	})

	const trace = "req-e2e-trace-test"
	body, _ := json.Marshal(BuildRequest{Model: "m", Design: "ccf", Horizon: 1})
	req, err := http.NewRequest("POST", ts.URL+"/v1/build", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", trace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("build status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != trace {
		t.Fatalf("X-Request-ID echoed %q, want %q", got, trace)
	}
	var acc BuildAccepted
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	if acc.Job.TraceID != trace {
		t.Fatalf("job snapshot trace_id %q, want %q", acc.Job.TraceID, trace)
	}
	waitState(t, srv.Jobs(), acc.Job.ID, JobDone)

	msgs := msgsWithTrace(buf.Lines(), trace)
	for _, want := range []string{
		"request",            // access log (instrument middleware)
		"job enqueued",       // job transitions (JobManager)
		"job started",        //
		"job done",           //
		"design run started", // core.RunDesignContext
		"sim run",            // per-simulation debug line
		"simcache miss",      // cache decision under the same trace
	} {
		if !msgs[want] {
			t.Errorf("no %q log line under trace %q; got msgs %v", want, trace, msgs)
		}
	}
}

// TestRequestIDMintedWhenAbsent: without a client X-Request-ID the server
// mints one, echoes it, and logs the access line under it.
func TestRequestIDMintedWhenAbsent(t *testing.T) {
	var buf lockedBuffer
	logger, err := obs.NewLogger(&buf, "json", "debug")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Logger: logger})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get("X-Request-ID")
	if !strings.HasPrefix(id, "req-") {
		t.Fatalf("minted request ID %q lacks req- prefix", id)
	}
	if msgs := msgsWithTrace(buf.Lines(), id); !msgs["request"] {
		t.Fatalf("no access-log line under minted ID %q", id)
	}
}

// TestMetricsRenderedByRegistry: /metrics is one registry render — all
// families present and globally name-sorted, which only holds when a
// single renderer produces the page.
func TestMetricsRenderedByRegistry(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	text := string(body)
	names := []string{
		"ehdoed_jobs_total",
		"ehdoed_request_errors_total",
		"ehdoed_request_latency_seconds",
		"ehdoed_requests_total",
		"ehdoed_simcache_entries",
		"ehdoed_simcache_hits_total",
		"ehdoed_uptime_seconds",
	}
	last := -1
	for _, n := range names {
		i := strings.Index(text, "# TYPE "+n+" ")
		if i < 0 {
			t.Fatalf("metrics page missing family %s:\n%s", n, text)
		}
		if i < last {
			t.Fatalf("family %s out of sorted order — page not rendered by one registry", n)
		}
		last = i
	}
}
