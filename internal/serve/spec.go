package serve

import (
	"net/http"
	"reflect"
	"strings"

	"repro/internal/cluster"
)

// endpointSpec is one row of the v1 API surface. The same table drives the
// mux registration (routes) and the machine-readable GET /v1/spec answer,
// so the published contract cannot drift from what is actually served:
// request/response schemas are reflected from the typed structs the
// handlers decode into and encode from.
type endpointSpec struct {
	Method   string
	Path     string
	Label    string
	Summary  string
	Request  any // zero value of the request struct; nil = no JSON body
	Response any // zero value of the response struct; nil = non-JSON or empty

	handler http.HandlerFunc
}

func (s *Server) endpoints() []endpointSpec {
	return []endpointSpec{
		{"GET", "/healthz", "healthz", "Liveness and drain state.",
			nil, HealthResponse{}, s.handleHealthz},
		{"GET", "/metrics", "metrics", "Prometheus text exposition of all server metrics.",
			nil, nil, s.handleMetrics},
		{"GET", "/v1/spec", "spec", "This machine-readable API specification.",
			nil, SpecResponse{}, s.handleSpec},
		{"GET", "/v1/models", "models_list", "List registered surrogate models.",
			nil, ModelsResponse{}, s.handleModelsList},
		{"GET", "/v1/models/{name}", "model_get", "Fetch one model with factors and fit diagnostics.",
			nil, ModelDetail{}, s.handleModelGet},
		{"PUT", "/v1/models/{name}", "model_put", "Upload a saved-surfaces document (hot-swap; POST accepted as alias).",
			nil, ModelDetail{}, s.handleModelPut},
		{"DELETE", "/v1/models/{name}", "model_delete", "Remove a model from the registry.",
			nil, nil, s.handleModelDelete},
		{"POST", "/v1/predict", "predict", "Evaluate responses at one point or a batch of points.",
			PredictRequest{}, PredictResponse{}, s.handlePredict},
		{"POST", "/v1/sweep", "sweep", "Sample one response over one factor's full range.",
			SweepRequest{}, SweepResponse{}, s.handleSweep},
		{"POST", "/v1/optimize", "optimize", "Find the surface optimum of one response.",
			OptimizeRequest{}, OptimizeResponse{}, s.handleOptimize},
		{"POST", "/v1/validate", "validate", "Run confirming simulations against the surface predictions.",
			ValidateRequest{}, ValidateResponse{}, s.handleValidate},
		{"POST", "/v1/build", "build", "Enqueue an asynchronous DoE build.",
			BuildRequest{}, BuildAccepted{}, s.handleBuild},
		{"GET", "/v1/jobs", "jobs_list", "Page through build jobs (?state=, ?after=, ?limit=).",
			nil, JobsResponse{}, s.handleJobsList},
		{"GET", "/v1/jobs/{id}", "job_get", "Fetch one build job.",
			nil, JobView{}, s.handleJobGet},
		{"POST", cluster.PathRegister, "cluster_register", "Worker fleet: register (or re-register) a worker; issues its epoch.",
			cluster.RegisterRequest{}, cluster.RegisterResponse{}, s.handleClusterRegister},
		{"POST", cluster.PathHeartbeat, "cluster_heartbeat", "Worker fleet: refresh a worker's liveness.",
			cluster.HeartbeatRequest{}, cluster.HeartbeatResponse{}, s.handleClusterHeartbeat},
		{"POST", cluster.PathLease, "cluster_lease", "Worker fleet: pull the next batch of design points.",
			cluster.LeaseRequest{}, cluster.LeaseResponse{}, s.handleClusterLease},
		{"POST", cluster.PathResults, "cluster_results", "Worker fleet: report a finished lease's results.",
			cluster.ResultsRequest{}, cluster.ResultsResponse{}, s.handleClusterResults},
		{"POST", cluster.PathDeregister, "cluster_deregister", "Worker fleet: deregister cleanly.",
			cluster.DeregisterRequest{}, cluster.DeregisterResponse{}, s.handleClusterDeregister},
		{"GET", cluster.PathWorkers, "cluster_workers", "Worker fleet health: per-worker state, leases and counters.",
			nil, cluster.WorkersResponse{}, s.handleClusterWorkers},
		{"GET", cluster.PathCache, "cluster_cache", "Sharded cache tier: shard map, per-worker and fleet cache counters.",
			nil, cluster.CacheStateResponse{}, s.handleClusterCache},
	}
}

// FieldSpec describes one JSON field of a request or response schema.
// Deprecated fields still work but are scheduled for removal; the spec is
// generated from the structs' json/spec tags, never hand-maintained.
type FieldSpec struct {
	Name       string      `json:"name"`
	Type       string      `json:"type"`
	Optional   bool        `json:"optional,omitempty"`
	Deprecated bool        `json:"deprecated,omitempty"`
	Fields     []FieldSpec `json:"fields,omitempty"` // populated when Type is object
}

// SchemaView is the JSON schema of one message body.
type SchemaView struct {
	Type   string      `json:"type"`
	Fields []FieldSpec `json:"fields,omitempty"`
}

// EndpointView is one endpoint in the published specification.
type EndpointView struct {
	Method   string      `json:"method"`
	Path     string      `json:"path"`
	Summary  string      `json:"summary"`
	Request  *SchemaView `json:"request,omitempty"`
	Response *SchemaView `json:"response,omitempty"`
}

// ErrorCodeView documents one machine-readable error code.
type ErrorCodeView struct {
	Code        string `json:"code"`
	Description string `json:"description"`
}

// SpecResponse is the GET /v1/spec body: every endpoint with its schemas,
// plus the error envelope and its code vocabulary.
type SpecResponse struct {
	Version       string          `json:"version"`
	Endpoints     []EndpointView  `json:"endpoints"`
	ErrorEnvelope *SchemaView     `json:"error_envelope"`
	ErrorCodes    []ErrorCodeView `json:"error_codes"`
}

var errorCodeDocs = []ErrorCodeView{
	{codeInvalidRequest, "malformed body or invalid field values"},
	{codeBadField, "request body carries a field the endpoint does not define, or a retired field under strict mode"},
	{codeProtoMismatch, "cluster protocol request speaks a different proto_version than this server"},
	{codeNotFound, "unknown model or job"},
	{codeConflict, "request is inconsistent with server state"},
	{codeQueueFull, "build queue at capacity; retry after the Retry-After header"},
	{codeOverloaded, "admission control shed the request; retry after the Retry-After header"},
	{codeShuttingDown, "server is draining; no new work accepted"},
	{codeClientClosed, "client disconnected mid-work"},
	{codeNumericInvalid, "simulation produced NaN/Inf responses"},
	{codeInternal, "unexpected server-side failure"},
}

func (s *Server) handleSpec(w http.ResponseWriter, r *http.Request) {
	resp := SpecResponse{
		Version:       "v1",
		ErrorEnvelope: schemaOf(reflect.TypeOf(errorBody{})),
		ErrorCodes:    errorCodeDocs,
	}
	for _, ep := range s.endpoints() {
		view := EndpointView{Method: ep.Method, Path: ep.Path, Summary: ep.Summary}
		if ep.Request != nil {
			view.Request = schemaOf(reflect.TypeOf(ep.Request))
		}
		if ep.Response != nil {
			view.Response = schemaOf(reflect.TypeOf(ep.Response))
		}
		resp.Endpoints = append(resp.Endpoints, view)
	}
	writeJSON(w, http.StatusOK, resp)
}

// schemaOf reflects a Go type into its JSON wire schema.
func schemaOf(t reflect.Type) *SchemaView {
	name, fields := typeSpec(t, 0)
	return &SchemaView{Type: name, Fields: fields}
}

// typeSpec maps a Go type to a JSON type name, recursing into structs
// (depth-limited: the v1 shapes are shallow, the limit only guards against
// a future accidental cycle).
func typeSpec(t reflect.Type, depth int) (string, []FieldSpec) {
	if depth > 6 {
		return "object", nil
	}
	switch t.Kind() {
	case reflect.Pointer:
		return typeSpec(t.Elem(), depth)
	case reflect.Bool:
		return "boolean", nil
	case reflect.String:
		return "string", nil
	case reflect.Float32, reflect.Float64:
		return "number", nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return "integer", nil
	case reflect.Slice, reflect.Array:
		elem, _ := typeSpec(t.Elem(), depth+1)
		return "array<" + elem + ">", nil
	case reflect.Map:
		key, _ := typeSpec(t.Key(), depth+1)
		val, _ := typeSpec(t.Elem(), depth+1)
		return "map<" + key + "," + val + ">", nil
	case reflect.Struct:
		return "object", structFields(t, depth)
	default:
		return "object", nil
	}
}

// structFields walks the exported fields in declaration order, honouring
// json tags (name, "-" skips, inlined embeds) and the spec:"deprecated"
// marker.
func structFields(t reflect.Type, depth int) []FieldSpec {
	var out []FieldSpec
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		tag := f.Tag.Get("json")
		name, opts, _ := strings.Cut(tag, ",")
		if name == "-" {
			continue
		}
		if f.Anonymous && name == "" {
			// Embedded struct: fields are inlined on the wire.
			_, inner := typeSpec(f.Type, depth)
			out = append(out, inner...)
			continue
		}
		if name == "" {
			name = f.Name
		}
		typ, fields := typeSpec(f.Type, depth+1)
		out = append(out, FieldSpec{
			Name:       name,
			Type:       typ,
			Optional:   strings.Contains(","+opts+",", ",omitempty,"),
			Deprecated: f.Tag.Get("spec") == "deprecated",
			Fields:     fields,
		})
	}
	return out
}
