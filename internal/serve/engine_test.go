package serve

import (
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// buildAndWait enqueues a build and polls it to a terminal state.
func buildAndWait(t *testing.T, url string, req BuildRequest) JobView {
	t.Helper()
	resp, body := postJSON(t, url+"/v1/build", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("build: %d %s", resp.StatusCode, body)
	}
	var accepted struct {
		Job JobView `json:"job"`
	}
	unmarshal(t, body, &accepted)
	deadline := time.Now().Add(60 * time.Second)
	var job JobView
	for {
		resp, body = get(t, url+"/v1/jobs/"+accepted.Job.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job poll: %d %s", resp.StatusCode, body)
		}
		unmarshal(t, body, &job)
		if job.State != string(JobQueued) && job.State != string(JobRunning) {
			return job
		}
		if time.Now().After(deadline) {
			t.Fatalf("build did not finish: %+v", job)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBuildEngineBatch drives a batch-engine build end to end: the job
// reports the engine it ran plus the scheduler's stats, a following fast
// build is answered entirely from the shared cache (batch results alias
// the fast engine's entries), a repeat batch build short-circuits, and the
// batch counters land on /metrics.
func TestBuildEngineBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{QueueCap: 4})

	batch := buildAndWait(t, ts.URL, BuildRequest{
		Model: "mb", Design: "ccf", Horizon: 2, Seed: 1, Engine: EngineBatch,
	})
	if batch.State != string(JobDone) {
		t.Fatalf("batch build failed: %+v", batch)
	}
	if batch.Engine != EngineBatch {
		t.Fatalf("job engine = %q, want %q", batch.Engine, EngineBatch)
	}
	bs := batch.Batch
	if bs == nil {
		t.Fatalf("batch job carries no batch stats: %+v", batch)
	}
	if bs.Points == 0 || bs.Lanes == 0 || bs.Chunks == 0 {
		t.Fatalf("batch prepass did not run: %+v", bs)
	}
	if bs.Peeled != 0 {
		t.Fatalf("fresh cache peeled %d points", bs.Peeled)
	}

	// Same design under the fast engine: every simulation is a cache hit on
	// the batch build's entries, and the fitted surfaces are identical.
	fast := buildAndWait(t, ts.URL, BuildRequest{
		Model: "mf", Design: "ccf", Horizon: 2, Seed: 1,
	})
	if fast.State != string(JobDone) {
		t.Fatalf("fast build failed: %+v", fast)
	}
	if fast.Engine != EngineFast {
		t.Fatalf("default engine = %q, want %q", fast.Engine, EngineFast)
	}
	if fast.Batch != nil {
		t.Fatalf("fast build must not carry batch stats: %+v", fast.Batch)
	}
	if len(fast.R2) != len(batch.R2) {
		t.Fatalf("R2 sets differ: %v vs %v", fast.R2, batch.R2)
	}
	for id, r2 := range batch.R2 {
		if fast.R2[id] != r2 {
			t.Fatalf("R2[%s]: fast %v != batch %v — cache aliasing broken", id, fast.R2[id], r2)
		}
	}

	// A repeat batch build finds everything cached: the prepass peels all
	// unique points and launches no chunks.
	again := buildAndWait(t, ts.URL, BuildRequest{
		Model: "mb2", Design: "ccf", Horizon: 2, Seed: 1, Engine: EngineBatch,
	})
	if again.State != string(JobDone) {
		t.Fatalf("repeat batch build failed: %+v", again)
	}
	if again.Batch == nil || again.Batch.Peeled == 0 || again.Batch.Chunks != 0 || again.Batch.Lanes != 0 {
		t.Fatalf("all-cached batch must short-circuit, got %+v", again.Batch)
	}

	// The lane counter accumulated the first build's lanes.
	_, body := get(t, ts.URL+"/metrics")
	m := regexp.MustCompile(`(?m)^ehdoed_sim_batch_lanes_total (\d+)$`).FindStringSubmatch(string(body))
	if m == nil {
		t.Fatalf("ehdoed_sim_batch_lanes_total missing from /metrics:\n%s", body)
	}
	if n, _ := strconv.Atoi(m[1]); n != bs.Lanes {
		t.Fatalf("ehdoed_sim_batch_lanes_total = %s, want %d", m[1], bs.Lanes)
	}
	if !strings.Contains(string(body), "ehdoed_sim_batch_rebuild_amortized_total") {
		t.Fatalf("ehdoed_sim_batch_rebuild_amortized_total missing from /metrics:\n%s", body)
	}
}

// TestEngineFieldValidation pins the typed engine contract: unknown values
// are rejected with code bad_field on both endpoints, and the cluster pool
// refuses non-fast engines.
func TestEngineFieldValidation(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	srv.Registry().Set("m", fixture(t))

	resp, body := postJSON(t, ts.URL+"/v1/build", BuildRequest{Model: "x", Engine: "warp"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad engine build: %d %s", resp.StatusCode, body)
	}
	var eb errorBody
	unmarshal(t, body, &eb)
	if eb.Code != codeBadField {
		t.Fatalf("bad engine build code = %q, want %q (%s)", eb.Code, codeBadField, body)
	}

	resp, body = postJSON(t, ts.URL+"/v1/validate", ValidateRequest{Model: "m", Engine: "warp"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad engine validate: %d %s", resp.StatusCode, body)
	}
	unmarshal(t, body, &eb)
	if eb.Code != codeBadField {
		t.Fatalf("bad engine validate code = %q, want %q (%s)", eb.Code, codeBadField, body)
	}

	resp, body = postJSON(t, ts.URL+"/v1/build", BuildRequest{
		Model: "x", Pool: PoolCluster, Engine: EngineBatch,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("cluster+batch build: %d %s", resp.StatusCode, body)
	}
	unmarshal(t, body, &eb)
	if eb.Code != codeInvalidRequest || !strings.Contains(eb.Error, "only runs engine") {
		t.Fatalf("cluster+batch rejection: %s", body)
	}
}

// TestValidateEngineBatch runs confirming simulations through the batch
// prepass and checks the response echoes the engine that ran.
func TestValidateEngineBatch(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	srv.Registry().Set("m", fixture(t))

	resp, body := postJSON(t, ts.URL+"/v1/validate", ValidateRequest{
		Model: "m", N: 3, Seed: 7, Horizon: 2, Engine: EngineBatch,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch validate: %d %s", resp.StatusCode, body)
	}
	var vr ValidateResponse
	unmarshal(t, body, &vr)
	if vr.Engine != EngineBatch || vr.N != 3 || len(vr.Rows) == 0 {
		t.Fatalf("batch validate report: %s", body)
	}

	// The same points under the default engine give bit-identical errors —
	// the batch lanes are the fast engine, just scheduled differently.
	resp, body = postJSON(t, ts.URL+"/v1/validate", ValidateRequest{
		Model: "m", N: 3, Seed: 7, Horizon: 2,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fast validate: %d %s", resp.StatusCode, body)
	}
	var fr ValidateResponse
	unmarshal(t, body, &fr)
	if fr.Engine != EngineFast {
		t.Fatalf("default validate engine = %q, want %q", fr.Engine, EngineFast)
	}
	for i, row := range vr.Rows {
		if fr.Rows[i] != row {
			t.Fatalf("row %d: batch %+v != fast %+v", i, row, fr.Rows[i])
		}
	}
}

// TestSpecReflectsEngine checks the published contract picked up the new
// field on both request schemas.
func TestSpecReflectsEngine(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, body := get(t, ts.URL+"/v1/spec")
	var spec SpecResponse
	unmarshal(t, body, &spec)
	for _, path := range []string{"/v1/build", "/v1/validate"} {
		found := false
		for _, ep := range spec.Endpoints {
			if ep.Path != path || ep.Request == nil {
				continue
			}
			for _, f := range ep.Request.Fields {
				if f.Name == "engine" && f.Type == "string" && f.Optional {
					found = true
				}
			}
		}
		if !found {
			t.Fatalf("spec: %s request schema lacks the engine field:\n%s", path, body)
		}
	}
}
