package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestGracefulDrain is the SIGTERM-equivalent shutdown scenario: with one
// build in flight and one queued, Shutdown must (1) flip /healthz to 503
// draining, (2) cancel the queued job immediately with a logged reason and
// (3) let the in-flight build finish within the grace period.
func TestGracefulDrain(t *testing.T) {
	var buf lockedBuffer
	logger, err := obs.NewLogger(&buf, "json", "debug")
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	quit := make(chan struct{})
	defer close(quit)

	srv, ts := newTestServer(t, Config{
		Problem:  blockingProblem(release, quit),
		QueueCap: 1,
		Logger:   logger,
	})

	// Healthy before the drain.
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"status": "ok"`) {
		t.Fatalf("pre-drain healthz: %d %s", resp.StatusCode, body)
	}

	req := BuildRequest{Model: "drain", Design: "ccf", Horizon: 1}
	j1, err := srv.Jobs().Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, srv.Jobs(), j1.ID, JobRunning)
	j2, err := srv.Jobs().Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		srv.Shutdown(30 * time.Second)
		close(done)
	}()

	// The queued job is cancelled immediately, with a logged reason.
	got := waitState(t, srv.Jobs(), j2.ID, JobCanceled)
	if got.Error != "canceled: server shutting down" {
		t.Fatalf("queued job error %q", got.Error)
	}

	// /healthz reports draining with 503 while the drain is in progress.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, body = get(t, ts.URL+"/healthz")
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never flipped to draining: %d %s", resp.StatusCode, body)
		}
		time.Sleep(2 * time.Millisecond)
	}
	var health HealthResponse
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "draining" {
		t.Fatalf("draining healthz status %q", health.Status)
	}

	// Release the engine: the in-flight build finishes inside the grace
	// period and its surfaces are registered.
	close(release)
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("shutdown did not drain the in-flight build")
	}
	if got := waitState(t, srv.Jobs(), j1.ID, JobDone); got.Runs == 0 {
		t.Fatalf("drained build lost its stats: %+v", got)
	}
	if _, ok := srv.Registry().Get("drain"); !ok {
		t.Fatal("drained build was not registered")
	}

	// The cancellation left an explanatory log line.
	var sawCancel bool
	for _, m := range buf.Lines() {
		if m["msg"] == "job canceled" && m["job"] == j2.ID {
			reason, _ := m["reason"].(string)
			if !strings.Contains(reason, "shutting down") {
				t.Fatalf("cancel log reason %q lacks shutdown cause", reason)
			}
			sawCancel = true
		}
	}
	if !sawCancel {
		t.Fatalf("no 'job canceled' log line for %s", j2.ID)
	}

	// New submissions are refused while draining.
	if _, err := srv.Jobs().Submit(context.Background(), req); err != ErrShuttingDown {
		t.Fatalf("post-drain submit: %v, want ErrShuttingDown", err)
	}
}
