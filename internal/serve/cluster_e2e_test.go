package serve

import (
	"context"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/simcache"
)

// fleetProblem is the deterministic fake-engine problem both sides of the
// fleet tests share: the server uses it for local builds, the workers for
// leased points, so the two paths are comparable bit-for-bit. EngineName
// is set so the worker's runner chain (fault injector, cache) intercepts
// runs; the Direct runner keeps tests off the process-wide cache.
func fleetProblem(amp, horizon float64) *core.Problem {
	p := core.StandardProblem(amp, horizon)
	p.Engine = func(d sim.Design, cfg sim.Config) (*sim.Result, error) {
		// A token per-point cost so several workers genuinely interleave.
		time.Sleep(200 * time.Microsecond)
		return chaosResult(d), nil
	}
	p.EngineName = "servefleet"
	p.Runner = simcache.Direct{}
	return p
}

// fastFleet shrinks the coordinator's failure detectors for tests.
func fastFleet() cluster.Config {
	return cluster.Config{
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  250 * time.Millisecond,
		LeaseTimeout:      time.Minute,
		LeasePoints:       4,
		PollInterval:      2 * time.Millisecond,
		Tick:              10 * time.Millisecond,
	}
}

// startFleetWorker runs a worker against the server's public URL — the
// same wire path a real simnode -serve daemon takes.
func startFleetWorker(t *testing.T, url, id string, factory cluster.ProblemFactory) (*cluster.Worker, chan error) {
	t.Helper()
	w, err := cluster.NewWorker(cluster.WorkerConfig{
		Coordinator: url,
		ID:          id,
		Problem:     factory,
		Concurrency: 2,
		Heartbeat:   10 * time.Millisecond,
		Poll:        2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- w.Run(context.Background()) }()
	return w, errc
}

func waitFleet(t *testing.T, c *cluster.Coordinator, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for c.LiveWorkers() < n {
		if time.Now().After(deadline) {
			t.Fatalf("fleet never reached %d live workers (have %d)", n, c.LiveWorkers())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// fleetBuild posts a build request and returns the accepted job.
func fleetBuild(t *testing.T, ts string, req BuildRequest) JobView {
	t.Helper()
	resp, body := postJSON(t, ts+"/v1/build", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("build: %d %s", resp.StatusCode, body)
	}
	var accepted BuildAccepted
	unmarshal(t, body, &accepted)
	return accepted.Job
}

// pollJob polls one job over HTTP until it leaves queued/running.
func pollJob(t *testing.T, ts, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, body := get(t, ts+"/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job poll: %d %s", resp.StatusCode, body)
		}
		var job JobView
		unmarshal(t, body, &job)
		if job.State != string(JobQueued) && job.State != string(JobRunning) {
			return job
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, job.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// sameModelData asserts two registered models carry bitwise-identical
// experiments (design rows and response columns) — the acceptance bar for
// fleet builds: sharding must not change a single bit of the dataset.
func sameModelData(t *testing.T, srv *Server, got, want string) {
	t.Helper()
	g, ok := srv.Registry().Get(got)
	if !ok {
		t.Fatalf("model %q not registered", got)
	}
	w, ok := srv.Registry().Get(want)
	if !ok {
		t.Fatalf("model %q not registered", want)
	}
	if len(g.DesignRuns) != len(w.DesignRuns) {
		t.Fatalf("%d design rows, want %d", len(g.DesignRuns), len(w.DesignRuns))
	}
	for i := range w.DesignRuns {
		for k := range w.DesignRuns[i] {
			if g.DesignRuns[i][k] != w.DesignRuns[i][k] {
				t.Fatalf("design row %d col %d differs", i, k)
			}
		}
	}
	if len(g.DataY) != len(w.DataY) {
		t.Fatalf("%d response columns, want %d", len(g.DataY), len(w.DataY))
	}
	for id, wcol := range w.DataY {
		gcol := g.DataY[id]
		if len(gcol) != len(wcol) {
			t.Fatalf("response %q has %d rows, want %d", id, len(gcol), len(wcol))
		}
		for i := range wcol {
			if gcol[i] != wcol[i] {
				t.Fatalf("response %q row %d: %v != %v (not bit-identical)", id, i, gcol[i], wcol[i])
			}
		}
	}
	for id, wr2 := range w.R2 {
		if g.R2[id] != wr2 {
			t.Fatalf("R2[%q]: %v != %v", id, g.R2[id], wr2)
		}
	}
}

// TestClusterBuildEndToEnd: a 3-worker fleet dialed at the server's public
// URL builds a model via POST /v1/build with pool "cluster", bit-identical
// to the same build run locally; the fleet shows up in /v1/cluster/workers,
// /v1/spec and the per-worker /metrics gauges; server shutdown drains the
// workers cleanly.
func TestClusterBuildEndToEnd(t *testing.T) {
	srv, ts := newTestServer(t, Config{QueueCap: 4, Problem: fleetProblem, Cluster: fastFleet()})

	ids := []string{"fw-1", "fw-2", "fw-3"}
	errcs := make([]chan error, len(ids))
	for i, id := range ids {
		_, errcs[i] = startFleetWorker(t, ts.URL, id, fleetProblem)
	}
	waitFleet(t, srv.Coordinator(), len(ids))

	job := fleetBuild(t, ts.URL, BuildRequest{
		Model: "fleet", Design: "ccf", Horizon: 2, Seed: 1, Pool: PoolCluster,
	})
	if job.Pool != PoolCluster {
		t.Fatalf("accepted job lost its pool: %+v", job)
	}
	if done := pollJob(t, ts.URL, job.ID); done.State != string(JobDone) {
		t.Fatalf("fleet build did not finish: %+v", done)
	}
	local := fleetBuild(t, ts.URL, BuildRequest{
		Model: "local", Design: "ccf", Horizon: 2, Seed: 1, Workers: 4,
	})
	if done := pollJob(t, ts.URL, local.ID); done.State != string(JobDone) {
		t.Fatalf("local build did not finish: %+v", done)
	}
	sameModelData(t, srv, "fleet", "local")

	// The fleet is visible through the health view...
	resp, body := get(t, ts.URL+cluster.PathWorkers)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("workers view: %d %s", resp.StatusCode, body)
	}
	var wv cluster.WorkersResponse
	unmarshal(t, body, &wv)
	if len(wv.Workers) != len(ids) {
		t.Fatalf("workers view has %d workers, want %d", len(wv.Workers), len(ids))
	}
	total, contributed := 0, 0
	for _, w := range wv.Workers {
		if w.State != "active" {
			t.Fatalf("worker %s in state %q, want active", w.ID, w.State)
		}
		total += w.CompletedPoints
		if w.CompletedPoints > 0 {
			contributed++
		}
	}
	if total != 27 {
		t.Fatalf("fleet completed %d points, want 27", total)
	}
	if contributed < 2 {
		t.Fatalf("only %d workers contributed; the design was not sharded", contributed)
	}

	// ...in the machine-readable spec...
	if _, body = get(t, ts.URL+"/v1/spec"); !strings.Contains(string(body), cluster.PathLease) {
		t.Fatalf("/v1/spec does not document the cluster endpoints")
	}

	// ...and as per-worker metrics.
	_, body = get(t, ts.URL+"/metrics")
	for _, want := range []string{
		"ehdoed_cluster_workers 3",
		`ehdoed_cluster_worker_completed_points_total{worker="fw-1"}`,
		`ehdoed_cluster_worker_inflight_leases{worker="fw-1"} 0`,
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics misses %q:\n%s", want, body)
		}
	}

	// Server shutdown drains the fleet: every worker deregisters and its
	// Run loop returns nil.
	srv.Shutdown(2 * time.Second)
	for i, errc := range errcs {
		select {
		case err := <-errc:
			if err != nil {
				t.Fatalf("worker %s did not drain cleanly: %v", ids[i], err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("worker %s never exited after shutdown", ids[i])
		}
	}
}

// TestClusterBuildWorkerKillChaos: the seeded fault injector kills the only
// worker mid-lease; two healthy workers join within the heartbeat-timeout
// window, the coordinator re-enqueues the dead worker's points, and the
// build converges bit-identical to a local run.
func TestClusterBuildWorkerKillChaos(t *testing.T) {
	srv, ts := newTestServer(t, Config{QueueCap: 4, Problem: fleetProblem, Cluster: fastFleet()})

	// The victim's first run draws Kill; the injector's OnKill hook takes
	// the whole worker down, exactly like a crashed simnode process.
	inj := fault.New(fault.Config{Seed: 1, PKill: 1})
	killFactory := func(amp, horizon float64) *core.Problem {
		p := fleetProblem(amp, horizon)
		p.Runner = inj.Wrap(nil)
		return p
	}
	victim, victimErr := startFleetWorker(t, ts.URL, "fw-victim", killFactory)
	inj.OnKill(victim.Kill)
	waitFleet(t, srv.Coordinator(), 1)

	job := fleetBuild(t, ts.URL, BuildRequest{
		Model: "chaos", Design: "ccf", Horizon: 2, Seed: 1, Pool: PoolCluster,
	})

	// The victim must die on its first leased point...
	select {
	case err := <-victimErr:
		if err == nil || !strings.Contains(err.Error(), "killed") {
			t.Fatalf("victim exited with %v, want a kill", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("victim never died")
	}
	// ...and the healthy replacements join before the heartbeat timeout
	// declares the fleet empty.
	for _, id := range []string{"fw-ok-1", "fw-ok-2"} {
		startFleetWorker(t, ts.URL, id, fleetProblem)
	}

	done := pollJob(t, ts.URL, job.ID)
	if done.State != string(JobDone) {
		t.Fatalf("chaos build did not converge: %+v", done)
	}
	if done.Retries == 0 {
		t.Fatalf("job snapshot must count the re-granted points: %+v", done)
	}
	local := fleetBuild(t, ts.URL, BuildRequest{
		Model: "chaos-local", Design: "ccf", Horizon: 2, Seed: 1,
	})
	if done := pollJob(t, ts.URL, local.ID); done.State != string(JobDone) {
		t.Fatalf("local build did not finish: %+v", done)
	}
	sameModelData(t, srv, "chaos", "chaos-local")

	// The coordinator's book shows the victim lost with nothing credited.
	for _, w := range srv.Coordinator().Workers() {
		if w.ID == "fw-victim" {
			if w.State != "lost" {
				t.Fatalf("victim in state %q, want lost", w.State)
			}
			if w.CompletedPoints != 0 {
				t.Fatalf("victim credited %d points, want 0", w.CompletedPoints)
			}
		}
	}
}

// TestClusterBuildValidation pins the pool contract at the HTTP edge: an
// empty fleet answers 409 conflict (state, retryable), an unknown pool 400.
func TestClusterBuildValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{QueueCap: 4, Problem: fleetProblem, Cluster: fastFleet()})

	resp, body := postJSON(t, ts.URL+"/v1/build", BuildRequest{
		Model: "m", Horizon: 2, Pool: PoolCluster,
	})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("cluster build with no workers: %d %s, want 409", resp.StatusCode, body)
	}
	var e errorBody
	unmarshal(t, body, &e)
	if e.Code != codeConflict {
		t.Fatalf("error code %q, want %q", e.Code, codeConflict)
	}

	resp, body = postJSON(t, ts.URL+"/v1/build", BuildRequest{
		Model: "m", Horizon: 2, Pool: "bogus",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown pool: %d %s, want 400", resp.StatusCode, body)
	}
	unmarshal(t, body, &e)
	if e.Code != codeInvalidRequest || !strings.Contains(e.Error, "bogus") {
		t.Fatalf("unknown pool error: %+v", e)
	}
}

// TestClusterShutdownCancelsBuild: server shutdown while a cluster build
// is mid-lease cancels the job (code canceled), drains the worker, and
// leaks no goroutines — the serve-level twin of the jobs drain test.
func TestClusterShutdownCancelsBuild(t *testing.T) {
	before := runtime.NumGoroutine()

	release := make(chan struct{})
	blocked := func(amp, horizon float64) *core.Problem {
		p := fleetProblem(amp, horizon)
		p.Engine = func(d sim.Design, cfg sim.Config) (*sim.Result, error) {
			<-release
			return chaosResult(d), nil
		}
		return p
	}
	srv, ts := newTestServer(t, Config{QueueCap: 4, Problem: fleetProblem, Cluster: fastFleet()})
	_, workerErr := startFleetWorker(t, ts.URL, "fw-block", blocked)
	waitFleet(t, srv.Coordinator(), 1)

	job := fleetBuild(t, ts.URL, BuildRequest{
		Model: "stuck", Design: "ccf", Horizon: 2, Pool: PoolCluster,
	})
	// Wait until the worker actually holds a lease, so shutdown exercises
	// the cancel-outstanding-leases path.
	deadline := time.Now().Add(10 * time.Second)
	for {
		held := 0
		for _, w := range srv.Coordinator().Workers() {
			held += w.InflightLeases
		}
		if held > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never leased any points")
		}
		time.Sleep(2 * time.Millisecond)
	}

	srv.Shutdown(time.Second)
	done := pollJob(t, ts.URL, job.ID)
	if done.State != string(JobCanceled) || done.ErrorCode != jobCodeCanceled {
		t.Fatalf("cluster build must cancel on shutdown: %+v", done)
	}

	close(release)
	select {
	case err := <-workerErr:
		if err != nil {
			t.Fatalf("worker did not drain cleanly: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker never exited after shutdown")
	}

	ts.CloseClientConnections()
	ts.Close()
	leakDeadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d before, %d after shutdown\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// fleetCachedProblem is fleetProblem with the Runner left open so each
// worker fronts leased points with its own simcache — the sharded-tier
// configuration a `simnode -serve -peer-listen` daemon runs.
func fleetCachedProblem(amp, horizon float64) *core.Problem {
	p := fleetProblem(amp, horizon)
	p.Runner = nil
	return p
}

// startCacheFleetWorker runs a fleet worker whose simcache participates in
// the sharded cache tier over a real loopback peer listener.
func startCacheFleetWorker(t *testing.T, url, id string) (*cluster.Worker, chan error) {
	t.Helper()
	cache := simcache.New(simcache.Options{Capacity: 256})
	w, err := cluster.NewWorker(cluster.WorkerConfig{
		Coordinator: url,
		ID:          id,
		Problem:     fleetCachedProblem,
		Runner:      cache,
		Cache:       cache,
		PeerAddr:    "127.0.0.1:0",
		Concurrency: 2,
		Heartbeat:   10 * time.Millisecond,
		Poll:        2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- w.Run(context.Background()) }()
	return w, errc
}

// TestClusterFleetCacheExactlyOnce is the tentpole acceptance e2e: over a
// cache-sharded 3-worker fleet, a repeated build request simulates each
// unique design point exactly once fleet-wide. The first build pays one
// engine execution per unique point (the ccf k=4 design has 27 rows, 25
// unique — center replicas may race onto distinct workers); the repeat
// build pays zero: every point is answered by a worker's own cache or a
// peer fetch from the owning shard, and the two models are bit-identical.
func TestClusterFleetCacheExactlyOnce(t *testing.T) {
	srv, ts := newTestServer(t, Config{QueueCap: 4, Problem: fleetProblem, Cluster: fastFleet()})

	ids := []string{"cw-1", "cw-2", "cw-3"}
	errcs := make([]chan error, len(ids))
	for i, id := range ids {
		_, errcs[i] = startCacheFleetWorker(t, ts.URL, id)
	}
	waitFleet(t, srv.Coordinator(), len(ids))

	counters := func() (hits, misses, fetches float64) {
		_, body := get(t, ts.URL+"/metrics")
		page := string(body)
		return metricValue(t, page, "ehdoed_cluster_cache_hits_total"),
			metricValue(t, page, "ehdoed_cluster_cache_misses_total"),
			metricValue(t, page, "ehdoed_cluster_cache_peer_fetches_total")
	}

	job := fleetBuild(t, ts.URL, BuildRequest{
		Model: "cache-a", Design: "ccf", Horizon: 2, Seed: 1, Pool: PoolCluster,
	})
	if done := pollJob(t, ts.URL, job.ID); done.State != string(JobDone) {
		t.Fatalf("first cached fleet build did not finish: %+v", done)
	}
	hitsA, missesA, fetchesA := counters()
	// Every unique point simulated exactly once fleet-wide: 25 unique rows,
	// plus up to 2 center replicas that may race onto workers that haven't
	// seen (or fetched) the first center run yet.
	if missesA < 25 || missesA > 27 {
		t.Fatalf("first build ran the engine %v times, want 25..27", missesA)
	}
	// Each of the 27 leased points resolved exactly one way.
	if got := hitsA + fetchesA + missesA; got != 27 {
		t.Fatalf("first build resolved %v points (hits %v + fetches %v + misses %v), want 27",
			got, hitsA, fetchesA, missesA)
	}

	repeat := fleetBuild(t, ts.URL, BuildRequest{
		Model: "cache-b", Design: "ccf", Horizon: 2, Seed: 1, Pool: PoolCluster,
	})
	if done := pollJob(t, ts.URL, repeat.ID); done.State != string(JobDone) {
		t.Fatalf("repeat cached fleet build did not finish: %+v", done)
	}
	hitsB, missesB, fetchesB := counters()
	// The repeat build must not touch the engine at all...
	if missesB != missesA {
		t.Fatalf("repeat build ran the engine %v more times — fleet cache not exactly-once", missesB-missesA)
	}
	// ...and must answer all 27 points from the cache tier.
	if got := (hitsB + fetchesB) - (hitsA + fetchesA); got != 27 {
		t.Fatalf("repeat build answered %v points from the cache tier, want 27", got)
	}
	sameModelData(t, srv, "cache-a", "cache-b")

	// The typed cache view agrees with the metrics and shows the shard map.
	resp, body := get(t, ts.URL+cluster.PathCache)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache view: %d %s", resp.StatusCode, body)
	}
	var cs cluster.CacheStateResponse
	unmarshal(t, body, &cs)
	if cs.Map == nil || cs.Map.Generation < 3 || cs.Map.Shards != cluster.DefaultShards {
		t.Fatalf("cache view shard map: %+v", cs.Map)
	}
	if len(cs.Workers) != len(ids) {
		t.Fatalf("cache view has %d workers, want %d", len(cs.Workers), len(ids))
	}
	owned := 0
	for _, w := range cs.Workers {
		if w.PeerURL == "" {
			t.Fatalf("worker %s advertises no peer URL", w.ID)
		}
		if w.Shards == 0 {
			t.Fatalf("worker %s owns no shard ranges", w.ID)
		}
		owned += w.Shards
	}
	if owned != cluster.DefaultShards {
		t.Fatalf("workers own %d slots in total, want %d", owned, cluster.DefaultShards)
	}
	if cs.Totals.Misses != uint64(missesB) {
		t.Fatalf("cache view totals (%d misses) disagree with /metrics (%v)", cs.Totals.Misses, missesB)
	}

	// The cache view is a documented, spec-listed endpoint.
	if _, body = get(t, ts.URL+"/v1/spec"); !strings.Contains(string(body), cluster.PathCache) {
		t.Fatalf("/v1/spec does not document %s", cluster.PathCache)
	}

	srv.Shutdown(2 * time.Second)
	for i, errc := range errcs {
		select {
		case err := <-errc:
			if err != nil {
				t.Fatalf("worker %s did not drain cleanly: %v", ids[i], err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("worker %s never exited after shutdown", ids[i])
		}
	}
}
