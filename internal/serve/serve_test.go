package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/apiclient"
	"repro/internal/core"
	"repro/internal/rsm"
)

// fixture builds one small real surface set (short horizon, parallel
// runner) shared by every test in the package.
var (
	fixtureOnce sync.Once
	fixtureSS   *core.SavedSurfaces
	fixtureErr  error
)

func fixture(t testing.TB) *core.SavedSurfaces {
	t.Helper()
	fixtureOnce.Do(func() {
		p := core.StandardProblem(0.6, 2)
		design, err := core.NamedDesign("ccf", len(p.Factors), 0, 1)
		if err != nil {
			fixtureErr = err
			return
		}
		ds, err := p.RunDesignParallel(design, 0)
		if err != nil {
			fixtureErr = err
			return
		}
		s, err := p.BuildSurfaces(ds, rsm.FullQuadratic(len(p.Factors)))
		if err != nil {
			fixtureErr = err
			return
		}
		fixtureSS = s.SaveWithData(ds)
	})
	if fixtureErr != nil {
		t.Fatalf("building fixture surfaces: %v", fixtureErr)
	}
	return fixtureSS
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Shutdown(5 * time.Second)
	})
	return srv, ts
}

// testAPI drives every HTTP helper through the shared typed client, so
// the suite exercises the same wire path (request IDs, retry policy,
// error-envelope handling) as the real CLI and worker callers. Helpers
// hand absolute URLs to Do, which passes them through untouched.
var testAPI = apiclient.New("", apiclient.Options{})

// asResponse adapts an apiclient.Result to the *http.Response shape the
// package's historical call sites assert against (StatusCode, Header).
func asResponse(res *apiclient.Result) *http.Response {
	return &http.Response{StatusCode: res.Status, Header: res.Header}
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	res, err := testAPI.Do(context.Background(), http.MethodPost, url, body)
	if err != nil {
		t.Fatal(err)
	}
	return asResponse(res), res.Body
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	res, err := testAPI.Do(context.Background(), http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return asResponse(res), res.Body
}

func unmarshal(t *testing.T, data []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("unmarshal %q: %v", data, err)
	}
}

// TestEndToEnd is the acceptance flow: start the daemon, build a model via
// the async job API (parallel runner, real simulator at a short horizon),
// then drive every serving endpoint against the registered model and check
// the metrics recorded it all.
func TestEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{QueueCap: 4})

	// Health before anything else.
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}

	// Enqueue a build and poll it to completion.
	resp, body = postJSON(t, ts.URL+"/v1/build", BuildRequest{
		Model: "m1", Design: "ccf", Horizon: 2, Seed: 1,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("build: %d %s", resp.StatusCode, body)
	}
	var accepted struct {
		Job JobView `json:"job"`
	}
	unmarshal(t, body, &accepted)
	if accepted.Job.ID == "" || accepted.Job.State != string(JobQueued) {
		t.Fatalf("unexpected job snapshot: %+v", accepted.Job)
	}

	deadline := time.Now().Add(60 * time.Second)
	var job JobView
	for {
		resp, body = get(t, ts.URL+"/v1/jobs/"+accepted.Job.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job poll: %d %s", resp.StatusCode, body)
		}
		unmarshal(t, body, &job)
		if job.State == string(JobDone) || job.State == string(JobFailed) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("build did not finish: %+v", job)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if job.State != string(JobDone) {
		t.Fatalf("build failed: %+v", job)
	}
	if job.Runs == 0 || job.SimMillis <= 0 || len(job.R2) == 0 {
		t.Fatalf("job finished without build stats: %+v", job)
	}
	if job.Speedup <= 0 {
		t.Fatalf("parallel runner reported no speedup accounting: %+v", job)
	}

	// The finished surfaces are registered and described.
	resp, body = get(t, ts.URL+"/v1/models")
	var list struct {
		Models []ModelSummary `json:"models"`
	}
	unmarshal(t, body, &list)
	if len(list.Models) != 1 || list.Models[0].Name != "m1" {
		t.Fatalf("model list: %s", body)
	}
	resp, body = get(t, ts.URL+"/v1/models/m1")
	var md ModelDetail
	unmarshal(t, body, &md)
	if len(md.Factors) != 4 || len(md.R2) == 0 || !md.HasData {
		t.Fatalf("model detail: %s", body)
	}

	// Batch predict in natural units: every requested response per point.
	resp, body = postJSON(t, ts.URL+"/v1/predict", PredictRequest{
		Model:  "m1",
		Points: [][]float64{{5, 0.05, 3.0, 0}, {12, 0.02, 2.8, 0.2}, {18, 0.09, 3.4, -0.4}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d %s", resp.StatusCode, body)
	}
	var pr PredictResponse
	unmarshal(t, body, &pr)
	if len(pr.Results) != 3 {
		t.Fatalf("want 3 results, got %s", body)
	}
	for _, res := range pr.Results {
		if len(res.Values) != len(md.Responses) {
			t.Fatalf("point %v missing responses: %v", res.Point, res.Values)
		}
	}

	// Single point, coded units, restricted responses.
	resp, body = postJSON(t, ts.URL+"/v1/predict", PredictRequest{
		Model: "m1", Units: "coded", Point: []float64{0, 0, 0, 0}, Responses: []string{"packets"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("coded predict: %d %s", resp.StatusCode, body)
	}
	var codedPr PredictResponse
	unmarshal(t, body, &codedPr)
	if len(codedPr.Results) != 1 || len(codedPr.Results[0].Values) != 1 {
		t.Fatalf("coded predict results: %s", body)
	}

	// Sweep.
	resp, body = postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Model: "m1", Response: "packets", Factor: "period", Points: 7,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d %s", resp.StatusCode, body)
	}
	var sw SweepResponse
	unmarshal(t, body, &sw)
	if len(sw.X) != 7 || len(sw.Y) != 7 || sw.X[0] != 2 || sw.X[6] != 20 {
		t.Fatalf("sweep curve: %s", body)
	}

	// Optimize.
	resp, body = postJSON(t, ts.URL+"/v1/optimize", OptimizeRequest{
		Model: "m1", Response: "stored_energy_J", Seed: 1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize: %d %s", resp.StatusCode, body)
	}
	var or OptimizeResponse
	unmarshal(t, body, &or)
	if len(or.Coded) != 4 || len(or.Natural) != 4 || or.Evals == 0 {
		t.Fatalf("optimize result: %s", body)
	}
	for i, c := range or.Coded {
		if c < -1-1e-9 || c > 1+1e-9 {
			t.Fatalf("optimum escaped the box at %d: %v", i, or.Coded)
		}
	}

	// Validate with confirming simulations.
	resp, body = postJSON(t, ts.URL+"/v1/validate", ValidateRequest{Model: "m1", N: 2, Seed: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("validate: %d %s", resp.StatusCode, body)
	}
	var vr ValidateResponse
	unmarshal(t, body, &vr)
	if vr.N != 2 || len(vr.Rows) == 0 || vr.SimMillis <= 0 {
		t.Fatalf("validate report: %s", body)
	}

	// Jobs list shows the one finished job.
	resp, body = get(t, ts.URL+"/v1/jobs")
	var jl struct {
		Jobs []JobView `json:"jobs"`
	}
	unmarshal(t, body, &jl)
	if len(jl.Jobs) != 1 || jl.Jobs[0].State != string(JobDone) {
		t.Fatalf("jobs list: %s", body)
	}

	// Metrics recorded all of it: non-zero request counts and latency
	// histogram buckets.
	resp, body = get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		`ehdoed_requests_total{endpoint="predict"} 2`,
		`ehdoed_requests_total{endpoint="build"} 1`,
		`ehdoed_requests_total{endpoint="sweep"} 1`,
		`ehdoed_requests_total{endpoint="optimize"} 1`,
		`ehdoed_requests_total{endpoint="validate"} 1`,
		`ehdoed_request_latency_seconds_count{endpoint="predict"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
	if !strings.Contains(text, `ehdoed_request_latency_seconds_bucket{endpoint="predict",le="+Inf"} 2`) {
		t.Fatalf("latency buckets not populated:\n%s", text)
	}

	// Delete, then the model is gone.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/models/m1", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", dresp.StatusCode)
	}
	resp, body = postJSON(t, ts.URL+"/v1/predict", PredictRequest{Model: "m1", Point: []float64{5, 0.05, 3, 0}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("predict after delete: %d %s", resp.StatusCode, body)
	}
}

// TestUploadAndPredict exercises the hot-swap upload path.
func TestUploadAndPredict(t *testing.T) {
	ss := fixture(t)
	_, ts := newTestServer(t, Config{})

	data, err := ss.Encode()
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/models/uploaded", bytes.NewReader(data))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %d %s", resp.StatusCode, body)
	}

	// Re-upload swaps in place and reports 200.
	req, _ = http.NewRequest(http.MethodPut, ts.URL+"/v1/models/uploaded", bytes.NewReader(data))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-upload: %d", resp.StatusCode)
	}

	presp, pbody := postJSON(t, ts.URL+"/v1/predict", PredictRequest{
		Model: "uploaded", Point: []float64{5, 0.05, 3.0, 0},
	})
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d %s", presp.StatusCode, pbody)
	}

	// Garbage upload is rejected.
	req, _ = http.NewRequest(http.MethodPut, ts.URL+"/v1/models/bad", strings.NewReader(`{"not":"surfaces"}`))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad upload: %d", resp.StatusCode)
	}
}

// TestErrorPaths checks the contract on malformed and missing inputs.
func TestErrorPaths(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	srv.Registry().Set("m", fixture(t))

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
		code   string
	}{
		{"malformed predict JSON", "POST", "/v1/predict", `{"model":`, http.StatusBadRequest, codeInvalidRequest},
		{"trailing garbage", "POST", "/v1/predict", `{"model":"m","point":[5,0.05,3,0]} extra`, http.StatusBadRequest, codeInvalidRequest},
		{"unknown model predict", "POST", "/v1/predict", `{"model":"nope","point":[5,0.05,3,0]}`, http.StatusNotFound, codeNotFound},
		{"no points", "POST", "/v1/predict", `{"model":"m"}`, http.StatusBadRequest, codeInvalidRequest},
		{"bad units", "POST", "/v1/predict", `{"model":"m","point":[5,0.05,3,0],"units":"furlongs"}`, http.StatusBadRequest, codeInvalidRequest},
		{"wrong dimension", "POST", "/v1/predict", `{"model":"m","point":[5,0.05]}`, http.StatusBadRequest, codeInvalidRequest},
		{"unknown response", "POST", "/v1/predict", `{"model":"m","point":[5,0.05,3,0],"responses":["nope"]}`, http.StatusBadRequest, codeInvalidRequest},
		{"unknown model sweep", "POST", "/v1/sweep", `{"model":"nope","response":"packets","factor":"period"}`, http.StatusNotFound, codeNotFound},
		{"unknown factor sweep", "POST", "/v1/sweep", `{"model":"m","response":"packets","factor":"nope"}`, http.StatusBadRequest, codeInvalidRequest},
		{"unknown response sweep", "POST", "/v1/sweep", `{"model":"m","response":"nope","factor":"period"}`, http.StatusBadRequest, codeInvalidRequest},
		{"bad at-factor sweep", "POST", "/v1/sweep", `{"model":"m","response":"packets","factor":"period","at":{"nope":1}}`, http.StatusBadRequest, codeInvalidRequest},
		{"unknown response optimize", "POST", "/v1/optimize", `{"model":"m","response":"nope"}`, http.StatusBadRequest, codeInvalidRequest},
		{"unknown model optimize", "POST", "/v1/optimize", `{"model":"nope","response":"packets"}`, http.StatusNotFound, codeNotFound},
		{"unknown model validate", "POST", "/v1/validate", `{"model":"nope"}`, http.StatusNotFound, codeNotFound},
		{"validate n too large", "POST", "/v1/validate", `{"model":"m","n":100000}`, http.StatusBadRequest, codeInvalidRequest},
		{"validate negative excite", "POST", "/v1/validate", `{"model":"m","excite":-1}`, http.StatusBadRequest, codeInvalidRequest},
		{"validate negative horizon", "POST", "/v1/validate", `{"model":"m","horizon_s":-5}`, http.StatusBadRequest, codeInvalidRequest},
		{"build without model", "POST", "/v1/build", `{"design":"ccf"}`, http.StatusBadRequest, codeInvalidRequest},
		{"build unknown design", "POST", "/v1/build", `{"model":"x","design":"nope"}`, http.StatusBadRequest, codeInvalidRequest},
		{"build negative excite", "POST", "/v1/build", `{"model":"x","excite":-0.5}`, http.StatusBadRequest, codeInvalidRequest},
		{"unknown job", "GET", "/v1/jobs/job-999999", "", http.StatusNotFound, codeNotFound},
		{"unknown model get", "GET", "/v1/models/nope", "", http.StatusNotFound, codeNotFound},
		{"jobs bad state", "GET", "/v1/jobs?state=flying", "", http.StatusBadRequest, codeInvalidRequest},
		{"jobs bad limit", "GET", "/v1/jobs?limit=zero", "", http.StatusBadRequest, codeInvalidRequest},
		{"jobs negative limit", "GET", "/v1/jobs?limit=-3", "", http.StatusBadRequest, codeInvalidRequest},
		{"jobs unknown cursor", "GET", "/v1/jobs?after=job-424242", "", http.StatusBadRequest, codeInvalidRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			if tc.body != "" {
				req.Header.Set("Content-Type", "application/json")
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("%s %s: got %d, want %d (%s)", tc.method, tc.path, resp.StatusCode, tc.want, body)
			}
			if tc.want >= 400 {
				var eb errorBody
				if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
					t.Fatalf("error payload not uniform: %s", body)
				}
				if eb.Code != tc.code {
					t.Fatalf("error code %q, want %q (%s)", eb.Code, tc.code, body)
				}
			}
		})
	}

	// Errors show up in the error counters.
	_, body := get(t, ts.URL+"/metrics")
	if !strings.Contains(string(body), `ehdoed_request_errors_total{endpoint="predict"}`) {
		t.Fatalf("error counter missing:\n%s", body)
	}
}

// TestPredictMatchesDirectEvaluation pins the served numbers to the
// library: the HTTP path must return exactly what SavedSurfaces computes.
func TestPredictMatchesDirectEvaluation(t *testing.T) {
	ss := fixture(t)
	srv, ts := newTestServer(t, Config{})
	srv.Registry().Set("m", ss)

	nat := []float64{7, 0.04, 3.1, 0.1}
	resp, body := postJSON(t, ts.URL+"/v1/predict", PredictRequest{Model: "m", Point: nat})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d %s", resp.StatusCode, body)
	}
	var pr PredictResponse
	unmarshal(t, body, &pr)
	for _, id := range ss.Responses() {
		want, err := ss.PredictNatural(id, nat)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := pr.Results[0].Values[string(id)]
		if !ok {
			t.Fatalf("response %s missing", id)
		}
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("%s: served %v, library %v", id, got, want)
		}
	}
}

// TestHealthzAndModelCount checks the liveness payload tracks the registry.
func TestHealthzAndModelCount(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	_, body := get(t, ts.URL+"/healthz")
	var h struct {
		Status string `json:"status"`
		Models int    `json:"models"`
	}
	unmarshal(t, body, &h)
	if h.Status != "ok" || h.Models != 0 {
		t.Fatalf("healthz: %s", body)
	}
	srv.Registry().Set("m", fixture(t))
	_, body = get(t, ts.URL+"/healthz")
	unmarshal(t, body, &h)
	if h.Models != 1 {
		t.Fatalf("healthz after register: %s", body)
	}
}
