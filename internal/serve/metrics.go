package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// latencyBuckets are the cumulative-histogram upper bounds in seconds,
// spanning the sub-millisecond surrogate hot path up to multi-second
// simulation-backed endpoints. An implicit +Inf bucket follows.
var latencyBuckets = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10}

// endpointStats accumulates one endpoint's counters and latency histogram.
type endpointStats struct {
	count   uint64
	errors  uint64 // responses with status ≥ 400
	sum     float64
	buckets []uint64 // len(latencyBuckets)+1, last is +Inf
}

// Metrics collects per-endpoint request counters and latency histograms,
// rendered in Prometheus text exposition format at /metrics. A single
// mutex suffices: observations are a few adds, far cheaper than the
// handlers they measure.
type Metrics struct {
	mu        sync.Mutex
	start     time.Time
	endpoints map[string]*endpointStats
}

// NewMetrics returns an empty collector.
func NewMetrics() *Metrics {
	return &Metrics{start: time.Now(), endpoints: make(map[string]*endpointStats)}
}

// Observe records one served request.
func (m *Metrics) Observe(endpoint string, status int, d time.Duration) {
	sec := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.endpoints[endpoint]
	if !ok {
		st = &endpointStats{buckets: make([]uint64, len(latencyBuckets)+1)}
		m.endpoints[endpoint] = st
	}
	st.count++
	if status >= 400 {
		st.errors++
	}
	st.sum += sec
	for i, ub := range latencyBuckets {
		if sec <= ub {
			st.buckets[i]++
		}
	}
	st.buckets[len(latencyBuckets)]++ // +Inf
}

// Render produces the plaintext exposition.
func (m *Metrics) Render() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder
	b.WriteString("# HELP ehdoed_uptime_seconds Seconds since the server started.\n")
	b.WriteString("# TYPE ehdoed_uptime_seconds gauge\n")
	fmt.Fprintf(&b, "ehdoed_uptime_seconds %g\n", time.Since(m.start).Seconds())

	names := make([]string, 0, len(m.endpoints))
	for name := range m.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)

	b.WriteString("# HELP ehdoed_requests_total Requests served, by endpoint.\n")
	b.WriteString("# TYPE ehdoed_requests_total counter\n")
	for _, name := range names {
		fmt.Fprintf(&b, "ehdoed_requests_total{endpoint=%q} %d\n", name, m.endpoints[name].count)
	}
	b.WriteString("# HELP ehdoed_request_errors_total Requests answered with status >= 400, by endpoint.\n")
	b.WriteString("# TYPE ehdoed_request_errors_total counter\n")
	for _, name := range names {
		fmt.Fprintf(&b, "ehdoed_request_errors_total{endpoint=%q} %d\n", name, m.endpoints[name].errors)
	}
	b.WriteString("# HELP ehdoed_request_latency_seconds Request latency, by endpoint.\n")
	b.WriteString("# TYPE ehdoed_request_latency_seconds histogram\n")
	for _, name := range names {
		st := m.endpoints[name]
		for i, ub := range latencyBuckets {
			fmt.Fprintf(&b, "ehdoed_request_latency_seconds_bucket{endpoint=%q,le=%q} %d\n", name, trimFloat(ub), st.buckets[i])
		}
		fmt.Fprintf(&b, "ehdoed_request_latency_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", name, st.buckets[len(latencyBuckets)])
		fmt.Fprintf(&b, "ehdoed_request_latency_seconds_sum{endpoint=%q} %g\n", name, st.sum)
		fmt.Fprintf(&b, "ehdoed_request_latency_seconds_count{endpoint=%q} %d\n", name, st.count)
	}
	return []byte(b.String())
}

func trimFloat(v float64) string {
	return fmt.Sprintf("%g", v)
}
