package serve

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

// TestShutdownMixedJobsNoLeak: shutdown with a finished, a running and a
// queued job must leave the finished one alone, cancel the queued one
// immediately (with the canceled code and a logged reason), cancel the
// running one past the grace period, and leak no goroutines.
func TestShutdownMixedJobsNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	release := make(chan struct{}) // never closed: the running build can't finish
	quit := make(chan struct{})
	// Builds at excite 0.7 complete instantly; everything else blocks.
	factory := func(amp, horizon float64) *core.Problem {
		p := core.StandardProblem(amp, horizon)
		p.Engine = func(d sim.Design, cfg sim.Config) (*sim.Result, error) {
			if amp == 0.7 {
				return chaosResult(d), nil
			}
			select {
			case <-release:
			case <-quit:
				return nil, errAborted
			}
			return chaosResult(d), nil
		}
		return p
	}
	m := NewJobManager(JobManagerConfig{Problem: factory, QueueCap: 2})

	jDone, err := m.Submit(context.Background(), BuildRequest{Model: "finished", Excite: 0.7, Horizon: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, jDone.ID, JobDone)
	jRun, err := m.Submit(context.Background(), BuildRequest{Model: "running", Horizon: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, jRun.ID, JobRunning)
	jQueued, err := m.Submit(context.Background(), BuildRequest{Model: "queued", Horizon: 1})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		m.Shutdown(20 * time.Millisecond)
		close(done)
	}()
	q := waitState(t, m, jQueued.ID, JobCanceled)
	if q.ErrorCode != jobCodeCanceled || !strings.Contains(q.Error, "shutting down") {
		t.Fatalf("queued job must carry the canceled code and reason: %+v", q)
	}
	// Past the grace period the manager cancels the in-flight build; the
	// stalled engine call is then aborted by the test hook.
	time.Sleep(60 * time.Millisecond)
	close(quit)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("shutdown hung on the mixed job set")
	}
	if got := waitState(t, m, jRun.ID, JobCanceled); got.ErrorCode != jobCodeCanceled {
		t.Fatalf("running job must be canceled past the grace period: %+v", got)
	}
	if got, _ := m.Get(jDone.ID); got.State != string(JobDone) {
		t.Fatalf("finished job must survive shutdown untouched: %+v", got)
	}

	// The worker and any build goroutines must be gone. Give the runtime a
	// moment to reap them before declaring a leak.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d before, %d after shutdown\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestListPageBoundaries pins the pagination edge cases: cursor at the last
// job, limit past the end, filters that match nothing, and the more flag
// exactly at the limit.
func TestListPageBoundaries(t *testing.T) {
	release := make(chan struct{}) // never closed: 1 running + 4 queued, frozen
	quit := make(chan struct{})
	m := NewJobManager(JobManagerConfig{Problem: blockingProblem(release, quit), QueueCap: 8})
	defer func() {
		close(quit)
		m.Shutdown(10 * time.Second)
	}()

	ids := make([]string, 5)
	for i := range ids {
		j, err := m.Submit(context.Background(), BuildRequest{Model: fmt.Sprintf("m%d", i), Horizon: 1})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = j.ID
	}
	waitState(t, m, ids[0], JobRunning)

	if page, more := m.ListPage("", "", 0); len(page) != 5 || more {
		t.Fatalf("unbounded list: %d jobs, more=%v", len(page), more)
	}
	// Cursor sitting on the last job: nothing remains, and more is false.
	if page, more := m.ListPage("", ids[4], 0); len(page) != 0 || more {
		t.Fatalf("after=last: %d jobs, more=%v", len(page), more)
	}
	// Limit larger than what's left is not an error and more stays false.
	if page, more := m.ListPage("", ids[2], 10); len(page) != 2 || more {
		t.Fatalf("limit past the end: %d jobs, more=%v", len(page), more)
	}
	// A state no job is in — including one that isn't a JobState at all —
	// yields an empty page, not an error.
	if page, more := m.ListPage(JobFailed, "", 0); len(page) != 0 || more {
		t.Fatalf("state filter with no matches: %d jobs, more=%v", len(page), more)
	}
	if page, more := m.ListPage(JobState("bogus"), "", 0); len(page) != 0 || more {
		t.Fatalf("unknown state filter: %d jobs, more=%v", len(page), more)
	}
	// Hitting the limit with matches left must set more.
	page, more := m.ListPage(JobQueued, "", 2)
	if len(page) != 2 || !more {
		t.Fatalf("limit within queued jobs: %d jobs, more=%v", len(page), more)
	}
	if page[0].ID != ids[1] || page[1].ID != ids[2] {
		t.Fatalf("queued page out of submission order: %s, %s", page[0].ID, page[1].ID)
	}
	// An unknown cursor falls back to the beginning (the job may have been
	// submitted before the server restarted).
	if page, _ := m.ListPage("", "job-999999", 1); len(page) != 1 || page[0].ID != ids[0] {
		t.Fatalf("unknown cursor must start from the beginning: %+v", page)
	}
}
