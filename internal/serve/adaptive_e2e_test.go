package serve

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/simcache"
)

// adaptiveFakeProblem is the deterministic fake-engine StandardProblem the
// adaptive e2e tests build against: responses are cheap smooth functions of
// the design (plus the packets staircase), so the sequential loop converges
// in a couple of rounds without touching the real simulator.
func adaptiveFakeProblem(amp, horizon float64) *core.Problem {
	p := core.StandardProblem(amp, horizon)
	p.Engine = func(d sim.Design, cfg sim.Config) (*sim.Result, error) {
		return chaosResult(d), nil
	}
	p.EngineName = "adaptive-fake"
	p.Runner = simcache.Direct{}
	return p
}

// TestAdaptiveBuildE2E drives the adaptive strategy through the full HTTP
// surface: submit, poll, per-round stats on the job view, PRESS/R²-pred on
// the model detail and /v1/validate rows, and the point-accounting metrics.
func TestAdaptiveBuildE2E(t *testing.T) {
	srv, ts := newTestServer(t, Config{Problem: adaptiveFakeProblem, QueueCap: 4})

	resp, body := postJSON(t, ts.URL+"/v1/build", BuildRequest{
		Model: "ad", Strategy: StrategyAdaptive, Horizon: 1, Seed: 1, Workers: 2,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("adaptive build rejected: %d %s", resp.StatusCode, body)
	}
	var accepted BuildAccepted
	unmarshal(t, body, &accepted)
	if accepted.Job.Strategy != StrategyAdaptive {
		t.Fatalf("accepted job lost its strategy: %+v", accepted.Job)
	}
	if accepted.Job.Design != StrategyAdaptive {
		t.Fatalf("adaptive job must report design %q, got %q", StrategyAdaptive, accepted.Job.Design)
	}

	job := waitState(t, srv.Jobs(), accepted.Job.ID, JobDone)
	st := job.Adaptive
	if st == nil {
		t.Fatalf("finished adaptive job carries no adaptive stats: %+v", job)
	}
	if st.PointsSimulated <= 0 || st.PointsSimulated > st.FixedPoints {
		t.Fatalf("points simulated %d outside (0, %d]", st.PointsSimulated, st.FixedPoints)
	}
	if st.FixedPoints != core.FixedEquivalentPoints(4) {
		t.Fatalf("fixed reference %d, want %d", st.FixedPoints, core.FixedEquivalentPoints(4))
	}
	if st.StopReason != core.StopConverged {
		t.Fatalf("smooth fake responses must converge, stopped with %q after %d points",
			st.StopReason, st.PointsSimulated)
	}
	if st.PointsSkipped == 0 {
		t.Fatalf("converged adaptive build skipped no points vs fixed %d: %+v", st.FixedPoints, st)
	}
	if len(st.Rounds) < 2 {
		t.Fatalf("adaptive build must record its rounds, got %+v", st.Rounds)
	}
	if job.Runs != st.PointsSimulated {
		t.Fatalf("job runs %d disagree with adaptive points %d", job.Runs, st.PointsSimulated)
	}
	if len(job.R2) == 0 || job.SimMillis < 0 {
		t.Fatalf("adaptive job finished without build stats: %+v", job)
	}

	// The model is registered with the leave-one-out diagnostics exposed.
	resp, body = get(t, ts.URL+"/v1/models/ad")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("model detail: %d %s", resp.StatusCode, body)
	}
	var md ModelDetail
	unmarshal(t, body, &md)
	if md.Runs != st.PointsSimulated {
		t.Fatalf("model runs %d, want the adaptive point count %d", md.Runs, st.PointsSimulated)
	}
	if len(md.R2Pred) != len(md.R2) || len(md.PRESS) != len(md.R2) {
		t.Fatalf("model detail missing PRESS/R²-pred: press=%v r2_pred=%v", md.PRESS, md.R2Pred)
	}

	// /v1/validate echoes the training R²-pred next to fresh-point errors.
	resp, body = postJSON(t, ts.URL+"/v1/validate", ValidateRequest{Model: "ad", N: 2, Seed: 7})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("validate: %d %s", resp.StatusCode, body)
	}
	var vr ValidateResponse
	unmarshal(t, body, &vr)
	if len(vr.Rows) == 0 {
		t.Fatalf("validate returned no rows: %s", body)
	}
	for _, row := range vr.Rows {
		if row.R2Pred < 0.5 {
			t.Fatalf("response %s reports R²-pred %v, want the near-perfect fake fit", row.Response, row.R2Pred)
		}
	}

	// The point accounting shows up on /metrics.
	_, mbody := get(t, ts.URL+"/metrics")
	page := string(mbody)
	if v := metricValue(t, page, "ehdoed_build_rounds"); v != float64(len(st.Rounds)) {
		t.Fatalf("ehdoed_build_rounds %g, want %d", v, len(st.Rounds))
	}
	if v := metricValue(t, page, "ehdoed_build_points_simulated_total"); v != float64(st.PointsSimulated) {
		t.Fatalf("ehdoed_build_points_simulated_total %g, want %d", v, st.PointsSimulated)
	}
	if v := metricValue(t, page, "ehdoed_build_points_skipped_total"); v != float64(st.PointsSkipped) {
		t.Fatalf("ehdoed_build_points_skipped_total %g, want %d", v, st.PointsSkipped)
	}

	// The published spec documents the new request field.
	if _, sbody := get(t, ts.URL+"/v1/spec"); !strings.Contains(string(sbody), `"strategy"`) {
		t.Fatalf("/v1/spec does not document the strategy field")
	}
}

// TestFixedStrategyBitIdentity pins the regression bar: strategy "fixed" —
// spelled explicitly or defaulted — produces bit-for-bit the experiment the
// pre-strategy API produced, and a fixed build counts one round and zero
// skipped points.
func TestFixedStrategyBitIdentity(t *testing.T) {
	srv, ts := newTestServer(t, Config{Problem: adaptiveFakeProblem, QueueCap: 4})

	def := fleetBuild(t, ts.URL, BuildRequest{
		Model: "fx-default", Design: "ccf", Horizon: 1, Seed: 1,
	})
	if done := pollJob(t, ts.URL, def.ID); done.State != string(JobDone) {
		t.Fatalf("default-strategy build did not finish: %+v", done)
	}
	exp := fleetBuild(t, ts.URL, BuildRequest{
		Model: "fx-explicit", Strategy: StrategyFixed, Design: "ccf", Horizon: 1, Seed: 1,
	})
	if exp.Strategy != StrategyFixed {
		t.Fatalf("explicit fixed strategy not echoed: %+v", exp)
	}
	done := pollJob(t, ts.URL, exp.ID)
	if done.State != string(JobDone) {
		t.Fatalf("explicit-fixed build did not finish: %+v", done)
	}
	if done.Adaptive != nil {
		t.Fatalf("fixed build must not carry adaptive stats: %+v", done.Adaptive)
	}
	sameModelData(t, srv, "fx-explicit", "fx-default")

	_, mbody := get(t, ts.URL+"/metrics")
	page := string(mbody)
	if v := metricValue(t, page, "ehdoed_build_rounds"); v != 2 {
		t.Fatalf("two fixed builds must count two rounds, got %g", v)
	}
	if v := metricValue(t, page, "ehdoed_build_points_simulated_total"); v != 54 {
		t.Fatalf("two ccf builds simulate 54 points, got %g", v)
	}
	if v := metricValue(t, page, "ehdoed_build_points_skipped_total"); v != 0 {
		t.Fatalf("fixed builds skip nothing, got %g", v)
	}
}

// TestAdaptiveBuildValidation pins the request contract: unknown strategies
// are bad_field, and design/runs conflict with the adaptive strategy.
func TestAdaptiveBuildValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Problem: adaptiveFakeProblem})

	cases := []struct {
		name string
		req  BuildRequest
		code string
	}{
		{"unknown strategy", BuildRequest{Model: "m", Strategy: "bogus"}, codeBadField},
		{"adaptive with design", BuildRequest{Model: "m", Strategy: StrategyAdaptive, Design: "ccf"}, codeInvalidRequest},
		{"adaptive with runs", BuildRequest{Model: "m", Strategy: StrategyAdaptive, Runs: 30}, codeInvalidRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/build", tc.req)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("%+v: got %d %s, want 400", tc.req, resp.StatusCode, body)
			}
			var e errorBody
			unmarshal(t, body, &e)
			if e.Code != tc.code {
				t.Fatalf("error code %q, want %q (%s)", e.Code, tc.code, body)
			}
		})
	}
}

// TestAdaptiveBuildChaosE2E is the fault-tolerance acceptance run for the
// sequential loop behind the API: under seeded transient errors and panics
// the adaptive build must retry through every round, converge to a
// registered model, and count its recoveries — the same machinery a fixed
// build inherits, exercised across round boundaries.
func TestAdaptiveBuildChaosE2E(t *testing.T) {
	inj := fault.New(fault.Config{
		Seed:       11,
		PTransient: 0.2,
		PPanic:     0.1,
	})
	retry := core.RetryPolicy{MaxAttempts: 10, BaseDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond}
	srv, ts := newTestServer(t, Config{Problem: chaosProblem(inj, retry), QueueCap: 4})

	resp, body := postJSON(t, ts.URL+"/v1/build", BuildRequest{
		Model: "ad-chaos", Strategy: StrategyAdaptive, Horizon: 1, Seed: 1, Workers: 1,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("adaptive build under chaos rejected: %d %s", resp.StatusCode, body)
	}
	var accepted BuildAccepted
	unmarshal(t, body, &accepted)

	job := waitState(t, srv.Jobs(), accepted.Job.ID, JobDone)
	if job.Retries == 0 {
		t.Fatalf("chaos adaptive build saw no retries — injector not in the path? %+v", job)
	}
	if job.Adaptive == nil || len(job.Adaptive.Rounds) == 0 {
		t.Fatalf("chaos adaptive build lost its round record: %+v", job)
	}
	ss, ok := srv.Registry().Get("ad-chaos")
	if !ok {
		t.Fatal("chaos adaptive build must still register its model")
	}
	if ss.Runs != job.Adaptive.PointsSimulated {
		t.Fatalf("registered model has %d runs, stats claim %d", ss.Runs, job.Adaptive.PointsSimulated)
	}

	_, mbody := get(t, ts.URL+"/metrics")
	if v := metricValue(t, string(mbody), "ehdoed_run_retries_total"); v < float64(job.Retries) {
		t.Fatalf("ehdoed_run_retries_total %g < job retries %d", v, job.Retries)
	}
}

// TestAdaptiveClusterBuildE2E shards every adaptive round across a worker
// fleet (pool "cluster") and requires the result to be bit-identical to the
// same adaptive build run on the local pool: the sequential loop must not
// care which fabric simulates its rounds.
func TestAdaptiveClusterBuildE2E(t *testing.T) {
	srv, ts := newTestServer(t, Config{QueueCap: 4, Problem: fleetProblem, Cluster: fastFleet()})

	ids := []string{"aw-1", "aw-2"}
	for _, id := range ids {
		startFleetWorker(t, ts.URL, id, fleetProblem)
	}
	waitFleet(t, srv.Coordinator(), len(ids))

	fleet := fleetBuild(t, ts.URL, BuildRequest{
		Model: "ad-fleet", Strategy: StrategyAdaptive, Horizon: 2, Seed: 1, Pool: PoolCluster,
	})
	done := pollJob(t, ts.URL, fleet.ID)
	if done.State != string(JobDone) {
		t.Fatalf("adaptive fleet build did not finish: %+v", done)
	}
	if done.Adaptive == nil || done.Adaptive.PointsSimulated == 0 {
		t.Fatalf("adaptive fleet build lost its stats: %+v", done)
	}

	local := fleetBuild(t, ts.URL, BuildRequest{
		Model: "ad-local", Strategy: StrategyAdaptive, Horizon: 2, Seed: 1, Workers: 2,
	})
	if ld := pollJob(t, ts.URL, local.ID); ld.State != string(JobDone) {
		t.Fatalf("adaptive local build did not finish: %+v", ld)
	}
	sameModelData(t, srv, "ad-fleet", "ad-local")

	// The fleet actually simulated the rounds: completed points across
	// workers equal the adaptive build's totals (fleet + local runs).
	total := 0
	for _, w := range srv.Coordinator().Workers() {
		total += w.CompletedPoints
	}
	if total != done.Adaptive.PointsSimulated {
		t.Fatalf("fleet completed %d points, adaptive build claims %d", total, done.Adaptive.PointsSimulated)
	}
}
