package serve

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

// blockingProblem returns a factory whose simulator stalls until release
// is closed (or aborts when quit is closed), with responses that vary
// across the design so the fit stays well-posed. It makes queue and
// shutdown behaviour deterministic without timing games.
func blockingProblem(release, quit chan struct{}) ProblemFactory {
	return func(amp, horizon float64) *core.Problem {
		p := core.StandardProblem(amp, horizon)
		p.Engine = func(d sim.Design, cfg sim.Config) (*sim.Result, error) {
			select {
			case <-release:
			case <-quit:
				return nil, errAborted
			}
			r := &sim.Result{
				AvgHarvestedPower: d.Node.Period * 1e-6,
				StoredEnergyEnd:   d.Store.C,
				FinalStoreV:       3,
				UptimeFraction:    d.Store.C * 5,
				NetEnergyMargin:   1e-3 * d.Node.Period,
			}
			r.Node.Packets = int(d.Node.Period)
			r.Node.FirstTxTime = d.Node.Period / 2
			return r, nil
		}
		return p
	}
}

var errAborted = &abortError{}

type abortError struct{}

func (*abortError) Error() string { return "engine aborted by test" }

func waitState(t *testing.T, m *JobManager, id string, want JobState) JobView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		j, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if JobState(j.State) == want {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, j.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestJobQueueBounds: one job runs, queueCap jobs wait, the next is
// rejected with ErrQueueFull; at shutdown the queued job is cancelled
// while the in-flight one drains to completion.
func TestJobQueueBounds(t *testing.T) {
	release := make(chan struct{})
	quit := make(chan struct{})
	defer close(quit)

	reg := NewRegistry()
	m := NewJobManager(JobManagerConfig{Registry: reg, Problem: blockingProblem(release, quit), QueueCap: 1})

	req := BuildRequest{Model: "q", Design: "ccf", Horizon: 1}
	j1, err := m.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j1.ID, JobRunning)

	j2, err := m.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(context.Background(), req); err != ErrQueueFull {
		t.Fatalf("third submit: got %v, want ErrQueueFull", err)
	}

	// Shutdown in the background: it cancels the queued job immediately
	// and waits for the running one, which we then release.
	done := make(chan struct{})
	go func() {
		m.Shutdown(30 * time.Second)
		close(done)
	}()
	waitState(t, m, j2.ID, JobCanceled)
	close(release)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("shutdown never drained")
	}
	if got := waitState(t, m, j1.ID, JobDone); got.Runs == 0 {
		t.Fatalf("drained job carries no stats: %+v", got)
	}
	if _, ok := reg.Get("q"); !ok {
		t.Fatal("drained build was not registered")
	}

	// Post-shutdown submits are refused.
	if _, err := m.Submit(context.Background(), req); err == nil {
		t.Fatal("submit after shutdown must fail")
	}
	// Shutdown is idempotent.
	m.Shutdown(time.Second)
}

// TestShutdownCancelsInFlight: a build that outlives the grace period has
// its context cancelled and reports canceled, not done.
func TestShutdownCancelsInFlight(t *testing.T) {
	release := make(chan struct{}) // never closed: the build can't finish on its own
	quit := make(chan struct{})

	reg := NewRegistry()
	m := NewJobManager(JobManagerConfig{Registry: reg, Problem: blockingProblem(release, quit), QueueCap: 1})
	j, err := m.Submit(context.Background(), BuildRequest{Model: "c", Design: "ccf", Horizon: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j.ID, JobRunning)

	done := make(chan struct{})
	go func() {
		m.Shutdown(20 * time.Millisecond)
		close(done)
	}()
	// Past the grace period the manager cancels the build context; the
	// stalled engine calls are then aborted by the test hook, standing in
	// for a simulator run finishing after the cancel.
	time.Sleep(60 * time.Millisecond)
	close(quit)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("shutdown hung on a cancelled build")
	}
	got, ok := m.Get(j.ID)
	if !ok {
		t.Fatal("job lost")
	}
	if got.State != string(JobCanceled) {
		t.Fatalf("job state %s, want canceled (%+v)", got.State, got)
	}
	if _, ok := reg.Get("c"); ok {
		t.Fatal("cancelled build must not register a model")
	}
}

// TestSubmitDefaults: zero-valued request fields pick up the documented
// defaults and an empty model name is rejected.
func TestSubmitDefaults(t *testing.T) {
	release := make(chan struct{})
	quit := make(chan struct{})
	defer close(quit)
	close(release) // run immediately

	reg := NewRegistry()
	m := NewJobManager(JobManagerConfig{Registry: reg, Problem: blockingProblem(release, quit), QueueCap: 0})
	defer m.Shutdown(10 * time.Second)

	if _, err := m.Submit(context.Background(), BuildRequest{}); err == nil {
		t.Fatal("empty model name must be rejected")
	}
	j, err := m.Submit(context.Background(), BuildRequest{Model: "d", Horizon: 1})
	if err != nil {
		t.Fatal(err)
	}
	if j.Design != "ccf" || j.Amp != 0.6 {
		t.Fatalf("defaults not applied: %+v", j)
	}
	final := waitState(t, m, j.ID, JobDone)
	if final.Runs != 27 { // CCF, k=4, 3 centre runs
		t.Fatalf("CCF design size %d, want 27", final.Runs)
	}
}
