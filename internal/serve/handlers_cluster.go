package serve

import (
	"net/http"

	"repro/internal/cluster"
)

// The cluster endpoints are thin wrappers over the coordinator's typed
// work protocol, mounted through the same instrumented endpoint table as
// the rest of v1, so fleet traffic carries trace IDs and shows up in
// /metrics and the access log like every other request. Every protocol
// request carries a proto_version (see cluster.ProtoVersion); a mismatch
// is rejected with the typed proto_mismatch code before any state changes.

// checkClusterProto gates a protocol request on its carried version.
func checkClusterProto(w http.ResponseWriter, v cluster.Versioned) bool {
	if err := cluster.CheckProto(v); err != nil {
		writeError(w, http.StatusBadRequest, codeProtoMismatch, "%v", err)
		return false
	}
	return true
}

func (s *Server) handleClusterRegister(w http.ResponseWriter, r *http.Request) {
	var req cluster.RegisterRequest
	if !s.decodeJSON(w, r, &req) || !checkClusterProto(w, req) {
		return
	}
	resp, err := s.coord.Register(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleClusterHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req cluster.HeartbeatRequest
	if !s.decodeJSON(w, r, &req) || !checkClusterProto(w, req) {
		return
	}
	writeJSON(w, http.StatusOK, s.coord.Heartbeat(req))
}

func (s *Server) handleClusterLease(w http.ResponseWriter, r *http.Request) {
	var req cluster.LeaseRequest
	if !s.decodeJSON(w, r, &req) || !checkClusterProto(w, req) {
		return
	}
	writeJSON(w, http.StatusOK, s.coord.Lease(req))
}

func (s *Server) handleClusterResults(w http.ResponseWriter, r *http.Request) {
	var req cluster.ResultsRequest
	if !s.decodeJSON(w, r, &req) || !checkClusterProto(w, req) {
		return
	}
	writeJSON(w, http.StatusOK, s.coord.Results(req))
}

func (s *Server) handleClusterDeregister(w http.ResponseWriter, r *http.Request) {
	var req cluster.DeregisterRequest
	if !s.decodeJSON(w, r, &req) || !checkClusterProto(w, req) {
		return
	}
	writeJSON(w, http.StatusOK, s.coord.Deregister(req))
}

func (s *Server) handleClusterWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, cluster.WorkersResponse{Workers: s.coord.Workers()})
}

func (s *Server) handleClusterCache(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.coord.CacheState())
}
