// Package serve is the surrogate-serving daemon behind cmd/ehdoed: a
// thread-safe registry of fitted response-surface sets, a JSON API that
// answers predictions, sweeps, optimizations and validations on them
// "practically instantly", and an async job runner that executes the
// expensive DoE builds in the background and hot-swaps the finished
// surfaces into the registry.
//
// The package splits the paper's flow along its natural production seam:
// building surfaces is the training side (slow, simulator-bound,
// parallelized, queued), serving them is the inference side (fast,
// allocation-free batch evaluation, safe under heavy concurrency).
package serve

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
)

// HealthResponse is the GET /healthz body. Status is "ok" while serving
// and "draining" (with HTTP 503) once shutdown has begun. QueueDepth and
// QueueCap report build-queue pressure, so load balancers and operators
// can see saturation coming before submits start bouncing.
type HealthResponse struct {
	Status        string  `json:"status"`
	Models        int     `json:"models"`
	UptimeSeconds float64 `json:"uptime_s"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCap      int     `json:"queue_cap"`
}

// ModelsResponse is the GET /v1/models body.
type ModelsResponse struct {
	Models []ModelSummary `json:"models"`
}

// BuildAccepted is the 202 body of POST /v1/build: the freshly queued job.
type BuildAccepted struct {
	Job JobView `json:"job"`
}

// FactorView is the JSON shape of a design factor.
type FactorView struct {
	Name string  `json:"name"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	Unit string  `json:"unit,omitempty"`
}

// ModelSummary is the list-view of a registered surface set.
type ModelSummary struct {
	Name      string   `json:"name"`
	Design    string   `json:"design"`
	Runs      int      `json:"runs"`
	Horizon   float64  `json:"horizon_s"`
	Responses []string `json:"responses"`
}

// ModelDetail adds the factor ranges and fit diagnostics. PRESS and R2Pred
// are the leave-one-out cross-validation diagnostics; models saved by older
// releases lack them and omit the maps.
type ModelDetail struct {
	ModelSummary
	Factors []FactorView       `json:"factors"`
	R2      map[string]float64 `json:"r2"`
	RMSE    map[string]float64 `json:"rmse"`
	PRESS   map[string]float64 `json:"press,omitempty"`
	R2Pred  map[string]float64 `json:"r2_pred,omitempty"`
	HasData bool               `json:"has_data"`
}

func summarize(name string, ss *core.SavedSurfaces) ModelSummary {
	out := ModelSummary{
		Name:    name,
		Design:  ss.DesignName,
		Runs:    ss.Runs,
		Horizon: ss.Horizon,
	}
	for _, id := range ss.Responses() {
		out.Responses = append(out.Responses, string(id))
	}
	return out
}

func detail(name string, ss *core.SavedSurfaces) ModelDetail {
	d := ModelDetail{
		ModelSummary: summarize(name, ss),
		R2:           make(map[string]float64, len(ss.R2)),
		RMSE:         make(map[string]float64, len(ss.RMSE)),
		HasData:      ss.HasData(),
	}
	for _, f := range ss.Factors {
		d.Factors = append(d.Factors, FactorView{Name: f.Name, Min: f.Min, Max: f.Max, Unit: f.Unit})
	}
	for id, v := range ss.R2 {
		d.R2[string(id)] = v
	}
	for id, v := range ss.RMSE {
		d.RMSE[string(id)] = v
	}
	if len(ss.PRESS) > 0 {
		d.PRESS = make(map[string]float64, len(ss.PRESS))
		for id, v := range ss.PRESS {
			d.PRESS[string(id)] = v
		}
	}
	if len(ss.R2Pred) > 0 {
		d.R2Pred = make(map[string]float64, len(ss.R2Pred))
		for id, v := range ss.R2Pred {
			d.R2Pred[string(id)] = v
		}
	}
	return d
}

// PredictRequest asks for surface predictions at one point or a batch of
// points, in natural (default) or coded units.
type PredictRequest struct {
	Model string `json:"model"`
	// Units is "natural" (default) or "coded".
	Units  string      `json:"units,omitempty"`
	Point  []float64   `json:"point,omitempty"`
	Points [][]float64 `json:"points,omitempty"`
	// Responses restricts the evaluated responses; empty means all.
	Responses []string `json:"responses,omitempty"`
}

// PointPrediction is every requested response evaluated at one point.
type PointPrediction struct {
	Point  []float64          `json:"point"`
	Values map[string]float64 `json:"values"`
}

// PredictResponse carries per-point results in request order.
type PredictResponse struct {
	Model   string            `json:"model"`
	Units   string            `json:"units"`
	Results []PointPrediction `json:"results"`
}

// SweepRequest asks for a 1-D sweep of one response over one factor's full
// natural range, holding the other factors at the given values (natural
// units; unset factors sit at their range midpoint).
type SweepRequest struct {
	Model    string             `json:"model"`
	Response string             `json:"response"`
	Factor   string             `json:"factor"`
	Points   int                `json:"points,omitempty"`
	At       map[string]float64 `json:"at,omitempty"`
}

// SweepResponse is the sampled curve in natural units.
type SweepResponse struct {
	Model    string    `json:"model"`
	Response string    `json:"response"`
	Factor   string    `json:"factor"`
	Unit     string    `json:"unit,omitempty"`
	X        []float64 `json:"x"`
	Y        []float64 `json:"y"`
}

// OptimizeRequest asks for the surface optimum of one response
// (multi-start Nelder–Mead in the coded box).
type OptimizeRequest struct {
	Model    string `json:"model"`
	Response string `json:"response"`
	Minimize bool   `json:"minimize,omitempty"`
	Starts   int    `json:"starts,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
}

// OptimizeResponse reports the optimum in both unit systems.
type OptimizeResponse struct {
	Model     string    `json:"model"`
	Response  string    `json:"response"`
	Minimize  bool      `json:"minimize"`
	Natural   []float64 `json:"natural"`
	Coded     []float64 `json:"coded"`
	Predicted float64   `json:"predicted"`
	Evals     int       `json:"evals"`
}

// ValidateRequest asks for confirming simulations: n fresh random points
// simulated and compared against the surface predictions. Excite and
// Horizon make the simulated problem explicit; omitted they fall back to
// the legacy implicit behaviour (amp, then 0.6; the model's horizon).
type ValidateRequest struct {
	Model string `json:"model"`
	N     int    `json:"n,omitempty"`
	Seed  int64  `json:"seed,omitempty"`
	// Amp is the legacy name for the excitation amplitude; Excite wins
	// when both are set.
	Amp     float64 `json:"amp,omitempty" spec:"deprecated"`
	Excite  float64 `json:"excite,omitempty"`
	Horizon float64 `json:"horizon_s,omitempty"`
	// Engine selects the simulation engine for the confirming runs:
	// "fast" (default), "batch" (lockstep lanes, bit-identical to fast)
	// or "reference" (the dense-step oracle). Unknown values are rejected
	// with code bad_field.
	Engine string `json:"engine,omitempty"`
}

// ValidateRow is the accuracy summary of one response. PRESS and R2Pred
// echo the model's training leave-one-out diagnostics, so the fresh-point
// errors can be read against the generalization the fit predicted for
// itself; models saved by older releases lack them and report zero.
type ValidateRow struct {
	Response   string  `json:"response"`
	MeanAbsErr float64 `json:"mean_abs_err"`
	MaxAbsErr  float64 `json:"max_abs_err"`
	PRESS      float64 `json:"press,omitempty"`
	R2Pred     float64 `json:"r2_pred,omitempty"`
}

// ValidateResponse reports per-response surface accuracy at the fresh
// points, plus the simulation cost that buying this confirmation took.
// Engine echoes the engine that actually ran the confirming simulations.
type ValidateResponse struct {
	Model     string        `json:"model"`
	N         int           `json:"n"`
	Engine    string        `json:"engine"`
	Rows      []ValidateRow `json:"rows"`
	SimMillis float64       `json:"sim_ms"`
}

// BuildRequest enqueues an asynchronous DoE build: run the designed
// experiment on the simulator, fit the surfaces, and register them under
// Model. Design names follow core.DesignNames (default "ccf").
type BuildRequest struct {
	Model string `json:"model"`
	// Strategy selects how the experiment is sized: "fixed" (default)
	// simulates the whole named design up front — bit-identical to previous
	// releases — while "adaptive" grows a D-optimal design sequentially and
	// stops as soon as the surfaces converge, typically well under the fixed
	// design's run count. Adaptive builds choose their own design, so
	// "design" and "runs" must be left unset. Unknown values are rejected
	// with code bad_field.
	Strategy string  `json:"strategy,omitempty"`
	Design   string  `json:"design,omitempty"`
	Runs     int     `json:"runs,omitempty"`
	Horizon  float64 `json:"horizon_s,omitempty"`
	// Amp is the legacy name for the excitation amplitude; Excite wins
	// when both are set (default 0.6).
	Amp     float64 `json:"amp,omitempty" spec:"deprecated"`
	Excite  float64 `json:"excite,omitempty"`
	Seed    int64   `json:"seed,omitempty"`
	Workers int     `json:"workers,omitempty"`
	// Pool selects where the design points run: "local" (default) uses the
	// in-process worker pool sized by Workers, "cluster" shards the points
	// across the registered simnode worker fleet.
	Pool string `json:"pool,omitempty"`
	// Engine selects the simulation engine for the build's design runs:
	// "fast" (default), "batch" (the lockstep K-lane scheduler, bit-
	// identical to fast) or "reference". The cluster pool only speaks the
	// fast engine. Unknown values are rejected with code bad_field.
	Engine string `json:"engine,omitempty"`
	// TimeoutS bounds the whole build in seconds; 0 means the server
	// default, and the server's configured maximum always caps it.
	TimeoutS float64 `json:"timeout_s,omitempty"`
}

// Values of BuildRequest.Pool.
const (
	PoolLocal   = "local"
	PoolCluster = "cluster"
)

// Values of BuildRequest.Engine and ValidateRequest.Engine, mirroring the
// engine names internal/core understands.
const (
	EngineFast      = core.EngineFast
	EngineBatch     = core.EngineBatch
	EngineReference = core.EngineReference
)

// Values of BuildRequest.Strategy, mirroring the strategy names
// internal/core understands.
const (
	StrategyFixed    = core.StrategyFixed
	StrategyAdaptive = core.StrategyAdaptive
)

// errBadEngine marks a request whose engine field names no known engine.
// The HTTP layer maps it to code bad_field — the same class as an unknown
// JSON field, since both are contract violations a client must fix.
var errBadEngine = errors.New("serve: unknown engine")

// errBadStrategy marks a request whose strategy field names no known build
// strategy; like errBadEngine it maps to code bad_field.
var errBadStrategy = errors.New("serve: unknown strategy")

// normalizeStrategy validates a strategy selection and resolves the default.
func normalizeStrategy(strategy string) (string, error) {
	switch strategy {
	case "":
		return StrategyFixed, nil
	case StrategyFixed, StrategyAdaptive:
		return strategy, nil
	}
	return "", fmt.Errorf("%w %q (want %q or %q)",
		errBadStrategy, strategy, StrategyFixed, StrategyAdaptive)
}

// normalizeEngine validates an engine selection and resolves the default.
func normalizeEngine(engine string) (string, error) {
	switch engine {
	case "":
		return EngineFast, nil
	case EngineFast, EngineBatch, EngineReference:
		return engine, nil
	}
	return "", fmt.Errorf("%w %q (want %q, %q or %q)",
		errBadEngine, engine, EngineFast, EngineBatch, EngineReference)
}

// JobView is the JSON snapshot of a build job. TraceID is the request ID
// of the /v1/build call that enqueued it — the same ID threads the access
// log, the job transition logs and the simulation-run logs.
type JobView struct {
	ID         string             `json:"id"`
	TraceID    string             `json:"trace_id,omitempty"`
	Model      string             `json:"model"`
	Strategy   string             `json:"strategy,omitempty"`
	Design     string             `json:"design"`
	State      string             `json:"state"`
	Runs       int                `json:"runs,omitempty"`
	Horizon    float64            `json:"horizon_s"`
	Amp        float64            `json:"amp"`
	Seed       int64              `json:"seed"`
	Workers    int                `json:"workers,omitempty"`
	Pool       string             `json:"pool,omitempty"`
	Engine     string             `json:"engine,omitempty"`
	TimeoutS   float64            `json:"timeout_s,omitempty"`
	Error      string             `json:"error,omitempty"`
	ErrorCode  string             `json:"error_code,omitempty"`
	EnqueuedAt string             `json:"enqueued_at,omitempty"`
	StartedAt  string             `json:"started_at,omitempty"`
	FinishedAt string             `json:"finished_at,omitempty"`
	SimMillis  float64            `json:"sim_ms,omitempty"`
	Speedup    float64            `json:"speedup,omitempty"`
	R2         map[string]float64 `json:"r2,omitempty"`
	// Retries and PanicsRecovered count the fault-recovery events of the
	// build's design runs; populated for finished jobs, including failed
	// ones.
	Retries         int `json:"retries,omitempty"`
	PanicsRecovered int `json:"panics_recovered,omitempty"`
	// Batch carries the batch scheduler's statistics (lanes, cache peels,
	// amortized rebuilds) when the build ran under the batch engine.
	Batch *core.BatchStats `json:"batch,omitempty"`
	// Adaptive carries the sequential build's per-round convergence record
	// and point accounting when the build ran under the adaptive strategy;
	// populated for finished jobs, including failed ones.
	Adaptive *core.AdaptiveStats `json:"adaptive,omitempty"`
}

// JobsResponse is a page of job snapshots. NextAfter, when set, is the
// cursor for the next page (`?after=<id>`).
type JobsResponse struct {
	Jobs      []JobView `json:"jobs"`
	NextAfter string    `json:"next_after,omitempty"`
}

func stamp(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

// errorBody is the uniform error payload: every non-2xx response carries a
// human-readable message plus a machine-readable code from the set below.
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// Machine-readable error codes carried by errorBody.Code.
const (
	codeInvalidRequest = "invalid_request" // malformed body, bad field values
	codeBadField       = "bad_field"       // request carries an unknown field
	codeProtoMismatch  = "proto_mismatch"  // cluster request speaks the wrong protocol version
	codeNotFound       = "not_found"       // unknown model or job
	codeConflict       = "conflict"        // request inconsistent with server state
	codeQueueFull      = "queue_full"      // build queue at capacity
	codeOverloaded     = "overloaded"      // admission control shed the request (429 + Retry-After)
	codeShuttingDown   = "shutting_down"   // server is draining
	codeClientClosed   = "client_closed"   // client disconnected mid-work
	codeNumericInvalid = "numeric_invalid" // simulation produced NaN/Inf responses
	codeInternal       = "internal"        // unexpected server-side failure
)

// Machine-readable codes carried by JobView.ErrorCode for failed or
// canceled jobs. Empty means a plain failure (validation, fit, or an
// unretryable simulation error).
const (
	jobCodeTimeout   = "timeout"         // build exceeded its per-job deadline
	jobCodePanic     = "panic"           // a simulation panic exhausted the retry budget
	jobCodeCanceled  = "canceled"        // server shutdown cancelled the job
	jobCodeNumeric   = "numeric_invalid" // a simulation produced NaN/Inf responses
	jobCodeNoWorkers = "no_workers"      // cluster build stalled with no live workers
)
