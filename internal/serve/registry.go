package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
)

// Registry is a thread-safe collection of named, immutable surface sets.
// Readers (the predict/sweep/optimize hot paths) take a shared lock only
// long enough to fetch the pointer; a concurrent upload swaps the pointer
// atomically under the write lock, so in-flight requests keep the version
// they started with and new requests see the new one — hot-reload without
// a stall.
type Registry struct {
	mu     sync.RWMutex
	models map[string]*core.SavedSurfaces
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{models: make(map[string]*core.SavedSurfaces)}
}

// Get fetches a model by name.
func (r *Registry) Get(name string) (*core.SavedSurfaces, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ss, ok := r.models[name]
	return ss, ok
}

// Set registers (or atomically replaces) a model. The surfaces must not be
// mutated after registration.
func (r *Registry) Set(name string, ss *core.SavedSurfaces) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.models[name] = ss
}

// Delete removes a model, reporting whether it existed.
func (r *Registry) Delete(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.models[name]
	delete(r.models, name)
	return ok
}

// Names lists the registered model names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.models))
	for name := range r.models {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Len reports the number of registered models.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.models)
}

// LoadDir registers every *.json saved-surfaces file in dir under its
// basename (sans extension). It returns the loaded names; a file that
// fails to decode aborts the load, since serving a partial registry
// silently is worse than failing fast at startup.
func (r *Registry) LoadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: reading model dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("serve: reading %s: %w", path, err)
		}
		ss, err := core.DecodeSurfaces(data)
		if err != nil {
			return nil, fmt.Errorf("serve: loading %s: %w", path, err)
		}
		name := strings.TrimSuffix(e.Name(), ".json")
		r.Set(name, ss)
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}
