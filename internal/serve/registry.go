package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Registry is a copy-on-write collection of named, immutable surface
// sets. The serving hot paths (predict/sweep/optimize) read a snapshot
// pointer with one atomic load — no lock, no reader-counter cache-line
// contention under heavy concurrency — while writers (model upload,
// delete, finished builds) copy the map under a mutex and swap the
// pointer. In-flight requests keep the version they started with; new
// requests see the new one: hot-reload without a stall.
//
// Every mutation stamps the touched model with a fresh ETag drawn from a
// monotonic version counter. The response memo keys on that ETag, so a
// hot-swap atomically invalidates every memoized response of the old
// model: the new tag never matches the old keys, which age out of the
// LRU. A deleted-then-reuploaded model gets a new tag too.
type Registry struct {
	mu   sync.Mutex // serializes writers; readers never take it
	snap atomic.Pointer[registrySnap]
	ver  atomic.Uint64
}

type registrySnap struct {
	models map[string]registryEntry
}

type registryEntry struct {
	ss   *core.SavedSurfaces
	etag string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	r.snap.Store(&registrySnap{models: map[string]registryEntry{}})
	return r
}

// Get fetches a model by name. Lock-free.
func (r *Registry) Get(name string) (*core.SavedSurfaces, bool) {
	e, ok := r.snap.Load().models[name]
	return e.ss, ok
}

// GetTagged fetches a model and its current ETag — the memo key
// ingredient that changes on every swap. Lock-free.
func (r *Registry) GetTagged(name string) (*core.SavedSurfaces, string, bool) {
	e, ok := r.snap.Load().models[name]
	return e.ss, e.etag, ok
}

// mutate applies fn to a private copy of the model map and publishes it.
func (r *Registry) mutate(fn func(models map[string]registryEntry)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.snap.Load().models
	next := make(map[string]registryEntry, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	fn(next)
	r.snap.Store(&registrySnap{models: next})
}

// Set registers (or atomically replaces) a model under a fresh ETag. The
// surfaces must not be mutated after registration.
func (r *Registry) Set(name string, ss *core.SavedSurfaces) {
	etag := fmt.Sprintf("%s@%d", name, r.ver.Add(1))
	r.mutate(func(models map[string]registryEntry) {
		models[name] = registryEntry{ss: ss, etag: etag}
	})
}

// Delete removes a model, reporting whether it existed.
func (r *Registry) Delete(name string) bool {
	var existed bool
	r.mutate(func(models map[string]registryEntry) {
		_, existed = models[name]
		delete(models, name)
	})
	return existed
}

// Names lists the registered model names, sorted. Lock-free.
func (r *Registry) Names() []string {
	models := r.snap.Load().models
	out := make([]string, 0, len(models))
	for name := range models {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Len reports the number of registered models. Lock-free.
func (r *Registry) Len() int {
	return len(r.snap.Load().models)
}

// LoadDir registers every *.json saved-surfaces file in dir under its
// basename (sans extension). It returns the loaded names; a file that
// fails to decode aborts the load, since serving a partial registry
// silently is worse than failing fast at startup.
func (r *Registry) LoadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: reading model dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("serve: reading %s: %w", path, err)
		}
		ss, err := core.DecodeSurfaces(data)
		if err != nil {
			return nil, fmt.Errorf("serve: loading %s: %w", path, err)
		}
		name := strings.TrimSuffix(e.Name(), ".json")
		r.Set(name, ss)
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}
