package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestSpecCoversEveryEndpoint: GET /v1/spec is generated from the same
// table that registers the routes, so every served endpoint must appear,
// with schemas reflected from the typed structs.
func TestSpecCoversEveryEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	resp, body := get(t, ts.URL+"/v1/spec")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("spec status %d: %s", resp.StatusCode, body)
	}
	var spec SpecResponse
	if err := json.Unmarshal(body, &spec); err != nil {
		t.Fatal(err)
	}
	if spec.Version != "v1" {
		t.Fatalf("spec version %q", spec.Version)
	}
	listed := map[string]EndpointView{}
	for _, ep := range spec.Endpoints {
		listed[ep.Method+" "+ep.Path] = ep
	}
	for _, ep := range srv.endpoints() {
		if _, ok := listed[ep.Method+" "+ep.Path]; !ok {
			t.Errorf("spec missing endpoint %s %s", ep.Method, ep.Path)
		}
	}

	// The build request schema is reflected, not hand-written: excite is a
	// plain number, amp carries the deprecated marker.
	build, ok := listed["POST /v1/build"]
	if !ok || build.Request == nil {
		t.Fatal("spec has no POST /v1/build request schema")
	}
	fields := map[string]FieldSpec{}
	for _, f := range build.Request.Fields {
		fields[f.Name] = f
	}
	if f := fields["excite"]; f.Type != "number" || f.Deprecated {
		t.Fatalf("excite field spec wrong: %+v", f)
	}
	if f := fields["amp"]; !f.Deprecated {
		t.Fatalf("amp field not marked deprecated: %+v", f)
	}

	// The error vocabulary includes the unknown-field code, and the
	// envelope schema names both wire fields.
	codes := map[string]bool{}
	for _, c := range spec.ErrorCodes {
		codes[c.Code] = true
	}
	for _, want := range []string{"invalid_request", "bad_field", "not_found", "queue_full", "shutting_down", "internal"} {
		if !codes[want] {
			t.Errorf("spec missing error code %q", want)
		}
	}
	if spec.ErrorEnvelope == nil || len(spec.ErrorEnvelope.Fields) != 2 {
		t.Fatalf("error envelope schema wrong: %+v", spec.ErrorEnvelope)
	}
}

// TestUnknownFieldRejected: typed decoding refuses fields outside the
// contract with the dedicated bad_field code — a typo like "exite" fails
// loudly instead of silently defaulting.
func TestUnknownFieldRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/build", map[string]any{
		"model": "m", "exite": 0.7,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field status %d: %s", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Code != codeBadField {
		t.Fatalf("unknown field code %q, want %q (%s)", eb.Code, codeBadField, eb.Error)
	}
}

// TestAmpAliasDeprecationHeader: requests resolved through the legacy amp
// field get Deprecation + Sunset response headers and bump the labelled
// deprecated-field counter; the stable excite spelling does neither.
func TestAmpAliasDeprecationHeader(t *testing.T) {
	release := make(chan struct{})
	quit := make(chan struct{})
	defer close(quit)
	close(release)
	_, ts := newTestServer(t, Config{Problem: blockingProblem(release, quit)})

	resp, body := postJSON(t, ts.URL+"/v1/build", BuildRequest{Model: "a", Horizon: 1, Amp: 0.5})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("legacy build status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Deprecation") == "" {
		t.Fatal("legacy amp build carries no Deprecation header")
	}
	if resp.Header.Get("Sunset") == "" {
		t.Fatal("legacy amp build carries no Sunset header")
	}

	resp, body = postJSON(t, ts.URL+"/v1/build", BuildRequest{Model: "b", Horizon: 1, Excite: 0.5})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("excite build status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Deprecation") != "" || resp.Header.Get("Sunset") != "" {
		t.Fatal("stable excite build must not carry deprecation headers")
	}

	// Exactly the one legacy request was counted, labelled by field.
	_, body = get(t, ts.URL+"/metrics")
	if want := `ehdoed_deprecated_field_total{field="amp"} 1`; !strings.Contains(string(body), want) {
		t.Fatalf("/metrics misses %q", want)
	}
}

// TestStrictAPIRejectsAmp: with -strict-api the legacy alias is no longer
// resolved — build and validate answer 400 with the typed bad_field code,
// while the stable spelling is untouched.
func TestStrictAPIRejectsAmp(t *testing.T) {
	release := make(chan struct{})
	quit := make(chan struct{})
	defer close(quit)
	close(release)
	srv, ts := newTestServer(t, Config{Problem: blockingProblem(release, quit), StrictAPI: true})
	srv.Registry().Set("m", fixture(t))

	resp, body := postJSON(t, ts.URL+"/v1/build", BuildRequest{Model: "a", Horizon: 1, Amp: 0.5})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("strict legacy build status %d: %s, want 400", resp.StatusCode, body)
	}
	var e errorBody
	unmarshal(t, body, &e)
	if e.Code != codeBadField || !strings.Contains(e.Error, "amp") {
		t.Fatalf("strict legacy build error %+v, want code %q naming the field", e, codeBadField)
	}

	resp, body = postJSON(t, ts.URL+"/v1/validate", ValidateRequest{Model: "m", N: 2, Amp: 0.5})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("strict legacy validate status %d: %s, want 400", resp.StatusCode, body)
	}
	unmarshal(t, body, &e)
	if e.Code != codeBadField {
		t.Fatalf("strict legacy validate code %q, want %q", e.Code, codeBadField)
	}

	resp, body = postJSON(t, ts.URL+"/v1/build", BuildRequest{Model: "b", Horizon: 1, Excite: 0.5})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("strict excite build status %d: %s, want 202", resp.StatusCode, body)
	}
}
