package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/doe"
	"repro/internal/obs"
	"repro/internal/rsm"
	"repro/internal/sim"
)

// JobState is the lifecycle of a build job.
type JobState string

const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Job is one asynchronous DoE build. Fields are guarded by the owning
// manager's mutex; handlers only ever see View snapshots.
type Job struct {
	ID    string
	Trace string // request ID of the submitting /v1/build call
	Req   BuildRequest

	State    JobState
	Error    string
	Code     string // machine-readable failure class (jobCode*)
	Runs     int    // design size, known once the job starts
	Timeout  time.Duration
	Enqueued time.Time
	Started  time.Time
	Finished time.Time
	SimTime  time.Duration
	Speedup  float64
	R2       map[string]float64
	Retries  int                 // design-run attempts retried after transient faults
	Panics   int                 // simulation panics recovered into errors
	Batch    *core.BatchStats    // batch-scheduler stats when the batch engine ran
	Adaptive *core.AdaptiveStats // per-round record when the adaptive strategy ran
}

// view renders a snapshot; callers must hold the manager lock.
func (j *Job) view() JobView {
	v := JobView{
		ID:         j.ID,
		TraceID:    j.Trace,
		Model:      j.Req.Model,
		Strategy:   j.Req.Strategy,
		Design:     j.Req.Design,
		State:      string(j.State),
		Runs:       j.Runs,
		Horizon:    j.Req.Horizon,
		Amp:        j.Req.Amp,
		Seed:       j.Req.Seed,
		Workers:    j.Req.Workers,
		Pool:       j.Req.Pool,
		Engine:     j.Req.Engine,
		Batch:      j.Batch,
		Adaptive:   j.Adaptive,
		Error:      j.Error,
		ErrorCode:  j.Code,
		EnqueuedAt: stamp(j.Enqueued),
		StartedAt:  stamp(j.Started),
		FinishedAt: stamp(j.Finished),
		Speedup:    j.Speedup,

		Retries:         j.Retries,
		PanicsRecovered: j.Panics,
	}
	if j.Timeout > 0 {
		v.TimeoutS = j.Timeout.Seconds()
	}
	if j.SimTime > 0 {
		v.SimMillis = float64(j.SimTime.Microseconds()) / 1e3
	}
	if len(j.R2) > 0 {
		v.R2 = make(map[string]float64, len(j.R2))
		for k, r2 := range j.R2 {
			v.R2[k] = r2
		}
	}
	return v
}

// ProblemFactory instantiates the design problem a build simulates;
// cmd/ehdoed uses core.StandardProblem, tests substitute faster problems.
type ProblemFactory func(amp, horizon float64) *core.Problem

// JobManagerConfig configures a JobManager.
type JobManagerConfig struct {
	// Registry receives finished surfaces under the requested model name;
	// nil means a fresh empty registry.
	Registry *Registry
	// Problem instantiates the problem a build simulates; nil means
	// core.StandardProblem.
	Problem ProblemFactory
	// QueueCap bounds the jobs waiting behind the running one (default 8).
	QueueCap int
	// Log receives job-transition lines; nil discards them.
	Log *slog.Logger
	// Finished, when set, counts terminal job states (labelled done /
	// failed / canceled).
	Finished *obs.CounterVec
	// JobTimeout bounds each build; it is both the default when a request
	// sets no timeout_s and the cap when it does. <=0 means unbounded.
	JobTimeout time.Duration
	// Faults, when set, receives design-run retry/panic-recovery counts
	// from builds (via obs.WithFaultStats), so the server can expose them
	// as metrics.
	Faults *obs.FaultStats
	// Cluster, when set, executes builds that request pool "cluster" by
	// sharding the design points across the registered worker fleet.
	Cluster *cluster.Coordinator
	// BatchLanes and BatchAmortized, when set, accumulate the batch
	// scheduler's lane and amortized-rebuild counts from finished builds.
	BatchLanes     *obs.Counter
	BatchAmortized *obs.Counter
	// BuildRounds, PointsSimulated and PointsSkipped, when set, accumulate
	// per-build point accounting from successful builds: rounds executed
	// (a fixed build counts one), design points actually simulated, and the
	// points an adaptive build avoided relative to the fixed reference.
	BuildRounds     *obs.Counter
	PointsSimulated *obs.Counter
	PointsSkipped   *obs.Counter
}

// JobManager owns a bounded queue of build jobs and a single build worker:
// DoE builds saturate the cores on their own via RunDesignContext, so
// running them one at a time maximizes per-build throughput and keeps the
// queue semantics obvious. Finished surfaces are registered (atomically
// swapped) into the registry under the requested model name.
type JobManager struct {
	registry   *Registry
	problem    ProblemFactory
	log        *slog.Logger
	finished   *obs.CounterVec
	jobTimeout time.Duration
	faults     *obs.FaultStats
	cluster    *cluster.Coordinator
	batchLanes *obs.Counter
	batchAmort *obs.Counter
	rounds     *obs.Counter
	ptsSim     *obs.Counter
	ptsSkip    *obs.Counter

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu     sync.Mutex
	closed bool
	nextID int
	jobs   map[string]*Job
	order  []string
	queue  chan *Job
}

// NewJobManager starts the build worker.
func NewJobManager(cfg JobManagerConfig) *JobManager {
	if cfg.QueueCap < 1 {
		cfg.QueueCap = 8
	}
	if cfg.Problem == nil {
		cfg.Problem = core.StandardProblem
	}
	if cfg.Registry == nil {
		cfg.Registry = NewRegistry()
	}
	if cfg.Log == nil {
		cfg.Log = obs.Nop()
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &JobManager{
		registry:   cfg.Registry,
		problem:    cfg.Problem,
		log:        cfg.Log,
		finished:   cfg.Finished,
		jobTimeout: cfg.JobTimeout,
		faults:     cfg.Faults,
		cluster:    cfg.Cluster,
		batchLanes: cfg.BatchLanes,
		batchAmort: cfg.BatchAmortized,
		rounds:     cfg.BuildRounds,
		ptsSim:     cfg.PointsSimulated,
		ptsSkip:    cfg.PointsSkipped,
		ctx:        ctx,
		cancel:     cancel,
		jobs:       make(map[string]*Job),
		queue:      make(chan *Job, cfg.QueueCap),
	}
	m.wg.Add(1)
	go m.worker()
	return m
}

// Submit validates and enqueues a build, returning its snapshot. The
// context's trace ID (obs.TraceID) is inherited by the job: the build
// worker logs every transition and simulation under it, so one request ID
// follows the build from HTTP accept to finished surfaces.
func (m *JobManager) Submit(ctx context.Context, req BuildRequest) (JobView, error) {
	if req.Model == "" {
		return JobView{}, fmt.Errorf("serve: build needs a model name")
	}
	// Strategy resolves to its explicit spelling up front, like Engine below.
	strategy, err := normalizeStrategy(req.Strategy)
	if err != nil {
		return JobView{}, err
	}
	req.Strategy = strategy
	if req.Strategy == StrategyAdaptive {
		// The sequential loop picks its own points and sizes itself; a
		// design name or run count here would be silently ignored, so both
		// are contract violations.
		if req.Design != "" {
			return JobView{}, fmt.Errorf("serve: adaptive builds choose their own design; drop design %q", req.Design)
		}
		if req.Runs != 0 {
			return JobView{}, fmt.Errorf("serve: adaptive builds size the design themselves; drop runs %d", req.Runs)
		}
		req.Design = StrategyAdaptive // job snapshots report what actually ran
	}
	if req.Design == "" {
		req.Design = "ccf"
	}
	if req.Horizon < 0 || req.Excite < 0 {
		return JobView{}, fmt.Errorf("serve: horizon_s %g and excite %g must be non-negative", req.Horizon, req.Excite)
	}
	if req.TimeoutS < 0 {
		return JobView{}, fmt.Errorf("serve: timeout_s %g must be non-negative", req.TimeoutS)
	}
	if req.Horizon == 0 {
		req.Horizon = 60
	}
	// Excite is the explicit spelling of the excitation amplitude; it wins
	// over the legacy Amp, and the resolved value lands in Amp so job
	// snapshots always report what was simulated.
	if req.Excite > 0 {
		req.Amp = req.Excite
	}
	if req.Amp <= 0 {
		req.Amp = 0.6
	}
	// Engine resolves to its explicit spelling up front, so job snapshots
	// always report the engine that actually runs the build.
	engine, err := normalizeEngine(req.Engine)
	if err != nil {
		return JobView{}, err
	}
	req.Engine = engine
	// Pool picks the execution fabric; fail fast when the cluster pool is
	// requested but cannot possibly serve the build.
	switch req.Pool {
	case "", PoolLocal:
	case PoolCluster:
		if m.cluster == nil {
			return JobView{}, fmt.Errorf("serve: pool %q: this server has no cluster coordinator", req.Pool)
		}
		if req.Engine != EngineFast {
			// The worker fleet runs the fast engine only; a silent engine
			// switch would misreport what was simulated.
			return JobView{}, fmt.Errorf("serve: pool %q only runs engine %q, not %q", req.Pool, EngineFast, req.Engine)
		}
		if m.cluster.LiveWorkers() == 0 {
			return JobView{}, fmt.Errorf("serve: pool %q: %w", req.Pool, cluster.ErrNoWorkers)
		}
	default:
		return JobView{}, fmt.Errorf("serve: unknown pool %q (want %q or %q)", req.Pool, PoolLocal, PoolCluster)
	}
	// Fail fast on an unknown design (or a problem too small for the
	// adaptive loop) instead of at run time.
	k := len(m.problem(req.Amp, req.Horizon).Factors)
	if req.Strategy == StrategyAdaptive {
		if k < 2 {
			return JobView{}, fmt.Errorf("serve: adaptive builds need ≥2 factors, the served problem has %d", k)
		}
	} else if _, err := core.NamedDesign(req.Design, k, req.Runs, req.Seed); err != nil {
		return JobView{}, err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return JobView{}, ErrShuttingDown
	}
	m.nextID++
	j := &Job{
		ID:       fmt.Sprintf("job-%06d", m.nextID),
		Trace:    obs.TraceID(ctx),
		Req:      req,
		State:    JobQueued,
		Timeout:  m.effectiveTimeout(req.TimeoutS),
		Enqueued: time.Now(),
	}
	select {
	case m.queue <- j:
	default:
		return JobView{}, ErrQueueFull
	}
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	m.jobLog(j).Info("job enqueued", "model", req.Model, "design", req.Design)
	return j.view(), nil
}

// effectiveTimeout resolves a request's timeout_s against the manager's
// configured bound: the request may only tighten the deadline, never relax
// it past the config. Zero everywhere means no deadline.
func (m *JobManager) effectiveTimeout(timeoutS float64) time.Duration {
	t := m.jobTimeout
	if timeoutS > 0 {
		req := time.Duration(timeoutS * float64(time.Second))
		if t <= 0 || req < t {
			t = req
		}
	}
	return t
}

// jobLog binds a logger with the job's identity: its own ID plus the
// trace ID of the request that created it.
func (m *JobManager) jobLog(j *Job) *slog.Logger {
	lg := m.log.With("job", j.ID)
	if j.Trace != "" {
		lg = lg.With("trace", j.Trace)
	}
	return lg
}

// ErrQueueFull is returned by Submit when the bounded queue is at capacity;
// the HTTP layer maps it to 503/queue_full.
var ErrQueueFull = fmt.Errorf("serve: build queue is full")

// ErrShuttingDown is returned by Submit once Shutdown has begun; the HTTP
// layer maps it to 503/shutting_down.
var ErrShuttingDown = fmt.Errorf("serve: job manager is shutting down")

// QueueDepth reports how many builds wait behind the running one right
// now — /healthz and the ehdoed_queue_depth gauge surface it.
func (m *JobManager) QueueDepth() int { return len(m.queue) }

// QueueCap reports the bounded queue's capacity.
func (m *JobManager) QueueCap() int { return cap(m.queue) }

// Get returns the snapshot of one job.
func (m *JobManager) Get(id string) (JobView, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return j.view(), true
}

// List returns snapshots of every job in submission order.
func (m *JobManager) List() []JobView {
	out, _ := m.ListPage("", "", 0)
	return out
}

// ListPage returns job snapshots in submission order, optionally filtered
// by state, starting after the given job ID (exclusive cursor; empty =
// from the beginning) and bounded by limit (<=0 = unbounded). more reports
// whether matching jobs remain past the page.
func (m *JobManager) ListPage(state JobState, after string, limit int) (page []JobView, more bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	start := 0
	if after != "" {
		for i, id := range m.order {
			if id == after {
				start = i + 1
				break
			}
		}
	}
	page = []JobView{}
	for _, id := range m.order[start:] {
		j := m.jobs[id]
		if state != "" && j.State != state {
			continue
		}
		if limit > 0 && len(page) == limit {
			return page, true
		}
		page = append(page, j.view())
	}
	return page, false
}

// Shutdown stops accepting jobs, cancels everything still queued, and
// drains the in-flight build: it may finish within the grace period; past
// it the build's context is cancelled and the job reports canceled.
func (m *JobManager) Shutdown(grace time.Duration) {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		// Queued-but-unstarted jobs are cancelled outright; only the one
		// already running gets the grace period.
		for {
			var j *Job
			select {
			case j = <-m.queue:
			default:
			}
			if j == nil {
				break
			}
			j.State = JobCanceled
			j.Error = "canceled: server shutting down"
			j.Code = jobCodeCanceled
			j.Finished = time.Now()
			m.jobLog(j).Info("job canceled", "reason", "server shutting down, job still queued")
			m.countFinished(JobCanceled)
		}
		close(m.queue)
	}
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(grace):
		m.log.Warn("job shutdown grace expired, cancelling in-flight build", "grace_s", grace.Seconds())
		m.cancel()
		<-done
	}
	m.cancel()
}

func (m *JobManager) countFinished(state JobState) {
	if m.finished != nil {
		m.finished.With(string(state)).Inc()
	}
}

func (m *JobManager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		if m.ctx.Err() != nil {
			m.finish(j, JobCanceled, jobCodeCanceled, fmt.Errorf("canceled: server shutting down"))
			continue
		}
		m.run(j)
	}
}

func (m *JobManager) run(j *Job) {
	lg := m.jobLog(j)
	// The build inherits the submitting request's trace: simulation-run
	// and cache log lines carry the same trace ID as the access log.
	ctx := obs.WithLogger(obs.WithTraceID(m.ctx, j.Trace), lg)
	if m.faults != nil {
		ctx = obs.WithFaultStats(ctx, m.faults)
	}
	if j.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, j.Timeout)
		defer cancel()
	}

	p := m.problem(j.Req.Amp, j.Req.Horizon)
	// Engine selection: the batch engine is a scheduling strategy on top of
	// the fast engine (bit-identical lanes), the reference engine swaps the
	// simulator itself. Submit already resolved the default and rejected
	// unknown values.
	switch j.Req.Engine {
	case EngineBatch:
		p.EngineName = core.EngineBatch
	case EngineReference:
		p.Engine = sim.RunReference
		p.EngineName = core.EngineReference
	}
	if j.Req.Strategy == StrategyAdaptive {
		m.runAdaptive(ctx, j, p)
		return
	}
	k := len(p.Factors)
	design, err := core.NamedDesign(j.Req.Design, k, j.Req.Runs, j.Req.Seed)
	if err != nil {
		m.finish(j, JobFailed, "", err)
		return
	}

	m.mu.Lock()
	j.State = JobRunning
	j.Started = time.Now()
	j.Runs = design.N()
	wait := j.Started.Sub(j.Enqueued)
	m.mu.Unlock()
	lg.Info("job started", "model", j.Req.Model, "design", j.Req.Design,
		"runs", design.N(), "queue_wait_ms", float64(wait.Microseconds())/1e3)

	var ds *core.Dataset
	if j.Req.Pool == PoolCluster {
		// Shard the design points across the worker fleet. The trace ID
		// rides on every lease, so worker-side run logs correlate with the
		// submitting request.
		ds, err = m.cluster.RunDesign(ctx, cluster.JobSpec{
			ID:        j.ID,
			Trace:     j.Trace,
			Excite:    j.Req.Amp,
			Horizon:   j.Req.Horizon,
			Responses: p.Responses,
		}, design)
	} else {
		ds, err = p.RunDesignContext(ctx, design, j.Req.Workers)
	}
	if ds != nil {
		// Even a failed build carries its fault-recovery and batch stats.
		m.mu.Lock()
		j.Retries = ds.Retries
		j.Panics = ds.PanicsRecovered
		j.SimTime = ds.SimTime
		j.Batch = ds.Batch
		m.mu.Unlock()
		if ds.Batch != nil {
			if m.batchLanes != nil {
				m.batchLanes.Add(uint64(ds.Batch.Lanes))
			}
			if m.batchAmort != nil {
				m.batchAmort.Add(uint64(ds.Batch.AmortizedRebuilds))
			}
		}
	}
	if err != nil {
		state, code, werr := m.classify(ctx, j, err)
		m.finish(j, state, code, werr)
		return
	}
	s, err := p.BuildSurfaces(ds, rsm.FullQuadratic(k))
	if err != nil {
		m.finish(j, JobFailed, "", err)
		return
	}
	saved := s.SaveWithData(ds)
	m.registry.Set(j.Req.Model, saved)

	m.mu.Lock()
	j.State = JobDone
	j.Finished = time.Now()
	j.SimTime = ds.SimTime
	j.Speedup = ds.Speedup()
	j.R2 = make(map[string]float64, len(saved.R2))
	for id, r2 := range saved.R2 {
		j.R2[string(id)] = r2
	}
	dur := j.Finished.Sub(j.Started)
	m.mu.Unlock()
	m.countFinished(JobDone)
	m.countBuildPoints(1, design.N(), 0)
	lg.Info("job done", "model", j.Req.Model, "runs", design.N(),
		"dur_ms", float64(dur.Microseconds())/1e3,
		"sim_ms", float64(ds.SimTime.Microseconds())/1e3,
		"speedup", ds.Speedup())
}

// runAdaptive executes one adaptive-strategy build: the sequential
// D-optimal loop in internal/core, with every round's simulations routed
// through the same pool a fixed build uses — the local worker pool, or the
// cluster fleet with round-suffixed job IDs so worker-side logs stay
// attributable to this job.
func (m *JobManager) runAdaptive(ctx context.Context, j *Job, p *core.Problem) {
	lg := m.jobLog(j)
	m.mu.Lock()
	j.State = JobRunning
	j.Started = time.Now()
	wait := j.Started.Sub(j.Enqueued)
	m.mu.Unlock()
	lg.Info("job started", "model", j.Req.Model, "strategy", StrategyAdaptive,
		"queue_wait_ms", float64(wait.Microseconds())/1e3)

	cfg := core.AdaptiveConfig{Seed: j.Req.Seed, Workers: j.Req.Workers}
	if j.Req.Pool == PoolCluster {
		cfg.RunDesign = func(ctx context.Context, d *doe.Design) (*core.Dataset, error) {
			return m.cluster.RunDesign(ctx, cluster.JobSpec{
				ID:        j.ID + "-" + d.Name,
				Trace:     j.Trace,
				Excite:    j.Req.Amp,
				Horizon:   j.Req.Horizon,
				Responses: p.Responses,
			}, d)
		}
	}
	res, err := p.RunAdaptive(ctx, cfg)
	if res != nil {
		// Even a failed build carries its fault-recovery, batch and
		// per-round stats.
		ds := res.Dataset
		m.mu.Lock()
		j.Adaptive = res.Stats
		j.Runs = res.Stats.PointsSimulated
		if ds != nil {
			j.Retries = ds.Retries
			j.Panics = ds.PanicsRecovered
			j.SimTime = ds.SimTime
			j.Batch = ds.Batch
		}
		m.mu.Unlock()
		if ds != nil && ds.Batch != nil {
			if m.batchLanes != nil {
				m.batchLanes.Add(uint64(ds.Batch.Lanes))
			}
			if m.batchAmort != nil {
				m.batchAmort.Add(uint64(ds.Batch.AmortizedRebuilds))
			}
		}
	}
	if err != nil {
		state, code, werr := m.classify(ctx, j, err)
		m.finish(j, state, code, werr)
		return
	}
	saved := res.Surfaces.SaveWithData(res.Dataset)
	m.registry.Set(j.Req.Model, saved)

	m.mu.Lock()
	j.State = JobDone
	j.Finished = time.Now()
	j.Speedup = res.Dataset.Speedup()
	j.R2 = make(map[string]float64, len(saved.R2))
	for id, r2 := range saved.R2 {
		j.R2[string(id)] = r2
	}
	dur := j.Finished.Sub(j.Started)
	m.mu.Unlock()
	m.countFinished(JobDone)
	m.countBuildPoints(len(res.Stats.Rounds), res.Stats.PointsSimulated, res.Stats.PointsSkipped)
	lg.Info("job done", "model", j.Req.Model, "strategy", StrategyAdaptive,
		"points", res.Stats.PointsSimulated, "fixed_points", res.Stats.FixedPoints,
		"rounds", len(res.Stats.Rounds), "stop", res.Stats.StopReason,
		"dur_ms", float64(dur.Microseconds())/1e3,
		"sim_ms", float64(res.Dataset.SimTime.Microseconds())/1e3)
}

// countBuildPoints feeds the fleet-wide build point-accounting counters.
func (m *JobManager) countBuildPoints(rounds, simulated, skipped int) {
	if m.rounds != nil {
		m.rounds.Add(uint64(rounds))
	}
	if m.ptsSim != nil {
		m.ptsSim.Add(uint64(simulated))
	}
	if m.ptsSkip != nil {
		m.ptsSkip.Add(uint64(skipped))
	}
}

// classify maps a failed build's error to its terminal state and
// machine-readable code. ctx is the job's own context (with the per-job
// deadline applied); m.ctx distinguishes shutdown from everything else.
func (m *JobManager) classify(ctx context.Context, j *Job, err error) (JobState, string, error) {
	var perr *core.RunPanicError
	var nerr *core.NumericError
	switch {
	case m.ctx.Err() != nil:
		return JobCanceled, jobCodeCanceled, err
	case errors.Is(ctx.Err(), context.DeadlineExceeded):
		// The job's own deadline fired, as opposed to a per-run timeout
		// bubbling up (RunTimeoutError also unwraps to DeadlineExceeded).
		return JobFailed, jobCodeTimeout,
			fmt.Errorf("build exceeded its %s timeout: %w", j.Timeout, err)
	case errors.Is(err, cluster.ErrDraining):
		return JobCanceled, jobCodeCanceled, err
	case errors.Is(err, cluster.ErrNoWorkers):
		return JobFailed, jobCodeNoWorkers, err
	case errors.As(err, &perr):
		return JobFailed, jobCodePanic, err
	case errors.As(err, &nerr):
		return JobFailed, jobCodeNumeric, err
	}
	return JobFailed, "", err
}

func (m *JobManager) finish(j *Job, state JobState, code string, err error) {
	m.mu.Lock()
	j.State = state
	j.Code = code
	if err != nil {
		j.Error = err.Error()
	}
	j.Finished = time.Now()
	var dur time.Duration
	if !j.Started.IsZero() {
		dur = j.Finished.Sub(j.Started)
	}
	m.mu.Unlock()
	m.countFinished(state)
	lg := m.jobLog(j).With("dur_ms", float64(dur.Microseconds())/1e3)
	switch state {
	case JobCanceled:
		lg.Info("job canceled", "reason", j.Error)
	default:
		lg.Warn("job failed", "code", code, "err", j.Error)
	}
}
