package serve

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/simcache"
)

// chaosResult mirrors blockingProblem's varied finite responses so the
// surface fit stays well-posed under fault injection.
func chaosResult(d sim.Design) *sim.Result {
	r := &sim.Result{
		AvgHarvestedPower: d.Node.Period * 1e-6,
		StoredEnergyEnd:   d.Store.C,
		FinalStoreV:       3,
		UptimeFraction:    d.Store.C * 5,
		NetEnergyMargin:   1e-3 * d.Node.Period,
	}
	r.Node.Packets = int(d.Node.Period)
	r.Node.FirstTxTime = d.Node.Period / 2
	return r
}

// chaosProblem wires a fault injector between the retry layer and a fast
// fake engine. The injector is shared across factory calls so its call
// counter spans the whole build, exactly like cmd/ehdoed wires it.
func chaosProblem(inj *fault.Injector, retry core.RetryPolicy) ProblemFactory {
	return func(amp, horizon float64) *core.Problem {
		p := core.StandardProblem(amp, horizon)
		p.Engine = func(d sim.Design, cfg sim.Config) (*sim.Result, error) {
			return chaosResult(d), nil
		}
		// An unnamed custom engine bypasses the Runner (it can't be cached);
		// name it so the injector stays in the path.
		p.EngineName = "chaos-fake"
		p.Runner = inj.Wrap(simcache.Direct{})
		p.Retry = retry
		return p
	}
}

// metricValue extracts one un-labelled counter sample from a /metrics page.
func metricValue(t *testing.T, page, name string) float64 {
	t.Helper()
	m := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` ([0-9.e+-]+)$`).FindStringSubmatch(page)
	if m == nil {
		t.Fatalf("metrics page missing sample %s:\n%s", name, page)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("parsing %s sample %q: %v", name, m[1], err)
	}
	return v
}

// TestChaosBuildE2E is the acceptance run for the fault-tolerant execution
// layer: a build under seeded chaos (transient errors, panics, injected
// latency) must still converge to a registered model via retries, count
// every recovery, and expose the counts on /metrics. Workers=1 makes the
// injector's call-consumption order — and therefore the whole run —
// deterministic for a fixed seed.
func TestChaosBuildE2E(t *testing.T) {
	inj := fault.New(fault.Config{
		Seed:       42,
		PTransient: 0.25,
		PPanic:     0.15,
		PLatency:   0.3,
		Latency:    2 * time.Millisecond,
	})
	retry := core.RetryPolicy{MaxAttempts: 10, BaseDelay: 200 * time.Microsecond, MaxDelay: time.Millisecond}
	srv, ts := newTestServer(t, Config{Problem: chaosProblem(inj, retry), QueueCap: 4})

	resp, body := postJSON(t, ts.URL+"/v1/build", BuildRequest{
		Model: "chaos", Design: "ccf", Horizon: 1, Seed: 1, Workers: 1,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("build under chaos rejected: %d %s", resp.StatusCode, body)
	}
	var accepted struct {
		Job JobView `json:"job"`
	}
	unmarshal(t, body, &accepted)

	final := waitState(t, srv.Jobs(), accepted.Job.ID, JobDone)
	if final.Retries == 0 {
		t.Fatalf("chaos build saw no retries — injector not in the path? %+v", final)
	}
	if final.PanicsRecovered == 0 {
		t.Fatalf("chaos build recovered no panics — containment not exercised: %+v", final)
	}
	if _, ok := srv.Registry().Get("chaos"); !ok {
		t.Fatal("chaos build must still register its model")
	}

	_, mbody := get(t, ts.URL+"/metrics")
	page := string(mbody)
	if v := metricValue(t, page, "ehdoed_run_retries_total"); v < float64(final.Retries) {
		t.Fatalf("ehdoed_run_retries_total %g < job retries %d", v, final.Retries)
	}
	if v := metricValue(t, page, "ehdoed_run_panics_recovered_total"); v < float64(final.PanicsRecovered) {
		t.Fatalf("ehdoed_run_panics_recovered_total %g < job panics %d", v, final.PanicsRecovered)
	}
	if !strings.Contains(page, `ehdoed_jobs_total{state="done"} 1`) {
		t.Fatalf("metrics must count the finished job by state:\n%s", page)
	}
}

// TestPanicNeverEscapesDaemon: with p(panic)=1 every attempt panics, the
// retry budget exhausts, and the job must fail cleanly — panic message and
// design-point index in the error, code "panic" — while the daemon itself
// keeps serving.
func TestPanicNeverEscapesDaemon(t *testing.T) {
	inj := fault.New(fault.Config{Seed: 7, PPanic: 1})
	retry := core.RetryPolicy{MaxAttempts: 2, BaseDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond}
	srv, ts := newTestServer(t, Config{Problem: chaosProblem(inj, retry), QueueCap: 4})

	resp, body := postJSON(t, ts.URL+"/v1/build", BuildRequest{
		Model: "doomed", Design: "ccf", Horizon: 1, Workers: 1,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("build: %d %s", resp.StatusCode, body)
	}
	var accepted struct {
		Job JobView `json:"job"`
	}
	unmarshal(t, body, &accepted)

	final := waitState(t, srv.Jobs(), accepted.Job.ID, JobFailed)
	if final.ErrorCode != jobCodePanic {
		t.Fatalf("error code %q, want %q (%+v)", final.ErrorCode, jobCodePanic, final)
	}
	if !strings.Contains(final.Error, "panicked") || !strings.Contains(final.Error, "run 0") {
		t.Fatalf("job error must name the panic and its design point: %q", final.Error)
	}
	if final.PanicsRecovered == 0 {
		t.Fatalf("failed job must still count its recovered panics: %+v", final)
	}

	// The daemon survived: liveness and the serving path still answer.
	hresp, _ := get(t, ts.URL+"/healthz")
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after contained panics: %d", hresp.StatusCode)
	}
}

// hangRunner blocks until the run context is done — a simulator that never
// returns, for exercising deadlines end to end.
type hangRunner struct{}

func (hangRunner) Run(ctx context.Context, engine string, fn simcache.Engine, d sim.Design, cfg sim.Config) (*sim.Result, error) {
	<-ctx.Done()
	return nil, context.Cause(ctx)
}

// TestJobTimeoutE2E: a build whose simulator hangs must terminate at its
// requested deadline with code "timeout", not wedge the worker forever.
func TestJobTimeoutE2E(t *testing.T) {
	factory := func(amp, horizon float64) *core.Problem {
		p := core.StandardProblem(amp, horizon)
		p.Runner = hangRunner{}
		return p
	}
	srv, ts := newTestServer(t, Config{Problem: factory, QueueCap: 4})

	resp, body := postJSON(t, ts.URL+"/v1/build", BuildRequest{
		Model: "stuck", Design: "ccf", Horizon: 1, Workers: 1, TimeoutS: 0.05,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("build: %d %s", resp.StatusCode, body)
	}
	var accepted struct {
		Job JobView `json:"job"`
	}
	unmarshal(t, body, &accepted)
	if accepted.Job.TimeoutS != 0.05 {
		t.Fatalf("accepted job must echo its timeout: %+v", accepted.Job)
	}

	final := waitState(t, srv.Jobs(), accepted.Job.ID, JobFailed)
	if final.ErrorCode != jobCodeTimeout {
		t.Fatalf("error code %q, want %q (%+v)", final.ErrorCode, jobCodeTimeout, final)
	}
	if !strings.Contains(final.Error, "timeout") {
		t.Fatalf("job error must say it timed out: %q", final.Error)
	}
	// The manager keeps serving: a negative timeout is still rejected at
	// submit time (i.e. the worker loop didn't wedge).
	resp, body = postJSON(t, ts.URL+"/v1/build", BuildRequest{
		Model: "bad", Design: "ccf", Horizon: 1, TimeoutS: -1,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative timeout_s must be rejected: %d %s", resp.StatusCode, body)
	}
}

// TestEffectiveTimeoutCap: a request may tighten the configured job
// deadline but never relax it.
func TestEffectiveTimeoutCap(t *testing.T) {
	m := &JobManager{jobTimeout: 50 * time.Millisecond}
	if got := m.effectiveTimeout(0); got != 50*time.Millisecond {
		t.Fatalf("no request timeout: want config bound, got %s", got)
	}
	if got := m.effectiveTimeout(10); got != 50*time.Millisecond {
		t.Fatalf("request above the cap must be clamped, got %s", got)
	}
	if got := m.effectiveTimeout(0.01); got != 10*time.Millisecond {
		t.Fatalf("request below the cap must win, got %s", got)
	}
	unbounded := &JobManager{}
	if got := unbounded.effectiveTimeout(2); got != 2*time.Second {
		t.Fatalf("unbounded config takes the request timeout, got %s", got)
	}
	if got := unbounded.effectiveTimeout(0); got != 0 {
		t.Fatalf("no bounds anywhere means no deadline, got %s", got)
	}
}

// TestHandlerPanicRecovered: a panicking handler must yield the uniform
// 500 envelope (code "internal"), count as an error, and leave the server
// able to answer the next request.
func TestHandlerPanicRecovered(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(time.Second)
	h := srv.instrument("boom", func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})

	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler status %d, want 500", rec.Code)
	}
	var e errorBody
	unmarshal(t, rec.Body.Bytes(), &e)
	if e.Code != codeInternal || e.Error != "internal server error" {
		t.Fatalf("panic must map to the uniform internal envelope, got %+v", e)
	}
	if rec.Header().Get("X-Request-ID") == "" {
		t.Fatal("recovered response must still carry its request ID")
	}

	// The middleware recorded the failure and the server still serves.
	page := string(srv.Metrics().Render())
	if !strings.Contains(page, `ehdoed_request_errors_total{endpoint="boom"} 1`) {
		t.Fatalf("panicking request must be counted as an error:\n%s", page)
	}
	rec2 := httptest.NewRecorder()
	srv.instrument("ok", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	})(rec2, httptest.NewRequest("GET", "/ok", nil))
	if rec2.Code != http.StatusNoContent {
		t.Fatalf("server wedged after a recovered panic: %d", rec2.Code)
	}
}

// TestValidateNaNRejected: a simulator producing NaN must fail /v1/validate
// with the typed numeric_invalid code, not feed NaN into accuracy stats.
func TestValidateNaNRejected(t *testing.T) {
	factory := func(amp, horizon float64) *core.Problem {
		p := core.StandardProblem(amp, horizon)
		p.Engine = func(d sim.Design, cfg sim.Config) (*sim.Result, error) {
			r := chaosResult(d)
			r.AvgHarvestedPower = math.NaN()
			return r, nil
		}
		return p
	}
	srv, ts := newTestServer(t, Config{Problem: factory})
	srv.Registry().Set("m", fixture(t))

	resp, body := postJSON(t, ts.URL+"/v1/validate", ValidateRequest{Model: "m", N: 2})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("NaN validation: %d %s", resp.StatusCode, body)
	}
	var e errorBody
	unmarshal(t, body, &e)
	if e.Code != codeNumericInvalid {
		t.Fatalf("error code %q, want %q (%s)", e.Code, codeNumericInvalid, body)
	}
}
