package serve

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
)

// TestRegistryConcurrentPredictDuringSwap is the hot-reload contract: many
// goroutines predicting against a model while others swap and delete it
// must stay race-free (run under -race) and every successful Get must
// yield a fully usable surface set.
func TestRegistryConcurrentPredictDuringSwap(t *testing.T) {
	ss := fixture(t)
	reg := NewRegistry()
	reg.Set("m", ss)

	points := [][]float64{{0, 0, 0, 0}, {0.5, -0.5, 0.25, -0.25}, {1, 1, -1, -1}}
	const readers = 8
	const iters = 300

	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				got, ok := reg.Get("m")
				if !ok {
					continue // mid-delete; the writer restores it
				}
				vals, err := got.PredictBatch(core.RespPackets, points)
				if err != nil {
					t.Errorf("predict during swap: %v", err)
					return
				}
				if len(vals) != len(points) {
					t.Errorf("got %d values for %d points", len(vals), len(points))
					return
				}
			}
		}()
	}
	// Writer: keep swapping the same surfaces in under the readers' feet,
	// with occasional delete/restore cycles.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if i%10 == 9 {
				reg.Delete("m")
			}
			reg.Set("m", ss)
			reg.Names()
			reg.Len()
		}
	}()
	wg.Wait()

	if _, ok := reg.Get("m"); !ok {
		t.Fatal("model lost after the swap storm")
	}
}

func TestRegistryBasics(t *testing.T) {
	reg := NewRegistry()
	if reg.Len() != 0 || len(reg.Names()) != 0 {
		t.Fatal("new registry not empty")
	}
	if _, ok := reg.Get("x"); ok {
		t.Fatal("phantom model")
	}
	if reg.Delete("x") {
		t.Fatal("deleting a missing model reported true")
	}
	ss := fixture(t)
	reg.Set("b", ss)
	reg.Set("a", ss)
	names := reg.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names not sorted: %v", names)
	}
	if !reg.Delete("a") || reg.Len() != 1 {
		t.Fatal("delete failed")
	}
}

func TestRegistryLoadDir(t *testing.T) {
	ss := fixture(t)
	data, err := ss.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, name := range []string{"alpha.json", "beta.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Non-JSON files are ignored.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}

	reg := NewRegistry()
	names, err := reg.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Fatalf("loaded %v", names)
	}
	if _, ok := reg.Get("alpha"); !ok {
		t.Fatal("alpha not registered")
	}

	// A corrupt file aborts the load.
	if err := os.WriteFile(filepath.Join(dir, "corrupt.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRegistry().LoadDir(dir); err == nil {
		t.Fatal("corrupt model file must fail the load")
	}

	// Missing directory fails.
	if _, err := NewRegistry().LoadDir(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing dir must fail")
	}

	// The server loads the directory at startup.
	srv, err := New(Config{ModelsDir: dir})
	if err == nil {
		t.Fatal("server must refuse a dir with a corrupt model")
	}
	if err := os.Remove(filepath.Join(dir, "corrupt.json")); err != nil {
		t.Fatal(err)
	}
	srv, err = New(Config{ModelsDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(0)
	if srv.Registry().Len() != 2 {
		t.Fatalf("server loaded %d models, want 2", srv.Registry().Len())
	}
}
