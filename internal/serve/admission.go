package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"repro/internal/load"
	"repro/internal/obs"
)

// EndpointLimit bounds one endpoint class's concurrent work. Zero fields
// take the class defaults documented on LoadConfig.
type EndpointLimit struct {
	// MaxConcurrent requests are served at once; the next MaxQueue wait
	// up to MaxWait for a slot (never past their own deadline), and
	// everything beyond that is shed immediately with a typed 429.
	MaxConcurrent int
	MaxQueue      int
	MaxWait       time.Duration
}

// LoadConfig tunes the server's admission control and response memo.
// Admission control is on by default: each synchronous model endpoint
// gets its own limiter, so a flood of expensive validations cannot
// starve the cheap surface reads and vice versa.
type LoadConfig struct {
	// Disable turns admission control off entirely (the memo stays).
	Disable bool
	// Surface bounds each of the surrogate-backed endpoints — predict,
	// sweep and optimize get one limiter each with these bounds.
	// Defaults: 4×GOMAXPROCS concurrent, 16×GOMAXPROCS queued, 250ms max
	// queue wait.
	Surface EndpointLimit
	// Validate bounds the only synchronous endpoint that touches the
	// simulator. Defaults: GOMAXPROCS concurrent, 2×GOMAXPROCS queued,
	// 2s max queue wait.
	Validate EndpointLimit
	// RetryAfter is the advisory backoff attached to shed responses
	// (default 1s; rounded up to whole seconds on the wire).
	RetryAfter time.Duration
	// MemoCapacity bounds the predict/sweep response memo (default 512
	// entries); negative disables memoization.
	MemoCapacity int
}

func (c LoadConfig) withDefaults() LoadConfig {
	procs := runtime.GOMAXPROCS(0)
	if c.Surface.MaxConcurrent <= 0 {
		c.Surface.MaxConcurrent = 4 * procs
	}
	if c.Surface.MaxQueue <= 0 {
		c.Surface.MaxQueue = 16 * procs
	}
	if c.Surface.MaxWait <= 0 {
		c.Surface.MaxWait = 250 * time.Millisecond
	}
	if c.Validate.MaxConcurrent <= 0 {
		c.Validate.MaxConcurrent = procs
	}
	if c.Validate.MaxQueue <= 0 {
		c.Validate.MaxQueue = 2 * procs
	}
	if c.Validate.MaxWait <= 0 {
		c.Validate.MaxWait = 2 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MemoCapacity == 0 {
		c.MemoCapacity = 512
	}
	return c
}

// admissionWaitBuckets resolve the queued-wait histogram: sub-millisecond
// admissions through multi-second shed waits.
var admissionWaitBuckets = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2, 5}

// initAdmission builds the per-endpoint limiters and their instruments.
func (s *Server) initAdmission(cfg LoadConfig) {
	s.admitted = s.reg.CounterVec("ehdoed_admission_admitted_total",
		"Requests admitted past the per-endpoint concurrency limiter.", "endpoint")
	s.shed = s.reg.CounterVec("ehdoed_admission_shed_total",
		"Requests shed by admission control (typed 429 with Retry-After).", "endpoint")
	s.admissionWait = s.reg.HistogramVec("ehdoed_admission_queued_wait_seconds",
		"Time requests spent queued for an admission slot, by endpoint (shed requests included).",
		"endpoint", admissionWaitBuckets)
	inflight := s.reg.GaugeVec("ehdoed_inflight",
		"Requests currently admitted and executing, by endpoint.", "endpoint")
	queued := s.reg.GaugeVec("ehdoed_admission_queue_depth",
		"Requests currently queued for an admission slot, by endpoint.", "endpoint")
	s.memoHits = s.reg.CounterVec("ehdoed_memo_hits_total",
		"Responses replayed from the model-versioned response memo, by endpoint.", "endpoint")
	s.memoMisses = s.reg.CounterVec("ehdoed_memo_misses_total",
		"Memoizable requests that had to be computed, by endpoint.", "endpoint")
	if cfg.MemoCapacity > 0 {
		s.memo = load.NewMemo(cfg.MemoCapacity)
	}
	if cfg.Disable {
		return
	}
	s.limits = make(map[string]*load.Limiter)
	limitFor := func(label string, lim EndpointLimit) {
		s.limits[label] = load.NewLimiter(load.LimiterConfig{
			MaxConcurrent: lim.MaxConcurrent,
			MaxQueue:      lim.MaxQueue,
			MaxWait:       lim.MaxWait,
			RetryAfter:    cfg.RetryAfter,
			InflightGauge: inflight.With(label),
			QueueGauge:    queued.With(label),
		})
	}
	for _, label := range []string{"predict", "sweep", "optimize"} {
		limitFor(label, cfg.Surface)
	}
	limitFor("validate", cfg.Validate)
}

// admit is the admission-control middleware for one limited endpoint: it
// acquires a concurrency slot (queueing bounded and deadline-aware) or
// sheds the request with a typed 429 overloaded envelope carrying a
// Retry-After hint. Wait time is recorded for admitted AND shed requests,
// so the queued_wait histogram shows the full price of saturation.
func (s *Server) admit(label string, lim *load.Limiter, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		release, waited, err := lim.Acquire(r.Context())
		s.admissionWait.With(label).Observe(waited.Seconds())
		if err != nil {
			s.shed.With(label).Inc()
			retry, reason := s.loadCfg.RetryAfter, "overloaded"
			if sh, ok := err.(*load.ShedError); ok {
				retry, reason = sh.RetryAfter, sh.Reason
			}
			w.Header().Set("Retry-After", retryAfterSeconds(retry))
			obs.FromContext(r.Context()).Warn("request shed",
				"endpoint", label, "reason", reason,
				"inflight", lim.Inflight(), "queued", lim.QueueDepth(),
				"waited_ms", float64(waited.Microseconds())/1e3)
			writeError(w, http.StatusTooManyRequests, codeOverloaded,
				"endpoint %s overloaded (%s); retry after %s", label, reason, retryAfterSeconds(retry)+"s")
			return
		}
		defer release()
		s.admitted.With(label).Inc()
		h(w, r)
	}
}

// retryAfterSeconds renders a backoff as the Retry-After header value:
// integer seconds, rounded up, at least 1.
func retryAfterSeconds(d time.Duration) string {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// memoKey fingerprints one (endpoint, model version, request body): the
// ETag pins the surfaces that answered, the body hash pins the exact
// question asked.
func memoKey(endpoint, etag string, body []byte) string {
	sum := sha256.Sum256(body)
	return endpoint + "\x00" + etag + "\x00" + hex.EncodeToString(sum[:])
}

// memoServe answers a request from the memo when possible; true means the
// response was written. Memoized bytes are replayed verbatim, so a hit is
// byte-identical to the response the original computation produced.
func (s *Server) memoServe(w http.ResponseWriter, endpoint, key string) bool {
	if s.memo == nil {
		return false
	}
	body, ok := s.memo.Get(key)
	if !ok {
		s.memoMisses.With(endpoint).Inc()
		return false
	}
	s.memoHits.With(endpoint).Inc()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Memo", "hit")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
	return true
}

// captureWriter tees a handler's response into a buffer so 200 bodies can
// be memoized exactly as written.
type captureWriter struct {
	http.ResponseWriter
	status int
	buf    bytes.Buffer
}

func newCaptureWriter(w http.ResponseWriter) *captureWriter {
	return &captureWriter{ResponseWriter: w, status: http.StatusOK}
}

func (w *captureWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *captureWriter) Write(b []byte) (int, error) {
	w.buf.Write(b)
	return w.ResponseWriter.Write(b)
}

// memoStore memoizes a captured 200 response.
func (s *Server) memoStore(key string, cw *captureWriter) {
	if s.memo == nil || cw.status != http.StatusOK {
		return
	}
	body := make([]byte, cw.buf.Len())
	copy(body, cw.buf.Bytes())
	s.memo.Put(key, body)
}
