package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/simcache"
)

// Config configures a Server.
type Config struct {
	// ModelsDir, when set, is loaded into the registry at startup.
	ModelsDir string
	// QueueCap bounds the build-job queue (default 8).
	QueueCap int
	// Problem instantiates the design problem builds and validations
	// simulate; nil means core.StandardProblem.
	Problem ProblemFactory
	// MaxBodyBytes caps request bodies (default 32 MiB — model uploads
	// embed the raw experiment).
	MaxBodyBytes int64
	// Cache memoizes the simulations behind builds and validations; nil
	// means a fresh in-memory cache (512 entries, no disk tier).
	Cache *simcache.Cache
}

// Server wires the registry, job manager and metrics into an http.Handler.
type Server struct {
	registry *Registry
	jobs     *JobManager
	metrics  *Metrics
	problem  ProblemFactory
	cache    *simcache.Cache
	maxBody  int64
	mux      *http.ServeMux
	started  time.Time
}

// New builds a server, loading any models found in cfg.ModelsDir.
func New(cfg Config) (*Server, error) {
	problem := cfg.Problem
	if problem == nil {
		problem = core.StandardProblem
	}
	cache := cfg.Cache
	if cache == nil {
		cache = simcache.New(simcache.Options{})
	}
	// Route every problem the factory makes through the server's cache,
	// unless the factory wired its own runner.
	cached := func(amp, horizon float64) *core.Problem {
		p := problem(amp, horizon)
		if p.Runner == nil {
			p.Runner = cache
		}
		return p
	}
	maxBody := cfg.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = 32 << 20
	}
	s := &Server{
		registry: NewRegistry(),
		metrics:  NewMetrics(),
		problem:  cached,
		cache:    cache,
		maxBody:  maxBody,
		mux:      http.NewServeMux(),
		started:  time.Now(),
	}
	if cfg.ModelsDir != "" {
		if _, err := s.registry.LoadDir(cfg.ModelsDir); err != nil {
			return nil, err
		}
	}
	s.jobs = NewJobManager(s.registry, s.problem, cfg.QueueCap)
	s.routes()
	return s, nil
}

// Registry exposes the model registry (for the CLI and tests).
func (s *Server) Registry() *Registry { return s.registry }

// Jobs exposes the job manager.
func (s *Server) Jobs() *JobManager { return s.jobs }

// Handler returns the root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown drains the job runner: queued builds are cancelled, the
// in-flight one gets the grace period before its context is cancelled.
func (s *Server) Shutdown(grace time.Duration) {
	s.jobs.Shutdown(grace)
}

func (s *Server) routes() {
	handle := func(pattern, label string, h http.HandlerFunc) {
		s.mux.HandleFunc(pattern, s.instrument(label, h))
	}
	handle("GET /healthz", "healthz", s.handleHealthz)
	handle("GET /metrics", "metrics", s.handleMetrics)
	handle("GET /v1/models", "models_list", s.handleModelsList)
	handle("GET /v1/models/{name}", "model_get", s.handleModelGet)
	handle("PUT /v1/models/{name}", "model_put", s.handleModelPut)
	handle("POST /v1/models/{name}", "model_put", s.handleModelPut)
	handle("DELETE /v1/models/{name}", "model_delete", s.handleModelDelete)
	handle("POST /v1/predict", "predict", s.handlePredict)
	handle("POST /v1/sweep", "sweep", s.handleSweep)
	handle("POST /v1/optimize", "optimize", s.handleOptimize)
	handle("POST /v1/validate", "validate", s.handleValidate)
	handle("POST /v1/build", "build", s.handleBuild)
	handle("GET /v1/jobs", "jobs_list", s.handleJobsList)
	handle("GET /v1/jobs/{id}", "job_get", s.handleJobGet)
}

// statusWriter captures the response status for the metrics middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (s *Server) instrument(label string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		s.metrics.Observe(label, sw.status, time.Since(start))
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"models":   s.registry.Len(),
		"uptime_s": time.Since(s.started).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	b := s.metrics.Render()
	b = simcache.RenderMetrics(b, "ehdoed_simcache", s.cache.Stats())
	w.Write(b)
}

// writeJSON renders v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError renders the uniform error payload: message plus machine-
// readable code.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...), Code: code})
}

// decodeJSON parses a bounded request body, rejecting trailing garbage.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, "malformed JSON body: %v", err)
		return false
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err != io.EOF {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, "malformed JSON body: trailing data")
		return false
	}
	return true
}

// readAll slurps a bounded request body.
func readAll(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, error) {
	return io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
}

// model fetches the named model or answers 404.
func (s *Server) model(w http.ResponseWriter, name string) (*core.SavedSurfaces, bool) {
	if name == "" {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, "missing model name")
		return nil, false
	}
	ss, ok := s.registry.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, codeNotFound, "unknown model %q", name)
		return nil, false
	}
	return ss, true
}
