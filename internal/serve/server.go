package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/load"
	"repro/internal/obs"
	"repro/internal/simcache"
)

// latencyBuckets are the cumulative-histogram upper bounds in seconds,
// spanning the sub-millisecond surrogate hot path up to multi-second
// simulation-backed endpoints. An implicit +Inf bucket follows.
var latencyBuckets = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10}

// Config configures a Server.
type Config struct {
	// ModelsDir, when set, is loaded into the registry at startup.
	ModelsDir string
	// QueueCap bounds the build-job queue (default 8).
	QueueCap int
	// Problem instantiates the design problem builds and validations
	// simulate; nil means core.StandardProblem.
	Problem ProblemFactory
	// MaxBodyBytes caps request bodies (default 32 MiB — model uploads
	// embed the raw experiment).
	MaxBodyBytes int64
	// Cache memoizes the simulations behind builds and validations; nil
	// means a fresh in-memory cache (512 entries, no disk tier).
	Cache *simcache.Cache
	// Logger receives structured request, job and simulation logs; nil
	// discards them.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the same
	// mux. Off by default: profiling endpoints expose internals.
	EnablePprof bool
	// JobTimeout bounds each build job: the default when a request sets no
	// timeout_s, and the cap when it does. <=0 means unbounded.
	JobTimeout time.Duration
	// StrictAPI rejects deprecated request fields (the legacy "amp" alias)
	// with code bad_field instead of honouring them — the final stage of a
	// field migration before the alias is removed.
	StrictAPI bool
	// Cluster tunes the worker-fleet coordinator (heartbeat and lease
	// timeouts, lease sizing, retry budgets). The zero value uses the
	// cluster package defaults; the coordinator is always mounted.
	Cluster cluster.Config
	// Load tunes admission control and the response memo; the zero value
	// enables both with the defaults documented on LoadConfig.
	Load LoadConfig
}

// Server wires the registry, job manager and observability into an
// http.Handler. All metrics live in one obs.Registry; /metrics renders it
// and nothing else.
type Server struct {
	registry  *Registry
	jobs      *JobManager
	coord     *cluster.Coordinator
	problem   ProblemFactory
	cache     *simcache.Cache
	maxBody   int64
	mux       *http.ServeMux
	started   time.Time
	log       *slog.Logger
	draining  atomic.Bool
	strictAPI bool

	reg        *obs.Registry
	reqs       *obs.CounterVec
	errs       *obs.CounterVec
	latency    *obs.HistogramVec
	deprecated *obs.CounterVec
	faults     *obs.FaultStats

	// Overload protection: per-endpoint admission limiters plus the
	// model-versioned response memo, with their instruments.
	loadCfg       LoadConfig
	limits        map[string]*load.Limiter
	memo          *load.Memo
	admitted      *obs.CounterVec
	shed          *obs.CounterVec
	admissionWait *obs.HistogramVec
	memoHits      *obs.CounterVec
	memoMisses    *obs.CounterVec
}

// New builds a server, loading any models found in cfg.ModelsDir.
func New(cfg Config) (*Server, error) {
	problem := cfg.Problem
	if problem == nil {
		problem = core.StandardProblem
	}
	cache := cfg.Cache
	if cache == nil {
		cache = simcache.New(simcache.Options{})
	}
	// Route every problem the factory makes through the server's cache,
	// unless the factory wired its own runner.
	cached := func(amp, horizon float64) *core.Problem {
		p := problem(amp, horizon)
		if p.Runner == nil {
			p.Runner = cache
		}
		return p
	}
	maxBody := cfg.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = 32 << 20
	}
	logger := cfg.Logger
	if logger == nil {
		logger = obs.Nop()
	}
	s := &Server{
		registry:  NewRegistry(),
		problem:   cached,
		cache:     cache,
		maxBody:   maxBody,
		mux:       http.NewServeMux(),
		started:   time.Now(),
		log:       logger,
		strictAPI: cfg.StrictAPI,
		reg:       obs.NewRegistry(),
		faults:    &obs.FaultStats{},
		loadCfg:   cfg.Load.withDefaults(),
	}
	s.initAdmission(s.loadCfg)
	s.reg.GaugeFunc("ehdoed_uptime_seconds", "Seconds since the server started.", func() float64 {
		return time.Since(s.started).Seconds()
	})
	s.reqs = s.reg.CounterVec("ehdoed_requests_total", "Requests served, by endpoint.", "endpoint")
	s.errs = s.reg.CounterVec("ehdoed_request_errors_total", "Requests answered with status >= 400, by endpoint.", "endpoint")
	s.latency = s.reg.HistogramVec("ehdoed_request_latency_seconds", "Request latency, by endpoint.", "endpoint", latencyBuckets)
	s.deprecated = s.reg.CounterVec("ehdoed_deprecated_field_total", "Requests using a deprecated request field, by field.", "field")
	s.reg.CounterFunc("ehdoed_run_retries_total",
		"Design-run attempts retried after transient simulation faults.",
		func() float64 { return float64(s.faults.Retries.Value()) })
	s.reg.CounterFunc("ehdoed_run_panics_recovered_total",
		"Simulation panics recovered into errors instead of crashing the process.",
		func() float64 { return float64(s.faults.Panics.Value()) })
	batchLanes := s.reg.Counter("ehdoed_sim_batch_lanes_total",
		"Design points simulated inside lockstep batch lanes.")
	batchAmort := s.reg.Counter("ehdoed_sim_batch_rebuild_amortized_total",
		"Batch-lane ZOH rebuilds answered by a bake shared with another lane.")
	buildRounds := s.reg.Counter("ehdoed_build_rounds",
		"Design rounds executed by finished builds (a fixed build counts one round).")
	buildPtsSim := s.reg.Counter("ehdoed_build_points_simulated_total",
		"Design points simulated by finished builds.")
	buildPtsSkip := s.reg.Counter("ehdoed_build_points_skipped_total",
		"Design points adaptive builds avoided relative to the fixed-strategy reference design.")
	cache.RegisterMetrics(s.reg, "ehdoed_simcache")
	if cfg.ModelsDir != "" {
		if _, err := s.registry.LoadDir(cfg.ModelsDir); err != nil {
			return nil, err
		}
	}
	ccfg := cfg.Cluster
	if ccfg.Log == nil {
		ccfg.Log = logger
	}
	s.coord = cluster.NewCoordinator(ccfg)
	s.coord.RegisterMetrics(s.reg, "ehdoed_cluster")
	s.jobs = NewJobManager(JobManagerConfig{
		Registry:   s.registry,
		Problem:    s.problem,
		QueueCap:   cfg.QueueCap,
		Log:        logger,
		Finished:   s.reg.CounterVec("ehdoed_jobs_total", "Build jobs finished, by terminal state.", "state"),
		JobTimeout: cfg.JobTimeout,
		Faults:     s.faults,
		Cluster:    s.coord,

		BatchLanes:     batchLanes,
		BatchAmortized: batchAmort,

		BuildRounds:     buildRounds,
		PointsSimulated: buildPtsSim,
		PointsSkipped:   buildPtsSkip,
	})
	s.reg.GaugeFunc("ehdoed_queue_depth",
		"Build jobs waiting in the bounded queue behind the running one.",
		func() float64 { return float64(s.jobs.QueueDepth()) })
	s.routes()
	if cfg.EnablePprof {
		obs.MountPprof(s.mux)
	}
	return s, nil
}

// Registry exposes the model registry (for the CLI and tests).
func (s *Server) Registry() *Registry { return s.registry }

// Jobs exposes the job manager.
func (s *Server) Jobs() *JobManager { return s.jobs }

// Coordinator exposes the worker-fleet coordinator (for cmd/ehdoed and
// tests).
func (s *Server) Coordinator() *cluster.Coordinator { return s.coord }

// Handler returns the root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the server's observability registry, so embedding
// programs can add their own instruments to the same /metrics page.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Shutdown drains the job runner: /healthz flips to draining, queued
// builds are cancelled, the in-flight one gets the grace period before its
// context is cancelled.
func (s *Server) Shutdown(grace time.Duration) {
	s.draining.Store(true)
	s.log.Info("server draining", "grace_s", grace.Seconds())
	// The coordinator drains first: outstanding leases are cancelled and
	// cluster builds fail fast with ErrDraining (classified as canceled),
	// while local builds still get the full grace period below.
	s.coord.Shutdown()
	s.jobs.Shutdown(grace)
}

func (s *Server) routes() {
	for _, ep := range s.endpoints() {
		h := ep.handler
		if lim, ok := s.limits[ep.Label]; ok {
			// Admission control sits inside instrument, so shed requests
			// still get trace IDs, metrics and an access-log line.
			h = s.admit(ep.Label, lim, h)
		}
		s.mux.HandleFunc(ep.Method+" "+ep.Path, s.instrument(ep.Label, h))
		if ep.Method == "PUT" && ep.Path == "/v1/models/{name}" {
			// Historical alias: POST uploads are accepted too.
			s.mux.HandleFunc("POST "+ep.Path, s.instrument(ep.Label, h))
		}
	}
}

// statusWriter captures the response status (and whether anything was
// written yet, so the recover path knows if a 500 can still be sent).
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// instrument is the one middleware every endpoint passes through: it
// adopts the client's X-Request-ID (or mints a fresh "req-" ID), binds a
// trace-carrying logger into the request context, echoes the ID back,
// recovers handler panics into the uniform 500 envelope, records metrics
// and emits one structured access-log line. Metrics and the access log
// live in the defer so panicking requests are counted too.
func (s *Server) instrument(label string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ctx, id := obs.Annotate(r.Context(), s.log, "req-", r.Header.Get("X-Request-ID"))
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler { //nolint:errorlint // sentinel, by convention compared directly
					panic(rec)
				}
				obs.FromContext(ctx).Error("handler panicked",
					"endpoint", label, "panic", fmt.Sprint(rec), "stack", string(debug.Stack()))
				if !sw.wrote {
					writeError(sw, http.StatusInternalServerError, codeInternal, "internal server error")
				} else {
					// The response is already in flight; all we can do is
					// record the failure.
					sw.status = http.StatusInternalServerError
				}
			}
			dur := time.Since(start)
			s.reqs.With(label).Inc()
			if sw.status >= 400 {
				s.errs.With(label).Inc()
			}
			s.latency.With(label).Observe(dur.Seconds())
			obs.FromContext(ctx).Info("request",
				"method", r.Method, "path", r.URL.Path, "endpoint", label,
				"status", sw.status, "dur_ms", float64(dur.Microseconds())/1e3)
		}()
		h(sw, r.WithContext(ctx))
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{
		Status:        "ok",
		Models:        s.registry.Len(),
		UptimeSeconds: time.Since(s.started).Seconds(),
		QueueDepth:    s.jobs.QueueDepth(),
		QueueCap:      s.jobs.QueueCap(),
	}
	status := http.StatusOK
	if s.draining.Load() {
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(s.reg.Render())
}

// writeJSON renders v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError renders the uniform error payload: message plus machine-
// readable code.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...), Code: code})
}

// decodeJSON parses a bounded request body into a typed request struct.
// Unknown fields are rejected (code bad_field) so typos fail loudly
// instead of silently defaulting; trailing garbage is rejected too.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	_, ok := s.decodeBody(w, r, v)
	return ok
}

// decodeBody is decodeJSON plus the raw bytes, for handlers that
// fingerprint the request (the response memo keys on the exact body).
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) ([]byte, bool) {
	body, err := readAll(w, r, s.maxBody)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, "reading body: %v", err)
		return nil, false
	}
	if !decodeBytes(w, body, v) {
		return nil, false
	}
	return body, true
}

// decodeBytes applies the strict decode rules to an already-read body.
func decodeBytes(w http.ResponseWriter, body []byte, v any) bool {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if strings.Contains(err.Error(), "unknown field") {
			writeError(w, http.StatusBadRequest, codeBadField, "%v", err)
			return false
		}
		writeError(w, http.StatusBadRequest, codeInvalidRequest, "malformed JSON body: %v", err)
		return false
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err != io.EOF {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, "malformed JSON body: trailing data")
		return false
	}
	return true
}

// readAll slurps a bounded request body.
func readAll(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, error) {
	return io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
}

// model fetches the named model or answers 404.
func (s *Server) model(w http.ResponseWriter, name string) (*core.SavedSurfaces, bool) {
	ss, _, ok := s.taggedModel(w, name)
	return ss, ok
}

// taggedModel fetches the named model plus its registry ETag (the memo
// key ingredient), or answers 400/404.
func (s *Server) taggedModel(w http.ResponseWriter, name string) (*core.SavedSurfaces, string, bool) {
	if name == "" {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, "missing model name")
		return nil, "", false
	}
	ss, etag, ok := s.registry.GetTagged(name)
	if !ok {
		writeError(w, http.StatusNotFound, codeNotFound, "unknown model %q", name)
		return nil, "", false
	}
	return ss, etag, true
}

// deprecateAmp handles a request that used the legacy "amp" field. The
// migration has three stages, all observable before anything breaks:
// Deprecation + Sunset headers and a structured warning tell clients and
// operators, the ehdoed_deprecated_field_total{field="amp"} counter makes
// remaining callers measurable, and strict mode (-strict-api) rejects the
// alias with code bad_field. Returns false when the request was rejected;
// the handler must stop.
func (s *Server) deprecateAmp(w http.ResponseWriter, r *http.Request, endpoint string) bool {
	s.deprecated.With("amp").Inc()
	if s.strictAPI {
		obs.FromContext(r.Context()).Warn("deprecated field rejected",
			"field", "amp", "use", "excite", "endpoint", endpoint)
		writeError(w, http.StatusBadRequest, codeBadField,
			`field "amp" is retired; use "excite"`)
		return false
	}
	w.Header().Set("Deprecation", `@1767225600`) // deprecated since 2026-01-01 (RFC 9745)
	w.Header().Set("Sunset", "Wed, 01 Jul 2026 00:00:00 GMT")
	obs.FromContext(r.Context()).Warn("deprecated field used",
		"field", "amp", "use", "excite", "endpoint", endpoint)
	return true
}
