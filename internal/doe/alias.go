package doe

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// AliasStructure describes the confounding of a regular two-level
// fractional factorial: the defining contrast subgroup, the design
// resolution (Roman-numeral convention: the length of the shortest
// defining word), and alias chains for low-order effects. Screening with
// a resolution-III design confounds main effects with two-factor
// interactions; resolution V and above leaves main effects and two-factor
// interactions clean — the standard vocabulary for choosing how many
// harvester/node parameters can share a small simulation budget.
type AliasStructure struct {
	K          int      // total factors
	Words      []uint64 // defining contrast subgroup (excluding identity), as factor bitmasks
	Resolution int      // min word length; 0 for a full factorial (no words)
}

// AliasStructureOf computes the structure for a design built like
// FractionalFactorial(base, generators): base independent factors plus one
// generated factor per generator string ("E=ABCD" style, letters indexing
// the base factors).
func AliasStructureOf(base int, generators []string) (*AliasStructure, error) {
	if base < 2 || base > 60 {
		return nil, fmt.Errorf("doe: base factor count %d out of range", base)
	}
	k := base + len(generators)
	// Each generator contributes one defining word: the generated column
	// times its parents.
	defs := make([]uint64, 0, len(generators))
	for gi, g := range generators {
		parts := strings.SplitN(strings.ReplaceAll(g, " ", ""), "=", 2)
		if len(parts) != 2 || len(parts[1]) == 0 {
			return nil, fmt.Errorf("doe: bad generator %q", g)
		}
		var w uint64
		for _, ch := range strings.ToUpper(parts[1]) {
			idx := int(ch - 'A')
			if idx < 0 || idx >= base {
				return nil, fmt.Errorf("doe: generator %q references factor %c outside the %d base factors", g, ch, base)
			}
			w ^= 1 << uint(idx)
		}
		w ^= 1 << uint(base+gi) // the generated factor itself
		defs = append(defs, w)
	}
	// Defining contrast subgroup: all non-empty XOR combinations.
	var words []uint64
	for mask := 1; mask < 1<<uint(len(defs)); mask++ {
		var w uint64
		for i, d := range defs {
			if mask&(1<<uint(i)) != 0 {
				w ^= d
			}
		}
		words = append(words, w)
	}
	sort.Slice(words, func(i, j int) bool {
		li, lj := bits.OnesCount64(words[i]), bits.OnesCount64(words[j])
		if li != lj {
			return li < lj
		}
		return words[i] < words[j]
	})
	res := 0
	if len(words) > 0 {
		res = bits.OnesCount64(words[0])
	}
	return &AliasStructure{K: k, Words: words, Resolution: res}, nil
}

// effectName renders a factor bitmask as letters (A, B, …).
func effectName(w uint64, k int) string {
	if w == 0 {
		return "I"
	}
	var b strings.Builder
	for i := 0; i < k; i++ {
		if w&(1<<uint(i)) != 0 {
			b.WriteByte(byte('A' + i))
		}
	}
	return b.String()
}

// DefiningRelation renders the defining contrast subgroup, e.g.
// "I = ABCDE".
func (a *AliasStructure) DefiningRelation() string {
	if len(a.Words) == 0 {
		return "I (full factorial)"
	}
	parts := make([]string, 0, len(a.Words)+1)
	parts = append(parts, "I")
	for _, w := range a.Words {
		parts = append(parts, effectName(w, a.K))
	}
	return strings.Join(parts, " = ")
}

// AliasesOf returns the effects confounded with the given effect (a
// bitmask over the k factors), sorted by interaction order. The queried
// effect itself is not included.
func (a *AliasStructure) AliasesOf(effect uint64) []uint64 {
	out := make([]uint64, 0, len(a.Words))
	for _, w := range a.Words {
		out = append(out, effect^w)
	}
	sort.Slice(out, func(i, j int) bool {
		li, lj := bits.OnesCount64(out[i]), bits.OnesCount64(out[j])
		if li != lj {
			return li < lj
		}
		return out[i] < out[j]
	})
	return out
}

// MainEffectChains renders the alias chain of every main effect up to
// maxOrder interaction terms, e.g. "A = BCE = DEF".
func (a *AliasStructure) MainEffectChains(maxOrder int) []string {
	if maxOrder <= 0 {
		maxOrder = 3
	}
	out := make([]string, 0, a.K)
	for i := 0; i < a.K; i++ {
		effect := uint64(1) << uint(i)
		parts := []string{effectName(effect, a.K)}
		for _, al := range a.AliasesOf(effect) {
			if bits.OnesCount64(al) <= maxOrder {
				parts = append(parts, effectName(al, a.K))
			}
		}
		out = append(out, strings.Join(parts, " = "))
	}
	return out
}

// CleanTwoFactorInteractions reports whether no two-factor interaction is
// aliased with a main effect or another two-factor interaction
// (equivalent to resolution ≥ V).
func (a *AliasStructure) CleanTwoFactorInteractions() bool {
	return a.Resolution >= 5 || len(a.Words) == 0
}
