package doe

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFactorCoding(t *testing.T) {
	f := Factor{Name: "period", Min: 1, Max: 60}
	if got := f.Decode(-1); got != 1 {
		t.Fatalf("Decode(-1) = %v", got)
	}
	if got := f.Decode(1); got != 60 {
		t.Fatalf("Decode(1) = %v", got)
	}
	if got := f.Decode(0); math.Abs(got-30.5) > 1e-12 {
		t.Fatalf("Decode(0) = %v", got)
	}
	if got := f.Encode(30.5); math.Abs(got) > 1e-12 {
		t.Fatalf("Encode(30.5) = %v", got)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Factor{Min: 1, Max: 1}).Validate(); err == nil {
		t.Fatal("empty range must be rejected")
	}
}

func TestFactorRoundTripProperty(t *testing.T) {
	f := Factor{Name: "x", Min: -3, Max: 7}
	prop := func(v float64) bool {
		v = math.Mod(v, 100)
		return math.Abs(f.Encode(f.Decode(v))-v) < 1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRun(t *testing.T) {
	fs := []Factor{{Name: "a", Min: 0, Max: 10}, {Name: "b", Min: -1, Max: 1}}
	nat, err := DecodeRun(fs, []float64{-1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if nat[0] != 0 || nat[1] != 1 {
		t.Fatalf("decoded = %v", nat)
	}
	if _, err := DecodeRun(fs, []float64{0}); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestFullFactorial(t *testing.T) {
	d, err := FullFactorial(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 27 || d.K() != 3 {
		t.Fatalf("3^3 design: n=%d k=%d", d.N(), d.K())
	}
	// Every run unique.
	seen := map[[3]float64]bool{}
	for _, r := range d.Runs {
		key := [3]float64{r[0], r[1], r[2]}
		if seen[key] {
			t.Fatalf("duplicate run %v", r)
		}
		seen[key] = true
	}
	if _, err := FullFactorial(0, 2); err == nil {
		t.Fatal("k=0 must error")
	}
	if _, err := FullFactorial(2, 1); err == nil {
		t.Fatal("1 level must error")
	}
	if _, err := FullFactorial(30, 3); err == nil {
		t.Fatal("oversized design must error")
	}
}

func TestTwoLevelFactorialBalance(t *testing.T) {
	d, err := TwoLevelFactorial(4)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 16 {
		t.Fatalf("2^4 = %d runs", d.N())
	}
	// Each column balanced: sum zero; all entries ±1.
	for j := 0; j < 4; j++ {
		var s float64
		for _, r := range d.Runs {
			if r[j] != 1 && r[j] != -1 {
				t.Fatalf("non-±1 entry %v", r[j])
			}
			s += r[j]
		}
		if s != 0 {
			t.Fatalf("column %d unbalanced", j)
		}
	}
}

func TestFractionalFactorial(t *testing.T) {
	// 2^(5-1) with E=ABCD: 16 runs, 5 factors.
	d, err := FractionalFactorial(4, []string{"E=ABCD"})
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 16 || d.K() != 5 {
		t.Fatalf("2^(5-1): n=%d k=%d", d.N(), d.K())
	}
	// Generated column is the product of its parents.
	for _, r := range d.Runs {
		if r[4] != r[0]*r[1]*r[2]*r[3] {
			t.Fatalf("generator violated in run %v", r)
		}
	}
	// Orthogonality of main effects: any two distinct columns have zero
	// dot product.
	for a := 0; a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			var s float64
			for _, r := range d.Runs {
				s += r[a] * r[b]
			}
			if s != 0 {
				t.Fatalf("columns %d,%d not orthogonal", a, b)
			}
		}
	}
}

func TestFractionalFactorialValidation(t *testing.T) {
	if _, err := FractionalFactorial(1, nil); err == nil {
		t.Fatal("base=1 must error")
	}
	if _, err := FractionalFactorial(3, []string{"bad"}); err == nil {
		t.Fatal("malformed generator must error")
	}
	if _, err := FractionalFactorial(3, []string{"D=ABZ"}); err == nil {
		t.Fatal("out-of-range letter must error")
	}
}

func TestPlackettBurmanOrthogonality(t *testing.T) {
	for _, n := range []int{4, 8, 12, 16, 20, 24} {
		d, err := PlackettBurman(n, n-1)
		if err != nil {
			t.Fatalf("PB%d: %v", n, err)
		}
		if d.N() != n || d.K() != n-1 {
			t.Fatalf("PB%d: n=%d k=%d", n, d.N(), d.K())
		}
		for a := 0; a < d.K(); a++ {
			var sum float64
			for _, r := range d.Runs {
				if r[a] != 1 && r[a] != -1 {
					t.Fatalf("PB%d non-±1 entry", n)
				}
				sum += r[a]
			}
			if sum != 0 {
				t.Fatalf("PB%d column %d unbalanced (sum %v)", n, a, sum)
			}
			for b := a + 1; b < d.K(); b++ {
				var dot float64
				for _, r := range d.Runs {
					dot += r[a] * r[b]
				}
				if dot != 0 {
					t.Fatalf("PB%d columns %d,%d not orthogonal (dot %v)", n, a, b, dot)
				}
			}
		}
	}
}

func TestPlackettBurmanValidation(t *testing.T) {
	if _, err := PlackettBurman(10, 5); err == nil {
		t.Fatal("unsupported run count must error")
	}
	if _, err := PlackettBurman(12, 12); err == nil {
		t.Fatal("too many factors must error")
	}
	if _, err := PlackettBurman(12, 0); err == nil {
		t.Fatal("zero factors must error")
	}
	// Truncated to k columns.
	d, err := PlackettBurman(12, 6)
	if err != nil {
		t.Fatal(err)
	}
	if d.K() != 6 {
		t.Fatalf("k = %d, want 6", d.K())
	}
}

func TestCentralCompositeStructure(t *testing.T) {
	k := 3
	d, err := CentralComposite(k, CCC, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := 8 + 2*k + 4
	if d.N() != want {
		t.Fatalf("CCD runs = %d, want %d", d.N(), want)
	}
	alpha := math.Pow(8, 0.25)
	// Count point classes.
	var corners, axial, center int
	for _, r := range d.Runs {
		var nrm2 float64
		nonzero := 0
		for _, v := range r {
			nrm2 += v * v
			if v != 0 {
				nonzero++
			}
		}
		switch {
		case nonzero == 0:
			center++
		case nonzero == 1 && math.Abs(math.Sqrt(nrm2)-alpha) < 1e-12:
			axial++
		case nonzero == k && math.Abs(nrm2-float64(k)) < 1e-12:
			corners++
		default:
			t.Fatalf("unexpected CCD point %v", r)
		}
	}
	if corners != 8 || axial != 2*k || center != 4 {
		t.Fatalf("point classes: corners=%d axial=%d center=%d", corners, axial, center)
	}
}

func TestCCFAndCCIStayInBounds(t *testing.T) {
	for _, kind := range []CCDKind{CCF, CCI} {
		d, err := CentralComposite(4, kind, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range d.Runs {
			for _, v := range r {
				if v < -1-1e-12 || v > 1+1e-12 {
					t.Fatalf("%v escapes the cube in kind %d", r, kind)
				}
			}
		}
	}
}

func TestCentralCompositeValidation(t *testing.T) {
	if _, err := CentralComposite(1, CCC, 1); err == nil {
		t.Fatal("k=1 must error")
	}
	if _, err := CentralComposite(3, CCC, 0); err == nil {
		t.Fatal("no centre runs must error")
	}
}

func TestBoxBehnkenStructure(t *testing.T) {
	k := 4
	d, err := BoxBehnken(k, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := 4*k*(k-1)/2 + 3
	if d.N() != want {
		t.Fatalf("BBD runs = %d, want %d", d.N(), want)
	}
	// No corner points: at most 2 nonzero coordinates per run.
	for _, r := range d.Runs {
		nz := 0
		for _, v := range r {
			if v != 0 {
				nz++
				if v != 1 && v != -1 {
					t.Fatalf("BBD entry %v not in {−1,0,1}", v)
				}
			}
		}
		if nz > 2 {
			t.Fatalf("BBD run %v has %d nonzeros", r, nz)
		}
	}
	if _, err := BoxBehnken(2, 1); err == nil {
		t.Fatal("k=2 must error")
	}
	if _, err := BoxBehnken(3, 0); err == nil {
		t.Fatal("no centre runs must error")
	}
}

func TestLatinHypercubeStratification(t *testing.T) {
	d, err := LatinHypercube(3, 10, 42, 200)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 10 || d.K() != 3 {
		t.Fatalf("LHS dims n=%d k=%d", d.N(), d.K())
	}
	// Each factor hits each of the 10 strata exactly once.
	for j := 0; j < 3; j++ {
		seen := map[int]bool{}
		for _, r := range d.Runs {
			cell := int(math.Floor((r[j] + 1) / 2 * 10))
			if cell == 10 {
				cell = 9
			}
			if seen[cell] {
				t.Fatalf("factor %d stratum %d hit twice", j, cell)
			}
			seen[cell] = true
		}
	}
}

func TestLatinHypercubeDeterminism(t *testing.T) {
	a, _ := LatinHypercube(2, 8, 7, 100)
	b, _ := LatinHypercube(2, 8, 7, 100)
	for i := range a.Runs {
		for j := range a.Runs[i] {
			if a.Runs[i][j] != b.Runs[i][j] {
				t.Fatal("same seed must reproduce the design")
			}
		}
	}
	if _, err := LatinHypercube(0, 10, 1, 10); err == nil {
		t.Fatal("k=0 must error")
	}
	if _, err := LatinHypercube(2, 1, 1, 10); err == nil {
		t.Fatal("n=1 must error")
	}
}

func TestMaximinImprovesSpread(t *testing.T) {
	minDist := func(d *Design) float64 {
		best := math.Inf(1)
		for a := 0; a < d.N(); a++ {
			for b := a + 1; b < d.N(); b++ {
				var s float64
				for j := 0; j < d.K(); j++ {
					diff := d.Runs[a][j] - d.Runs[b][j]
					s += diff * diff
				}
				if s < best {
					best = s
				}
			}
		}
		return best
	}
	raw, _ := LatinHypercube(3, 12, 5, 0)
	opt, _ := LatinHypercube(3, 12, 5, 3000)
	if minDist(opt) < minDist(raw) {
		t.Fatalf("optimization reduced spread: %v < %v", minDist(opt), minDist(raw))
	}
}

// quadRow builds the full-quadratic model row for 2 factors:
// [1, x1, x2, x1², x2², x1x2].
func quadRow(x []float64) []float64 {
	return []float64{1, x[0], x[1], x[0] * x[0], x[1] * x[1], x[0] * x[1]}
}

func TestDOptimalSelectsInformativePoints(t *testing.T) {
	cands, err := FullFactorial(2, 5) // 25 candidates on a 5×5 grid
	if err != nil {
		t.Fatal(err)
	}
	d, err := DOptimal(cands, 8, quadRow, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 8 || d.K() != 2 {
		t.Fatalf("D-opt dims n=%d k=%d", d.N(), d.K())
	}
	// The D-optimal design must beat a random subset of the same size on
	// the determinant criterion.
	det := func(runs [][]float64) float64 {
		p := 6
		m := make([][]float64, p)
		for i := range m {
			m[i] = make([]float64, p)
		}
		for _, r := range runs {
			row := quadRow(r)
			for a := 0; a < p; a++ {
				for b := 0; b < p; b++ {
					m[a][b] += row[a] * row[b]
				}
			}
		}
		// log-det via Cholesky; −Inf if singular.
		var ld float64
		for i := 0; i < p; i++ {
			for j := 0; j <= i; j++ {
				s := m[i][j]
				for k := 0; k < j; k++ {
					s -= m[i][k] * m[j][k]
				}
				if i == j {
					if s <= 0 {
						return math.Inf(-1)
					}
					m[i][i] = math.Sqrt(s)
					ld += math.Log(m[i][i])
				} else {
					m[i][j] = s / m[j][j]
				}
			}
		}
		return 2 * ld
	}
	optLD := det(d.Runs)
	worse := 0
	for trial := 0; trial < 20; trial++ {
		r, err := LatinHypercube(2, 8, int64(trial), 0)
		if err != nil {
			t.Fatal(err)
		}
		if det(r.Runs) <= optLD+1e-9 {
			worse++
		}
	}
	if worse < 18 {
		t.Fatalf("D-optimal beaten by %d/20 random designs", 20-worse)
	}
}

func TestDOptimalValidation(t *testing.T) {
	cands, _ := FullFactorial(2, 3)
	if _, err := DOptimal(&Design{}, 5, quadRow, 1, 0); err == nil {
		t.Fatal("empty candidates must error")
	}
	if _, err := DOptimal(cands, 3, quadRow, 1, 0); err == nil {
		t.Fatal("size below model dimension must error")
	}
	if _, err := DOptimal(cands, 100, quadRow, 1, 0); err == nil {
		t.Fatal("size above candidate count must error")
	}
}

func TestAppend(t *testing.T) {
	a, _ := TwoLevelFactorial(2)
	b, _ := FullFactorial(2, 3)
	c, err := a.Append(b)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != a.N()+b.N() {
		t.Fatalf("append n = %d", c.N())
	}
	// Mutating the result must not touch the sources.
	c.Runs[0][0] = 99
	if a.Runs[0][0] == 99 {
		t.Fatal("append must deep-copy")
	}
	d3, _ := TwoLevelFactorial(3)
	if _, err := a.Append(d3); err == nil {
		t.Fatal("factor-count mismatch must error")
	}
}

func TestEmptyDesignAccessors(t *testing.T) {
	var d Design
	if d.K() != 0 || d.N() != 0 {
		t.Fatal("empty design accessors wrong")
	}
}
