package doe

import "testing"

func quadRowBench(x []float64) []float64 {
	k := len(x)
	row := make([]float64, 0, 1+2*k+k*(k-1)/2)
	row = append(row, 1)
	row = append(row, x...)
	for i := 0; i < k; i++ {
		for j := i; j < k; j++ {
			row = append(row, x[i]*x[j])
		}
	}
	return row
}

func BenchmarkCentralComposite6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := CentralComposite(6, CCC, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLatinHypercubeMaximin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := LatinHypercube(4, 30, 1, 300); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDOptimalFedorov(b *testing.B) {
	cands, err := FullFactorial(4, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DOptimal(cands, 27, quadRowBench, int64(i), 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlackettBurman24(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := PlackettBurman(24, 23); err != nil {
			b.Fatal(err)
		}
	}
}
