package doe

import "testing"

// columnDot returns the dot product of the elementwise product of columns
// cols with column single, over all runs — zero means orthogonality of the
// interaction contrast with the main effect.
func columnDot(d *Design, cols []int, single int) float64 {
	var s float64
	for _, r := range d.Runs {
		v := 1.0
		for _, c := range cols {
			v *= r[c]
		}
		s += v * r[single]
	}
	return s
}

func TestFoldoverDeAliasesResolutionIII(t *testing.T) {
	// 2^(3-1) with C=AB is resolution III: column C equals the AB
	// interaction exactly (perfect aliasing).
	base, err := FractionalFactorial(2, []string{"C=AB"})
	if err != nil {
		t.Fatal(err)
	}
	if got := columnDot(base, []int{0, 1}, 2); got != float64(base.N()) {
		t.Fatalf("expected perfect aliasing in the base design, dot = %v", got)
	}
	folded, err := Foldover(base)
	if err != nil {
		t.Fatal(err)
	}
	if folded.N() != 2*base.N() {
		t.Fatalf("folded runs = %d", folded.N())
	}
	// After folding, AB is orthogonal to C: main effects are clean.
	if got := columnDot(folded, []int{0, 1}, 2); got != 0 {
		t.Fatalf("foldover failed to de-alias: dot = %v", got)
	}
	// All main-effect columns stay balanced.
	for j := 0; j < folded.K(); j++ {
		var s float64
		for _, r := range folded.Runs {
			s += r[j]
		}
		if s != 0 {
			t.Fatalf("column %d unbalanced after foldover", j)
		}
	}
}

func TestFoldoverEmpty(t *testing.T) {
	if _, err := Foldover(&Design{}); err == nil {
		t.Fatal("empty design must be rejected")
	}
	if _, err := SemiFoldover(&Design{}, 0); err == nil {
		t.Fatal("empty design must be rejected")
	}
}

func TestSemiFoldover(t *testing.T) {
	base, err := FractionalFactorial(2, []string{"C=AB"})
	if err != nil {
		t.Fatal(err)
	}
	folded, err := SemiFoldover(base, 0)
	if err != nil {
		t.Fatal(err)
	}
	if folded.N() != 2*base.N() {
		t.Fatalf("folded runs = %d", folded.N())
	}
	// Folding on A de-aliases AB from C.
	if got := columnDot(folded, []int{0, 1}, 2); got != 0 {
		t.Fatalf("semifold failed: dot = %v", got)
	}
	// Columns other than the folded one are duplicated, so B stays
	// balanced while its pairing with the original runs is preserved.
	for _, r := range folded.Runs[:base.N()] {
		if len(r) != 3 {
			t.Fatal("width changed")
		}
	}
	if _, err := SemiFoldover(base, 9); err == nil {
		t.Fatal("bad factor index must be rejected")
	}
}

func TestFoldoverDoesNotMutateSource(t *testing.T) {
	base, _ := TwoLevelFactorial(2)
	folded, _ := Foldover(base)
	folded.Runs[0][0] = 99
	if base.Runs[0][0] == 99 {
		t.Fatal("foldover must deep-copy")
	}
}
