package doe

import (
	"fmt"
	"math"
)

// CandidateLattice returns the candidate pool for sequential D-optimal
// augmentation: the full grid of `levels` evenly spaced coded levels per
// factor spanning −1…+1. The levels are exactly the lattice opt.Quantized
// snaps to with step = 1/(levels−1), so every candidate an adaptive build
// simulates lands on the same points an optimizer revisits — repeat visits
// are simcache hits, never fresh simulations.
func CandidateLattice(k, levels int) (*Design, error) {
	d, err := FullFactorial(k, levels)
	if err != nil {
		return nil, err
	}
	d.Name = fmt.Sprintf("lattice-%d^%d", levels, k)
	return d, nil
}

// runKey identifies a coded run by its exact float64 bit pattern, so
// duplicate detection matches the simcache's notion of "same point".
func runKey(r []float64) string {
	b := make([]byte, 0, 8*len(r))
	for _, v := range r {
		u := math.Float64bits(v)
		b = append(b,
			byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
			byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
	}
	return string(b)
}

// AugmentDOptimal grows an existing design by `add` runs chosen from the
// candidate pool to maximize the determinant of the information matrix XᵀX,
// keeping every base run fixed. Each greedy addition picks the candidate with
// the largest prediction variance d(x) = xᵀ(XᵀX)⁻¹x — the point the current
// design knows least about, and exactly the choice that maximizes the
// determinant ratio 1+d(x) — scored in O(p²) per candidate via a
// Sherman–Morrison-maintained inverse. A Fedorov-style exchange pass then
// tries to improve the *added* block only (base runs are already simulated
// and never swapped out), using the same determinant-ratio test as DOptimal:
//
//	Δ(x_in, x_out) = (1 + d(x_in))·(1 − d(x_out)) + d(x_in, x_out)²
//
// Candidates that exactly duplicate a base or already-added run are skipped
// while distinct candidates remain (replicating a deterministic simulation
// buys no information); if the pool is exhausted, duplicates are allowed so
// the requested count is always returned.
func AugmentDOptimal(base, candidates *Design, add int, modelRow func([]float64) []float64, maxPasses int) (*Design, error) {
	if add < 1 {
		return nil, fmt.Errorf("doe: augment needs ≥1 added run, got %d", add)
	}
	nc := candidates.N()
	if nc == 0 {
		return nil, fmt.Errorf("doe: empty candidate set")
	}
	if base.N() > 0 && base.K() != candidates.K() {
		return nil, fmt.Errorf("doe: base has %d factors, candidates %d", base.K(), candidates.K())
	}
	if maxPasses <= 0 {
		maxPasses = 20
	}
	p := len(modelRow(candidates.Runs[0]))
	baseRows := make([][]float64, base.N())
	baseSel := make([]int, base.N())
	for i, r := range base.Runs {
		baseRows[i] = modelRow(r)
		baseSel[i] = i
	}
	candRows := make([][]float64, nc)
	for i, r := range candidates.Runs {
		candRows[i] = modelRow(r)
	}

	// (XᵀX + ridge·I)⁻¹ of the base design; the ridge keeps the early rounds
	// invertible while n < p and is negligible once the design identifies the
	// model.
	minv := newRidgeInverse(baseRows, baseSel, p, 1e-8)
	if minv == nil {
		return nil, fmt.Errorf("doe: could not invert the base information matrix")
	}

	used := make(map[string]int, base.N()+add) // run key → multiplicity
	for _, r := range base.Runs {
		used[runKey(r)]++
	}
	keys := make([]string, nc)
	for i, r := range candidates.Runs {
		keys[i] = runKey(r)
	}

	// Greedy additions: highest prediction variance first.
	sel := make([]int, 0, add)
	for t := 0; t < add; t++ {
		best, bestD := -1, math.Inf(-1)
		bestDup, bestDupD := -1, math.Inf(-1)
		for c := 0; c < nc; c++ {
			d := quadForm(minv, candRows[c], candRows[c])
			if used[keys[c]] == 0 {
				if d > bestD {
					best, bestD = c, d
				}
			} else if d > bestDupD {
				bestDup, bestDupD = c, d
			}
		}
		if best < 0 {
			best = bestDup // pool exhausted: replicate the most informative point
		}
		shermanMorrison(minv, candRows[best], +1)
		used[keys[best]]++
		sel = append(sel, best)
	}

	// Fedorov exchange over the added block.
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for si := range sel {
			out := candRows[sel[si]]
			dOut := quadForm(minv, out, out)
			bestDelta, bestCand := 1.0+1e-12, -1
			for c := 0; c < nc; c++ {
				if used[keys[c]] > 0 {
					continue
				}
				in := candRows[c]
				dIn := quadForm(minv, in, in)
				dCross := quadForm(minv, in, out)
				delta := (1+dIn)*(1-dOut) + dCross*dCross
				if delta > bestDelta {
					bestDelta, bestCand = delta, c
				}
			}
			if bestCand < 0 {
				continue
			}
			shermanMorrison(minv, candRows[bestCand], +1)
			shermanMorrison(minv, out, -1)
			used[keys[sel[si]]]--
			used[keys[bestCand]]++
			sel[si] = bestCand
			improved = true
		}
		if !improved {
			break
		}
	}

	added := &Design{Name: fmt.Sprintf("D-aug(+%d)", add), Runs: make([][]float64, len(sel))}
	for i, id := range sel {
		added.Runs[i] = append([]float64(nil), candidates.Runs[id]...)
	}
	if base.N() == 0 {
		return added, nil
	}
	return base.Append(added)
}
