// Package doe generates designed experiments over k factors in coded units
// (−1 … +1): the experiment plans whose runs are the "moderate number of
// simulations" the paper spends to build its response surfaces.
//
// Provided designs: two-level full factorial, regular two-level fractional
// factorial (via generator strings), Plackett–Burman screening designs,
// central composite (circumscribed/face-centred/inscribed), Box–Behnken,
// maximin Latin hypercube sampling, and D-optimal subsets selected by
// Fedorov exchange.
package doe

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// Design is a set of experiment runs; Runs[i][j] is the coded level of
// factor j in run i.
type Design struct {
	Name string
	Runs [][]float64
}

// K returns the number of factors (0 for an empty design).
func (d *Design) K() int {
	if len(d.Runs) == 0 {
		return 0
	}
	return len(d.Runs[0])
}

// N returns the number of runs.
func (d *Design) N() int { return len(d.Runs) }

// Append returns a new design with the runs of other appended.
func (d *Design) Append(other *Design) (*Design, error) {
	if d.N() > 0 && other.N() > 0 && d.K() != other.K() {
		return nil, fmt.Errorf("doe: cannot append %d-factor design to %d-factor design", other.K(), d.K())
	}
	runs := make([][]float64, 0, d.N()+other.N())
	runs = append(runs, cloneRuns(d.Runs)...)
	runs = append(runs, cloneRuns(other.Runs)...)
	return &Design{Name: d.Name + "+" + other.Name, Runs: runs}, nil
}

func cloneRuns(runs [][]float64) [][]float64 {
	out := make([][]float64, len(runs))
	for i, r := range runs {
		out[i] = append([]float64(nil), r...)
	}
	return out
}

// Factor maps between coded (−1…+1) and natural units.
type Factor struct {
	Name string
	Min  float64
	Max  float64
	Unit string
}

// Validate checks the range.
func (f Factor) Validate() error {
	if !(f.Max > f.Min) {
		return fmt.Errorf("doe: factor %q has empty range [%g, %g]", f.Name, f.Min, f.Max)
	}
	return nil
}

// Decode converts a coded level to natural units.
func (f Factor) Decode(coded float64) float64 {
	return f.Min + (coded+1)/2*(f.Max-f.Min)
}

// Encode converts a natural value to coded units.
func (f Factor) Encode(natural float64) float64 {
	return 2*(natural-f.Min)/(f.Max-f.Min) - 1
}

// DecodeRun converts one coded run to natural units using factors.
func DecodeRun(factors []Factor, coded []float64) ([]float64, error) {
	if len(factors) != len(coded) {
		return nil, fmt.Errorf("doe: %d factors but %d coded values", len(factors), len(coded))
	}
	out := make([]float64, len(coded))
	for i, f := range factors {
		out[i] = f.Decode(coded[i])
	}
	return out, nil
}

// FullFactorial returns the full factorial design with the given number of
// evenly spaced levels per factor (levels ≥ 2), spanning −1…+1.
func FullFactorial(k, levels int) (*Design, error) {
	if k < 1 {
		return nil, fmt.Errorf("doe: need ≥1 factor, got %d", k)
	}
	if levels < 2 {
		return nil, fmt.Errorf("doe: need ≥2 levels, got %d", levels)
	}
	n := 1
	for i := 0; i < k; i++ {
		n *= levels
		if n > 1<<22 {
			return nil, fmt.Errorf("doe: full factorial %d^%d too large", levels, k)
		}
	}
	lv := make([]float64, levels)
	for i := range lv {
		lv[i] = -1 + 2*float64(i)/float64(levels-1)
	}
	runs := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, k)
		rem := i
		for j := 0; j < k; j++ {
			row[j] = lv[rem%levels]
			rem /= levels
		}
		runs[i] = row
	}
	return &Design{Name: fmt.Sprintf("full-%d^%d", levels, k), Runs: runs}, nil
}

// TwoLevelFactorial returns the 2^k corner design.
func TwoLevelFactorial(k int) (*Design, error) {
	d, err := FullFactorial(k, 2)
	if err != nil {
		return nil, err
	}
	d.Name = fmt.Sprintf("2^%d", k)
	return d, nil
}

// FractionalFactorial returns a regular 2^(k−p) design. base is the number
// of independent factors; each generator defines one additional factor as a
// product of base factors, written like "E=ABCD" (letters A… map to factors
// 1…). The returned design has base+len(generators) factors in the order
// A, B, …, then the generated ones.
func FractionalFactorial(base int, generators []string) (*Design, error) {
	if base < 2 || base > 20 {
		return nil, fmt.Errorf("doe: base factor count %d out of range", base)
	}
	full, err := TwoLevelFactorial(base)
	if err != nil {
		return nil, err
	}
	type gen struct{ cols []int }
	gens := make([]gen, 0, len(generators))
	for _, g := range generators {
		parts := strings.SplitN(strings.ReplaceAll(g, " ", ""), "=", 2)
		if len(parts) != 2 || len(parts[1]) == 0 {
			return nil, fmt.Errorf("doe: bad generator %q (want like \"E=ABC\")", g)
		}
		var cols []int
		for _, ch := range strings.ToUpper(parts[1]) {
			idx := int(ch - 'A')
			if idx < 0 || idx >= base {
				return nil, fmt.Errorf("doe: generator %q references factor %c outside the %d base factors", g, ch, base)
			}
			cols = append(cols, idx)
		}
		gens = append(gens, gen{cols: cols})
	}
	runs := make([][]float64, full.N())
	for i, row := range full.Runs {
		out := make([]float64, base+len(gens))
		copy(out, row)
		for gi, g := range gens {
			v := 1.0
			for _, c := range g.cols {
				v *= row[c]
			}
			out[base+gi] = v
		}
		runs[i] = out
	}
	return &Design{
		Name: fmt.Sprintf("2^(%d-%d)", base+len(gens), len(gens)),
		Runs: runs,
	}, nil
}

// pbGenerators are the classical first rows of Plackett–Burman designs.
var pbGenerators = map[int][]int{
	12: {1, 1, -1, 1, 1, 1, -1, -1, -1, 1, -1},
	20: {1, 1, -1, -1, 1, 1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, 1, 1, -1},
	24: {1, 1, 1, 1, 1, -1, 1, -1, 1, 1, -1, -1, 1, 1, -1, -1, 1, -1, 1, -1, -1, -1, -1},
}

// PlackettBurman returns an n-run screening design for up to n−1 factors
// (n ∈ {4, 8, 12, 16, 20, 24}); k columns are kept.
func PlackettBurman(n, k int) (*Design, error) {
	if k < 1 || k > n-1 {
		return nil, fmt.Errorf("doe: PB(%d) supports 1–%d factors, got %d", n, n-1, k)
	}
	var rows [][]float64
	switch n {
	case 4, 8, 16:
		h := hadamardSylvester(n)
		rows = make([][]float64, n)
		for i := 0; i < n; i++ {
			row := make([]float64, n-1)
			copy(row, h[i][1:]) // drop the constant column
			rows[i] = row
		}
	case 12, 20, 24:
		g := pbGenerators[n]
		rows = make([][]float64, 0, n)
		for shift := 0; shift < n-1; shift++ {
			row := make([]float64, n-1)
			for j := 0; j < n-1; j++ {
				row[j] = float64(g[(j+shift)%(n-1)])
			}
			rows = append(rows, row)
		}
		all := make([]float64, n-1)
		for i := range all {
			all[i] = -1
		}
		rows = append(rows, all)
	default:
		return nil, fmt.Errorf("doe: PB run count %d unsupported (use 4, 8, 12, 16, 20 or 24)", n)
	}
	runs := make([][]float64, len(rows))
	for i, r := range rows {
		runs[i] = append([]float64(nil), r[:k]...)
	}
	return &Design{Name: fmt.Sprintf("PB%d", n), Runs: runs}, nil
}

// hadamardSylvester builds the order-n Sylvester Hadamard matrix (n a power
// of two) with ±1 entries.
func hadamardSylvester(n int) [][]float64 {
	h := [][]float64{{1}}
	for m := 1; m < n; m *= 2 {
		nh := make([][]float64, 2*m)
		for i := 0; i < m; i++ {
			top := make([]float64, 2*m)
			bot := make([]float64, 2*m)
			for j := 0; j < m; j++ {
				top[j], top[m+j] = h[i][j], h[i][j]
				bot[j], bot[m+j] = h[i][j], -h[i][j]
			}
			nh[i], nh[m+i] = top, bot
		}
		h = nh
	}
	return h
}

// CCDKind selects the central composite variant.
type CCDKind int

const (
	// CCC is the circumscribed (rotatable) CCD with α = (2^k)^{1/4}.
	CCC CCDKind = iota
	// CCF is the face-centred CCD with α = 1.
	CCF
	// CCI is the inscribed CCD: a CCC shrunk so all points lie in −1…+1.
	CCI
)

// CentralComposite returns a CCD for k factors with nCenter centre runs:
// the 2^k factorial corners, 2k axial points, and the centres. This is the
// workhorse design for fitting full quadratic response surfaces.
func CentralComposite(k int, kind CCDKind, nCenter int) (*Design, error) {
	if k < 2 {
		return nil, fmt.Errorf("doe: CCD needs ≥2 factors, got %d", k)
	}
	if nCenter < 1 {
		return nil, fmt.Errorf("doe: CCD needs ≥1 centre run, got %d", nCenter)
	}
	corners, err := TwoLevelFactorial(k)
	if err != nil {
		return nil, err
	}
	alpha := math.Pow(float64(int(1)<<uint(k)), 0.25)
	scale := 1.0
	name := "CCC"
	switch kind {
	case CCF:
		alpha = 1
		name = "CCF"
	case CCI:
		scale = 1 / alpha
		name = "CCI"
	}
	runs := make([][]float64, 0, corners.N()+2*k+nCenter)
	for _, r := range corners.Runs {
		row := make([]float64, k)
		for j, v := range r {
			row[j] = v * scale
		}
		runs = append(runs, row)
	}
	for j := 0; j < k; j++ {
		for _, sgn := range []float64{-1, 1} {
			row := make([]float64, k)
			row[j] = sgn * alpha * scale
			runs = append(runs, row)
		}
	}
	for c := 0; c < nCenter; c++ {
		runs = append(runs, make([]float64, k))
	}
	return &Design{Name: fmt.Sprintf("%s(k=%d)", name, k), Runs: runs}, nil
}

// BoxBehnken returns the Box–Behnken design for k ≥ 3 factors: ±1/±1 on
// every factor pair with the rest at 0, plus nCenter centre runs. All
// points lie on the edges of the cube (no corners), making it cheaper than
// a CCD when corner settings are expensive or infeasible.
func BoxBehnken(k, nCenter int) (*Design, error) {
	if k < 3 {
		return nil, fmt.Errorf("doe: Box–Behnken needs ≥3 factors, got %d", k)
	}
	if nCenter < 1 {
		return nil, fmt.Errorf("doe: Box–Behnken needs ≥1 centre run, got %d", nCenter)
	}
	var runs [][]float64
	for i := 0; i < k-1; i++ {
		for j := i + 1; j < k; j++ {
			for _, si := range []float64{-1, 1} {
				for _, sj := range []float64{-1, 1} {
					row := make([]float64, k)
					row[i], row[j] = si, sj
					runs = append(runs, row)
				}
			}
		}
	}
	for c := 0; c < nCenter; c++ {
		runs = append(runs, make([]float64, k))
	}
	return &Design{Name: fmt.Sprintf("BBD(k=%d)", k), Runs: runs}, nil
}

// LatinHypercube returns an n-run maximin Latin hypercube over k factors:
// each factor is stratified into n cells with one sample per cell
// (mid-cell positions), and the pairing is improved by swap hill-climbing
// on the minimum pairwise distance for iters iterations.
func LatinHypercube(k, n int, seed int64, iters int) (*Design, error) {
	if k < 1 || n < 2 {
		return nil, fmt.Errorf("doe: LHS needs ≥1 factor and ≥2 runs, got k=%d n=%d", k, n)
	}
	rng := rand.New(rand.NewSource(seed))
	cols := make([][]int, k)
	for j := range cols {
		cols[j] = rng.Perm(n)
	}
	level := func(cell int) float64 {
		return -1 + 2*(float64(cell)+0.5)/float64(n)
	}
	minDist := func() float64 {
		best := math.Inf(1)
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				var d2 float64
				for j := 0; j < k; j++ {
					diff := level(cols[j][a]) - level(cols[j][b])
					d2 += diff * diff
				}
				if d2 < best {
					best = d2
				}
			}
		}
		return best
	}
	if k > 1 { // with one factor any permutation is already optimal
		cur := minDist()
		for it := 0; it < iters; it++ {
			j := rng.Intn(k)
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			cols[j][a], cols[j][b] = cols[j][b], cols[j][a]
			if nd := minDist(); nd >= cur {
				cur = nd
			} else {
				cols[j][a], cols[j][b] = cols[j][b], cols[j][a]
			}
		}
	}
	runs := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, k)
		for j := 0; j < k; j++ {
			row[j] = level(cols[j][i])
		}
		runs[i] = row
	}
	return &Design{Name: fmt.Sprintf("LHS(n=%d)", n), Runs: runs}, nil
}

// DOptimal selects size runs from the candidate design maximizing the
// determinant of the information matrix XᵀX, where modelRow expands a coded
// run into its model-matrix row (e.g. a full-quadratic basis). Selection is
// by Fedorov exchange from a random start: each exchange's determinant
// ratio is computed from the variance function
//
//	Δ(x_in, x_out) = (1 + d(x_in))·(1 − d(x_out)) + d(x_in, x_out)²
//
// with d(x, y) = xᵀ(XᵀX)⁻¹y, and (XᵀX)⁻¹ maintained by Sherman–Morrison
// rank-one updates — the classical O(p²)-per-candidate algorithm.
func DOptimal(candidates *Design, size int, modelRow func([]float64) []float64, seed int64, maxPasses int) (*Design, error) {
	nc := candidates.N()
	if nc == 0 {
		return nil, fmt.Errorf("doe: empty candidate set")
	}
	p := len(modelRow(candidates.Runs[0]))
	if size < p {
		return nil, fmt.Errorf("doe: size %d below model dimension %d", size, p)
	}
	if size > nc {
		return nil, fmt.Errorf("doe: size %d exceeds candidate count %d", size, nc)
	}
	if maxPasses <= 0 {
		maxPasses = 20
	}
	rows := make([][]float64, nc)
	for i, r := range candidates.Runs {
		rows[i] = modelRow(r)
	}
	rng := rand.New(rand.NewSource(seed))
	sel := rng.Perm(nc)[:size]
	inSel := make([]bool, nc)
	for _, id := range sel {
		inSel[id] = true
	}

	// Information matrix with a small ridge so a degenerate random start
	// still inverts; the ridge is negligible once the exchange converges.
	minv := newRidgeInverse(rows, sel, p, 1e-8)
	if minv == nil {
		return nil, fmt.Errorf("doe: could not invert the starting information matrix")
	}

	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for si := 0; si < size; si++ {
			out := rows[sel[si]]
			dOut := quadForm(minv, out, out)
			bestDelta, bestCand := 1.0+1e-12, -1
			for c := 0; c < nc; c++ {
				if inSel[c] {
					continue
				}
				in := rows[c]
				dIn := quadForm(minv, in, in)
				dCross := quadForm(minv, in, out)
				delta := (1+dIn)*(1-dOut) + dCross*dCross
				if delta > bestDelta {
					bestDelta, bestCand = delta, c
				}
			}
			if bestCand < 0 {
				continue
			}
			// Commit: add new row, remove old row (two rank-one updates).
			shermanMorrison(minv, rows[bestCand], +1)
			shermanMorrison(minv, out, -1)
			inSel[sel[si]] = false
			inSel[bestCand] = true
			sel[si] = bestCand
			improved = true
		}
		if !improved {
			break
		}
	}
	sort.Ints(sel)
	runs := make([][]float64, size)
	for i, id := range sel {
		runs[i] = append([]float64(nil), candidates.Runs[id]...)
	}
	return &Design{Name: fmt.Sprintf("D-opt(n=%d)", size), Runs: runs}, nil
}

// newRidgeInverse returns (XᵀX + ridge·I)⁻¹ for the selected rows as a
// dense p×p matrix (row-major [][]), or nil on failure.
func newRidgeInverse(rows [][]float64, sel []int, p int, ridge float64) [][]float64 {
	m := make([][]float64, p)
	for i := range m {
		m[i] = make([]float64, p)
		m[i][i] = ridge
	}
	for _, id := range sel {
		r := rows[id]
		for a := 0; a < p; a++ {
			if r[a] == 0 {
				continue
			}
			for b := 0; b < p; b++ {
				m[a][b] += r[a] * r[b]
			}
		}
	}
	// Gauss-Jordan inversion (p is small: the model dimension).
	inv := make([][]float64, p)
	for i := range inv {
		inv[i] = make([]float64, p)
		inv[i][i] = 1
	}
	for col := 0; col < p; col++ {
		// Partial pivot.
		piv := col
		for r := col + 1; r < p; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if m[piv][col] == 0 {
			return nil
		}
		m[col], m[piv] = m[piv], m[col]
		inv[col], inv[piv] = inv[piv], inv[col]
		d := m[col][col]
		for j := 0; j < p; j++ {
			m[col][j] /= d
			inv[col][j] /= d
		}
		for r := 0; r < p; r++ {
			if r == col || m[r][col] == 0 {
				continue
			}
			f := m[r][col]
			for j := 0; j < p; j++ {
				m[r][j] -= f * m[col][j]
				inv[r][j] -= f * inv[col][j]
			}
		}
	}
	return inv
}

// quadForm returns xᵀ·M·y for a dense symmetric M.
func quadForm(m [][]float64, x, y []float64) float64 {
	var s float64
	for i := range x {
		if x[i] == 0 {
			continue
		}
		row := m[i]
		var t float64
		for j := range y {
			t += row[j] * y[j]
		}
		s += x[i] * t
	}
	return s
}

// shermanMorrison updates minv ← (M ± xxᵀ)⁻¹ in place given minv = M⁻¹.
func shermanMorrison(minv [][]float64, x []float64, sign float64) {
	p := len(x)
	mx := make([]float64, p)
	for i := 0; i < p; i++ {
		var s float64
		for j := 0; j < p; j++ {
			s += minv[i][j] * x[j]
		}
		mx[i] = s
	}
	var denom float64 = 1
	for i := 0; i < p; i++ {
		denom += sign * x[i] * mx[i]
	}
	f := sign / denom
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			minv[i][j] -= f * mx[i] * mx[j]
		}
	}
}
