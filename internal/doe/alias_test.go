package doe

import (
	"strings"
	"testing"
)

func TestAliasStructure2to5minus1(t *testing.T) {
	// 2^(5-1) with E=ABCD: defining relation I=ABCDE, resolution V.
	a, err := AliasStructureOf(4, []string{"E=ABCD"})
	if err != nil {
		t.Fatal(err)
	}
	if a.Resolution != 5 {
		t.Fatalf("resolution = %d, want 5", a.Resolution)
	}
	if got := a.DefiningRelation(); got != "I = ABCDE" {
		t.Fatalf("defining relation %q", got)
	}
	if !a.CleanTwoFactorInteractions() {
		t.Fatal("resolution-V design must have clean 2FIs")
	}
	// Alias of A is BCDE (4th order).
	al := a.AliasesOf(1)
	if len(al) != 1 || effectName(al[0], a.K) != "BCDE" {
		t.Fatalf("aliases of A: %v", al)
	}
}

func TestAliasStructure2to4minus1ResIV(t *testing.T) {
	// 2^(4-1) with D=ABC: I=ABCD, resolution IV; 2FIs alias in pairs.
	a, err := AliasStructureOf(3, []string{"D=ABC"})
	if err != nil {
		t.Fatal(err)
	}
	if a.Resolution != 4 {
		t.Fatalf("resolution = %d, want 4", a.Resolution)
	}
	if a.CleanTwoFactorInteractions() {
		t.Fatal("resolution IV aliases 2FIs with each other")
	}
	// AB aliases with CD.
	ab := uint64(0b0011)
	al := a.AliasesOf(ab)
	if effectName(al[0], a.K) != "CD" {
		t.Fatalf("alias of AB = %q, want CD", effectName(al[0], a.K))
	}
}

func TestAliasStructureResIIIScreening(t *testing.T) {
	// 2^(5-2) with D=AB, E=AC: resolution III; main effects alias 2FIs.
	a, err := AliasStructureOf(3, []string{"D=AB", "E=AC"})
	if err != nil {
		t.Fatal(err)
	}
	if a.Resolution != 3 {
		t.Fatalf("resolution = %d, want 3", a.Resolution)
	}
	if len(a.Words) != 3 { // ABD, ACE, BCDE
		t.Fatalf("subgroup size = %d, want 3", len(a.Words))
	}
	chains := a.MainEffectChains(2)
	// A must be aliased with BD and CE at order ≤2.
	if !strings.Contains(chains[0], "BD") || !strings.Contains(chains[0], "CE") {
		t.Fatalf("chain for A: %q", chains[0])
	}
}

func TestAliasStructureMatchesDesignColumns(t *testing.T) {
	// The computed defining words must hold numerically on the generated
	// design: the product of the columns in every defining word is +1 in
	// every run.
	gens := []string{"E=ABC", "F=BCD"}
	a, err := AliasStructureOf(4, gens)
	if err != nil {
		t.Fatal(err)
	}
	d, err := FractionalFactorial(4, gens)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range a.Words {
		for _, run := range d.Runs {
			prod := 1.0
			for j := 0; j < a.K; j++ {
				if w&(1<<uint(j)) != 0 {
					prod *= run[j]
				}
			}
			if prod != 1 {
				t.Fatalf("defining word %s violated in run %v", effectName(w, a.K), run)
			}
		}
	}
}

func TestAliasStructureValidation(t *testing.T) {
	if _, err := AliasStructureOf(1, nil); err == nil {
		t.Fatal("base=1 must be rejected")
	}
	if _, err := AliasStructureOf(3, []string{"nope"}); err == nil {
		t.Fatal("malformed generator must be rejected")
	}
	if _, err := AliasStructureOf(3, []string{"D=AZ"}); err == nil {
		t.Fatal("out-of-range letter must be rejected")
	}
}

func TestAliasStructureFullFactorial(t *testing.T) {
	a, err := AliasStructureOf(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Resolution != 0 || len(a.Words) != 0 {
		t.Fatalf("full factorial has no defining words: %+v", a)
	}
	if !strings.Contains(a.DefiningRelation(), "full factorial") {
		t.Fatal("defining relation rendering wrong")
	}
	if !a.CleanTwoFactorInteractions() {
		t.Fatal("full factorial is clean")
	}
}

func TestEffectName(t *testing.T) {
	if effectName(0, 4) != "I" {
		t.Fatal("identity name wrong")
	}
	if effectName(0b1011, 4) != "ABD" {
		t.Fatalf("name = %q", effectName(0b1011, 4))
	}
}
