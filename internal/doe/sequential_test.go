package doe

import (
	"math"
	"testing"
)

func TestCandidateLatticeLevels(t *testing.T) {
	d, err := CandidateLattice(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 25 || d.K() != 2 {
		t.Fatalf("lattice 5^2: got n=%d k=%d", d.N(), d.K())
	}
	// The levels must be the opt.Quantized lattice for step=0.25:
	// −1, −0.5, 0, 0.5, 1 exactly, so adaptive candidates are cache hits
	// for quantized optimizer revisits.
	want := map[float64]bool{-1: true, -0.5: true, 0: true, 0.5: true, 1: true}
	for _, r := range d.Runs {
		for _, v := range r {
			if !want[v] {
				t.Fatalf("lattice level %v not on the quantized grid", v)
			}
		}
	}
	if _, err := CandidateLattice(0, 5); err == nil {
		t.Fatal("expected error for k=0")
	}
	if _, err := CandidateLattice(2, 1); err == nil {
		t.Fatal("expected error for 1 level")
	}
}

// detXtX computes det(XᵀX) for the model-expanded design by Gaussian
// elimination — small p, test-only.
func detXtX(d *Design, modelRow func([]float64) []float64) float64 {
	p := len(modelRow(d.Runs[0]))
	m := make([][]float64, p)
	for i := range m {
		m[i] = make([]float64, p)
	}
	for _, r := range d.Runs {
		row := modelRow(r)
		for a := 0; a < p; a++ {
			for b := 0; b < p; b++ {
				m[a][b] += row[a] * row[b]
			}
		}
	}
	det := 1.0
	for col := 0; col < p; col++ {
		piv := col
		for r := col + 1; r < p; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if m[piv][col] == 0 {
			return 0
		}
		if piv != col {
			m[col], m[piv] = m[piv], m[col]
			det = -det
		}
		det *= m[col][col]
		for r := col + 1; r < p; r++ {
			f := m[r][col] / m[col][col]
			for j := col; j < p; j++ {
				m[r][j] -= f * m[col][j]
			}
		}
	}
	return det
}

func TestAugmentDOptimalGrowsInformation(t *testing.T) {
	// Base: 2^2 corners + centre — 5 runs, one short of identifying the
	// 6-term quadratic (det XᵀX = 0).
	base, err := TwoLevelFactorial(2)
	if err != nil {
		t.Fatal(err)
	}
	base, err = base.Append(&Design{Name: "c", Runs: [][]float64{{0, 0}}})
	if err != nil {
		t.Fatal(err)
	}
	if det := detXtX(base, quadRow); det != 0 {
		t.Fatalf("base should be singular for the quadratic, det=%g", det)
	}
	cands, err := CandidateLattice(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	aug, err := AugmentDOptimal(base, cands, 4, quadRow, 0)
	if err != nil {
		t.Fatal(err)
	}
	if aug.N() != base.N()+4 {
		t.Fatalf("augmented n=%d, want %d", aug.N(), base.N()+4)
	}
	// Base runs are preserved verbatim as a prefix.
	for i, r := range base.Runs {
		for j, v := range r {
			if aug.Runs[i][j] != v {
				t.Fatalf("base run %d mutated: %v → %v", i, r, aug.Runs[i])
			}
		}
	}
	// Added runs come from the candidate lattice and identify the model.
	if det := detXtX(aug, quadRow); det <= 0 {
		t.Fatalf("augmented design still singular, det=%g", det)
	}
	// No added run duplicates a base run or another added run (the lattice
	// has plenty of distinct points).
	seen := map[string]bool{}
	for _, r := range aug.Runs {
		k := runKey(r)
		if seen[k] {
			t.Fatalf("duplicate run %v in augmented design", r)
		}
		seen[k] = true
	}
}

func TestAugmentDOptimalReducesWorstVariance(t *testing.T) {
	base, err := CentralComposite(2, CCF, 2)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := CandidateLattice(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	varAt := func(d *Design, x []float64) float64 {
		rows := make([][]float64, d.N())
		sel := make([]int, d.N())
		for i, r := range d.Runs {
			rows[i] = quadRow(r)
			sel[i] = i
		}
		minv := newRidgeInverse(rows, sel, len(quadRow(x)), 1e-12)
		if minv == nil {
			t.Fatal("singular design")
		}
		row := quadRow(x)
		return quadForm(minv, row, row)
	}
	// Worst-variance candidate before augmentation.
	worst, worstV := []float64(nil), math.Inf(-1)
	for _, c := range cands.Runs {
		if v := varAt(base, c); v > worstV {
			worst, worstV = c, v
		}
	}
	aug, err := AugmentDOptimal(base, cands, 3, quadRow, 0)
	if err != nil {
		t.Fatal(err)
	}
	if after := varAt(aug, worst); after >= worstV {
		t.Fatalf("augmentation did not reduce worst prediction variance: %g → %g", worstV, after)
	}
}

func TestAugmentDOptimalDeterministic(t *testing.T) {
	base, _ := CentralComposite(2, CCF, 1)
	cands, _ := CandidateLattice(2, 5)
	a, err := AugmentDOptimal(base, cands, 5, quadRow, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AugmentDOptimal(base, cands, 5, quadRow, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Runs {
		for j := range a.Runs[i] {
			if a.Runs[i][j] != b.Runs[i][j] {
				t.Fatalf("augmentation not deterministic at run %d", i)
			}
		}
	}
}

func TestAugmentDOptimalExhaustedPoolReplicates(t *testing.T) {
	base, err := TwoLevelFactorial(2)
	if err != nil {
		t.Fatal(err)
	}
	cands, _ := TwoLevelFactorial(2) // all 4 candidates already in base
	aug, err := AugmentDOptimal(base, cands, 3, quadRow, 0)
	if err != nil {
		t.Fatal(err)
	}
	if aug.N() != 7 {
		t.Fatalf("exhausted pool: got %d runs, want 7", aug.N())
	}
}

func TestAugmentDOptimalFromEmptyBase(t *testing.T) {
	cands, _ := CandidateLattice(2, 3)
	d, err := AugmentDOptimal(&Design{}, cands, 6, quadRow, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 6 {
		t.Fatalf("got %d runs, want 6", d.N())
	}
	if det := detXtX(d, quadRow); det <= 0 {
		t.Fatalf("greedy-from-empty design singular, det=%g", det)
	}
}

func TestAugmentDOptimalValidation(t *testing.T) {
	cands, _ := CandidateLattice(2, 3)
	if _, err := AugmentDOptimal(&Design{}, cands, 0, quadRow, 0); err == nil {
		t.Fatal("expected error for add=0")
	}
	if _, err := AugmentDOptimal(&Design{}, &Design{}, 1, quadRow, 0); err == nil {
		t.Fatal("expected error for empty candidates")
	}
	base3, _ := TwoLevelFactorial(3)
	if _, err := AugmentDOptimal(base3, cands, 1, quadRow, 0); err == nil {
		t.Fatal("expected error for factor-count mismatch")
	}
}
