package doe

import "fmt"

// Foldover returns the design augmented with its full foldover: every run
// repeated with all factor signs flipped. Folding a resolution-III
// screening design over de-aliases main effects from two-factor
// interactions (resolution IV) at the cost of doubling the run count —
// the standard sequential-experimentation move after an ambiguous screen.
func Foldover(d *Design) (*Design, error) {
	if d.N() == 0 {
		return nil, fmt.Errorf("doe: cannot fold an empty design")
	}
	runs := make([][]float64, 0, 2*d.N())
	runs = append(runs, cloneRuns(d.Runs)...)
	for _, r := range d.Runs {
		neg := make([]float64, len(r))
		for j, v := range r {
			neg[j] = -v
		}
		runs = append(runs, neg)
	}
	return &Design{Name: d.Name + "+foldover", Runs: runs}, nil
}

// SemiFoldover returns the design augmented with its foldover on a single
// factor: the extra runs flip only column j. It de-aliases the chosen
// factor's interactions with half the cost of a full foldover.
func SemiFoldover(d *Design, j int) (*Design, error) {
	if d.N() == 0 {
		return nil, fmt.Errorf("doe: cannot fold an empty design")
	}
	if j < 0 || j >= d.K() {
		return nil, fmt.Errorf("doe: fold factor %d outside 0..%d", j, d.K()-1)
	}
	runs := make([][]float64, 0, 2*d.N())
	runs = append(runs, cloneRuns(d.Runs)...)
	for _, r := range d.Runs {
		neg := append([]float64(nil), r...)
		neg[j] = -neg[j]
		runs = append(runs, neg)
	}
	return &Design{Name: fmt.Sprintf("%s+fold(%d)", d.Name, j), Runs: runs}, nil
}
