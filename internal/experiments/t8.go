package experiments

import (
	"math"

	"repro/internal/core"
	"repro/internal/doe"
	"repro/internal/report"
	"repro/internal/rsm"
)

// TabT8Refinement demonstrates sequential region refinement — the
// classical RSM response to a response the global quadratic fits poorly
// (here: harvested power, whose frequency-offset axis carries the
// Lorentzian resonance peak, flagged in R-T3). The same CCF design is
// re-run over progressively smaller regions centred on the design centre;
// validation error against fresh simulations inside the innermost region
// falls as the region shrinks, and the lack-of-fit statistic relaxes.
func TabT8Refinement(cfg Config) (*report.Table, error) {
	full := standardProblem(cfg)
	k := len(full.Factors)
	scales := []float64{1.0, 0.5, 0.25}

	// Shared validation points: natural-unit points inside the SMALLEST
	// region, so every surface is scored on identical physical designs.
	smallest, err := full.Subregion(make([]float64, k), scales[len(scales)-1])
	if err != nil {
		return nil, err
	}
	nVal := cfg.pick(4, 8)
	valNatural := make([][]float64, nVal)
	for i := range valNatural {
		nat := make([]float64, k)
		for j, f := range smallest.Factors {
			// Deterministic low-discrepancy-ish spread over the region.
			nat[j] = f.Min + (0.1+0.8*float64((i*(j+3))%nVal)/float64(nVal))*(f.Max-f.Min)
		}
		valNatural[i] = nat
	}
	simVals := make([]float64, nVal)
	for i, nat := range valNatural {
		coded := make([]float64, k)
		for j, f := range full.Factors {
			coded[j] = f.Encode(nat[j])
		}
		resp, err := full.ResponsesAt(coded)
		if err != nil {
			return nil, err
		}
		simVals[i] = resp[core.RespHarvestedPower]
	}

	t := report.NewTable("R-T8: sequential region refinement of the harvested-power surface",
		"region_scale", "runs", "R2", "val_RMSE_uW", "lack_of_fit")
	design, err := doe.CentralComposite(k, doe.CCF, 3)
	if err != nil {
		return nil, err
	}
	for _, scale := range scales {
		prob := full
		if scale < 1 {
			prob, err = full.Subregion(make([]float64, k), scale)
			if err != nil {
				return nil, err
			}
		}
		ds, err := prob.RunDesignParallel(design, 0)
		if err != nil {
			return nil, err
		}
		fit, err := rsm.FitModel(rsm.FullQuadratic(k), design.Runs, ds.Y[core.RespHarvestedPower])
		if err != nil {
			return nil, err
		}
		var sse float64
		for i, nat := range valNatural {
			coded := make([]float64, k)
			for j, f := range prob.Factors {
				coded[j] = f.Encode(nat[j])
			}
			d := fit.Predict(coded) - simVals[i]
			sse += d * d
		}
		rmse := math.Sqrt(sse / float64(nVal))

		lofNote := "n/a"
		if lof, err := fit.LackOfFitTest(design.Runs, ds.Y[core.RespHarvestedPower]); err == nil {
			if math.IsInf(lof.F, 1) {
				lofNote = "deterministic residual"
			} else if lof.Significant(0.05) {
				lofNote = "significant"
			} else {
				lofNote = "not significant"
			}
		}
		t.AddRow(scale, design.N(), fit.R2, rmse, lofNote)
	}
	t.AddNote("validation: %d fixed physical design points inside the innermost region", nVal)
	t.AddNote("the resonance peak (R-T3 caveat) becomes quadratic-friendly as the region shrinks")
	return t, nil
}
