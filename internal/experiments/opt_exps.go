package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/doe"
	"repro/internal/node"
	"repro/internal/opt"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/rsm"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tuner"
	"repro/internal/vibration"
)

// designObjective is the energy-management objective of R-T5/R-T6:
// maximize packets delivered subject to a non-negative energy margin,
// folded into a single penalized score (packets − penalty·deficit).
func designObjective(packets, marginMJ float64) float64 {
	score := packets
	if marginMJ < 0 {
		score += marginMJ // 1 packet per mJ of deficit
	}
	return score
}

// TabT5Optimizers reproduces R-T5: the DoE/RSM flow against the classical
// simulator-in-the-loop heuristics. Each method reports the objective of
// its chosen design CONFIRMED by a fresh simulation, the number of full
// simulations it consumed, and wall-clock time — the paper's central
// cost argument.
func TabT5Optimizers(cfg Config) (*report.Table, error) {
	p := standardProblem(cfg)
	k := len(p.Factors)

	confirm := func(x []float64) (float64, error) {
		resp, err := p.ResponsesAt(x)
		if err != nil {
			return 0, err
		}
		return designObjective(resp[core.RespPackets], resp[core.RespNetMargin]), nil
	}

	t := report.NewTable("R-T5: RSM-based optimization vs classical simulator-in-the-loop methods",
		"method", "confirmed_objective", "sim_calls", "wall_ms")

	// --- DoE/RSM flow: CCF design → surfaces → Nelder-Mead on surface →
	// one confirming simulation.
	startRSM := time.Now()
	design, err := doe.CentralComposite(k, doe.CCF, 3)
	if err != nil {
		return nil, err
	}
	ds, err := p.RunDesign(design)
	if err != nil {
		return nil, err
	}
	s, err := p.BuildSurfaces(ds, rsm.FullQuadratic(k))
	if err != nil {
		return nil, err
	}
	fitPackets := s.Fits[core.RespPackets]
	fitMargin := s.Fits[core.RespNetMargin]
	surfObj := opt.Maximize(func(x []float64) float64 {
		return designObjective(fitPackets.Predict(x), fitMargin.Predict(x))
	})
	bounds := opt.NewBounds(k)
	var bestRSM *opt.Result
	for i := 0; i < 5; i++ {
		r, err := opt.NelderMead(surfObj, bounds, validationPoints(k, 1, cfg.Seed+int64(20+i))[0], opt.NelderMeadConfig{MaxIters: 400})
		if err != nil {
			return nil, err
		}
		if bestRSM == nil || r.F < bestRSM.F {
			bestRSM = r
		}
	}
	confRSM, err := confirm(bestRSM.X)
	if err != nil {
		return nil, err
	}
	t.AddRow("DoE/RSM (CCF + Nelder-Mead)", confRSM, design.N()+1, ms(time.Since(startRSM)))

	// --- Simulated annealing directly on the simulator.
	saIters := cfg.pick(25, 80)
	startSA := time.Now()
	var simCallsSA int
	saObj := opt.Maximize(func(x []float64) float64 {
		simCallsSA++
		v, err := confirm(x)
		if err != nil {
			return math.Inf(-1)
		}
		return v
	})
	sa, err := opt.SimulatedAnnealing(saObj, bounds, opt.AnnealConfig{Iters: saIters, T0: 3, Cooling: 0.97, Seed: cfg.Seed + 30})
	if err != nil {
		return nil, err
	}
	t.AddRow("simulated annealing (on simulator)", -sa.F, simCallsSA, ms(time.Since(startSA)))

	// --- Genetic algorithm directly on the simulator.
	pop, gens := cfg.pick(8, 14), cfg.pick(3, 7)
	startGA := time.Now()
	var simCallsGA int
	gaObj := opt.Maximize(func(x []float64) float64 {
		simCallsGA++
		v, err := confirm(x)
		if err != nil {
			return math.Inf(-1)
		}
		return v
	})
	ga, err := opt.GeneticAlgorithm(gaObj, bounds, opt.GAConfig{Pop: pop, Gens: gens, Seed: cfg.Seed + 31})
	if err != nil {
		return nil, err
	}
	t.AddRow("genetic algorithm (on simulator)", -ga.F, simCallsGA, ms(time.Since(startGA)))

	t.AddNote("objective: packets delivered with a 1 pkt/mJ penalty on negative energy margin; horizon %.0f s", p.Horizon)
	t.AddNote("the RSM row includes the full surface build; its optimum is confirmed by one extra simulation")
	return t, nil
}

// scenarioSpec is one R-T6 application scenario.
type scenarioSpec struct {
	name   string
	source func(horizon float64) (vibration.Source, error)
	period float64 // default measurement period (s)
	tuned  bool    // enable the tuning controller
}

// TabT6Scenarios reproduces R-T6: the paper's "several test scenarios" —
// three application profiles from the introduction (environmental sensing,
// structural monitoring, pervasive healthcare). For each, the default
// configuration is compared against the configuration found by the
// DoE/RSM flow.
func TabT6Scenarios(cfg Config) (*report.Table, error) {
	horizon := cfg.horizon(20, 60)
	specs := []scenarioSpec{
		{
			name: "environmental (low rate, steady 45 Hz)",
			source: func(h float64) (vibration.Source, error) {
				return vibration.Sine{Amplitude: 0.5, Freq: 45}, nil
			},
			period: 15,
		},
		{
			name: "structural (bursty, wandering 55-65 Hz, tuned)",
			source: func(h float64) (vibration.Source, error) {
				return vibration.NewRandomWalkSine(0.7, 60, 0.2, 55, 65, h, 0.5, cfg.Seed+40)
			},
			period: 5,
			tuned:  true,
		},
		{
			name: "healthcare (high rate, noisy 46 Hz)",
			source: func(h float64) (vibration.Source, error) {
				tone := vibration.Sine{Amplitude: 0.8, Freq: 46}
				return vibration.NewNoisySine(tone, 0.1, h, 1e-3, cfg.Seed+41)
			},
			period: 2,
		},
	}

	t := report.NewTable("R-T6: test scenarios — default vs RSM-optimized energy management",
		"scenario", "config", "packets", "margin_mJ", "uptime", "objective")
	for _, spec := range specs {
		src, err := spec.source(horizon)
		if err != nil {
			return nil, err
		}
		prob := scenarioProblem(spec, src, horizon)

		// Default configuration = centre of the coded cube.
		centre := make([]float64, len(prob.Factors))
		defResp, err := prob.ResponsesAt(centre)
		if err != nil {
			return nil, fmt.Errorf("experiments: T6 %s default: %w", spec.name, err)
		}
		defObj := designObjective(defResp[core.RespPackets], defResp[core.RespNetMargin])
		t.AddRow(spec.name, "default", defResp[core.RespPackets], defResp[core.RespNetMargin], defResp[core.RespUptime], defObj)

		// DoE/RSM optimization.
		design, err := doe.CentralComposite(len(prob.Factors), doe.CCF, 2)
		if err != nil {
			return nil, err
		}
		ds, err := prob.RunDesign(design)
		if err != nil {
			return nil, fmt.Errorf("experiments: T6 %s design: %w", spec.name, err)
		}
		s, err := prob.BuildSurfaces(ds, rsm.FullQuadratic(len(prob.Factors)))
		if err != nil {
			return nil, err
		}
		fitPk := s.Fits[core.RespPackets]
		fitMg := s.Fits[core.RespNetMargin]
		obj := opt.Maximize(func(x []float64) float64 {
			return designObjective(fitPk.Predict(x), fitMg.Predict(x))
		})
		bounds := opt.NewBounds(len(prob.Factors))
		var best *opt.Result
		for i := 0; i < 4; i++ {
			r, err := opt.NelderMead(obj, bounds, validationPoints(len(prob.Factors), 1, cfg.Seed+int64(50+i))[0], opt.NelderMeadConfig{MaxIters: 300})
			if err != nil {
				return nil, err
			}
			if best == nil || r.F < best.F {
				best = r
			}
		}
		optResp, err := prob.ResponsesAt(best.X)
		if err != nil {
			return nil, err
		}
		optObj := designObjective(optResp[core.RespPackets], optResp[core.RespNetMargin])
		t.AddRow("", "RSM-optimized", optResp[core.RespPackets], optResp[core.RespNetMargin], optResp[core.RespUptime], optObj)
	}
	t.AddNote("optimized over period, supercap and vth with the scenario's own excitation; horizon %.0f s", horizon)
	return t, nil
}

// scenarioProblem builds a 3-factor problem (period, supercap, vth) around
// a scenario's excitation and base period.
func scenarioProblem(spec scenarioSpec, src vibration.Source, horizon float64) *core.Problem {
	return &core.Problem{
		Factors: []doe.Factor{
			{Name: "period", Min: math.Max(spec.period/4, 0.5), Max: spec.period * 2, Unit: "s"},
			{Name: "supercap", Min: 0.01, Max: 0.1, Unit: "F"},
			{Name: "vth", Min: 2.6, Max: 3.6, Unit: "V"},
		},
		Responses: []core.ResponseID{core.RespPackets, core.RespNetMargin, core.RespUptime},
		Horizon:   horizon,
		Build: func(nat []float64) (core.Scenario, error) {
			d := sim.DefaultDesign()
			d.InitialStoreV = 3.3
			d.Node.Period = nat[0]
			d.Store.C = nat[1]
			d.Policy = node.ThresholdPolicy{VThreshold: nat[2]}
			if spec.tuned {
				tc := tuner.DefaultConfig()
				tc.Interval = 5
				tc.ActuatorSpeed = 0.5e-3
				d.Tuner = &tc
			}
			return core.Scenario{Design: d, Source: src}, nil
		},
	}
}

// TabA5MultiplierModels is ablation A5: the behavioural charge-pump model
// against the full Newton-Raphson MNA circuit — charging trajectory error
// and CPU cost, anchoring the fast path to the reference electronics.
func TabA5MultiplierModels(cfg Config) (*report.Table, error) {
	const (
		stages   = 3
		stageCap = 100e-9
		coilR    = 1200.0
		// Store sized a few× the stage caps so the cascade settles within
		// the horizon (CW settling takes ≈ N²·C_store/C_stage cycles).
		storeC = 470e-9
		freq   = 50.0
		emfAmp = 1.5
	)
	horizon := cfg.horizon(1, 3)

	// Full MNA circuit reference.
	emf := circuit.Sin(emfAmp, freq, 0, 0)
	c, storeNode, err := power.BuildMultiplierCircuit(stages, stageCap, circuit.Schottky(), coilR, emf, storeC, 0, 0)
	if err != nil {
		return nil, err
	}
	startCirc := time.Now()
	res, err := c.Transient(horizon, 5e-5, circuit.TransientConfig{})
	if err != nil {
		return nil, err
	}
	circTime := time.Since(startCirc)
	circV := res.VoltageAt(storeNode)

	// Behavioural model integrated on the same lattice. The pump input
	// impedance 1/(2Nf·C) forms a divider with the coil resistance.
	m := power.MultiplierParams{Stages: stages, StageCap: stageCap, DiodeDrop: 0.22,
		InputR: 1 / (2 * float64(stages) * freq * stageCap)}
	store := power.Supercap{C: storeC}
	startBeh := time.Now()
	dt := 5e-5
	n := len(circV)
	behV := make([]float64, 0, n)
	v := 0.0
	behV = append(behV, v)
	vin := emfAmp * m.InputR / (coilR + m.InputR)
	for i := 1; i < n; i++ {
		ichg := m.ChargeCurrent(vin, freq, v)
		v = store.Step(v, dt, ichg, 0)
		behV = append(behV, v)
	}
	behTime := time.Since(startBeh)

	rmse := stats.RMSE(circV, behV)
	finalErr := math.Abs(circV[len(circV)-1] - behV[len(behV)-1])
	t := report.NewTable("A5: behavioural charge-pump model vs full MNA circuit",
		"model", "final_V", "traj_RMSE_V", "cpu_ms")
	t.AddRow("MNA circuit (Newton-Raphson)", circV[len(circV)-1], 0.0, ms(circTime))
	t.AddRow("behavioural (Dickson Voc/Rout)", behV[len(behV)-1], rmse, ms(behTime))
	t.AddNote("final-voltage error %.3f V over a %.0f s charge of %s-stage pump", finalErr, horizon, fmt.Sprint(stages))
	t.AddNote("Newton work: %d iterations, %d LU factorizations", res.Stats.NewtonIters, res.Stats.LUFactors)
	return t, nil
}
