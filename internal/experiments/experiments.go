// Package experiments implements the reproduction suite indexed in
// DESIGN.md §5: one generator per reconstructed table (R-T1…R-T7) and
// figure (R-F1…R-F5), plus the ablations of §6. Each generator runs the
// real pipeline (simulators, DoE, RSM, optimizers) and renders its result
// as a report.Table or report.Figure; cmd/experiments prints them all and
// the root bench_test.go wraps each in a testing.B benchmark.
package experiments

import (
	"time"

	"repro/internal/sim"
	"repro/internal/vibration"
)

// Config scales the experiments.
type Config struct {
	// Quick shrinks horizons and budgets for benchmarks and CI; the full
	// configuration is what cmd/experiments publishes in EXPERIMENTS.md.
	Quick bool
	// Seed makes every randomized stage reproducible.
	Seed int64
}

// horizon picks between the quick and full simulated duration.
func (c Config) horizon(quick, full float64) float64 {
	if c.Quick {
		return quick
	}
	return full
}

// pick chooses an integer budget.
func (c Config) pick(quick, full int) int {
	if c.Quick {
		return quick
	}
	return full
}

// ms renders a duration in milliseconds for tables.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// resonantSine returns a sine at the design's untuned resonance.
func resonantSine(d sim.Design, amplitude, offset float64) vibration.Source {
	return vibration.Sine{Amplitude: amplitude, Freq: d.Harv.ResonantFreq(d.Harv.GapMax) + offset}
}
