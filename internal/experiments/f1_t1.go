package experiments

import (
	"fmt"

	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tuner"
	"repro/internal/vibration"
)

// FigF1TunedVsUntuned reproduces R-F1: average harvested power versus input
// vibration frequency for the untuned harvester (resonance fixed at f_lo)
// and the tuned harvester (gap preset to match each excitation). It
// substantiates the claim that resonance-tunable harvesters are a suitable
// power source across a band of ambient frequencies.
func FigF1TunedVsUntuned(cfg Config) (*report.Figure, error) {
	d := sim.DefaultDesign()
	horizon := cfg.horizon(8, 20)
	step := 4.0
	if cfg.Quick {
		step = 8
	}
	lo, hi := d.Harv.FreqRange()
	var freqs, pUntuned, pTuned []float64
	for f := lo - 4; f <= hi+4; f += step {
		src := vibration.Sine{Amplitude: 0.6, Freq: f}
		run := func(gap float64) (float64, error) {
			dd := d
			dd.InitialGap = gap
			r, err := sim.RunFast(dd, sim.Config{Horizon: horizon, Source: src})
			if err != nil {
				return 0, err
			}
			return r.AvgHarvestedPower * 1e6, nil
		}
		pu, err := run(d.Harv.GapMax) // untuned: resonance at f_lo
		if err != nil {
			return nil, fmt.Errorf("experiments: F1 untuned at %g Hz: %w", f, err)
		}
		gap, _ := d.Harv.GapForFreq(f)
		pt, err := run(gap)
		if err != nil {
			return nil, fmt.Errorf("experiments: F1 tuned at %g Hz: %w", f, err)
		}
		freqs = append(freqs, f)
		pUntuned = append(pUntuned, pu)
		pTuned = append(pTuned, pt)
	}
	fig := report.NewFigure("R-F1: harvested power vs excitation frequency, tuned vs untuned", "freq_Hz", "P_harv_uW")
	if err := fig.Add("untuned", freqs, pUntuned); err != nil {
		return nil, err
	}
	if err := fig.Add("tuned", freqs, pTuned); err != nil {
		return nil, err
	}
	fig.AddNote("amplitude 0.6 m/s², horizon %.0f s; untuned resonance %.1f Hz, tunable band %.1f–%.1f Hz", horizon, lo, lo, hi)
	return fig, nil
}

// TabT1EngineSpeedup reproduces R-T1: the explicit linearized state-space
// engine against the Newton–Raphson implicit-trapezoidal reference — CPU
// time, Newton work and waveform accuracy. The companion paper [4] claims
// roughly two orders of magnitude; the table reports the measured factor.
func TabT1EngineSpeedup(cfg Config) (*report.Table, error) {
	d := sim.DefaultDesign()
	src := resonantSine(d, 0.6, 0)
	horizons := []float64{2, 5, 10}
	if cfg.Quick {
		horizons = []float64{1, 2}
	}
	t := report.NewTable("R-T1: fast linearized state-space engine vs Newton-Raphson reference",
		"horizon_s", "fast_ms", "ref_ms", "speedup_x", "ref_newton_iters", "storeV_rmse_mV", "harvest_err_pct")
	for _, h := range horizons {
		c := sim.Config{Horizon: h, Source: src, RecordWaveforms: true, Decimate: 100}
		fast, err := sim.RunFast(d, c)
		if err != nil {
			return nil, fmt.Errorf("experiments: T1 fast h=%g: %w", h, err)
		}
		ref, err := sim.RunReference(d, c)
		if err != nil {
			return nil, fmt.Errorf("experiments: T1 ref h=%g: %w", h, err)
		}
		rmse := stats.RMSE(fast.StoreV, ref.StoreV)
		relErr := 0.0
		if ref.HarvestedEnergy != 0 {
			relErr = 100 * abs(fast.HarvestedEnergy-ref.HarvestedEnergy) / ref.HarvestedEnergy
		}
		t.AddRow(h, ms(fast.Elapsed), ms(ref.Elapsed),
			float64(ref.Elapsed)/float64(fast.Elapsed),
			ref.NewtonIters, rmse*1e3, relErr)
	}
	t.AddNote("paper [4] claims ~2 orders of magnitude; both engines share the identical slow side")
	return t, nil
}

// TabA1StepSize is ablation A1: fast-engine accuracy and cost versus its
// step size, against the reference at the default sub-step.
func TabA1StepSize(cfg Config) (*report.Table, error) {
	d := sim.DefaultDesign()
	src := resonantSine(d, 0.6, 0)
	h := cfg.horizon(2, 5)
	refCfg := sim.Config{Horizon: h, Source: src, RecordWaveforms: true, Decimate: 1}
	ref, err := sim.RunReference(d, refCfg)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("A1: fast-engine step-size ablation",
		"dt_ms", "fast_ms", "storeV_rmse_mV", "harvest_err_pct")
	for _, dt := range []float64{0.5e-3, 1e-3, 2e-3} {
		// Match the recorded sampling lattice to the reference (1 ms).
		dec := int(1e-3/dt + 0.5)
		if dec < 1 {
			dec = 1
		}
		c := sim.Config{Horizon: h, DtSlow: dt, Source: src, RecordWaveforms: true, Decimate: dec}
		fast, err := sim.RunFast(d, c)
		if err != nil {
			return nil, err
		}
		n := len(fast.StoreV)
		if len(ref.StoreV) < n {
			n = len(ref.StoreV)
		}
		rmse := stats.RMSE(fast.StoreV[:n], ref.StoreV[:n])
		relErr := 0.0
		if ref.HarvestedEnergy != 0 {
			relErr = 100 * abs(fast.HarvestedEnergy-ref.HarvestedEnergy) / ref.HarvestedEnergy
		}
		t.AddRow(dt*1e3, ms(fast.Elapsed), rmse*1e3, relErr)
	}
	t.AddNote("reference: implicit trapezoidal, 50 µs sub-steps, horizon %.0f s", h)
	return t, nil
}

// FigF4TuningTransient reproduces R-F4: the closed-loop tuning controller
// tracking a stepped excitation frequency — resonance vs time against the
// (ground truth) dominant excitation frequency.
func FigF4TuningTransient(cfg Config) (*report.Figure, error) {
	d := sim.DefaultDesign()
	tc := tuner.DefaultConfig()
	tc.Interval = 5
	tc.EstimatorWin = 1
	tc.ActuatorSpeed = 0.5e-3
	d.Tuner = &tc

	horizon := cfg.horizon(60, 150)
	steps := []vibration.FreqStep{{At: 0, Freq: 48}, {At: horizon * 0.3, Freq: 70}}
	if !cfg.Quick {
		steps = append(steps, vibration.FreqStep{At: horizon * 0.65, Freq: 55})
	}
	src, err := vibration.NewSteppedSine(0.6, steps)
	if err != nil {
		return nil, err
	}
	r, err := sim.RunFast(d, sim.Config{Horizon: horizon, Source: src, RecordWaveforms: true, Decimate: 500})
	if err != nil {
		return nil, err
	}
	fig := report.NewFigure("R-F4: tuning controller tracking a stepped excitation frequency", "t_s", "freq_Hz")
	if err := fig.Add("f_resonance", r.T, r.ResFreq); err != nil {
		return nil, err
	}
	fExc := make([]float64, len(r.T))
	for i, tt := range r.T {
		fExc[i] = src.DominantFreq(tt)
	}
	if err := fig.Add("f_excitation", r.T, fExc); err != nil {
		return nil, err
	}
	fig.AddNote("tuning energy %.2f mJ over %d actuator moves; in-band fraction %.2f",
		r.TuneEnergy*1e3, r.TuneMoves, r.TuneInBandFrac)
	return fig, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
