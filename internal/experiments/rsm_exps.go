package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/doe"
	"repro/internal/explore"
	"repro/internal/report"
	"repro/internal/rsm"
)

// standardProblem builds the 4-factor problem used by the RSM experiments.
func standardProblem(cfg Config) *core.Problem {
	return core.StandardProblem(0.6, cfg.horizon(20, 60))
}

// validationPoints draws shared random coded points for fair cross-design
// comparison.
func validationPoints(k, n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		x := make([]float64, k)
		for j := range x {
			x[j] = rng.Float64()*2 - 1
		}
		pts[i] = x
	}
	return pts
}

// TabT2DesignComparison reproduces R-T2: competing experiment designs (and
// model orders) at comparable run budgets — run count, fit quality and
// honest out-of-sample RMSE on a shared validation set. This is the
// "moderate number of simulations" trade study.
func TabT2DesignComparison(cfg Config) (*report.Table, error) {
	p := standardProblem(cfg)
	k := len(p.Factors)
	quad := rsm.FullQuadratic(k)

	type entry struct {
		name   string
		design *doe.Design
		model  rsm.Model
	}
	var entries []entry
	add := func(name string, d *doe.Design, err error, m rsm.Model) error {
		if err != nil {
			return fmt.Errorf("experiments: T2 design %s: %w", name, err)
		}
		entries = append(entries, entry{name: name, design: d, model: m})
		return nil
	}
	ccf, err := doe.CentralComposite(k, doe.CCF, 3)
	if err := add("CCF + quadratic", ccf, err, quad); err != nil {
		return nil, err
	}
	cci, err := doe.CentralComposite(k, doe.CCI, 3)
	if err := add("CCI + quadratic", cci, err, quad); err != nil {
		return nil, err
	}
	bbd, err := doe.BoxBehnken(k, 3)
	if err := add("Box-Behnken + quadratic", bbd, err, quad); err != nil {
		return nil, err
	}
	lhs, err := doe.LatinHypercube(k, ccf.N(), cfg.Seed+1, 400)
	if err := add("LHS (same n) + quadratic", lhs, err, quad); err != nil {
		return nil, err
	}
	grid3, err := doe.FullFactorial(k, 3)
	if err != nil {
		return nil, err
	}
	dopt, err := doe.DOptimal(grid3, ccf.N(), quad.Row, cfg.Seed+2, 0)
	if err := add("D-optimal (same n) + quadratic", dopt, err, quad); err != nil {
		return nil, err
	}
	// Ablation A2: cheaper first-order models on a two-level design.
	twoLevel, err := doe.TwoLevelFactorial(k)
	if err != nil {
		return nil, err
	}
	centre := &doe.Design{Name: "c", Runs: [][]float64{make([]float64, k), make([]float64, k), make([]float64, k)}}
	folded, err := twoLevel.Append(centre)
	if err := add("2^k+3c + linear", folded, err, rsm.Linear(k)); err != nil {
		return nil, err
	}
	if err := add("2^k+3c + interactions", folded, nil, rsm.LinearWithInteractions(k)); err != nil {
		return nil, err
	}

	val := validationPoints(k, cfg.pick(6, 12), cfg.Seed+3)
	simVals := make([]float64, len(val))
	for i, x := range val {
		resp, err := p.ResponsesAt(x)
		if err != nil {
			return nil, err
		}
		simVals[i] = resp[core.RespStoredEnergy]
	}

	t := report.NewTable("R-T2: experiment designs compared (response: stored energy)",
		"design", "runs", "R2", "adjR2", "val_RMSE_J", "sim_time_ms")
	for _, e := range entries {
		ds, err := p.RunDesign(e.design)
		if err != nil {
			return nil, fmt.Errorf("experiments: T2 running %s: %w", e.name, err)
		}
		fit, err := rsm.FitModel(e.model, e.design.Runs, ds.Y[core.RespStoredEnergy])
		if err != nil {
			return nil, fmt.Errorf("experiments: T2 fitting %s: %w", e.name, err)
		}
		var sse float64
		for i, x := range val {
			d := fit.Predict(x) - simVals[i]
			sse += d * d
		}
		rmse := math.Sqrt(sse / float64(len(val)))
		t.AddRow(e.name, e.design.N(), fit.R2, fit.AdjR2, rmse, ms(ds.SimTime))
	}
	t.AddNote("validation: %d shared random points, simulated with the fast engine (horizon %.0f s)", len(val), p.Horizon)
	return t, nil
}

// buildStandardSurfaces runs the CCF design and fits full-quadratic
// surfaces — the common setup for T3/T4/F2/F3/T7.
func buildStandardSurfaces(cfg Config) (*core.Problem, *core.Surfaces, *core.Dataset, error) {
	p := standardProblem(cfg)
	design, err := doe.CentralComposite(len(p.Factors), doe.CCF, 3)
	if err != nil {
		return nil, nil, nil, err
	}
	ds, err := p.RunDesign(design)
	if err != nil {
		return nil, nil, nil, err
	}
	s, err := p.BuildSurfaces(ds, rsm.FullQuadratic(len(p.Factors)))
	if err != nil {
		return nil, nil, nil, err
	}
	return p, s, ds, nil
}

// TabT3RSMAccuracy reproduces R-T3: per-response surface accuracy at fresh
// random points — the "almost instantly but still with high accuracy"
// claim quantified.
func TabT3RSMAccuracy(cfg Config) (*report.Table, error) {
	_, s, _, err := buildStandardSurfaces(cfg)
	if err != nil {
		return nil, err
	}
	rep, err := s.Validate(cfg.pick(6, 15), cfg.Seed+5)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("R-T3: RSM prediction accuracy per performance indicator",
		"response", "R2", "mean_abs_err", "max_abs_err", "mean_rel_err_pct")
	for _, row := range rep.Rows {
		t.AddRow(string(row.Response), row.R2, row.MeanAbsErr, row.MaxAbsErr, 100*row.MeanRelErr)
	}
	t.AddNote("validated at %d random points; sim %.1f ms vs RSM %.3f ms for the same predictions",
		rep.N, ms(rep.SimTime), ms(rep.RSMTime))
	return t, nil
}

// TabT4ExplorationSpeed reproduces R-T4: the cost of one design-point
// evaluation via full simulation versus via the fitted surfaces, plus the
// build cost that amortizes it.
func TabT4ExplorationSpeed(cfg Config) (*report.Table, error) {
	p, s, ds, err := buildStandardSurfaces(cfg)
	if err != nil {
		return nil, err
	}
	k := len(p.Factors)
	nSim := cfg.pick(4, 10)
	simPts := validationPoints(k, nSim, cfg.Seed+7)
	startSim := time.Now()
	for _, x := range simPts {
		if _, err := p.SimulateCoded(x); err != nil {
			return nil, err
		}
	}
	simTime := time.Since(startSim)

	nRSM := 200000
	rsmPts := validationPoints(k, 1000, cfg.Seed+8)
	fit := s.Fits[core.RespStoredEnergy]
	startRSM := time.Now()
	var sink float64
	for i := 0; i < nRSM; i++ {
		sink += fit.Predict(rsmPts[i%len(rsmPts)])
	}
	rsmTime := time.Since(startRSM)
	_ = sink

	perSim := simTime / time.Duration(nSim)
	perRSM := rsmTime / time.Duration(nRSM)
	t := report.NewTable("R-T4: cost of one design-point evaluation",
		"evaluator", "evals", "total_ms", "per_eval_us", "speedup_x")
	t.AddRow("full simulation (fast engine)", nSim, ms(simTime), float64(perSim)/1e3, 1.0)
	t.AddRow("fitted RSM", nRSM, ms(rsmTime), float64(perRSM)/1e3, float64(perSim)/float64(perRSM))
	t.AddNote("RSM build cost: %d design runs, %.1f ms simulation + %.3f ms fitting — amortized after ~%d explored points",
		ds.Design.N(), ms(ds.SimTime), ms(s.FitTime), ds.Design.N())
	return t, nil
}

// FigF2Surface reproduces R-F2: the stored-energy response surface over
// the duty-cycle period × supercapacitor plane (three supercap slices),
// with direct simulations overlaid to show the surface tracks the
// simulator.
func FigF2Surface(cfg Config) (*report.Figure, error) {
	p, s, _, err := buildStandardSurfaces(cfg)
	if err != nil {
		return nil, err
	}
	ev, err := s.Evaluator(core.RespStoredEnergy)
	if err != nil {
		return nil, err
	}
	fig := report.NewFigure("R-F2: stored-energy surface over period x supercap (vth, freq at centre)", "period_coded", "stored_J")
	nLine := cfg.pick(9, 21)
	nSim := cfg.pick(3, 5)
	for _, slice := range []float64{-1, 0, 1} {
		base := []float64{0, slice, 0, 0}
		pts, err := explore.Sweep1D(ev, base, 0, nLine, nil)
		if err != nil {
			return nil, err
		}
		xs := make([]float64, len(pts))
		ys := make([]float64, len(pts))
		for i, pt := range pts {
			xs[i], ys[i] = pt.Coded, pt.Y
		}
		if err := fig.Add(fmt.Sprintf("rsm@cap=%+.0f", slice), xs, ys); err != nil {
			return nil, err
		}
		// Direct simulations at a few points on the same slice.
		sx := make([]float64, 0, nSim)
		sy := make([]float64, 0, nSim)
		for i := 0; i < nSim; i++ {
			cx := -1 + 2*float64(i)/float64(nSim-1)
			resp, err := p.ResponsesAt([]float64{cx, slice, 0, 0})
			if err != nil {
				return nil, err
			}
			sx = append(sx, cx)
			sy = append(sy, resp[core.RespStoredEnergy])
		}
		if err := fig.Add(fmt.Sprintf("sim@cap=%+.0f", slice), sx, sy); err != nil {
			return nil, err
		}
	}
	fig.AddNote("surface from CCF design; sim points are fresh confirmation runs")
	return fig, nil
}

// FigF3Tradeoff reproduces R-F3: the packets-delivered versus
// net-energy-margin trade-off across the duty-cycle/threshold plane, with
// the Pareto front extracted on the fitted surfaces.
func FigF3Tradeoff(cfg Config) (*report.Figure, error) {
	_, s, _, err := buildStandardSurfaces(cfg)
	if err != nil {
		return nil, err
	}
	evPackets, err := s.Evaluator(core.RespPackets)
	if err != nil {
		return nil, err
	}
	evMargin, err := s.Evaluator(core.RespNetMargin)
	if err != nil {
		return nil, err
	}
	// Candidate grid over period × vth at the centre of the other factors.
	n := cfg.pick(7, 15)
	var candidates [][]float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			candidates = append(candidates, []float64{
				-1 + 2*float64(i)/float64(n-1), 0,
				-1 + 2*float64(j)/float64(n-1), 0,
			})
		}
	}
	cands := explore.EvaluateAll(candidates, []explore.Evaluator{evPackets, evMargin})
	front := explore.ParetoFront(cands)

	fig := report.NewFigure("R-F3: packets vs net energy margin trade-off (Pareto front on the RSM)", "packets", "margin_mJ")
	allX := make([]float64, len(cands))
	allY := make([]float64, len(cands))
	for i, c := range cands {
		allX[i], allY[i] = c.Objectives[0], c.Objectives[1]
	}
	if err := fig.Add("all_candidates", allX, allY); err != nil {
		return nil, err
	}
	fx := make([]float64, len(front))
	fy := make([]float64, len(front))
	for i, c := range front {
		fx[i], fy[i] = c.Objectives[0], c.Objectives[1]
	}
	if err := fig.Add("pareto_front", fx, fy); err != nil {
		return nil, err
	}
	fig.AddNote("%d candidates on the period x vth plane; %d on the front; evaluation cost: surface only", len(cands), len(front))
	return fig, nil
}

// TabT7ANOVA reproduces R-T7: the ANOVA of the stored-energy surface —
// which design parameters (and interactions) significantly drive the
// response.
func TabT7ANOVA(cfg Config) (*report.Table, error) {
	p, s, _, err := buildStandardSurfaces(cfg)
	if err != nil {
		return nil, err
	}
	fit := s.Fits[core.RespStoredEnergy]
	t := report.NewTable("R-T7: ANOVA of the stored-energy response surface",
		"source", "dof", "SS", "F", "p", "signif")
	for _, row := range fit.ANOVA() {
		if row.Source == "regression" {
			t.AddRow(row.Source, row.DoF, row.SS, row.F, row.P, sigStars(row.P))
		} else {
			t.AddRow(row.Source, row.DoF, row.SS, "", "", "")
		}
	}
	names := make([]string, len(p.Factors))
	for i, f := range p.Factors {
		names[i] = f.Name
	}
	terms := fit.Model.Terms
	ts := fit.TStats()
	ps := fit.PValues()
	for i, term := range terms {
		if term.Degree() == 0 {
			continue
		}
		f := ts[i] * ts[i]
		t.AddRow("  "+term.Label(names), 1, f*fit.Sigma2, f, ps[i], sigStars(ps[i]))
	}
	t.AddNote("R² = %.4f, adjusted R² = %.4f, PRESS R² = %.4f", fit.R2, fit.AdjR2, fit.R2Pred)
	return t, nil
}

func sigStars(p float64) string {
	switch {
	case p < 0.001:
		return "***"
	case p < 0.01:
		return "**"
	case p < 0.05:
		return "*"
	case p < 0.1:
		return "."
	default:
		return ""
	}
}

// FigF5BuildCost reproduces R-F5: surface quality and build cost versus
// the number of design runs (maximin LHS of increasing size) — where the
// "moderate number of simulations" sits on the accuracy/cost curve.
func FigF5BuildCost(cfg Config) (*report.Figure, error) {
	p := standardProblem(cfg)
	k := len(p.Factors)
	sizes := []int{16, 24, 40, 64}
	if cfg.Quick {
		sizes = []int{16, 24}
	}
	val := validationPoints(k, cfg.pick(5, 10), cfg.Seed+11)
	simVals := make([]float64, len(val))
	for i, x := range val {
		resp, err := p.ResponsesAt(x)
		if err != nil {
			return nil, err
		}
		simVals[i] = resp[core.RespStoredEnergy]
	}
	var ns, rmses, costs []float64
	for _, n := range sizes {
		d, err := doe.LatinHypercube(k, n, cfg.Seed+12, 300)
		if err != nil {
			return nil, err
		}
		ds, err := p.RunDesign(d)
		if err != nil {
			return nil, err
		}
		fit, err := rsm.FitModel(rsm.FullQuadratic(k), d.Runs, ds.Y[core.RespStoredEnergy])
		if err != nil {
			return nil, err
		}
		var sse float64
		for i, x := range val {
			diff := fit.Predict(x) - simVals[i]
			sse += diff * diff
		}
		ns = append(ns, float64(n))
		rmses = append(rmses, math.Sqrt(sse/float64(len(val))))
		costs = append(costs, ms(ds.SimTime))
	}
	fig := report.NewFigure("R-F5: RSM quality and build cost vs design size (LHS)", "runs", "value")
	if err := fig.Add("val_RMSE_J", ns, rmses); err != nil {
		return nil, err
	}
	if err := fig.Add("sim_cost_ms", ns, costs); err != nil {
		return nil, err
	}
	fig.AddNote("quadratic model has %d coefficients; validation on %d fresh simulations", rsm.FullQuadratic(k).P(), len(val))
	return fig, nil
}
