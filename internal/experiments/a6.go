package experiments

import (
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/tuner"
	"repro/internal/vibration"
)

// TabA6Estimators is ablation A6: the tuning controller's frequency
// estimator compared in closed loop — the cheap zero-crossing counter
// against the Goertzel filter bank — under a clean off-resonance tone and
// under the same tone buried in band-limited noise. The metric that
// matters for energy management is what the system harvests and where the
// resonance ends up, not raw estimator error.
func TabA6Estimators(cfg Config) (*report.Table, error) {
	horizon := cfg.horizon(40, 120)
	base := sim.DefaultDesign()
	lo, hi := base.Harv.FreqRange()

	mkSource := func(noise float64) (vibration.Source, error) {
		tone := vibration.Sine{Amplitude: 0.6, Freq: 64}
		if noise <= 0 {
			return tone, nil
		}
		return vibration.NewNoisySine(tone, noise, horizon, 1e-3, cfg.Seed+60)
	}

	run := func(name string, noise float64, estimator func() (tuner.Estimator, error)) ([]interface{}, error) {
		src, err := mkSource(noise)
		if err != nil {
			return nil, err
		}
		tc := tuner.DefaultConfig()
		tc.Interval = 5
		tc.ActuatorSpeed = 1e-3
		if estimator != nil {
			est, err := estimator()
			if err != nil {
				return nil, err
			}
			tc.Estimator = est
		}
		d := base
		d.Tuner = &tc
		r, err := sim.RunFast(d, sim.Config{Horizon: horizon, Source: src})
		if err != nil {
			return nil, err
		}
		return []interface{}{
			name,
			r.HarvestedEnergy * 1e3,
			r.TuneEnergy * 1e3,
			r.TuneInBandFrac,
			r.FinalResFreq,
			r.TuneMoves,
		}, nil
	}

	goertzel := func() (tuner.Estimator, error) {
		return tuner.NewGoertzelEstimator(lo-2, hi+2, 64, 1.0)
	}
	t := report.NewTable("A6: tuning-controller frequency estimators in closed loop",
		"estimator / excitation", "harvested_mJ", "tune_cost_mJ", "in_band_frac", "final_res_Hz", "moves")
	cases := []struct {
		name  string
		noise float64
		est   func() (tuner.Estimator, error)
	}{
		{"zero-crossing / clean 64 Hz", 0, nil},
		{"Goertzel bank / clean 64 Hz", 0, goertzel},
		{"zero-crossing / +0.25 m/s² noise", 0.25, nil},
		{"Goertzel bank / +0.25 m/s² noise", 0.25, goertzel},
	}
	for _, c := range cases {
		row, err := run(c.name, c.noise, c.est)
		if err != nil {
			return nil, err
		}
		t.AddRow(row...)
	}
	t.AddNote("tone 64 Hz at 0.6 m/s², untuned resonance 45 Hz, horizon %.0f s", horizon)
	t.AddNote("finding: broadband noise excites the CURRENT resonance, which then dominates the EMF")
	t.AddNote("spectrum; the spectrally honest Goertzel bank therefore re-tunes later (or, at lower SNR,")
	t.AddNote("locks onto its own resonance indefinitely) and harvests less, while the zero-crossing")
	t.AddNote("counter's noise-inflated counts accidentally escape — real devices avoid the trap with a")
	t.AddNote("separate broadband accelerometer or periodic exploratory sweeps")
	return t, nil
}
