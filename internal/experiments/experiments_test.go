package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// quick is the reduced configuration used for the test suite.
var quick = Config{Quick: true, Seed: 1}

func TestFigF1TunedVsUntuned(t *testing.T) {
	fig, err := FigF1TunedVsUntuned(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	untuned, tuned := fig.Series[0], fig.Series[1]
	// Shape claim: at the untuned resonance both are comparable; far above
	// it the tuned harvester must win decisively.
	last := len(tuned.Y) - 1
	if tuned.Y[last] < 3*untuned.Y[last] {
		t.Fatalf("tuned power %v not ≫ untuned %v at the high end", tuned.Y[last], untuned.Y[last])
	}
	// Tuned power must exceed untuned at every frequency above the band
	// start (allowing equality near f_lo).
	for i := range tuned.Y {
		if tuned.Y[i] < untuned.Y[i]*0.8 {
			t.Fatalf("tuned below untuned at %v Hz", tuned.X[i])
		}
	}
}

func TestTabT1EngineSpeedup(t *testing.T) {
	tab, err := TabT1EngineSpeedup(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Speedup column (index 3) must show ≥10× on every row.
	for _, row := range tab.Rows {
		var speed float64
		if _, err := sscan(row[3], &speed); err != nil {
			t.Fatalf("bad speedup cell %q", row[3])
		}
		if speed < 10 {
			t.Fatalf("speedup %v below 10x", speed)
		}
	}
}

func TestTabA1StepSize(t *testing.T) {
	tab, err := TabA1StepSize(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Error must grow (or stay flat) with step size.
	var prev float64 = -1
	for _, row := range tab.Rows {
		var rmse float64
		if _, err := sscan(row[2], &rmse); err != nil {
			t.Fatalf("bad cell %q", row[2])
		}
		if prev >= 0 && rmse < prev*0.2 {
			t.Fatalf("error shrank sharply with larger steps: %v after %v", rmse, prev)
		}
		prev = rmse
	}
}

func TestFigF4TuningTransient(t *testing.T) {
	fig, err := FigF4TuningTransient(quick)
	if err != nil {
		t.Fatal(err)
	}
	res := fig.Series[0]
	// The resonance must end near the final excitation frequency (70 Hz in
	// the quick profile).
	final := res.Y[len(res.Y)-1]
	if final < 65 || final > 75 {
		t.Fatalf("final resonance %v Hz, want ≈70", final)
	}
	// And must have started at the untuned 45 Hz.
	if res.Y[0] > 50 {
		t.Fatalf("initial resonance %v Hz, want ≈45", res.Y[0])
	}
}

func TestTabT2DesignComparison(t *testing.T) {
	tab, err := TabT2DesignComparison(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d, want 7 designs", len(tab.Rows))
	}
	// Every quadratic-design fit should be respectable on the smooth
	// stored-energy response.
	for _, row := range tab.Rows {
		if !strings.Contains(row[0], "quadratic") {
			continue
		}
		var r2 float64
		if _, err := sscan(row[2], &r2); err != nil {
			t.Fatalf("bad R² cell %q", row[2])
		}
		if r2 < 0.9 {
			t.Fatalf("%s R² = %v, want ≥0.9", row[0], r2)
		}
	}
}

func TestTabT3RSMAccuracy(t *testing.T) {
	tab, err := TabT3RSMAccuracy(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 responses", len(tab.Rows))
	}
	// The stored-energy surface must validate tightly.
	for _, row := range tab.Rows {
		if row[0] != string("stored_energy_J") {
			continue
		}
		var rel float64
		if _, err := sscan(row[4], &rel); err != nil {
			t.Fatalf("bad cell %q", row[4])
		}
		if rel > 20 {
			t.Fatalf("stored-energy mean relative error %v%% too large", rel)
		}
	}
}

func TestTabT4ExplorationSpeed(t *testing.T) {
	tab, err := TabT4ExplorationSpeed(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	var speed float64
	if _, err := sscan(tab.Rows[1][4], &speed); err != nil {
		t.Fatalf("bad speedup cell %q", tab.Rows[1][4])
	}
	if speed < 100 {
		t.Fatalf("RSM speedup %v×, want ≥100×", speed)
	}
}

func TestFigF2Surface(t *testing.T) {
	fig, err := FigF2Surface(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 6 {
		t.Fatalf("series = %d, want 3 slices × (rsm + sim)", len(fig.Series))
	}
	// Bigger supercap slice must store more energy everywhere (rsm
	// series 0 = cap −1, series 4 = cap +1 rsm).
	loCap, hiCap := fig.Series[0], fig.Series[4]
	for i := range loCap.Y {
		if hiCap.Y[i] <= loCap.Y[i] {
			t.Fatalf("stored energy not increasing with capacitance at index %d", i)
		}
	}
}

func TestFigF3Tradeoff(t *testing.T) {
	fig, err := FigF3Tradeoff(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	all, front := fig.Series[0], fig.Series[1]
	if len(front.X) == 0 || len(front.X) > len(all.X) {
		t.Fatalf("front size %d vs %d candidates", len(front.X), len(all.X))
	}
}

func TestTabT7ANOVA(t *testing.T) {
	tab, err := TabT7ANOVA(quick)
	if err != nil {
		t.Fatal(err)
	}
	// 3 overall rows + 14 term rows for the 4-factor quadratic.
	if len(tab.Rows) != 3+14 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][0] != "regression" {
		t.Fatalf("first row %q", tab.Rows[0][0])
	}
	// The supercap main effect must be highly significant for stored
	// energy.
	found := false
	for _, row := range tab.Rows {
		if strings.TrimSpace(row[0]) == "supercap" {
			found = true
			if row[5] == "" {
				t.Fatalf("supercap not significant: %v", row)
			}
		}
	}
	if !found {
		t.Fatal("supercap term missing from the ANOVA")
	}
}

func TestFigF5BuildCost(t *testing.T) {
	fig, err := FigF5BuildCost(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	cost := fig.Series[1]
	// Simulation cost must grow with design size.
	if cost.Y[len(cost.Y)-1] <= cost.Y[0] {
		t.Fatalf("cost not increasing: %v", cost.Y)
	}
}

func TestTabT5Optimizers(t *testing.T) {
	tab, err := TabT5Optimizers(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The RSM flow must be competitive: within 30 % of the best confirmed
	// objective while using a bounded simulation budget.
	var objs []float64
	for _, row := range tab.Rows {
		var v float64
		if _, err := sscan(row[1], &v); err != nil {
			t.Fatalf("bad objective cell %q", row[1])
		}
		objs = append(objs, v)
	}
	best := objs[0]
	for _, v := range objs[1:] {
		if v > best {
			best = v
		}
	}
	if best > 0 && objs[0] < 0.7*best {
		t.Fatalf("RSM objective %v not competitive with best %v", objs[0], best)
	}
}

func TestTabT6Scenarios(t *testing.T) {
	tab, err := TabT6Scenarios(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 3 scenarios × 2 configs", len(tab.Rows))
	}
	// For each scenario, the optimized objective (last column) must be at
	// least as good as the default's (small tolerance for RSM error).
	for i := 0; i < 6; i += 2 {
		var defObj, optObj float64
		if _, err := sscan(tab.Rows[i][5], &defObj); err != nil {
			t.Fatalf("bad cell %q", tab.Rows[i][5])
		}
		if _, err := sscan(tab.Rows[i+1][5], &optObj); err != nil {
			t.Fatalf("bad cell %q", tab.Rows[i+1][5])
		}
		if optObj < defObj-2 {
			t.Fatalf("scenario %q: optimized %v worse than default %v", tab.Rows[i][0], optObj, defObj)
		}
	}
}

func TestTabA5MultiplierModels(t *testing.T) {
	tab, err := TabA5MultiplierModels(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	var circV, behV float64
	if _, err := sscan(tab.Rows[0][1], &circV); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(tab.Rows[1][1], &behV); err != nil {
		t.Fatal(err)
	}
	// Same ballpark final voltage.
	if behV < circV/2 || behV > circV*2 {
		t.Fatalf("behavioural %v V vs circuit %v V: more than 2× apart", behV, circV)
	}
	// The behavioural model must be orders of magnitude cheaper.
	var circMS, behMS float64
	if _, err := sscan(tab.Rows[0][3], &circMS); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(tab.Rows[1][3], &behMS); err != nil {
		t.Fatal(err)
	}
	if behMS*10 > circMS {
		t.Fatalf("behavioural %v ms not ≪ circuit %v ms", behMS, circMS)
	}
}

// sscan parses one float from a table cell.
func sscan(cell string, out *float64) (int, error) {
	return fmtSscan(cell, out)
}

func fmtSscan(cell string, out *float64) (int, error) {
	return fmt.Sscan(cell, out)
}

func TestTabT8Refinement(t *testing.T) {
	tab, err := TabT8Refinement(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 region scales", len(tab.Rows))
	}
	var first, last float64
	if _, err := sscan(tab.Rows[0][3], &first); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(tab.Rows[2][3], &last); err != nil {
		t.Fatal(err)
	}
	// Refinement must not make the inner-region prediction worse.
	if last > first {
		t.Fatalf("refined RMSE %v worse than full-region %v", last, first)
	}
}

func TestTabA6Estimators(t *testing.T) {
	tab, err := TabA6Estimators(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// On the clean tone (first two rows) both estimators must re-tune the
	// harvester into the neighbourhood of 64 Hz and harvest something.
	for _, row := range tab.Rows[:2] {
		var fres, harvested float64
		if _, err := sscan(row[4], &fres); err != nil {
			t.Fatal(err)
		}
		if _, err := sscan(row[1], &harvested); err != nil {
			t.Fatal(err)
		}
		if fres < 58 || fres > 70 {
			t.Fatalf("%s left resonance at %v Hz", row[0], fres)
		}
		if harvested <= 0 {
			t.Fatalf("%s harvested nothing", row[0])
		}
	}
	// The noisy rows are reported, not asserted: the self-locking
	// phenomenon they expose is the table's finding.
}
