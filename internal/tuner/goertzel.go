package tuner

import (
	"fmt"
	"math"
)

// GoertzelEstimator estimates the dominant frequency of the coil EMF by
// evaluating a bank of Goertzel filters (single-bin DFTs) over a sliding
// window and picking the strongest bin, refined by parabolic interpolation
// between neighbours. It is more robust to additive noise than
// zero-crossing counting, at the cost of a bank of multiply-accumulates
// per sample — the trade a production tuning controller would weigh.
type GoertzelEstimator struct {
	fmin, fmax float64
	bins       int
	window     float64

	samples  []float64
	dts      []float64
	elapsed  float64
	lastFreq float64
	haveFreq bool
}

// NewGoertzelEstimator builds an estimator scanning [fmin, fmax] Hz with
// the given number of bins over windows of the given duration.
func NewGoertzelEstimator(fmin, fmax float64, bins int, window float64) (*GoertzelEstimator, error) {
	if fmin <= 0 || fmax <= fmin {
		return nil, fmt.Errorf("tuner: bad Goertzel band [%g, %g]", fmin, fmax)
	}
	if bins < 3 {
		return nil, fmt.Errorf("tuner: need ≥3 Goertzel bins, got %d", bins)
	}
	if window <= 0 {
		return nil, fmt.Errorf("tuner: window %g must be positive", window)
	}
	return &GoertzelEstimator{fmin: fmin, fmax: fmax, bins: bins, window: window}, nil
}

// AddSample feeds one EMF sample taken dt seconds after the previous one.
func (g *GoertzelEstimator) AddSample(dt, v float64) {
	if dt <= 0 {
		return
	}
	g.samples = append(g.samples, v)
	g.dts = append(g.dts, dt)
	g.elapsed += dt
	if g.elapsed >= g.window {
		g.analyze()
		g.samples = g.samples[:0]
		g.dts = g.dts[:0]
		g.elapsed = 0
	}
}

// analyze runs the filter bank over the buffered window. Sampling is
// assumed near-uniform (the simulator's fixed slow step); the mean dt sets
// the sample rate.
func (g *GoertzelEstimator) analyze() {
	n := len(g.samples)
	if n < 8 {
		return
	}
	var dtSum float64
	for _, d := range g.dts {
		dtSum += d
	}
	fs := float64(n) / dtSum

	power := make([]float64, g.bins)
	freqs := make([]float64, g.bins)
	for b := 0; b < g.bins; b++ {
		f := g.fmin + (g.fmax-g.fmin)*float64(b)/float64(g.bins-1)
		freqs[b] = f
		// Goertzel recurrence for one bin.
		w := 2 * math.Pi * f / fs
		coeff := 2 * math.Cos(w)
		var s0, s1, s2 float64
		for _, x := range g.samples {
			s0 = x + coeff*s1 - s2
			s2 = s1
			s1 = s0
		}
		power[b] = s1*s1 + s2*s2 - coeff*s1*s2
	}
	best := 0
	for b := range power {
		if power[b] > power[best] {
			best = b
		}
	}
	f := freqs[best]
	// Parabolic interpolation around the peak bin.
	if best > 0 && best < g.bins-1 {
		pm, p0, pp := power[best-1], power[best], power[best+1]
		den := pm - 2*p0 + pp
		if den != 0 {
			delta := 0.5 * (pm - pp) / den
			if delta > -1 && delta < 1 {
				step := (g.fmax - g.fmin) / float64(g.bins-1)
				f += delta * step
			}
		}
	}
	g.lastFreq = f
	g.haveFreq = true
}

// Freq returns the latest estimate; ok is false until a full window has
// been analyzed.
func (g *GoertzelEstimator) Freq() (float64, bool) {
	return g.lastFreq, g.haveFreq
}
