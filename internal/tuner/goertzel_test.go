package tuner

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/harvester"
)

func feedTone(e *GoertzelEstimator, f, amp, noise, seconds, dt float64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	phase := 0.0
	for i := 0; i < int(seconds/dt); i++ {
		phase += 2 * math.Pi * f * dt
		e.AddSample(dt, amp*math.Sin(phase)+noise*rng.NormFloat64())
	}
}

func TestGoertzelCleanTone(t *testing.T) {
	g, err := NewGoertzelEstimator(40, 95, 56, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.Freq(); ok {
		t.Fatal("no estimate before a full window")
	}
	feedTone(g, 63.2, 1, 0, 2, 1e-3, 1)
	got, ok := g.Freq()
	if !ok {
		t.Fatal("expected an estimate")
	}
	if math.Abs(got-63.2) > 0.5 {
		t.Fatalf("estimate %v, want ≈63.2", got)
	}
}

func TestGoertzelInterpolationBeatsBinWidth(t *testing.T) {
	// Bin spacing (95−40)/15 ≈ 3.7 Hz; interpolation must land much
	// closer than half a bin.
	g, err := NewGoertzelEstimator(40, 95, 16, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	feedTone(g, 57.7, 1, 0, 2, 1e-3, 1)
	got, _ := g.Freq()
	if math.Abs(got-57.7) > 1.0 {
		t.Fatalf("interpolated estimate %v, want within 1 Hz of 57.7", got)
	}
}

func TestGoertzelNoiseRobustness(t *testing.T) {
	// At unit SNR the Goertzel bank must still find the tone; the
	// zero-crossing counter degrades badly under the same conditions.
	gz, err := NewGoertzelEstimator(40, 95, 56, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	zc, err := NewZeroCrossingEstimator(1.0)
	if err != nil {
		t.Fatal(err)
	}
	const f = 61.0
	rng := rand.New(rand.NewSource(3))
	phase := 0.0
	const dt = 1e-3
	for i := 0; i < int(4/dt); i++ {
		phase += 2 * math.Pi * f * dt
		v := math.Sin(phase) + 1.0*rng.NormFloat64()
		gz.AddSample(dt, v)
		zc.AddSample(dt, v)
	}
	fg, ok := gz.Freq()
	if !ok {
		t.Fatal("goertzel produced no estimate")
	}
	if math.Abs(fg-f) > 1.5 {
		t.Fatalf("goertzel estimate %v under noise, want ≈%v", fg, f)
	}
	fz, _ := zc.Freq()
	if math.Abs(fz-f) < math.Abs(fg-f) {
		t.Logf("note: zero-crossing happened to win this seed (%v vs %v)", fz, fg)
	}
	// The expected qualitative outcome: zero crossings over-count under
	// noise (each noise wiggle near zero adds crossings).
	if fz < f+5 {
		t.Fatalf("zero-crossing estimate %v did not over-count as expected under unit SNR", fz)
	}
}

func TestGoertzelTracksChanges(t *testing.T) {
	g, err := NewGoertzelEstimator(40, 95, 56, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	feedTone(g, 50, 1, 0, 1, 1e-3, 1)
	f1, _ := g.Freq()
	feedTone(g, 80, 1, 0, 1, 1e-3, 2)
	f2, _ := g.Freq()
	if math.Abs(f1-50) > 1 || math.Abs(f2-80) > 1 {
		t.Fatalf("tracking failed: %v then %v", f1, f2)
	}
}

func TestGoertzelValidation(t *testing.T) {
	if _, err := NewGoertzelEstimator(0, 90, 10, 1); err == nil {
		t.Fatal("fmin=0 must be rejected")
	}
	if _, err := NewGoertzelEstimator(50, 40, 10, 1); err == nil {
		t.Fatal("fmax<fmin must be rejected")
	}
	if _, err := NewGoertzelEstimator(40, 90, 2, 1); err == nil {
		t.Fatal("too few bins must be rejected")
	}
	if _, err := NewGoertzelEstimator(40, 90, 10, 0); err == nil {
		t.Fatal("zero window must be rejected")
	}
	g, _ := NewGoertzelEstimator(40, 90, 10, 1)
	g.AddSample(0, 1)  // ignored
	g.AddSample(-1, 1) // ignored
	if _, ok := g.Freq(); ok {
		t.Fatal("bad samples must not produce estimates")
	}
}

func TestGoertzelShortWindowNoEstimate(t *testing.T) {
	// Fewer than 8 samples in a window: analyze refuses.
	g, _ := NewGoertzelEstimator(40, 90, 10, 0.003)
	for i := 0; i < 5; i++ {
		g.AddSample(1e-3, 1)
	}
	if _, ok := g.Freq(); ok {
		t.Fatal("tiny window must not estimate")
	}
}

func TestControllerWithGoertzelEstimator(t *testing.T) {
	h := harvester.Default()
	gz, err := NewGoertzelEstimator(40, 95, 56, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Interval = 2
	cfg.ActuatorSpeed = 2e-3
	cfg.Estimator = gz
	c, err := New(cfg, h, h.GapMax)
	if err != nil {
		t.Fatal(err)
	}
	const dt = 1e-3
	phase := 0.0
	for i := 0; i < int(30/dt); i++ {
		phase += 2 * math.Pi * 70 * dt
		c.Step(dt, math.Sin(phase), 4.0)
	}
	if got := c.ResonantFreq(); math.Abs(got-70) > 2 {
		t.Fatalf("Goertzel-driven controller converged to %v Hz, want ≈70", got)
	}
}
