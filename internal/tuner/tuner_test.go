package tuner

import (
	"math"
	"testing"

	"repro/internal/harvester"
)

func TestZeroCrossingEstimatorSine(t *testing.T) {
	z, err := NewZeroCrossingEstimator(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := z.Freq(); ok {
		t.Fatal("no estimate before a full window")
	}
	const f = 47.0
	const dt = 1e-4
	for i := 0; i < 20000; i++ { // 2 s
		tt := float64(i) * dt
		z.AddSample(dt, math.Sin(2*math.Pi*f*tt))
	}
	got, ok := z.Freq()
	if !ok {
		t.Fatal("expected an estimate after 2 s")
	}
	if math.Abs(got-f) > 1.0 {
		t.Fatalf("estimate = %v, want ≈%v", got, f)
	}
}

func TestZeroCrossingTracksChange(t *testing.T) {
	z, _ := NewZeroCrossingEstimator(0.5)
	const dt = 1e-4
	phase := 0.0
	feed := func(f float64, seconds float64) {
		for i := 0; i < int(seconds/dt); i++ {
			phase += 2 * math.Pi * f * dt
			z.AddSample(dt, math.Sin(phase))
		}
	}
	feed(50, 1.0)
	f1, _ := z.Freq()
	feed(80, 1.0)
	f2, _ := z.Freq()
	if math.Abs(f1-50) > 2 {
		t.Fatalf("first estimate %v, want ≈50", f1)
	}
	if math.Abs(f2-80) > 2 {
		t.Fatalf("second estimate %v, want ≈80", f2)
	}
}

func TestZeroCrossingIgnoresBadDt(t *testing.T) {
	z, _ := NewZeroCrossingEstimator(1)
	z.AddSample(0, 1)
	z.AddSample(-1, -1)
	if _, ok := z.Freq(); ok {
		t.Fatal("no estimate expected")
	}
}

func TestEstimatorValidation(t *testing.T) {
	if _, err := NewZeroCrossingEstimator(0); err == nil {
		t.Fatal("zero window must error")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	mut := []func(*Config){
		func(c *Config) { c.Interval = 0 },
		func(c *Config) { c.DeadbandHz = -1 },
		func(c *Config) { c.MaxStepHz = -1 },
		func(c *Config) { c.ActuatorPower = -1 },
		func(c *Config) { c.ActuatorSpeed = 0 },
		func(c *Config) { c.EstimatorWin = 0 },
		func(c *Config) { c.MinStoreV = -1 },
	}
	for i, m := range mut {
		c := DefaultConfig()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

func TestNewValidation(t *testing.T) {
	h := harvester.Default()
	if _, err := New(Config{}, h, h.GapMax); err == nil {
		t.Fatal("invalid config must be rejected")
	}
	bad := h
	bad.Mass = 0
	if _, err := New(DefaultConfig(), bad, h.GapMax); err == nil {
		t.Fatal("invalid harvester must be rejected")
	}
	// Gap outside travel is clamped.
	c, err := New(DefaultConfig(), h, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Gap() != h.GapMax {
		t.Fatalf("gap = %v, want clamped to %v", c.Gap(), h.GapMax)
	}
}

// driveController runs the closed loop against a synthetic excitation of
// the given frequency and returns the controller.
func driveController(t *testing.T, cfg Config, fExc, seconds float64) *Controller {
	t.Helper()
	h := harvester.Default()
	c, err := New(cfg, h, h.GapMax)
	if err != nil {
		t.Fatal(err)
	}
	const dt = 1e-4
	phase := 0.0
	for i := 0; i < int(seconds/dt); i++ {
		phase += 2 * math.Pi * fExc * dt
		// EMF proxy: unit-amplitude tone at the excitation frequency (the
		// coil velocity tracks the excitation in steady state).
		c.Step(dt, math.Sin(phase), 4.0)
	}
	return c
}

func TestControllerConvergesToExcitation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Interval = 2
	cfg.EstimatorWin = 0.5
	cfg.ActuatorSpeed = 2e-3 // fast actuator so the test horizon is short
	c := driveController(t, cfg, 70, 30)
	if got := c.ResonantFreq(); math.Abs(got-70) > 1.5 {
		t.Fatalf("resonance = %v Hz, want ≈70", got)
	}
	if c.Moves() == 0 {
		t.Fatal("controller never moved the actuator")
	}
	if c.Energy() <= 0 {
		t.Fatal("tuning must consume energy")
	}
}

func TestControllerIdleInsideDeadband(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Interval = 1
	cfg.EstimatorWin = 0.5
	// Excitation exactly at the untuned resonance (45 Hz): no moves.
	c := driveController(t, cfg, 45, 10)
	if c.Moves() != 0 {
		t.Fatalf("controller moved %d times inside the deadband", c.Moves())
	}
	if c.Energy() != 0 {
		t.Fatalf("idle controller consumed %v J", c.Energy())
	}
	if c.Decisions() == 0 {
		t.Fatal("controller must still take decisions")
	}
}

func TestControllerSuspendsWhenStoreLow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Interval = 1
	cfg.EstimatorWin = 0.5
	cfg.MinStoreV = 2.0
	h := harvester.Default()
	c, err := New(cfg, h, h.GapMax)
	if err != nil {
		t.Fatal(err)
	}
	const dt = 1e-4
	phase := 0.0
	for i := 0; i < int(10/dt); i++ {
		phase += 2 * math.Pi * 70 * dt
		c.Step(dt, math.Sin(phase), 1.0) // store below MinStoreV
	}
	if c.Moves() != 0 {
		t.Fatal("controller must not tune on an empty store")
	}
}

func TestMaxStepLimitsRetune(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Interval = 5
	cfg.EstimatorWin = 0.5
	cfg.MaxStepHz = 3
	cfg.ActuatorSpeed = 10e-3
	h := harvester.Default()
	c, err := New(cfg, h, h.GapMax) // resonance 45 Hz
	if err != nil {
		t.Fatal(err)
	}
	const dt = 1e-4
	phase := 0.0
	// Run just past the first decision (one interval + margin).
	for i := 0; i < int(5.5/dt); i++ {
		phase += 2 * math.Pi * 70 * dt
		c.Step(dt, math.Sin(phase), 4.0)
	}
	// After one decision limited to 3 Hz, resonance must be ≈48, not 70.
	got := c.ResonantFreq()
	if got > 50 {
		t.Fatalf("resonance jumped to %v Hz despite 3 Hz step limit", got)
	}
	if got < 45.5 {
		t.Fatalf("resonance %v Hz: controller never acted", got)
	}
}

func TestInBandFraction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Interval = 2
	cfg.EstimatorWin = 0.5
	cfg.ActuatorSpeed = 2e-3
	c := driveController(t, cfg, 70, 40)
	frac := c.InBandFraction()
	if frac <= 0 || frac > 1 {
		t.Fatalf("in-band fraction = %v", frac)
	}
	// After convergence most of the tail is in-band; over 40 s expect a
	// meaningful share.
	if frac < 0.2 {
		t.Fatalf("in-band fraction = %v, expected the loop to settle", frac)
	}
	// A controller that never ran reports 0.
	h := harvester.Default()
	c2, _ := New(cfg, h, h.GapMax)
	if c2.InBandFraction() != 0 {
		t.Fatal("fresh controller must report 0")
	}
}

func TestStepZeroDt(t *testing.T) {
	h := harvester.Default()
	c, _ := New(DefaultConfig(), h, h.GapMax)
	if got := c.Step(0, 1, 4); got != 0 {
		t.Fatalf("zero-dt power = %v", got)
	}
}

func BenchmarkControllerStep(b *testing.B) {
	h := harvester.Default()
	c, err := New(DefaultConfig(), h, h.GapMax)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step(1e-3, math.Sin(2*math.Pi*60*float64(i)*1e-3), 4)
	}
}
