// Package tuner implements the resonance-tuning controller of the tunable
// harvester: a zero-crossing frequency estimator observing the coil EMF, a
// linear actuator that moves the tuning magnet (changing the gap and hence
// the resonant frequency), and the closed-loop control policy from the
// companion paper [2] — periodically estimate the dominant excitation
// frequency, and when it has moved outside a deadband, drive the actuator
// toward the gap whose resonance matches it.
//
// Tuning is not free: the actuator draws ActuatorPower from the
// supercapacitor while moving, so aggressive tuning (small deadband, fast
// re-checks) trades stored energy for resonance match — one of the
// trade-offs the DoE flow quantifies.
package tuner

import (
	"fmt"
	"math"

	"repro/internal/harvester"
)

// ZeroCrossingEstimator estimates the dominant frequency of a signal by
// counting rising zero crossings over a sliding window, the standard
// low-cost technique used by harvester tuning controllers.
type ZeroCrossingEstimator struct {
	Window float64 // observation window (s)

	prevSample float64
	havePrev   bool
	elapsed    float64
	crossings  int
	lastFreq   float64
	haveFreq   bool
}

// NewZeroCrossingEstimator returns an estimator with the given window.
func NewZeroCrossingEstimator(window float64) (*ZeroCrossingEstimator, error) {
	if window <= 0 {
		return nil, fmt.Errorf("tuner: window %g must be positive", window)
	}
	return &ZeroCrossingEstimator{Window: window}, nil
}

// AddSample feeds one signal sample taken dt seconds after the previous
// one. When a full window has elapsed, the frequency estimate is updated.
func (z *ZeroCrossingEstimator) AddSample(dt, v float64) {
	if dt <= 0 {
		return
	}
	if z.havePrev && z.prevSample <= 0 && v > 0 {
		z.crossings++
	}
	z.prevSample = v
	z.havePrev = true
	z.elapsed += dt
	if z.elapsed >= z.Window {
		z.lastFreq = float64(z.crossings) / z.elapsed
		z.haveFreq = true
		z.elapsed = 0
		z.crossings = 0
	}
}

// Freq returns the latest frequency estimate in Hz; ok is false until the
// first full window has been observed.
func (z *ZeroCrossingEstimator) Freq() (f float64, ok bool) {
	return z.lastFreq, z.haveFreq
}

// Estimator is the frequency-estimation strategy the controller consults:
// both ZeroCrossingEstimator (cheap, noise-sensitive) and
// GoertzelEstimator (a filter bank, noise-robust) satisfy it.
type Estimator interface {
	// AddSample feeds one EMF sample taken dt seconds after the previous.
	AddSample(dt, v float64)
	// Freq returns the latest estimate; ok is false before the first
	// complete observation window.
	Freq() (f float64, ok bool)
}

// Config sets the tuning-controller behaviour.
type Config struct {
	Interval      float64 // time between tuning decisions (s)
	DeadbandHz    float64 // no action when |f_est − f_res| is below this
	MaxStepHz     float64 // largest resonance change per decision (Hz); 0 = unlimited
	ActuatorPower float64 // electrical power drawn while the actuator moves (W)
	ActuatorSpeed float64 // gap slew rate (m/s)
	EstimatorWin  float64 // estimator window (s)
	MinStoreV     float64 // suspend tuning when the store is below this (V)

	// Estimator overrides the default zero-crossing estimator (e.g. with a
	// GoertzelEstimator). When nil, a ZeroCrossingEstimator with
	// EstimatorWin is used. The override's own window configuration wins.
	Estimator Estimator
}

// DefaultConfig returns a controller matching the published device class:
// check every 10 s, ±0.5 Hz deadband, and a leadscrew-type linear actuator
// (5 mW while moving at 0.5 mm/s, holding position for free) — the
// mechanism that makes tuning energy pay back within minutes rather than
// hours. Tuning is suspended below 2.5 V so the actuator cannot brown the
// node out.
func DefaultConfig() Config {
	return Config{
		Interval:      10,
		DeadbandHz:    0.5,
		MaxStepHz:     0, // unlimited
		ActuatorPower: 5e-3,
		ActuatorSpeed: 0.5e-3,
		EstimatorWin:  1.0,
		MinStoreV:     2.5,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Interval <= 0:
		return fmt.Errorf("tuner: interval %g must be positive", c.Interval)
	case c.DeadbandHz < 0:
		return fmt.Errorf("tuner: deadband %g must be non-negative", c.DeadbandHz)
	case c.MaxStepHz < 0:
		return fmt.Errorf("tuner: max step %g must be non-negative", c.MaxStepHz)
	case c.ActuatorPower < 0:
		return fmt.Errorf("tuner: actuator power %g must be non-negative", c.ActuatorPower)
	case c.ActuatorSpeed <= 0:
		return fmt.Errorf("tuner: actuator speed %g must be positive", c.ActuatorSpeed)
	case c.EstimatorWin <= 0:
		return fmt.Errorf("tuner: estimator window %g must be positive", c.EstimatorWin)
	case c.MinStoreV < 0:
		return fmt.Errorf("tuner: minimum store voltage %g must be non-negative", c.MinStoreV)
	}
	return nil
}

// Controller is the closed-loop tuning state machine.
type Controller struct {
	cfg  Config
	harv harvester.Params
	est  Estimator

	gap       float64 // current magnet gap (m)
	targetGap float64 // actuator destination (m)
	moving    bool
	sinceDec  float64 // time since the last decision (s)

	energy     float64 // actuator energy consumed (J)
	decisions  int     // tuning decisions taken
	moves      int     // actuator movements commanded
	timeInBand float64 // cumulative time with |f_est − f_res| ≤ deadband
	timeTotal  float64
}

// New builds a controller for the given harvester starting at gap0.
func New(cfg Config, h harvester.Params, gap0 float64) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	est := cfg.Estimator
	if est == nil {
		zc, err := NewZeroCrossingEstimator(cfg.EstimatorWin)
		if err != nil {
			return nil, err
		}
		est = zc
	}
	g := h.ClampGap(gap0)
	return &Controller{cfg: cfg, harv: h, est: est, gap: g, targetGap: g}, nil
}

// Gap returns the current tuning-magnet gap (m).
func (c *Controller) Gap() float64 { return c.gap }

// ResonantFreq returns the harvester resonance at the current gap (Hz).
func (c *Controller) ResonantFreq() float64 { return c.harv.ResonantFreq(c.gap) }

// Energy returns the total actuator energy consumed so far (J).
func (c *Controller) Energy() float64 { return c.energy }

// Decisions returns the number of tuning decisions taken.
func (c *Controller) Decisions() int { return c.decisions }

// Moves returns the number of actuator movements commanded.
func (c *Controller) Moves() int { return c.moves }

// InBandFraction returns the fraction of elapsed time the resonance was
// within the deadband of the estimated excitation frequency.
func (c *Controller) InBandFraction() float64 {
	if c.timeTotal == 0 {
		return 0
	}
	return c.timeInBand / c.timeTotal
}

// Step advances the controller by dt. emfSample is the instantaneous coil
// EMF (the estimator's input); vstore the supercapacitor voltage. It
// returns the electrical power (W) the actuator drew during this slice.
func (c *Controller) Step(dt, emfSample, vstore float64) float64 {
	if dt <= 0 {
		return 0
	}
	c.est.AddSample(dt, emfSample)
	c.timeTotal += dt
	if f, ok := c.est.Freq(); ok {
		if math.Abs(f-c.harv.ResonantFreq(c.gap)) <= c.cfg.DeadbandHz {
			c.timeInBand += dt
		}
	}

	var power float64
	// Actuator motion toward the target gap.
	if c.moving {
		step := c.cfg.ActuatorSpeed * dt
		delta := c.targetGap - c.gap
		if math.Abs(delta) <= step {
			c.gap = c.targetGap
			c.moving = false
		} else {
			c.gap += math.Copysign(step, delta)
		}
		power = c.cfg.ActuatorPower
		c.energy += power * dt
	}

	// Periodic decision.
	c.sinceDec += dt
	if c.sinceDec >= c.cfg.Interval {
		c.sinceDec = 0
		c.decide(vstore)
	}
	return power
}

// decide runs one tuning decision: compare the estimated excitation
// frequency with the current resonance and command the actuator if the
// error exceeds the deadband (and the store can afford it).
func (c *Controller) decide(vstore float64) {
	c.decisions++
	if vstore < c.cfg.MinStoreV {
		return // preserve stored energy; try again next interval
	}
	fEst, ok := c.est.Freq()
	if !ok {
		return
	}
	fRes := c.harv.ResonantFreq(c.gap)
	errHz := fEst - fRes
	if math.Abs(errHz) <= c.cfg.DeadbandHz {
		return
	}
	target := fEst
	if c.cfg.MaxStepHz > 0 && math.Abs(errHz) > c.cfg.MaxStepHz {
		target = fRes + math.Copysign(c.cfg.MaxStepHz, errHz)
	}
	gap, _ := c.harv.GapForFreq(target)
	if gap != c.gap {
		c.targetGap = gap
		c.moving = true
		c.moves++
	}
}
