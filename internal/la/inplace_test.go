package la

import (
	"math"
	"math/rand"
	"testing"
)

// seedExpm is a verbatim copy of the pre-workspace Expm. The workspace
// implementation promises bit-identical results, and the tests below hold
// it to that promise.
func seedExpm(a *Matrix) (*Matrix, error) {
	if a.rows != a.cols {
		return nil, ErrShape
	}
	n := a.rows
	if n == 0 {
		return NewMatrix(0, 0), nil
	}
	norm := matrixNorm1(a)
	s := 0
	if norm > 0.5 {
		s = int(math.Ceil(math.Log2(norm / 0.5)))
		if s < 0 {
			s = 0
		}
	}
	scaled := a.Scale(math.Pow(2, -float64(s)))

	const degree = 6
	c := make([]float64, degree+1)
	c[0] = 1
	for k := 1; k <= degree; k++ {
		c[k] = c[k-1] * float64(degree-k+1) / (float64(k) * float64(2*degree-k+1))
	}
	x := scaled.Clone()
	even := Identity(n).Scale(c[0])
	odd := NewMatrix(n, n)
	pow := Identity(n)
	for k := 1; k <= degree; k++ {
		pow = pow.Mul(x)
		term := pow.Scale(c[k])
		if k%2 == 0 {
			even = even.AddM(term)
		} else {
			odd = odd.AddM(term)
		}
	}
	num := even.AddM(odd)
	den := even.SubM(odd)
	lu, err := FactorLU(den)
	if err != nil {
		return nil, err
	}
	r, err := lu.SolveMatrix(num)
	if err != nil {
		return nil, err
	}
	for k := 0; k < s; k++ {
		r = r.Mul(r)
	}
	return r, nil
}

// seedDiscretizeZOH is a verbatim copy of the pre-workspace DiscretizeZOH.
func seedDiscretizeZOH(a, b *Matrix, h float64) (ad, bd *Matrix, err error) {
	if a.rows != a.cols || b.rows != a.rows {
		return nil, nil, ErrShape
	}
	n := a.rows
	m := b.cols
	blk := NewMatrix(n+m, n+m)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			blk.Set(i, j, a.At(i, j)*h)
		}
		for j := 0; j < m; j++ {
			blk.Set(i, n+j, b.At(i, j)*h)
		}
	}
	e, err := seedExpm(blk)
	if err != nil {
		return nil, nil, err
	}
	ad = NewMatrix(n, n)
	bd = NewMatrix(n, m)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			ad.Set(i, j, e.At(i, j))
		}
		for j := 0; j < m; j++ {
			bd.Set(i, j, e.At(i, n+j))
		}
	}
	return ad, bd, nil
}

func randMatrix(rng *rand.Rand, r, c int, scale float64) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.data {
		m.data[i] = scale * (2*rng.Float64() - 1)
	}
	return m
}

func requireBitIdentical(t *testing.T, ctx string, want, got *Matrix) {
	t.Helper()
	if want.rows != got.rows || want.cols != got.cols {
		t.Fatalf("%s: shape %dx%d vs %dx%d", ctx, want.rows, want.cols, got.rows, got.cols)
	}
	for i, w := range want.data {
		if math.Float64bits(w) != math.Float64bits(got.data[i]) {
			t.Fatalf("%s: element %d differs: %v (%#x) vs %v (%#x)",
				ctx, i, w, math.Float64bits(w), got.data[i], math.Float64bits(got.data[i]))
		}
	}
}

// TestExpmWorkspaceBitIdenticalToSeed drives the reusable workspace and the
// historical allocating implementation over the same inputs — small and
// large norms (exercising zero and multiple squaring rounds), repeated use
// of one workspace (exercising buffer-swap state) — and requires exact
// bit equality.
func TestExpmWorkspaceBitIdenticalToSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 5} {
		ws := NewExpmWorkspace(n)
		for trial := 0; trial < 20; trial++ {
			scale := math.Pow(10, float64(trial%5)-2) // 1e-2 .. 1e2
			a := randMatrix(rng, n, n, scale)
			want, err := seedExpm(a)
			if err != nil {
				t.Fatalf("n=%d trial=%d: seed: %v", n, trial, err)
			}
			got, err := ws.Compute(a)
			if err != nil {
				t.Fatalf("n=%d trial=%d: workspace: %v", n, trial, err)
			}
			requireBitIdentical(t, "expm", want, got)
		}
	}
}

// TestExpmWrapperBitIdenticalToSeed covers the one-shot Expm wrapper too.
func TestExpmWrapperBitIdenticalToSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		a := randMatrix(rng, 4, 4, 3)
		want, err := seedExpm(a)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Expm(a)
		if err != nil {
			t.Fatal(err)
		}
		requireBitIdentical(t, "expm wrapper", want, got)
	}
}

// TestZOHWorkspaceBitIdenticalToSeed compares workspace discretization
// against the historical implementation on harvester-like systems.
func TestZOHWorkspaceBitIdenticalToSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ws := NewZOHWorkspace(3, 2)
	for trial := 0; trial < 20; trial++ {
		a := randMatrix(rng, 3, 3, 100)
		b := randMatrix(rng, 3, 2, 10)
		h := math.Pow(10, -float64(2+trial%3)) // 1e-2 .. 1e-4
		wantAd, wantBd, err := seedDiscretizeZOH(a, b, h)
		if err != nil {
			t.Fatal(err)
		}
		gotAd, gotBd, err := ws.Discretize(a, b, h)
		if err != nil {
			t.Fatal(err)
		}
		requireBitIdentical(t, "zoh Ad", wantAd, gotAd)
		requireBitIdentical(t, "zoh Bd", wantBd, gotBd)
	}
}

func TestExpmWorkspaceShapeMismatch(t *testing.T) {
	ws := NewExpmWorkspace(3)
	if _, err := ws.Compute(NewMatrix(2, 2)); err != ErrShape {
		t.Fatalf("wrong-size input: got %v, want ErrShape", err)
	}
	if _, err := ws.Compute(NewMatrix(3, 2)); err != ErrShape {
		t.Fatalf("non-square input: got %v, want ErrShape", err)
	}
}

func TestZOHWorkspaceShapeMismatch(t *testing.T) {
	ws := NewZOHWorkspace(3, 2)
	if _, _, err := ws.Discretize(NewMatrix(2, 2), NewMatrix(2, 2), 1e-3); err != ErrShape {
		t.Fatalf("wrong-size system: got %v, want ErrShape", err)
	}
}

// TestWorkspacesZeroAllocSteadyState pins the whole point of the
// workspaces: after construction, repeated computes allocate nothing.
func TestWorkspacesZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randMatrix(rng, 5, 5, 10)
	ews := NewExpmWorkspace(5)
	if _, err := ews.Compute(a); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(50, func() {
		if _, err := ews.Compute(a); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("ExpmWorkspace.Compute allocates %.1f objects/op, want 0", n)
	}

	sa := randMatrix(rng, 3, 3, 100)
	sb := randMatrix(rng, 3, 2, 10)
	zws := NewZOHWorkspace(3, 2)
	if _, _, err := zws.Discretize(sa, sb, 1e-3); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(50, func() {
		if _, _, err := zws.Discretize(sa, sb, 1e-3); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("ZOHWorkspace.Discretize allocates %.1f objects/op, want 0", n)
	}
}

func TestMulIntoMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randMatrix(rng, 4, 3, 5)
	b := randMatrix(rng, 3, 5, 5)
	// Plant exact zeros to exercise the skip branch both paths share.
	a.Set(1, 1, 0)
	a.Set(3, 0, 0)
	want := a.Mul(b)
	got := NewMatrix(4, 5)
	MulInto(got, a, b)
	requireBitIdentical(t, "MulInto", want, got)
}

func TestMulIntoAliasPanics(t *testing.T) {
	a := Identity(3)
	defer func() {
		if recover() == nil {
			t.Fatal("MulInto with aliased destination must panic")
		}
	}()
	MulInto(a, a, Identity(3))
}

func TestElementwiseIntoMatchAndAlias(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randMatrix(rng, 3, 4, 2)
	b := randMatrix(rng, 3, 4, 2)

	sum := NewMatrix(3, 4)
	AddInto(sum, a, b)
	requireBitIdentical(t, "AddInto", a.AddM(b), sum)

	diff := NewMatrix(3, 4)
	SubInto(diff, a, b)
	requireBitIdentical(t, "SubInto", a.SubM(b), diff)

	scaled := NewMatrix(3, 4)
	ScaleInto(scaled, a, 2.5)
	requireBitIdentical(t, "ScaleInto", a.Scale(2.5), scaled)

	// Element-wise kernels tolerate aliasing: accumulate in place.
	wantAcc := a.AddM(b)
	acc := a.Clone()
	AddInto(acc, acc, b)
	requireBitIdentical(t, "AddInto aliased", wantAcc, acc)

	wantScl := a.Scale(-3)
	scl := a.Clone()
	ScaleInto(scl, scl, -3)
	requireBitIdentical(t, "ScaleInto aliased", wantScl, scl)
}

func TestSetIdentityAndCopyInto(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := randMatrix(rng, 4, 4, 9)
	SetIdentity(m)
	requireBitIdentical(t, "SetIdentity", Identity(4), m)

	src := randMatrix(rng, 2, 3, 1)
	dst := NewMatrix(2, 3)
	CopyInto(dst, src)
	requireBitIdentical(t, "CopyInto", src, dst)

	defer func() {
		if recover() == nil {
			t.Fatal("CopyInto with mismatched shapes must panic")
		}
	}()
	CopyInto(NewMatrix(2, 2), src)
}

func TestDataAndRowViewWriteThrough(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Data()[1*3+2] = 42
	if m.At(1, 2) != 42 {
		t.Fatal("Data() must alias the matrix storage")
	}
	row := m.RowView(0)
	if len(row) != 3 || cap(row) != 3 {
		t.Fatalf("RowView must be full-sliced to the row: len=%d cap=%d", len(row), cap(row))
	}
	row[0] = 7
	if m.At(0, 0) != 7 {
		t.Fatal("RowView must alias the matrix storage")
	}
	// The capped slice keeps an append from bleeding into row 1.
	grown := append(row, 99)
	if m.At(1, 0) != 0 {
		t.Fatal("append through RowView corrupted the next row")
	}
	_ = grown
}

func TestLURefactorMatchesFactorLU(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	var f LU
	for trial := 0; trial < 10; trial++ {
		a := randMatrix(rng, 4, 4, 10)
		ref, err := FactorLU(a)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Refactor(a); err != nil {
			t.Fatal(err)
		}
		requireBitIdentical(t, "Refactor packed LU", ref.lu, f.lu)
		for i := range ref.piv {
			if ref.piv[i] != f.piv[i] {
				t.Fatalf("pivot %d differs: %d vs %d", i, ref.piv[i], f.piv[i])
			}
		}
		if math.Float64bits(ref.Det()) != math.Float64bits(f.Det()) {
			t.Fatalf("determinant differs: %v vs %v", ref.Det(), f.Det())
		}
	}
}

func TestLUSolveIntoMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	a := randMatrix(rng, 5, 5, 10)
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 5)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	want, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, 5)
	if err := f.SolveInto(got, b); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("x[%d]: %v vs %v", i, want[i], got[i])
		}
	}

	bm := randMatrix(rng, 5, 3, 4)
	wantM, err := f.SolveMatrix(bm)
	if err != nil {
		t.Fatal(err)
	}
	gotM := NewMatrix(5, 3)
	if err := f.SolveMatrixInto(gotM, bm, make([]float64, 10)); err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, "SolveMatrixInto", wantM, gotM)

	if err := f.SolveMatrixInto(gotM, bm, make([]float64, 9)); err != ErrShape {
		t.Fatalf("undersized scratch: got %v, want ErrShape", err)
	}
}
