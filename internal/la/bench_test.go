package la

import (
	"math/rand"
	"testing"
)

func benchMatrix(n int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
		m.Add(i, i, float64(n))
	}
	return m
}

func BenchmarkLUSolve16(b *testing.B) {
	a := benchMatrix(16, 1)
	rhs := make([]float64, 16)
	for i := range rhs {
		rhs[i] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQRLeastSquares64x15(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := NewMatrix(64, 15)
	rhs := make([]float64, 64)
	for i := 0; i < 64; i++ {
		for j := 0; j < 15; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
		rhs[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LeastSquares(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEigenSym8(b *testing.B) {
	a := benchMatrix(8, 3)
	sym := a.AddM(a.T())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := EigenSym(sym, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExpm5(b *testing.B) {
	a := benchMatrix(5, 4).Scale(0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Expm(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiscretizeZOH3x2(b *testing.B) {
	a := NewMatrixFrom(3, 3, []float64{0, 1, 0, -1.6e3 / 0.02, -3, -210, 0, 4200, -5.2e6})
	bm := NewMatrixFrom(3, 2, []float64{0, 0, -1, 0, 0, 0})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DiscretizeZOH(a, bm, 1e-3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExpmWorkspace5 is the reusable-workspace exponential — the path
// the simulation engine's ZOH rebuild actually takes. Compare against
// BenchmarkExpm5 (the one-shot wrapper) to see the allocation overhead the
// workspace removes.
func BenchmarkExpmWorkspace5(b *testing.B) {
	a := benchMatrix(5, 4).Scale(0.01)
	ws := NewExpmWorkspace(5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ws.Compute(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkZOHWorkspace3x2(b *testing.B) {
	a := NewMatrixFrom(3, 3, []float64{0, 1, 0, -1.6e3 / 0.02, -3, -210, 0, 4200, -5.2e6})
	bm := NewMatrixFrom(3, 2, []float64{0, 0, -1, 0, 0, 0})
	ws := NewZOHWorkspace(3, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ws.Discretize(a, bm, 1e-3); err != nil {
			b.Fatal(err)
		}
	}
}
