package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExpmZero(t *testing.T) {
	e, err := Expm(NewMatrix(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	if e.SubM(Identity(3)).MaxAbs() > 1e-14 {
		t.Fatal("e^0 must be I")
	}
}

func TestExpmDiagonal(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, -2)
	e, err := Expm(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(e.At(0, 0), math.E, 1e-12) {
		t.Fatalf("e^1 = %v", e.At(0, 0))
	}
	if !almostEq(e.At(1, 1), math.Exp(-2), 1e-12) {
		t.Fatalf("e^-2 = %v", e.At(1, 1))
	}
	if math.Abs(e.At(0, 1)) > 1e-14 || math.Abs(e.At(1, 0)) > 1e-14 {
		t.Fatal("off-diagonals must stay zero")
	}
}

func TestExpmRotation(t *testing.T) {
	// exp([[0,-θ],[θ,0]]) is a rotation by θ.
	theta := 0.7
	a := NewMatrixFrom(2, 2, []float64{0, -theta, theta, 0})
	e, err := Expm(a)
	if err != nil {
		t.Fatal(err)
	}
	c, s := math.Cos(theta), math.Sin(theta)
	want := NewMatrixFrom(2, 2, []float64{c, -s, s, c})
	if e.SubM(want).MaxAbs() > 1e-12 {
		t.Fatalf("rotation mismatch:\n%v", e)
	}
}

func TestExpmLargeNormScaling(t *testing.T) {
	// A with a big norm exercises the squaring path: exp(diag(10, -10)).
	a := NewMatrix(2, 2)
	a.Set(0, 0, 10)
	a.Set(1, 1, -10)
	e, err := Expm(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(e.At(0, 0), math.Exp(10), 1e-9) {
		t.Fatalf("e^10 = %v, want %v", e.At(0, 0), math.Exp(10))
	}
}

func TestExpmGroupProperty(t *testing.T) {
	// e^{A}·e^{A} = e^{2A} for random (commuting with itself) matrices.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
		}
		e1, err := Expm(a)
		if err != nil {
			return false
		}
		e2, err := Expm(a.Scale(2))
		if err != nil {
			return false
		}
		return e1.Mul(e1).SubM(e2).MaxAbs() < 1e-8*(1+e2.MaxAbs())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestExpmNonSquare(t *testing.T) {
	if _, err := Expm(NewMatrix(2, 3)); err != ErrShape {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestDiscretizeZOHScalar(t *testing.T) {
	// ẏ = −y + u, exact: Ad = e^{−h}, Bd = 1 − e^{−h}.
	a := NewMatrixFrom(1, 1, []float64{-1})
	b := NewMatrixFrom(1, 1, []float64{1})
	h := 0.3
	ad, bd, err := DiscretizeZOH(a, b, h)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(ad.At(0, 0), math.Exp(-h), 1e-12) {
		t.Fatalf("Ad = %v", ad.At(0, 0))
	}
	if !almostEq(bd.At(0, 0), 1-math.Exp(-h), 1e-12) {
		t.Fatalf("Bd = %v", bd.At(0, 0))
	}
}

func TestDiscretizeZOHMatchesIntegration(t *testing.T) {
	// Compare the ZOH update against brute-force small-step Euler
	// integration of a 2-state system with constant input.
	a := NewMatrixFrom(2, 2, []float64{0, 1, -4, -0.5})
	b := NewMatrixFrom(2, 1, []float64{0, 1})
	h := 0.05
	ad, bd, err := DiscretizeZOH(a, b, h)
	if err != nil {
		t.Fatal(err)
	}
	y := []float64{1, 0}
	u := 0.7
	// One ZOH step.
	yz := ad.MulVec(y)
	for i := range yz {
		yz[i] += bd.At(i, 0) * u
	}
	// Fine Euler.
	ye := []float64{1, 0}
	const nSub = 200000
	dt := h / nSub
	for k := 0; k < nSub; k++ {
		d0 := a.At(0, 0)*ye[0] + a.At(0, 1)*ye[1] + b.At(0, 0)*u
		d1 := a.At(1, 0)*ye[0] + a.At(1, 1)*ye[1] + b.At(1, 0)*u
		ye[0] += dt * d0
		ye[1] += dt * d1
	}
	for i := range yz {
		if !almostEq(yz[i], ye[i], 1e-4) {
			t.Fatalf("state %d: ZOH %v vs integrated %v", i, yz[i], ye[i])
		}
	}
}

func TestDiscretizeZOHShapeErrors(t *testing.T) {
	if _, _, err := DiscretizeZOH(NewMatrix(2, 3), NewMatrix(2, 1), 0.1); err != ErrShape {
		t.Fatal("non-square A must be rejected")
	}
	if _, _, err := DiscretizeZOH(NewMatrix(2, 2), NewMatrix(3, 1), 0.1); err != ErrShape {
		t.Fatal("mismatched B must be rejected")
	}
}
