// Package la provides the small dense linear-algebra kernel used throughout
// the toolkit: least-squares fitting of response surfaces, canonical analysis
// of fitted quadratic models, and the state-space matrices of the fast
// simulation engine.
//
// Matrices are dense, row-major and backed by a single []float64. The
// package is deliberately free of external dependencies; every factorization
// (LU, QR, Cholesky, symmetric eigendecomposition) is implemented here.
package la

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrSingular is returned when a factorization or solve encounters an
// effectively singular matrix.
var ErrSingular = errors.New("la: matrix is singular to working precision")

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("la: incompatible matrix shapes")

// Matrix is a dense, row-major matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns an r×c zero matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic("la: negative matrix dimension")
	}
	return &Matrix{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewMatrixFrom builds an r×c matrix from row-major data. The slice is
// copied; the caller retains ownership of data.
func NewMatrixFrom(r, c int, data []float64) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("la: data length %d does not match %dx%d", len(data), r, c))
	}
	m := NewMatrix(r, c)
	copy(m.data, data)
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add accumulates v into element (i, j).
func (m *Matrix) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("la: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Data returns the matrix's backing row-major slice. Mutations write
// through to the matrix. This is the unchecked fast path for hot callers
// (the simulation inner loop bakes update matrices from it); everyone else
// should stay on the bounds-checked At/Set.
func (m *Matrix) Data() []float64 { return m.data }

// RowView returns row i of the matrix without copying. The returned slice
// aliases the matrix and is capped at the row boundary, so an append never
// bleeds into the next row. Row index errors surface as slice-bounds
// panics rather than the formatted check message.
func (m *Matrix) RowView(i int) []float64 {
	return m.data[i*m.cols : (i+1)*m.cols : (i+1)*m.cols]
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	return NewMatrixFrom(m.rows, m.cols, m.data)
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetRow copies v into row i.
func (m *Matrix) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic(ErrShape)
	}
	copy(m.data[i*m.cols:(i+1)*m.cols], v)
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Mul returns the matrix product m·b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.cols != b.rows {
		panic(ErrShape)
	}
	out := NewMatrix(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		mrow := m.data[i*m.cols : (i+1)*m.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, mik := range mrow {
			if mik == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bkj := range brow {
				orow[j] += mik * bkj
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if m.cols != len(x) {
		panic(ErrShape)
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// AddM returns m + b as a new matrix.
func (m *Matrix) AddM(b *Matrix) *Matrix {
	if m.rows != b.rows || m.cols != b.cols {
		panic(ErrShape)
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] += b.data[i]
	}
	return out
}

// SubM returns m − b as a new matrix.
func (m *Matrix) SubM(b *Matrix) *Matrix {
	if m.rows != b.rows || m.cols != b.cols {
		panic(ErrShape)
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] -= b.data[i]
	}
	return out
}

// Scale returns s·m as a new matrix.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// MaxAbs returns the largest absolute element value.
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// String formats the matrix for debugging output.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "% .6g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
