package la

import "math"

// LU holds an LU factorization with partial pivoting: P·A = L·U.
type LU struct {
	lu   *Matrix // packed L (unit diagonal, below) and U (on/above diagonal)
	piv  []int   // row permutation
	sign float64 // determinant sign from pivoting
}

// FactorLU computes the LU factorization of the square matrix a with partial
// pivoting. It returns ErrSingular if a pivot is exactly zero; near-singular
// matrices factor successfully but solves may amplify error (check
// ConditionEstimate if that matters).
func FactorLU(a *Matrix) (*LU, error) {
	if a.rows != a.cols {
		return nil, ErrShape
	}
	f := &LU{}
	if err := f.Refactor(a); err != nil {
		return nil, err
	}
	return f, nil
}

// Refactor recomputes the factorization of a into f, reusing f's packed
// matrix and pivot buffers when the shape matches. It is the
// allocation-free path for callers that factor same-sized systems
// repeatedly (the matrix exponential inside every ZOH rebuild).
func (f *LU) Refactor(a *Matrix) error {
	if a.rows != a.cols {
		return ErrShape
	}
	n := a.rows
	if f.lu == nil || f.lu.rows != n || f.lu.cols != n {
		f.lu = NewMatrix(n, n)
		f.piv = make([]int, n)
	}
	lu := f.lu
	copy(lu.data, a.data)
	piv := f.piv
	for i := range piv {
		piv[i] = i
	}
	sign := 1.0
	for k := 0; k < n; k++ {
		// Find pivot.
		p := k
		mx := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > mx {
				mx, p = a, i
			}
		}
		if mx == 0 {
			return ErrSingular
		}
		if p != k {
			swapRows(lu, p, k)
			piv[p], piv[k] = piv[k], piv[p]
			sign = -sign
		}
		pivVal := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivVal
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.Add(i, j, -m*lu.At(k, j))
			}
		}
	}
	f.sign = sign
	return nil
}

func swapRows(m *Matrix, i, j int) {
	ri := m.data[i*m.cols : (i+1)*m.cols]
	rj := m.data[j*m.cols : (j+1)*m.cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Solve solves A·x = b for a single right-hand side.
func (f *LU) Solve(b []float64) ([]float64, error) {
	x := make([]float64, f.lu.rows)
	if err := f.SolveInto(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveInto solves A·x = b into the caller-provided x (len n). x must not
// alias b.
func (f *LU) SolveInto(x, b []float64) error {
	n := f.lu.rows
	if len(b) != n || len(x) != n {
		return ErrShape
	}
	// Apply permutation.
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit-lower L.
	for i := 1; i < n; i++ {
		var s float64
		row := f.lu.data[i*n : i*n+i]
		for j, l := range row {
			s += l * x[j]
		}
		x[i] -= s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		var s float64
		row := f.lu.data[i*n+i+1 : (i+1)*n]
		for j, u := range row {
			s += u * x[i+1+j]
		}
		d := f.lu.At(i, i)
		if d == 0 {
			return ErrSingular
		}
		x[i] = (x[i] - s) / d
	}
	return nil
}

// SolveMatrix solves A·X = B column by column.
func (f *LU) SolveMatrix(b *Matrix) (*Matrix, error) {
	out := NewMatrix(b.rows, b.cols)
	n := f.lu.rows
	if err := f.SolveMatrixInto(out, b, make([]float64, 2*n)); err != nil {
		return nil, err
	}
	return out, nil
}

// SolveMatrixInto solves A·X = B column by column into the caller-provided
// dst. scratch must hold at least 2n floats (one column of B plus one
// solution vector); pass the same slice across calls to solve without
// allocating.
func (f *LU) SolveMatrixInto(dst, b *Matrix, scratch []float64) error {
	n := f.lu.rows
	if b.rows != n || dst.rows != b.rows || dst.cols != b.cols || len(scratch) < 2*n {
		return ErrShape
	}
	col, x := scratch[:n], scratch[n:2*n]
	for j := 0; j < b.cols; j++ {
		for i := 0; i < n; i++ {
			col[i] = b.data[i*b.cols+j]
		}
		if err := f.SolveInto(x, col); err != nil {
			return err
		}
		for i, v := range x {
			dst.data[i*dst.cols+j] = v
		}
	}
	return nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := f.sign
	n := f.lu.rows
	for i := 0; i < n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Inverse returns A⁻¹ computed from the factorization.
func (f *LU) Inverse() (*Matrix, error) {
	return f.SolveMatrix(Identity(f.lu.rows))
}

// Solve solves the square system a·x = b directly (convenience wrapper
// around FactorLU).
func Solve(a *Matrix, b []float64) ([]float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Inverse returns the inverse of a square matrix.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Inverse()
}

// ConditionEstimate returns a cheap lower-bound estimate of the 1-norm
// condition number of a, using one factorization and a few solves. It is
// intended for diagnostics (flagging ill-conditioned design matrices), not
// for rigorous analysis.
func ConditionEstimate(a *Matrix) (float64, error) {
	if a.rows != a.cols {
		return 0, ErrShape
	}
	f, err := FactorLU(a)
	if err != nil {
		return math.Inf(1), nil // singular: infinite condition number
	}
	norm1 := matrixNorm1(a)
	// Estimate ||A⁻¹||₁ by solving against the all-ones vector and a
	// one-hot probe at the column with the largest solution component.
	n := a.rows
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1.0 / float64(n)
	}
	x, err := f.Solve(ones)
	if err != nil {
		return math.Inf(1), nil
	}
	best := vecNorm1(x)
	kmax := 0
	for i, v := range x {
		if math.Abs(v) > math.Abs(x[kmax]) {
			kmax = i
		}
	}
	probe := make([]float64, n)
	probe[kmax] = 1
	if x2, err2 := f.Solve(probe); err2 == nil {
		if v := vecNorm1(x2); v > best {
			best = v
		}
	}
	return norm1 * best, nil
}

func matrixNorm1(a *Matrix) float64 {
	var mx float64
	for j := 0; j < a.cols; j++ {
		var s float64
		for i := 0; i < a.rows; i++ {
			s += math.Abs(a.At(i, j))
		}
		if s > mx {
			mx = s
		}
	}
	return mx
}

func vecNorm1(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}
