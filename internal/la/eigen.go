package la

import (
	"math"
	"sort"
)

// EigenSym computes the eigendecomposition of a symmetric matrix using the
// cyclic Jacobi rotation method: a = V·diag(values)·Vᵀ. Eigenvalues are
// returned in ascending order with matching eigenvector columns in V.
//
// This powers the canonical analysis of fitted quadratic response surfaces:
// the signs of the eigenvalues of the quadratic-coefficient matrix B
// classify the stationary point (maximum / minimum / saddle), and the
// eigenvectors give the principal axes of the surface.
func EigenSym(a *Matrix, tol float64) (values []float64, vectors *Matrix, err error) {
	if a.rows != a.cols {
		return nil, nil, ErrShape
	}
	if !a.IsSymmetric(1e-9 * (1 + a.MaxAbs())) {
		return nil, nil, ErrShape
	}
	if tol <= 0 {
		tol = 1e-12
	}
	n := a.rows
	w := a.Clone()
	v := Identity(n)

	off := func() float64 {
		var s float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += 2 * w.At(i, j) * w.At(i, j)
			}
		}
		return math.Sqrt(s)
	}

	scale := w.FrobeniusNorm()
	if scale == 0 {
		scale = 1
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps && off() > tol*scale; sweep++ {
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) <= tol*scale/float64(n*n) {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(w, v, p, q, c, s)
			}
		}
	}

	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = w.At(i, i)
	}
	// Sort ascending, permuting eigenvector columns accordingly.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return values[idx[i]] < values[idx[j]] })
	sortedVals := make([]float64, n)
	sortedVecs := NewMatrix(n, n)
	for k, id := range idx {
		sortedVals[k] = values[id]
		for i := 0; i < n; i++ {
			sortedVecs.Set(i, k, v.At(i, id))
		}
	}
	return sortedVals, sortedVecs, nil
}

// rotate applies the Jacobi rotation J(p,q,θ) to w (two-sided) and
// accumulates it into v (one-sided).
func rotate(w, v *Matrix, p, q int, c, s float64) {
	n := w.rows
	for i := 0; i < n; i++ {
		wip, wiq := w.At(i, p), w.At(i, q)
		w.Set(i, p, c*wip-s*wiq)
		w.Set(i, q, s*wip+c*wiq)
	}
	for j := 0; j < n; j++ {
		wpj, wqj := w.At(p, j), w.At(q, j)
		w.Set(p, j, c*wpj-s*wqj)
		w.Set(q, j, s*wpj+c*wqj)
	}
	for i := 0; i < n; i++ {
		vip, viq := v.At(i, p), v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

// SpectralRadius returns the largest absolute eigenvalue magnitude of a
// general square matrix, estimated by power iteration with a fixed seed
// vector. It is used to check stability of the discretized linearized
// state-space update matrix.
func SpectralRadius(a *Matrix, iters int) float64 {
	n := a.rows
	if n == 0 {
		return 0
	}
	if iters <= 0 {
		iters = 200
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / math.Sqrt(float64(n))
	}
	var lambda float64
	for k := 0; k < iters; k++ {
		y := a.MulVec(x)
		var nrm float64
		for _, v := range y {
			nrm += v * v
		}
		nrm = math.Sqrt(nrm)
		if nrm == 0 {
			return 0
		}
		for i := range y {
			y[i] /= nrm
		}
		lambda = nrm
		x = y
	}
	return lambda
}
