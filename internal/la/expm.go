package la

import "math"

// expmDegree is the Padé approximant degree used by Expm.
const expmDegree = 6

// ExpmWorkspace holds every buffer the matrix exponential needs for a
// fixed size n, so repeated calls — one per region per ZOH rebuild in the
// fast simulation engine — allocate nothing. The zero value is unusable;
// build one with NewExpmWorkspace. A workspace is not safe for concurrent
// use.
type ExpmWorkspace struct {
	n int
	// Padé iteration buffers.
	scaled, pow, tmp, term, even, odd, num, den *Matrix
	lu                                          LU
	solveScratch                                []float64
	result                                      *Matrix
	c                                           [expmDegree + 1]float64
}

// NewExpmWorkspace returns a workspace for n×n exponentials.
func NewExpmWorkspace(n int) *ExpmWorkspace {
	if n < 0 {
		panic("la: negative workspace dimension")
	}
	ws := &ExpmWorkspace{n: n}
	ws.scaled = NewMatrix(n, n)
	ws.pow = NewMatrix(n, n)
	ws.tmp = NewMatrix(n, n)
	ws.term = NewMatrix(n, n)
	ws.even = NewMatrix(n, n)
	ws.odd = NewMatrix(n, n)
	ws.num = NewMatrix(n, n)
	ws.den = NewMatrix(n, n)
	ws.solveScratch = make([]float64, 2*n)
	ws.result = NewMatrix(n, n)
	// Padé(6,6) coefficients are size-independent; compute once.
	ws.c[0] = 1
	for k := 1; k <= expmDegree; k++ {
		ws.c[k] = ws.c[k-1] * float64(expmDegree-k+1) / (float64(k) * float64(2*expmDegree-k+1))
	}
	return ws
}

// Compute returns e^a using the workspace's buffers. The returned matrix is
// owned by the workspace and is overwritten by the next call; callers that
// need to keep it must Clone. It performs exactly the same floating-point
// operations as the original allocating implementation, so results are
// bit-identical.
func (ws *ExpmWorkspace) Compute(a *Matrix) (*Matrix, error) {
	if a.rows != a.cols {
		return nil, ErrShape
	}
	n := a.rows
	if n != ws.n {
		return nil, ErrShape
	}
	if n == 0 {
		return ws.result, nil
	}
	// Scale A by 2^-s so that ||A/2^s|| is small.
	norm := matrixNorm1(a)
	s := 0
	if norm > 0.5 {
		s = int(math.Ceil(math.Log2(norm / 0.5)))
		if s < 0 {
			s = 0
		}
	}
	ScaleInto(ws.scaled, a, math.Pow(2, -float64(s)))

	// Padé(6,6): N(A)·D(A)⁻¹ with coefficients c_k.
	x := ws.scaled
	SetIdentity(ws.even)
	ScaleInto(ws.even, ws.even, ws.c[0])
	for i := range ws.odd.data {
		ws.odd.data[i] = 0
	}
	pow, tmp := ws.pow, ws.tmp
	SetIdentity(pow)
	for k := 1; k <= expmDegree; k++ {
		MulInto(tmp, pow, x)
		pow, tmp = tmp, pow
		ScaleInto(ws.term, pow, ws.c[k])
		if k%2 == 0 {
			AddInto(ws.even, ws.even, ws.term)
		} else {
			AddInto(ws.odd, ws.odd, ws.term)
		}
	}
	AddInto(ws.num, ws.even, ws.odd)
	SubInto(ws.den, ws.even, ws.odd)
	if err := ws.lu.Refactor(ws.den); err != nil {
		return nil, err
	}
	r, rTmp := ws.result, tmp
	if err := ws.lu.SolveMatrixInto(r, ws.num, ws.solveScratch); err != nil {
		return nil, err
	}
	// Undo the scaling by repeated squaring.
	for k := 0; k < s; k++ {
		MulInto(rTmp, r, r)
		r, rTmp = rTmp, r
	}
	ws.result = r
	ws.tmp = rTmp
	return r, nil
}

// Expm returns the matrix exponential e^A computed by scaling-and-squaring
// with a degree-6 Padé approximant. It is used to build the exact
// zero-order-hold discretization A_d = e^{A·h} of the linearized harvester
// state-space model (the explicit technique of companion paper [4]).
// One-shot convenience wrapper over ExpmWorkspace; repeated same-size
// callers should hold a workspace.
func Expm(a *Matrix) (*Matrix, error) {
	if a.rows != a.cols {
		return nil, ErrShape
	}
	ws := NewExpmWorkspace(a.rows)
	r, err := ws.Compute(a)
	if err != nil {
		return nil, err
	}
	// The workspace is function-local, so the result needs no defensive copy.
	return r, nil
}

// ZOHWorkspace holds the buffers for repeated zero-order-hold
// discretizations of an (n-state, m-input) system: the (n+m)² block
// matrix, its exponential workspace, and the output Ad/Bd. Not safe for
// concurrent use.
type ZOHWorkspace struct {
	n, m   int
	blk    *Matrix
	ew     *ExpmWorkspace
	ad, bd *Matrix
}

// NewZOHWorkspace returns a workspace for n-state, m-input systems.
func NewZOHWorkspace(n, m int) *ZOHWorkspace {
	return &ZOHWorkspace{
		n:   n,
		m:   m,
		blk: NewMatrix(n+m, n+m),
		ew:  NewExpmWorkspace(n + m),
		ad:  NewMatrix(n, n),
		bd:  NewMatrix(n, m),
	}
}

// Discretize converts ẏ = A·y + B·u into y_{k+1} = Ad·y_k + Bd·u_k over
// step h. The returned matrices are owned by the workspace and overwritten
// by the next call. Results are bit-identical to DiscretizeZOH.
func (ws *ZOHWorkspace) Discretize(a, b *Matrix, h float64) (ad, bd *Matrix, err error) {
	if a.rows != a.cols || b.rows != a.rows || a.rows != ws.n || b.cols != ws.m {
		return nil, nil, ErrShape
	}
	n, m := ws.n, ws.m
	blk := ws.blk
	for i := range blk.data {
		blk.data[i] = 0
	}
	for i := 0; i < n; i++ {
		brow := blk.data[i*blk.cols : i*blk.cols+n+m]
		arow := a.data[i*n : (i+1)*n]
		for j, v := range arow {
			brow[j] = v * h
		}
		bbrow := b.data[i*m : (i+1)*m]
		for j, v := range bbrow {
			brow[n+j] = v * h
		}
	}
	e, err := ws.ew.Compute(blk)
	if err != nil {
		return nil, nil, err
	}
	for i := 0; i < n; i++ {
		erow := e.data[i*e.cols : (i+1)*e.cols]
		copy(ws.ad.data[i*n:(i+1)*n], erow[:n])
		copy(ws.bd.data[i*m:(i+1)*m], erow[n:n+m])
	}
	return ws.ad, ws.bd, nil
}

// DiscretizeZOH converts the continuous affine system ẏ = A·y + B·u (u held
// constant over each step) into the exact discrete update
//
//	y_{k+1} = Ad·y_k + Bd·u_k
//
// with Ad = e^{A·h} and Bd = ∫₀ʰ e^{A·τ}dτ·B, computed via the standard
// block-matrix exponential of [[A, B],[0, 0]]. One-shot convenience
// wrapper over ZOHWorkspace.
func DiscretizeZOH(a, b *Matrix, h float64) (ad, bd *Matrix, err error) {
	if a.rows != a.cols || b.rows != a.rows {
		return nil, nil, ErrShape
	}
	ws := NewZOHWorkspace(a.rows, b.cols)
	return ws.Discretize(a, b, h)
}
