package la

import "math"

// Expm returns the matrix exponential e^A computed by scaling-and-squaring
// with a degree-6 Padé approximant. It is used to build the exact
// zero-order-hold discretization A_d = e^{A·h} of the linearized harvester
// state-space model (the explicit technique of companion paper [4]).
func Expm(a *Matrix) (*Matrix, error) {
	if a.rows != a.cols {
		return nil, ErrShape
	}
	n := a.rows
	if n == 0 {
		return NewMatrix(0, 0), nil
	}
	// Scale A by 2^-s so that ||A/2^s|| is small.
	norm := matrixNorm1(a)
	s := 0
	if norm > 0.5 {
		s = int(math.Ceil(math.Log2(norm / 0.5)))
		if s < 0 {
			s = 0
		}
	}
	scaled := a.Scale(math.Pow(2, -float64(s)))

	// Padé(6,6): N(A)·D(A)⁻¹ with coefficients c_k.
	const degree = 6
	c := make([]float64, degree+1)
	c[0] = 1
	for k := 1; k <= degree; k++ {
		c[k] = c[k-1] * float64(degree-k+1) / (float64(k) * float64(2*degree-k+1))
	}
	x := scaled.Clone()
	even := Identity(n).Scale(c[0]) // terms with even powers
	odd := NewMatrix(n, n)          // terms with odd powers
	pow := Identity(n)
	for k := 1; k <= degree; k++ {
		pow = pow.Mul(x)
		term := pow.Scale(c[k])
		if k%2 == 0 {
			even = even.AddM(term)
		} else {
			odd = odd.AddM(term)
		}
	}
	num := even.AddM(odd)
	den := even.SubM(odd)
	lu, err := FactorLU(den)
	if err != nil {
		return nil, err
	}
	r, err := lu.SolveMatrix(num)
	if err != nil {
		return nil, err
	}
	// Undo the scaling by repeated squaring.
	for k := 0; k < s; k++ {
		r = r.Mul(r)
	}
	return r, nil
}

// DiscretizeZOH converts the continuous affine system ẏ = A·y + B·u (u held
// constant over each step) into the exact discrete update
//
//	y_{k+1} = Ad·y_k + Bd·u_k
//
// with Ad = e^{A·h} and Bd = ∫₀ʰ e^{A·τ}dτ·B, computed via the standard
// block-matrix exponential of [[A, B],[0, 0]].
func DiscretizeZOH(a, b *Matrix, h float64) (ad, bd *Matrix, err error) {
	if a.rows != a.cols || b.rows != a.rows {
		return nil, nil, ErrShape
	}
	n := a.rows
	m := b.cols
	blk := NewMatrix(n+m, n+m)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			blk.Set(i, j, a.At(i, j)*h)
		}
		for j := 0; j < m; j++ {
			blk.Set(i, n+j, b.At(i, j)*h)
		}
	}
	e, err := Expm(blk)
	if err != nil {
		return nil, nil, err
	}
	ad = NewMatrix(n, n)
	bd = NewMatrix(n, m)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			ad.Set(i, j, e.At(i, j))
		}
		for j := 0; j < m; j++ {
			bd.Set(i, j, e.At(i, n+j))
		}
	}
	return ad, bd, nil
}
